package dicer

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-trace tests: two canonical scenarios are recorded through the
// JSONL sink and compared byte-for-byte against testdata/*.jsonl.golden.
// Because the simulator, the chaos layer, and the JSONL encoding are all
// deterministic, any byte of drift means controller decisions, counter
// modelling, or the trace schema changed — each of which deserves a
// deliberate golden refresh:
//
//	go test . -run TestGoldenTrace -update-traces
//
// The goldens also feed the replay verifier, so the committed files
// continuously prove the decision-equivalence guarantee on real traces,
// not just freshly recorded ones.

var updateTraces = flag.Bool("update-traces", false, "rewrite golden trace files with current recordings")

// goldenScenarios are the two canonical runs: the paper's CT-Thwarted
// pair (milc saturates the link, driving sampling), and a CT-Favoured
// friendly pair recorded under delayed-actuation chaos so the golden
// exercises fault annotations and the decisions-only replay path.
var goldenScenarios = []struct {
	name  string
	hp    string
	be    string
	n     int
	chaos string
	seed  int64
}{
	{name: "ctt_milc", hp: "milc1", be: "gcc_base1", n: 9},
	{name: "ctf_omnetpp_chaos", hp: "omnetpp1", be: "gcc_base1", n: 9, chaos: "delayed-actuation", seed: 7},
}

func recordGoldenTrace(t *testing.T, idx int) []byte {
	t.Helper()
	g := goldenScenarios[idx]
	sc := NewScenario(g.hp, g.be, g.n)
	sc.HorizonPeriods = 60
	if g.chaos != "" {
		cfg, err := ChaosScheduleByName(g.chaos)
		if err != nil {
			t.Fatal(err)
		}
		sc.Chaos = &cfg
		sc.ChaosSeed = g.seed
	}
	var buf bytes.Buffer
	jl := NewTraceJSONL(&buf)
	sc.Trace = jl
	if _, err := sc.Run(NewDICER()); err != nil {
		t.Fatal(err)
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenTraces(t *testing.T) {
	for i := range goldenScenarios {
		g := goldenScenarios[i]
		t.Run(g.name, func(t *testing.T) {
			got := recordGoldenTrace(t, i)
			path := filepath.Join("testdata", g.name+".jsonl.golden")
			if *updateTraces {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden trace (run with -update-traces to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: recorded trace drifted from golden (%d vs %d bytes); "+
					"controller decisions or trace schema changed — re-run with -update-traces if intended",
					g.name, len(got), len(want))
			}
		})
	}
}

// TestGoldenTracesReplay replays the committed golden files themselves:
// the fault-free golden verifies decisions and installed masks, the
// chaos golden decisions only.
func TestGoldenTracesReplay(t *testing.T) {
	for i := range goldenScenarios {
		g := goldenScenarios[i]
		t.Run(g.name, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", g.name+".jsonl.golden"))
			if err != nil {
				t.Fatalf("missing golden trace (run TestGoldenTraces with -update-traces first): %v", err)
			}
			defer f.Close()
			h, recs, err := ReadTrace(f)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ReplayTrace(h, recs)
			if err != nil {
				t.Fatalf("golden trace does not replay: %v", err)
			}
			if res.Periods != 60 {
				t.Fatalf("replayed %d periods, want 60", res.Periods)
			}
			if wantMasks := g.chaos == ""; res.MasksVerified != wantMasks {
				t.Fatalf("MasksVerified = %v, want %v", res.MasksVerified, wantMasks)
			}
			if res.Decisions == 0 {
				t.Fatal("golden trace carried no decisions")
			}
		})
	}
}
