package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dicer"
)

// runExplain runs the causal explain engine over one incident bundle:
// violation-onset detection, a per-period flight strip, and the ranked
// root-cause candidates. The report is deterministic — identical on a
// live dump and its committed golden.
func runExplain(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("explain: exactly one incident bundle expected")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	inc, err := dicer.ReadIncident(f)
	if err != nil {
		return err
	}
	rep := dicer.ExplainIncident(inc)
	if *jsonOut {
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		_, err = stdout.Write(b)
		return err
	}
	rep.Render(stdout, inc.Flight)
	return nil
}
