package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dicer"
)

func TestRecordThenReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var out bytes.Buffer
	err := runRecord([]string{"-hp", "milc1", "-be", "gcc_base1", "-n", "9",
		"-periods", "30", "-o", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runReplay([]string{path}, &out); err != nil {
		t.Fatalf("replay of a fresh recording failed: %v", err)
	}
	if !strings.Contains(out.String(), "OK") || !strings.Contains(out.String(), "installed masks") {
		t.Fatalf("replay output %q lacks full verification", out.String())
	}
}

func TestReplayChaosTraceDecisionsOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.jsonl")
	var out bytes.Buffer
	err := runRecord([]string{"-hp", "omnetpp1", "-be", "gcc_base1", "-n", "9",
		"-periods", "30", "-chaos", "delayed-actuation", "-chaos-seed", "7", "-o", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runReplay([]string{path}, &out); err != nil {
		t.Fatalf("replay of a chaos recording failed: %v", err)
	}
	if !strings.Contains(out.String(), "decisions only") {
		t.Fatalf("chaos replay output %q should note the mask check was skipped", out.String())
	}
}

func TestReplayDetectsTamperedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var out bytes.Buffer
	if err := runRecord([]string{"-hp", "milc1", "-be", "gcc_base1",
		"-periods", "20", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	// Falsify one recorded allocation decision and rewrite the file.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	h, recs, err := dicer.ReadTrace(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	recs[10].HPWays++
	var tampered bytes.Buffer
	jl := dicer.NewTraceJSONL(&tampered)
	if err := jl.Start(h); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		jl.Emit(&recs[i])
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, tampered.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	err = runReplay([]string{path}, &out)
	if err == nil {
		t.Fatal("replay accepted a tampered trace")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("tampered replay error %q does not name the divergence", err)
	}
}

func TestReplayRejectsNonDICERTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "um.jsonl")
	var out bytes.Buffer
	if err := runRecord([]string{"-hp", "milc1", "-be", "gcc_base1",
		"-periods", "5", "-policy", "um", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if err := runReplay([]string{path}, &out); err == nil {
		t.Fatal("replay of a UM trace (no controller config) accepted")
	}
}

func TestRecordRequiresOutput(t *testing.T) {
	var out bytes.Buffer
	if err := runRecord([]string{"-hp", "milc1"}, &out); err == nil {
		t.Fatal("record without -o accepted")
	}
}

func TestTracePolicy(t *testing.T) {
	for _, name := range []string{"um", "ct", "static:8", "dicer"} {
		if _, err := tracePolicy(name); err != nil {
			t.Errorf("tracePolicy(%q): %v", name, err)
		}
	}
	for _, name := range []string{"", "bogus", "static:x"} {
		if _, err := tracePolicy(name); err == nil {
			t.Errorf("tracePolicy(%q) accepted", name)
		}
	}
}
