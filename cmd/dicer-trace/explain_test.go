package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dicer/internal/diag"
)

// incidentGoldenDir holds the bundles dicer-fleet's forensics golden
// test seals and commits; explain's goldens are pinned over them, so a
// live dump from the same seeded run must produce identical reports.
var incidentGoldenDir = filepath.Join("..", "dicer-fleet", "testdata", "incidents")

// TestExplainGoldenReports pins the rendered explain report for every
// committed incident bundle byte-for-byte. Combined with dicer-fleet's
// TestGoldenIncidentBundles (live dumps byte-equal the committed
// bundles), this is the live == golden acceptance proof: explain is a
// pure function of the bundle bytes.
func TestExplainGoldenReports(t *testing.T) {
	bundles, err := filepath.Glob(filepath.Join(incidentGoldenDir, "incident-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) == 0 {
		t.Fatalf("no committed bundles in %s (run dicer-fleet tests with -update first)", incidentGoldenDir)
	}
	for _, bundle := range bundles {
		name := strings.TrimSuffix(filepath.Base(bundle), ".jsonl")
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			if err := runExplain([]string{bundle}, &out); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", name+".explain.golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("explain report drifted from golden:\ngot:\n%s\nwant:\n%s", out.Bytes(), want)
			}

			var again bytes.Buffer
			if err := runExplain([]string{bundle}, &again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), again.Bytes()) {
				t.Error("explain output not deterministic across runs")
			}
		})
	}
}

// TestExplainJSON checks the machine-readable report: valid JSON with
// the dicer-explain/v1 schema, ranked findings, and a manifest matching
// the bundle's trigger.
func TestExplainJSON(t *testing.T) {
	bundles, err := filepath.Glob(filepath.Join(incidentGoldenDir, "incident-*slo-burn.jsonl"))
	if err != nil || len(bundles) == 0 {
		t.Fatalf("no slo-burn bundle committed: %v", err)
	}
	var out bytes.Buffer
	if err := runExplain([]string{"-json", bundles[0]}, &out); err != nil {
		t.Fatal(err)
	}
	var rep diag.ExplainReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("explain -json is not valid JSON: %v\n%s", err, out.Bytes())
	}
	if rep.Schema != diag.ExplainSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, diag.ExplainSchema)
	}
	if rep.Incident.Trigger != "slo-burn" {
		t.Errorf("manifest trigger = %q, want slo-burn", rep.Incident.Trigger)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("slo-burn incident produced no root-cause candidates")
	}
	for i, f := range rep.Findings {
		if f.Rank != i+1 {
			t.Errorf("finding %d has rank %d", i, f.Rank)
		}
		if i > 0 && f.Score > rep.Findings[i-1].Score {
			t.Errorf("findings not sorted by score: %v after %v", f.Score, rep.Findings[i-1].Score)
		}
	}
}

// TestExplainRejectsGarbage covers the error paths: missing file, not a
// bundle, wrong argument count.
func TestExplainRejectsGarbage(t *testing.T) {
	var out bytes.Buffer
	if err := runExplain([]string{filepath.Join(t.TempDir(), "nope.jsonl")}, &out); err == nil {
		t.Error("explain accepted a missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"schema\":\"not-an-incident/v9\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runExplain([]string{bad}, &out); err == nil {
		t.Error("explain accepted an unknown schema")
	}
	if err := runExplain([]string{"a", "b"}, &out); err == nil {
		t.Error("explain accepted two positional arguments")
	}
}
