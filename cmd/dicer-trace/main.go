// dicer-trace works with recorded JSONL controller traces: it captures
// them from simulated runs and re-drives a fresh controller from the
// recorded inputs, verifying decision-for-decision equivalence — every
// trace file doubles as a regression test.
//
// Usage:
//
//	dicer-trace record -hp milc1 -be gcc_base1 -n 9 -periods 60 -o trace.jsonl
//	dicer-trace record -hp omnetpp1 -be gcc_base1 -chaos delayed-actuation -chaos-seed 7 -o chaos.jsonl
//	dicer-trace replay trace.jsonl
//	dicer-trace analyze trace.jsonl
//	dicer-trace analyze -json cluster.jsonl
//	dicer-trace alerts trace.jsonl
//	dicer-trace explain incident-000-p0047-n001-slo-burn.jsonl
//
// replay exits non-zero on the first divergence between the trace and
// the re-driven controller (or on a structurally unreplayable trace).
// analyze/summary/alerts run the offline diagnostic engine — the same
// histogram and burn-rate alerter code behind the live /metrics and
// /alerts endpoints — over a recorded single-node or fleet trace.
// explain runs the causal forensics engine over an incident bundle
// dumped by the fleet flight recorder (dicer-fleet -forensics).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dicer"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = runRecord(os.Args[2:], os.Stdout)
	case "replay":
		err = runReplay(os.Args[2:], os.Stdout)
	case "analyze":
		err = runAnalyze(os.Args[2:], os.Stdout)
	case "summary":
		err = runSummary(os.Args[2:], os.Stdout)
	case "alerts":
		err = runAlerts(os.Args[2:], os.Stdout)
	case "explain":
		err = runExplain(os.Args[2:], os.Stdout)
	case "-h", "--help", "help":
		usage()
		return
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dicer-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dicer-trace record -hp <app> -be <app> [-n N] [-periods N] [-policy P] [-chaos S -chaos-seed N] -o <file>
  dicer-trace replay <file>
  dicer-trace analyze [-slo F] [-alone-ipc F] [-json] <file>   full diagnostic report (single-node or fleet trace)
  dicer-trace summary [-json] <file>                           percentile table only
  dicer-trace alerts  [-json] <file>                           burn-rate alert timeline only
  dicer-trace explain [-json] <bundle>                         causal root-cause report over an incident bundle`)
}

// runRecord runs one scenario with a JSONL trace sink attached.
func runRecord(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	var (
		hp      = fs.String("hp", "milc1", "high-priority application (catalog name)")
		be      = fs.String("be", "gcc_base1", "best-effort application (catalog name)")
		n       = fs.Int("n", 9, "number of BE instances")
		periods = fs.Int("periods", 60, "monitoring periods to simulate")
		polName = fs.String("policy", "dicer", "um | ct | static:<ways> | dicer")
		chaosN  = fs.String("chaos", "none", "fault schedule name (none = fault-free)")
		chaosS  = fs.Int64("chaos-seed", 1, "seed for the chaos fault stream")
		guard   = fs.Bool("guard", false, "machine-check controller invariants after every period")
		out     = fs.String("o", "", "output trace file (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("record: -o <file> is required")
	}
	pol, err := tracePolicy(*polName)
	if err != nil {
		return err
	}
	sc := dicer.NewScenario(*hp, *be, *n)
	sc.HorizonPeriods = *periods
	sc.CheckInvariants = *guard
	if *chaosN != "none" && *chaosN != "" {
		cfg, err := dicer.ChaosScheduleByName(*chaosN)
		if err != nil {
			return err
		}
		sc.Chaos = &cfg
		sc.ChaosSeed = *chaosS
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	jl := dicer.NewTraceJSONL(f)
	sc.Trace = jl
	if _, err := sc.Run(pol); err != nil {
		f.Close()
		return err
	}
	if err := jl.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "recorded %d periods of %s (HP %s + %dx %s) to %s\n",
		*periods, pol.Name(), *hp, *n, *be, *out)
	return nil
}

// runReplay re-drives the controller from a trace file and verifies it.
func runReplay(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("replay: exactly one trace file expected")
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h, recs, err := dicer.ReadTrace(f)
	if err != nil {
		return err
	}
	res, err := dicer.ReplayTrace(h, recs)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	masks := "decisions only (trace recorded under chaos)"
	if res.MasksVerified {
		masks = "decisions and installed masks"
	}
	fmt.Fprintf(stdout, "%s: OK — %d periods, %d decisions replayed identically (%s)\n",
		path, res.Periods, res.Decisions, masks)
	return nil
}

// tracePolicy parses the -policy flag; only policies whose decisions a
// trace captures are offered (extensions record fine through dicer-sim).
func tracePolicy(name string) (dicer.Policy, error) {
	switch {
	case name == "um":
		return dicer.Unmanaged(), nil
	case name == "ct":
		return dicer.CacheTakeover(), nil
	case strings.HasPrefix(name, "static:"):
		ways, err := strconv.Atoi(strings.TrimPrefix(name, "static:"))
		if err != nil {
			return nil, fmt.Errorf("bad static way count in %q", name)
		}
		return dicer.StaticPartition(ways), nil
	case name == "dicer":
		return dicer.NewDICER(), nil
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}
