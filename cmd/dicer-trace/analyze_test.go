package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dicer"
	"dicer/internal/diag"
)

var update = flag.Bool("update", false, "rewrite golden report files")

// TestAnalyzeGoldenReports pins the rendered diagnostic report for both
// committed golden traces — one single-node, one fleet — byte-for-byte.
// Any drift means the analytics engine (or the trace behind it) changed
// and must be reviewed, then refreshed with -update.
func TestAnalyzeGoldenReports(t *testing.T) {
	cases := []struct {
		name  string
		trace string
	}{
		{"node_report", filepath.Join("..", "..", "testdata", "ctt_milc.jsonl.golden")},
		{"fleet_report", filepath.Join("..", "dicer-fleet", "testdata", "cluster.jsonl.golden")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := runAnalyze([]string{tc.trace}, &out); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("analyze report drifted from golden:\ngot:\n%s\nwant:\n%s", out.Bytes(), want)
			}
		})
	}
}

// TestAnalyzeDeterministic runs the engine twice over the committed
// fleet trace and demands byte-identical output, text and JSON — the
// acceptance bar for the offline engine.
func TestAnalyzeDeterministic(t *testing.T) {
	trace := filepath.Join("..", "dicer-fleet", "testdata", "cluster.jsonl.golden")
	for _, args := range [][]string{{trace}, {"-json", trace}} {
		var a, b bytes.Buffer
		if err := runAnalyze(args, &a); err != nil {
			t.Fatal(err)
		}
		if err := runAnalyze(args, &b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("analyze %v not deterministic across runs", args)
		}
	}
}

// TestSummaryAndAlertsJSON smoke-checks the two report slices: valid
// JSON carrying the expected fields.
func TestSummaryAndAlertsJSON(t *testing.T) {
	trace := filepath.Join("..", "..", "testdata", "ctt_milc.jsonl.golden")

	var out bytes.Buffer
	if err := runSummary([]string{"-json", trace}, &out); err != nil {
		t.Fatal(err)
	}
	var metrics []diag.Summary
	if err := json.Unmarshal(out.Bytes(), &metrics); err != nil {
		t.Fatalf("summary -json is not valid JSON: %v\n%s", err, out.Bytes())
	}
	if len(metrics) == 0 || metrics[0].Name != "hp_slowdown" {
		t.Fatalf("summary metrics = %+v, want hp_slowdown first", metrics)
	}

	out.Reset()
	if err := runAlerts([]string{"-json", trace}, &out); err != nil {
		t.Fatal(err)
	}
	var alert diag.AlertReport
	if err := json.Unmarshal(out.Bytes(), &alert); err != nil {
		t.Fatalf("alerts -json is not valid JSON: %v\n%s", err, out.Bytes())
	}
	if alert.Config.Budget <= 0 || len(alert.Config.Windows) == 0 {
		t.Fatalf("alerts report missing config: %+v", alert.Config)
	}

	out.Reset()
	if err := runSummary([]string{trace}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hp_slowdown") {
		t.Fatalf("summary text missing percentile table:\n%s", out.String())
	}
}

// TestAnalyzeMultiHPTrace records a short multi-HP run (which emits a
// dicer-trace/v2 stream) and checks that all three subcommands sniff
// the schema, and that analyze reports the per-CLOS-group breakdown in
// both text and JSON.
func TestAnalyzeMultiHPTrace(t *testing.T) {
	var hps []dicer.HPApp
	for _, name := range []string{"omnetpp1", "sphinx1", "milc1"} {
		p, err := dicer.AppByName(name)
		if err != nil {
			t.Fatal(err)
		}
		hps = append(hps, dicer.HPApp{Profile: p})
	}
	be, err := dicer.AppByName("gcc_base1")
	if err != nil {
		t.Fatal(err)
	}

	var rec bytes.Buffer
	jl := dicer.NewTraceJSONL(&rec)
	ms := &dicer.MultiScenario{
		HPs:            hps,
		BEs:            []dicer.Profile{be, be, be},
		HorizonPeriods: 30,
		Trace:          jl,
	}
	if _, err := ms.Run(); err != nil {
		t.Fatal(err)
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(t.TempDir(), "multi.jsonl")
	if err := os.WriteFile(trace, rec.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := runAnalyze([]string{trace}, &out); err != nil {
		t.Fatalf("analyze rejected a v2 trace: %v", err)
	}
	if !strings.Contains(out.String(), "CLOS group breakdown:") {
		t.Errorf("v2 analyze report missing group breakdown:\n%s", out.String())
	}

	out.Reset()
	if err := runAnalyze([]string{"-json", trace}, &out); err != nil {
		t.Fatal(err)
	}
	var rep diag.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("analyze -json is not valid JSON: %v", err)
	}
	if rep.Schema != "dicer-trace/v2" {
		t.Errorf("report schema = %q, want dicer-trace/v2", rep.Schema)
	}
	if len(rep.Groups) == 0 {
		t.Fatalf("v2 report has no group summaries")
	}
	for _, g := range rep.Groups {
		if g.Periods == 0 || g.WaysMean <= 0 {
			t.Errorf("group %d summary looks empty: %+v", g.Group, g)
		}
	}

	// summary and alerts run the same engine; they must accept v2 too.
	out.Reset()
	if err := runSummary([]string{trace}, &out); err != nil {
		t.Fatalf("summary rejected a v2 trace: %v", err)
	}
	if !strings.Contains(out.String(), "hp_slowdown") {
		t.Errorf("v2 summary missing percentile table:\n%s", out.String())
	}
	out.Reset()
	if err := runAlerts([]string{"-json", trace}, &out); err != nil {
		t.Fatalf("alerts rejected a v2 trace: %v", err)
	}
}

// TestAnalyzeRejectsGarbage covers the error paths: missing file, not a
// trace, wrong argument count.
func TestAnalyzeRejectsGarbage(t *testing.T) {
	var out bytes.Buffer
	if err := runAnalyze([]string{filepath.Join(t.TempDir(), "nope.jsonl")}, &out); err == nil {
		t.Error("analyze accepted a missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"schema\":\"not-a-trace/v9\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runAnalyze([]string{bad}, &out); err == nil {
		t.Error("analyze accepted an unknown schema")
	}
	if err := runAnalyze([]string{"a", "b"}, &out); err == nil {
		t.Error("analyze accepted two positional arguments")
	}
}

// TestLiveOfflineEquivalence is the acceptance test for the diagnostic
// engine's central claim: a live Monitor attached to a running scenario
// and an offline Analyze over the JSONL that same run recorded produce
// the same report — and in a scenario engineered to violate the SLO,
// the burn-rate alert fires at the same period on both paths.
func TestLiveOfflineEquivalence(t *testing.T) {
	// omnetpp1 under UM with 9 streaming BEs misses a 99% SLO nearly
	// every period, so the alert must fire; milc1 under DICER clears a
	// lax 50% SLO every period. Both must agree live/offline.
	cases := []struct {
		name     string
		hp       string
		policy   dicer.Policy
		slo      float64
		wantFire bool
	}{
		{"slo_violation_fires", "omnetpp1", dicer.Unmanaged(), 0.99, true},
		{"managed_run", "milc1", dicer.NewDICER(), 0.5, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := dicer.NewScenario(tc.hp, "gcc_base1", 9)
			sc.HorizonPeriods = 30
			sc.SLO = tc.slo

			live := dicer.NewDiagMonitor(diag.MonitorConfig{})
			var rec bytes.Buffer
			jl := dicer.NewTraceJSONL(&rec)
			sc.Trace = dicer.TraceMulti{jl, live}
			if _, err := sc.Run(tc.policy); err != nil {
				t.Fatal(err)
			}
			if err := jl.Flush(); err != nil {
				t.Fatal(err)
			}

			offline, err := dicer.AnalyzeTrace(bytes.NewReader(rec.Bytes()), dicer.DiagAnalyzeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantFire != (offline.Alert.Fires > 0) {
				t.Fatalf("offline fires = %d, want firing=%v", offline.Alert.Fires, tc.wantFire)
			}

			// The offline engine adds trace-level metadata the live
			// monitor never sees; blank it, then demand byte equality.
			liveRep := live.Report()
			offline.Schema, offline.Workload, offline.Policy, offline.RefSource = "", "", "", ""
			lj, err := liveRep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			oj, err := offline.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(lj, oj) {
				t.Fatalf("live and offline reports diverge:\nlive:\n%s\noffline:\n%s", lj, oj)
			}

			if tc.wantFire {
				ls, os := live.Snapshot(), offline.Alert
				if len(ls.Events) == 0 || len(os.Events) == 0 {
					t.Fatalf("fire events missing: live=%d offline=%d", len(ls.Events), len(os.Events))
				}
				if !ls.Events[0].Firing || !os.Events[0].Firing ||
					ls.Events[0].Period != os.Events[0].Period {
					t.Fatalf("first fire differs: live %+v vs offline %+v", ls.Events[0], os.Events[0])
				}
			}
		})
	}
}
