package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dicer"
)

// analyzeFlags are shared by analyze, summary and alerts: the three
// subcommands run the same offline engine and print different slices of
// its report.
type analyzeFlags struct {
	fs       *flag.FlagSet
	slo      *float64
	aloneIPC *float64
	jsonOut  *bool
}

func newAnalyzeFlags(name string) analyzeFlags {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	return analyzeFlags{
		fs:       fs,
		slo:      fs.Float64("slo", 0, "override the trace header's SLO target (fraction of alone performance)"),
		aloneIPC: fs.Float64("alone-ipc", 0, "override the HP alone-run reference IPC (single-node traces)"),
		jsonOut:  fs.Bool("json", false, "emit the report as JSON instead of text"),
	}
}

// report parses args, runs the engine over the one trace-file argument
// and returns the report.
func (a analyzeFlags) report(args []string) (*dicer.DiagReport, error) {
	if err := a.fs.Parse(args); err != nil {
		return nil, err
	}
	if a.fs.NArg() != 1 {
		return nil, fmt.Errorf("%s: exactly one trace file expected", a.fs.Name())
	}
	f, err := os.Open(a.fs.Arg(0))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dicer.AnalyzeTrace(f, dicer.DiagAnalyzeOptions{
		SLO:      *a.slo,
		AloneIPC: *a.aloneIPC,
	})
}

// runAnalyze prints the full diagnostic report: percentile table,
// burn-rate timeline, decision causes, per-node outliers.
func runAnalyze(args []string, stdout io.Writer) error {
	a := newAnalyzeFlags("analyze")
	rep, err := a.report(args)
	if err != nil {
		return err
	}
	if *a.jsonOut {
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		_, err = stdout.Write(b)
		return err
	}
	rep.Render(stdout)
	return nil
}

// runSummary prints only the percentile table (the quick look).
func runSummary(args []string, stdout io.Writer) error {
	a := newAnalyzeFlags("summary")
	rep, err := a.report(args)
	if err != nil {
		return err
	}
	if *a.jsonOut {
		return writeJSONSlice(stdout, rep.Metrics)
	}
	fmt.Fprintf(stdout, "%-30s %8s %9s %9s %9s %9s %9s\n",
		"metric", "count", "mean", "p50", "p90", "p99", "max")
	for _, s := range rep.Metrics {
		fmt.Fprintf(stdout, "%-30s %8d %9.4g %9.4g %9.4g %9.4g %9.4g\n",
			s.Name, s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
	}
	return nil
}

// runAlerts prints only the burn-rate alert section: configuration,
// violation counts, every transition.
func runAlerts(args []string, stdout io.Writer) error {
	a := newAnalyzeFlags("alerts")
	rep, err := a.report(args)
	if err != nil {
		return err
	}
	if *a.jsonOut {
		return writeJSONValue(stdout, rep.Alert)
	}
	al := rep.Alert
	fmt.Fprintf(stdout, "budget %.3g, windows", al.Config.Budget)
	for _, bw := range al.Config.Windows {
		fmt.Fprintf(stdout, " %dp@%.3gx", bw.Periods, bw.Burn)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "violations %d/%d (rate %.4f)  fires %d  firing-periods %d\n",
		al.Violations, rep.Periods, al.ViolationRate, al.Fires, al.FiringPeriods)
	if len(al.Events) == 0 {
		fmt.Fprintln(stdout, "no alert transitions")
		return nil
	}
	for _, ev := range al.Events {
		state := "cleared"
		if ev.Firing {
			state = "FIRED"
		}
		fmt.Fprintf(stdout, "period %4d  %-7s  short-burn %.3f  long-burn %.3f\n",
			ev.Period, state, ev.ShortBurn, ev.LongBurn)
	}
	return nil
}

func writeJSONValue(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

func writeJSONSlice(w io.Writer, v any) error { return writeJSONValue(w, v) }
