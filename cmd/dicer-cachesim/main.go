// dicer-cachesim replays a synthetic address stream through the
// trace-driven, way-partitioned LLC simulator and prints the measured
// miss-ratio curve — the ground-truth companion to the analytic curves
// the system simulator runs on.
//
// Usage:
//
//	dicer-cachesim -spec "mix(loop:4m@0.5,stream@0.2,zipf:12m:0.9@0.3)"
//	dicer-cachesim -spec loop:8m -repl random -accesses 2000000
//	dicer-cachesim -spec zipf:16m:1.1 -size 25m -ways 20
package main

import (
	"flag"
	"fmt"
	"os"

	"dicer/internal/cache"
	"dicer/internal/mrc"
	"dicer/internal/report"
	"dicer/internal/trace"
)

func main() {
	var (
		spec     = flag.String("spec", "mix(loop:2m@0.5,stream@0.2,zipf:8m:0.9@0.3)", "address-stream spec (see internal/trace.ParseSpec)")
		sizeStr  = flag.String("size", "4m", "cache size (k/m/g suffixes)")
		ways     = flag.Int("ways", 16, "associativity / allocatable ways")
		line     = flag.Int("line", 64, "line size in bytes")
		accesses = flag.Int("accesses", 500000, "accesses per measured pass")
		replStr  = flag.String("repl", "lru", "replacement policy: lru | nru | random")
		seed     = flag.Uint64("seed", 42, "generator seed")
	)
	flag.Parse()

	size, err := trace.ParseSpecSize(*sizeStr)
	check(err)
	repl, err := cache.ParseReplacement(*replStr)
	check(err)
	gen, err := trace.ParseSpec(*spec, *seed)
	check(err)

	cfg := cache.Config{SizeBytes: int(size), Ways: *ways, LineBytes: *line, Clos: 1}
	check(cfg.Validate())

	fmt.Printf("spec: %s\ncache: %s, %d ways, %d B lines, %s replacement\n\n",
		*spec, *sizeStr, *ways, *line, repl)

	t := report.NewTable("measured miss-ratio curve (warm cache)",
		"Ways", "KB", "MissRatio", "MPKI@10")
	var series []float64
	for w := 1; w <= *ways; w++ {
		c, err := cache.New(cfg)
		check(err)
		check(c.SetReplacement(repl))
		if _, err := c.SetMask(0, cache.ContiguousMask(0, w)); err != nil {
			check(err)
		}
		gen.Reset()
		for i := 0; i < *accesses; i++ { // warm-up pass
			c.Access(0, gen.Next())
		}
		c.ResetStats()
		gen.Reset()
		for i := 0; i < *accesses; i++ { // measured pass
			c.Access(0, gen.Next())
		}
		m := c.Stats(0).MissRatio()
		series = append(series, m)
		t.AddRowf(w, mrc.WaysToBytes(w, cfg.SizeBytes, cfg.Ways)/1024,
			m, 10*m)
	}
	check(t.Render(os.Stdout))
	fmt.Printf("\nmiss ratio vs ways: %s\n", report.Sparkline(series))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dicer-cachesim:", err)
		os.Exit(1)
	}
}
