// dicer-pqos mimics the intel-cmt-cat `pqos` utility — the tool whose
// library the DICER paper extends (§3.3) — against the emulated platform.
// It builds a demo co-location (one HP + BEs), applies allocations given
// in pqos syntax, advances simulated time, and prints monitoring data.
//
// Usage:
//
//	dicer-pqos -s                          # show current allocation
//	dicer-pqos -e "llc:0=0xffffe;llc:1=0x1"  # set CBMs, then monitor
//	dicer-pqos -m -t 5                     # monitor for 5 seconds
//	dicer-pqos -hp mcf1 -be lbm1 -n 9 -e "llc:1=0x3" -m
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dicer/internal/app"
	"dicer/internal/machine"
	"dicer/internal/policy"
	"dicer/internal/report"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

func main() {
	var (
		show    = flag.Bool("s", false, "show current allocation and assignment")
		alloc   = flag.String("e", "", `allocation string, e.g. "llc:0=0xffffe;llc:1=0x1"`)
		monitor = flag.Bool("m", false, "monitor LLC occupancy and memory bandwidth")
		seconds = flag.Int("t", 3, "monitoring duration in simulated seconds")
		hp      = flag.String("hp", "omnetpp1", "HP application (catalog name)")
		be      = flag.String("be", "gcc_base1", "BE application (catalog name)")
		n       = flag.Int("n", 9, "BE instances")
	)
	flag.Parse()

	m := machine.Default()
	r, err := sim.New(m, 2)
	check(err)
	check(r.Attach(0, policy.HPClos, app.MustByName(*hp)))
	for i := 1; i <= *n; i++ {
		check(r.Attach(i, policy.BEClos, app.MustByName(*be)))
	}
	emu := resctrl.NewEmu(r, true)

	if *alloc != "" {
		check(applyAlloc(emu, *alloc))
		fmt.Printf("Allocation configuration altered.\n\n")
	}
	if *show || *alloc != "" {
		showAlloc(emu)
	}
	if *monitor {
		monitorLoop(emu, *seconds)
	}
	if !*show && *alloc == "" && !*monitor {
		flag.Usage()
		os.Exit(2)
	}
}

// applyAlloc parses pqos -e syntax: "llc:<clos>=<mask>[;llc:<clos>=<mask>...]".
func applyAlloc(sys resctrl.System, s string) error {
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rest, ok := strings.CutPrefix(part, "llc:")
		if !ok {
			return fmt.Errorf("unsupported allocation %q (only llc: is implemented)", part)
		}
		closStr, maskStr, ok := strings.Cut(rest, "=")
		if !ok {
			return fmt.Errorf("malformed allocation %q", part)
		}
		clos, err := strconv.Atoi(closStr)
		if err != nil {
			return fmt.Errorf("bad CLOS in %q", part)
		}
		mask, err := strconv.ParseUint(strings.TrimPrefix(maskStr, "0x"), 16, 64)
		if err != nil {
			return fmt.Errorf("bad mask in %q", part)
		}
		if err := sys.SetCBM(clos, mask); err != nil {
			return err
		}
	}
	return nil
}

// showAlloc prints the pqos -s view.
func showAlloc(sys resctrl.System) {
	fmt.Println("L3CA COS definitions:")
	for clos := 0; clos < sys.NumClos(); clos++ {
		fmt.Printf("    L3CA COS%d => MASK 0x%x\n", clos, sys.CBM(clos))
	}
	fmt.Println("Core information:")
	for _, c := range sys.Counters().Cores {
		fmt.Printf("    Core %d => COS%d (%s)\n", c.Core, c.Clos, c.Name)
	}
	fmt.Println()
}

// monitorLoop prints per-second monitoring rows, pqos -m style.
func monitorLoop(emu *resctrl.Emu, seconds int) {
	meter := resctrl.NewMeter(emu)
	t := report.NewTable("TIME  (per-CLOS LLC occupancy and memory bandwidth)",
		"t", "COS", "IPC", "LLC[KB]", "MBL[Gbps]")
	for s := 1; s <= seconds; s++ {
		for i := 0; i < 4; i++ {
			emu.Runner().Step(0.25)
		}
		p := meter.Sample()
		for _, g := range p.Groups {
			t.AddRowf(s, g.Clos,
				fmt.Sprintf("%.3f", p.ClosMeanIPC(g.Clos)),
				fmt.Sprintf("%.0f", g.OccupancyBytes/1024),
				fmt.Sprintf("%.1f", g.BandwidthGbps))
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		check(err)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dicer-pqos:", err)
		os.Exit(1)
	}
}
