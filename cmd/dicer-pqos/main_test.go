package main

import (
	"testing"

	"dicer/internal/app"
	"dicer/internal/machine"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

func testSys(t *testing.T) *resctrl.Emu {
	t.Helper()
	r, err := sim.New(machine.Default(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(0, 0, app.MustByName("omnetpp1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(1, 1, app.MustByName("gcc_base1")); err != nil {
		t.Fatal(err)
	}
	return resctrl.NewEmu(r, true)
}

func TestApplyAlloc(t *testing.T) {
	sys := testSys(t)
	if err := applyAlloc(sys, "llc:0=0xffffe;llc:1=0x1"); err != nil {
		t.Fatal(err)
	}
	if sys.CBM(0) != 0xffffe || sys.CBM(1) != 0x1 {
		t.Fatalf("masks %#x/%#x", sys.CBM(0), sys.CBM(1))
	}
	// Masks without the 0x prefix parse too (pqos accepts both).
	if err := applyAlloc(sys, "llc:1=3"); err != nil {
		t.Fatal(err)
	}
	if sys.CBM(1) != 0x3 {
		t.Fatalf("mask %#x", sys.CBM(1))
	}
}

func TestApplyAllocErrors(t *testing.T) {
	sys := testSys(t)
	bad := []string{
		"mba:0=50",  // unsupported resource
		"llc:0",     // missing mask
		"llc:x=0x1", // bad clos
		"llc:0=zz",  // bad mask
		"llc:0=0x5", // non-contiguous (rejected by the platform)
		"llc:9=0x1", // clos out of range
	}
	for _, s := range bad {
		if err := applyAlloc(sys, s); err == nil {
			t.Errorf("%q: expected error", s)
		}
	}
}
