package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dicer/internal/hypo"
)

// Golden FINDINGS reports: every registered hypothesis runs end-to-end
// at a reduced seed set and horizon, and the full multi-report stream is
// compared byte-for-byte. Regenerate after an intentional change with:
//
//	go test ./cmd/dicer-hypo -run TestGolden -update

var update = flag.Bool("update", false, "rewrite golden files with current output")

// smokeOpts is the reduced configuration the goldens (and the CI
// hypo-smoke job) run: 3 seeds, 40-period horizons.
func smokeOpts() options {
	return options{run: "all", seeds: 3, periods: 40, workers: 2}
}

func runToString(t *testing.T, opts options) string {
	t.Helper()
	var b strings.Builder
	if err := runHypotheses(opts, &b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: output drifted from golden file (re-run with -update if intended)\n--- got ---\n%s--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenFindings(t *testing.T) {
	checkGolden(t, "findings_smoke", runToString(t, smokeOpts()))
}

// TestByteDeterminism runs the full reduced registry twice and demands
// identical bytes — the harness's core reproducibility contract, across
// parallel fleet cells, soak scheduling and report rendering.
func TestByteDeterminism(t *testing.T) {
	a := runToString(t, smokeOpts())
	b := runToString(t, smokeOpts())
	if a != b {
		t.Fatal("two identical runs produced different report bytes")
	}
}

// TestOutDirWritesReports checks the -out/-json path: one file pair per
// hypothesis, contents matching the stdout stream.
func TestOutDirWritesReports(t *testing.T) {
	dir := t.TempDir()
	opts := smokeOpts()
	opts.run = "headroom-beats-random"
	opts.outDir = dir
	opts.json = true
	out := runToString(t, opts)

	md, err := os.ReadFile(filepath.Join(dir, "headroom-beats-random.md"))
	if err != nil {
		t.Fatal(err)
	}
	if string(md) != out {
		t.Error("written markdown differs from the stdout stream")
	}
	body, err := os.ReadFile(filepath.Join(dir, "headroom-beats-random.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "headroom-beats-random"`, `"status"`, `"trajectory"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("JSON report missing %s", want)
		}
	}
}

func TestSelectHypotheses(t *testing.T) {
	all, err := selectHypotheses("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(hypo.Names()) {
		t.Fatalf("all selected %d, registry has %d", len(all), len(hypo.Names()))
	}
	two, err := selectHypotheses("headroom-beats-random, chaos-soak-degradation-bound")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "headroom-beats-random" {
		t.Fatalf("unexpected selection: %+v", two)
	}
	if _, err := selectHypotheses("nope"); err == nil {
		t.Fatal("unknown hypothesis accepted")
	}
}

func TestApplyOverrides(t *testing.T) {
	h, err := hypo.ByName("headroom-beats-random")
	if err != nil {
		t.Fatal(err)
	}
	got := applyOverrides(h, options{seeds: 3, periods: 40})
	if len(got.Seeds) != 3 {
		t.Fatalf("seeds = %v", got.Seeds)
	}
	for _, c := range got.Configs {
		if c.Fleet.HorizonPeriods != 40 {
			t.Fatalf("config %s horizon = %d", c.Name, c.Fleet.HorizonPeriods)
		}
	}
	// The override must not mutate the registry's copy.
	if h.Configs[0].Fleet.HorizonPeriods == 40 {
		t.Fatal("applyOverrides mutated the input hypothesis")
	}
}
