// dicer-hypo executes the registered statistical hypotheses: every named
// configuration runs once per seed through the experiment suite / fleet
// machinery, paired per-seed differences are judged with Student-t
// confidence intervals and minimum-effect thresholds, and each
// hypothesis renders a FINDINGS-style report with an explicit
// Confirmed / Refuted / Inconclusive status.
//
// Usage:
//
//	dicer-hypo -list                         # registry with one-line claims
//	dicer-hypo                               # run everything, reports to stdout
//	dicer-hypo -run headroom-beats-random    # one hypothesis
//	dicer-hypo -seeds 8                      # widen replication (seeds 42..49)
//	dicer-hypo -periods 40                   # reduced horizon (smoke runs)
//	dicer-hypo -out findings -json           # write <name>.md and <name>.json
//
// Reports are byte-deterministic for a fixed seed set and horizon.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dicer/internal/experiments"
	"dicer/internal/hypo"
)

// options collects the flag values so tests can drive the same path.
type options struct {
	run     string
	seeds   int
	periods int
	workers int
	outDir  string
	json    bool
}

func main() {
	var opts options
	var list bool
	flag.BoolVar(&list, "list", false, "list registered hypotheses and exit")
	flag.StringVar(&opts.run, "run", "all", "comma-separated hypothesis names, or all")
	flag.IntVar(&opts.seeds, "seeds", 0, "override the seed count (seeds 42..42+n-1; 0 = registry default)")
	flag.IntVar(&opts.periods, "periods", 0, "override fleet/soak horizon periods (0 = registry default)")
	flag.IntVar(&opts.workers, "workers", 0, "parallel simulation workers (0 = all cores)")
	flag.StringVar(&opts.outDir, "out", "", "directory to write <name>.md (and with -json, <name>.json) into")
	flag.BoolVar(&opts.json, "json", false, "also emit JSON results")
	flag.Parse()

	if list {
		for _, h := range hypo.Registered() {
			fmt.Printf("%-40s %s\n", h.Name, h.Title)
		}
		return
	}
	if err := runHypotheses(opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dicer-hypo:", err)
		os.Exit(1)
	}
}

// selectHypotheses resolves -run against the registry.
func selectHypotheses(spec string) ([]hypo.Hypothesis, error) {
	if spec == "" || spec == "all" {
		return hypo.Registered(), nil
	}
	var out []hypo.Hypothesis
	for _, name := range strings.Split(spec, ",") {
		h, err := hypo.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	return out, nil
}

// applyOverrides rewrites seed set and horizons per the flags.
func applyOverrides(h hypo.Hypothesis, opts options) hypo.Hypothesis {
	if opts.seeds > 0 {
		h.Seeds = hypo.DefaultSeeds(opts.seeds)
	}
	if opts.periods > 0 {
		configs := make([]hypo.Config, len(h.Configs))
		for i, c := range h.Configs {
			if c.Fleet != nil {
				f := *c.Fleet
				f.HorizonPeriods = opts.periods
				c.Fleet = &f
			}
			if c.Soak != nil {
				s := *c.Soak
				s.HorizonPeriods = opts.periods
				c.Soak = &s
			}
			if c.MultiHP != nil {
				m := *c.MultiHP
				m.HorizonPeriods = opts.periods
				c.MultiHP = &m
			}
			configs[i] = c
		}
		h.Configs = configs
	}
	return h
}

// runHypotheses executes the selected hypotheses and writes reports.
func runHypotheses(opts options, w io.Writer) error {
	hyps, err := selectHypotheses(opts.run)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultConfig()
	cfg.Workers = opts.workers
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	runner := hypo.NewRunner(suite)

	if opts.outDir != "" {
		if err := os.MkdirAll(opts.outDir, 0o755); err != nil {
			return err
		}
	}
	for i, h := range hyps {
		res, err := runner.Run(applyOverrides(h, opts))
		if err != nil {
			return err
		}
		md := res.Markdown()
		if i > 0 {
			fmt.Fprintln(w)
		}
		if _, err := io.WriteString(w, md); err != nil {
			return err
		}
		if opts.outDir != "" {
			path := filepath.Join(opts.outDir, h.Name+".md")
			if err := os.WriteFile(path, []byte(md), 0o644); err != nil {
				return err
			}
			if opts.json {
				body, err := res.JSON()
				if err != nil {
					return err
				}
				if err := os.WriteFile(filepath.Join(opts.outDir, h.Name+".json"), []byte(body), 0o644); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
