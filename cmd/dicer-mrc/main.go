// dicer-mrc inspects the workload catalog: per-application miss-ratio
// curves over LLC way allocations, footprints, and alone IPC.
//
// Usage:
//
//	dicer-mrc                  # one summary row per catalog application
//	dicer-mrc -app milc1       # full way-by-way curve for one application
package main

import (
	"flag"
	"fmt"
	"os"

	"dicer"
	"dicer/internal/app"
	"dicer/internal/machine"
	"dicer/internal/report"
	"dicer/internal/sim"
)

func main() {
	var (
		name = flag.String("app", "", "catalog application to detail (empty = summary of all)")
	)
	flag.Parse()

	m := machine.Default()
	if *name != "" {
		detail(m, *name)
		return
	}

	t := report.NewTable(
		fmt.Sprintf("catalog: %d applications on %s", len(dicer.Catalog()), experimentsSummary(m)),
		"Name", "Suite", "Class", "Phases", "Footprint MB", "APKI", "Alone IPC")
	for _, p := range dicer.Catalog() {
		t.AddRowf(p.Name, p.Suite, string(p.Class), len(p.Phases),
			p.MaxFootprint()/(1<<20), p.Phases[0].APKI, aloneIPC(m, p, m.LLCWays))
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func detail(m machine.Machine, name string) {
	p, err := dicer.AppByName(name)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s (%s, %s): %d phase(s), footprint %.1f MB\n\n",
		p.Name, p.Suite, p.Class, len(p.Phases), p.MaxFootprint()/(1<<20))
	for _, ph := range p.Phases {
		fmt.Printf("phase %q: %.0fG instructions, base CPI %.2f, APKI %.1f, stream %.0f%%\n",
			ph.Name, ph.Instructions/1e9, ph.BaseCPI, ph.APKI, ph.Curve.StreamFraction()*100)
	}
	fmt.Println()

	t := report.NewTable("alone performance by exclusive LLC ways",
		"Ways", "MB", "MissRatio(p0)", "MPKI(p0)", "IPC")
	var series []float64
	for w := 1; w <= m.LLCWays; w++ {
		bytes := m.WaysBytes(w)
		miss := p.Phases[0].Curve.MissRatio(bytes)
		ipc := aloneIPC(m, p, w)
		series = append(series, ipc)
		t.AddRowf(w, bytes/(1<<20), miss, p.Phases[0].APKI*miss, ipc)
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\nIPC vs ways: %s\n", report.Sparkline(series))
}

// aloneIPC simulates prof alone confined to the given ways.
func aloneIPC(m machine.Machine, prof app.Profile, ways int) float64 {
	r, err := sim.New(m, 1)
	if err != nil {
		fatal(err)
	}
	if err := r.Attach(0, 0, prof); err != nil {
		fatal(err)
	}
	if ways < m.LLCWays {
		mask := (uint64(1)<<uint(ways) - 1)
		if err := r.SetMask(0, mask); err != nil {
			fatal(err)
		}
	}
	for i := 0; i < 240; i++ {
		r.Step(0.25)
	}
	return r.Proc(0).IPC()
}

func experimentsSummary(m machine.Machine) string {
	return fmt.Sprintf("%d cores, %d MB %d-way LLC", m.Cores, m.LLCBytes>>20, m.LLCWays)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dicer-mrc:", err)
	os.Exit(1)
}
