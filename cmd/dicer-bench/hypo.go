package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dicer/internal/experiments"
	"dicer/internal/hypo"
)

// hypoRecord is the perf-trajectory record BENCH_hypo.json carries: the
// full hypothesis registry replicated over a reduced seed set, so the
// cost of statistical verification (which multiplies every fleet/soak
// configuration by its seeds) is tracked alongside the sweep.
type hypoRecord struct {
	Benchmark   string            `json:"benchmark"`
	Hypotheses  int               `json:"hypotheses"`
	Seeds       int               `json:"seeds_per_hypothesis"`
	Cells       int               `json:"cells"`
	Workers     int               `json:"workers"`
	WallSeconds float64           `json:"wall_seconds"`
	SecPerCell  float64           `json:"sec_per_cell"`
	Statuses    map[string]string `json:"statuses"`
}

// writeHypoJSON runs every registered hypothesis with its seed set
// truncated to `seeds` replicates (statistical power is not the point of
// a perf record; cost per cell is) and writes the trajectory record.
func writeHypoJSON(cfg experiments.Config, path string, seeds int) error {
	if seeds < 2 {
		seeds = 2 // hypotheses need >= 2 seeds for intervals
	}
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	runner := hypo.NewRunner(suite)

	rec := hypoRecord{
		Benchmark: "hypo-registry-reduced",
		Seeds:     seeds,
		Workers:   cfg.Workers,
		Statuses:  map[string]string{},
	}
	start := time.Now()
	for _, h := range hypo.Registered() {
		if len(h.Seeds) > seeds {
			h.Seeds = h.Seeds[:seeds]
		}
		res, err := runner.Run(h)
		if err != nil {
			return fmt.Errorf("hypothesis %s: %w", h.Name, err)
		}
		rec.Hypotheses++
		rec.Cells += len(h.Configs) * len(h.Seeds)
		rec.Statuses[h.Name] = string(res.Status)
	}
	rec.WallSeconds = time.Since(start).Seconds()
	if rec.Cells > 0 {
		rec.SecPerCell = rec.WallSeconds / float64(rec.Cells)
	}

	body, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("hypo: %d hypotheses x %d seeds (%d cells), %.2f s wall, %.3f s/cell\nwrote %s\n",
		rec.Hypotheses, rec.Seeds, rec.Cells, rec.WallSeconds, rec.SecPerCell, path)
	return nil
}
