// dicer-bench regenerates the tables and figures of the DICER paper's
// evaluation on the simulated platform.
//
// Usage:
//
//	dicer-bench -fig all            # everything (slow: full 59x59 sweep)
//	dicer-bench -fig 1              # Figure 1 only
//	dicer-bench -fig headline       # the paper's headline claims
//	dicer-bench -fig 3 -hp milc1 -be gcc_base1
//	dicer-bench -fig 5 -csv out/    # also write CSV files
//	dicer-bench -fig 1 -cpuprofile cpu.pprof   # profile the sweep
//	dicer-bench -sweepjson BENCH_sweep.json    # perf-trajectory record
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"dicer/internal/experiments"
	"dicer/internal/report"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "which figure to regenerate: table1, 1-8, headline, sensitivity, ablation, all")
		hp         = flag.String("hp", "milc1", "HP application for -fig 3")
		be         = flag.String("be", "gcc_base1", "BE application for -fig 3")
		bes        = flag.Int("bes", 9, "number of co-located BE instances")
		csvDir     = flag.String("csv", "", "directory to also write CSV files into")
		jsonDir    = flag.String("json", "", "directory to also write JSON files into")
		workers    = flag.Int("workers", 0, "parallel simulation workers (0 = all cores)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		sweepJSON  = flag.String("sweepjson", "", "measure the uncached 59x59 sweep and write {wall, ns/step, allocs/step, parallel efficiency} JSON to this file, then exit")
		fleetJSON  = flag.String("fleetjson", "", "measure the fleet benchmarks (1000-node scale run + scheduler comparison) and write {wall, ns/node-period, real_time_factor, EFU} JSON to this file, then exit")
		fleetGrid  = flag.Bool("fleetgrid", false, "run the fleet control grid (static/migrate/autoscale/both x node chaos) and render the table, then exit")
		forensics  = flag.Bool("forensics", false, "with -fleetjson: arm the flight recorder during the timed 1000-node run (recorder overhead must fit inside the -against gate)")
		hypoJSON   = flag.String("hypojson", "", "run the hypothesis registry with a reduced seed set and write {wall, s/cell, statuses} JSON to this file, then exit")
		hypoSeeds  = flag.Int("hyposeeds", 2, "seeds per hypothesis for -hypojson")
		against    = flag.String("against", "", "with -sweepjson or -fleetjson: compare the fresh record against this committed record and exit non-zero on regression")
		regressPct = flag.Float64("regress-pct", 15, "with -against: tolerated regression in percent (ns_per_step / allocs_per_step, or ns_per_node_period)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	cfg := experiments.DefaultConfig()
	cfg.Workers = *workers

	if *sweepJSON != "" {
		if err := writeSweepJSON(cfg, *sweepJSON); err != nil {
			fatal(err)
		}
		if *against != "" {
			if err := checkSweepRegression(*sweepJSON, *against, *regressPct); err != nil {
				fatal(err)
			}
		}
		return
	}
	if *hypoJSON != "" {
		if err := writeHypoJSON(cfg, *hypoJSON, *hypoSeeds); err != nil {
			fatal(err)
		}
		return
	}
	if *fleetJSON != "" {
		if err := writeFleetJSON(cfg, *fleetJSON, *forensics); err != nil {
			fatal(err)
		}
		if *against != "" {
			if err := checkFleetRegression(*fleetJSON, *against, *regressPct); err != nil {
				fatal(err)
			}
		}
		return
	}
	if *fleetGrid {
		if err := writeFleetGrid(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("platform: %s\n\n", experiments.MachineSummary(cfg.Machine))

	emit := func(name string, t *report.Table) {
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fatal(err)
			}
			body, err := t.JSON()
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*jsonDir, name+".json")
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}

	want := func(name string) bool {
		return *fig == "all" || strings.EqualFold(*fig, name)
	}

	if want("table1") {
		emit("table1", suite.Table1())
	}
	if want("1") {
		f, err := suite.Figure1(*bes)
		if err != nil {
			fatal(err)
		}
		emit("figure1", f.Table())
	}
	if want("2") {
		f, err := suite.Figure2()
		if err != nil {
			fatal(err)
		}
		emit("figure2", f.Table())
	}
	if want("3") {
		f, err := suite.Figure3(*hp, *be, *bes)
		if err != nil {
			fatal(err)
		}
		emit("figure3", f.Table())
	}
	if want("4") {
		f, err := suite.Figure4(*bes)
		if err != nil {
			fatal(err)
		}
		emit("figure4", f.Table())
	}
	if want("5") {
		f, err := suite.Figure5(*bes)
		if err != nil {
			fatal(err)
		}
		emit("figure5", f.Table())
	}
	if want("sensitivity") {
		for _, sweep := range []struct {
			name string
			run  func(int) (experiments.SensitivityResult, error)
		}{
			{"sensitivity_bw", suite.SensitivityBWThreshold},
			{"sensitivity_alpha", suite.SensitivityAlpha},
			{"sensitivity_phase", suite.SensitivityPhaseThreshold},
			{"sensitivity_step", suite.SensitivitySampleStep},
		} {
			r, err := sweep.run(*bes)
			if err != nil {
				fatal(err)
			}
			emit(sweep.name, r.Table())
		}
	}
	if want("ablation") {
		r, err := suite.Ablations(*bes)
		if err != nil {
			fatal(err)
		}
		emit("ablation", r.Table())
	}
	if want("6") || want("7") || want("8") || want("headline") {
		grid, err := suite.GridFor(*bes)
		if err != nil {
			fatal(err)
		}
		if want("6") {
			emit("figure6", grid.Figure6().Table())
		}
		if want("7") {
			for i, t := range grid.Figure7().Tables() {
				emit(fmt.Sprintf("figure7_slo%d", i), t)
			}
		}
		if want("8") {
			for i, t := range grid.Figure8().Tables() {
				emit(fmt.Sprintf("figure8_%d", i), t)
			}
		}
		if want("headline") {
			emit("headline", grid.Headline(cfg.Machine.Cores).Table())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dicer-bench:", err)
	os.Exit(1)
}
