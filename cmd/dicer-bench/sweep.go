package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dicer/internal/app"
	"dicer/internal/experiments"
)

// sweepRecord is the perf-trajectory record BENCH_sweep.json carries: one
// uncached full-catalog sweep, so future PRs can compare like for like.
type sweepRecord struct {
	Benchmark     string  `json:"benchmark"`
	Workloads     int     `json:"workloads"`
	Steps         int64   `json:"steps"`
	WallSeconds   float64 `json:"wall_seconds"`
	NsPerStep     float64 `json:"ns_per_step"`
	AllocsPerStep float64 `json:"allocs_per_step"`
	UMCDF11Pct    float64 `json:"um_cdf_1_1x_pct"`
	CTCDF11Pct    float64 `json:"ct_cdf_1_1x_pct"`
}

// writeSweepJSON runs the full 59×59 baseline sweep (Figure 1) on a fresh
// suite — nothing memoised, every cell simulated — and records wall time,
// ns per simulator step and allocations per step.
func writeSweepJSON(cfg experiments.Config, path string) error {
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	apps := len(app.Names())
	const policies = 2 // UM and CT

	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	f, err := suite.Figure1(cfg.Machine.Cores - 1)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&msAfter)

	// Steps actually driven: each (HP, BE) pair under each policy for the
	// sweep horizon, plus one full-horizon alone run per catalog app.
	steps := int64(apps*apps*policies)*int64(cfg.SweepHorizonPeriods*cfg.StepsPerPeriod) +
		int64(apps)*int64(cfg.HorizonPeriods*cfg.StepsPerPeriod)

	rec := sweepRecord{
		Benchmark:     "sweep59x59",
		Workloads:     apps * apps,
		Steps:         steps,
		WallSeconds:   wall.Seconds(),
		NsPerStep:     float64(wall.Nanoseconds()) / float64(steps),
		AllocsPerStep: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(steps),
		UMCDF11Pct:    f.UMCDF[1],
		CTCDF11Pct:    f.CTCDF[1],
	}
	body, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("sweep: %d workloads, %d steps, %.2f s wall, %.0f ns/step, %.2f allocs/step\nwrote %s\n",
		rec.Workloads, rec.Steps, rec.WallSeconds, rec.NsPerStep, rec.AllocsPerStep, path)
	return nil
}
