package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dicer/internal/app"
	"dicer/internal/experiments"
)

// sweepRecord is the perf-trajectory record BENCH_sweep.json carries: one
// uncached full-catalog sweep, so future PRs can compare like for like.
// The headline wall/ns/allocs figures come from the parallel run (the
// engine's production configuration); the serial re-run exists to expose
// the executor's speedup and parallel efficiency (speedup ÷ workers).
type sweepRecord struct {
	Benchmark     string  `json:"benchmark"`
	Workloads     int     `json:"workloads"`
	Steps         int64   `json:"steps"`
	WallSeconds   float64 `json:"wall_seconds"`
	NsPerStep     float64 `json:"ns_per_step"`
	AllocsPerStep float64 `json:"allocs_per_step"`
	UMCDF11Pct    float64 `json:"um_cdf_1_1x_pct"`
	CTCDF11Pct    float64 `json:"ct_cdf_1_1x_pct"`

	Workers            int     `json:"workers"`
	SerialWallSeconds  float64 `json:"serial_wall_seconds"`
	SpeedupVsSerial    float64 `json:"speedup_vs_serial"`
	ParallelEfficiency float64 `json:"parallel_efficiency"`
}

// runSweep executes the full 59×59 baseline sweep (Figure 1) on a fresh
// suite — nothing memoised, every cell simulated — and returns the
// figure, wall time, and the allocation count over the run.
func runSweep(cfg experiments.Config) (experiments.Figure1Result, time.Duration, uint64, error) {
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return experiments.Figure1Result{}, 0, 0, err
	}
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	f, err := suite.Figure1(cfg.Machine.Cores - 1)
	if err != nil {
		return experiments.Figure1Result{}, 0, 0, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&msAfter)
	return f, wall, msAfter.Mallocs - msBefore.Mallocs, nil
}

// writeSweepJSON measures the uncached sweep twice — Workers=1, then the
// configured parallel worker count — and records the trajectory figures.
// The equivalence suite guarantees both runs produce identical tables, so
// the serial pass is purely a speedup baseline.
func writeSweepJSON(cfg experiments.Config, path string) error {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	serialCfg := cfg
	serialCfg.Workers = 1
	_, serialWall, _, err := runSweep(serialCfg)
	if err != nil {
		return err
	}

	parCfg := cfg
	parCfg.Workers = workers
	f, wall, mallocs, err := runSweep(parCfg)
	if err != nil {
		return err
	}

	apps := len(app.Names())
	const policies = 2 // UM and CT

	// Steps actually driven: each (HP, BE) pair under each policy for the
	// sweep horizon, plus one full-horizon alone run per catalog app.
	steps := int64(apps*apps*policies)*int64(cfg.SweepHorizonPeriods*cfg.StepsPerPeriod) +
		int64(apps)*int64(cfg.HorizonPeriods*cfg.StepsPerPeriod)

	speedup := serialWall.Seconds() / wall.Seconds()
	rec := sweepRecord{
		Benchmark:          "sweep59x59",
		Workloads:          apps * apps,
		Steps:              steps,
		WallSeconds:        wall.Seconds(),
		NsPerStep:          float64(wall.Nanoseconds()) / float64(steps),
		AllocsPerStep:      float64(mallocs) / float64(steps),
		UMCDF11Pct:         f.UMCDF[1],
		CTCDF11Pct:         f.CTCDF[1],
		Workers:            workers,
		SerialWallSeconds:  serialWall.Seconds(),
		SpeedupVsSerial:    speedup,
		ParallelEfficiency: speedup / float64(workers),
	}
	body, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("sweep: %d workloads, %d steps, %.2f s wall (serial %.2f s, %d workers, efficiency %.2f), %.0f ns/step, %.2f allocs/step\nwrote %s\n",
		rec.Workloads, rec.Steps, rec.WallSeconds, rec.SerialWallSeconds, rec.Workers,
		rec.ParallelEfficiency, rec.NsPerStep, rec.AllocsPerStep, path)
	return nil
}

// checkSweepRegression compares the freshly written record at freshPath
// against the committed record at againstPath and fails when ns_per_step
// or allocs_per_step regresses by more than pct percent. Improvements
// and the CDF shape are not gated here (the CDF is pinned exactly by the
// golden tests); this gate enforces the perf trajectory only.
func checkSweepRegression(freshPath, againstPath string, pct float64) error {
	read := func(path string) (sweepRecord, error) {
		var r sweepRecord
		body, err := os.ReadFile(path)
		if err != nil {
			return r, err
		}
		return r, json.Unmarshal(body, &r)
	}
	fresh, err := read(freshPath)
	if err != nil {
		return err
	}
	committed, err := read(againstPath)
	if err != nil {
		return err
	}
	limit := 1 + pct/100
	fail := false
	report := func(name string, fresh, committed float64) {
		status := "ok"
		if committed > 0 && fresh > committed*limit {
			status = "REGRESSION"
			fail = true
		}
		fmt.Printf("regress-check %-16s fresh %10.4f  committed %10.4f  (%+6.1f%%)  %s\n",
			name, fresh, committed, 100*(fresh/committed-1), status)
	}
	report("ns_per_step", fresh.NsPerStep, committed.NsPerStep)
	report("allocs_per_step", fresh.AllocsPerStep, committed.AllocsPerStep)
	if fail {
		return fmt.Errorf("sweep regressed more than %.0f%% vs %s", pct, againstPath)
	}
	return nil
}
