package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"dicer/internal/experiments"
	"dicer/internal/fleet"
)

// fleetRecord is the perf-trajectory record BENCH_fleet.json carries.
// Two measurements share the record: the 4-node scheduler comparison
// (placement-quality headline, unchanged shape since the fleet landed)
// and the production-scale run — a 1000-node multi-HP cluster with the
// SLO-burn migration loop enabled, stepped through the sharded
// executor. RealTimeFactor is simulated seconds per wall second
// (periods × PeriodSec ÷ wall); above 1 the simulator outruns the
// cluster it models.
type fleetRecord struct {
	Benchmark string `json:"benchmark"`

	Nodes           int     `json:"nodes"`
	Periods         int     `json:"periods"`
	Workers         int     `json:"workers"`
	NodePeriods     int64   `json:"node_periods"`
	WallSeconds     float64 `json:"wall_seconds"`
	NsPerNodePeriod float64 `json:"ns_per_node_period"`
	RealTimeFactor  float64 `json:"real_time_factor"`

	ScaleFleetEFU   float64 `json:"scale_fleet_efu"`
	ScaleSLOViol    int     `json:"scale_slo_violation_periods"`
	ScaleDone       int     `json:"scale_done"`
	ScaleMigrations int     `json:"scale_migrations"`
	ScaleEvicted    int     `json:"scale_evicted"`
	// Forensics/ScaleIncidents record whether the flight recorder was
	// armed for the timed run (-forensics) and how many incident bundles
	// it sealed; the recorder must fit inside the ns_per_node_period gate.
	Forensics      bool `json:"forensics,omitempty"`
	ScaleIncidents int  `json:"scale_incidents,omitempty"`

	HeadroomEFU      float64 `json:"headroom_fleet_efu"`
	RandomEFU        float64 `json:"random_fleet_efu"`
	HeadroomSLOViol  int     `json:"headroom_slo_violation_periods"`
	RandomSLOViol    int     `json:"random_slo_violation_periods"`
	HeadroomP95Wait  float64 `json:"headroom_p95_wait_periods"`
	HeadroomRejected int     `json:"headroom_rejected"`
}

// scaleFleetConfig is the pinned production-scale configuration: 1000
// two-HP nodes under headroom placement and per-node DICER, arrivals
// scaled to keep roughly half the BE capacity busy, burn-rate migration
// on. Autoscaling stays off so node_periods is exactly nodes × periods
// and the throughput figure is comparable across PRs.
func scaleFleetConfig(cfg experiments.Config, workers int, forensics bool, alone func(string) (float64, error)) fleet.Config {
	fc := fleet.Config{
		Nodes:          1000,
		HPsPerNode:     2,
		Machine:        cfg.Machine,
		Policy:         "DICER",
		DICER:          cfg.DICER,
		PeriodSec:      cfg.PeriodSec,
		StepsPerPeriod: cfg.StepsPerPeriod,
		HorizonPeriods: 60,
		Scheduler:      "headroom",
		QueueCap:       2000,
		Workers:        workers,
		Migration:      fleet.MigrationConfig{Enabled: true},
		Arrivals: fleet.ArrivalConfig{
			Seed: 42, RatePerPeriod: 400, MeanDurationPeriods: 10,
			ClassWeights: [4]float64{0.5, 0.25, 0.15, 0.1},
		},
		AloneIPC: alone,
	}
	if forensics {
		fc.Forensics = fleet.ForensicsConfig{Enabled: true}
	}
	return fc
}

// writeFleetJSON measures both fleet benchmarks on a fresh suite. The
// 4-node scheduler comparison runs first; besides its quality headline
// it warms the suite's alone-run memo, so the timed 1000-node run pays
// for stepping, placement and migration — not for alone references.
func writeFleetJSON(cfg experiments.Config, path string, forensics bool) error {
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	fc := experiments.FleetConfig{
		Nodes:          4,
		HorizonPeriods: cfg.HorizonPeriods,
		Arrivals: fleet.ArrivalConfig{
			Seed: 42, RatePerPeriod: 2, MeanDurationPeriods: 10,
			ClassWeights: [4]float64{0.5, 0.25, 0.15, 0.1},
		},
		QueueCap: 40,
		Policies: []experiments.PolicyName{experiments.DICER},
	}
	cells, err := suite.FleetSuite(fc)
	if err != nil {
		return err
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scale := scaleFleetConfig(cfg, workers, forensics, suite.AloneIPC)
	c, err := fleet.New(scale)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := c.Run()
	if err != nil {
		return err
	}
	wall := time.Since(start)

	rec := fleetRecord{
		Benchmark:   "fleetScale1000",
		Nodes:       scale.Nodes,
		Periods:     scale.HorizonPeriods,
		Workers:     workers,
		NodePeriods: int64(scale.Nodes) * int64(scale.HorizonPeriods),
		WallSeconds: wall.Seconds(),

		ScaleFleetEFU:   res.FleetEFU,
		ScaleSLOViol:    res.SLOViolationPeriods,
		ScaleDone:       res.Done,
		ScaleMigrations: res.Migrations,
		ScaleEvicted:    res.Evicted,
		Forensics:       forensics,
		ScaleIncidents:  res.Incidents,
	}
	rec.NsPerNodePeriod = float64(wall.Nanoseconds()) / float64(rec.NodePeriods)
	rec.RealTimeFactor = float64(scale.HorizonPeriods) * scale.PeriodSec / wall.Seconds()
	for _, cell := range cells {
		switch cell.Scheduler {
		case "headroom":
			rec.HeadroomEFU = cell.Result.FleetEFU
			rec.HeadroomSLOViol = cell.Result.SLOViolationPeriods
			rec.HeadroomP95Wait = cell.Result.P95QueueWait
			rec.HeadroomRejected = cell.Result.Rejected
		case "random":
			rec.RandomEFU = cell.Result.FleetEFU
			rec.RandomSLOViol = cell.Result.SLOViolationPeriods
		}
	}

	body, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("fleet: %d nodes x %d periods (%d workers), %.2f s wall, %.0f ns/node-period, %.1fx real time\n"+
		"       scale EFU %.4f (slo %d, %d migrations evicting %d), headroom EFU %.4f vs random %.4f\n",
		rec.Nodes, rec.Periods, rec.Workers, rec.WallSeconds, rec.NsPerNodePeriod, rec.RealTimeFactor,
		rec.ScaleFleetEFU, rec.ScaleSLOViol, rec.ScaleMigrations, rec.ScaleEvicted,
		rec.HeadroomEFU, rec.RandomEFU)
	if forensics {
		fmt.Printf("       flight recorder armed: %d incident bundle(s) sealed during the timed run\n",
			rec.ScaleIncidents)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeFleetGrid runs the control grid behind -fleetgrid: each control
// mode (static / migrate / autoscale / both) crossed with each node
// chaos schedule over the saturating stream-heavy mix the hypothesis
// registry uses, rendered as the EXPERIMENTS.md migration-vs-static
// table.
func writeFleetGrid(cfg experiments.Config, w io.Writer) error {
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	cells, err := suite.FleetControlGrid(experiments.FleetControlConfig{
		HorizonPeriods: cfg.HorizonPeriods,
		Arrivals: fleet.ArrivalConfig{
			Seed: 42, RatePerPeriod: 3, MeanDurationPeriods: 10,
			ClassWeights: [4]float64{0.5, 0.25, 0.15, 0.1},
		},
		QueueCap:  40,
		ChaosSeed: 1,
	})
	if err != nil {
		return err
	}
	return experiments.FleetControlTable(cells).Render(w)
}

// checkFleetRegression compares the freshly written record at freshPath
// against the committed record at againstPath and fails when
// ns_per_node_period regresses by more than pct percent, or when the
// simulator falls behind real time. Quality figures are not gated here
// (they are pinned by the golden and hypothesis suites); this gate
// enforces the stepping-throughput trajectory only.
func checkFleetRegression(freshPath, againstPath string, pct float64) error {
	read := func(path string) (fleetRecord, error) {
		var r fleetRecord
		body, err := os.ReadFile(path)
		if err != nil {
			return r, err
		}
		return r, json.Unmarshal(body, &r)
	}
	fresh, err := read(freshPath)
	if err != nil {
		return err
	}
	committed, err := read(againstPath)
	if err != nil {
		return err
	}
	limit := 1 + pct/100
	fail := false
	report := func(name string, fresh, committed float64) {
		status := "ok"
		if committed > 0 && fresh > committed*limit {
			status = "REGRESSION"
			fail = true
		}
		fmt.Printf("regress-check %-18s fresh %12.4f  committed %12.4f  (%+6.1f%%)  %s\n",
			name, fresh, committed, 100*(fresh/committed-1), status)
	}
	report("ns_per_node_period", fresh.NsPerNodePeriod, committed.NsPerNodePeriod)
	if fresh.RealTimeFactor < 1 {
		fmt.Printf("regress-check %-18s fresh %12.4f  (must stay above 1)  REGRESSION\n",
			"real_time_factor", fresh.RealTimeFactor)
		fail = true
	}
	if fail {
		return fmt.Errorf("fleet bench regressed more than %.0f%% vs %s", pct, againstPath)
	}
	return nil
}
