package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dicer/internal/experiments"
	"dicer/internal/fleet"
)

// fleetRecord is the perf-trajectory record BENCH_fleet.json carries: one
// uncached fleet comparison (every scheduler under DICER nodes on a
// shared arrival trace), so future PRs can compare stepping throughput
// and placement quality like for like.
type fleetRecord struct {
	Benchmark       string  `json:"benchmark"`
	Nodes           int     `json:"nodes"`
	Periods         int     `json:"periods"`
	Cells           int     `json:"cells"`
	NodePeriods     int64   `json:"node_periods"`
	WallSeconds     float64 `json:"wall_seconds"`
	NsPerNodePeriod float64 `json:"ns_per_node_period"`

	HeadroomEFU      float64 `json:"headroom_fleet_efu"`
	RandomEFU        float64 `json:"random_fleet_efu"`
	HeadroomSLOViol  int     `json:"headroom_slo_violation_periods"`
	RandomSLOViol    int     `json:"random_slo_violation_periods"`
	HeadroomP95Wait  float64 `json:"headroom_p95_wait_periods"`
	HeadroomRejected int     `json:"headroom_rejected"`
}

// writeFleetJSON runs the scheduler comparison on a fresh suite and
// records wall time per simulated node-period plus the placement-quality
// headline (headroom vs random).
func writeFleetJSON(cfg experiments.Config, path string) error {
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	fc := experiments.FleetConfig{
		Nodes:          4,
		HorizonPeriods: cfg.HorizonPeriods,
		Arrivals: fleet.ArrivalConfig{
			Seed: 42, RatePerPeriod: 2, MeanDurationPeriods: 10,
			ClassWeights: [4]float64{0.5, 0.25, 0.15, 0.1},
		},
		QueueCap: 40,
		Policies: []experiments.PolicyName{experiments.DICER},
	}

	start := time.Now()
	cells, err := suite.FleetSuite(fc)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	rec := fleetRecord{
		Benchmark:   "fleetSchedulers",
		Nodes:       fc.Nodes,
		Periods:     fc.HorizonPeriods,
		Cells:       len(cells),
		NodePeriods: int64(len(cells)) * int64(fc.Nodes) * int64(fc.HorizonPeriods),
		WallSeconds: wall.Seconds(),
	}
	rec.NsPerNodePeriod = float64(wall.Nanoseconds()) / float64(rec.NodePeriods)
	for _, c := range cells {
		switch c.Scheduler {
		case "headroom":
			rec.HeadroomEFU = c.Result.FleetEFU
			rec.HeadroomSLOViol = c.Result.SLOViolationPeriods
			rec.HeadroomP95Wait = c.Result.P95QueueWait
			rec.HeadroomRejected = c.Result.Rejected
		case "random":
			rec.RandomEFU = c.Result.FleetEFU
			rec.RandomSLOViol = c.Result.SLOViolationPeriods
		}
	}

	body, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("fleet: %d cells x %d nodes x %d periods, %.2f s wall, %.0f ns/node-period\n"+
		"       headroom EFU %.4f (slo %d) vs random EFU %.4f (slo %d)\nwrote %s\n",
		rec.Cells, rec.Nodes, rec.Periods, rec.WallSeconds, rec.NsPerNodePeriod,
		rec.HeadroomEFU, rec.HeadroomSLOViol, rec.RandomEFU, rec.RandomSLOViol, path)
	return nil
}
