// dicer-fleet consolidates a cluster of simulated DICER nodes: an
// open-loop stream of best-effort jobs is admitted, placed by a
// pluggable scheduler, and executed against per-node partitioning
// controllers, with node freeze/loss chaos and bounded re-placement.
//
// Usage:
//
//	dicer-fleet -nodes 4 -periods 120 -scheduler headroom
//	dicer-fleet -scheduler random -rate 2.5 -trace-out cluster.jsonl
//	dicer-fleet -node-chaos node-storm -chaos-seed 7 -summary-json summary.json
//	dicer-fleet -migrate -autoscale -max-nodes 8 -node-chaos node-storm
//	dicer-fleet -serve :9091
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dicer/internal/chaos"
	"dicer/internal/fleet"
)

// fleetParams carries the parsed flags; shared by batch and serve modes.
type fleetParams struct {
	nodes     int
	hps       string
	policy    string
	scheduler string
	schedSeed int64
	periods   int
	slo       float64
	queueCap  int

	seed    int64
	rate    float64
	meanDur float64
	stream  float64

	chaosName string
	chaosSeed int64

	migrate   bool
	autoscale bool
	maxNodes  int
	minNodes  int

	forensics   bool
	incidentDir string

	pprof bool
}

// config builds the fleet configuration the flags describe.
func (p fleetParams) config() (fleet.Config, error) {
	pol, ok := map[string]string{"um": "UM", "ct": "CT", "dicer": "DICER"}[strings.ToLower(p.policy)]
	if !ok {
		return fleet.Config{}, fmt.Errorf("unknown policy %q (have um, ct, dicer)", p.policy)
	}
	cfg := fleet.Config{
		Nodes:          p.nodes,
		HPs:            splitList(p.hps),
		Policy:         pol,
		SLO:            p.slo,
		HorizonPeriods: p.periods,
		Scheduler:      p.scheduler,
		SchedSeed:      p.schedSeed,
		QueueCap:       p.queueCap,
		Arrivals: fleet.ArrivalConfig{
			Seed:                p.seed,
			RatePerPeriod:       p.rate,
			MeanDurationPeriods: p.meanDur,
		},
	}
	if p.stream > 0 {
		rest := (1 - p.stream) / 3
		cfg.Arrivals.ClassWeights = [4]float64{p.stream, rest, rest, rest}
	}
	if p.chaosName != "" && p.chaosName != "none" {
		sched, err := chaos.NodeScheduleByName(p.chaosName, p.chaosSeed, p.nodes, p.periods)
		if err != nil {
			return fleet.Config{}, err
		}
		cfg.NodeChaos = sched
	}
	if p.migrate {
		cfg.Migration = fleet.MigrationConfig{Enabled: true}
	}
	if p.autoscale {
		cfg.Autoscale = fleet.AutoscaleConfig{Enabled: true, MaxNodes: p.maxNodes, MinNodes: p.minNodes}
	}
	if p.forensics || p.incidentDir != "" {
		cfg.Forensics = fleet.ForensicsConfig{Enabled: true}
	}
	return cfg, nil
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func main() {
	var p fleetParams
	flag.IntVar(&p.nodes, "nodes", 4, "cluster size")
	flag.StringVar(&p.hps, "hp", "omnetpp1,sphinx1,mcf1,Xalan1", "comma-separated HP applications, assigned round-robin")
	flag.StringVar(&p.policy, "policy", "dicer", "node-local policy: um | ct | dicer")
	flag.StringVar(&p.scheduler, "scheduler", "headroom", "placement scheduler: "+strings.Join(fleet.SchedulerNames(), " | "))
	flag.Int64Var(&p.schedSeed, "sched-seed", 1, "seed for the random scheduler")
	flag.IntVar(&p.periods, "periods", 120, "monitoring periods to simulate")
	flag.Float64Var(&p.slo, "slo", 0.9, "HP SLO as a fraction of alone performance")
	flag.IntVar(&p.queueCap, "queue-cap", 32, "admission queue capacity")
	flag.Int64Var(&p.seed, "seed", 42, "seed for the BE arrival stream")
	flag.Float64Var(&p.rate, "rate", 2, "mean BE job arrivals per period (Poisson)")
	flag.Float64Var(&p.meanDur, "mean-dur", 10, "mean BE job duration in periods (exponential)")
	flag.Float64Var(&p.stream, "stream-weight", 0.5, "arrival weight of streaming apps (rest split evenly; 0 = catalog default mix)")
	flag.StringVar(&p.chaosName, "node-chaos", "none", "node fault schedule: none | "+strings.Join(nodeChaosNames(), " | "))
	flag.Int64Var(&p.chaosSeed, "chaos-seed", 1, "seed for the node fault stream")
	flag.BoolVar(&p.migrate, "migrate", false, "evict BE jobs off nodes whose SLO burn-rate alert fires")
	flag.BoolVar(&p.autoscale, "autoscale", false, "enable the repartition-first autoscaler (repack, then add nodes; drain when idle)")
	flag.IntVar(&p.maxNodes, "max-nodes", 0, "with -autoscale: working-fleet upper bound (0 = 2x -nodes)")
	flag.IntVar(&p.minNodes, "min-nodes", 0, "with -autoscale: working-fleet lower bound (0 = -nodes)")
	flag.BoolVar(&p.forensics, "forensics", false, "arm the flight recorder (per-node black-box rings sealed into incident bundles on SLO-burn, chaos or guard-veto triggers)")
	flag.StringVar(&p.incidentDir, "incident-dir", "", "write sealed incident bundles to this directory (implies -forensics); feed them to dicer-trace explain")
	flag.BoolVar(&p.pprof, "pprof", false, "with -serve: also expose /debug/pprof/ profiling endpoints")
	var (
		traceOut    = flag.String("trace-out", "", "write the JSONL cluster trace to this file")
		summaryJSON = flag.String("summary-json", "", "write the run summary as JSON to this file")
		every       = flag.Int("every", 20, "print a status row every N periods (0 = none)")
		serveAddr   = flag.String("serve", "", "loop the cluster and serve /metrics, /nodes, /queue, /alerts, /events and /healthz on this address (e.g. :9091)")
	)
	flag.Parse()

	if *serveAddr != "" {
		if err := runServe(*serveAddr, p); err != nil {
			fatal(err)
		}
		return // graceful shutdown (SIGINT/SIGTERM)
	}
	if err := runBatch(p, *traceOut, *summaryJSON, *every); err != nil {
		fatal(err)
	}
}

// runBatch executes one seeded cluster run and prints the summary.
func runBatch(p fleetParams, traceOut, summaryJSON string, every int) error {
	cfg, err := p.config()
	if err != nil {
		return err
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Trace = f
	}
	if every > 0 {
		cfg.OnPeriod = func(rec *fleet.ClusterRecord, _ []fleet.QueueEntry) {
			if rec.Period%every != 0 {
				return
			}
			fmt.Printf("t=%3d efu=%.3f running=%2d queued=%2d sloViol=%d losses=%d\n",
				rec.Period, rec.FleetEFU, rec.Running, rec.QueueLen,
				rec.SLOViolations, rec.Losses)
		}
	}

	c, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("fleet: %d nodes, policy %s, scheduler %s, %d periods (arrivals seed=%d rate=%.2g)\n\n",
		cfg.Nodes, cfg.Policy, cfg.Scheduler, cfg.HorizonPeriods, cfg.Arrivals.Seed, p.rate)
	res, err := c.Run()
	if err != nil {
		return err
	}

	fmt.Printf("\nresults (%s / %s):\n", res.Scheduler, res.Policy)
	fmt.Printf("  fleet EFU          %.3f\n", res.FleetEFU)
	fmt.Printf("  SLO violations     %d node-periods\n", res.SLOViolationPeriods)
	fmt.Printf("  jobs               %d arrived, %d admitted, %d rejected (%.1f%%)\n",
		res.Arrivals, res.Admitted, res.Rejected, 100*res.RejectRate)
	fmt.Printf("  completed          %d (running %d, queued %d, dropped %d at end)\n",
		res.Done, res.RunningEnd, res.QueuedEnd, res.Dropped)
	fmt.Printf("  queue wait         mean %.1f, p95 %.1f periods\n", res.MeanQueueWait, res.P95QueueWait)
	if res.Freezes > 0 || res.Losses > 0 {
		fmt.Printf("  chaos              %d freezes, %d losses, %d re-placements\n",
			res.Freezes, res.Losses, res.Requeued)
	}
	if res.Migrations > 0 {
		fmt.Printf("  migration          %d burn-rate migrations evicting %d BE jobs\n",
			res.Migrations, res.Evicted)
	}
	if res.Repacks > 0 || res.ScaleUps > 0 || res.ScaleDowns > 0 {
		fmt.Printf("  autoscale          %d repacks, %d scale-ups (+%d nodes), %d scale-downs (%d retired), %d nodes at end\n",
			res.Repacks, res.ScaleUps, res.NodesAdded, res.ScaleDowns, res.NodesRetired, res.NodesEnd)
	}
	if cfg.Forensics.Enabled {
		fmt.Printf("  forensics          %d incident bundle(s) sealed", res.Incidents)
		if res.IncidentsDropped > 0 {
			fmt.Printf(", %d trigger(s) dropped at the retention bound", res.IncidentsDropped)
		}
		fmt.Println()
		if p.incidentDir != "" {
			n, err := dumpIncidents(p.incidentDir, c.Incidents())
			if err != nil {
				return err
			}
			fmt.Printf("  incident-dir       %s (%d file(s))\n", p.incidentDir, n)
		}
	}
	if traceOut != "" {
		fmt.Printf("  trace              %s\n", traceOut)
	}

	if summaryJSON != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(summaryJSON, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  summary            %s\n", summaryJSON)
	}
	return nil
}

// dumpIncidents writes each sealed bundle to dir under its canonical
// filename, returning how many were written.
func dumpIncidents(dir string, incs []*fleet.Incident) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	for _, inc := range incs {
		f, err := os.Create(filepath.Join(dir, inc.Filename()))
		if err != nil {
			return 0, err
		}
		if err := inc.Dump(f); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
	}
	return len(incs), nil
}

// nodeChaosNames lists the canned node fault schedules.
func nodeChaosNames() []string {
	var names []string
	for _, s := range chaos.NodeSchedules(1, 1, 1) {
		names = append(names, s.Name)
	}
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dicer-fleet:", err)
	os.Exit(1)
}
