package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"dicer/internal/diag"
	"dicer/internal/fleet"
	"dicer/internal/httpd"
	"dicer/internal/machine"
	"dicer/internal/metrics"
)

// fleetServeState is shared between the background cluster loop and the
// HTTP handlers: a Prometheus fleet exporter for /metrics, the fleet
// diagnostic monitor (per-node + aggregate burn-rate alerters, slowdown
// and EFU histograms) behind /alerts and /events, plus the most recent
// period's record and queue for /nodes and /queue.
type fleetServeState struct {
	exporter *metrics.FleetExporter
	monitor  *diag.FleetMonitor
	events   *httpd.EventStream

	incidentDir string

	mu        sync.Mutex
	lastRec   fleet.ClusterRecord
	queue     []fleet.QueueEntry
	haveRec   bool
	laps      int
	lastErr   error
	incidents []*fleet.Incident
}

// maxServedIncidents bounds the bundles /incidents retains across laps;
// older ones rotate out (bundles written to -incident-dir persist).
const maxServedIncidents = 64

func newFleetServeState(p fleetParams) *fleetServeState {
	st := &fleetServeState{
		exporter:    metrics.NewFleetExporter(),
		events:      httpd.NewEventStream(),
		incidentDir: p.incidentDir,
	}
	st.monitor = diag.NewFleetMonitor(diag.FleetMonitorConfig{
		SLO:      p.slo,
		LinkGbps: machine.Default().Link.CapacityGBps,
		OnAlert: func(node int, ev diag.AlertEvent) {
			b, err := json.Marshal(struct {
				Node int `json:"node"` // -1 = fleet aggregate
				diag.AlertEvent
			}{node, ev})
			if err == nil {
				st.events.Publish("alert", string(b))
			}
		},
	})
	return st
}

// observe is the cluster's OnPeriod callback.
func (st *fleetServeState) observe(rec *fleet.ClusterRecord, queue []fleet.QueueEntry) {
	st.exporter.Observe(rec.Sample())
	st.monitor.ObserveRecord(rec)
	st.mu.Lock()
	st.lastRec = *rec
	st.lastRec.Nodes = append([]fleet.Heartbeat(nil), rec.Nodes...)
	st.queue = queue
	st.haveRec = true
	st.mu.Unlock()
}

func (st *fleetServeState) setErr(err error) {
	st.mu.Lock()
	st.lastErr = err
	st.mu.Unlock()
}

// onIncident is the cluster's OnIncident callback: retain the bundle
// for /incidents (bounded), push its manifest to SSE subscribers, and
// persist it when -incident-dir is set.
func (st *fleetServeState) onIncident(inc *fleet.Incident) {
	st.mu.Lock()
	st.incidents = append(st.incidents, inc)
	if len(st.incidents) > maxServedIncidents {
		st.incidents = st.incidents[len(st.incidents)-maxServedIncidents:]
	}
	st.mu.Unlock()
	if b, err := json.Marshal(inc.Manifest); err == nil {
		st.events.Publish("incident", string(b))
	}
	if st.incidentDir != "" {
		if _, err := dumpIncidents(st.incidentDir, []*fleet.Incident{inc}); err != nil {
			st.setErr(err)
		}
	}
}

// loop runs cluster laps until one fails; the failure parks in /healthz.
// Each lap rebuilds the cluster, so node and controller state start
// fresh while the exporter's counters and the monitor's alert history
// accumulate across laps.
func (st *fleetServeState) loop(p fleetParams) {
	for {
		cfg, err := p.config()
		if err != nil {
			st.setErr(err)
			return
		}
		cfg.OnPeriod = st.observe
		if cfg.Forensics.Enabled {
			cfg.OnIncident = st.onIncident
		}
		c, err := fleet.New(cfg)
		if err != nil {
			st.setErr(err)
			return
		}
		if _, err := c.Run(); err != nil {
			st.setErr(err)
			return
		}
		st.mu.Lock()
		st.laps++
		st.mu.Unlock()
	}
}

// mux wires the endpoints. Split from runServe so tests drive it through
// httptest without binding a socket.
func (st *fleetServeState) mux(withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := st.exporter.WriteTo(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		st.monitor.WriteProm(w)
		st.events.WriteProm(w)
	})
	mux.HandleFunc("/nodes", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		rec, ok := st.lastRec, st.haveRec
		st.mu.Unlock()
		if !ok {
			http.Error(w, "no cluster period recorded yet", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, rec.Nodes)
	})
	mux.HandleFunc("/queue", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		q, ok := st.queue, st.haveRec
		st.mu.Unlock()
		if !ok {
			http.Error(w, "no cluster period recorded yet", http.StatusServiceUnavailable)
			return
		}
		if q == nil {
			q = []fleet.QueueEntry{}
		}
		writeJSON(w, q)
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, st.monitor.Snapshot())
	})
	mux.Handle("/events", st.events)
	// /incidents lists sealed forensic bundles (manifest + filename);
	// /incidents/<filename> streams one bundle as dicer-incident/v1
	// JSONL, ready for `dicer-trace explain`.
	mux.HandleFunc("/incidents", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		incs := append([]*fleet.Incident(nil), st.incidents...)
		st.mu.Unlock()
		type listed struct {
			File string `json:"file"`
			fleet.IncidentManifest
		}
		out := make([]listed, 0, len(incs))
		for _, inc := range incs {
			out = append(out, listed{File: inc.Filename(), IncidentManifest: inc.Manifest})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/incidents/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/incidents/")
		st.mu.Lock()
		var found *fleet.Incident
		for _, inc := range st.incidents { // last match wins across laps
			if inc.Filename() == name {
				found = inc
			}
		}
		st.mu.Unlock()
		if found == nil {
			http.Error(w, "no such incident bundle", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := found.Dump(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		err, laps := st.lastErr, st.laps
		st.mu.Unlock()
		if err != nil {
			http.Error(w, "cluster loop stopped: "+err.Error(), http.StatusInternalServerError)
			return
		}
		if degraded, why := st.monitor.Degraded(); degraded {
			http.Error(w, "degraded: "+why, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "ok laps=%d periods=%d\n", laps, st.exporter.Periods())
	})
	if withPprof {
		httpd.AddPprof(mux)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// runServe starts the background cluster loop and serves the fleet
// observability endpoints with header/idle timeouts, draining gracefully
// on SIGINT/SIGTERM.
func runServe(addr string, p fleetParams) error {
	st := newFleetServeState(p)
	go st.loop(p)
	fmt.Printf("serving /metrics /nodes /queue /alerts /events /incidents /healthz on %s (%d nodes, policy %s, scheduler %s, %d periods per lap)\n",
		addr, p.nodes, p.policy, p.scheduler, p.periods)
	return httpd.ListenAndServe(addr, st.mux(p.pprof))
}
