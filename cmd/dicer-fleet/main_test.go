package main

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dicer/internal/fleet"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenParams is the pinned configuration behind the golden summary:
// small, chaotic and fully seeded.
func goldenParams() fleetParams {
	return fleetParams{
		nodes: 3, hps: "omnetpp1,sphinx1", policy: "dicer",
		scheduler: "headroom", schedSeed: 1, periods: 30,
		slo: 0.9, queueCap: 32,
		seed: 42, rate: 2, meanDur: 8, stream: 0.5,
		chaosName: "node-storm", chaosSeed: 1,
	}
}

// TestGoldenSummary pins the batch-mode summary JSON byte-for-byte: the
// cluster is deterministic, so any drift is a behaviour change that must
// be reviewed (then refreshed with -update).
func TestGoldenSummary(t *testing.T) {
	dir := t.TempDir()
	summary := filepath.Join(dir, "summary.json")
	if err := runBatch(goldenParams(), "", summary, 0); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "summary.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("summary drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestGoldenClusterTrace pins the batch-mode cluster trace byte-for-byte
// and commits it (testdata/cluster.jsonl.golden) — it is the fleet input
// of the offline diagnostic engine's golden tests and of the CI
// analyze-smoke job, so drift means either a behaviour change or a trace
// schema change, both of which must be reviewed (then refreshed with
// -update).
func TestGoldenClusterTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.jsonl")
	if err := runBatch(goldenParams(), path, "", 0); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "cluster.jsonl.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("cluster trace drifted from golden (%d vs %d bytes); re-run with -update if intended",
			len(got), len(want))
	}
}

// goldenMigrationParams layers the control loops onto the pinned
// configuration: heavier arrivals so the burn-rate alerts and the
// autoscaler's pressure signal actually trip, migration and autoscaling
// enabled.
func goldenMigrationParams() fleetParams {
	p := goldenParams()
	p.rate = 4
	p.periods = 60
	p.migrate = true
	p.autoscale = true
	return p
}

// TestGoldenMigrationTrace pins the control-loop cluster trace
// byte-for-byte and asserts it actually exercises the loops: at least
// one slo-burn-migration eviction and one autoscaler action must appear
// as first-class fleet events, so the golden cannot silently degrade
// into a static trace.
func TestGoldenMigrationTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "migration.jsonl")
	if err := runBatch(goldenMigrationParams(), path, "", 0); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cause := range []string{fleet.CauseMigration, fleet.CauseRepack} {
		if !bytes.Contains(got, []byte(`"cause":"`+cause+`"`)) {
			t.Errorf("trace has no %q event; the golden no longer exercises the control loops", cause)
		}
	}
	golden := filepath.Join("testdata", "migration.jsonl.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("migration trace drifted from golden (%d vs %d bytes); re-run with -update if intended",
			len(got), len(want))
	}
}

// TestBatchTraceDeterministic runs the batch path twice and compares the
// cluster traces byte-for-byte.
func TestBatchTraceDeterministic(t *testing.T) {
	dir := t.TempDir()
	run := func(name string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := runBatch(goldenParams(), path, "", 0); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run("a.jsonl"), run("b.jsonl")
	if !bytes.Equal(a, b) {
		t.Fatal("batch runs with identical flags produced different traces")
	}
	hdr, recs, err := fleet.ReadClusterTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Nodes != 3 || len(recs) != 30 {
		t.Fatalf("trace shape: nodes=%d records=%d", hdr.Nodes, len(recs))
	}
}

// TestConfigRejectsBadFlags covers flag validation.
func TestConfigRejectsBadFlags(t *testing.T) {
	p := goldenParams()
	p.policy = "bogus"
	if _, err := p.config(); err == nil {
		t.Error("bogus policy accepted")
	}
	p = goldenParams()
	p.chaosName = "bogus"
	if _, err := p.config(); err == nil {
		t.Error("bogus chaos schedule accepted")
	}
}

// TestServeEndpoints drives the serve mux through httptest: the loop
// runs a real (tiny) cluster in the background, so poll /healthz until
// the first lap lands, then check every endpoint.
func TestServeEndpoints(t *testing.T) {
	p := goldenParams()
	p.periods = 10
	p.chaosName = "none"
	st := newFleetServeState(p)
	go st.loop(p)
	srv := httptest.NewServer(st.mux(false))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if st.exporter.Periods() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster loop produced no periods")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// /healthz is 200 while clean, 503 once the burn-rate alert fires —
	// the loop keeps running laps, so both are legitimate snapshots.
	code, body := get("/healthz")
	switch {
	case code == 200 && strings.HasPrefix(body, "ok"):
	case code == 503 && strings.HasPrefix(body, "degraded"):
	default:
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body = get("/metrics")
	if code != 200 || !strings.Contains(body, "dicer_fleet_periods_total") {
		t.Fatalf("/metrics = %d, missing fleet series", code)
	}
	for _, want := range []string{"dicer_fleet_hp_slowdown_bucket", "dicer_fleet_efu_hist_bucket", "dicer_fleet_slo_alert_firing"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, body := get("/nodes"); code != 200 || !strings.Contains(body, `"node"`) {
		t.Fatalf("/nodes = %d %q", code, body)
	}
	if code, _ := get("/queue"); code != 200 {
		t.Fatalf("/queue = %d", code)
	}
	code, body = get("/alerts")
	if code != 200 || !strings.Contains(body, `"aggregate"`) || !strings.Contains(body, `"nodes"`) {
		t.Fatalf("/alerts = %d %q", code, body)
	}
}
