package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dicer/internal/fleet"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenParams is the pinned configuration behind the golden summary:
// small, chaotic and fully seeded.
func goldenParams() fleetParams {
	return fleetParams{
		nodes: 3, hps: "omnetpp1,sphinx1", policy: "dicer",
		scheduler: "headroom", schedSeed: 1, periods: 30,
		slo: 0.9, queueCap: 32,
		seed: 42, rate: 2, meanDur: 8, stream: 0.5,
		chaosName: "node-storm", chaosSeed: 1,
	}
}

// TestGoldenSummary pins the batch-mode summary JSON byte-for-byte: the
// cluster is deterministic, so any drift is a behaviour change that must
// be reviewed (then refreshed with -update).
func TestGoldenSummary(t *testing.T) {
	dir := t.TempDir()
	summary := filepath.Join(dir, "summary.json")
	if err := runBatch(goldenParams(), "", summary, 0); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "summary.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("summary drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestGoldenClusterTrace pins the batch-mode cluster trace byte-for-byte
// and commits it (testdata/cluster.jsonl.golden) — it is the fleet input
// of the offline diagnostic engine's golden tests and of the CI
// analyze-smoke job, so drift means either a behaviour change or a trace
// schema change, both of which must be reviewed (then refreshed with
// -update).
func TestGoldenClusterTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.jsonl")
	if err := runBatch(goldenParams(), path, "", 0); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "cluster.jsonl.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("cluster trace drifted from golden (%d vs %d bytes); re-run with -update if intended",
			len(got), len(want))
	}
}

// goldenMigrationParams layers the control loops onto the pinned
// configuration: heavier arrivals so the burn-rate alerts and the
// autoscaler's pressure signal actually trip, migration and autoscaling
// enabled.
func goldenMigrationParams() fleetParams {
	p := goldenParams()
	p.rate = 4
	p.periods = 60
	p.migrate = true
	p.autoscale = true
	return p
}

// TestGoldenMigrationTrace pins the control-loop cluster trace
// byte-for-byte and asserts it actually exercises the loops: at least
// one slo-burn-migration eviction and one autoscaler action must appear
// as first-class fleet events, so the golden cannot silently degrade
// into a static trace.
func TestGoldenMigrationTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "migration.jsonl")
	if err := runBatch(goldenMigrationParams(), path, "", 0); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cause := range []string{fleet.CauseMigration, fleet.CauseRepack} {
		if !bytes.Contains(got, []byte(`"cause":"`+cause+`"`)) {
			t.Errorf("trace has no %q event; the golden no longer exercises the control loops", cause)
		}
	}
	golden := filepath.Join("testdata", "migration.jsonl.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("migration trace drifted from golden (%d vs %d bytes); re-run with -update if intended",
			len(got), len(want))
	}
}

// forensicsParams arms the flight recorder on the control-loop golden
// configuration: migrations, autoscaling and node-storm chaos supply
// slo-burn and node-loss triggers for the recorder to seal.
func forensicsParams() fleetParams {
	p := goldenMigrationParams()
	p.forensics = true
	return p
}

// TestGoldenIncidentBundles runs the forensics configuration with an
// -incident-dir and pins every sealed bundle byte-for-byte under
// testdata/incidents/. The committed bundles are the live-dump ==
// committed-golden equivalence proof — the run is fully seeded, so a
// live dump must reproduce these exact bytes — and the inputs of
// dicer-trace's explain golden tests.
func TestGoldenIncidentBundles(t *testing.T) {
	dir := t.TempDir()
	p := forensicsParams()
	p.incidentDir = dir
	if err := runBatch(p, "", "", 0); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "incident-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("forensics run sealed no incident bundles")
	}

	// The run must exercise both trigger families, or the goldens stop
	// covering the interesting paths.
	triggers := map[string]bool{}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := fleet.ReadIncident(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		triggers[inc.Manifest.Trigger] = true
	}
	for _, want := range []string{fleet.TriggerSLOBurn, fleet.TriggerNodeLoss} {
		if !triggers[want] {
			t.Errorf("no %s bundle sealed; triggers seen: %v", want, triggers)
		}
	}

	goldenDir := filepath.Join("testdata", "incidents")
	if *update {
		if err := os.RemoveAll(goldenDir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			b, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(goldenDir, filepath.Base(f)), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, err := filepath.Glob(filepath.Join(goldenDir, "incident-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatalf("no committed bundles in %s (run with -update to create)", goldenDir)
	}
	if len(want) != len(files) {
		t.Fatalf("live run sealed %d bundles, goldens have %d; re-run with -update if intended",
			len(files), len(want))
	}
	for i, f := range files {
		if filepath.Base(f) != filepath.Base(want[i]) {
			t.Errorf("bundle %d named %s, golden %s", i, filepath.Base(f), filepath.Base(want[i]))
			continue
		}
		got, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := os.ReadFile(want[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, exp) {
			t.Errorf("%s drifted from golden (%d vs %d bytes); re-run with -update if intended",
				filepath.Base(f), len(got), len(exp))
		}
	}
}

// TestBatchTraceDeterministic runs the batch path twice and compares the
// cluster traces byte-for-byte.
func TestBatchTraceDeterministic(t *testing.T) {
	dir := t.TempDir()
	run := func(name string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := runBatch(goldenParams(), path, "", 0); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run("a.jsonl"), run("b.jsonl")
	if !bytes.Equal(a, b) {
		t.Fatal("batch runs with identical flags produced different traces")
	}
	hdr, recs, err := fleet.ReadClusterTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Nodes != 3 || len(recs) != 30 {
		t.Fatalf("trace shape: nodes=%d records=%d", hdr.Nodes, len(recs))
	}
}

// TestConfigRejectsBadFlags covers flag validation.
func TestConfigRejectsBadFlags(t *testing.T) {
	p := goldenParams()
	p.policy = "bogus"
	if _, err := p.config(); err == nil {
		t.Error("bogus policy accepted")
	}
	p = goldenParams()
	p.chaosName = "bogus"
	if _, err := p.config(); err == nil {
		t.Error("bogus chaos schedule accepted")
	}
}

// TestServeEndpoints drives the serve mux through httptest: the loop
// runs a real (tiny) cluster in the background, so poll /healthz until
// the first lap lands, then check every endpoint.
func TestServeEndpoints(t *testing.T) {
	p := goldenParams()
	p.periods = 10
	p.chaosName = "none"
	st := newFleetServeState(p)
	go st.loop(p)
	srv := httptest.NewServer(st.mux(false))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if st.exporter.Periods() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster loop produced no periods")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// /healthz is 200 while clean, 503 once the burn-rate alert fires —
	// the loop keeps running laps, so both are legitimate snapshots.
	code, body := get("/healthz")
	switch {
	case code == 200 && strings.HasPrefix(body, "ok"):
	case code == 503 && strings.HasPrefix(body, "degraded"):
	default:
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body = get("/metrics")
	if code != 200 || !strings.Contains(body, "dicer_fleet_periods_total") {
		t.Fatalf("/metrics = %d, missing fleet series", code)
	}
	for _, want := range []string{"dicer_fleet_hp_slowdown_bucket", "dicer_fleet_efu_hist_bucket", "dicer_fleet_slo_alert_firing"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, body := get("/nodes"); code != 200 || !strings.Contains(body, `"node"`) {
		t.Fatalf("/nodes = %d %q", code, body)
	}
	if code, _ := get("/queue"); code != 200 {
		t.Fatalf("/queue = %d", code)
	}
	code, body = get("/alerts")
	if code != 200 || !strings.Contains(body, `"aggregate"`) || !strings.Contains(body, `"nodes"`) {
		t.Fatalf("/alerts = %d %q", code, body)
	}
}

// TestServeIncidents drives the forensics path through the serve mux: a
// subscriber on /events must receive the sealed bundle's manifest as an
// SSE "incident" event, /incidents must list it, and /incidents/<file>
// must stream a parseable dicer-incident/v1 bundle.
func TestServeIncidents(t *testing.T) {
	p := forensicsParams()
	st := newFleetServeState(p)
	srv := httptest.NewServer(st.mux(false))
	defer srv.Close()

	// Subscribe before the cluster loop starts so the first lap's
	// incidents are pushed to us.
	resp, err := srv.Client().Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	go st.loop(p)

	payload := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if sc.Text() == "event: incident" && sc.Scan() {
				payload <- strings.TrimPrefix(sc.Text(), "data: ")
				return
			}
		}
	}()
	var manifest fleet.IncidentManifest
	select {
	case data := <-payload:
		if err := json.Unmarshal([]byte(data), &manifest); err != nil {
			t.Fatalf("incident event payload is not a manifest: %v\n%s", err, data)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("no incident event arrived on /events")
	}
	if manifest.Schema != fleet.IncidentSchema || manifest.Trigger == "" {
		t.Fatalf("incident manifest = %+v", manifest)
	}

	// The bundle behind the event is listed and fetchable.
	listResp, err := srv.Client().Get(srv.URL + "/incidents")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var listed []struct {
		File string `json:"file"`
		fleet.IncidentManifest
	}
	if err := json.NewDecoder(listResp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) == 0 {
		t.Fatal("/incidents is empty after an incident event")
	}
	bundleResp, err := srv.Client().Get(srv.URL + "/incidents/" + listed[0].File)
	if err != nil {
		t.Fatal(err)
	}
	defer bundleResp.Body.Close()
	if bundleResp.StatusCode != 200 {
		t.Fatalf("/incidents/%s = %d", listed[0].File, bundleResp.StatusCode)
	}
	inc, err := fleet.ReadIncident(bundleResp.Body)
	if err != nil {
		t.Fatalf("served bundle does not parse: %v", err)
	}
	if inc.Manifest.Seq != listed[0].Seq || inc.Manifest.Trigger != listed[0].Trigger ||
		inc.Manifest.Node != listed[0].Node || inc.Manifest.Period != listed[0].Period {
		t.Fatalf("served manifest %+v != listed %+v", inc.Manifest, listed[0].IncidentManifest)
	}
	if len(inc.Flight) == 0 {
		t.Fatal("served bundle has an empty flight recording")
	}

	if missing, err := srv.Client().Get(srv.URL + "/incidents/nope.jsonl"); err != nil {
		t.Fatal(err)
	} else {
		missing.Body.Close()
		if missing.StatusCode != 404 {
			t.Fatalf("/incidents/nope.jsonl = %d, want 404", missing.StatusCode)
		}
	}
}
