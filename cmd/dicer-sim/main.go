// dicer-sim runs one consolidation scenario under a chosen co-location
// policy and prints a per-period timeline plus the summary metrics.
//
// Usage:
//
//	dicer-sim -hp milc1 -be gcc_base1 -n 9 -policy dicer -trace
//	dicer-sim -hp omnetpp1 -be lbm1 -n 5 -policy static:8
//	dicer-sim -hp milc1 -be gcc_base1 -policy dicer+mba
//	dicer-sim -hp omnetpp1 -be gcc_base1 -chaos storm -chaos-seed 7 -guard
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"dicer"
	"dicer/internal/core"
	"dicer/internal/ext"
	"dicer/internal/policy"
)

func main() {
	var (
		hp         = flag.String("hp", "milc1", "high-priority application (catalog name)")
		be         = flag.String("be", "gcc_base1", "best-effort application (catalog name)")
		n          = flag.Int("n", 9, "number of BE instances")
		polName    = flag.String("policy", "dicer", "um | ct | static:<ways> | dicer | dicer+mba | dicer+bemgr | heracles:<slo>")
		periods    = flag.Int("periods", 120, "monitoring periods to simulate")
		trace      = flag.Bool("trace", false, "print DICER controller decisions")
		every      = flag.Int("every", 10, "print a timeline row every N periods (0 = none)")
		timeline   = flag.String("timeline", "", "write a per-period CSV timeline to this file")
		chaosN     = flag.String("chaos", "none", "fault schedule: none | "+strings.Join(chaosNames(), " | "))
		chaosS     = flag.Int64("chaos-seed", 1, "seed for the chaos fault stream (replays bit-identically)")
		guard      = flag.Bool("guard", false, "machine-check controller invariants after every period")
		traceOut   = flag.String("trace-out", "", "write a replayable JSONL trace of the run to this file")
		serveAddr  = flag.String("serve", "", "loop the scenario and serve /metrics, /trace, /alerts, /events and /healthz on this address (e.g. :9090)")
		slo        = flag.Float64("slo", 0.9, "HP SLO as a fraction of alone performance (drives the burn-rate alerter and the trace header)")
		pprofOn    = flag.Bool("pprof", false, "with -serve: also expose /debug/pprof/ profiling endpoints")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *serveAddr != "" {
		err := runServe(*serveAddr, serveParams{
			hp: *hp, be: *be, n: *n, periods: *periods, policy: *polName,
			chaosName: *chaosN, chaosSeed: *chaosS, guard: *guard,
			slo: *slo, pprof: *pprofOn,
		})
		if err != nil {
			fatal(err)
		}
		return // graceful shutdown (SIGINT/SIGTERM)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	pol, ctl, withMBA, err := buildPolicy(*polName, *hp)
	if err != nil {
		fatal(err)
	}
	if *trace && ctl != nil {
		ctl.Trace = func(e dicer.ControllerEvent) {
			fmt.Printf("  [p%03d %-8s] %-12s hpWays=%2d hpIPC=%.3f totalBW=%.1f Gbps\n",
				e.Period, e.State, e.Kind, e.HPWays, e.HPIPC, e.TotalBW)
		}
	}

	sc, err := buildScenario(*hp, *be, *n, *periods, *guard, *chaosN, *chaosS)
	if err != nil {
		fatal(err)
	}
	sc.WithMBA = withMBA
	if *slo > 0 {
		sc.SLO = *slo
	}
	var traceFile *os.File
	var traceSink *dicer.TraceJSONL
	if *traceOut != "" {
		if traceFile, err = os.Create(*traceOut); err != nil {
			fatal(err)
		}
		traceSink = dicer.NewTraceJSONL(traceFile)
		sc.Trace = traceSink
	}
	var tl *dicer.Timeline
	if *timeline != "" {
		tl = &dicer.Timeline{}
		sc.AttachTimeline(tl)
	} else if *every > 0 {
		sc.OnPeriod = func(period int, p dicer.Period) {
			if period%*every != 0 {
				return
			}
			fmt.Printf("t=%3ds hpIPC=%.3f beIPC=%.3f hpBW=%5.1f totBW=%5.1f Gbps\n",
				period, p.ClosMeanIPC(policy.HPClos), p.ClosMeanIPC(policy.BEClos),
				p.GroupBW(policy.HPClos), p.TotalGbps)
		}
	}

	fmt.Printf("scenario: %s (HP) + %dx %s (BEs), policy %s, %d periods\n\n",
		*hp, *n, *be, pol.Name(), *periods)
	res, err := sc.Run(pol)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\nresults (%s):\n", res.PolicyName)
	fmt.Printf("  HP IPC            %.3f (alone %.3f, normalised %.3f, slowdown %.3fx)\n",
		res.HPIPC, res.HPAloneIPC, res.HPNorm(), res.HPSlowdown())
	be0 := res.BEIPCs[0]
	fmt.Printf("  BE IPC            %.3f (alone %.3f, normalised %.3f)\n",
		be0, res.BEAloneIPCs[0], res.BENorms()[0])
	fmt.Printf("  effective util    %.3f\n", res.EFU())
	for _, slo := range []float64{0.80, 0.85, 0.90, 0.95} {
		status := "MISSED"
		if res.SLOAchieved(slo) {
			status = "met"
		}
		fmt.Printf("  SLO %.0f%%           %s (SUCI@1: %.3f)\n", slo*100, status, res.SUCI(slo, 1))
	}
	fmt.Printf("  final HP ways     %d\n", res.FinalHPWays)
	if sc.Chaos != nil {
		fmt.Printf("  chaos             %s seed=%d: %s\n", sc.Chaos.Name, sc.ChaosSeed, res.ChaosStats)
		fmt.Printf("  tolerated faults  %d\n", res.ToleratedFaults)
	}

	if tl != nil {
		f, err := os.Create(*timeline)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tl.WriteCSV(f); err != nil {
			fatal(err)
		}
		lo, hi := tl.MinMaxHPWays()
		fmt.Printf("  timeline          %s (%d periods, HP ways ranged %d..%d)\n",
			*timeline, len(tl.Entries), lo, hi)
	}
	if traceSink != nil {
		if err := traceSink.Flush(); err != nil {
			fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("  trace             %s (verify with: dicer-trace replay %s)\n",
			*traceOut, *traceOut)
	}
}

// buildScenario constructs the scenario the flags describe; trace and
// timeline wiring is left to the caller. Shared by the one-shot path and
// the -serve loop.
func buildScenario(hp, be string, n, periods int, guard bool, chaosName string, chaosSeed int64) (*dicer.Scenario, error) {
	if _, err := dicer.AppByName(hp); err != nil {
		return nil, err
	}
	if _, err := dicer.AppByName(be); err != nil {
		return nil, err
	}
	sc := dicer.NewScenario(hp, be, n)
	sc.HorizonPeriods = periods
	sc.CheckInvariants = guard
	if chaosName != "none" && chaosName != "" {
		cfg, err := dicer.ChaosScheduleByName(chaosName)
		if err != nil {
			return nil, err
		}
		sc.Chaos = &cfg
		sc.ChaosSeed = chaosSeed
	}
	return sc, nil
}

// buildPolicy parses the -policy flag. hpName is needed for controllers
// that require the HP's alone-run reference (heracles).
func buildPolicy(name, hpName string) (dicer.Policy, *core.Controller, bool, error) {
	switch {
	case name == "um":
		return dicer.Unmanaged(), nil, false, nil
	case name == "ct":
		return dicer.CacheTakeover(), nil, false, nil
	case strings.HasPrefix(name, "static:"):
		ways, err := strconv.Atoi(strings.TrimPrefix(name, "static:"))
		if err != nil {
			return nil, nil, false, fmt.Errorf("bad static way count in %q", name)
		}
		return dicer.StaticPartition(ways), nil, false, nil
	case name == "dicer":
		ctl := dicer.NewDICER()
		return ctl, ctl, false, nil
	case name == "dicer+mba":
		cfg := dicer.DefaultControllerConfig()
		d, err := ext.NewDicerMBA(cfg, ext.DefaultMBAConfig(cfg.BWThresholdGbps))
		if err != nil {
			return nil, nil, false, err
		}
		return d, d.Controller(), true, nil
	case strings.HasPrefix(name, "heracles:"):
		slo, err := strconv.ParseFloat(strings.TrimPrefix(name, "heracles:"), 64)
		if err != nil {
			return nil, nil, false, fmt.Errorf("bad heracles SLO in %q", name)
		}
		prof, err := dicer.AppByName(hpName)
		if err != nil {
			return nil, nil, false, err
		}
		ref, err := dicer.AloneIPC(dicer.Machine{}, prof)
		if err != nil {
			return nil, nil, false, err
		}
		h, err := ext.NewHeracles(ref, slo)
		if err != nil {
			return nil, nil, false, err
		}
		return h, nil, false, nil
	case name == "dicer+bemgr":
		cfg := dicer.DefaultControllerConfig()
		ctl := dicer.NewDICER()
		mgr, err := ext.NewBEManager(ctl, ext.DefaultBEManagerConfig(cfg.BWThresholdGbps))
		if err != nil {
			return nil, nil, false, err
		}
		return mgr, ctl, false, nil
	}
	return nil, nil, false, fmt.Errorf("unknown policy %q", name)
}

// chaosNames lists the canned fault schedules for the -chaos flag help.
func chaosNames() []string {
	var names []string
	for _, c := range dicer.ChaosSchedules() {
		names = append(names, c.Name)
	}
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dicer-sim:", err)
	os.Exit(1)
}
