package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"dicer"
	"dicer/internal/diag"
	"dicer/internal/httpd"
)

// serveParams is the scenario the -serve loop runs lap after lap.
type serveParams struct {
	hp, be     string
	n, periods int
	policy     string
	chaosName  string
	chaosSeed  int64
	guard      bool
	slo        float64
	pprof      bool
}

// serveState is shared between the background scenario loop and the HTTP
// handlers: a Prometheus exporter for /metrics, the diagnostic monitor
// (slowdown/link histograms + SLO burn-rate alerter) behind /alerts and
// /events, and the most recent *completed* lap's trace for /trace.
// Serving whole laps (rather than a sliding window of recent periods)
// keeps the /trace output replayable — dicer-trace replay re-drives the
// controller from its Setup state, so the trace must start at period 0.
type serveState struct {
	exporter *dicer.PromExporter
	monitor  *diag.Monitor
	events   *httpd.EventStream

	mu      sync.Mutex
	cur     *dicer.TraceRing // lap in progress, rotated on Start
	header  dicer.TraceHeader
	last    []dicer.TraceRecord // latest completed lap
	haveRun bool
	lastErr error
	timed   *diag.TimedPolicy // current lap's policy wrapper (latency histogram)
}

func newServeState(p serveParams) *serveState {
	st := &serveState{
		exporter: dicer.NewPromExporter(),
		events:   httpd.NewEventStream(),
	}
	st.monitor = diag.NewMonitor(diag.MonitorConfig{
		SLO: p.slo,
		OnAlert: func(ev diag.AlertEvent) {
			if b, err := json.Marshal(ev); err == nil {
				st.events.Publish("alert", string(b))
			}
		},
	})
	return st
}

// Emit and Start implement dicer.TraceSink: Start captures the header
// and opens a fresh per-lap buffer (sized from the header's horizon, so
// no period of the lap is ever evicted); Emit deep-copies each record
// into it via the ring.
func (st *serveState) Emit(r *dicer.TraceRecord) {
	st.mu.Lock()
	ring := st.cur
	st.mu.Unlock()
	if ring != nil {
		ring.Emit(r)
	}
}

func (st *serveState) Start(h dicer.TraceHeader) error {
	st.mu.Lock()
	st.header = h
	st.cur = dicer.NewTraceRing(h.HorizonPeriods)
	st.mu.Unlock()
	return nil
}

// finishRun publishes the lap that just completed as the /trace payload.
func (st *serveState) finishRun() {
	st.mu.Lock()
	if st.cur != nil {
		st.last = st.cur.Snapshot()
		st.haveRun = true
	}
	st.mu.Unlock()
}

func (st *serveState) setErr(err error) {
	st.mu.Lock()
	st.lastErr = err
	st.mu.Unlock()
}

// runOnce executes one lap of the scenario with the serve sinks attached.
// The policy is rebuilt every lap so each run starts from a fresh
// controller state; the monitor persists across laps so alert state and
// histograms keep their history.
func (st *serveState) runOnce(p serveParams) error {
	pol, _, withMBA, err := buildPolicy(p.policy, p.hp)
	if err != nil {
		return err
	}
	timed := diag.NewTimedPolicy(pol)
	st.mu.Lock()
	st.timed = timed
	st.mu.Unlock()
	sc, err := buildScenario(p.hp, p.be, p.n, p.periods, p.guard, p.chaosName, p.chaosSeed)
	if err != nil {
		return err
	}
	sc.WithMBA = withMBA
	if p.slo > 0 {
		sc.SLO = p.slo
	}
	sc.Trace = dicer.TraceMulti{st.exporter, st, st.monitor}
	if _, err := sc.Run(timed); err != nil {
		return err
	}
	st.finishRun()
	st.exporter.AddRun()
	return nil
}

// loop runs laps until one fails; the failure parks in /healthz.
func (st *serveState) loop(p serveParams) {
	for {
		if err := st.runOnce(p); err != nil {
			st.setErr(err)
			return
		}
	}
}

// mux wires the endpoints. Split from runServe so tests drive it through
// httptest without binding a socket.
func (st *serveState) mux(withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := st.exporter.WriteTo(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		st.monitor.WriteProm(w)
		st.mu.Lock()
		timed := st.timed
		st.mu.Unlock()
		if timed != nil {
			timed.WriteProm(w)
		}
		st.events.WriteProm(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		h, recs, ok := st.header, st.last, st.haveRun
		st.mu.Unlock()
		if !ok {
			http.Error(w, "no completed run recorded yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		jl := dicer.NewTraceJSONL(w)
		if err := jl.Start(h); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for i := range recs {
			jl.Emit(&recs[i])
		}
		if err := jl.Flush(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st.monitor.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/events", st.events)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		err := st.lastErr
		st.mu.Unlock()
		if err != nil {
			http.Error(w, "scenario loop stopped: "+err.Error(), http.StatusInternalServerError)
			return
		}
		if degraded, why := st.monitor.Degraded(); degraded {
			http.Error(w, "degraded: "+why, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "ok records=%d\n", st.exporter.Records())
	})
	if withPprof {
		httpd.AddPprof(mux)
	}
	return mux
}

// runServe starts the background scenario loop and serves the
// observability endpoints with header/idle timeouts, draining gracefully
// on SIGINT/SIGTERM.
func runServe(addr string, p serveParams) error {
	st := newServeState(p)
	go st.loop(p)
	fmt.Printf("serving /metrics /trace /alerts /events /healthz on %s (%s + %dx %s, policy %s, %d periods per lap)\n",
		addr, p.hp, p.n, p.be, p.policy, p.periods)
	return httpd.ListenAndServe(addr, st.mux(p.pprof))
}
