package main

import (
	"testing"

	"dicer"
)

func TestChaosNamesResolve(t *testing.T) {
	names := chaosNames()
	if len(names) < 5 {
		t.Fatalf("only %d chaos schedules in the flag help", len(names))
	}
	for _, n := range names {
		if _, err := dicer.ChaosScheduleByName(n); err != nil {
			t.Errorf("%q: %v", n, err)
		}
	}
}

func TestBuildPolicy(t *testing.T) {
	cases := []struct {
		spec    string
		name    string
		hasCtl  bool
		withMBA bool
	}{
		{"um", "UM", false, false},
		{"ct", "CT", false, false},
		{"static:8", "Static(8)", false, false},
		{"dicer", "DICER", true, false},
		{"dicer+mba", "DICER+MBA", true, true},
		{"dicer+bemgr", "DICER+BEMGR", true, false},
		{"heracles:0.9", "Heracles", false, false},
	}
	for _, tc := range cases {
		pol, ctl, mba, err := buildPolicy(tc.spec, "omnetpp1")
		if err != nil {
			t.Fatalf("%q: %v", tc.spec, err)
		}
		if pol.Name() != tc.name {
			t.Errorf("%q: policy %q, want %q", tc.spec, pol.Name(), tc.name)
		}
		if (ctl != nil) != tc.hasCtl {
			t.Errorf("%q: controller presence %v, want %v", tc.spec, ctl != nil, tc.hasCtl)
		}
		if mba != tc.withMBA {
			t.Errorf("%q: withMBA %v, want %v", tc.spec, mba, tc.withMBA)
		}
	}
}

func TestBuildPolicyErrors(t *testing.T) {
	bad := []string{"", "bogus", "static:", "static:x", "heracles:x", "heracles:2"}
	for _, spec := range bad {
		if _, _, _, err := buildPolicy(spec, "omnetpp1"); err == nil {
			t.Errorf("%q: expected error", spec)
		}
	}
	if _, _, _, err := buildPolicy("heracles:0.9", "nosuchapp"); err == nil {
		t.Error("expected error for unknown HP with heracles")
	}
}
