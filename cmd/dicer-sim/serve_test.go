package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dicer"
)

// TestServeEndpoints runs one short lap synchronously and scrapes the
// three endpoints through httptest — the serve mode without a socket.
func TestServeEndpoints(t *testing.T) {
	p := serveParams{hp: "omnetpp1", be: "gcc_base1", n: 9, periods: 12, policy: "dicer"}
	st := newServeState(p)
	// Two laps: /trace must serve the latest *complete* lap, so a
	// multi-lap loop still yields a replayable trace of exactly one run.
	for lap := 0; lap < 2; lap++ {
		if err := st.runOnce(p); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(st.mux(true))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok records=24") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"dicer_records_total 24", "dicer_runs_total 2", "dicer_hp_ways ",
		"dicer_hp_slowdown_bucket", "dicer_hp_slowdown_quantile",
		"dicer_link_utilisation_bucket", "dicer_slo_alert_firing",
		"dicer_observe_latency_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/alerts")
	if code != http.StatusOK {
		t.Fatalf("/alerts = %d", code)
	}
	var snap struct {
		SLO       float64 `json:"slo"`
		Aggregate struct {
			Periods int `json:"periods"`
		} `json:"aggregate"`
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/alerts unparseable: %v\n%s", err, body)
	}
	if snap.SLO != 0.9 || snap.Aggregate.Periods != 24 {
		t.Fatalf("/alerts snapshot wrong: %s", body)
	}

	code, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d (pprof enabled)", code)
	}

	code, body = get("/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace = %d", code)
	}
	h, recs, err := dicer.ReadTrace(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/trace output unparseable: %v", err)
	}
	if h.Policy != "DICER" || h.HP != "omnetpp1" || len(recs) != 12 {
		t.Fatalf("/trace header/records wrong: %+v, %d records", h, len(recs))
	}
	// The served trace is replayable like any recorded one.
	res, err := dicer.ReplayTrace(h, recs)
	if err != nil {
		t.Fatalf("served trace does not replay: %v", err)
	}
	if res.Periods != 12 || !res.MasksVerified {
		t.Fatalf("served-trace replay summary wrong: %+v", res)
	}
}

// TestServeTraceBeforeFirstRun: the endpoint degrades gracefully while
// the first lap is still warming up.
func TestServeTraceBeforeFirstRun(t *testing.T) {
	st := newServeState(serveParams{})
	srv := httptest.NewServer(st.mux(false))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/trace before any run = %d, want 503", resp.StatusCode)
	}
	// pprof stays off unless asked for.
	resp, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof without -pprof = %d, want 404", resp.StatusCode)
	}
}

// TestServeHealthzDegradesOnAlert: a workload engineered to violate a
// strict SLO must trip the burn-rate alert, flip /healthz to 503, and
// publish the fire on the SSE stream.
func TestServeHealthzDegradesOnAlert(t *testing.T) {
	// omnetpp1 under UM with 9 streaming BEs misses a 99% SLO nearly
	// every period — the alert must fire within one lap.
	p := serveParams{hp: "omnetpp1", be: "gcc_base1", n: 9, periods: 30, policy: "um", slo: 0.99}
	st := newServeState(p)
	if err := st.runOnce(p); err != nil {
		t.Fatal(err)
	}
	if !st.monitor.Firing() {
		t.Fatalf("alert not firing under an unmanaged 99%% SLO: %+v", st.monitor.Snapshot())
	}
	srv := httptest.NewServer(st.mux(false))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "degraded") {
		t.Fatalf("/healthz with firing alert = %d %q, want 503 degraded", resp.StatusCode, body)
	}
	snap := st.monitor.Snapshot()
	if len(snap.Events) == 0 || !snap.Events[0].Firing {
		t.Fatalf("no fire event recorded: %+v", snap)
	}
}
