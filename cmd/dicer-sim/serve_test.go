package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dicer"
)

// TestServeEndpoints runs one short lap synchronously and scrapes the
// three endpoints through httptest — the serve mode without a socket.
func TestServeEndpoints(t *testing.T) {
	st := newServeState()
	p := serveParams{hp: "omnetpp1", be: "gcc_base1", n: 9, periods: 12, policy: "dicer"}
	// Two laps: /trace must serve the latest *complete* lap, so a
	// multi-lap loop still yields a replayable trace of exactly one run.
	for lap := 0; lap < 2; lap++ {
		if err := st.runOnce(p); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(st.mux())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok records=24") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"dicer_records_total 24", "dicer_runs_total 2", "dicer_hp_ways "} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace = %d", code)
	}
	h, recs, err := dicer.ReadTrace(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/trace output unparseable: %v", err)
	}
	if h.Policy != "DICER" || h.HP != "omnetpp1" || len(recs) != 12 {
		t.Fatalf("/trace header/records wrong: %+v, %d records", h, len(recs))
	}
	// The served trace is replayable like any recorded one.
	res, err := dicer.ReplayTrace(h, recs)
	if err != nil {
		t.Fatalf("served trace does not replay: %v", err)
	}
	if res.Periods != 12 || !res.MasksVerified {
		t.Fatalf("served-trace replay summary wrong: %+v", res)
	}
}

// TestServeTraceBeforeFirstRun: the endpoint degrades gracefully while
// the first lap is still warming up.
func TestServeTraceBeforeFirstRun(t *testing.T) {
	srv := httptest.NewServer(newServeState().mux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/trace before any run = %d, want 503", resp.StatusCode)
	}
}
