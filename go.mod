module dicer

go 1.22
