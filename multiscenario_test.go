package dicer

import (
	"bytes"
	"math"
	"sort"
	"testing"
)

// multiHPs builds HPApp slices from catalog names.
func multiHPs(t *testing.T, names ...string) []HPApp {
	t.Helper()
	hps := make([]HPApp, len(names))
	for i, n := range names {
		hps[i] = HPApp{Profile: mustApp(t, n)}
	}
	return hps
}

// TestMultiScenarioM1MatchesLegacy is the scenario-level half of the
// compatibility pin: a MultiScenario with one HP app, a two-CLOS budget
// and the single grouping reproduces the legacy Scenario+DICER run
// exactly — same IPCs, same final partition, same EFU.
func TestMultiScenarioM1MatchesLegacy(t *testing.T) {
	const horizon = 40
	legacy := NewScenario("omnetpp1", "gcc_base1", 3)
	legacy.HorizonPeriods = horizon
	lres, err := legacy.Run(NewDICER())
	if err != nil {
		t.Fatal(err)
	}

	ms := &MultiScenario{
		HPs:            multiHPs(t, "omnetpp1"),
		BEs:            legacy.BEs,
		HorizonPeriods: horizon,
		CLOSBudget:     2,
		Grouping:       GroupingSingle,
	}
	mres, err := ms.Run()
	if err != nil {
		t.Fatal(err)
	}

	if mres.NumGroups != 1 {
		t.Fatalf("M=1 run built %d groups", mres.NumGroups)
	}
	if got, want := mres.Apps[0].IPC, lres.HPIPC; got != want {
		t.Fatalf("HP IPC diverged: multi %v, legacy %v", got, want)
	}
	if got, want := mres.Apps[0].AloneIPC, lres.HPAloneIPC; got != want {
		t.Fatalf("HP alone IPC diverged: multi %v, legacy %v", got, want)
	}
	if got, want := mres.GroupWays[0], lres.FinalHPWays; got != want {
		t.Fatalf("final partition diverged: multi %d ways, legacy %d", got, want)
	}
	if len(mres.BEIPCs) != len(lres.BEIPCs) {
		t.Fatalf("BE count diverged: %d vs %d", len(mres.BEIPCs), len(lres.BEIPCs))
	}
	for i := range mres.BEIPCs {
		if mres.BEIPCs[i] != lres.BEIPCs[i] {
			t.Fatalf("BE %d IPC diverged: multi %v, legacy %v", i, mres.BEIPCs[i], lres.BEIPCs[i])
		}
	}
	if got, want := mres.EFU(), lres.EFU(); got != want {
		t.Fatalf("EFU diverged: multi %v, legacy %v", got, want)
	}
}

// runMulti runs a scenario and fails the test on error.
func runMulti(t *testing.T, ms *MultiScenario) MultiResult {
	t.Helper()
	res, err := ms.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sortedSlowdowns returns the per-app slowdown vector in ascending order
// — the label-free view the metamorphic fairness tests compare.
func sortedSlowdowns(res MultiResult) []float64 {
	out := make([]float64, len(res.Apps))
	for i, a := range res.Apps {
		out[i] = a.Slowdown()
	}
	sort.Float64s(out)
	return out
}

// TestMultiScenarioPermutationFairness is the fairness metamorphic test:
// permuting the order HP apps are listed in must not change any
// label-free outcome — the sorted per-app slowdown vector, SLO
// conformance, and EFU. Only the app→core and app→group labels may move.
func TestMultiScenarioPermutationFairness(t *testing.T) {
	names := []string{"milc1", "omnetpp1", "namd1", "povray1", "soplex1", "gcc_base1"}
	perm := []int{3, 0, 5, 2, 4, 1}
	permuted := make([]string, len(names))
	for i, p := range perm {
		permuted[i] = names[p]
	}

	base := runMulti(t, &MultiScenario{
		HPs: multiHPs(t, names...), BEs: []Profile{mustApp(t, "lbm1")},
		Machine:        func() Machine { m := DefaultMachine(); m.Cores = 8; return m }(),
		HorizonPeriods: 40, CLOSBudget: 6,
	})
	shuffled := runMulti(t, &MultiScenario{
		HPs: multiHPs(t, permuted...), BEs: []Profile{mustApp(t, "lbm1")},
		Machine:        func() Machine { m := DefaultMachine(); m.Cores = 8; return m }(),
		HorizonPeriods: 40, CLOSBudget: 6,
	})

	const eps = 1e-9
	bs, ss := sortedSlowdowns(base), sortedSlowdowns(shuffled)
	for i := range bs {
		if math.Abs(bs[i]-ss[i]) > eps {
			t.Fatalf("slowdown vector diverged at %d: %v vs %v", i, bs, ss)
		}
	}
	if math.Abs(base.SLOConformance()-shuffled.SLOConformance()) > eps {
		t.Fatalf("SLO conformance diverged: %v vs %v",
			base.SLOConformance(), shuffled.SLOConformance())
	}
	if math.Abs(base.EFU()-shuffled.EFU()) > eps {
		t.Fatalf("EFU diverged: %v vs %v", base.EFU(), shuffled.EFU())
	}
	// Per-app outcomes must follow their app, not their position.
	for i, p := range perm {
		if shuffled.Apps[i].Name != base.Apps[p].Name {
			t.Fatalf("app %d is %s, want %s", i, shuffled.Apps[i].Name, base.Apps[p].Name)
		}
		if math.Abs(shuffled.Apps[i].Slowdown()-base.Apps[p].Slowdown()) > eps {
			t.Fatalf("%s slowdown diverged: %v vs %v", shuffled.Apps[i].Name,
				shuffled.Apps[i].Slowdown(), base.Apps[p].Slowdown())
		}
	}
}

// TestMultiScenarioCLOSRelabelFairness is the CLOS-relabeling metamorphic
// test: growing the CLOS budget beyond what the plan uses only relabels
// CLOS ids (the BE partition moves to a different id) and must leave
// every outcome unchanged.
func TestMultiScenarioCLOSRelabelFairness(t *testing.T) {
	names := []string{"milc1", "omnetpp1", "namd1", "povray1"}
	run := func(budget int) MultiResult {
		return runMulti(t, &MultiScenario{
			HPs: multiHPs(t, names...), BEs: []Profile{mustApp(t, "lbm1")},
			HorizonPeriods: 40, CLOSBudget: budget,
		})
	}
	narrow, wide := run(8), run(16)

	if narrow.NumGroups != wide.NumGroups {
		t.Fatalf("group count changed with budget: %d vs %d", narrow.NumGroups, wide.NumGroups)
	}
	for i := range narrow.Apps {
		if narrow.Apps[i].IPC != wide.Apps[i].IPC {
			t.Fatalf("%s IPC diverged across CLOS relabel: %v vs %v",
				narrow.Apps[i].Name, narrow.Apps[i].IPC, wide.Apps[i].IPC)
		}
		if narrow.Apps[i].Group != wide.Apps[i].Group {
			t.Fatalf("%s group diverged across CLOS relabel: %d vs %d",
				narrow.Apps[i].Name, narrow.Apps[i].Group, wide.Apps[i].Group)
		}
	}
	if narrow.EFU() != wide.EFU() {
		t.Fatalf("EFU diverged across CLOS relabel: %v vs %v", narrow.EFU(), wide.EFU())
	}
	if narrow.SLOConformance() != wide.SLOConformance() {
		t.Fatalf("conformance diverged across CLOS relabel: %v vs %v",
			narrow.SLOConformance(), wide.SLOConformance())
	}
}

// TestMultiScenarioOverBudget pins the headline capability: more HP apps
// than the CLOS budget can host per-app still run, clustered into at
// most CLOSBudget-1 groups with every app assigned and the ways budget
// respected.
func TestMultiScenarioOverBudget(t *testing.T) {
	names := AppNames()
	if len(names) < 20 {
		t.Fatalf("catalog too small: %d", len(names))
	}
	m := DefaultMachine()
	m.Cores = 24
	ms := &MultiScenario{
		Machine:        m,
		HPs:            multiHPs(t, names[:20]...),
		BEs:            []Profile{mustApp(t, "lbm1"), mustApp(t, "gcc_base1")},
		HorizonPeriods: 30,
		CLOSBudget:     16,
	}
	res := runMulti(t, ms)

	if res.NumGroups < 1 || res.NumGroups > 15 {
		t.Fatalf("plan uses %d groups under a 16-CLOS budget", res.NumGroups)
	}
	if len(res.Apps) != 20 {
		t.Fatalf("result covers %d apps, want 20", len(res.Apps))
	}
	waysSum := 0
	for gi, w := range res.GroupWays {
		if w < 1 {
			t.Fatalf("group %d has %d ways", gi, w)
		}
		waysSum += w
	}
	if waysSum > m.LLCWays-1 {
		t.Fatalf("groups hold %d ways of %d (BE floor violated)", waysSum, m.LLCWays)
	}
	for i, a := range res.Apps {
		if a.Group < 0 || a.Group >= res.NumGroups {
			t.Fatalf("app %d (%s) in group %d of %d", i, a.Name, a.Group, res.NumGroups)
		}
		if a.IPC <= 0 || a.AloneIPC <= 0 {
			t.Fatalf("app %s has degenerate IPCs %v/%v", a.Name, a.IPC, a.AloneIPC)
		}
	}
	if c := res.SLOConformance(); c < 0 || c > 1 {
		t.Fatalf("conformance %v outside [0,1]", c)
	}
	// Per-app grouping is infeasible at this scale and must refuse.
	perApp := *ms
	perApp.Grouping = GroupingPerApp
	if _, err := perApp.Run(); err == nil {
		t.Fatal("per-app grouping accepted 20 apps under a 16-CLOS budget")
	}
}

// TestMultiScenarioRecluster pins the Com-CAS hint path end to end:
// periodic re-planning against upcoming-phase hints runs clean and is
// deterministic.
func TestMultiScenarioRecluster(t *testing.T) {
	build := func() *MultiScenario {
		return &MultiScenario{
			HPs:            multiHPs(t, "astar1", "bzip21", "milc1", "namd1"),
			BEs:            []Profile{mustApp(t, "lbm1")},
			HorizonPeriods: 60,
			CLOSBudget:     8,
			ReclusterEvery: 5,
			UsePhaseHints:  true,
		}
	}
	a, b := runMulti(t, build()), runMulti(t, build())
	if a.Reclusters != b.Reclusters {
		t.Fatalf("recluster count not deterministic: %d vs %d", a.Reclusters, b.Reclusters)
	}
	for i := range a.Apps {
		if a.Apps[i].IPC != b.Apps[i].IPC {
			t.Fatalf("%s IPC not deterministic: %v vs %v",
				a.Apps[i].Name, a.Apps[i].IPC, b.Apps[i].IPC)
		}
	}
}

// TestMultiScenarioTraceV2 pins the v2 trace surface: a multi-HP run
// emits a dicer-trace/v2 header with the per-app fields and per-period
// group records, and ReadTrace accepts it.
func TestMultiScenarioTraceV2(t *testing.T) {
	var buf bytes.Buffer
	sink := NewTraceJSONL(&buf)
	ms := &MultiScenario{
		HPs:            multiHPs(t, "milc1", "namd1"),
		BEs:            []Profile{mustApp(t, "lbm1")},
		HorizonPeriods: 10,
		CLOSBudget:     4,
		Trace:          sink,
	}
	res := runMulti(t, ms)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	h, recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema != "dicer-trace/v2" {
		t.Fatalf("schema %q", h.Schema)
	}
	if len(h.HPs) != 2 || len(h.SLOs) != 2 || h.CLOSBudget != 4 || h.Grouping != GroupingClustered {
		t.Fatalf("v2 header fields missing: %+v", h)
	}
	if len(recs) != 10 {
		t.Fatalf("trace holds %d records, want 10", len(recs))
	}
	for i, rec := range recs {
		if len(rec.Groups) != res.NumGroups {
			t.Fatalf("record %d has %d group records, want %d", i, len(rec.Groups), res.NumGroups)
		}
		for gi, g := range rec.Groups {
			if g.Group != gi {
				t.Fatalf("record %d group %d labelled %d", i, gi, g.Group)
			}
			if g.Ways < 1 || g.Mask == 0 {
				t.Fatalf("record %d group %d degenerate: %+v", i, gi, g)
			}
		}
	}
}

// TestMultiScenarioValidation pins the scenario error surface.
func TestMultiScenarioValidation(t *testing.T) {
	if _, err := (&MultiScenario{}).Run(); err == nil {
		t.Fatal("scenario with no HP apps accepted")
	}
	over := &MultiScenario{
		HPs: multiHPs(t, "milc1"),
		BEs: make([]Profile, 12),
	}
	for i := range over.BEs {
		over.BEs[i] = mustApp(t, "lbm1")
	}
	if _, err := over.Run(); err == nil {
		t.Fatal("scenario exceeding core count accepted")
	}
}
