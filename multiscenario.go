package dicer

import (
	"fmt"

	"dicer/internal/app"
	"dicer/internal/cluster"
	"dicer/internal/core"
	"dicer/internal/metrics"
	"dicer/internal/obs"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

// HPApp is one high-priority application of a multi-HP scenario: the
// profile plus its own SLO (target fraction of alone performance).
type HPApp struct {
	Profile Profile
	SLO     float64 // default 0.9
}

// MultiScenario is a consolidation experiment with M high-priority
// applications sharing one box under a CLOS budget: HP app i runs on
// core i, BE applications fill the remaining cores, and the multi-HP
// DICER controller partitions the LLC per CLOS group according to an
// LFOC-style clustering plan (ROADMAP item 2). At one HP app and
// grouping "single" this is the classic Scenario topology.
type MultiScenario struct {
	// Machine is the simulated platform; zero value means DefaultMachine.
	Machine Machine
	// HPs are the high-priority applications (cores 0..M-1).
	HPs []HPApp
	// BEs are the best-effort applications, one per core starting at M.
	BEs []Profile
	// PeriodSec is the monitoring period (default 1 s).
	PeriodSec float64
	// StepsPerPeriod subdivides each period for the simulator (default 4).
	StepsPerPeriod int
	// HorizonPeriods is the number of monitoring periods (default 120).
	HorizonPeriods int

	// CLOSBudget is the number of CLOS ids the emulated CAT hardware
	// exposes (default 16, the common hardware limit). The plan uses at
	// most CLOSBudget-1 HP groups; BE is pinned to the last CLOS id.
	CLOSBudget int
	// Grouping selects the plan: GroupingClustered (default),
	// GroupingPerApp, or GroupingSingle.
	Grouping string
	// MinGroupWays / MinBEWays bound the moving partitions (default 1).
	MinGroupWays int
	MinBEWays    int
	// KneeEps is the clustering demand-knee cutoff (0 = cluster default).
	KneeEps float64

	// Controller carries the per-group DICER tunables; zero value means
	// DefaultConfig with this scenario's period.
	Controller ControllerConfig

	// ReclusterEvery re-evaluates the grouping every N periods (0 =
	// fixed at setup).
	ReclusterEvery int
	// UsePhaseHints exposes each app's upcoming-phase miss curve to the
	// re-clustering policy once the app is HintProgress through its
	// current phase (Com-CAS-style guidance; reactive-only when false).
	UsePhaseHints bool
	// HintProgress is the phase-progress fraction at which the next
	// phase's curve becomes visible as a hint (default 0.75).
	HintProgress float64

	// OnPeriod, when non-nil, receives every monitoring-period reading.
	OnPeriod func(period int, p Period)
	// Trace, when non-nil, receives one dicer-trace/v2 record per
	// period, with per-group decisions; see obs.MultiRecorder.
	Trace obs.Sink
}

// HPAppResult is one HP app's summary of a multi-HP run.
type HPAppResult struct {
	Name     string
	Group    int // CLOS group under the final plan
	SLO      float64
	IPC      float64
	AloneIPC float64
}

// Norm returns the app's IPC normalised to its alone run.
func (a HPAppResult) Norm() float64 { return metrics.NormIPC(a.IPC, a.AloneIPC) }

// Slowdown returns the app's co-location slowdown (alone/co-located).
func (a HPAppResult) Slowdown() float64 { return metrics.Slowdown(a.AloneIPC, a.IPC) }

// SLOMet reports whether the app met its per-app SLO.
func (a HPAppResult) SLOMet() bool { return metrics.SLOAchieved(a.IPC, a.AloneIPC, a.SLO) }

// MultiResult summarises a multi-HP scenario run.
type MultiResult struct {
	PolicyName  string
	Apps        []HPAppResult
	BEIPCs      []float64
	BEAloneIPCs []float64
	// NumGroups and GroupWays describe the final plan.
	NumGroups  int
	GroupWays  []int
	Reclusters int
}

// MaxSlowdown returns the worst per-app slowdown — the fairness metric
// LFOC-style clustering is judged on.
func (r MultiResult) MaxSlowdown() float64 {
	var worst float64
	for _, a := range r.Apps {
		if s := a.Slowdown(); s > worst {
			worst = s
		}
	}
	return worst
}

// SLOConformance returns the fraction of HP apps that met their SLO.
func (r MultiResult) SLOConformance() float64 {
	if len(r.Apps) == 0 {
		return 0
	}
	met := 0
	for _, a := range r.Apps {
		if a.SLOMet() {
			met++
		}
	}
	return float64(met) / float64(len(r.Apps))
}

// EFU returns Eq. 1's effective utilisation over every application.
func (r MultiResult) EFU() float64 {
	norms := make([]float64, 0, len(r.Apps)+len(r.BEIPCs))
	for _, a := range r.Apps {
		norms = append(norms, a.Norm())
	}
	for i := range r.BEIPCs {
		norms = append(norms, metrics.NormIPC(r.BEIPCs[i], r.BEAloneIPCs[i]))
	}
	return metrics.EFU(norms)
}

// defaults fills unset fields.
func (s *MultiScenario) defaults() {
	if s.Machine.Cores == 0 {
		s.Machine = DefaultMachine()
	}
	if s.PeriodSec == 0 {
		s.PeriodSec = 1
	}
	if s.StepsPerPeriod == 0 {
		s.StepsPerPeriod = 4
	}
	if s.HorizonPeriods == 0 {
		s.HorizonPeriods = 120
	}
	if s.CLOSBudget == 0 {
		s.CLOSBudget = 16
	}
	if s.Grouping == "" {
		s.Grouping = core.GroupingClustered
	}
	if s.MinGroupWays == 0 {
		s.MinGroupWays = 1
	}
	if s.MinBEWays == 0 {
		s.MinBEWays = 1
	}
	if s.Controller.PeriodSec == 0 {
		s.Controller = DefaultControllerConfig()
		s.Controller.PeriodSec = s.PeriodSec
	}
	if s.HintProgress == 0 {
		s.HintProgress = 0.75
	}
	for i := range s.HPs {
		if s.HPs[i].SLO == 0 {
			s.HPs[i].SLO = 0.9
		}
	}
}

// multiConfig assembles the controller configuration.
func (s *MultiScenario) multiConfig() core.MultiConfig {
	return core.MultiConfig{
		Group:          s.Controller,
		WayBytes:       s.Machine.WaysBytes(1),
		CLOSBudget:     s.CLOSBudget,
		Grouping:       s.Grouping,
		MinGroupWays:   s.MinGroupWays,
		MinBEWays:      s.MinBEWays,
		KneeEps:        s.KneeEps,
		ReclusterEvery: s.ReclusterEvery,
		UsePhaseHints:  s.UsePhaseHints,
	}
}

// specsInto refreshes the per-app planning view from the live processes:
// current-phase curves, plus upcoming-phase hints for apps close enough
// to their phase boundary when hints are enabled.
func (s *MultiScenario) specsInto(specs []cluster.AppSpec, procs []*app.Proc) {
	for i, pr := range procs {
		ph := pr.PhaseRef()
		specs[i].Name = s.HPs[i].Profile.Name
		specs[i].Core = i
		specs[i].SLO = s.HPs[i].SLO
		specs[i].Curve = ph.Curve
		specs[i].APKI = ph.APKI
		specs[i].Hint = nil
		if s.UsePhaseHints && len(pr.Profile.Phases) > 1 && pr.PhaseProgress() >= s.HintProgress {
			next := (pr.PhaseIndex() + 1) % len(pr.Profile.Phases)
			specs[i].Hint = &pr.Profile.Phases[next].Curve
		}
	}
}

// Run executes the scenario and returns the summary. Alone runs for
// normalisation are executed on the same machine.
func (s *MultiScenario) Run() (MultiResult, error) {
	s.defaults()
	m := len(s.HPs)
	if m == 0 {
		return MultiResult{}, fmt.Errorf("dicer: multi scenario needs at least one HP app")
	}
	if m+len(s.BEs) > s.Machine.Cores {
		return MultiResult{}, fmt.Errorf("dicer: %d applications exceed %d cores",
			m+len(s.BEs), s.Machine.Cores)
	}

	r, err := sim.New(s.Machine, s.CLOSBudget)
	if err != nil {
		return MultiResult{}, err
	}
	beClos := s.CLOSBudget - 1
	procs := make([]*app.Proc, m)
	for i, hp := range s.HPs {
		// HP apps start in CLOS 0; Setup moves them into their groups.
		if err := r.Attach(i, 0, hp.Profile); err != nil {
			return MultiResult{}, err
		}
		procs[i] = r.Proc(i)
	}
	for i, be := range s.BEs {
		if err := r.Attach(m+i, beClos, be); err != nil {
			return MultiResult{}, err
		}
	}
	sys := resctrl.NewEmu(r, false)

	specs := make([]cluster.AppSpec, m)
	s.specsInto(specs, procs)
	mc, err := core.NewMulti(s.multiConfig(), specs)
	if err != nil {
		return MultiResult{}, err
	}
	reclusters := 0
	mc.ChainTrace(func(e core.GroupEvent) {
		if e.Kind == core.EventRecluster && e.Group == 0 {
			reclusters++
		}
	})

	var rec *obs.MultiRecorder
	if s.Trace != nil {
		rec = obs.NewMultiRecorder(s.Trace, mc)
		if err := rec.Start(s.traceHeader(mc)); err != nil {
			return MultiResult{}, err
		}
	}

	if err := mc.Setup(sys); err != nil {
		return MultiResult{}, err
	}
	meter := resctrl.NewMeter(sys)
	dt := s.PeriodSec / float64(s.StepsPerPeriod)
	for period := 0; period < s.HorizonPeriods; period++ {
		for step := 0; step < s.StepsPerPeriod; step++ {
			r.Step(dt)
		}
		p := meter.Sample()
		if s.OnPeriod != nil {
			s.OnPeriod(period, p)
		}
		s.specsInto(specs, procs)
		if err := mc.UpdateSpecs(specs); err != nil {
			return MultiResult{}, err
		}
		obsErr := mc.Observe(sys, p)
		if rec != nil {
			rec.EndPeriod(period, p, sys, obsErr)
		}
		if obsErr != nil {
			return MultiResult{}, obsErr
		}
	}

	res := MultiResult{
		PolicyName: mc.Name(),
		NumGroups:  mc.NumGroups(),
		Reclusters: reclusters,
	}
	for gi := 0; gi < mc.NumGroups(); gi++ {
		res.GroupWays = append(res.GroupWays, mc.GroupWays(gi))
	}
	alone := map[string]float64{}
	aloneOf := func(prof Profile) (float64, error) {
		ipc, ok := alone[prof.Name]
		if !ok {
			var err error
			if ipc, err = s.aloneIPC(prof); err != nil {
				return 0, err
			}
			alone[prof.Name] = ipc
		}
		return ipc, nil
	}
	for i, hp := range s.HPs {
		ref, err := aloneOf(hp.Profile)
		if err != nil {
			return MultiResult{}, err
		}
		res.Apps = append(res.Apps, HPAppResult{
			Name:     hp.Profile.Name,
			Group:    mc.GroupOf(i),
			SLO:      hp.SLO,
			IPC:      procs[i].IPC(),
			AloneIPC: ref,
		})
	}
	for i, be := range s.BEs {
		ref, err := aloneOf(be)
		if err != nil {
			return MultiResult{}, err
		}
		res.BEIPCs = append(res.BEIPCs, r.Proc(m+i).IPC())
		res.BEAloneIPCs = append(res.BEAloneIPCs, ref)
	}
	return res, nil
}

// traceHeader describes the run for v2 trace sinks.
func (s *MultiScenario) traceHeader(mc *core.MultiController) obs.Header {
	cfg := mc.Config().Group
	h := obs.Header{
		Schema:         obs.SchemaV2,
		Policy:         mc.Name(),
		NumWays:        s.Machine.LLCWays,
		PeriodSec:      s.PeriodSec,
		HorizonPeriods: s.HorizonPeriods,
		LinkGbps:       s.Machine.Link.CapacityGBps,
		Controller:     &cfg,
		CLOSBudget:     s.CLOSBudget,
		Grouping:       s.Grouping,
	}
	for _, hp := range s.HPs {
		h.HPs = append(h.HPs, hp.Profile.Name)
		h.SLOs = append(h.SLOs, hp.SLO)
	}
	for _, be := range s.BEs {
		h.BEs = append(h.BEs, be.Name)
	}
	return h
}

// aloneIPC runs prof alone on the machine with the full LLC.
func (s *MultiScenario) aloneIPC(prof Profile) (float64, error) {
	r, err := sim.New(s.Machine, 1)
	if err != nil {
		return 0, err
	}
	if err := r.Attach(0, 0, prof); err != nil {
		return 0, err
	}
	dt := s.PeriodSec / float64(s.StepsPerPeriod)
	for i := 0; i < s.HorizonPeriods*s.StepsPerPeriod; i++ {
		r.Step(dt)
	}
	return r.Proc(0).IPC(), nil
}
