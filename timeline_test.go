package dicer

import (
	"strings"
	"testing"
)

func TestTimelineRecordsEveryPeriod(t *testing.T) {
	sc := NewScenario("milc1", "gcc_base1", 9)
	sc.HorizonPeriods = 15
	tl := &Timeline{}
	sc.AttachTimeline(tl)
	if _, err := sc.Run(NewDICER()); err != nil {
		t.Fatal(err)
	}
	if len(tl.Entries) != 15 {
		t.Fatalf("timeline has %d entries, want 15", len(tl.Entries))
	}
	for i, e := range tl.Entries {
		if e.Period != i {
			t.Fatalf("entry %d has period %d", i, e.Period)
		}
		if e.HPWays < 1 || e.HPWays > 19 {
			t.Fatalf("entry %d HP ways %d", i, e.HPWays)
		}
		if e.HPWays+e.BEWays != 20 {
			t.Fatalf("entry %d ways %d+%d do not cover the cache", i, e.HPWays, e.BEWays)
		}
		if e.TotalGbps <= 0 || e.HPIPC <= 0 {
			t.Fatalf("entry %d has empty readings: %+v", i, e)
		}
	}
	// DICER must have actually moved the partition on this CT-T pair.
	lo, hi := tl.MinMaxHPWays()
	if lo == hi {
		t.Fatalf("allocation never moved (stuck at %d ways)", lo)
	}
	if got := len(tl.HPWaysSeries()); got != 15 {
		t.Fatalf("series length %d", got)
	}
}

func TestTimelineCSV(t *testing.T) {
	tl := &Timeline{Entries: []TimelineEntry{
		{Period: 0, HPIPC: 0.5, BEMeanIPC: 0.4, HPWays: 19, BEWays: 1, HPBWGbps: 5, TotalGbps: 50},
	}}
	var b strings.Builder
	if err := tl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "period,hp_ipc") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "0,0.5000,0.4000,19,1,5.00,50.00") {
		t.Fatalf("row formatting: %q", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := &Timeline{}
	if lo, hi := tl.MinMaxHPWays(); lo != 0 || hi != 0 {
		t.Fatal("empty timeline min/max")
	}
	var b strings.Builder
	if err := tl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "period,") {
		t.Fatal("empty timeline should still emit the header")
	}
}
