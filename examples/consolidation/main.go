// Consolidation case study: the paper's milc (HP) + 9x gcc (BEs) workload
// from §2.3.2 / Figure 3.
//
// milc is a memory-bound streamer: it needs only ~2 LLC ways, and anything
// beyond that squeezes the gcc best-efforts into so little cache that
// their miss traffic saturates the memory link — which then hurts milc
// itself. The Cache-Takeover policy (19 ways for the HP) therefore
// *degrades* the HP, while a small static partition — or DICER, which
// finds it automatically — performs best.
//
//	go run ./examples/consolidation
package main

import (
	"flag"
	"fmt"
	"log"

	"dicer"
)

func main() {
	periods := flag.Int("periods", 120, "monitoring periods to simulate")
	flag.Parse()

	sc := dicer.NewScenario("milc1", "gcc_base1", 9)
	sc.HorizonPeriods = *periods

	fmt.Println("milc (HP) + 9x gcc (BEs): HP slowdown by policy")
	fmt.Println()

	type row struct {
		name string
		pol  dicer.Policy
	}
	rows := []row{
		{"UM (unmanaged)", dicer.Unmanaged()},
		{"CT (19 ways)", dicer.CacheTakeover()},
	}
	// The full static sweep of Figure 3, abridged to the interesting
	// points: 1 way (too little), 2 ways (the sweet spot), 8 ways.
	for _, ways := range []int{1, 2, 8} {
		rows = append(rows, row{fmt.Sprintf("Static %d ways", ways), dicer.StaticPartition(ways)})
	}
	rows = append(rows, row{"DICER", dicer.NewDICER()})

	fmt.Printf("%-16s %9s %9s %8s %8s\n", "policy", "HP slow", "HP norm", "BE norm", "EFU")
	for _, r := range rows {
		res, err := sc.Run(r.pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %8.3fx %9.3f %8.3f %8.3f\n",
			r.name, res.HPSlowdown(), res.HPNorm(), res.BENorms()[0], res.EFU())
	}

	fmt.Println()
	fmt.Println("Note how CT is the worst allocation for the HP here (bandwidth")
	fmt.Println("saturation, the paper's Key Observation 2), and DICER lands near")
	fmt.Println("the best static partition without knowing anything about milc.")
}
