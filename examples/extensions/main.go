// Extensions: the paper's §6 future-work items, implemented and compared.
//
// The workload is deliberately hostile to pure cache partitioning: a
// bandwidth-bound HP (lbm) with nine bandwidth-bound BEs (libquantum).
// No LLC allocation can protect lbm here — the memory link is the
// bottleneck — so plain DICER can only find the least-bad partition.
// The two §6 extensions attack the link directly:
//
//   - DICER+MBA throttles the best-effort class's memory bandwidth with
//     an AIMD loop until the link leaves saturation;
//
//   - DICER+BEMGR parks best-effort cores one at a time (thread packing)
//     while saturation persists, and unparks them when headroom returns.
//
//     go run ./examples/extensions
package main

import (
	"flag"
	"fmt"
	"log"

	"dicer"
	"dicer/internal/ext"
)

func main() {
	periods := flag.Int("periods", 120, "monitoring periods to simulate")
	flag.Parse()

	cfg := dicer.DefaultControllerConfig()

	mba, err := ext.NewDicerMBA(cfg, ext.DefaultMBAConfig(cfg.BWThresholdGbps))
	if err != nil {
		log.Fatal(err)
	}
	bemgrInner := dicer.NewDICER()
	bemgr, err := ext.NewBEManager(bemgrInner, ext.DefaultBEManagerConfig(cfg.BWThresholdGbps))
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		name    string
		pol     dicer.Policy
		wantMBA bool
	}
	variants := []variant{
		{"DICER (plain)", dicer.NewDICER(), false},
		{"DICER+MBA", mba, true},
		{"DICER+BEMGR", bemgr, false},
	}

	fmt.Println("lbm (HP, bandwidth-bound) + 9x libquantum (BEs, bandwidth-bound)")
	fmt.Println()
	fmt.Printf("%-14s %9s %9s %8s\n", "variant", "HP norm", "BE norm", "EFU")
	for _, v := range variants {
		sc := dicer.NewScenario("lbm1", "libquantum1", 9)
		sc.HorizonPeriods = *periods
		sc.WithMBA = v.wantMBA
		res, err := sc.Run(v.pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %9.3f %9.3f %8.3f\n",
			v.name, res.HPNorm(), res.BENorms()[0], res.EFU())
	}
	fmt.Println()
	fmt.Printf("BE manager parked %d of 9 best-effort cores at the end of its run.\n",
		bemgr.ParkedBEs())
	fmt.Printf("MBA loop settled on a best-effort cap of %.1f Gbps.\n", mba.BECapGbps())
	fmt.Println()
	fmt.Println("Both extensions trade best-effort throughput for HP protection that")
	fmt.Println("cache partitioning alone cannot provide on a saturated memory link.")
}
