// Multi-HP consolidation under a CLOS budget: 20 latency-critical apps
// + 2 best-effort apps on a 22-core socket whose CAT hardware exposes
// only 16 CLOS ids. Per-app partitioning is infeasible (20 apps with
// 1-way floors exceed the 19 movable ways), so the controller clusters
// similar-sensitivity apps into shared partitions and runs one DICER
// state machine per group. The clustered plan is compared against the
// naive deployment baseline — one CLOS per app in arrival order, the
// overflow spilled into the last partition — on worst-app slowdown,
// per-app SLO conformance, and Eq. 1 EFU.
package main

import (
	"flag"
	"fmt"
	"log"

	"dicer"
)

func run(grouping string, periods int) (dicer.MultiResult, error) {
	// A bigger socket than the paper's: 22 cores, memory link scaled to
	// keep per-core bandwidth constant, so the LLC stays the contended
	// resource the grouping is judged on.
	m := dicer.DefaultMachine()
	need := 22
	m.Link.CapacityGBps *= float64(need) / float64(m.Cores)
	m.Cores = need

	gcc, err := dicer.AppByName("gcc_base1")
	if err != nil {
		return dicer.MultiResult{}, err
	}
	ms := dicer.MultiScenario{
		Machine:        m,
		BEs:            []dicer.Profile{gcc, gcc},
		Grouping:       grouping,
		HorizonPeriods: periods,
	}
	for _, p := range dicer.Catalog()[:20] {
		ms.HPs = append(ms.HPs, dicer.HPApp{Profile: p, SLO: 0.9})
	}
	return ms.Run()
}

func main() {
	periods := flag.Int("periods", 120, "monitoring periods to simulate")
	flag.Parse()
	for _, grouping := range []string{dicer.GroupingClustered, dicer.GroupingSpill} {
		res, err := run(grouping, *periods)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s groups %2d  worst slowdown %.3f  SLO conf %3.0f%%  EFU %.3f\n",
			grouping, res.NumGroups, res.MaxSlowdown(), 100*res.SLOConformance(), res.EFU())
	}
}
