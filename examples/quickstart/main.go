// Quickstart: co-locate a cache-sensitive high-priority application with
// nine best-effort instances and let DICER manage the LLC partition.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	"dicer"
)

func main() {
	periods := flag.Int("periods", 120, "monitoring periods to simulate")
	flag.Parse()

	// One HP (omnetpp, cache-sensitive) + 9 BEs (gcc) on the paper's
	// 10-core, 25 MB 20-way Xeon.
	sc := dicer.NewScenario("omnetpp1", "gcc_base1", 9)
	sc.HorizonPeriods = *periods

	for _, pol := range []dicer.Policy{
		dicer.Unmanaged(),     // no control: full contention
		dicer.CacheTakeover(), // static: HP gets 19 of 20 ways
		dicer.NewDICER(),      // dynamic: adapts to the HP's needs
	} {
		res, err := sc.Run(pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s HP norm IPC %.3f  BE norm IPC %.3f  EFU %.3f  SLO90 %v\n",
			res.PolicyName, res.HPNorm(), res.BENorms()[0], res.EFU(),
			res.SLOAchieved(0.90))
	}
}
