// resctrlfs: drive the emulated platform exactly the way a sysadmin (or
// the intel-cmt-cat tooling the paper extends) drives /sys/fs/resctrl on
// real hardware — through file paths, schemata strings and monitoring
// files — and implement a miniature Cache-Takeover by hand.
//
//	go run ./examples/resctrlfs
package main

import (
	"flag"
	"fmt"
	"log"

	"dicer"
	"dicer/internal/app"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

func main() {
	seconds := flag.Int("seconds", 10, "seconds of simulated time to run")
	flag.Parse()

	// Build the paper's machine with one HP (mcf) and nine BEs (lbm).
	m := dicer.DefaultMachine()
	r, err := sim.New(m, 2)
	check(err)
	check(r.Attach(0, policy.HPClos, app.MustByName("mcf1")))
	for core := 1; core <= 9; core++ {
		check(r.Attach(core, policy.BEClos, app.MustByName("lbm1")))
	}
	fs := resctrl.NewFS(resctrl.NewEmu(r, false))

	// Discover the platform, as `cat /sys/fs/resctrl/info/L3/*` would.
	cbm, _ := fs.ReadFile("/info/L3/cbm_mask")
	closids, _ := fs.ReadFile("/info/L3/num_closids")
	fmt.Printf("platform CBM: %s", cbm)
	fmt.Printf("closids:      %s\n", closids)

	// Create a control group for the best-efforts and take the cache over
	// for the HP: root group (CLOS 0) gets ways 1..19, "be" (CLOS 1) gets
	// way 0 — the CT policy, written as schemata strings.
	check(fs.Mkdir("/be"))
	check(fs.WriteFile("/schemata", "L3:0=ffffe"))
	check(fs.WriteFile("/be/schemata", "L3:0=00001"))

	s1, _ := fs.ReadFile("/schemata")
	s2, _ := fs.ReadFile("/be/schemata")
	fmt.Printf("root schemata: %s", s1)
	fmt.Printf("be schemata:   %s\n", s2)

	// Run for -seconds and read the monitoring files (CMT occupancy, MBM
	// bytes), as a monitoring daemon would.
	for i := 0; i < *seconds*4; i++ {
		r.Step(0.25)
	}
	for _, group := range []string{"", "/be"} {
		occ, err := fs.ReadFile(group + "/mon_data/mon_L3_00/llc_occupancy")
		check(err)
		bw, err := fs.ReadFile(group + "/mon_data/mon_L3_00/mbm_total_bytes")
		check(err)
		name := group
		if name == "" {
			name = "/(root)"
		}
		fmt.Printf("%-8s llc_occupancy=%s         mbm_total_bytes=%s", name, trim(occ), bw)
	}
}

func trim(s string) string {
	if len(s) > 0 && s[len(s)-1] == '\n' {
		return s[:len(s)-1]
	}
	return s
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
