// Phases: watch DICER react to an application that changes phase.
//
// The HP here is Xalan, whose profile alternates a light "parse" phase
// with a heavier "transform" phase that needs more cache and more
// bandwidth. The example traces every controller decision so you can see
// Eq. 2 (the bandwidth-spike phase detector) fire, the reset that follows,
// and the re-optimisation afterwards.
//
//	go run ./examples/phases
package main

import (
	"flag"
	"fmt"
	"log"

	"dicer"
)

func main() {
	periods := flag.Int("periods", 90, "monitoring periods to simulate")
	flag.Parse()

	ctl := dicer.NewDICER()
	ctl.Trace = func(e dicer.ControllerEvent) {
		marker := ""
		switch e.Kind {
		case "phase-change":
			marker = "  <-- Eq. 2 fired: HP bandwidth spiked vs geomean of last 3 periods"
		case "sample-done":
			marker = "  <-- optimal allocation locked in"
		case "rollback":
			marker = "  <-- reset did not help: reverting"
		}
		fmt.Printf("[p%03d %-8s] %-12s hpWays=%2d hpIPC=%.3f bw=%5.1f%s\n",
			e.Period, e.State, e.Kind, e.HPWays, e.HPIPC, e.TotalBW, marker)
	}

	sc := dicer.NewScenario("Xalan1", "bzip21", 9)
	sc.HorizonPeriods = *periods

	res, err := sc.Run(ctl)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("Xalan (HP) + 9x bzip2: HP norm IPC %.3f, EFU %.3f, final HP ways %d\n",
		res.HPNorm(), res.EFU(), res.FinalHPWays)
}
