// Benchmark harness: one benchmark per table and figure of the DICER
// paper's evaluation. Each benchmark drives the corresponding experiment
// on the simulated platform with the paper's full configuration (Table 1)
// and prints the regenerated rows/series once, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation section. Results are memoised inside a
// shared Suite, so the reported per-iteration times after the first
// iteration reflect lookup cost; the interesting output is the tables.
// EXPERIMENTS.md records the paper-vs-measured comparison for every entry.
package dicer_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"dicer"
	"dicer/internal/app"
	"dicer/internal/cache"
	"dicer/internal/core"
	"dicer/internal/experiments"
	"dicer/internal/ext"
	"dicer/internal/machine"
	"dicer/internal/mrc"
	"dicer/internal/policy"
	"dicer/internal/report"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	gridOnce  sync.Once
	grid      *experiments.Grid

	printOnce sync.Map // benchmark name -> *sync.Once
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		s, err := experiments.NewSuite(experiments.DefaultConfig())
		if err != nil {
			panic(err)
		}
		suite = s
	})
	return suite
}

func benchGrid(b *testing.B) *experiments.Grid {
	b.Helper()
	s := benchSuite(b)
	gridOnce.Do(func() {
		g, err := s.GridFor(9)
		if err != nil {
			panic(err)
		}
		grid = g
	})
	return grid
}

// printTables emits the given tables exactly once per benchmark name.
func printTables(name string, tables ...*report.Table) {
	onceIface, _ := printOnce.LoadOrStore(name, &sync.Once{})
	onceIface.(*sync.Once).Do(func() {
		fmt.Printf("\n===== %s =====\n", name)
		for _, t := range tables {
			_ = t.Render(os.Stdout)
			fmt.Println()
		}
	})
}

// BenchmarkControllerObserve measures one full monitoring period of the
// DICER control loop on the paper's platform — simulator steps, counter
// sampling and the controller decision — i.e. the per-period overhead a
// deployment pays. The alloc guard in internal/core/alloc_test.go pins
// the controller's own share of that to zero allocations.
func BenchmarkControllerObserve(b *testing.B) {
	m := machine.Default()
	r, err := sim.New(m, 2)
	if err != nil {
		b.Fatal(err)
	}
	if err := r.Attach(0, policy.HPClos, app.MustByName("omnetpp1")); err != nil {
		b.Fatal(err)
	}
	for c := 1; c <= 9; c++ {
		if err := r.Attach(c, policy.BEClos, app.MustByName("gcc_base1")); err != nil {
			b.Fatal(err)
		}
	}
	emu := resctrl.NewEmu(r, false)
	ctl := core.MustNew(core.DefaultConfig())
	if err := ctl.Setup(emu); err != nil {
		b.Fatal(err)
	}
	meter := resctrl.NewMeter(emu)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 4; s++ {
			r.Step(0.25)
		}
		if err := ctl.Observe(emu, meter.Sample()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_Config(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		printTables("Table 1", s.Table1())
	}
}

func BenchmarkFigure1_SlowdownCDF(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		f, err := s.Figure1(9)
		if err != nil {
			b.Fatal(err)
		}
		printTables("Figure 1", f.Table())
		b.ReportMetric(f.UMCDF[1], "umCDF@1.1x_%")
		b.ReportMetric(f.CTCDF[1], "ctCDF@1.1x_%")
	}
}

// BenchmarkSweep59x59 is the perf-trajectory headline: the full 3481-cell
// baseline sweep (UM + CT over the whole catalog) on a FRESH suite each
// iteration, so nothing is served from the memo cache — every cell
// simulates. BENCH_sweep.json (emitted by cmd/dicer-bench -sweepjson)
// tracks this number across PRs.
func BenchmarkSweep59x59(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewSuite(experiments.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		f, err := s.Figure1(9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.UMCDF[1], "umCDF@1.1x_%")
	}
}

// BenchmarkSweep59x59Parallel is the same fresh-suite sweep with the
// sharded executor explicitly bounded to every core (the equivalence
// suite guarantees the output is byte-identical to Workers=1). Together
// with BenchmarkSweep59x59 it exposes the parallel speedup; ns/op ÷
// (serial ns/op ÷ GOMAXPROCS) is the executor's parallel efficiency.
func BenchmarkSweep59x59Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultConfig()
		cfg.Workers = runtime.GOMAXPROCS(0)
		s, err := experiments.NewSuite(cfg)
		if err != nil {
			b.Fatal(err)
		}
		f, err := s.Figure1(9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.UMCDF[1], "umCDF@1.1x_%")
	}
}

func BenchmarkFigure2_WaysCDF(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		f, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		printTables("Figure 2", f.Table())
		b.ReportMetric(f.CDF[2][5], "apps99pct@6ways_%")
	}
}

func BenchmarkFigure3_StaticSweep(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		f, err := s.Figure3("milc1", "gcc_base1", 9)
		if err != nil {
			b.Fatal(err)
		}
		printTables("Figure 3", f.Table())
		b.ReportMetric(float64(f.BestWays), "bestHPWays")
		b.ReportMetric(f.Slowdown[len(f.Slowdown)-1], "ctSlowdown")
	}
}

func BenchmarkFigure4_EFUScatter(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		f, err := s.Figure4(9)
		if err != nil {
			b.Fatal(err)
		}
		printTables("Figure 4", f.Table())
	}
}

func BenchmarkFigure5_PerWorkload(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		f, err := s.Figure5(9)
		if err != nil {
			b.Fatal(err)
		}
		printTables("Figure 5", f.Table())
	}
}

func BenchmarkFigure6_EFUvsCores(b *testing.B) {
	g := benchGrid(b)
	for i := 0; i < b.N; i++ {
		f := g.Figure6()
		printTables("Figure 6", f.Table())
		last := len(f.CoreCounts) - 1
		b.ReportMetric(f.EFU[experiments.UM][last], "umEFU@10cores")
		b.ReportMetric(f.EFU[experiments.CT][last], "ctEFU@10cores")
		b.ReportMetric(f.EFU[experiments.DICER][last], "dicerEFU@10cores")
	}
}

func BenchmarkFigure7_SLOConformance(b *testing.B) {
	g := benchGrid(b)
	for i := 0; i < b.N; i++ {
		f := g.Figure7()
		printTables("Figure 7", f.Tables()...)
		last := len(f.CoreCounts) - 1
		b.ReportMetric(f.Achieved[0.90][experiments.DICER][last], "dicerSLO90@10cores_%")
	}
}

func BenchmarkFigure8_SUCI(b *testing.B) {
	g := benchGrid(b)
	for i := 0; i < b.N; i++ {
		f := g.Figure8()
		printTables("Figure 8", f.Tables()...)
		last := len(f.CoreCounts) - 1
		b.ReportMetric(f.SUCI[1][0.90][experiments.DICER][last], "dicerSUCI90@10cores")
	}
}

func BenchmarkHeadline_Claims(b *testing.B) {
	g := benchGrid(b)
	for i := 0; i < b.N; i++ {
		h := g.Headline(10)
		printTables("Headline", h.Table())
		b.ReportMetric(h.PctSLO80, "slo80_%")
		b.ReportMetric(h.PctSLO90, "slo90_%")
		b.ReportMetric(h.GeoMeanEFU, "geomeanEFU")
	}
}

// ---------------------------------------------------------------------------
// Ablation and extension benches (DESIGN.md: design choices under test).

// runScenario executes one scenario and returns (HP norm, EFU).
func runScenario(b *testing.B, hp, be string, n int, pol dicer.Policy, mba bool) (float64, float64) {
	b.Helper()
	sc := dicer.NewScenario(hp, be, n)
	sc.WithMBA = mba
	res, err := sc.Run(pol)
	if err != nil {
		b.Fatal(err)
	}
	return res.HPNorm(), res.EFU()
}

// BenchmarkAblation_SaturationHandling removes DICER's bandwidth-saturation
// sampling (≈ the DCP-QoS scheme the paper cites) and measures what it
// costs on the paper's canonical CT-Thwarted pair.
func BenchmarkAblation_SaturationHandling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full, _ := runScenario(b, "milc1", "gcc_base1", 9, dicer.NewDICER(), false)
		cfg := core.DefaultConfig()
		cfg.DisableSaturationHandling = true
		ablated, _ := runScenario(b, "milc1", "gcc_base1", 9, core.MustNew(cfg), false)
		printTables("Ablation: saturation handling",
			ablationTable("milc1 + 9x gcc_base1 (CT-T)", "HP norm IPC", full, ablated))
		b.ReportMetric(full, "hpNorm_full")
		b.ReportMetric(ablated, "hpNorm_noSaturation")
	}
}

// BenchmarkAblation_PhaseDetection removes Eq. 2 and measures the effect on
// a phase-changing HP.
func BenchmarkAblation_PhaseDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full, _ := runScenario(b, "Xalan1", "bzip21", 9, dicer.NewDICER(), false)
		cfg := core.DefaultConfig()
		cfg.DisablePhaseDetection = true
		ablated, _ := runScenario(b, "Xalan1", "bzip21", 9, core.MustNew(cfg), false)
		printTables("Ablation: phase detection",
			ablationTable("Xalan1 + 9x bzip21 (phased HP)", "HP norm IPC", full, ablated))
		b.ReportMetric(full, "hpNorm_full")
		b.ReportMetric(ablated, "hpNorm_noPhaseDetect")
	}
}

// BenchmarkExtension_MBA measures the §6 MBA extension against plain DICER
// on a bandwidth-dominated workload.
func BenchmarkExtension_MBA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain, _ := runScenario(b, "lbm1", "libquantum1", 9, dicer.NewDICER(), false)
		cfg := core.DefaultConfig()
		mba, err := ext.NewDicerMBA(cfg, ext.DefaultMBAConfig(cfg.BWThresholdGbps))
		if err != nil {
			b.Fatal(err)
		}
		withMBA, _ := runScenario(b, "lbm1", "libquantum1", 9, mba, true)
		printTables("Extension: DICER+MBA",
			ablationTable("lbm1 + 9x libquantum1 (bandwidth-bound)", "HP norm IPC", withMBA, plain))
		b.ReportMetric(plain, "hpNorm_dicer")
		b.ReportMetric(withMBA, "hpNorm_dicerMBA")
	}
}

// BenchmarkExtension_Overlap compares an overlapping partition against the
// disjoint partition with the same HP reach (§6's open question).
func BenchmarkExtension_Overlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, strictEFU := runScenario(b, "namd1", "omnetpp1", 5, dicer.StaticPartition(10), false)
		_, overlapEFU := runScenario(b, "namd1", "omnetpp1", 5,
			ext.OverlapStatic{HPExclusive: 4, OverlapWays: 6}, false)
		printTables("Extension: overlapping partitions",
			ablationTable("namd1 + 5x omnetpp1", "EFU", overlapEFU, strictEFU))
		b.ReportMetric(strictEFU, "efu_disjoint")
		b.ReportMetric(overlapEFU, "efu_overlap")
	}
}

func ablationTable(workload, metric string, full, ablated float64) *report.Table {
	t := report.NewTable(workload, "Variant", metric)
	t.AddRowf("full mechanism", full)
	t.AddRowf("ablated / baseline", ablated)
	return t
}

// ---------------------------------------------------------------------------
// Sensitivity sweeps (reconstructing the analysis §4.1 mentions but omits)
// and the sample-wide ablation comparison.

func BenchmarkSensitivity_BWThreshold(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.SensitivityBWThreshold(9)
		if err != nil {
			b.Fatal(err)
		}
		printTables("Sensitivity: MemBW_threshold", r.Table())
	}
}

func BenchmarkSensitivity_Alpha(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.SensitivityAlpha(9)
		if err != nil {
			b.Fatal(err)
		}
		printTables("Sensitivity: stability a", r.Table())
	}
}

func BenchmarkSensitivity_PhaseThreshold(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.SensitivityPhaseThreshold(9)
		if err != nil {
			b.Fatal(err)
		}
		printTables("Sensitivity: phase_threshold", r.Table())
	}
}

func BenchmarkSensitivity_SampleStep(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.SensitivitySampleStep(9)
		if err != nil {
			b.Fatal(err)
		}
		printTables("Sensitivity: sample step", r.Table())
	}
}

func BenchmarkAblation_Sample(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Ablations(9)
		if err != nil {
			b.Fatal(err)
		}
		printTables("Ablation: variants over sample", r.Table())
	}
}

func BenchmarkExtension_Sample(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Extensions(9, 6)
		if err != nil {
			b.Fatal(err)
		}
		printTables("Extensions over bandwidth-heavy workloads", r.Table())
	}
}

// BenchmarkValidation_MRC compares the analytic miss-ratio model against
// the trace-driven LRU simulator on mixtures spanning the catalog's
// behaviour classes (the analytic curves are what the system simulator
// runs on, so this is the substrate's ground-truth check).
func BenchmarkValidation_MRC(b *testing.B) {
	cfg := cache.Config{SizeBytes: 64 * 8 * 64, Ways: 8, LineBytes: 64, Clos: 1}
	for i := 0; i < b.N; i++ {
		t := report.NewTable("MRC validation: analytic vs trace-driven LRU (32 KiB, 8-way)",
			"Case", "MAE", "measured@full", "analytic@full")
		for _, vc := range mrc.DefaultValidationCases(cfg) {
			measured, analytic, mae, err := vc.Validate(cfg, 60000, 42)
			if err != nil {
				b.Fatal(err)
			}
			t.AddRowf(vc.Name, mae, measured[cfg.Ways-1], analytic[cfg.Ways-1])
		}
		printTables("MRC validation", t)
	}
}

// BenchmarkComparison_Heracles pits DICER (fully transparent) against a
// simplified Heracles controller that is handed the HP's alone-run IPC and
// SLO target — the application-provided information the paper's design
// explicitly avoids depending on (§1, §5).
func BenchmarkComparison_Heracles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prof, err := dicer.AppByName("omnetpp1")
		if err != nil {
			b.Fatal(err)
		}
		ref, err := dicer.AloneIPC(dicer.Machine{}, prof)
		if err != nil {
			b.Fatal(err)
		}
		h, err := ext.NewHeracles(ref, 0.90)
		if err != nil {
			b.Fatal(err)
		}
		hNorm, hEFU := runScenario(b, "omnetpp1", "gcc_base1", 9, h, false)
		dNorm, dEFU := runScenario(b, "omnetpp1", "gcc_base1", 9, dicer.NewDICER(), false)
		t := report.NewTable("omnetpp1 + 9x gcc_base1: transparency vs application-provided QoS",
			"Controller", "HP norm IPC", "EFU")
		t.AddRowf("Heracles (knows alone-IPC + SLO)", hNorm, hEFU)
		t.AddRowf("DICER (transparent)", dNorm, dEFU)
		printTables("Comparison: Heracles vs DICER", t)
		b.ReportMetric(hNorm, "hpNorm_heracles")
		b.ReportMetric(dNorm, "hpNorm_dicer")
		b.ReportMetric(hEFU, "efu_heracles")
		b.ReportMetric(dEFU, "efu_dicer")
	}
}

// BenchmarkFigure5_PaperPairs runs the workload pairs legible in the
// published Figure 5's axis labels and reports the panel-agreement score.
func BenchmarkFigure5_PaperPairs(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		f, err := s.Figure5Paper(9)
		if err != nil {
			b.Fatal(err)
		}
		printTables("Figure 5 (paper's named pairs)", f.Table())
		b.ReportMetric(f.AgreementPct(), "panelAgreement_%")
	}
}
