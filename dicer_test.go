package dicer

import (
	"bytes"
	"math"
	"testing"
)

func TestDefaultMachineIsPaperPlatform(t *testing.T) {
	m := DefaultMachine()
	if m.Cores != 10 || m.LLCWays != 20 || m.LLCBytes != 25<<20 {
		t.Fatalf("unexpected default machine %+v", m)
	}
}

func TestDefaultControllerConfigIsTable1(t *testing.T) {
	c := DefaultControllerConfig()
	if c.PeriodSec != 1 || c.BWThresholdGbps != 50 ||
		c.PhaseThreshold != 0.30 || c.StabilityAlpha != 0.05 {
		t.Fatalf("unexpected defaults %+v", c)
	}
}

func TestNewDICERWithValidation(t *testing.T) {
	if _, err := NewDICERWith(ControllerConfig{}); err == nil {
		t.Fatal("expected error for zero config")
	}
	if _, err := NewDICERWith(DefaultControllerConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogFacade(t *testing.T) {
	if got := len(Catalog()); got != 59 {
		t.Fatalf("catalog = %d apps", got)
	}
	if got := len(AppNames()); got != 59 {
		t.Fatalf("names = %d", got)
	}
	if _, err := AppByName("milc1"); err != nil {
		t.Fatal(err)
	}
	if _, err := AppByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestMetricFacades(t *testing.T) {
	if got := EFU([]float64{1, 0.5}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("EFU = %g", got)
	}
	if got := SUCI(true, 0.81, 0.5); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("SUCI = %g", got)
	}
	if SUCI(false, 0.81, 1) != 0 {
		t.Fatal("missed SLO should zero SUCI")
	}
}

func TestScenarioValidation(t *testing.T) {
	sc := &Scenario{HP: mustApp(t, "milc1")}
	if _, err := sc.Run(Unmanaged()); err == nil {
		t.Fatal("expected error for no BEs")
	}
	bes := make([]Profile, 10)
	for i := range bes {
		bes[i] = mustApp(t, "gcc_base1")
	}
	sc = &Scenario{HP: mustApp(t, "milc1"), BEs: bes}
	if _, err := sc.Run(Unmanaged()); err == nil {
		t.Fatal("expected error for too many applications")
	}
}

func mustApp(t *testing.T, name string) Profile {
	t.Helper()
	p, err := AppByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestScenarioRunUM(t *testing.T) {
	sc := NewScenario("namd1", "povray1", 3)
	sc.HorizonPeriods = 20
	res, err := sc.Run(Unmanaged())
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "UM" {
		t.Fatalf("policy %q", res.PolicyName)
	}
	if res.FinalHPWays != 20 {
		t.Fatalf("UM final HP ways = %d, want full 20", res.FinalHPWays)
	}
	if len(res.BEIPCs) != 3 || len(res.BEAloneIPCs) != 3 {
		t.Fatalf("BE result sizes %d/%d", len(res.BEIPCs), len(res.BEAloneIPCs))
	}
	// Compute-bound pair: co-location barely hurts.
	if res.HPNorm() < 0.90 {
		t.Fatalf("compute pair HP norm %.3f, want >= 0.90", res.HPNorm())
	}
	if e := res.EFU(); e <= 0 || e > 1 {
		t.Fatalf("EFU %g out of range", e)
	}
}

func TestScenarioRunCT(t *testing.T) {
	sc := NewScenario("omnetpp1", "gcc_base1", 9)
	sc.HorizonPeriods = 20
	res, err := sc.Run(CacheTakeover())
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalHPWays != 19 {
		t.Fatalf("CT final HP ways = %d, want 19", res.FinalHPWays)
	}
	// CT protects a cache-sensitive HP well.
	if res.HPNorm() < 0.8 {
		t.Fatalf("CT HP norm %.3f", res.HPNorm())
	}
}

func TestScenarioRunDICERBeatsCTOnUtilisation(t *testing.T) {
	mk := func() *Scenario {
		sc := NewScenario("omnetpp1", "gcc_base1", 9)
		sc.HorizonPeriods = 60
		return sc
	}
	ct, err := mk().Run(CacheTakeover())
	if err != nil {
		t.Fatal(err)
	}
	dicer, err := mk().Run(NewDICER())
	if err != nil {
		t.Fatal(err)
	}
	if dicer.EFU() <= ct.EFU() {
		t.Fatalf("DICER EFU %.3f <= CT %.3f", dicer.EFU(), ct.EFU())
	}
	// And it still protects the HP to within a few percent of CT.
	if dicer.HPNorm() < ct.HPNorm()-0.10 {
		t.Fatalf("DICER HP norm %.3f far below CT %.3f", dicer.HPNorm(), ct.HPNorm())
	}
}

func TestScenarioStaticSweepShape(t *testing.T) {
	// milc + gcc: generous HP partitions are worse than small ones.
	slow := func(ways int) float64 {
		sc := NewScenario("milc1", "gcc_base1", 9)
		sc.HorizonPeriods = 30
		res, err := sc.Run(StaticPartition(ways))
		if err != nil {
			t.Fatal(err)
		}
		return res.HPSlowdown()
	}
	if s2, s19 := slow(2), slow(19); s19 <= s2 {
		t.Fatalf("19-way slowdown %.3f <= 2-way %.3f (bandwidth saturation missing)", s19, s2)
	}
}

func TestScenarioOnPeriodCallback(t *testing.T) {
	sc := NewScenario("milc1", "gcc_base1", 4)
	sc.HorizonPeriods = 7
	var periods int
	var lastBW float64
	sc.OnPeriod = func(period int, p Period) {
		periods++
		lastBW = p.TotalGbps
	}
	if _, err := sc.Run(Unmanaged()); err != nil {
		t.Fatal(err)
	}
	if periods != 7 {
		t.Fatalf("callback fired %d times, want 7", periods)
	}
	if lastBW <= 0 {
		t.Fatal("callback saw no bandwidth")
	}
}

func TestScenarioDeterministic(t *testing.T) {
	run := func() ScenarioResult {
		sc := NewScenario("Xalan1", "bzip21", 5)
		sc.HorizonPeriods = 25
		res, err := sc.Run(NewDICER())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.HPIPC != b.HPIPC || a.FinalHPWays != b.FinalHPWays {
		t.Fatalf("non-deterministic scenario: %+v vs %+v", a, b)
	}
}

func TestScenarioSLOAndSUCI(t *testing.T) {
	sc := NewScenario("namd1", "swaptions1", 2)
	sc.HorizonPeriods = 15
	res, err := sc.Run(CacheTakeover())
	if err != nil {
		t.Fatal(err)
	}
	if !res.SLOAchieved(0.5) {
		t.Fatal("a compute pair must meet a 50% SLO")
	}
	if res.SUCI(0.5, 1) != res.EFU() {
		t.Fatal("SUCI identity at lambda 1")
	}
	if res.SUCI(1.01, 1) != 0 {
		t.Fatal("impossible SLO must zero SUCI")
	}
}

func TestAloneIPCFacade(t *testing.T) {
	prof := mustApp(t, "namd1")
	ipc, err := AloneIPC(Machine{}, prof)
	if err != nil {
		t.Fatal(err)
	}
	// namd is compute-bound: IPC near 1/BaseCPI.
	if ipc < 1.5 || ipc > 2.0 {
		t.Fatalf("namd alone IPC %.3f implausible", ipc)
	}
	// Must agree with the reference the scenario itself computes.
	sc := NewScenario("namd1", "povray1", 1)
	sc.HorizonPeriods = 20
	res, err := sc.Run(Unmanaged())
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.HPAloneIPC - ipc; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("facade alone IPC %.6f != scenario reference %.6f", ipc, res.HPAloneIPC)
	}
}

func TestSLOMonitorFacade(t *testing.T) {
	prof := mustApp(t, "omnetpp1")
	ref, err := AloneIPC(Machine{}, prof)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewSLOMonitor(ref, 0.90, 10, 0.8)
	sc := NewScenario("omnetpp1", "gcc_base1", 9)
	sc.HorizonPeriods = 30
	sc.OnPeriod = func(_ int, p Period) {
		mon.Observe(p.ClosMeanIPC(0))
	}
	if _, err := sc.Run(NewDICER()); err != nil {
		t.Fatal(err)
	}
	if c := mon.Conformance(); c < 0 || c > 1 {
		t.Fatalf("conformance %g out of range", c)
	}
}

func TestFleetFacade(t *testing.T) {
	var buf bytes.Buffer
	cl, err := NewFleet(FleetConfig{
		Nodes:          2,
		HorizonPeriods: 8,
		Arrivals:       FleetArrivals{Seed: 3, RatePerPeriod: 1, MeanDurationPeriods: 4},
		Trace:          &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Periods != 8 || res.Nodes != 2 {
		t.Fatalf("unexpected result %+v", res)
	}
	h, recs, err := ReadClusterTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Nodes != 2 || len(recs) != 8 {
		t.Fatalf("trace header %+v with %d records", h, len(recs))
	}

	names := FleetSchedulerNames()
	if len(names) == 0 {
		t.Fatal("no schedulers")
	}
	for _, name := range names {
		if _, err := FleetSchedulerByName(name, 1); err != nil {
			t.Errorf("scheduler %q: %v", name, err)
		}
	}
	if _, err := FleetSchedulerByName("nope", 1); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if _, err := NodeChaosScheduleByName("node-storm", 1, 2, 8); err != nil {
		t.Errorf("node-storm schedule: %v", err)
	}

	exp := NewFleetExporter()
	exp.Observe(recs[0].Sample())
	var out bytes.Buffer
	if _, err := exp.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("dicer_fleet_efu")) {
		t.Fatalf("exporter output missing fleet gauge:\n%s", out.String())
	}
}
