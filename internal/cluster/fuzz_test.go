package cluster_test

import (
	"math/rand"
	"testing"

	"dicer/internal/cluster"
)

// FuzzClusterAssign is the native-fuzzing variant of the property suite:
// a fuzzer-chosen configuration and a seeded random app population run
// through the clustered planner, and every structural invariant must
// hold — group count within budget, each app assigned exactly once,
// ways floors respected with the HP budget fully spent, stacked masks
// contiguous and disjoint, and the predicted penalty monotone in the
// CLOS budget. `go test` exercises the seed corpus (testdata/fuzz); CI
// runs a short -fuzztime exploration on top.
func FuzzClusterAssign(f *testing.F) {
	f.Add(uint8(20), uint8(16), uint8(1), uint8(1), uint8(4), int64(1))
	f.Add(uint8(11), uint8(4), uint8(2), uint8(2), uint8(20), int64(42))
	f.Add(uint8(4), uint8(2), uint8(1), uint8(1), uint8(1), int64(-7))
	f.Add(uint8(32), uint8(16), uint8(1), uint8(3), uint8(24), int64(99))
	f.Fuzz(func(t *testing.T, waysRaw, budgetRaw, minGroupRaw, minBERaw, mRaw uint8, seed int64) {
		cfg := cluster.Config{
			TotalWays:    4 + int(waysRaw)%29, // 4..32
			WayBytes:     1.25 * mib,
			CLOSBudget:   2 + int(budgetRaw)%15, // 2..16
			MinGroupWays: 1 + int(minGroupRaw)%2,
			MinBEWays:    1 + int(minBERaw)%3,
		}
		if cfg.TotalWays-cfg.MinBEWays < cfg.MinGroupWays {
			cfg.MinGroupWays, cfg.MinBEWays = 1, 1
		}
		m := 1 + int(mRaw)%24
		rng := rand.New(rand.NewSource(seed))
		specs := randSpecs(rng, m)

		plan, err := cluster.Assign(cfg, specs)
		if err != nil {
			t.Fatalf("assign: %v", err)
		}
		checkPlan(t, cfg, m, plan)

		single, err := cluster.Single(cfg, specs)
		if err != nil {
			t.Fatalf("single: %v", err)
		}
		checkPlan(t, cfg, m, single)
		if single.NumGroups() != 1 {
			t.Fatalf("single plan has %d groups", single.NumGroups())
		}

		// Per-app is allowed to refuse (budget too small), never to
		// return a malformed plan.
		if perApp, err := cluster.PerApp(cfg, specs); err == nil {
			checkPlan(t, cfg, m, perApp)
			if perApp.NumGroups() != m {
				t.Fatalf("per-app plan has %d groups for %d apps", perApp.NumGroups(), m)
			}
		}

		// One extra CLOS id never worsens the predicted penalty.
		wider := cfg
		wider.CLOSBudget++
		widerPlan, err := cluster.Assign(wider, specs)
		if err != nil {
			t.Fatalf("assign (budget+1): %v", err)
		}
		if widerPlan.PredictedMaxPenalty > plan.PredictedMaxPenalty+1e-9 {
			t.Fatalf("budget %d predicts penalty %g > budget %d's %g",
				wider.CLOSBudget, widerPlan.PredictedMaxPenalty,
				cfg.CLOSBudget, plan.PredictedMaxPenalty)
		}
	})
}
