// Package cluster implements LFOC-style cache clustering for multi-HP
// consolidation: when M latency-critical applications share a box whose
// CAT hardware exposes only ~16 CLOS ids, apps must share CLOS groups.
// LFOC's insight is that grouping applications of *similar cache
// sensitivity* is fair — a thrashing streamer packed with a cache-
// sensitive app starves it, while two apps of similar sensitivity share
// a partition with bounded mutual damage.
//
// The policy here scores each HP app's sensitivity from its analytic
// miss-ratio curve (internal/mrc), orders apps on that one-dimensional
// score, and splits the ordering divisively at the largest score gaps.
// The split sequence never consults the CLOS budget — only its length
// does — and the returned plan is the best (lowest predicted max
// per-app penalty, coarsest on ties) among the prefixes the budget
// allows. A budget of b+1 therefore evaluates a superset of the plans
// budget b does, which gives the monotonicity the property suite pins:
// adding CLOS budget never increases the predicted max per-app
// slowdown.
//
// Com-CAS-style phase hints ride along: an AppSpec may carry an optional
// upcoming-phase miss curve (Hint); when present it replaces the current
// curve in scoring, so a re-cluster planned against hints regroups the
// box *ahead* of the phase change instead of reacting after it.
package cluster

import (
	"fmt"
	"sort"

	"dicer/internal/cache"
	"dicer/internal/mrc"
)

// AppSpec describes one HP application to the clustering policy.
type AppSpec struct {
	Name string
	Core int     // core hosting the app (used by the controller to move CLOS)
	SLO  float64 // minimum fraction of alone-IPC the app must retain

	// Curve is the miss-ratio curve of the app's current phase.
	Curve mrc.Curve
	// Hint, when non-nil, is the miss-ratio curve of the app's upcoming
	// phase (Com-CAS-style compiler/profile guidance). Scoring uses it
	// in place of Curve so the plan anticipates the phase change.
	Hint *mrc.Curve
	// APKI (accesses per kilo-instruction) weights the app's insertion
	// pressure in the in-group contention model; zero means unit weight.
	APKI float64
}

// curve returns the curve scoring should use: the hint when present.
func (a *AppSpec) curve() *mrc.Curve {
	if a.Hint != nil {
		return a.Hint
	}
	return &a.Curve
}

// Config bounds a clustering run. All fields are required except
// KneeEps, which defaults to DefaultKneeEps when zero.
type Config struct {
	TotalWays  int     // LLC associativity
	WayBytes   float64 // bytes per way
	CLOSBudget int     // CLOS ids available in total (HP groups + 1 BE group)

	MinGroupWays int // CAT floor per HP group mask
	MinBEWays    int // ways reserved for the BE partition

	// KneeEps is the marginal miss-ratio gain below which additional
	// ways stop counting toward an app's demand (the MRC knee).
	KneeEps float64
}

// DefaultKneeEps is the demand-knee cutoff used when Config.KneeEps is 0.
const DefaultKneeEps = 0.02

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TotalWays < 2 {
		return fmt.Errorf("cluster: total ways %d < 2", c.TotalWays)
	}
	if c.WayBytes <= 0 {
		return fmt.Errorf("cluster: non-positive way bytes %g", c.WayBytes)
	}
	if c.CLOSBudget < 2 {
		return fmt.Errorf("cluster: CLOS budget %d < 2 (need >=1 HP group + BE)", c.CLOSBudget)
	}
	if c.MinGroupWays < 1 || c.MinBEWays < 1 {
		return fmt.Errorf("cluster: minimum ways must be >= 1 (group %d, be %d)", c.MinGroupWays, c.MinBEWays)
	}
	if c.TotalWays-c.MinBEWays < c.MinGroupWays {
		return fmt.Errorf("cluster: %d ways cannot fit one group of %d plus %d BE ways",
			c.TotalWays, c.MinGroupWays, c.MinBEWays)
	}
	return nil
}

func (c Config) kneeEps() float64 {
	if c.KneeEps > 0 {
		return c.KneeEps
	}
	return DefaultKneeEps
}

// Group is one CLOS group of the plan: the member apps (indices into the
// spec slice, ascending) and the ways budget its controller may use.
type Group struct {
	Apps  []int
	Ways  int
	Score float64 // mean member sensitivity, for reporting
}

// Plan is a complete grouping decision.
type Plan struct {
	Groups []Group
	// PredictedMaxPenalty is the planner's own estimate of the worst
	// per-app miss-ratio penalty under the plan (share vs full cache).
	// It is the quantity the budget-monotonicity property is stated
	// over; the simulator judges the real slowdown.
	PredictedMaxPenalty float64
}

// NumGroups returns the number of HP CLOS groups in the plan.
func (p Plan) NumGroups() int { return len(p.Groups) }

// GroupOf returns the index of the group containing app i, or -1.
func (p Plan) GroupOf(app int) int {
	for gi, g := range p.Groups {
		for _, a := range g.Apps {
			if a == app {
				return gi
			}
		}
	}
	return -1
}

// Sensitivity scores one curve: the miss-ratio reduction the app gains
// from growing its partition from the CAT floor to the whole LLC. Steep
// curves (cache-friendly apps) score high; flat curves (streamers and
// compute-bound apps) score near zero.
func Sensitivity(cfg Config, c *mrc.Curve) float64 {
	floor := float64(cfg.MinGroupWays) * cfg.WayBytes
	full := float64(cfg.TotalWays) * cfg.WayBytes
	s := c.MissRatio(floor) - c.MissRatio(full)
	if s < 0 {
		s = 0
	}
	return s
}

// DemandWays returns the smallest way count at which the curve is within
// KneeEps of its full-cache miss ratio — the app's working-set knee,
// clamped to at least MinGroupWays.
func DemandWays(cfg Config, c *mrc.Curve) int {
	full := c.MissRatio(float64(cfg.TotalWays) * cfg.WayBytes)
	eps := cfg.kneeEps()
	for w := cfg.MinGroupWays; w < cfg.TotalWays; w++ {
		if c.MissRatio(float64(w)*cfg.WayBytes)-full <= eps {
			return w
		}
	}
	return cfg.TotalWays
}

// scored is the per-app planning view.
type scored struct {
	app    int
	sens   float64
	demand int
	apki   float64
	curve  *mrc.Curve
}

// Assign computes the clustered plan: order apps by cache sensitivity,
// split divisively at the largest sensitivity gaps up to the CLOS
// budget, keep the prefix plan with the lowest predicted max penalty
// (coarsest on ties), and distribute the HP ways budget over groups by
// demand with largest-remainder rounding. The result is deterministic:
// all orderings break ties on ascending app index.
func Assign(cfg Config, specs []AppSpec) (Plan, error) {
	return assign(cfg, specs, 0)
}

// PerApp returns the naive one-CLOS-per-app plan (the baseline clustering
// is judged against). It fails when the apps outnumber the CLOS budget
// or the ways cannot give every app its CAT floor.
func PerApp(cfg Config, specs []AppSpec) (Plan, error) {
	if err := prepare(cfg, specs); err != nil {
		return Plan{}, err
	}
	m := len(specs)
	if m > cfg.CLOSBudget-1 {
		return Plan{}, fmt.Errorf("cluster: %d apps exceed CLOS budget %d (per-app needs %d)",
			m, cfg.CLOSBudget, m+1)
	}
	if m*cfg.MinGroupWays > cfg.TotalWays-cfg.MinBEWays {
		return Plan{}, fmt.Errorf("cluster: %d apps x %d min ways exceed %d HP ways",
			m, cfg.MinGroupWays, cfg.TotalWays-cfg.MinBEWays)
	}
	sc := score(cfg, specs)
	groups := make([][]scored, m)
	for i := range sc {
		groups[sc[i].app] = sc[i : i+1]
	}
	return finalize(cfg, groups), nil
}

// Single returns the degenerate one-group plan: every HP app shares one
// CLOS (the legacy single-HP topology stretched over M apps).
func Single(cfg Config, specs []AppSpec) (Plan, error) {
	return assign(cfg, specs, 1)
}

// PerAppSpill is the naive baseline a practitioner falls back to when
// the apps can outnumber the CLOS ids: the first apps (in arrival
// order, consulting no curve information) each get their own CLOS,
// everyone who no longer fits spills into the last HP group, and the
// HP ways budget is dealt out round-robin. With enough CLOS ids and a
// way count divisible by the groups it degenerates to PerApp with even
// ways; unlike PerApp it never refuses a feasible configuration.
func PerAppSpill(cfg Config, specs []AppSpec) (Plan, error) {
	if err := prepare(cfg, specs); err != nil {
		return Plan{}, err
	}
	budget := cfg.TotalWays - cfg.MinBEWays
	k := cfg.CLOSBudget - 1
	if byWays := budget / cfg.MinGroupWays; byWays < k {
		k = byWays
	}
	if m := len(specs); m < k {
		k = m
	}
	sc := score(cfg, specs)
	groups := make([][]scored, k)
	for i := range sc {
		gi := i
		if gi >= k {
			gi = k - 1
		}
		groups[gi] = append(groups[gi], sc[i])
	}
	ways := make([]int, k)
	for w := 0; w < budget; w++ {
		ways[w%k]++
	}
	return finalizeWays(cfg, groups, ways), nil
}

// assign builds the clustered plan; maxGroups 0 means "up to budget".
func assign(cfg Config, specs []AppSpec, maxGroups int) (Plan, error) {
	if err := prepare(cfg, specs); err != nil {
		return Plan{}, err
	}
	limit := cfg.CLOSBudget - 1
	if byWays := (cfg.TotalWays - cfg.MinBEWays) / cfg.MinGroupWays; byWays < limit {
		limit = byWays
	}
	if len(specs) < limit {
		limit = len(specs)
	}
	if maxGroups > 0 && maxGroups < limit {
		limit = maxGroups
	}

	sc := score(cfg, specs)
	// Order by descending sensitivity, app index ascending on ties: the
	// 1-D axis the divisive splits cut.
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].sens != sc[j].sens {
			return sc[i].sens > sc[j].sens
		}
		return sc[i].app < sc[j].app
	})

	// Walk the full divisive sequence (it never consults the budget —
	// only its length does) and keep the best plan seen: a locally bad
	// split may unlock a better finer plan, so rejection must not stop
	// the walk.
	groups := [][]scored{sc}
	best := finalize(cfg, groups)
	for len(groups) < limit {
		gi, pos := widestGap(groups)
		if gi < 0 {
			break // every group is a single app
		}
		groups = splitAt(groups, gi, pos)
		cand := finalize(cfg, groups)
		if cand.PredictedMaxPenalty <= best.PredictedMaxPenalty+1e-12 {
			best = cand
		}
	}
	return best, nil
}

// prepare validates inputs common to all planners.
func prepare(cfg Config, specs []AppSpec) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(specs) == 0 {
		return fmt.Errorf("cluster: no HP apps to assign")
	}
	for i := range specs {
		if specs[i].Core < 0 {
			return fmt.Errorf("cluster: app %d (%s) has negative core", i, specs[i].Name)
		}
	}
	return nil
}

// score computes the planning view for every app, in app order.
func score(cfg Config, specs []AppSpec) []scored {
	sc := make([]scored, len(specs))
	for i := range specs {
		c := specs[i].curve()
		apki := specs[i].APKI
		if apki <= 0 {
			apki = 1
		}
		sc[i] = scored{app: i, sens: Sensitivity(cfg, c), demand: DemandWays(cfg, c), apki: apki, curve: c}
	}
	return sc
}

// widestGap finds the largest sensitivity gap between adjacent members
// of any group (groups hold descending-sensitivity runs). Ties break on
// lowest group index, then lowest position. Returns (-1, -1) when no
// group has an interior gap > 0 and no group with >1 member exists.
func widestGap(groups [][]scored) (int, int) {
	bestGi, bestPos := -1, -1
	bestGap := -1.0
	for gi, g := range groups {
		for pos := 0; pos+1 < len(g); pos++ {
			gap := g[pos].sens - g[pos+1].sens
			if gap > bestGap {
				bestGap = gap
				bestGi, bestPos = gi, pos
			}
		}
	}
	return bestGi, bestPos
}

// splitAt returns a copy of groups with group gi split after position
// pos. Group order is preserved; the two halves replace the original in
// place, keeping the plan's group numbering stable and deterministic.
func splitAt(groups [][]scored, gi, pos int) [][]scored {
	out := make([][]scored, 0, len(groups)+1)
	for i, g := range groups {
		if i != gi {
			out = append(out, g)
			continue
		}
		out = append(out, g[:pos+1], g[pos+1:])
	}
	return out
}

// finalize turns a grouping into a Plan: distribute ways, compute the
// predicted penalty, and express groups in ascending-app-index form.
func finalize(cfg Config, groups [][]scored) Plan {
	return finalizeWays(cfg, groups, distributeWays(cfg, groups))
}

// finalizeWays is finalize with the way distribution already decided
// (the naive baselines bring their own).
func finalizeWays(cfg Config, groups [][]scored, ways []int) Plan {
	k := len(groups)
	plan := Plan{Groups: make([]Group, k)}
	for gi, g := range groups {
		apps := make([]int, len(g))
		var sum float64
		for i, s := range g {
			apps[i] = s.app
			sum += s.sens
		}
		sort.Ints(apps)
		plan.Groups[gi] = Group{Apps: apps, Ways: ways[gi], Score: sum / float64(len(g))}
	}
	plan.PredictedMaxPenalty = predictMaxPenalty(cfg, groups, ways)
	return plan
}

// distributeWays shares the HP ways budget (TotalWays - MinBEWays) over
// groups by greedy marginal gain against the same contention model the
// planner optimises: every group gets the CAT floor, then each further
// way goes to the group whose predicted penalty drops the most for one
// more way (ties to the group holding fewer ways, then the lower
// index). Flat groups stop gaining once they stop bending, so scarcity
// flows ways to the curves that use them. The budget is spent fully —
// like CT, the plan starts with BE at its floor and lets the per-group
// controllers donate ways back.
func distributeWays(cfg Config, groups [][]scored) []int {
	k := len(groups)
	budget := cfg.TotalWays - cfg.MinBEWays
	ways := make([]int, k)
	rest := budget
	for gi := range groups {
		ways[gi] = cfg.MinGroupWays
		rest -= cfg.MinGroupWays
	}
	if rest <= 0 {
		return ways
	}
	pen := make([]float64, k)
	gain := make([]float64, k)
	for gi, g := range groups {
		pen[gi] = groupPenalty(cfg, g, ways[gi])
		gain[gi] = pen[gi] - groupPenalty(cfg, g, ways[gi]+1)
	}
	for ; rest > 0; rest-- {
		best := 0
		for gi := 1; gi < k; gi++ {
			if gain[gi] > gain[best] ||
				(gain[gi] == gain[best] && ways[gi] < ways[best]) {
				best = gi
			}
		}
		ways[best]++
		pen[best] -= gain[best]
		gain[best] = pen[best] - groupPenalty(cfg, groups[best], ways[best]+1)
	}
	return ways
}

// penaltyIters bounds the in-group share fixed point; pressureFloor
// keeps an app that currently misses nothing from losing its entire
// share (cached lines still occupy ways), matching the simulator's
// behaviour of never evicting a sharer completely. trafficWeight folds
// the plan's APKI-weighted excess miss traffic into the objective: a
// squeezed sensitive app does not only hurt itself, its extra misses
// load the shared memory link and inflate everyone's latency, which the
// per-app capacity penalty alone cannot see.
const (
	penaltyIters  = 8
	pressureFloor = 0.01
	trafficWeight = 0.04
)

// predictMaxPenalty scores a plan, mirroring the simulator's physics:
// members of one CLOS group contend for the group's bytes in proportion
// to their insertion pressure (access rate × miss ratio at the
// resulting share), resolved by a damped fixed point. The plan's score
// is the worst member's capacity penalty plus the trafficWeight-scaled
// sum of APKI-weighted excess misses across the whole box (the memory
// link is shared by every group). This is what makes splitting worth
// anything — a flat-curve streamer exerts high pressure at any share,
// so packing it with a cache-sensitive app starves the latter, and the
// predictor has to see that coming for the divisive splits to be
// accepted.
func predictMaxPenalty(cfg Config, groups [][]scored, ways []int) float64 {
	var worst, traffic float64
	for gi, g := range groups {
		pen, tr := groupEval(cfg, g, ways[gi])
		if pen > worst {
			worst = pen
		}
		traffic += tr
	}
	return worst + trafficWeight*traffic
}

// groupPenalty is the capacity-only view of groupEval, the quantity the
// way distribution water-fills on.
func groupPenalty(cfg Config, g []scored, ways int) float64 {
	pen, _ := groupEval(cfg, g, ways)
	return pen
}

// groupEval models one group holding `ways` ways: the damped pressure
// fixed point divides the group bytes, and the result is the worst
// member's extra miss ratio versus owning the whole LLC, plus the
// group's APKI-weighted excess miss traffic.
func groupEval(cfg Config, g []scored, ways int) (worst, traffic float64) {
	full := float64(cfg.TotalWays) * cfg.WayBytes
	groupBytes := float64(ways) * cfg.WayBytes
	var shares, press [64]float64
	n := len(g)
	if n > len(shares) {
		n = len(shares) // degenerate over-wide group: truncate the view
	}
	for i := 0; i < n; i++ {
		shares[i] = groupBytes / float64(n)
	}
	for iter := 0; iter < penaltyIters; iter++ {
		var sum float64
		for i := 0; i < n; i++ {
			p := g[i].apki * (pressureFloor + g[i].curve.MissRatio(shares[i]))
			press[i] = p
			sum += p
		}
		if sum <= 0 {
			break // nobody exerts pressure: equal shares stand
		}
		for i := 0; i < n; i++ {
			shares[i] = 0.5*shares[i] + 0.5*groupBytes*press[i]/sum
		}
	}
	for i := 0; i < n; i++ {
		pen := g[i].curve.MissRatio(shares[i]) - g[i].curve.MissRatio(full)
		if pen > worst {
			worst = pen
		}
		if pen > 0 {
			traffic += g[i].apki * pen
		}
	}
	return worst, traffic
}

// StackMasks lays out contiguous, disjoint way masks for a multi-group
// plan: group 0 occupies the topmost ways, each further group stacks
// below it, and the BE partition takes the low-order remainder — the
// multi-group generalisation of policy.HPMask/BEMask (at one group it
// reduces to them exactly). ways holds each group's current allocation;
// the returned slice has len(ways)+1 masks with the BE mask last.
func StackMasks(totalWays int, ways []int) ([]uint64, error) {
	sum := 0
	for gi, w := range ways {
		if w < 1 {
			return nil, fmt.Errorf("cluster: group %d has %d ways < 1", gi, w)
		}
		sum += w
	}
	if sum >= totalWays {
		return nil, fmt.Errorf("cluster: %d group ways leave no BE ways of %d total", sum, totalWays)
	}
	masks := make([]uint64, len(ways)+1)
	top := totalWays
	for gi, w := range ways {
		masks[gi] = cache.ContiguousMask(top-w, w)
		top -= w
	}
	masks[len(ways)] = cache.ContiguousMask(0, top)
	return masks, nil
}
