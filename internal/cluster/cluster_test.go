package cluster_test

import (
	"math/bits"
	"math/rand"
	"reflect"
	"testing"

	"dicer/internal/cluster"
	"dicer/internal/mrc"
)

const mib = 1 << 20

// randCurve draws a random working-set mixture: a streaming fraction and
// up to three components with footprints spanning tiny-to-LLC-busting.
func randCurve(rng *rand.Rand) mrc.Curve {
	stream := rng.Float64() * 0.4
	budget := 1 - stream
	n := 1 + rng.Intn(3)
	comps := make([]mrc.Component, 0, n)
	for i := 0; i < n; i++ {
		frac := budget * (0.2 + 0.6*rng.Float64()) / float64(n)
		comps = append(comps, mrc.Component{
			Bytes: (0.25 + rng.Float64()*63.75) * mib,
			Frac:  frac,
		})
	}
	return mrc.MustCurve(stream, comps...)
}

// randSpecs draws m random HP apps; a few carry phase hints.
func randSpecs(rng *rand.Rand, m int) []cluster.AppSpec {
	specs := make([]cluster.AppSpec, m)
	for i := range specs {
		specs[i] = cluster.AppSpec{
			Name:  "app",
			Core:  i,
			SLO:   0.8 + rng.Float64()*0.15,
			Curve: randCurve(rng),
			APKI:  rng.Float64() * 20,
		}
		if rng.Intn(4) == 0 {
			h := randCurve(rng)
			specs[i].Hint = &h
		}
	}
	return specs
}

// randConfig draws a valid clustering config.
func randConfig(rng *rand.Rand) cluster.Config {
	cfg := cluster.Config{
		TotalWays:    4 + rng.Intn(29), // 4..32
		WayBytes:     (0.5 + rng.Float64()*1.5) * mib,
		CLOSBudget:   2 + rng.Intn(15), // 2..16
		MinGroupWays: 1 + rng.Intn(2),
		MinBEWays:    1 + rng.Intn(3),
	}
	if cfg.TotalWays-cfg.MinBEWays < cfg.MinGroupWays {
		cfg.MinGroupWays, cfg.MinBEWays = 1, 1
	}
	return cfg
}

// contiguous reports whether mask is one unbroken run of set bits.
func contiguous(mask uint64) bool {
	if mask == 0 {
		return false
	}
	run := mask >> bits.TrailingZeros64(mask)
	return run&(run+1) == 0
}

// checkPlan asserts every structural invariant the clustering policy
// promises: group count within the CLOS budget, every app assigned
// exactly once, per-group ways at least the CAT floor with the HP budget
// fully spent, and stacked masks contiguous, disjoint and exhaustive
// with the BE partition keeping its reserve.
func checkPlan(tb testing.TB, cfg cluster.Config, m int, plan cluster.Plan) {
	tb.Helper()
	k := plan.NumGroups()
	if k < 1 {
		tb.Fatalf("plan has no groups")
	}
	if k > cfg.CLOSBudget-1 {
		tb.Fatalf("plan uses %d groups, CLOS budget allows %d", k, cfg.CLOSBudget-1)
	}
	if k > m {
		tb.Fatalf("plan uses %d groups for %d apps", k, m)
	}

	seen := make([]int, m)
	waysSum := 0
	ways := make([]int, k)
	for gi, g := range plan.Groups {
		if len(g.Apps) == 0 {
			tb.Fatalf("group %d is empty", gi)
		}
		for i, a := range g.Apps {
			if a < 0 || a >= m {
				tb.Fatalf("group %d contains out-of-range app %d", gi, a)
			}
			seen[a]++
			if i > 0 && g.Apps[i-1] >= a {
				tb.Fatalf("group %d apps not ascending: %v", gi, g.Apps)
			}
		}
		if g.Ways < cfg.MinGroupWays {
			tb.Fatalf("group %d has %d ways, floor is %d", gi, g.Ways, cfg.MinGroupWays)
		}
		waysSum += g.Ways
		ways[gi] = g.Ways
	}
	for a, n := range seen {
		if n != 1 {
			tb.Fatalf("app %d assigned %d times", a, n)
		}
	}
	if budget := cfg.TotalWays - cfg.MinBEWays; waysSum != budget {
		tb.Fatalf("plan spends %d HP ways, budget is %d", waysSum, budget)
	}
	if plan.PredictedMaxPenalty < 0 {
		tb.Fatalf("negative predicted penalty %g", plan.PredictedMaxPenalty)
	}

	masks, err := cluster.StackMasks(cfg.TotalWays, ways)
	if err != nil {
		tb.Fatalf("StackMasks: %v", err)
	}
	if len(masks) != k+1 {
		tb.Fatalf("StackMasks returned %d masks for %d groups", len(masks), k)
	}
	var union uint64
	for i, mask := range masks {
		if !contiguous(mask) {
			tb.Fatalf("mask %d (%x) not contiguous", i, mask)
		}
		if union&mask != 0 {
			tb.Fatalf("mask %d (%x) overlaps earlier masks (%x)", i, mask, union)
		}
		union |= mask
		want := cfg.MinBEWays
		if i < k {
			want = ways[i]
		}
		if got := bits.OnesCount64(mask); got != want {
			tb.Fatalf("mask %d is %d ways wide, want %d", i, got, want)
		}
	}
	if full := uint64(1)<<cfg.TotalWays - 1; union != full {
		tb.Fatalf("masks cover %x, want %x", union, full)
	}
}

// TestAssignProperties drives the clustered planner through a seeded
// matrix of 2000 random configurations and app populations, checking
// every structural invariant and that planning is deterministic.
func TestAssignProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for draw := 0; draw < 2000; draw++ {
		cfg := randConfig(rng)
		m := 1 + rng.Intn(20)
		specs := randSpecs(rng, m)

		plan, err := cluster.Assign(cfg, specs)
		if err != nil {
			t.Fatalf("draw %d: %v", draw, err)
		}
		checkPlan(t, cfg, m, plan)

		again, err := cluster.Assign(cfg, specs)
		if err != nil {
			t.Fatalf("draw %d (repeat): %v", draw, err)
		}
		if !reflect.DeepEqual(plan, again) {
			t.Fatalf("draw %d: planning is not deterministic:\n%+v\n%+v", draw, plan, again)
		}
	}
}

// TestAssignMonotonicBudget pins the LFOC planner's key guarantee:
// adding CLOS budget never increases the predicted max per-app penalty.
// The split sequence never consults the budget and only accepts splits
// that do not worsen the penalty, so plan(b+1) is plan(b) plus at most
// one accepted split. Seeded matrix, 2000 draws.
func TestAssignMonotonicBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for draw := 0; draw < 2000; draw++ {
		cfg := randConfig(rng)
		m := 1 + rng.Intn(20)
		specs := randSpecs(rng, m)

		prev := -1.0
		prevK := 0
		for budget := 2; budget <= 12; budget++ {
			cfg.CLOSBudget = budget
			plan, err := cluster.Assign(cfg, specs)
			if err != nil {
				t.Fatalf("draw %d budget %d: %v", draw, budget, err)
			}
			if prev >= 0 && plan.PredictedMaxPenalty > prev+1e-9 {
				t.Fatalf("draw %d: budget %d predicts penalty %g > budget %d's %g",
					draw, budget, plan.PredictedMaxPenalty, budget-1, prev)
			}
			if prev >= 0 && plan.NumGroups() < prevK {
				t.Fatalf("draw %d: budget %d uses %d groups, budget %d used %d",
					draw, budget, plan.NumGroups(), budget-1, prevK)
			}
			prev = plan.PredictedMaxPenalty
			prevK = plan.NumGroups()
		}
	}
}

// TestPerApp pins the naive baseline: one CLOS per app when it fits,
// explicit errors when the budget or the ways cannot host it.
func TestPerApp(t *testing.T) {
	cfg := cluster.Config{
		TotalWays: 20, WayBytes: 1.25 * mib, CLOSBudget: 8,
		MinGroupWays: 1, MinBEWays: 1,
	}
	rng := rand.New(rand.NewSource(3))
	specs := randSpecs(rng, 5)

	plan, err := cluster.PerApp(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, cfg, 5, plan)
	if plan.NumGroups() != 5 {
		t.Fatalf("per-app plan has %d groups, want 5", plan.NumGroups())
	}
	for gi, g := range plan.Groups {
		if len(g.Apps) != 1 || g.Apps[0] != gi {
			t.Fatalf("per-app group %d holds %v, want [%d]", gi, g.Apps, gi)
		}
	}

	if _, err := cluster.PerApp(cfg, randSpecs(rng, 9)); err == nil {
		t.Fatal("per-app accepted 9 apps under an 8-CLOS budget")
	}
	tight := cfg
	tight.TotalWays = 6
	tight.CLOSBudget = 16
	tight.MinGroupWays = 2
	if _, err := cluster.PerApp(tight, randSpecs(rng, 4)); err == nil {
		t.Fatal("per-app accepted 4x2 min ways in a 5-way HP budget")
	}
}

// TestSingle pins the degenerate plan every M=1 path rides on.
func TestSingle(t *testing.T) {
	cfg := cluster.Config{
		TotalWays: 20, WayBytes: 1.25 * mib, CLOSBudget: 16,
		MinGroupWays: 1, MinBEWays: 1,
	}
	rng := rand.New(rand.NewSource(4))
	for _, m := range []int{1, 2, 7, 20} {
		plan, err := cluster.Single(cfg, randSpecs(rng, m))
		if err != nil {
			t.Fatal(err)
		}
		checkPlan(t, cfg, m, plan)
		if plan.NumGroups() != 1 {
			t.Fatalf("single plan for m=%d has %d groups", m, plan.NumGroups())
		}
		if plan.Groups[0].Ways != cfg.TotalWays-cfg.MinBEWays {
			t.Fatalf("single plan holds %d ways, want the full HP budget %d",
				plan.Groups[0].Ways, cfg.TotalWays-cfg.MinBEWays)
		}
	}
}

// TestHintRegrouping pins the Com-CAS hint path: a phase hint replaces
// the current curve in scoring, so an app whose upcoming phase is cache-
// hungry is planned as sensitive even while its current phase streams.
func TestHintRegrouping(t *testing.T) {
	cfg := cluster.Config{
		TotalWays: 20, WayBytes: 1.25 * mib, CLOSBudget: 16,
		MinGroupWays: 1, MinBEWays: 1,
	}
	flat := mrc.MustCurve(0.8)
	steep := mrc.MustCurve(0.05, mrc.Component{Bytes: 8 * mib, Frac: 0.9})

	noHint := cluster.AppSpec{Name: "a", Core: 0, Curve: flat}
	hinted := noHint
	hinted.Hint = &steep

	if s := cluster.Sensitivity(cfg, &steep); cluster.Sensitivity(cfg, &flat) >= s {
		t.Fatal("test curves do not separate: flat should score below steep")
	}

	base, err := cluster.Assign(cfg, []cluster.AppSpec{noHint, {Name: "b", Core: 1, Curve: steep}})
	if err != nil {
		t.Fatal(err)
	}
	withHint, err := cluster.Assign(cfg, []cluster.AppSpec{hinted, {Name: "b", Core: 1, Curve: steep}})
	if err != nil {
		t.Fatal(err)
	}
	appWays := func(p cluster.Plan, app int) int { return p.Groups[p.GroupOf(app)].Ways }
	// Unhinted, the streaming app's demand is the floor: its partition is
	// starved relative to the cache-hungry app's.
	if appWays(base, 0) >= appWays(withHint, 0) {
		t.Fatalf("hint did not grow the streamer's allocation: base %d ways, hinted %d",
			appWays(base, 0), appWays(withHint, 0))
	}
	// Hinted, both apps present the same upcoming-phase demand, so their
	// allocations are within one rounding way of each other.
	if d := appWays(withHint, 0) - appWays(withHint, 1); d < -1 || d > 1 {
		t.Fatalf("hinted equal-demand apps got ways %d vs %d",
			appWays(withHint, 0), appWays(withHint, 1))
	}
}

// TestStackMasksErrors pins the explicit failure modes.
func TestStackMasksErrors(t *testing.T) {
	if _, err := cluster.StackMasks(20, []int{10, 0}); err == nil {
		t.Fatal("StackMasks accepted a zero-way group")
	}
	if _, err := cluster.StackMasks(20, []int{12, 8}); err == nil {
		t.Fatal("StackMasks accepted group ways that leave no BE ways")
	}
}

// TestConfigValidate pins the config error surface.
func TestConfigValidate(t *testing.T) {
	good := cluster.Config{
		TotalWays: 20, WayBytes: 1.25 * mib, CLOSBudget: 16,
		MinGroupWays: 1, MinBEWays: 1,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*cluster.Config){
		func(c *cluster.Config) { c.TotalWays = 1 },
		func(c *cluster.Config) { c.WayBytes = 0 },
		func(c *cluster.Config) { c.CLOSBudget = 1 },
		func(c *cluster.Config) { c.MinGroupWays = 0 },
		func(c *cluster.Config) { c.MinBEWays = 0 },
		func(c *cluster.Config) { c.TotalWays = 4; c.MinBEWays = 3; c.MinGroupWays = 2 },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config accepted: %+v", i, cfg)
		}
	}
}
