// Package invariant machine-checks the safety properties the DICER
// controller must uphold no matter what the monitoring substrate reports
// — the properties the hand-written robustness tests in internal/core
// probe pointwise, promoted to a checker that runs after every monitoring
// period. It is used three ways:
//
//   - as a test helper: the chaos soak harness calls Check each period
//     and fails the run on the first violation;
//   - as a runtime guard behind a config flag: Guard wraps any policy
//     and turns a violation into an error from Observe, so a production
//     deployment halts instead of installing an unsafe allocation;
//   - from the CLI: dicer-sim -guard.
//
// Checked invariants:
//
//   - MaskLegal: every installed CBM is non-zero, contiguous and within
//     the machine's way count (the CAT hardware rules).
//   - HPBounds: the controller's enforced HP way count stays within
//     [MinHPWays, Ways-MinBEWays].
//   - StateValid: the sampling state machine is in a known state.
//   - PeriodMonotone: the controller's period counter advances by
//     exactly one per observation (monotone bookkeeping).
//   - Consistency (quiescent only): the installed HP/BE masks equal the
//     controller's intended split — disjoint and covering the cache.
//     Under actuation faults (rejected or delayed writes) the installed
//     masks lag the intent, so this is asserted only when the caller
//     reports no writes in flight.
package invariant

import (
	"errors"
	"fmt"
	"strings"

	"dicer/internal/cache"
	"dicer/internal/core"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

// Violation is one broken invariant.
type Violation struct {
	Name   string // invariant identifier, e.g. "MaskLegal"
	Detail string
}

func (v Violation) String() string { return v.Name + ": " + v.Detail }

// Error aggregates the violations found by one Check call.
type Error struct {
	Period     int // controller period at the time of the check
	Violations []Violation
}

// Error implements the error interface.
func (e *Error) Error() string {
	parts := make([]string, len(e.Violations))
	for i, v := range e.Violations {
		parts[i] = v.String()
	}
	return fmt.Sprintf("invariant: period %d: %s", e.Period, strings.Join(parts, "; "))
}

// Checker validates controller safety properties. The zero value is not
// usable; construct with NewChecker. A Checker is stateful (it tracks the
// period counter for the monotone-bookkeeping check) and belongs to one
// controller run.
type Checker struct {
	cfg        core.Config
	lastPeriod int
	havePeriod bool
	checks     int
	violations int
}

// NewChecker builds a Checker for a controller using cfg (the bounds
// MinHPWays/MinBEWays come from there).
func NewChecker(cfg core.Config) *Checker {
	return &Checker{cfg: cfg}
}

// Checks returns the number of Check calls made.
func (k *Checker) Checks() int { return k.checks }

// Violations returns the cumulative number of violations observed.
func (k *Checker) Violations() int { return k.violations }

// validStates are the controller state names the sampling state machine
// may report.
var validStates = map[string]bool{
	"optimise": true,
	"sampling": true,
	"validate": true,
}

// Check validates all invariants after one monitoring period. ctl may be
// nil when guarding a non-DICER policy, in which case only the
// system-level mask invariants are checked. quiescent reports that no
// actuation writes are in flight (always true without a chaos layer);
// the intent/installed consistency invariant is skipped when false.
// It returns nil or an *Error listing every violation found.
func (k *Checker) Check(sys resctrl.System, ctl *core.Controller, quiescent bool) error {
	k.checks++
	var vs []Violation
	ways := sys.NumWays()

	// MaskLegal: the masks actually installed on the hardware.
	for _, clos := range []int{policy.HPClos, policy.BEClos} {
		mask := sys.CBM(clos)
		if mask == 0 {
			vs = append(vs, Violation{"MaskLegal",
				fmt.Sprintf("clos %d has an empty capacity mask", clos)})
			continue
		}
		if err := cache.CheckMask(mask, ways); err != nil {
			vs = append(vs, Violation{"MaskLegal",
				fmt.Sprintf("clos %d mask %#x: %v", clos, mask, err)})
		}
	}

	period := 0
	if ctl != nil {
		period = ctl.Period()

		// HPBounds: the allocation the controller believes it enforces.
		hp := ctl.HPWays()
		lo, hi := k.cfg.MinHPWays, ways-k.cfg.MinBEWays
		if hp < lo || hp > hi {
			vs = append(vs, Violation{"HPBounds",
				fmt.Sprintf("HP ways %d outside [%d,%d]", hp, lo, hi)})
		}

		// StateValid.
		if !validStates[ctl.State()] {
			vs = append(vs, Violation{"StateValid",
				fmt.Sprintf("unknown controller state %q", ctl.State())})
		}

		// PeriodMonotone: exactly one observation per period.
		if k.havePeriod && period != k.lastPeriod+1 {
			vs = append(vs, Violation{"PeriodMonotone",
				fmt.Sprintf("period went %d -> %d", k.lastPeriod, period)})
		}
		k.lastPeriod = period
		k.havePeriod = true

		// Consistency: installed masks match intent when no writes are
		// in flight. The intended split is disjoint and covers the
		// cache by construction, so matching it implies both.
		if quiescent && hp >= lo && hp <= hi {
			wantHP := policy.HPMask(ways, hp)
			wantBE := policy.BEMask(ways, hp)
			if got := sys.CBM(policy.HPClos); got != wantHP {
				vs = append(vs, Violation{"Consistency",
					fmt.Sprintf("HP mask %#x, intent %#x (hp ways %d)", got, wantHP, hp)})
			}
			if got := sys.CBM(policy.BEClos); got != wantBE {
				vs = append(vs, Violation{"Consistency",
					fmt.Sprintf("BE mask %#x, intent %#x (hp ways %d)", got, wantBE, hp)})
			}
		}
	}

	if len(vs) == 0 {
		return nil
	}
	k.violations += len(vs)
	return &Error{Period: period, Violations: vs}
}

// Guard wraps a policy with a per-period invariant check — the runtime
// guard. After every successful Observe the checker runs; a violation
// surfaces as an error from Observe, halting the run before another
// period executes under an unsafe allocation.
type Guard struct {
	inner   policy.Policy
	ctl     *core.Controller // nil for non-DICER policies
	checker *Checker
}

// NewGuard wraps inner. The controller-level invariants activate when
// inner is (or wraps) a DICER controller; otherwise only mask legality is
// guarded. cfg supplies the HP bounds; pass the controller's own config.
func NewGuard(inner policy.Policy, cfg core.Config) *Guard {
	return &Guard{inner: inner, ctl: core.ControllerOf(inner), checker: NewChecker(cfg)}
}

// Wrap guards p using its own controller configuration when p is (or
// wraps) a DICER controller, falling back to the default bounds for
// policies without one — the convenient constructor for callers that hold
// only a policy.Policy.
func Wrap(p policy.Policy) *Guard {
	cfg := core.DefaultConfig()
	if ctl := core.ControllerOf(p); ctl != nil {
		cfg = ctl.Config()
	}
	return NewGuard(p, cfg)
}

// Checker exposes the underlying checker (for stats).
func (g *Guard) Checker() *Checker { return g.checker }

// Controller exposes the guarded DICER controller (nil for non-DICER
// policies), so core.ControllerOf sees through the guard and the
// observability recorder can trace a guarded run.
func (g *Guard) Controller() *core.Controller { return g.ctl }

// Name implements policy.Policy.
func (g *Guard) Name() string { return g.inner.Name() + "+guard" }

// Setup implements policy.Policy. The invariant check runs even when the
// inner Setup errors — a fault-injecting substrate can reject the initial
// schemata write, and the installed masks must stay legal regardless.
// Both errors are reported via errors.Join, so errors.Is/As still match
// either one.
func (g *Guard) Setup(sys resctrl.System) error {
	return errors.Join(g.inner.Setup(sys), g.check(sys))
}

// Observe implements policy.Policy. As with Setup, the check runs every
// period even if the inner policy's actuation failed: the checker counts
// on exactly one check per observation for its monotone-bookkeeping
// invariant, and a period with a rejected write is precisely when the
// installed masks deserve scrutiny.
func (g *Guard) Observe(sys resctrl.System, p resctrl.Period) error {
	return errors.Join(g.inner.Observe(sys, p), g.check(sys))
}

func (g *Guard) check(sys resctrl.System) error {
	// A fault-injecting substrate (internal/chaos) reports whether
	// actuation has settled; without one, writes are synchronous and
	// the system is always quiescent.
	quiescent := true
	if q, ok := sys.(interface{ ActuationClean() bool }); ok {
		quiescent = q.ActuationClean()
	}
	return g.checker.Check(sys, g.ctl, quiescent)
}

var _ policy.Policy = (*Guard)(nil)
