package invariant

import (
	"errors"
	"strings"
	"testing"

	"dicer/internal/cache"
	"dicer/internal/core"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

// fake is a minimal scripted resctrl.System whose masks tests can corrupt
// directly to trip individual invariants.
type fake struct {
	ways    int
	masks   map[int]uint64
	lenient bool // accept illegal masks (to model a buggy substrate)
	pending int
}

func newFakeSys(ways int) *fake { return &fake{ways: ways, masks: map[int]uint64{}} }

func (f *fake) NumWays() int { return f.ways }
func (f *fake) NumClos() int { return 2 }
func (f *fake) SetCBM(clos int, mask uint64) error {
	if !f.lenient {
		if err := cache.CheckMask(mask, f.ways); err != nil {
			return err
		}
	}
	f.masks[clos] = mask
	return nil
}
func (f *fake) CBM(clos int) uint64          { return f.masks[clos] }
func (f *fake) SetMBACap(int, float64) error { return errors.New("no MBA") }
func (f *fake) LinkCapacityGbps() float64    { return 68.3 }
func (f *fake) Counters() resctrl.Counters   { return resctrl.Counters{} }
func (f *fake) ActuationClean() bool         { return f.pending == 0 }

var _ resctrl.System = (*fake)(nil)

func obs(hpIPC, hpBW, totalBW float64) resctrl.Period {
	return resctrl.Period{
		Seconds: 1,
		Cores: []resctrl.PeriodCore{
			{Core: 0, Clos: policy.HPClos, IPC: hpIPC},
			{Core: 1, Clos: policy.BEClos, IPC: 0.5},
		},
		Groups: []resctrl.PeriodGroup{
			{Clos: policy.HPClos, BandwidthGbps: hpBW},
			{Clos: policy.BEClos, BandwidthGbps: totalBW - hpBW},
		},
		TotalGbps: totalBW,
	}
}

func setup(t *testing.T) (*core.Controller, *fake, *Checker) {
	t.Helper()
	ctl := core.MustNew(core.DefaultConfig())
	sys := newFakeSys(20)
	if err := ctl.Setup(sys); err != nil {
		t.Fatal(err)
	}
	return ctl, sys, NewChecker(ctl.Config())
}

func TestCleanRunHasNoViolations(t *testing.T) {
	ctl, sys, k := setup(t)
	seq := []resctrl.Period{
		obs(1.0, 5, 20), obs(1.0, 5, 20), obs(0.7, 5, 20), obs(0.9, 5, 20),
		obs(0.9, 5, 60), obs(0.8, 5, 60), obs(0.8, 5, 60), obs(0.9, 5, 20),
	}
	for i, p := range seq {
		if err := ctl.Observe(sys, p); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if err := k.Check(sys, ctl, true); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if k.Checks() != len(seq) || k.Violations() != 0 {
		t.Fatalf("checks=%d violations=%d", k.Checks(), k.Violations())
	}
}

func TestMaskLegalViolations(t *testing.T) {
	ctl, sys, k := setup(t)
	ctl.Observe(sys, obs(1, 5, 20))
	k.Check(sys, ctl, true)

	// Empty BE mask, injected after the observation so no controller
	// write heals it before the check.
	ctl.Observe(sys, obs(1, 5, 20))
	sys.masks[policy.BEClos] = 0
	err := k.Check(sys, ctl, false)
	if err == nil || !strings.Contains(err.Error(), "MaskLegal") {
		t.Fatalf("empty mask not flagged: %v", err)
	}

	// Non-contiguous HP mask.
	sys.lenient = true
	ctl.Observe(sys, obs(1, 5, 20))
	sys.masks[policy.BEClos] = 1
	sys.masks[policy.HPClos] = 0b1010
	err = k.Check(sys, ctl, false)
	if err == nil || !strings.Contains(err.Error(), "MaskLegal") {
		t.Fatalf("gap mask not flagged: %v", err)
	}
	var ie *Error
	if !errors.As(err, &ie) || len(ie.Violations) == 0 || ie.Violations[0].Name != "MaskLegal" {
		t.Fatalf("error shape: %#v", err)
	}
}

func TestConsistencyViolationOnlyWhenQuiescent(t *testing.T) {
	ctl, sys, k := setup(t)
	ctl.Observe(sys, obs(1, 5, 20))
	// Corrupt the installed split relative to the controller's intent.
	sys.masks[policy.HPClos] = policy.HPMask(20, 5)
	sys.masks[policy.BEClos] = policy.BEMask(20, 5)

	// Writes in flight: divergence is expected, not a violation.
	if err := k.Check(sys, ctl, false); err != nil {
		t.Fatalf("non-quiescent divergence flagged: %v", err)
	}
	// Quiescent: divergence is a Consistency violation. The improved-IPC
	// reading takes the hold path, so the controller writes nothing and
	// the corruption survives to the check.
	ctl.Observe(sys, obs(1.2, 5, 20))
	sys.masks[policy.HPClos] = policy.HPMask(20, 5)
	sys.masks[policy.BEClos] = policy.BEMask(20, 5)
	err := k.Check(sys, ctl, true)
	if err == nil || !strings.Contains(err.Error(), "Consistency") {
		t.Fatalf("quiescent divergence not flagged: %v", err)
	}
}

func TestPeriodMonotoneViolation(t *testing.T) {
	ctl, sys, k := setup(t)
	ctl.Observe(sys, obs(1, 5, 20))
	if err := k.Check(sys, ctl, true); err != nil {
		t.Fatal(err)
	}
	// Skip an observation: the checker must notice the gap.
	ctl.Observe(sys, obs(1, 5, 20))
	ctl.Observe(sys, obs(1, 5, 20))
	err := k.Check(sys, ctl, true)
	if err == nil || !strings.Contains(err.Error(), "PeriodMonotone") {
		t.Fatalf("period gap not flagged: %v", err)
	}
}

func TestNilControllerChecksMasksOnly(t *testing.T) {
	sys := newFakeSys(20)
	if err := (policy.CacheTakeover{}).Setup(sys); err != nil {
		t.Fatal(err)
	}
	k := NewChecker(core.DefaultConfig())
	if err := k.Check(sys, nil, true); err != nil {
		t.Fatalf("legal CT masks flagged: %v", err)
	}
	sys.masks[policy.HPClos] = 0
	if err := k.Check(sys, nil, true); err == nil {
		t.Fatal("empty mask with nil controller not flagged")
	}
}

func TestGuardPassesCleanPolicy(t *testing.T) {
	ctl := core.MustNew(core.DefaultConfig())
	g := NewGuard(ctl, ctl.Config())
	sys := newFakeSys(20)
	if err := g.Setup(sys); err != nil {
		t.Fatal(err)
	}
	if g.Name() != "DICER+guard" {
		t.Fatalf("name %q", g.Name())
	}
	for i := 0; i < 10; i++ {
		if err := g.Observe(sys, obs(1, 5, 20)); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if g.Checker().Violations() != 0 {
		t.Fatalf("violations %d", g.Checker().Violations())
	}
}

func TestGuardCatchesCorruptedSubstrate(t *testing.T) {
	ctl := core.MustNew(core.DefaultConfig())
	g := NewGuard(ctl, ctl.Config())
	sys := newFakeSys(20)
	if err := g.Setup(sys); err != nil {
		t.Fatal(err)
	}
	if err := g.Observe(sys, obs(1, 5, 20)); err != nil {
		t.Fatal(err)
	}
	// A buggy substrate silently loses the BE mask. The improved-IPC
	// reading holds (no controller write), so the corruption survives.
	sys.masks[policy.BEClos] = 0
	err := g.Observe(sys, obs(1.2, 5, 20))
	var ie *Error
	if err == nil || !errors.As(err, &ie) {
		t.Fatalf("guard let a corrupted substrate through: %v", err)
	}
}

func TestGuardNonDICERPolicy(t *testing.T) {
	g := NewGuard(policy.CacheTakeover{}, core.DefaultConfig())
	sys := newFakeSys(20)
	if err := g.Setup(sys); err != nil {
		t.Fatal(err)
	}
	if err := g.Observe(sys, obs(1, 5, 20)); err != nil {
		t.Fatal(err)
	}
	if g.Name() != "CT+guard" {
		t.Fatalf("name %q", g.Name())
	}
}

func TestGuardRespectsPendingWrites(t *testing.T) {
	ctl := core.MustNew(core.DefaultConfig())
	g := NewGuard(ctl, ctl.Config())
	sys := newFakeSys(20)
	if err := g.Setup(sys); err != nil {
		t.Fatal(err)
	}
	// Diverge intent from installed, but report writes in flight: the
	// guard must not flag Consistency.
	sys.masks[policy.HPClos] = policy.HPMask(20, 5)
	sys.masks[policy.BEClos] = policy.BEMask(20, 5)
	sys.pending = 1
	// The IPC collapse triggers a reset; whatever the controller does,
	// pending writes suppress only the Consistency check.
	if err := g.Observe(sys, obs(1, 5, 20)); err != nil {
		t.Fatalf("pending writes: %v", err)
	}
}
