package ext

import (
	"fmt"

	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

// Heracles is a simplified reimplementation of the cache/core subsystem of
// Heracles (Lo et al., ISCA'15), the paper's closest application-assisted
// related work. Unlike DICER it is NOT transparent: it must be told the
// HP's performance target — the alone-run IPC reference and the SLO
// fraction — information DICER explicitly refuses to depend on. It exists
// as a comparison point: how much does the extra information buy?
//
// Control loop (per monitoring period), following Heracles' slack logic:
//
//	slack = (hpIPC - target) / target, target = SLO * refIPC
//	slack <  0          grow the HP partition by GrowWays
//	slack < DisableSlack (deeply negative): park all BE cores
//	slack > ShrinkSlack  shrink the HP partition by one way
//
// Parked BEs return one per period once slack stays above ReenableSlack.
type Heracles struct {
	// RefIPCAlone is the HP's alone-run IPC, provided by the operator or
	// the application (the information DICER does without).
	RefIPCAlone float64
	// SLO is the target fraction of RefIPCAlone (e.g. 0.95).
	SLO float64
	// GrowWays is the partition growth step on negative slack.
	GrowWays int
	// DisableSlack (< 0) is the slack below which all BEs are parked.
	DisableSlack float64
	// ShrinkSlack (> 0) is the slack above which the HP gives up a way.
	ShrinkSlack float64
	// ReenableSlack (> 0) is the slack above which parked BEs return.
	ReenableSlack float64
	// MinHPWays/MinBEWays bound the moving partition.
	MinHPWays int
	MinBEWays int

	curHP   int
	beCores []int
	parked  []int
}

// NewHeracles builds the controller with the Heracles paper's 5%/10%
// slack bands.
func NewHeracles(refIPCAlone, slo float64) (*Heracles, error) {
	if refIPCAlone <= 0 {
		return nil, fmt.Errorf("ext: heracles needs a positive reference IPC, got %g", refIPCAlone)
	}
	if slo <= 0 || slo > 1 {
		return nil, fmt.Errorf("ext: heracles SLO %g outside (0,1]", slo)
	}
	return &Heracles{
		RefIPCAlone:   refIPCAlone,
		SLO:           slo,
		GrowWays:      2,
		DisableSlack:  -0.10,
		ShrinkSlack:   0.10,
		ReenableSlack: 0.05,
		MinHPWays:     1,
		MinBEWays:     1,
	}, nil
}

// Name implements policy.Policy.
func (h *Heracles) Name() string { return "Heracles" }

// HPWays returns the current HP partition size.
func (h *Heracles) HPWays() int { return h.curHP }

// ParkedBEs returns the number of parked best-effort cores.
func (h *Heracles) ParkedBEs() int { return len(h.parked) }

// Setup implements policy.Policy: like DICER, start conservatively with
// the largest HP partition.
func (h *Heracles) Setup(sys resctrl.System) error {
	h.beCores = nil
	h.parked = nil
	for _, c := range sys.Counters().Cores {
		if c.Clos == policy.BEClos {
			h.beCores = append(h.beCores, c.Core)
		}
	}
	h.curHP = sys.NumWays() - h.MinBEWays
	return policy.SplitWays(sys, h.curHP)
}

// Observe implements policy.Policy.
func (h *Heracles) Observe(sys resctrl.System, p resctrl.Period) error {
	target := h.SLO * h.RefIPCAlone
	slack := (p.ClosMeanIPC(policy.HPClos) - target) / target

	parker, canPark := sys.(CoreParker)
	switch {
	case slack < h.DisableSlack && canPark:
		// Deep QoS violation: stop every BE immediately (Heracles'
		// "disable" state) and take the cache back.
		for _, c := range h.beCores {
			if !parker.CoreParked(c) {
				if err := parker.ParkCore(c); err != nil {
					return err
				}
				h.parked = append(h.parked, c)
			}
		}
		h.curHP = sys.NumWays() - h.MinBEWays
		return policy.SplitWays(sys, h.curHP)
	case slack < 0:
		grown := h.curHP + h.GrowWays
		if max := sys.NumWays() - h.MinBEWays; grown > max {
			grown = max
		}
		if grown != h.curHP {
			h.curHP = grown
			return policy.SplitWays(sys, h.curHP)
		}
		return nil
	case slack > h.ReenableSlack && len(h.parked) > 0:
		// Healthy again: let one BE back in per period.
		c := h.parked[len(h.parked)-1]
		h.parked = h.parked[:len(h.parked)-1]
		if err := parker.UnparkCore(c); err != nil {
			return err
		}
		return nil
	case slack > h.ShrinkSlack:
		if h.curHP > h.MinHPWays {
			h.curHP--
			return policy.SplitWays(sys, h.curHP)
		}
	}
	return nil
}

var _ policy.Policy = (*Heracles)(nil)
