// Package ext implements the extensions the DICER paper sketches as future
// work in §6, built on top of the core controller:
//
//   - DicerMBA: explicit, dynamic memory-bandwidth control with Intel MBA.
//     When the link saturates, instead of only re-sampling cache
//     partitions, the controller additionally throttles the best-effort
//     CLOS with an AIMD loop until total bandwidth returns under the
//     threshold — protecting the HP from saturation that no cache
//     partition can fix.
//
//   - BEManager: dynamic management of the number of co-located BEs. When
//     saturation persists even at the controller's best-known allocation,
//     the manager parks BE cores one at a time (thread packing); when the
//     link has headroom it unparks them. Like DICER itself it is fully
//     application-transparent: it acts on bandwidth counters only.
//
//   - OverlapStatic: overlapping cache partitions (HP exclusive high ways
//     plus a region shared with the BEs), the allocation-shape question
//     §6 raises. Provided as a static policy for the ablation benches.
package ext

import (
	"fmt"

	"dicer/internal/cache"
	"dicer/internal/core"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

// CoreParker is the thread-packing actuator: park a core to suspend its
// process, unpark to resume. resctrl.Emu satisfies it; on real hardware an
// implementation would move the task to a housekeeping cpuset.
type CoreParker interface {
	ParkCore(core int) error
	UnparkCore(core int) error
	CoreParked(core int) bool
}

// ---------------------------------------------------------------------------
// DICER + MBA

// MBAConfig tunes the AIMD bandwidth-throttle loop of DicerMBA.
type MBAConfig struct {
	// TargetGbps is the bandwidth the loop steers the system under.
	// Usually the DICER saturation threshold.
	TargetGbps float64
	// FloorGbps is the lowest BE cap AIMD may impose.
	FloorGbps float64
	// DecreaseFactor multiplies the BE cap on saturation (e.g. 0.8).
	DecreaseFactor float64
	// IncreaseGbps is added to the BE cap each unsaturated period.
	IncreaseGbps float64
}

// DefaultMBAConfig returns a conservative AIMD configuration for the
// paper's 68.3 Gbps link.
func DefaultMBAConfig(threshold float64) MBAConfig {
	return MBAConfig{
		TargetGbps:     threshold,
		FloorGbps:      5,
		DecreaseFactor: 0.8,
		IncreaseGbps:   2,
	}
}

// Validate reports configuration errors.
func (c MBAConfig) Validate() error {
	if c.TargetGbps <= 0 {
		return fmt.Errorf("ext: non-positive MBA target %g", c.TargetGbps)
	}
	if c.FloorGbps <= 0 || c.FloorGbps > c.TargetGbps {
		return fmt.Errorf("ext: MBA floor %g outside (0, %g]", c.FloorGbps, c.TargetGbps)
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		return fmt.Errorf("ext: MBA decrease factor %g outside (0,1)", c.DecreaseFactor)
	}
	if c.IncreaseGbps <= 0 {
		return fmt.Errorf("ext: non-positive MBA increase %g", c.IncreaseGbps)
	}
	return nil
}

// DicerMBA wraps the DICER controller with an MBA throttle on the BE
// class. It implements policy.Policy.
type DicerMBA struct {
	ctl *core.Controller
	cfg MBAConfig

	cap float64 // current BE cap in Gbps; 0 = uncapped
}

// NewDicerMBA builds the combined controller.
func NewDicerMBA(dicer core.Config, mba MBAConfig) (*DicerMBA, error) {
	if err := mba.Validate(); err != nil {
		return nil, err
	}
	ctl, err := core.New(dicer)
	if err != nil {
		return nil, err
	}
	return &DicerMBA{ctl: ctl, cfg: mba}, nil
}

// Name implements policy.Policy.
func (d *DicerMBA) Name() string { return "DICER+MBA" }

// Controller exposes the wrapped DICER controller (for tracing).
func (d *DicerMBA) Controller() *core.Controller { return d.ctl }

// BECapGbps returns the currently imposed BE bandwidth cap (0 = none).
func (d *DicerMBA) BECapGbps() float64 { return d.cap }

// Setup implements policy.Policy.
func (d *DicerMBA) Setup(sys resctrl.System) error {
	d.cap = 0
	if err := sys.SetMBACap(policy.BEClos, 0); err != nil {
		return err
	}
	return d.ctl.Setup(sys)
}

// Observe implements policy.Policy: run the cache controller, then adjust
// the BE bandwidth cap with AIMD.
func (d *DicerMBA) Observe(sys resctrl.System, p resctrl.Period) error {
	if err := d.ctl.Observe(sys, p); err != nil {
		return err
	}
	beBW := p.GroupBW(policy.BEClos)
	switch {
	case p.TotalGbps > d.cfg.TargetGbps:
		// Multiplicative decrease from the observed BE consumption.
		base := d.cap
		if base <= 0 || base > beBW {
			base = beBW
		}
		d.cap = base * d.cfg.DecreaseFactor
		if d.cap < d.cfg.FloorGbps {
			d.cap = d.cfg.FloorGbps
		}
	case d.cap > 0:
		// Additive increase while there is headroom.
		d.cap += d.cfg.IncreaseGbps
		if d.cap >= d.cfg.TargetGbps {
			d.cap = 0 // headroom regained: uncap
		}
	}
	return sys.SetMBACap(policy.BEClos, d.cap)
}

var _ policy.Policy = (*DicerMBA)(nil)

// ---------------------------------------------------------------------------
// BE-count manager

// BEManagerConfig tunes the BE parking loop.
type BEManagerConfig struct {
	// ParkAboveGbps: park one BE after PatiencePeriods consecutive periods
	// with total bandwidth above this.
	ParkAboveGbps float64
	// UnparkBelowGbps: unpark one BE after PatiencePeriods consecutive
	// periods below this (hysteresis: set it well under ParkAboveGbps).
	UnparkBelowGbps float64
	// PatiencePeriods is the consecutive-period requirement for action.
	PatiencePeriods int
	// MinActiveBEs bounds parking; at least this many BEs keep running.
	MinActiveBEs int
}

// DefaultBEManagerConfig derives a parking configuration from the DICER
// saturation threshold.
func DefaultBEManagerConfig(threshold float64) BEManagerConfig {
	return BEManagerConfig{
		ParkAboveGbps:   threshold,
		UnparkBelowGbps: threshold * 0.8,
		PatiencePeriods: 3,
		MinActiveBEs:    1,
	}
}

// Validate reports configuration errors.
func (c BEManagerConfig) Validate() error {
	if c.ParkAboveGbps <= 0 {
		return fmt.Errorf("ext: non-positive park threshold %g", c.ParkAboveGbps)
	}
	if c.UnparkBelowGbps <= 0 || c.UnparkBelowGbps >= c.ParkAboveGbps {
		return fmt.Errorf("ext: unpark threshold %g must be in (0, %g)",
			c.UnparkBelowGbps, c.ParkAboveGbps)
	}
	if c.PatiencePeriods < 1 {
		return fmt.Errorf("ext: patience %d < 1", c.PatiencePeriods)
	}
	if c.MinActiveBEs < 0 {
		return fmt.Errorf("ext: negative minimum active BEs %d", c.MinActiveBEs)
	}
	return nil
}

// BEManager wraps an inner policy (normally the DICER controller) and
// additionally parks/unparks BE cores based on sustained link saturation.
// It implements policy.Policy; the System passed to it must also satisfy
// CoreParker.
type BEManager struct {
	inner policy.Policy
	cfg   BEManagerConfig

	beCores []int // BE core ids, discovered at Setup
	parked  []int // stack of parked cores (last parked, first unparked)
	hotRun  int   // consecutive saturated periods
	coldRun int   // consecutive under-threshold periods
}

// NewBEManager wraps inner with BE-count management.
func NewBEManager(inner policy.Policy, cfg BEManagerConfig) (*BEManager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inner == nil {
		return nil, fmt.Errorf("ext: nil inner policy")
	}
	return &BEManager{inner: inner, cfg: cfg}, nil
}

// Name implements policy.Policy.
func (b *BEManager) Name() string { return b.inner.Name() + "+BEMGR" }

// ParkedBEs returns the number of currently parked BE cores.
func (b *BEManager) ParkedBEs() int { return len(b.parked) }

// Setup implements policy.Policy.
func (b *BEManager) Setup(sys resctrl.System) error {
	b.beCores = nil
	b.parked = nil
	b.hotRun = 0
	b.coldRun = 0
	for _, c := range sys.Counters().Cores {
		if c.Clos == policy.BEClos {
			b.beCores = append(b.beCores, c.Core)
		}
	}
	return b.inner.Setup(sys)
}

// Observe implements policy.Policy.
func (b *BEManager) Observe(sys resctrl.System, p resctrl.Period) error {
	if err := b.inner.Observe(sys, p); err != nil {
		return err
	}
	parker, ok := sys.(CoreParker)
	if !ok {
		return fmt.Errorf("ext: system %T cannot park cores", sys)
	}
	switch {
	case p.TotalGbps > b.cfg.ParkAboveGbps:
		b.hotRun++
		b.coldRun = 0
	case p.TotalGbps < b.cfg.UnparkBelowGbps:
		b.coldRun++
		b.hotRun = 0
	default:
		b.hotRun = 0
		b.coldRun = 0
	}
	if b.hotRun >= b.cfg.PatiencePeriods && len(b.beCores)-len(b.parked) > b.cfg.MinActiveBEs {
		// Park the highest-numbered still-active BE core.
		for i := len(b.beCores) - 1; i >= 0; i-- {
			c := b.beCores[i]
			if !parker.CoreParked(c) {
				if err := parker.ParkCore(c); err != nil {
					return err
				}
				b.parked = append(b.parked, c)
				break
			}
		}
		b.hotRun = 0
	}
	if b.coldRun >= b.cfg.PatiencePeriods && len(b.parked) > 0 {
		c := b.parked[len(b.parked)-1]
		b.parked = b.parked[:len(b.parked)-1]
		if err := parker.UnparkCore(c); err != nil {
			return err
		}
		b.coldRun = 0
	}
	return nil
}

var _ policy.Policy = (*BEManager)(nil)

// ---------------------------------------------------------------------------
// Overlapping partitions

// OverlapStatic is a static allocation where the HP owns hpExclusive high
// ways outright and additionally shares overlapWays with the BEs:
//
//	HP mask: [overlap | exclusive]   (contiguous)
//	BE mask: [low ways ... overlap]  (contiguous)
//
// §6 asks whether such overlap can benefit some workloads; the ablation
// bench compares it against disjoint partitions of equal HP reach.
type OverlapStatic struct {
	HPExclusive int
	OverlapWays int
}

// Name implements policy.Policy.
func (o OverlapStatic) Name() string {
	return fmt.Sprintf("Overlap(%d+%d)", o.HPExclusive, o.OverlapWays)
}

// Setup implements policy.Policy.
func (o OverlapStatic) Setup(sys resctrl.System) error {
	total := sys.NumWays()
	if o.HPExclusive < 1 || o.OverlapWays < 0 ||
		o.HPExclusive+o.OverlapWays > total {
		return fmt.Errorf("ext: overlap %d+%d does not fit %d ways",
			o.HPExclusive, o.OverlapWays, total)
	}
	beWays := total - o.HPExclusive // BEs reach everything except HP's exclusive ways
	if beWays < 1 {
		return fmt.Errorf("ext: no ways left for BEs")
	}
	hpLow := total - o.HPExclusive - o.OverlapWays
	hpMask := cache.ContiguousMask(hpLow, o.HPExclusive+o.OverlapWays)
	beMask := cache.ContiguousMask(0, beWays)
	if err := sys.SetCBM(policy.HPClos, hpMask); err != nil {
		return err
	}
	return sys.SetCBM(policy.BEClos, beMask)
}

// Observe implements policy.Policy.
func (OverlapStatic) Observe(resctrl.System, resctrl.Period) error { return nil }

var _ policy.Policy = OverlapStatic{}
