package ext

import (
	"testing"

	"dicer/internal/app"
	"dicer/internal/cache"
	"dicer/internal/core"
	"dicer/internal/machine"
	"dicer/internal/mrc"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

// streamApp is a bandwidth-hungry test workload.
func streamApp() app.Profile {
	return app.Profile{Name: "stream", Suite: "t", Class: app.ClassStream,
		Phases: []app.Phase{{Name: "p", Instructions: 1e12, BaseCPI: 0.5, APKI: 30,
			Curve: mrc.MustCurve(0.8, mrc.Component{Bytes: 0.5 * app.MB, Frac: 0.1})}}}
}

// quietApp is a compute-bound test workload.
func quietApp() app.Profile {
	return app.Profile{Name: "quiet", Suite: "t", Class: app.ClassCompute,
		Phases: []app.Phase{{Name: "p", Instructions: 1e12, BaseCPI: 0.6, APKI: 2,
			Curve: mrc.MustCurve(0.05, mrc.Component{Bytes: 0.3 * app.MB, Frac: 0.5})}}}
}

// build constructs a 1 HP + n BE emulated platform.
func build(t *testing.T, hp, be app.Profile, n int, withMBA bool) *resctrl.Emu {
	t.Helper()
	r, err := sim.New(machine.Default(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(0, policy.HPClos, hp); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := r.Attach(i, policy.BEClos, be); err != nil {
			t.Fatal(err)
		}
	}
	return resctrl.NewEmu(r, withMBA)
}

// drive runs pol for periods monitoring periods.
func drive(t *testing.T, emu *resctrl.Emu, pol policy.Policy, periods int) {
	t.Helper()
	if err := pol.Setup(emu); err != nil {
		t.Fatal(err)
	}
	meter := resctrl.NewMeter(emu)
	for i := 0; i < periods; i++ {
		for s := 0; s < 4; s++ {
			emu.Runner().Step(0.25)
		}
		if err := pol.Observe(emu, meter.Sample()); err != nil {
			t.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// DicerMBA

func TestMBAConfigValidation(t *testing.T) {
	good := DefaultMBAConfig(50)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*MBAConfig){
		func(c *MBAConfig) { c.TargetGbps = 0 },
		func(c *MBAConfig) { c.FloorGbps = 0 },
		func(c *MBAConfig) { c.FloorGbps = c.TargetGbps + 1 },
		func(c *MBAConfig) { c.DecreaseFactor = 0 },
		func(c *MBAConfig) { c.DecreaseFactor = 1 },
		func(c *MBAConfig) { c.IncreaseGbps = 0 },
	}
	for i, m := range mutations {
		cfg := DefaultMBAConfig(50)
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
	if _, err := NewDicerMBA(core.Config{}, good); err == nil {
		t.Fatal("expected error for invalid DICER config")
	}
	if _, err := NewDicerMBA(core.DefaultConfig(), MBAConfig{}); err == nil {
		t.Fatal("expected error for invalid MBA config")
	}
}

func TestDicerMBAThrottlesSaturation(t *testing.T) {
	emu := build(t, streamApp(), streamApp(), 9, true)
	d, err := NewDicerMBA(core.DefaultConfig(), DefaultMBAConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "DICER+MBA" {
		t.Fatalf("name %q", d.Name())
	}
	drive(t, emu, d, 20)
	// Ten streamers demand far more than 50 Gbps; the AIMD loop must have
	// imposed a BE cap.
	if d.BECapGbps() <= 0 {
		t.Fatal("saturated workload should leave a BE bandwidth cap in place")
	}
	meter := resctrl.NewMeter(emu)
	emu.Runner().Step(1)
	p := meter.Sample()
	// The cap bounds BE consumption to roughly the cap value.
	if p.GroupBW(policy.BEClos) > d.BECapGbps()*1.1 {
		t.Fatalf("BE bandwidth %.1f exceeds cap %.1f", p.GroupBW(policy.BEClos), d.BECapGbps())
	}
}

func TestDicerMBAUncapsQuietWorkload(t *testing.T) {
	emu := build(t, quietApp(), quietApp(), 3, true)
	d, err := NewDicerMBA(core.DefaultConfig(), DefaultMBAConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, emu, d, 10)
	if d.BECapGbps() != 0 {
		t.Fatalf("quiet workload should stay uncapped, cap = %.1f", d.BECapGbps())
	}
}

func TestDicerMBAProtectsHPBetterThanPlainDICER(t *testing.T) {
	run := func(pol policy.Policy, withMBA bool) float64 {
		emu := build(t, streamApp(), streamApp(), 9, withMBA)
		drive(t, emu, pol, 30)
		return emu.Runner().Proc(0).IPC()
	}
	plain := run(core.MustNew(core.DefaultConfig()), false)
	mba, err := NewDicerMBA(core.DefaultConfig(), DefaultMBAConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	withMBA := run(mba, true)
	if withMBA <= plain {
		t.Fatalf("MBA should protect a bandwidth-bound HP: %.3f (MBA) vs %.3f (plain)",
			withMBA, plain)
	}
}

func TestDicerMBARequiresMBASupport(t *testing.T) {
	emu := build(t, streamApp(), streamApp(), 3, false)
	d, err := NewDicerMBA(core.DefaultConfig(), DefaultMBAConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Setup(emu); err == nil {
		t.Fatal("expected setup failure on MBA-less platform")
	}
}

// ---------------------------------------------------------------------------
// BEManager

func TestBEManagerConfigValidation(t *testing.T) {
	good := DefaultBEManagerConfig(50)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*BEManagerConfig){
		func(c *BEManagerConfig) { c.ParkAboveGbps = 0 },
		func(c *BEManagerConfig) { c.UnparkBelowGbps = 0 },
		func(c *BEManagerConfig) { c.UnparkBelowGbps = c.ParkAboveGbps },
		func(c *BEManagerConfig) { c.PatiencePeriods = 0 },
		func(c *BEManagerConfig) { c.MinActiveBEs = -1 },
	}
	for i, m := range mutations {
		cfg := DefaultBEManagerConfig(50)
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
	if _, err := NewBEManager(nil, good); err == nil {
		t.Fatal("expected error for nil inner policy")
	}
}

func TestBEManagerParksUnderSaturation(t *testing.T) {
	emu := build(t, streamApp(), streamApp(), 9, false)
	mgr, err := NewBEManager(policy.Unmanaged{}, DefaultBEManagerConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Name() != "UM+BEMGR" {
		t.Fatalf("name %q", mgr.Name())
	}
	drive(t, emu, mgr, 30)
	if mgr.ParkedBEs() == 0 {
		t.Fatal("sustained saturation should park BEs")
	}
	// At least MinActiveBEs keep running.
	active := 0
	for core := 1; core <= 9; core++ {
		if !emu.CoreParked(core) {
			active++
		}
	}
	if active < DefaultBEManagerConfig(50).MinActiveBEs {
		t.Fatalf("only %d BEs active", active)
	}
	// Parked cores must actually be frozen.
	stopped := false
	for core := 1; core <= 9; core++ {
		if emu.CoreParked(core) {
			before := emu.Runner().Proc(core).Instructions
			emu.Runner().Step(1)
			if emu.Runner().Proc(core).Instructions == before {
				stopped = true
			}
			break
		}
	}
	if !stopped {
		t.Fatal("parked BE kept running")
	}
}

func TestBEManagerLeavesQuietWorkloadAlone(t *testing.T) {
	emu := build(t, quietApp(), quietApp(), 9, false)
	mgr, err := NewBEManager(policy.Unmanaged{}, DefaultBEManagerConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, emu, mgr, 15)
	if mgr.ParkedBEs() != 0 {
		t.Fatalf("quiet workload parked %d BEs", mgr.ParkedBEs())
	}
}

func TestBEManagerUnparksWhenLoadDrops(t *testing.T) {
	// Drive saturation manually, then feed quiet periods and watch the
	// parked BEs return. Uses a fake period stream for precise control.
	emu := build(t, streamApp(), streamApp(), 9, false)
	cfg := DefaultBEManagerConfig(50)
	mgr, err := NewBEManager(policy.Unmanaged{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Setup(emu); err != nil {
		t.Fatal(err)
	}
	hot := resctrl.Period{TotalGbps: 60}
	cold := resctrl.Period{TotalGbps: 10}
	for i := 0; i < cfg.PatiencePeriods; i++ {
		if err := mgr.Observe(emu, hot); err != nil {
			t.Fatal(err)
		}
	}
	if mgr.ParkedBEs() != 1 {
		t.Fatalf("parked %d after patience, want 1", mgr.ParkedBEs())
	}
	for i := 0; i < cfg.PatiencePeriods; i++ {
		if err := mgr.Observe(emu, cold); err != nil {
			t.Fatal(err)
		}
	}
	if mgr.ParkedBEs() != 0 {
		t.Fatalf("still %d parked after cold run", mgr.ParkedBEs())
	}
}

func TestBEManagerRequiresParker(t *testing.T) {
	mgr, err := NewBEManager(policy.Unmanaged{}, DefaultBEManagerConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	// A System that cannot park must be rejected at Observe time.
	var sys nonParker
	if err := mgr.Setup(&sys); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Observe(&sys, resctrl.Period{TotalGbps: 60}); err == nil {
		t.Fatal("expected error for non-parking system")
	}
}

// nonParker is a System without CoreParker support.
type nonParker struct{ masks [4]uint64 }

func (n *nonParker) NumWays() int { return 20 }
func (n *nonParker) NumClos() int { return 2 }
func (n *nonParker) SetCBM(clos int, mask uint64) error {
	n.masks[clos] = mask
	return nil
}
func (n *nonParker) CBM(clos int) uint64          { return n.masks[clos] }
func (n *nonParker) SetMBACap(int, float64) error { return nil }
func (n *nonParker) LinkCapacityGbps() float64    { return 68.3 }
func (n *nonParker) Counters() resctrl.Counters   { return resctrl.Counters{} }

// ---------------------------------------------------------------------------
// Overlapping partitions

func TestOverlapStaticMasks(t *testing.T) {
	emu := build(t, quietApp(), quietApp(), 3, false)
	o := OverlapStatic{HPExclusive: 4, OverlapWays: 6}
	if o.Name() != "Overlap(4+6)" {
		t.Fatalf("name %q", o.Name())
	}
	if err := o.Setup(emu); err != nil {
		t.Fatal(err)
	}
	hp := emu.CBM(policy.HPClos)
	be := emu.CBM(policy.BEClos)
	// HP: ways 10..19 (4 exclusive + 6 shared); BE: ways 0..15.
	if hp != cache.ContiguousMask(10, 10) {
		t.Fatalf("HP mask %#x", hp)
	}
	if be != cache.ContiguousMask(0, 16) {
		t.Fatalf("BE mask %#x", be)
	}
	if overlap := hp & be; overlap != cache.ContiguousMask(10, 6) {
		t.Fatalf("overlap %#x, want 6 ways at 10", overlap)
	}
	if err := o.Observe(emu, resctrl.Period{}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapStaticValidation(t *testing.T) {
	emu := build(t, quietApp(), quietApp(), 1, false)
	if err := (OverlapStatic{HPExclusive: 0, OverlapWays: 1}).Setup(emu); err == nil {
		t.Fatal("expected error for zero exclusive ways")
	}
	if err := (OverlapStatic{HPExclusive: 15, OverlapWays: 10}).Setup(emu); err == nil {
		t.Fatal("expected error for overflow")
	}
	if err := (OverlapStatic{HPExclusive: 20, OverlapWays: 0}).Setup(emu); err == nil {
		t.Fatal("expected error leaving BEs nothing")
	}
}

func TestOverlapBenefitsSharedHotData(t *testing.T) {
	// Overlap vs strict split with the same HP reach: the BEs get more
	// reachable capacity under overlap, so their IPC should not be worse.
	hp := quietApp()
	be := app.Profile{Name: "beCache", Suite: "t", Class: app.ClassCache,
		Phases: []app.Phase{{Name: "p", Instructions: 1e12, BaseCPI: 0.8, APKI: 12,
			Curve: mrc.MustCurve(0.1, mrc.Component{Bytes: 4 * app.MB, Frac: 0.5})}}}

	runBE := func(pol policy.Policy) float64 {
		emu := build(t, hp, be, 5, false)
		drive(t, emu, pol, 10)
		return emu.Runner().Proc(1).IPC()
	}
	strict := runBE(policy.Static{HPWays: 10})
	overlap := runBE(OverlapStatic{HPExclusive: 4, OverlapWays: 6})
	if overlap < strict {
		t.Fatalf("overlap BE IPC %.3f < strict %.3f", overlap, strict)
	}
}
