package ext

import (
	"testing"

	"dicer/internal/app"
	"dicer/internal/core"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

func TestNewHeraclesValidation(t *testing.T) {
	if _, err := NewHeracles(0, 0.9); err == nil {
		t.Fatal("expected error for zero reference IPC")
	}
	if _, err := NewHeracles(1, 0); err == nil {
		t.Fatal("expected error for zero SLO")
	}
	if _, err := NewHeracles(1, 1.5); err == nil {
		t.Fatal("expected error for SLO > 1")
	}
	h, err := NewHeracles(1, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "Heracles" {
		t.Fatalf("name %q", h.Name())
	}
}

func TestHeraclesStartsConservative(t *testing.T) {
	emu := build(t, quietApp(), quietApp(), 3, false)
	h, err := NewHeracles(1.0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Setup(emu); err != nil {
		t.Fatal(err)
	}
	if h.HPWays() != 19 {
		t.Fatalf("initial HP ways %d", h.HPWays())
	}
}

func TestHeraclesGrowsOnNegativeSlack(t *testing.T) {
	emu := build(t, quietApp(), quietApp(), 3, false)
	h, _ := NewHeracles(1.0, 0.95)
	if err := h.Setup(emu); err != nil {
		t.Fatal(err)
	}
	h.curHP = 10
	if err := policy.SplitWays(emu, 10); err != nil {
		t.Fatal(err)
	}
	// Mild violation (slack in (DisableSlack, 0)): grow by GrowWays.
	p := resctrl.Period{Cores: []resctrl.PeriodCore{{Core: 0, Clos: policy.HPClos, IPC: 0.90}}}
	if err := h.Observe(emu, p); err != nil {
		t.Fatal(err)
	}
	if h.HPWays() != 12 {
		t.Fatalf("HP ways %d after violation, want 12", h.HPWays())
	}
	if h.ParkedBEs() != 0 {
		t.Fatal("mild violation should not park BEs")
	}
}

func TestHeraclesParksOnDeepViolation(t *testing.T) {
	emu := build(t, quietApp(), quietApp(), 3, false)
	h, _ := NewHeracles(1.0, 0.95)
	if err := h.Setup(emu); err != nil {
		t.Fatal(err)
	}
	// Deep violation: slack < -10%.
	p := resctrl.Period{Cores: []resctrl.PeriodCore{{Core: 0, Clos: policy.HPClos, IPC: 0.5}}}
	if err := h.Observe(emu, p); err != nil {
		t.Fatal(err)
	}
	if h.ParkedBEs() != 3 {
		t.Fatalf("parked %d BEs, want all 3", h.ParkedBEs())
	}
	if h.HPWays() != 19 {
		t.Fatalf("HP ways %d after deep violation", h.HPWays())
	}
	// Recovery: healthy slack unparks one BE per period.
	healthy := resctrl.Period{Cores: []resctrl.PeriodCore{{Core: 0, Clos: policy.HPClos, IPC: 1.05}}}
	if err := h.Observe(emu, healthy); err != nil {
		t.Fatal(err)
	}
	if h.ParkedBEs() != 2 {
		t.Fatalf("parked %d after recovery period, want 2", h.ParkedBEs())
	}
}

func TestHeraclesShrinksOnSlackSurplus(t *testing.T) {
	emu := build(t, quietApp(), quietApp(), 3, false)
	h, _ := NewHeracles(1.0, 0.80)
	if err := h.Setup(emu); err != nil {
		t.Fatal(err)
	}
	// IPC well above target: give a way to the BEs.
	p := resctrl.Period{Cores: []resctrl.PeriodCore{{Core: 0, Clos: policy.HPClos, IPC: 1.0}}}
	if err := h.Observe(emu, p); err != nil {
		t.Fatal(err)
	}
	if h.HPWays() != 18 {
		t.Fatalf("HP ways %d, want 18", h.HPWays())
	}
}

func TestHeraclesEndToEndComparableToDICER(t *testing.T) {
	// On a cache-sensitive HP, Heracles (armed with the alone-IPC it
	// needs) must protect the SLO — and DICER should get close without
	// that information.
	hp := app.MustByName("omnetpp1")
	be := app.MustByName("gcc_base1")
	// The reference IPC: omnetpp alone at full LLC (analytic).
	ref := 1 / (hp.Phases[0].BaseCPI +
		hp.Phases[0].APKI*hp.Phases[0].Curve.MissRatio(25*mrcMB())/1000*180)

	run := func(pol policy.Policy) float64 {
		emu := build(t, hp, be, 9, false)
		drive(t, emu, pol, 40)
		return emu.Runner().Proc(0).IPC() / ref
	}
	h, err := NewHeracles(ref, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	heraclesNorm := run(h)
	dicerNorm := run(core.MustNew(core.DefaultConfig()))
	if heraclesNorm < 0.85 {
		t.Fatalf("Heracles with perfect information missed its target: %.3f", heraclesNorm)
	}
	if dicerNorm < heraclesNorm-0.15 {
		t.Fatalf("DICER (transparent) far behind Heracles: %.3f vs %.3f",
			dicerNorm, heraclesNorm)
	}
}

// mrcMB avoids an import-name collision with the app.MB constant.
func mrcMB() float64 { return float64(1 << 20) }
