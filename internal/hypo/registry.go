package hypo

import (
	"fmt"

	"dicer/internal/core"
	"dicer/internal/experiments"
	"dicer/internal/fleet"
)

// DefaultSeedCount is the registry's replication level: enough for a
// t-interval with a few degrees of freedom while staying interactive.
const DefaultSeedCount = 5

// DefaultSeeds returns the canonical seed sequence 42, 43, ... of length
// n. Every registered hypothesis uses a prefix of this sequence, so
// widening replication extends the seed set instead of replacing it —
// which is what makes the prefix-trajectory guarantee meaningful across
// runs.
func DefaultSeeds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = 42 + int64(i)
	}
	return out
}

// consolidationArrivals is the shared fleet load of the comparative
// hypotheses: the stream-heavy mix the fleet experiments use, heavy
// enough that careless placement saturates individual links.
func consolidationArrivals() fleet.ArrivalConfig {
	return fleet.ArrivalConfig{
		RatePerPeriod:       2,
		MeanDurationPeriods: 10,
		ClassWeights:        [4]float64{0.5, 0.25, 0.15, 0.1},
	}
}

// saturatingArrivals raises the rate until links actually saturate even
// without pathological placement. The saturation-sampling ablations need
// this: under the consolidation load the headroom scheduler keeps every
// link below the knee, so the controller's saturation path never fires
// and the ablation would be a no-op.
func saturatingArrivals() fleet.ArrivalConfig {
	arr := consolidationArrivals()
	arr.RatePerPeriod = 3
	return arr
}

// fleetConfig builds a fleet configuration of the standard comparison
// shape (4 nodes, 80 periods, queue cap 40).
func fleetConfig(name, scheduler string, policy experiments.PolicyName, dicer *core.Config) Config {
	return Config{
		Name: name,
		Fleet: &FleetSpec{
			Nodes:          4,
			HorizonPeriods: 80,
			QueueCap:       40,
			Scheduler:      scheduler,
			Policy:         policy,
			Arrivals:       consolidationArrivals(),
			DICER:          dicer,
		},
	}
}

// saturatingFleetConfig builds the ablation comparison shape: random
// placement over the saturating mix, per-node DICER with an optional
// controller override.
func saturatingFleetConfig(name string, dicer *core.Config) Config {
	cfg := fleetConfig(name, "random", experiments.DICER, dicer)
	cfg.Fleet.Arrivals = saturatingArrivals()
	return cfg
}

// controlFleetConfig builds a migration-grid configuration: the
// saturating stream-heavy mix over headroom placement — heavy enough
// that nodes actually burn their SLO budgets — with a canned node fault
// schedule layered on top and the SLO-burn migration loop toggled.
func controlFleetConfig(name, nodeChaos string, migrate bool) Config {
	cfg := fleetConfig(name, "headroom", experiments.DICER, nil)
	cfg.Fleet.Arrivals = saturatingArrivals()
	cfg.Fleet.NodeChaos = nodeChaos
	cfg.Fleet.Migration = migrate
	return cfg
}

// Registered returns the hypothesis registry: the claims EXPERIMENTS.md
// asserts (or used to assert from single seeded runs), declared as
// falsifiable multi-seed comparisons.
func Registered() []Hypothesis {
	noSampling := core.DefaultConfig()
	noSampling.DisableSaturationHandling = true

	return []Hypothesis{
		{
			Name:   "headroom-beats-random",
			Title:  "Headroom placement beats random on SLO conformance",
			Family: "Cross-scheduler comparative",
			Claim: "Under per-node DICER, bandwidth-headroom-aware placement keeps the rate " +
				"of HP SLO-violation node-periods below random placement on the same " +
				"open-loop stream-heavy arrival stream: keeping stream-heavy jobs off " +
				"nearly-saturated links protects the HPs. The single-seed fleet EFU edge " +
				"(0.450 vs 0.439 in EXPERIMENTS.md) rides along as an exploratory " +
				"endpoint — directionally positive but too small to resolve at this " +
				"replication level.",
			Seeds:      DefaultSeeds(DefaultSeedCount),
			Confidence: 0.95,
			Configs: []Config{
				fleetConfig("headroom", "headroom", experiments.DICER, nil),
				fleetConfig("random", "random", experiments.DICER, nil),
			},
			Comparisons: []Comparison{
				{
					Name:      "slo-violation-rate",
					Metric:    MetricSLOViolationRate,
					Treatment: "headroom",
					Control:   "random",
					Direction: Less,
					MinEffect: 0.005,
				},
				{
					Name:        "fleet-efu",
					Metric:      MetricFleetEFU,
					Treatment:   "headroom",
					Control:     "random",
					Direction:   Greater,
					MinEffect:   0.003,
					Exploratory: true,
				},
			},
		},
		{
			Name:   "policy-ordering-survives-consolidation",
			Family: "Cross-policy comparative",
			Title:  "UM > DICER > CT fleet-EFU ordering survives consolidation",
			Claim: "The single-node policy ordering survives cluster-scale consolidation: " +
				"unmanaged nodes run hottest (highest fleet EFU) but violate the HP SLO far " +
				"more often than DICER nodes, while DICER recovers utilisation over " +
				"cache-takeover at every seed — UM > DICER > CT on fleet EFU with " +
				"UM-violations > DICER-violations.",
			Seeds:      DefaultSeeds(DefaultSeedCount),
			Confidence: 0.95,
			Configs: []Config{
				fleetConfig("um", "headroom", experiments.UM, nil),
				fleetConfig("ct", "headroom", experiments.CT, nil),
				fleetConfig("dicer", "headroom", experiments.DICER, nil),
			},
			Comparisons: []Comparison{
				{
					Name:      "efu-um-over-dicer",
					Metric:    MetricFleetEFU,
					Treatment: "um",
					Control:   "dicer",
					Direction: Greater,
					MinEffect: 0.01,
				},
				{
					Name:      "efu-dicer-over-ct",
					Metric:    MetricFleetEFU,
					Treatment: "dicer",
					Control:   "ct",
					Direction: Greater,
					MinEffect: 0.01,
				},
				{
					Name:      "violations-dicer-under-um",
					Metric:    MetricSLOViolationRate,
					Treatment: "dicer",
					Control:   "um",
					Direction: Less,
					MinEffect: 0.05,
				},
			},
		},
		{
			Name:   "chaos-soak-degradation-bound",
			Family: "Robustness bound",
			Title:  "Chaos-soak HP degradation stays under the 35% bound",
			Claim: "Under the combined \"storm\" fault schedule (counter dropout, freezes, " +
				"jitter, write rejection, delayed actuation), the DICER loop's worst HP IPC " +
				"degradation relative to the fault-free run stays below the soak harness's " +
				"35% bound across the soak workloads, with at least a 5-point margin.",
			Seeds:      DefaultSeeds(DefaultSeedCount),
			Confidence: 0.95,
			Configs: []Config{{
				Name: "storm-soak",
				Soak: &SoakSpec{Schedule: "storm"},
			}},
			Comparisons: []Comparison{{
				Name:      "hp-degradation-bound",
				Metric:    MetricHPDegradation,
				Treatment: "storm-soak",
				Baseline:  0.35,
				Direction: Less,
				MinEffect: 0.05,
			}},
		},
		{
			Name:   "sampling-slo-benefit",
			Family: "Ablation comparative",
			Title:  "Saturation sampling lowers the fleet SLO-violation rate",
			Claim: "On a saturating stream-heavy fleet mix (random placement, so links do " +
				"cross the knee), DICER's bandwidth-saturation sampling (vs the " +
				"no-saturation-handling ablation that keeps resetting to CT-like wide HP " +
				"partitions) lowers the rate of HP SLO-violation node-periods — the naive " +
				"transfer of the paper's single-node QoS story to cluster scale.",
			Seeds:      DefaultSeeds(DefaultSeedCount),
			Confidence: 0.95,
			Configs: []Config{
				saturatingFleetConfig("sampling", nil),
				saturatingFleetConfig("no-sampling", &noSampling),
			},
			Comparisons: []Comparison{{
				Name:      "slo-violation-rate",
				Metric:    MetricSLOViolationRate,
				Treatment: "sampling",
				Control:   "no-sampling",
				Direction: Less,
				MinEffect: 0,
			}},
		},
		{
			Name:   "sampling-utilisation-recovery",
			Family: "Ablation comparative",
			Title:  "Saturation sampling recovers fleet utilisation under saturating load",
			Claim: "What the saturation machinery actually buys at cluster scale is " +
				"utilisation, not SLO conformance: on the same saturating mix, the sampled " +
				"operating point holds markedly higher fleet EFU than the ablation, which " +
				"keeps resetting to CT's wide HP partition and strands BE throughput — " +
				"mirroring the single-node ablation (EXPERIMENTS.md), where removing " +
				"sampling nudges SLO90 up but costs geomean EFU.",
			Seeds:      DefaultSeeds(DefaultSeedCount),
			Confidence: 0.95,
			Configs: []Config{
				saturatingFleetConfig("sampling", nil),
				saturatingFleetConfig("no-sampling", &noSampling),
			},
			Comparisons: []Comparison{{
				Name:      "fleet-efu",
				Metric:    MetricFleetEFU,
				Treatment: "sampling",
				Control:   "no-sampling",
				Direction: Greater,
				MinEffect: 0.02,
			}},
		},
		{
			Name:   "migration-beats-static",
			Family: "Control-loop comparative",
			Title:  "SLO-burn BE migration beats a static fleet under node chaos",
			Claim: "On a saturating stream-heavy mix with node faults injected (freeze-only " +
				"and combined freeze+loss storms), the SLO-burn migration loop — multi-window " +
				"burn-rate alerts evicting BE jobs off burning nodes through the bounded-retry " +
				"placement path, with cooldown and quarantine hysteresis — lowers the rate of " +
				"HP SLO-violation node-periods versus the same fleet with the loop disabled, " +
				"on the same arrival trace and fault stream. Fleet EFU rides along as an " +
				"exploratory endpoint: migration shuffles BE work, it should not strand it.",
			Seeds:      DefaultSeeds(8),
			Confidence: 0.95,
			Configs: []Config{
				controlFleetConfig("static-freeze", "node-freeze", false),
				controlFleetConfig("migrate-freeze", "node-freeze", true),
				controlFleetConfig("static-storm", "node-storm", false),
				controlFleetConfig("migrate-storm", "node-storm", true),
			},
			Comparisons: []Comparison{
				{
					Name:      "slo-violation-rate-freeze",
					Metric:    MetricSLOViolationRate,
					Treatment: "migrate-freeze",
					Control:   "static-freeze",
					Direction: Less,
					MinEffect: 0,
				},
				{
					Name:      "slo-violation-rate-storm",
					Metric:    MetricSLOViolationRate,
					Treatment: "migrate-storm",
					Control:   "static-storm",
					Direction: Less,
					MinEffect: 0,
				},
				{
					Name:        "fleet-efu-storm",
					Metric:      MetricFleetEFU,
					Treatment:   "migrate-storm",
					Control:     "static-storm",
					Direction:   Greater,
					MinEffect:   0,
					Exploratory: true,
				},
			},
		},
		{
			Name:   "clustering-beats-naive-spill",
			Family: "Consolidation comparative",
			Title:  "LFOC-style clustering beats naive per-app spill on worst-app fairness",
			Claim: "Consolidating more HP applications than the hardware has CLOS ids " +
				"(M=20 under 16), the clustered plan — similarity grouping over miss-ratio " +
				"curves with contention-aware way allocation — holds a lower worst-app " +
				"slowdown than the naive baseline practitioners actually deploy: one CLOS " +
				"per app in arrival order until the ids run out, the rest spilled into the " +
				"last partition. Eight workload draws, paired per seed; Eq. 1 EFU rides " +
				"along as an exploratory endpoint (the fairness gain should not cost " +
				"utilisation).",
			Seeds:      DefaultSeeds(8),
			Confidence: 0.95,
			Configs: []Config{
				{Name: "clustered", MultiHP: &experiments.MultiHPSpec{
					M: 20, BECount: 2, CLOSBudget: 16,
				}},
				{Name: "per-app-spill", MultiHP: &experiments.MultiHPSpec{
					M: 20, BECount: 2, CLOSBudget: 16, Grouping: core.GroupingSpill,
				}},
			},
			Comparisons: []Comparison{
				{
					Name:      "max-slowdown",
					Metric:    MetricMaxSlowdown,
					Treatment: "clustered",
					Control:   "per-app-spill",
					Direction: Less,
					MinEffect: 0.05,
				},
				{
					Name:        "consolidation-efu",
					Metric:      MetricConsolidationEFU,
					Treatment:   "clustered",
					Control:     "per-app-spill",
					Direction:   Greater,
					MinEffect:   0,
					Exploratory: true,
				},
			},
		},
		{
			Name:   "phase-hints-recluster",
			Family: "Consolidation comparative",
			Title:  "Phase-hinted re-clustering beats reactive-only on SLO conformance",
			Claim: "When the multi-HP controller re-plans its grouping periodically, " +
				"compiler-style phase hints (the upcoming phase's miss-ratio curve exposed " +
				"to the planner shortly before the transition, Com-CAS style) raise the " +
				"fraction of HP apps meeting their SLO over the reactive-only re-planner " +
				"that only ever sees the current phase. This is the naive transfer of the " +
				"phase-hint story to consolidation scale; the worst-app slowdown rides " +
				"along as an exploratory endpoint.",
			Seeds:      DefaultSeeds(8),
			Confidence: 0.95,
			Configs: []Config{
				{Name: "hinted", MultiHP: &experiments.MultiHPSpec{
					M: 18, BECount: 2, CLOSBudget: 16,
					ReclusterEvery: 10, UsePhaseHints: true,
				}},
				{Name: "reactive", MultiHP: &experiments.MultiHPSpec{
					M: 18, BECount: 2, CLOSBudget: 16,
					ReclusterEvery: 10,
				}},
			},
			Comparisons: []Comparison{
				{
					Name:      "slo-conformance",
					Metric:    MetricSLOConformance,
					Treatment: "hinted",
					Control:   "reactive",
					Direction: Greater,
					MinEffect: 0,
				},
				{
					Name:        "max-slowdown",
					Metric:      MetricMaxSlowdown,
					Treatment:   "hinted",
					Control:     "reactive",
					Direction:   Less,
					MinEffect:   0,
					Exploratory: true,
				},
			},
		},
	}
}

// ByName looks up a registered hypothesis.
func ByName(name string) (Hypothesis, error) {
	for _, h := range Registered() {
		if h.Name == name {
			return h, nil
		}
	}
	return Hypothesis{}, fmt.Errorf("hypo: unknown hypothesis %q (see Registered)", name)
}

// Names lists the registry slugs in order.
func Names() []string {
	regs := Registered()
	out := make([]string, len(regs))
	for i, h := range regs {
		out[i] = h.Name
	}
	return out
}
