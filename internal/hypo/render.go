package hypo

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Markdown renders the result as a FINDINGS-style report (modeled on the
// hypothesis documents of the inference-sim evaluation discipline: named
// configurations, per-seed evidence, explicit resolution). Output is a
// pure function of the result — byte-deterministic for a fixed seed set.
func (r *Result) Markdown() string {
	var b strings.Builder
	h := r.Hypothesis
	fmt.Fprintf(&b, "# HYPO: %s — %s\n\n", h.Name, h.Title)
	fmt.Fprintf(&b, "**Status:** %s\n", r.Status)
	fmt.Fprintf(&b, "**Family:** %s\n", h.Family)
	fmt.Fprintf(&b, "**Seeds:** %d (%s)\n", len(h.Seeds), seedList(h.Seeds))
	fmt.Fprintf(&b, "**Method:** paired per-seed differences, Student-t %.0f%% CI, minimum-effect thresholds\n\n",
		h.Confidence*100)

	b.WriteString("## Hypothesis\n\n")
	fmt.Fprintf(&b, "> %s\n\n", h.Claim)

	b.WriteString("## Configurations\n\n")
	for _, cfg := range h.Configs {
		fmt.Fprintf(&b, "- `%s`: %s\n", cfg.Name, cfg.Describe())
	}
	b.WriteString("\n## Evidence\n\n")
	b.WriteString("| Comparison | Metric | Treatment mean | Control mean | Δ mean | CI | Effect size | Verdict |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, c := range r.Comparisons {
		v := c.Verdict
		name := c.Name
		if c.Exploratory {
			name += " (exploratory)"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | [%s, %s] | %s | %s |\n",
			name, c.Metric, f4(v.MeanTreat), f4(v.MeanCtrl), f4(v.MeanDiff),
			f4(v.CILo), f4(v.CIHi), effect(v.EffectSize), v.Status)
	}
	b.WriteString("\n")

	for _, c := range r.Comparisons {
		ctrl := c.Control
		if ctrl == "" {
			ctrl = fmt.Sprintf("baseline %s", f4(c.Baseline))
		}
		name := c.Name
		if c.Exploratory {
			name += " (exploratory — does not vote in the roll-up)"
		}
		fmt.Fprintf(&b, "### %s: `%s` vs `%s` (%s, direction %s, min effect %s)\n\n",
			name, c.Treatment, ctrl, c.Metric, c.Direction, f4(c.MinEffect))
		fmt.Fprintf(&b, "| Seed | %s | %s | Δ |\n|---|---|---|---|\n", c.Treatment, ctrl)
		for i, d := range c.Diffs {
			fmt.Fprintf(&b, "| %d | %s | %s | %s |\n",
				h.Seeds[i], f4(c.TreatmentValues[i]), f4(c.ControlValues[i]), f4(d))
		}
		v := c.Verdict
		fmt.Fprintf(&b, "\nΔ mean %s ± %s (sd), %.0f%% CI [%s, %s], paired effect size %s → **%s** (%s).\n",
			f4(v.MeanDiff), f4(v.StdDiff), h.Confidence*100, f4(v.CILo), f4(v.CIHi),
			effect(v.EffectSize), v.Status, v.Reason)
		if len(v.Trajectory) > 1 {
			fmt.Fprintf(&b, "Seed-widening trajectory (n=2..%d): %s.\n", v.N, statusList(v.Trajectory))
		}
		b.WriteString("\n")
	}

	b.WriteString("## Resolution\n\n")
	fmt.Fprintf(&b, "**%s** — %s\n", r.Status, resolution(r))
	return b.String()
}

// JSON renders the result as indented JSON (deterministic: the result
// holds no maps).
func (r *Result) JSON() (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// resolution summarises why the roll-up landed where it did (primary
// comparisons only — exploratory endpoints do not vote).
func resolution(r *Result) string {
	var confirmed, refuted, open []string
	for _, c := range r.Comparisons {
		if c.Exploratory {
			continue
		}
		switch c.Verdict.Status {
		case Confirmed:
			confirmed = append(confirmed, c.Name)
		case Refuted:
			refuted = append(refuted, c.Name)
		default:
			open = append(open, c.Name)
		}
	}
	switch r.Status {
	case Confirmed:
		return fmt.Sprintf("every comparison confirmed (%s).", strings.Join(confirmed, ", "))
	case Refuted:
		return fmt.Sprintf("refuted by %s.", strings.Join(refuted, ", "))
	default:
		if len(open) > 0 {
			return fmt.Sprintf("evidence does not resolve %s.", strings.Join(open, ", "))
		}
		return "no comparisons were judged."
	}
}

// f4 formats a float with four decimals; negative zero normalises to
// zero so reports cannot differ by sign-of-zero.
func f4(v float64) string {
	if v == 0 {
		v = 0
	}
	return fmt.Sprintf("%.4f", v)
}

// effect formats a paired effect size; zero-variance diffs have none.
func effect(d float64) string {
	if math.IsInf(d, 0) {
		return "n/a (zero variance)"
	}
	return fmt.Sprintf("%.2f", d)
}

func seedList(seeds []int64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, ", ")
}

func statusList(ss []Status) string {
	parts := make([]string, len(ss))
	for i, s := range ss {
		parts[i] = string(s)
	}
	return strings.Join(parts, " → ")
}
