package hypo

import (
	"math/rand"
	"strings"
	"testing"

	"dicer/internal/experiments"
)

// TestTrajectoryNoSilentFlips is the seed-widening property: judging
// every prefix of a growing seed set, a definitive status may only reach
// its opposite through an explicit Inconclusive step. The draws hover
// around the decision bound to maximise raw flips, so the smoothing is
// what the test exercises.
func TestTrajectoryNoSilentFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(11)
		diffs := make([]float64, n)
		// Mix regimes within one sequence: strong positive, strong
		// negative, and near-bound noise.
		for i := range diffs {
			switch rng.Intn(3) {
			case 0:
				diffs[i] = 1 + 0.1*rng.NormFloat64()
			case 1:
				diffs[i] = -1 + 0.1*rng.NormFloat64()
			default:
				diffs[i] = 0.1 * rng.NormFloat64()
			}
		}
		dir := Greater
		if rng.Intn(2) == 1 {
			dir = Less
		}
		minEffect := rng.Float64() * 0.5
		traj := Trajectory(diffs, dir, minEffect, 0.95)
		if len(traj) != n-1 {
			t.Fatalf("trajectory length %d for %d diffs", len(traj), n)
		}
		for i := 1; i < len(traj); i++ {
			a, b := traj[i-1], traj[i]
			if (a == Confirmed && b == Refuted) || (a == Refuted && b == Confirmed) {
				t.Fatalf("trial %d: silent flip %s -> %s in %v (diffs %v)", trial, a, b, traj, diffs)
			}
		}
		// Judge's final status must be the trajectory's last element.
		v := Judge(diffs, dir, minEffect, 0.95)
		if v.Status != traj[len(traj)-1] {
			t.Fatalf("trial %d: Judge status %s != trajectory tail %s", trial, v.Status, traj[len(traj)-1])
		}
	}
}

// TestTrajectoryFlipCoercion pins the rule on a hand-built conflict: a
// prefix that confirms followed by evidence that would rawly refute.
func TestTrajectoryFlipCoercion(t *testing.T) {
	// First three diffs identical and positive: zero variance, point CI,
	// Confirmed at every prefix. Then two large negative values drag the
	// raw verdict to Refuted.
	diffs := []float64{0.5, 0.5, 0.5, -8, -8.5}
	traj := Trajectory(diffs, Greater, 0.1, 0.95)
	if traj[0] != Confirmed || traj[1] != Confirmed {
		t.Fatalf("expected confirmed prefixes, got %v", traj)
	}
	for i := 1; i < len(traj); i++ {
		if traj[i-1] == Confirmed && traj[i] == Refuted {
			t.Fatalf("silent flip survived smoothing: %v", traj)
		}
	}
	v := Judge(diffs, Greater, 0.1, 0.95)
	if v.Status != traj[len(traj)-1] {
		t.Fatalf("Judge status %s != trajectory tail", v.Status)
	}
	if v.Status == Confirmed {
		t.Fatalf("conflicting evidence cannot stay Confirmed: %v", traj)
	}
}

func TestValidate(t *testing.T) {
	good := Hypothesis{
		Name:       "t",
		Seeds:      []int64{1, 2},
		Confidence: 0.95,
		Configs:    []Config{{Name: "a", Soak: &SoakSpec{Schedule: "storm"}}},
		Comparisons: []Comparison{{
			Name: "c", Metric: MetricHPDegradation, Treatment: "a",
			Baseline: 0.35, Direction: Less,
		}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid hypothesis rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Hypothesis)
		want   string
	}{
		{"one seed", func(h *Hypothesis) { h.Seeds = []int64{1} }, "at least 2 seeds"},
		{"unknown treatment", func(h *Hypothesis) { h.Comparisons[0].Treatment = "zz" }, "unknown config"},
		{"bad direction", func(h *Hypothesis) { h.Comparisons[0].Direction = "sideways" }, "direction"},
		{"negative effect", func(h *Hypothesis) { h.Comparisons[0].MinEffect = -1 }, "negative min effect"},
		{"no primaries", func(h *Hypothesis) { h.Comparisons[0].Exploratory = true }, "no primary"},
		{"both specs", func(h *Hypothesis) {
			h.Configs[0].Fleet = &FleetSpec{Scheduler: "random", Policy: "DICER"}
		}, "both fleet and soak"},
		{"soak plus multi-HP", func(h *Hypothesis) {
			h.Configs[0].MultiHP = &experiments.MultiHPSpec{M: 4, CLOSBudget: 4}
		}, "both soak and multi-HP"},
		{"no specs", func(h *Hypothesis) {
			h.Configs[0].Soak = nil
		}, "none of the fleet, soak or multi-HP"},
	}
	for _, c := range cases {
		h := good
		h.Seeds = append([]int64(nil), good.Seeds...)
		h.Configs = append([]Config(nil), good.Configs...)
		h.Comparisons = append([]Comparison(nil), good.Comparisons...)
		c.mutate(&h)
		err := h.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestRollupExploratory: exploratory comparisons are reported but never
// vote in the hypothesis status.
func TestRollupExploratory(t *testing.T) {
	mk := func(status Status, exploratory bool) ComparisonResult {
		return ComparisonResult{
			Comparison: Comparison{Exploratory: exploratory},
			Verdict:    Verdict{Status: status},
		}
	}
	cases := []struct {
		name string
		in   []ComparisonResult
		want Status
	}{
		{"all confirmed", []ComparisonResult{mk(Confirmed, false), mk(Confirmed, false)}, Confirmed},
		{"one refuted", []ComparisonResult{mk(Confirmed, false), mk(Refuted, false)}, Refuted},
		{"one open", []ComparisonResult{mk(Confirmed, false), mk(Inconclusive, false)}, Inconclusive},
		{"exploratory inconclusive ignored", []ComparisonResult{mk(Confirmed, false), mk(Inconclusive, true)}, Confirmed},
		{"exploratory refuted ignored", []ComparisonResult{mk(Confirmed, false), mk(Refuted, true)}, Confirmed},
		{"only exploratory", []ComparisonResult{mk(Confirmed, true)}, Inconclusive},
		{"empty", nil, Inconclusive},
	}
	for _, c := range cases {
		if got := rollup(c.in); got != c.want {
			t.Errorf("%s: rollup = %s, want %s", c.name, got, c.want)
		}
	}
}
