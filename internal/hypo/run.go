package hypo

import (
	"fmt"
	"runtime"

	"dicer/internal/chaos"
	"dicer/internal/core"
	"dicer/internal/experiments"
	"dicer/internal/fleet"
)

// Config is one named experimental configuration of a hypothesis:
// exactly one of Fleet, Soak or MultiHP is set. Every configuration runs
// once per seed of the hypothesis; the seed feeds the stochastic inputs
// (fleet arrival trace and random-scheduler stream, the chaos fault
// stream, or the multi-HP workload draw) while everything else stays
// fixed, so per-seed pairs are true replicates.
type Config struct {
	Name string `json:"name"`
	// Summary is a one-line description for reports (generated from the
	// spec when empty).
	Summary string     `json:"summary,omitempty"`
	Fleet   *FleetSpec `json:"fleet,omitempty"`
	Soak    *SoakSpec  `json:"soak,omitempty"`
	// MultiHP runs a single-node multi-HP consolidation
	// (experiments.Suite.RunMultiHP) once per seed; the spec's Seed field
	// is overridden by the hypothesis seed per replicate, so each seed
	// draws a different workload from the catalog.
	MultiHP *experiments.MultiHPSpec `json:"multihp,omitempty"`
}

func (c Config) validate() error {
	var set []string
	if c.Fleet != nil {
		set = append(set, "fleet")
	}
	if c.Soak != nil {
		set = append(set, "soak")
	}
	if c.MultiHP != nil {
		set = append(set, "multi-HP")
	}
	switch len(set) {
	case 0:
		return fmt.Errorf("none of the fleet, soak or multi-HP specs set")
	case 1:
		return nil
	default:
		return fmt.Errorf("both %s and %s specs set", set[0], set[1])
	}
}

// FleetSpec runs a multi-node cluster (internal/fleet) once per seed.
// The seed replaces both the arrival-stream seed and the random
// scheduler's seed, so replicates vary the open-loop load and the random
// baseline's choices together.
type FleetSpec struct {
	// Nodes / HorizonPeriods / QueueCap mirror experiments.FleetConfig;
	// zero values take the same defaults.
	Nodes          int `json:"nodes,omitempty"`
	HorizonPeriods int `json:"horizon_periods,omitempty"`
	QueueCap       int `json:"queue_cap,omitempty"`
	// Scheduler is the placement scheduler ("random", "least-loaded",
	// "headroom").
	Scheduler string `json:"scheduler"`
	// Policy is the node-local partitioning policy (UM, CT, DICER).
	Policy experiments.PolicyName `json:"policy"`
	// Arrivals drives the BE generator; its Seed field is overridden by
	// the hypothesis seed per replicate.
	Arrivals fleet.ArrivalConfig `json:"arrivals"`
	// DICER, when non-nil, overrides the controller configuration (for
	// ablation configs like no-saturation-sampling).
	DICER *core.Config `json:"dicer,omitempty"`
	// NodeChaos names a canned node fault schedule ("none", "node-freeze",
	// "node-loss", "node-storm"). The hypothesis seed seeds the schedule,
	// so replicates see different fault streams drawn from the same
	// process.
	NodeChaos string `json:"node_chaos,omitempty"`
	// Migration / Autoscale enable the fleet control loops with their
	// default parameters (SLO-burn BE migration, repartition-first
	// autoscaling).
	Migration bool `json:"migration,omitempty"`
	Autoscale bool `json:"autoscale,omitempty"`
}

// SoakSpec runs the chaos soak (experiments.Suite.Soak) once per seed:
// every workload under one fault schedule, extracting the worst HP
// degradation across workloads for that seed.
type SoakSpec struct {
	// Workloads to soak; empty means experiments.DefaultSoakWorkloads.
	Workloads []experiments.Workload `json:"workloads,omitempty"`
	// Schedule names the chaos fault schedule ("storm", "dropout", ...).
	Schedule string `json:"schedule"`
	// HorizonPeriods per run; 0 means the soak default (60).
	HorizonPeriods int `json:"horizon_periods,omitempty"`
}

// Describe returns the config's one-line summary for reports.
func (c Config) Describe() string {
	if c.Summary != "" {
		return c.Summary
	}
	if f := c.Fleet; f != nil {
		nodes, horizon, qcap := f.Nodes, f.HorizonPeriods, f.QueueCap
		if nodes == 0 {
			nodes = 4
		}
		if qcap == 0 {
			qcap = 32
		}
		arr := f.Arrivals
		ctl := "default"
		if f.DICER != nil {
			ctl = "custom"
			if f.DICER.DisableSaturationHandling {
				ctl = "no saturation handling"
			}
		}
		extras := ""
		if f.NodeChaos != "" && f.NodeChaos != "none" {
			extras += ", chaos " + f.NodeChaos
		}
		if f.Migration {
			extras += ", SLO-burn migration"
		}
		if f.Autoscale {
			extras += ", autoscaler"
		}
		return fmt.Sprintf("fleet: %d nodes x %d periods, scheduler %s, policy %s (controller %s), arrivals λ=%.1f/period mean-dur %.0f, queue cap %d%s",
			nodes, horizon, f.Scheduler, f.Policy, ctl, arr.RatePerPeriod, arr.MeanDurationPeriods, qcap, extras)
	}
	if m := c.MultiHP; m != nil {
		grouping := m.Grouping
		if grouping == "" {
			grouping = "clustered"
		}
		extras := ""
		if m.ReclusterEvery > 0 {
			extras = fmt.Sprintf(", recluster every %d", m.ReclusterEvery)
			if m.UsePhaseHints {
				extras += " with phase hints"
			}
		}
		return fmt.Sprintf("multi-HP: %d HP apps + %d BEs under %d CLOS ids, %s plan%s",
			m.M, m.BECount, m.CLOSBudget, grouping, extras)
	}
	if s := c.Soak; s != nil {
		n := len(s.Workloads)
		if n == 0 {
			n = len(experiments.DefaultSoakWorkloads())
		}
		horizon := s.HorizonPeriods
		if horizon == 0 {
			horizon = 60
		}
		return fmt.Sprintf("chaos soak: %d workloads x schedule %q, %d periods, full DICER loop with invariant checks",
			n, s.Schedule, horizon)
	}
	return "(empty config)"
}

// Runner executes hypotheses against one experiments.Suite. The suite's
// pooled runners and singleflight alone-run memo are shared across every
// (config, seed) cell, so multi-seed replication pays for each alone
// reference exactly once.
type Runner struct {
	Suite *experiments.Suite
	// Workers bounds concurrent cells; 0 means the suite's configured
	// worker count (GOMAXPROCS when that is 0 too).
	Workers int
}

// NewRunner wraps a suite.
func NewRunner(s *experiments.Suite) *Runner { return &Runner{Suite: s} }

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	if w := r.Suite.Config().Workers; w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes every configuration of h at every seed, extracts the
// metrics its comparisons reference, and judges each comparison. The
// result is deterministic in (hypothesis, suite config): cells run in
// parallel but land in (config, seed) order.
func (r *Runner) Run(h Hypothesis) (*Result, error) {
	if h.Confidence == 0 {
		h.Confidence = 0.95
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Hypothesis: h}

	// Which metrics does each config need? (Declaration order, deduped.)
	need := map[string][]Metric{}
	addNeed := func(cfg string, m Metric) {
		for _, have := range need[cfg] {
			if have == m {
				return
			}
		}
		need[cfg] = append(need[cfg], m)
	}
	for _, cmp := range h.Comparisons {
		addNeed(cmp.Treatment, cmp.Metric)
		if cmp.Control != "" {
			addNeed(cmp.Control, cmp.Metric)
		}
	}

	for _, cfg := range h.Configs {
		values, err := r.runConfig(cfg, h.Seeds, need[cfg.Name])
		if err != nil {
			return nil, fmt.Errorf("hypo: %s config %q: %w", h.Name, cfg.Name, err)
		}
		res.Samples = append(res.Samples, ConfigSamples{Config: cfg.Name, Metrics: values})
	}

	for _, cmp := range h.Comparisons {
		treat, ok := res.series(cmp.Treatment, cmp.Metric)
		if !ok {
			return nil, fmt.Errorf("hypo: %s comparison %q: no %s samples for %q", h.Name, cmp.Name, cmp.Metric, cmp.Treatment)
		}
		var ctrl []float64
		if cmp.Control != "" {
			if ctrl, ok = res.series(cmp.Control, cmp.Metric); !ok {
				return nil, fmt.Errorf("hypo: %s comparison %q: no %s samples for %q", h.Name, cmp.Name, cmp.Metric, cmp.Control)
			}
		} else {
			ctrl = make([]float64, len(treat))
			for i := range ctrl {
				ctrl[i] = cmp.Baseline
			}
		}
		diffs := PairedDiffs(treat, ctrl)
		v := Judge(diffs, cmp.Direction, cmp.MinEffect, h.Confidence)
		v.MeanTreat, v.MeanCtrl = Mean(treat), Mean(ctrl)
		res.Comparisons = append(res.Comparisons, ComparisonResult{
			Comparison:      cmp,
			TreatmentValues: treat,
			ControlValues:   ctrl,
			Diffs:           diffs,
			Verdict:         v,
		})
	}
	res.Status = rollup(res.Comparisons)
	return res, nil
}

// runConfig produces the config's metric series over the seed set.
func (r *Runner) runConfig(cfg Config, seeds []int64, metrics []Metric) ([]MetricSeries, error) {
	if len(metrics) == 0 {
		return nil, fmt.Errorf("no comparison references this config")
	}
	var perSeed [][]float64 // [seedIdx][metricIdx]
	var err error
	switch {
	case cfg.Fleet != nil:
		perSeed, err = r.runFleet(*cfg.Fleet, seeds, metrics)
	case cfg.Soak != nil:
		perSeed, err = r.runSoak(*cfg.Soak, seeds, metrics)
	case cfg.MultiHP != nil:
		perSeed, err = r.runMultiHP(*cfg.MultiHP, seeds, metrics)
	}
	if err != nil {
		return nil, err
	}
	out := make([]MetricSeries, len(metrics))
	for mi, m := range metrics {
		vals := make([]float64, len(seeds))
		for si := range seeds {
			vals[si] = perSeed[si][mi]
		}
		out[mi] = MetricSeries{Metric: m, Values: vals}
	}
	return out, nil
}

// runFleet executes one cluster per seed across the experiments
// executor (results land in seed order regardless of worker count),
// extracting the requested metrics. Alone-run references resolve
// through the suite's singleflight memo.
func (r *Runner) runFleet(spec FleetSpec, seeds []int64, metrics []Metric) ([][]float64, error) {
	scfg := r.Suite.Config()
	nodes, horizon, qcap := spec.Nodes, spec.HorizonPeriods, spec.QueueCap
	if nodes == 0 {
		nodes = 4
	}
	if horizon == 0 {
		horizon = scfg.SweepHorizonPeriods
	}
	if qcap == 0 {
		qcap = 32
	}
	dicer := scfg.DICER
	if spec.DICER != nil {
		dicer = *spec.DICER
	}

	out := make([][]float64, len(seeds))
	if err := experiments.Execute(len(seeds), r.workers(), func(i int) error {
		arr := spec.Arrivals
		arr.Seed = seeds[i]
		sched, err := chaos.NodeScheduleByName(spec.NodeChaos, seeds[i], nodes, horizon)
		if err != nil {
			return err
		}
		c, err := fleet.New(fleet.Config{
			Nodes:          nodes,
			Machine:        scfg.Machine,
			Policy:         string(spec.Policy),
			DICER:          dicer,
			PeriodSec:      scfg.PeriodSec,
			StepsPerPeriod: scfg.StepsPerPeriod,
			HorizonPeriods: horizon,
			Arrivals:       arr,
			Scheduler:      spec.Scheduler,
			SchedSeed:      seeds[i],
			QueueCap:       qcap,
			NodeChaos:      sched,
			Migration:      fleet.MigrationConfig{Enabled: spec.Migration},
			Autoscale:      fleet.AutoscaleConfig{Enabled: spec.Autoscale},
			AloneIPC:       r.Suite.AloneIPC,
		})
		if err != nil {
			return err
		}
		fres, err := c.Run()
		if err != nil {
			return err
		}
		out[i], err = extractFleet(fres, metrics)
		return err
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// extractFleet pulls the requested metrics from a fleet result.
func extractFleet(res fleet.Result, metrics []Metric) ([]float64, error) {
	out := make([]float64, len(metrics))
	for i, m := range metrics {
		switch m {
		case MetricFleetEFU:
			out[i] = res.FleetEFU
		case MetricSLOViolationRate:
			if np := res.Nodes * res.Periods; np > 0 {
				out[i] = float64(res.SLOViolationPeriods) / float64(np)
			}
		case MetricRejectRate:
			out[i] = res.RejectRate
		case MetricP95QueueWait:
			out[i] = res.P95QueueWait
		default:
			return nil, fmt.Errorf("metric %q not extractable from a fleet run", m)
		}
	}
	return out, nil
}

// runMultiHP executes one multi-HP consolidation per seed across the
// experiments executor; the hypothesis seed replaces the spec's workload
// seed, so replicates draw different application mixes from the catalog
// while the plan policy and budgets stay fixed.
func (r *Runner) runMultiHP(spec experiments.MultiHPSpec, seeds []int64, metrics []Metric) ([][]float64, error) {
	out := make([][]float64, len(seeds))
	if err := experiments.Execute(len(seeds), r.workers(), func(i int) error {
		run := spec
		run.Seed = seeds[i]
		res, err := r.Suite.RunMultiHP(run)
		if err != nil {
			return err
		}
		row := make([]float64, len(metrics))
		for j, m := range metrics {
			switch m {
			case MetricMaxSlowdown:
				row[j] = res.MaxSlowdown
			case MetricSLOConformance:
				row[j] = res.Conformance
			case MetricConsolidationEFU:
				row[j] = res.EFU
			default:
				return fmt.Errorf("metric %q not extractable from a multi-HP run", m)
			}
		}
		out[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// runSoak executes the soak matrix once per seed set (the Soak call runs
// all seeds of a schedule in one pass, computing each workload's
// fault-free baseline exactly once) and extracts, per seed, the worst HP
// degradation across workloads. The degradation bound is lifted to 1 so
// an over-bound run becomes evidence instead of an error — judging the
// bound is this package's job.
func (r *Runner) runSoak(spec SoakSpec, seeds []int64, metrics []Metric) ([][]float64, error) {
	for _, m := range metrics {
		if m != MetricHPDegradation {
			return nil, fmt.Errorf("metric %q not extractable from a soak run", m)
		}
	}
	sched, err := chaos.ScheduleByName(spec.Schedule)
	if err != nil {
		return nil, err
	}
	soak, err := r.Suite.Soak(experiments.SoakConfig{
		Workloads:        spec.Workloads,
		Schedules:        []chaos.Config{sched},
		Seeds:            seeds,
		HorizonPeriods:   spec.HorizonPeriods,
		MaxHPDegradation: 1,
	})
	if err != nil {
		return nil, err
	}
	worst := map[int64]float64{}
	for _, run := range soak.Runs {
		if run.Degradation > worst[run.Seed] {
			worst[run.Seed] = run.Degradation
		}
	}
	out := make([][]float64, len(seeds))
	for i, seed := range seeds {
		row := make([]float64, len(metrics))
		for j := range metrics {
			row[j] = worst[seed]
		}
		out[i] = row
	}
	return out, nil
}
