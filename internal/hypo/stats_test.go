package hypo

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeanStdDev(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %g, want 0", m)
	}
	if sd := StdDev([]float64{3}); sd != 0 {
		t.Fatalf("StdDev of one value = %g, want 0", sd)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %g, want 5", m)
	}
	// Sample stddev with n-1: sum of squares 32, /7, sqrt.
	want := math.Sqrt(32.0 / 7.0)
	if sd := StdDev(xs); math.Abs(sd-want) > 1e-12 {
		t.Fatalf("StdDev = %g, want %g", sd, want)
	}
}

func TestPairedDiffs(t *testing.T) {
	d := PairedDiffs([]float64{3, 5, 7}, []float64{1, 1, 10})
	want := []float64{2, 4, -3}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("diffs = %v, want %v", d, want)
		}
	}
}

func TestCohenD(t *testing.T) {
	if d := CohenD([]float64{1, 1, 1}); !math.IsInf(d, 1) {
		t.Fatalf("zero-variance positive diffs: d = %g, want +Inf", d)
	}
	if d := CohenD([]float64{-2, -2}); !math.IsInf(d, -1) {
		t.Fatalf("zero-variance negative diffs: d = %g, want -Inf", d)
	}
	if d := CohenD([]float64{0, 0}); d != 0 {
		t.Fatalf("all-zero diffs: d = %g, want 0", d)
	}
	xs := []float64{1, 2, 3}
	if d := CohenD(xs); math.Abs(d-2) > 1e-12 {
		t.Fatalf("d = %g, want 2 (mean 2, sd 1)", d)
	}
}

// TestTQuantileKnownValues pins the t inverse-CDF against standard table
// values for the two-sided 95% critical points (p = 0.975).
func TestTQuantileKnownValues(t *testing.T) {
	cases := []struct {
		nu   float64
		want float64
	}{
		{1, 12.7062},
		{2, 4.3027},
		{4, 2.7764},
		{9, 2.2622},
		{29, 2.0452},
		{100, 1.9840},
	}
	for _, c := range cases {
		got := TQuantile(0.975, c.nu)
		if math.Abs(got-c.want) > 5e-4 {
			t.Errorf("TQuantile(0.975, %g) = %.4f, want %.4f", c.nu, got, c.want)
		}
		// Symmetry: the lower tail is the negation.
		if lo := TQuantile(0.025, c.nu); math.Abs(lo+got) > 1e-9 {
			t.Errorf("TQuantile(0.025, %g) = %.4f, want %.4f", c.nu, lo, -got)
		}
	}
	if q := TQuantile(0.5, 7); q != 0 {
		t.Errorf("median quantile = %g, want 0", q)
	}
}

// TestTCDFRoundTrip checks quantile∘cdf ≈ identity across the range the
// judge actually uses.
func TestTCDFRoundTrip(t *testing.T) {
	for _, nu := range []float64{1, 2, 4, 9, 30} {
		for _, p := range []float64{0.025, 0.1, 0.5, 0.9, 0.975, 0.995} {
			q := TQuantile(p, nu)
			if back := tCDF(q, nu); math.Abs(back-p) > 1e-9 {
				t.Errorf("tCDF(TQuantile(%g, %g)) = %g", p, nu, back)
			}
		}
	}
}

// TestTIntervalCoverage draws many small Gaussian samples and checks the
// 95% t-interval covers the true mean at roughly the nominal rate. The
// generator is seeded, so the observed coverage is deterministic.
func TestTIntervalCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const (
		trials = 2000
		mu     = 1.0
		sigma  = 0.5
		n      = 5
	)
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = mu + sigma*rng.NormFloat64()
		}
		lo, hi := TInterval(xs, 0.95)
		if lo <= mu && mu <= hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.93 || rate > 0.97 {
		t.Fatalf("95%% interval covered the true mean in %.1f%% of %d trials", rate*100, trials)
	}
}

func TestTIntervalDegenerate(t *testing.T) {
	if lo, hi := TInterval([]float64{3}, 0.95); lo != 3 || hi != 3 {
		t.Fatalf("single value interval = [%g, %g], want point", lo, hi)
	}
	if lo, hi := TInterval([]float64{2, 2, 2}, 0.95); lo != 2 || hi != 2 {
		t.Fatalf("zero-variance interval = [%g, %g], want point", lo, hi)
	}
}

// TestJudgeShouldConfirm: diffs clearly on the claimed side with margin.
func TestJudgeShouldConfirm(t *testing.T) {
	diffs := []float64{0.9, 1.1, 1.0, 1.05, 0.95}
	v := Judge(diffs, Greater, 0.5, 0.95)
	if v.Status != Confirmed {
		t.Fatalf("status = %s (%s), want Confirmed", v.Status, v.Reason)
	}
	if v.CILo <= 0.5 {
		t.Fatalf("CI lo = %g, expected clear of the min effect", v.CILo)
	}
	// The same evidence under the opposite direction must refute.
	if v := Judge(diffs, Less, 0.5, 0.95); v.Status != Refuted {
		t.Fatalf("opposite direction: status = %s, want Refuted", v.Status)
	}
}

// TestJudgeShouldRefute: the oriented CI sits entirely short of the
// required effect.
func TestJudgeShouldRefute(t *testing.T) {
	diffs := []float64{-0.9, -1.1, -1.0, -1.05, -0.95}
	v := Judge(diffs, Greater, 0.1, 0.95)
	if v.Status != Refuted {
		t.Fatalf("status = %s (%s), want Refuted", v.Status, v.Reason)
	}
	// A positive but too-small effect is also refutable when the CI
	// excludes the threshold.
	small := []float64{0.010, 0.012, 0.011, 0.009, 0.010}
	v = Judge(small, Greater, 0.5, 0.95)
	if v.Status != Refuted {
		t.Fatalf("small-effect status = %s (%s), want Refuted", v.Status, v.Reason)
	}
}

func TestJudgeInconclusive(t *testing.T) {
	diffs := []float64{-1, 1, -0.5, 0.5, 0.2}
	if v := Judge(diffs, Greater, 0.1, 0.95); v.Status != Inconclusive {
		t.Fatalf("straddling CI: status = %s, want Inconclusive", v.Status)
	}
}

// TestJudgeSingleReplicateNeverDefinitive: n = 1 has no variance
// estimate, so no verdict.
func TestJudgeSingleReplicateNeverDefinitive(t *testing.T) {
	if v := Judge([]float64{5}, Greater, 0.1, 0.95); v.Status != Inconclusive {
		t.Fatalf("n=1 status = %s, want Inconclusive", v.Status)
	}
	if v := Judge(nil, Greater, 0.1, 0.95); v.Status != Inconclusive {
		t.Fatalf("n=0 status = %s, want Inconclusive", v.Status)
	}
}

// TestJudgeZeroVariance: identical diffs collapse the interval to the
// point mean, which is still definitive evidence on its side.
func TestJudgeZeroVariance(t *testing.T) {
	diffs := []float64{0.25, 0.25, 0.25}
	if v := Judge(diffs, Greater, 0.1, 0.95); v.Status != Confirmed {
		t.Fatalf("zero-variance confirm: %s", v.Status)
	}
	if v := Judge(diffs, Less, 0.1, 0.95); v.Status != Refuted {
		t.Fatalf("zero-variance refute: %s", v.Status)
	}
}
