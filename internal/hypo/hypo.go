package hypo

import (
	"fmt"
	"math"
)

// Status is a hypothesis or comparison verdict.
type Status string

// The three verdicts. Inconclusive means the evidence neither places the
// effect on the claimed side (with the required margin) nor excludes it.
const (
	Confirmed    Status = "Confirmed"
	Refuted      Status = "Refuted"
	Inconclusive Status = "Inconclusive"
)

// Direction states which side of the control the treatment metric must
// fall on for the claim to hold.
type Direction string

// The two directions.
const (
	Greater Direction = "greater"
	Less    Direction = "less"
)

// Metric names a scalar extracted from one configuration's run.
type Metric string

// Metrics the run layer extracts.
const (
	// MetricFleetEFU is the fleet-wide effective utilisation averaged
	// over the horizon (fleet.Result.FleetEFU).
	MetricFleetEFU Metric = "fleet_efu"
	// MetricSLOViolationRate is SLO-violation (node, period) cells as a
	// fraction of all node-periods.
	MetricSLOViolationRate Metric = "slo_violation_rate"
	// MetricRejectRate is admission rejections over arrivals.
	MetricRejectRate Metric = "reject_rate"
	// MetricP95QueueWait is the p95 periods from arrival to placement.
	MetricP95QueueWait Metric = "p95_queue_wait"
	// MetricHPDegradation is the worst chaos-soak HP IPC degradation
	// (relative to the fault-free run) across the config's workloads.
	MetricHPDegradation Metric = "hp_degradation"
	// MetricMaxSlowdown is the worst per-app HP slowdown of a multi-HP
	// consolidation run — the fairness endpoint the clustered planner
	// optimises.
	MetricMaxSlowdown Metric = "max_slowdown"
	// MetricSLOConformance is the fraction of HP apps meeting their SLO
	// at the end of a multi-HP consolidation run.
	MetricSLOConformance Metric = "slo_conformance"
	// MetricConsolidationEFU is the Eq. 1 EFU over every application of
	// a multi-HP consolidation run.
	MetricConsolidationEFU Metric = "consolidation_efu"
)

// Comparison is one falsifiable sub-claim of a hypothesis: the metric of
// the treatment configuration, paired per seed against either a control
// configuration or a fixed baseline constant, must fall on the claimed
// side by at least MinEffect.
type Comparison struct {
	// Name labels the comparison in reports, e.g. "fleet-efu".
	Name string `json:"name"`
	// Metric is the scalar compared.
	Metric Metric `json:"metric"`
	// Treatment and Control name configurations of the hypothesis.
	// An empty Control compares against the Baseline constant instead.
	Treatment string  `json:"treatment"`
	Control   string  `json:"control,omitempty"`
	Baseline  float64 `json:"baseline,omitempty"`
	// Direction is the claimed side: Greater means treatment > control.
	Direction Direction `json:"direction"`
	// MinEffect is the minimum mean effect (in the metric's units, on
	// the claimed side) for the claim to count as confirmed; a CI bound
	// showing the effect cannot reach it refutes the claim.
	MinEffect float64 `json:"min_effect"`
	// Exploratory marks a secondary endpoint: it is judged and reported
	// like any other comparison but excluded from the hypothesis
	// roll-up, the pre-registration discipline for effects worth
	// measuring that the claim does not stand or fall on.
	Exploratory bool `json:"exploratory,omitempty"`
}

// Hypothesis is a declared, falsifiable claim over named configurations.
type Hypothesis struct {
	// Name is the registry slug, e.g. "headroom-beats-random".
	Name string `json:"name"`
	// Title is the headline, e.g. "Headroom placement beats random ...".
	Title string `json:"title"`
	// Family classifies the claim (H377 style), e.g. "Cross-scheduler
	// comparative".
	Family string `json:"family"`
	// Claim is the full prose statement quoted in the report.
	Claim string `json:"claim"`
	// Seeds is the replication set; every configuration runs once per
	// seed and comparisons are paired by seed.
	Seeds []int64 `json:"seeds"`
	// Confidence is the two-sided CI level used to judge, default 0.95.
	Confidence float64 `json:"confidence"`
	// Configs are the named configurations compared.
	Configs []Config `json:"configs"`
	// Comparisons are the sub-claims; the hypothesis is Confirmed only
	// when every primary (non-exploratory) one confirms, and Refuted
	// when any primary one refutes.
	Comparisons []Comparison `json:"comparisons"`
}

// Validate reports structural errors: missing configs, unknown names,
// too few seeds.
func (h Hypothesis) Validate() error {
	if h.Name == "" {
		return fmt.Errorf("hypo: hypothesis without a name")
	}
	if len(h.Seeds) < 2 {
		return fmt.Errorf("hypo: %s needs at least 2 seeds for intervals, got %d", h.Name, len(h.Seeds))
	}
	if h.Confidence <= 0 || h.Confidence >= 1 {
		return fmt.Errorf("hypo: %s confidence %g outside (0,1)", h.Name, h.Confidence)
	}
	primaries := 0
	for _, cmp := range h.Comparisons {
		if !cmp.Exploratory {
			primaries++
		}
	}
	if primaries == 0 {
		return fmt.Errorf("hypo: %s declares no primary comparisons", h.Name)
	}
	byName := map[string]bool{}
	for _, c := range h.Configs {
		if c.Name == "" {
			return fmt.Errorf("hypo: %s has an unnamed config", h.Name)
		}
		if byName[c.Name] {
			return fmt.Errorf("hypo: %s duplicates config %q", h.Name, c.Name)
		}
		if err := c.validate(); err != nil {
			return fmt.Errorf("hypo: %s config %q: %w", h.Name, c.Name, err)
		}
		byName[c.Name] = true
	}
	for _, cmp := range h.Comparisons {
		if !byName[cmp.Treatment] {
			return fmt.Errorf("hypo: %s comparison %q treats unknown config %q", h.Name, cmp.Name, cmp.Treatment)
		}
		if cmp.Control != "" && !byName[cmp.Control] {
			return fmt.Errorf("hypo: %s comparison %q controls unknown config %q", h.Name, cmp.Name, cmp.Control)
		}
		if cmp.Direction != Greater && cmp.Direction != Less {
			return fmt.Errorf("hypo: %s comparison %q direction %q", h.Name, cmp.Name, cmp.Direction)
		}
		if cmp.MinEffect < 0 {
			return fmt.Errorf("hypo: %s comparison %q negative min effect", h.Name, cmp.Name)
		}
	}
	return nil
}

// Verdict is the judged outcome of one comparison's paired differences.
type Verdict struct {
	N          int     `json:"n"`
	MeanTreat  float64 `json:"mean_treatment"`
	MeanCtrl   float64 `json:"mean_control"`
	MeanDiff   float64 `json:"mean_diff"`
	StdDiff    float64 `json:"std_diff"`
	CILo       float64 `json:"ci_lo"`
	CIHi       float64 `json:"ci_hi"`
	EffectSize float64 `json:"effect_size"` // paired Cohen's d on raw diffs
	Status     Status  `json:"status"`
	// Reason is the one-line decision rationale.
	Reason string `json:"reason"`
	// Trajectory is the smoothed per-prefix status over seeds 2..N: the
	// verdict the comparison would have carried at each smaller seed
	// set. Widening the seed set can only move a definitive status to
	// its opposite through Inconclusive (see Trajectory).
	Trajectory []Status `json:"trajectory"`
}

// oriented maps a raw difference onto the claim's axis: positive means
// "on the claimed side".
func oriented(d float64, dir Direction) float64 {
	if dir == Less {
		return -d
	}
	return d
}

// judgeOne decides a single status from the diffs (no smoothing): the
// confidence interval of the paired differences must sit entirely on the
// claimed side with the mean effect at or above MinEffect to confirm,
// and entirely below MinEffect (on the claim's axis) to refute.
func judgeOne(diffs []float64, dir Direction, minEffect, confidence float64) (Verdict, Status) {
	v := Verdict{
		N:        len(diffs),
		MeanDiff: Mean(diffs),
		StdDiff:  StdDev(diffs),
	}
	v.CILo, v.CIHi = TInterval(diffs, confidence)
	v.EffectSize = CohenD(diffs)

	if len(diffs) == 0 {
		return v, Inconclusive
	}
	om := oriented(v.MeanDiff, dir)
	oLo, oHi := oriented(v.CILo, dir), oriented(v.CIHi, dir)
	if oLo > oHi {
		oLo, oHi = oHi, oLo
	}
	if len(diffs) == 1 {
		// A single replicate has no variance estimate; never definitive.
		return v, Inconclusive
	}
	switch {
	case oLo > 0 && om >= minEffect:
		return v, Confirmed
	case oHi < minEffect:
		return v, Refuted
	default:
		return v, Inconclusive
	}
}

// Trajectory judges every prefix of diffs (n = 2..len(diffs)) and applies
// the evidence-widening rule: a definitive status may not flip straight
// to its opposite when one more seed lands — such a transition is coerced
// to Inconclusive, making the conflict explicit instead of silent. The
// returned slice is the smoothed per-prefix status sequence; element i
// covers the first i+2 diffs.
func Trajectory(diffs []float64, dir Direction, minEffect, confidence float64) []Status {
	if len(diffs) < 2 {
		return nil
	}
	out := make([]Status, 0, len(diffs)-1)
	prev := Status("")
	for n := 2; n <= len(diffs); n++ {
		_, raw := judgeOne(diffs[:n], dir, minEffect, confidence)
		if (prev == Confirmed && raw == Refuted) || (prev == Refuted && raw == Confirmed) {
			raw = Inconclusive
		}
		out = append(out, raw)
		prev = raw
	}
	return out
}

// Judge evaluates one comparison's paired differences into a Verdict.
// The final status is the last element of the smoothed Trajectory, so a
// verdict reached by widening a seed set can never be a silent flip of
// the verdict a prefix carried.
func Judge(diffs []float64, dir Direction, minEffect, confidence float64) Verdict {
	v, raw := judgeOne(diffs, dir, minEffect, confidence)
	v.Trajectory = Trajectory(diffs, dir, minEffect, confidence)
	v.Status = raw
	if n := len(v.Trajectory); n > 0 {
		v.Status = v.Trajectory[n-1]
	}
	v.Reason = reason(v, raw, dir, minEffect)
	return v
}

// reason builds the one-line decision rationale.
func reason(v Verdict, raw Status, dir Direction, minEffect float64) string {
	side := "above"
	if dir == Less {
		side = "below"
	}
	switch {
	case v.N < 2:
		return fmt.Sprintf("only %d replicate(s): no interval, cannot judge", v.N)
	case v.Status != raw:
		return fmt.Sprintf("evidence conflict: widening the seed set flipped a definitive verdict (now raw %s); held at Inconclusive", raw)
	case v.Status == Confirmed:
		return fmt.Sprintf("CI [%.4f, %.4f] entirely %s control with mean effect %.4f >= %.4f", v.CILo, v.CIHi, side, math.Abs(v.MeanDiff), minEffect)
	case v.Status == Refuted:
		return fmt.Sprintf("CI [%.4f, %.4f] excludes an effect of %.4f %s control", v.CILo, v.CIHi, minEffect, side)
	default:
		return fmt.Sprintf("CI [%.4f, %.4f] straddles the decision bound", v.CILo, v.CIHi)
	}
}

// ComparisonResult pairs a comparison with its samples and verdict.
type ComparisonResult struct {
	Comparison
	// TreatmentValues / ControlValues are the per-seed metric samples in
	// seed order. ControlValues repeats the baseline constant for
	// baseline comparisons.
	TreatmentValues []float64 `json:"treatment_values"`
	ControlValues   []float64 `json:"control_values"`
	Diffs           []float64 `json:"diffs"`
	Verdict         Verdict   `json:"verdict"`
}

// Result is a fully executed and judged hypothesis.
type Result struct {
	Hypothesis Hypothesis `json:"hypothesis"`
	// Samples holds every configuration's extracted metric series in
	// config order.
	Samples []ConfigSamples `json:"samples"`
	// Comparisons are judged in declaration order.
	Comparisons []ComparisonResult `json:"comparisons"`
	// Status is the roll-up over primary comparisons: Confirmed iff
	// every one confirmed; Refuted if any refuted; Inconclusive
	// otherwise. Exploratory comparisons do not vote.
	Status Status `json:"status"`
}

// ConfigSamples is one configuration's extracted metrics.
type ConfigSamples struct {
	Config  string         `json:"config"`
	Metrics []MetricSeries `json:"metrics"`
}

// MetricSeries is one metric's per-seed values (seed order).
type MetricSeries struct {
	Metric Metric    `json:"metric"`
	Values []float64 `json:"values"`
}

// series returns the values for a metric of a config.
func (r *Result) series(config string, m Metric) ([]float64, bool) {
	for _, cs := range r.Samples {
		if cs.Config != config {
			continue
		}
		for _, ms := range cs.Metrics {
			if ms.Metric == m {
				return ms.Values, true
			}
		}
	}
	return nil, false
}

// rollup combines primary comparison statuses into the hypothesis
// status; exploratory comparisons are reported but do not vote.
func rollup(comparisons []ComparisonResult) Status {
	st := Confirmed
	primaries := 0
	for _, c := range comparisons {
		if c.Exploratory {
			continue
		}
		primaries++
		switch c.Verdict.Status {
		case Refuted:
			return Refuted
		case Inconclusive:
			st = Inconclusive
		}
	}
	if primaries == 0 {
		return Inconclusive
	}
	return st
}
