package hypo

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file tests for the FINDINGS renderers: a small fixed Result
// fixture is rendered and compared byte-for-byte against
// testdata/*.golden. Regenerate after an intentional format change with:
//
//	go test ./internal/hypo -run TestGolden -update

var update = flag.Bool("update", false, "rewrite golden files with current renderer output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: output drifted from golden file (re-run with -update if intended)\n--- got ---\n%s--- want ---\n%s",
			name, got, want)
	}
}

// fixtureResult builds a judged Result by hand: one confirmed primary,
// one inconclusive exploratory endpoint, deterministic numbers.
func fixtureResult() *Result {
	h := Hypothesis{
		Name:       "fixture",
		Title:      "Treatment beats control on the fixture metric",
		Family:     "Renderer fixture",
		Claim:      "The treatment holds a higher fleet EFU than the control.",
		Seeds:      []int64{42, 43, 44},
		Confidence: 0.95,
		Configs: []Config{
			{Name: "treatment", Fleet: &FleetSpec{Scheduler: "headroom", Policy: "DICER",
				HorizonPeriods: 40, Arrivals: consolidationArrivals()}},
			{Name: "control", Fleet: &FleetSpec{Scheduler: "random", Policy: "DICER",
				HorizonPeriods: 40, Arrivals: consolidationArrivals()}},
		},
		Comparisons: []Comparison{
			{Name: "fleet-efu", Metric: MetricFleetEFU, Treatment: "treatment",
				Control: "control", Direction: Greater, MinEffect: 0.01},
			{Name: "slo-rate", Metric: MetricSLOViolationRate, Treatment: "treatment",
				Control: "control", Direction: Less, MinEffect: 0.005, Exploratory: true},
		},
	}
	res := &Result{Hypothesis: h}
	res.Samples = []ConfigSamples{
		{Config: "treatment", Metrics: []MetricSeries{
			{Metric: MetricFleetEFU, Values: []float64{0.45, 0.47, 0.46}},
			{Metric: MetricSLOViolationRate, Values: []float64{0.27, 0.30, 0.28}},
		}},
		{Config: "control", Metrics: []MetricSeries{
			{Metric: MetricFleetEFU, Values: []float64{0.40, 0.41, 0.42}},
			{Metric: MetricSLOViolationRate, Values: []float64{0.29, 0.28, 0.30}},
		}},
	}
	for _, cmp := range h.Comparisons {
		treat, _ := res.series(cmp.Treatment, cmp.Metric)
		ctrl, _ := res.series(cmp.Control, cmp.Metric)
		diffs := PairedDiffs(treat, ctrl)
		v := Judge(diffs, cmp.Direction, cmp.MinEffect, h.Confidence)
		v.MeanTreat, v.MeanCtrl = Mean(treat), Mean(ctrl)
		res.Comparisons = append(res.Comparisons, ComparisonResult{
			Comparison: cmp, TreatmentValues: treat, ControlValues: ctrl,
			Diffs: diffs, Verdict: v,
		})
	}
	res.Status = rollup(res.Comparisons)
	return res
}

func TestGoldenMarkdown(t *testing.T) {
	checkGolden(t, "fixture_md", fixtureResult().Markdown())
}

func TestGoldenJSON(t *testing.T) {
	body, err := fixtureResult().JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture_json", body)
}

// TestRenderDeterminism: two independent render passes over two
// independently built results are byte-identical.
func TestRenderDeterminism(t *testing.T) {
	a, b := fixtureResult(), fixtureResult()
	if a.Markdown() != b.Markdown() {
		t.Fatal("markdown rendering is not deterministic")
	}
	ja, _ := a.JSON()
	jb, _ := b.JSON()
	if ja != jb {
		t.Fatal("JSON rendering is not deterministic")
	}
}
