// Package hypo is a hypothesis-driven experiment harness with
// statistical rigor: a hypothesis is a declared, falsifiable claim —
// named configurations compared, a seed set, a metric, a direction and a
// minimum effect size — executed through the experiments.Suite / fleet
// machinery with per-seed replication, then judged with paired mean,
// stddev, Student-t confidence intervals and effect size into an
// explicit Confirmed / Refuted / Inconclusive status rendered as a
// FINDINGS-style report (markdown and JSON, byte-deterministic for a
// fixed seed set).
package hypo

import "math"

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator); 0 for
// fewer than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// PairedDiffs returns treatment[i] - control[i]; the slices must be the
// same length (the per-seed pairing is what removes the between-seed
// variance from the comparison).
func PairedDiffs(treatment, control []float64) []float64 {
	n := len(treatment)
	if len(control) < n {
		n = len(control)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = treatment[i] - control[i]
	}
	return out
}

// CohenD returns the paired effect size d_z = mean(diffs)/stddev(diffs).
// It is +Inf/-Inf when the diffs have zero variance but a non-zero mean,
// and 0 when both are zero.
func CohenD(diffs []float64) float64 {
	m, sd := Mean(diffs), StdDev(diffs)
	if sd == 0 {
		if m > 0 {
			return math.Inf(1)
		}
		if m < 0 {
			return math.Inf(-1)
		}
		return 0
	}
	return m / sd
}

// TInterval returns the two-sided confidence interval for the mean of xs
// at the given confidence level (e.g. 0.95), using the Student-t
// distribution with len(xs)-1 degrees of freedom. With fewer than two
// values, or zero variance, the interval collapses to the point mean.
func TInterval(xs []float64, confidence float64) (lo, hi float64) {
	m := Mean(xs)
	if len(xs) < 2 {
		return m, m
	}
	sd := StdDev(xs)
	if sd == 0 {
		return m, m
	}
	t := TQuantile(0.5+confidence/2, float64(len(xs)-1))
	half := t * sd / math.Sqrt(float64(len(xs)))
	return m - half, m + half
}

// betacf evaluates the continued fraction for the regularized incomplete
// beta function (modified Lentz).
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// regIncBeta returns the regularized incomplete beta function I_x(a, b).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lab, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	bt := math.Exp(lab - la - lb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return bt * betacf(a, b, x) / a
	}
	return 1 - bt*betacf(b, a, 1-x)/b
}

// tCDF returns P(T <= t) for Student's t with nu degrees of freedom.
func tCDF(t, nu float64) float64 {
	if t == 0 {
		return 0.5
	}
	p := 0.5 * regIncBeta(nu/2, 0.5, nu/(nu+t*t))
	if t > 0 {
		return 1 - p
	}
	return p
}

// TQuantile returns the p-quantile of Student's t with nu degrees of
// freedom by bisection on tCDF — deterministic and accurate to well below
// any reporting precision.
func TQuantile(p, nu float64) float64 {
	if p == 0.5 {
		return 0
	}
	target := p
	if p < 0.5 {
		target = 1 - p
	}
	lo, hi := 0.0, 1.0
	for tCDF(hi, nu) < target && hi < 1e12 {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if tCDF(mid, nu) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	q := (lo + hi) / 2
	if p < 0.5 {
		return -q
	}
	return q
}
