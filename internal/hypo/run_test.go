package hypo

import (
	"testing"

	"dicer/internal/experiments"
)

func newTestRunner(t *testing.T) *Runner {
	t.Helper()
	suite, err := experiments.NewSuite(experiments.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewRunner(suite)
}

// TestCrossLayerFleetAgreement pins the hypo run layer to the existing
// single-seed experiments.FleetSuite comparison: at the shared seed the
// headroom cell must reproduce the suite's result exactly (the headroom
// scheduler ignores SchedSeed, so the two layers build identical
// clusters), and the headroom-vs-random EFU direction must agree.
func TestCrossLayerFleetAgreement(t *testing.T) {
	r := newTestRunner(t)

	arrivals := consolidationArrivals()
	arrivals.Seed = 42
	cells, err := r.Suite.FleetSuite(experiments.FleetConfig{
		Nodes:          4,
		HorizonPeriods: 80,
		Arrivals:       arrivals,
		Schedulers:     []string{"random", "headroom"},
		Policies:       []experiments.PolicyName{experiments.DICER},
		QueueCap:       40,
	})
	if err != nil {
		t.Fatal(err)
	}
	suiteEFU := map[string]float64{}
	for _, c := range cells {
		suiteEFU[c.Scheduler] = c.Result.FleetEFU
	}

	h, err := ByName("headroom-beats-random")
	if err != nil {
		t.Fatal(err)
	}
	h.Seeds = []int64{42, 43} // Judge needs an interval; seed 42 is the pin.
	res, err := r.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	headroom, ok := res.series("headroom", MetricFleetEFU)
	if !ok {
		t.Fatal("no headroom fleet_efu series")
	}
	random, ok := res.series("random", MetricFleetEFU)
	if !ok {
		t.Fatal("no random fleet_efu series")
	}

	// Exact equality: same arrival trace, same deterministic scheduler,
	// same suite memo — any drift means the run layers diverged.
	if headroom[0] != suiteEFU["headroom"] {
		t.Errorf("headroom cell diverged: hypo %.6f vs FleetSuite %.6f", headroom[0], suiteEFU["headroom"])
	}

	// Direction agreement at the shared seed (the random cells use
	// different scheduler streams, so only the sign is comparable).
	suiteDir := suiteEFU["headroom"] > suiteEFU["random"]
	hypoDir := headroom[0] > random[0]
	if suiteDir != hypoDir {
		t.Errorf("headroom-vs-random EFU direction disagrees: FleetSuite %v (%.4f vs %.4f), hypo %v (%.4f vs %.4f)",
			suiteDir, suiteEFU["headroom"], suiteEFU["random"], hypoDir, headroom[0], random[0])
	}
}

// TestRegisteredDefinitive is the acceptance gate: every registered
// hypothesis runs at its default seed set, and the headline claims —
// headroom-vs-random and the UM/CT/DICER ordering — must resolve to an
// explicit Confirmed or Refuted, not Inconclusive.
func TestRegisteredDefinitive(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run")
	}
	r := newTestRunner(t)
	regs := Registered()
	if len(regs) < 4 {
		t.Fatalf("registry has %d hypotheses, want >= 4", len(regs))
	}
	mustResolve := map[string]bool{
		"headroom-beats-random":                  true,
		"policy-ordering-survives-consolidation": true,
	}
	statuses := map[string]Status{}
	for _, h := range regs {
		if len(h.Seeds) < 5 {
			t.Errorf("%s runs %d seeds, want >= 5", h.Name, len(h.Seeds))
		}
		res, err := r.Run(h)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		statuses[h.Name] = res.Status
	}
	for name := range mustResolve {
		switch statuses[name] {
		case Confirmed, Refuted:
		default:
			t.Errorf("%s resolved %q, acceptance requires an explicit Confirmed/Refuted", name, statuses[name])
		}
	}
}

// TestRunnerDeterminism: two independent end-to-end runs of the same
// hypothesis (parallel cells and all) render byte-identical reports.
func TestRunnerDeterminism(t *testing.T) {
	r := newTestRunner(t)
	h, err := ByName("headroom-beats-random")
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	if a.Markdown() != b.Markdown() {
		t.Fatal("markdown reports differ across identical runs")
	}
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if ja != jb {
		t.Fatal("JSON reports differ across identical runs")
	}
}

// TestRunUnknownMetric: a soak config only yields HP degradation.
func TestRunUnknownMetric(t *testing.T) {
	r := newTestRunner(t)
	h := Hypothesis{
		Name:       "bad-metric",
		Seeds:      []int64{1, 2},
		Confidence: 0.95,
		Configs:    []Config{{Name: "s", Soak: &SoakSpec{Schedule: "storm"}}},
		Comparisons: []Comparison{{
			Name: "c", Metric: MetricFleetEFU, Treatment: "s",
			Baseline: 0.5, Direction: Greater,
		}},
	}
	if _, err := r.Run(h); err == nil {
		t.Fatal("expected an error extracting fleet_efu from a soak run")
	}
}

// TestArrivalSeedIsReplicated guards the replication contract: the
// hypothesis seed must reach the arrival stream (different seeds,
// different traces, different results).
func TestArrivalSeedIsReplicated(t *testing.T) {
	r := newTestRunner(t)
	spec := FleetSpec{
		Scheduler: "headroom",
		Policy:    experiments.DICER,
		Arrivals:  consolidationArrivals(),
	}
	vals, err := r.runFleet(spec, []int64{42, 43, 44}, []Metric{MetricFleetEFU})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0][0] == vals[1][0] && vals[1][0] == vals[2][0] {
		t.Fatalf("fleet EFU identical across seeds (%v): the seed is not reaching the arrival stream", vals)
	}
	// And the override must not leak: the spec's own Seed field is
	// ignored in favour of the per-replicate seed.
	spec.Arrivals.Seed = 7
	again, err := r.runFleet(spec, []int64{42}, []Metric{MetricFleetEFU})
	if err != nil {
		t.Fatal(err)
	}
	if again[0][0] != vals[0][0] {
		t.Fatalf("spec-level arrival seed leaked into the replicate: %.6f vs %.6f", again[0][0], vals[0][0])
	}
}
