package membw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultLinkValid(t *testing.T) {
	if err := DefaultLink().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadLinks(t *testing.T) {
	cases := []Link{
		{CapacityGBps: 0, Knee: 0.5, Gamma: 1, MaxInflation: 2},
		{CapacityGBps: 10, Knee: 0, Gamma: 1, MaxInflation: 2},
		{CapacityGBps: 10, Knee: 1, Gamma: 1, MaxInflation: 2},
		{CapacityGBps: 10, Knee: 0.5, Gamma: -1, MaxInflation: 2},
		{CapacityGBps: 10, Knee: 0.5, Gamma: 1, MaxInflation: 0.5},
	}
	for i, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, l)
		}
	}
}

func TestInflationBelowKneeIsUnity(t *testing.T) {
	l := DefaultLink()
	for _, u := range []float64{0, 0.1, 0.3, l.Knee} {
		if got := l.Inflation(u); got != 1 {
			t.Fatalf("inflation(%g) = %g, want 1", u, got)
		}
	}
}

func TestInflationGrowsPastKnee(t *testing.T) {
	l := DefaultLink()
	prev := 1.0
	for u := l.Knee; u <= 1.5; u += 0.05 {
		f := l.Inflation(u)
		if f < prev {
			t.Fatalf("inflation fell at u=%g: %g < %g", u, f, prev)
		}
		prev = f
	}
	if prev <= 1 {
		t.Fatal("inflation never grew past the knee")
	}
}

func TestInflationCapped(t *testing.T) {
	l := DefaultLink()
	if got := l.Inflation(100); got != l.MaxInflation {
		t.Fatalf("inflation(100) = %g, want cap %g", got, l.MaxInflation)
	}
}

func TestSolveBelowKnee(t *testing.T) {
	l := DefaultLink()
	u, f := l.Solve(func(float64) float64 { return 10 })
	if f != 1 {
		t.Fatalf("light load inflation = %g, want 1", f)
	}
	if math.Abs(u-10/l.CapacityGBps) > 1e-9 {
		t.Fatalf("light load utilisation = %g", u)
	}
}

func TestSolveFixedPointConsistency(t *testing.T) {
	l := DefaultLink()
	// Elastic demand: halves as latency doubles.
	demand := func(f float64) float64 { return 120 / f }
	u, f := l.Solve(demand)
	// At the solution, demand at the solved inflation must reproduce the
	// solved utilisation.
	if got := demand(f) / l.CapacityGBps; math.Abs(got-u) > 1e-3 {
		t.Fatalf("fixed point inconsistent: u=%g but demand(f)/cap=%g", u, got)
	}
	if f <= 1 {
		t.Fatal("oversubscribed link should inflate latency")
	}
}

func TestSolveInelasticDemand(t *testing.T) {
	l := DefaultLink()
	u, f := l.Solve(func(float64) float64 { return 200 })
	if math.Abs(u-200/l.CapacityGBps) > 1e-9 {
		t.Fatalf("inelastic utilisation = %g", u)
	}
	if f != l.MaxInflation {
		t.Fatalf("hugely oversubscribed inelastic load inflation = %g, want cap", f)
	}
}

// Property: for any non-increasing demand curve, Solve returns a
// self-consistent (u, f) with f = Inflation(u).
func TestPropertySolveSelfConsistent(t *testing.T) {
	f := func(d0raw, elastRaw uint8) bool {
		l := DefaultLink()
		d0 := float64(d0raw%150) + 1
		elast := float64(elastRaw%100)/100 + 0.01
		demand := func(infl float64) float64 { return d0 / math.Pow(infl, elast) }
		u, infl := l.Solve(demand)
		if math.Abs(infl-l.Inflation(u)) > 1e-6 {
			return false
		}
		// Residual of the fixed point should be tiny (or we're at a
		// bracket endpoint below knee / at cap).
		res := math.Abs(demand(infl)/l.CapacityGBps - u)
		return res < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesGbpsConversions(t *testing.T) {
	// 1 GB over 1 s = 8 Gb/s.
	if got := BytesToGbps(1e9, 1); math.Abs(got-8) > 1e-12 {
		t.Fatalf("BytesToGbps(1e9,1) = %g, want 8", got)
	}
	if got := BytesToGbps(1e9, 0); got != 0 {
		t.Fatalf("zero-interval bandwidth = %g, want 0", got)
	}
	if got := GbpsToBytesPerSec(8); math.Abs(got-1e9) > 1e-3 {
		t.Fatalf("GbpsToBytesPerSec(8) = %g, want 1e9", got)
	}
	// Round trip.
	if got := BytesToGbps(GbpsToBytesPerSec(42), 1); math.Abs(got-42) > 1e-9 {
		t.Fatalf("round trip = %g, want 42", got)
	}
}

func TestSaturated(t *testing.T) {
	if Saturated(49.9, 50) {
		t.Fatal("49.9 should not be saturated at threshold 50")
	}
	if !Saturated(50.1, 50) {
		t.Fatal("50.1 should be saturated at threshold 50")
	}
}

func TestLoadedLatency(t *testing.T) {
	l := DefaultLink()
	if got := l.LoadedLatency(180, 0.3); got != 180 {
		t.Fatalf("unloaded latency = %g, want 180", got)
	}
	if got := l.LoadedLatency(180, 1.2); got <= 180 {
		t.Fatalf("loaded latency = %g, want > 180", got)
	}
}

func TestEqualShareUnderSubscribed(t *testing.T) {
	got := EqualShare(100, []float64{10, 20, 30})
	want := []float64{10, 20, 30}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("undersubscribed share[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestEqualShareMaxMin(t *testing.T) {
	// Demands 5, 50, 50 on capacity 60: small demand satisfied, the rest
	// split the remainder.
	got := EqualShare(60, []float64{5, 50, 50})
	if math.Abs(got[0]-5) > 1e-9 {
		t.Fatalf("small demand got %g, want 5", got[0])
	}
	if math.Abs(got[1]-27.5) > 1e-9 || math.Abs(got[2]-27.5) > 1e-9 {
		t.Fatalf("large demands got %g/%g, want 27.5 each", got[1], got[2])
	}
}

func TestEqualShareEmpty(t *testing.T) {
	if got := EqualShare(10, nil); len(got) != 0 {
		t.Fatalf("empty demands returned %v", got)
	}
}

// Property: EqualShare allocations never exceed demand, never exceed
// capacity in total, and fully use capacity when oversubscribed.
func TestPropertyEqualShare(t *testing.T) {
	f := func(demandsRaw []uint8, capRaw uint8) bool {
		if len(demandsRaw) == 0 {
			return true
		}
		if len(demandsRaw) > 12 {
			demandsRaw = demandsRaw[:12]
		}
		demands := make([]float64, len(demandsRaw))
		var total float64
		for i, d := range demandsRaw {
			demands[i] = float64(d%50) + 0.5
			total += demands[i]
		}
		capacity := float64(capRaw%100) + 1
		got := EqualShare(capacity, demands)
		var sum float64
		for i, g := range got {
			if g > demands[i]+1e-9 || g < 0 {
				return false
			}
			sum += g
		}
		if sum > capacity+1e-6 && sum > total+1e-6 {
			return false
		}
		if total > capacity {
			// Oversubscribed: capacity should be (nearly) fully used.
			return sum > capacity-1e-6
		}
		return math.Abs(sum-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilisation(t *testing.T) {
	if got := Utilisation(34.15, 68.3); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("utilisation = %g, want 0.5", got)
	}
	if got := Utilisation(10, 0); !math.IsInf(got, 1) {
		t.Fatalf("zero-capacity utilisation = %g, want +Inf", got)
	}
}

func BenchmarkSolve(b *testing.B) {
	l := DefaultLink()
	demand := func(f float64) float64 { return 120 / f }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Solve(demand)
	}
}
