// Package membw models the shared memory link of a multicore server: a
// finite-bandwidth resource whose effective access latency inflates as
// offered load approaches and exceeds capacity.
//
// The model captures the phenomenon at the heart of the DICER paper's Key
// Observation 2: squeezing best-effort applications into a single LLC way
// explodes their miss traffic, saturates the memory link, and inflates the
// latency of *every* memory access — including the high-priority
// application's — so a "generous" HP cache allocation can end up hurting HP.
//
// Latency inflation is a convex function of utilisation with a knee:
//
//	inflation(u) = 1                                  u <= knee
//	             = 1 + gamma * ((u-knee)/(1-knee))^2  u  > knee, capped
//
// Offered load itself depends on inflation (slower cores issue fewer
// misses), so the system simulator solves a fixed point; Solve implements
// that with a monotone bisection that is guaranteed to converge.
package membw

import (
	"fmt"
	"math"
)

// Link describes a memory link.
type Link struct {
	// CapacityGBps is the peak deliverable bandwidth in 10^9 bits per
	// second, matching the units of the paper's Table 1 (68.3 Gbps).
	CapacityGBps float64
	// Knee is the utilisation fraction beyond which queueing delay becomes
	// visible. Real DDR controllers show a knee around 65-80 % of peak.
	Knee float64
	// Gamma scales how fast latency grows past the knee.
	Gamma float64
	// MaxInflation caps the latency multiplier; a saturated link delivers
	// its traffic eventually, it does not deadlock.
	MaxInflation float64
}

// DefaultLink returns a link with the paper's 68.3 Gbps capacity and
// saturation behaviour tuned so that ~2x oversubscription roughly doubles
// memory latency, consistent with measured DDR4 loaded-latency curves.
func DefaultLink() Link {
	return Link{CapacityGBps: 68.3, Knee: 0.65, Gamma: 6, MaxInflation: 10}
}

// Validate reports configuration errors.
func (l Link) Validate() error {
	if l.CapacityGBps <= 0 {
		return fmt.Errorf("membw: non-positive capacity %g", l.CapacityGBps)
	}
	if l.Knee <= 0 || l.Knee >= 1 {
		return fmt.Errorf("membw: knee %g outside (0,1)", l.Knee)
	}
	if l.Gamma < 0 {
		return fmt.Errorf("membw: negative gamma %g", l.Gamma)
	}
	if l.MaxInflation < 1 {
		return fmt.Errorf("membw: max inflation %g < 1", l.MaxInflation)
	}
	return nil
}

// Inflation returns the memory-latency multiplier at utilisation u, where
// u is offered load divided by capacity (may exceed 1).
func (l Link) Inflation(u float64) float64 {
	if u <= l.Knee {
		return 1
	}
	x := (u - l.Knee) / (1 - l.Knee)
	f := 1 + l.Gamma*x*x
	if f > l.MaxInflation {
		return l.MaxInflation
	}
	return f
}

// Demand maps a latency-inflation factor to the total offered load (in
// GBps) the agents would generate under it. Implementations must be
// non-increasing in the inflation factor: slower memory means slower cores
// means less traffic.
type Demand func(inflation float64) (totalGBps float64)

// Solve finds the self-consistent utilisation point: a u such that
// demand(Inflation(u))/capacity == u. Because demand is non-increasing in
// inflation and Inflation is non-decreasing in u, g(u) = demand(...)/cap is
// non-increasing, so g has a unique fixed point which bisection brackets.
// It returns the equilibrium utilisation and inflation factor.
func (l Link) Solve(demand Demand) (u, inflation float64) {
	// Upper bracket: utilisation if latency never inflated.
	hi := demand(1) / l.CapacityGBps
	if hi <= l.Knee {
		return hi, 1 // below the knee there is nothing to solve
	}
	lo := demand(l.MaxInflation) / l.CapacityGBps
	if lo >= hi {
		// Demand insensitive to latency (e.g. fixed-rate agents): the
		// operating point is simply the uninflated demand.
		return hi, l.Inflation(hi)
	}
	// Bisect on u in [lo, hi] for the root of h(u) = g(u) - u, where
	// h(lo) >= 0 and h(hi) <= 0.
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		g := demand(l.Inflation(mid)) / l.CapacityGBps
		if g > mid {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-9 {
			break
		}
	}
	u = (lo + hi) / 2
	return u, l.Inflation(u)
}

// BytesToGbps converts bytes transferred over seconds to 10^9 bits/second.
func BytesToGbps(bytes, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return bytes * 8 / seconds / 1e9
}

// GbpsToBytesPerSec converts 10^9 bits/second to bytes/second.
func GbpsToBytesPerSec(gbps float64) float64 { return gbps * 1e9 / 8 }

// Saturated reports whether measured total bandwidth exceeds the given
// threshold (the paper's MemBW_threshold, 50 Gbps in Table 1).
func Saturated(totalGbps, thresholdGbps float64) bool {
	return totalGbps > thresholdGbps
}

// LoadedLatency returns the effective memory latency in cycles for a base
// (unloaded) latency at utilisation u.
func (l Link) LoadedLatency(baseCycles, u float64) float64 {
	return baseCycles * l.Inflation(u)
}

// EqualShare splits a bandwidth capacity fairly when demand exceeds
// supply: each agent gets min(demand_i, fairShare) with unused share
// redistributed (max-min fairness). Returned slice matches demands order.
// It is a utility for callers that need per-agent achieved bandwidth past
// saturation; below saturation every agent achieves its demand.
func EqualShare(capacity float64, demands []float64) []float64 {
	out := make([]float64, len(demands))
	if len(demands) == 0 {
		return out
	}
	total := 0.0
	for _, d := range demands {
		total += d
	}
	if total <= capacity {
		copy(out, demands)
		return out
	}
	// Max-min fairness via iterative water-filling.
	remainingCap := capacity
	active := make([]int, 0, len(demands))
	for i := range demands {
		active = append(active, i)
	}
	for len(active) > 0 {
		share := remainingCap / float64(len(active))
		progressed := false
		next := active[:0]
		for _, i := range active {
			if demands[i] <= share+1e-12 {
				out[i] = demands[i]
				remainingCap -= demands[i]
				progressed = true
			} else {
				next = append(next, i)
			}
		}
		active = next
		if !progressed {
			for _, i := range active {
				out[i] = share
			}
			break
		}
	}
	return out
}

// Utilisation is a helper guarding against division by zero.
func Utilisation(totalGbps, capacityGbps float64) float64 {
	if capacityGbps <= 0 {
		return math.Inf(1)
	}
	return totalGbps / capacityGbps
}
