package fleet

import (
	"bytes"
	"reflect"
	"testing"
)

// The multi-HP fleet extension is pinned from both sides: HPsPerNode 1
// must reproduce the legacy single-HP cluster byte-for-byte, and
// HPsPerNode > 1 must run the grouped controller on every node with
// coherent heartbeats.

func multiHPFleetConfig(hpsPerNode int) Config {
	return Config{
		Nodes:          2,
		HorizonPeriods: 12,
		HPsPerNode:     hpsPerNode,
		Arrivals:       ArrivalConfig{Seed: 5, RatePerPeriod: 2, MeanDurationPeriods: 6},
	}
}

// TestHPsPerNodeDefaultByteIdentical: setting HPsPerNode to its default
// explicitly changes nothing — trace bytes and summary are identical to
// the zero-value config. This is the compatibility contract that lets
// every existing fleet golden stand.
func TestHPsPerNodeDefaultByteIdentical(t *testing.T) {
	run := func(hpsPerNode int) (string, Result) {
		var buf bytes.Buffer
		cfg := multiHPFleetConfig(hpsPerNode)
		cfg.Trace = &buf
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), res
	}
	implicitTrace, implicitRes := run(0)
	explicitTrace, explicitRes := run(1)
	if implicitTrace != explicitTrace {
		t.Fatal("HPsPerNode=1 trace differs from the legacy default")
	}
	if !reflect.DeepEqual(implicitRes, explicitRes) {
		t.Fatalf("HPsPerNode=1 result differs: %+v vs %+v", explicitRes, implicitRes)
	}
}

// TestMultiHPFleetRuns: three HPs per node under the grouped controller,
// BE jobs still placed on the remaining cores, heartbeats reporting the
// group structure.
func TestMultiHPFleetRuns(t *testing.T) {
	var buf bytes.Buffer
	cfg := multiHPFleetConfig(3)
	cfg.Trace = &buf
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FleetEFU <= 0 {
		t.Fatalf("fleet EFU %g", res.FleetEFU)
	}
	if res.Placements == 0 {
		t.Fatal("no BE placements on multi-HP nodes")
	}
	hdr, recs, err := ReadClusterTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.HPsPerNode != 3 {
		t.Fatalf("header HPsPerNode = %d, want 3", hdr.HPsPerNode)
	}
	for _, rec := range recs {
		for _, hb := range rec.Nodes {
			if hb.HPGroups < 1 {
				t.Fatalf("period %d node %d reports %d HP groups", rec.Period, hb.Node, hb.HPGroups)
			}
			if hb.HPNorm <= 0 || hb.HPNorm > 1.5 {
				t.Fatalf("period %d node %d worst HP norm %g", rec.Period, hb.Node, hb.HPNorm)
			}
			if hb.BECount > c.cfg.Machine.Cores-3 {
				t.Fatalf("node %d runs %d BEs with only %d free cores", hb.Node, hb.BECount, c.cfg.Machine.Cores-3)
			}
		}
	}
	// Each node's free-core accounting must reflect the extra HPs.
	for _, n := range c.nodes {
		if free := n.FreeCores(); free != c.cfg.Machine.Cores-3-n.BECount() {
			t.Fatalf("node %d free cores %d with %d BEs", n.ID(), free, n.BECount())
		}
	}
}

// TestMultiHPRequiresDICER: the grouped controller is the only policy
// that can run several HPs; UM/CT nodes must refuse.
func TestMultiHPRequiresDICER(t *testing.T) {
	cfg := multiHPFleetConfig(2)
	cfg.Policy = "CT"
	if _, err := New(cfg); err == nil {
		t.Fatal("CT policy accepted on a multi-HP node")
	}
}

// TestHeadroomGroupPressurePenalty: all else equal, the headroom
// scheduler avoids the node whose HP groups are overcommitted.
func TestHeadroomGroupPressurePenalty(t *testing.T) {
	c, err := New(multiHPFleetConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	job := &Job{Profile: c.nodes[0].cfg.HPs[0]}
	calm := c.nodes[0].view(0)
	calm.ID = 1
	pressured := calm
	pressured.ID = 0
	pressured.HPGroupPressure = 0.8

	idx, ok := (HeadroomScheduler{}).Pick(job, []NodeView{pressured, calm})
	if !ok {
		t.Fatal("no node picked")
	}
	if idx != 1 {
		t.Fatalf("scheduler picked the pressured node (idx %d)", idx)
	}
	// Zero pressure ties break to the lower ID, proving the penalty (not
	// ordering) decided above.
	pressured.HPGroupPressure = 0
	idx, _ = (HeadroomScheduler{}).Pick(job, []NodeView{pressured, calm})
	if idx != 0 {
		t.Fatalf("tie-break sanity: picked %d, want 0", idx)
	}
}
