package fleet

import (
	"fmt"

	"dicer/internal/slo"
)

// MigrationConfig parameterises SLO-burn-driven BE migration. The node
// controller (CAT way partitioning) is the first line of defence for an
// HP's SLO; when it is not enough — the node's multi-window burn-rate
// alert fires — the fleet acts, evicting the node's heaviest BE jobs
// back into the admission queue for re-placement elsewhere through the
// normal bounded-retry path. Hysteresis is layered three deep so a node
// is never thrashed: the alerter's own clear-hold, a per-node eviction
// cooldown, and a placement quarantine that keeps evicted load from
// bouncing straight back.
type MigrationConfig struct {
	// Enabled turns the migration engine on. The zero value keeps the
	// fleet static and its traces byte-identical.
	Enabled bool `json:"enabled"`
	// Alert is the per-node burn-rate rule. Zero value means
	// slo.DefaultAlertConfig.
	Alert slo.AlertConfig `json:"alert"`
	// MaxEvict bounds evictions per node per migration decision.
	// Default 2.
	MaxEvict int `json:"max_evict"`
	// CooldownPeriods is the minimum spacing between two migration
	// decisions on the same node. Default 10.
	CooldownPeriods int `json:"cooldown_periods"`
	// QuarantinePeriods keeps a just-evicted node out of the placement
	// candidate set, so its own evictees (and new arrivals) cannot land
	// back on it while it recovers. Default 10.
	QuarantinePeriods int `json:"quarantine_periods"`
	// BackoffPeriods delays an evicted job's next placement attempt.
	// Default 1.
	BackoffPeriods int `json:"backoff_periods"`
}

// withDefaults fills unset fields in place (only when enabled, so a
// zero config stays zero and static headers stay byte-identical).
func (m *MigrationConfig) withDefaults() {
	if !m.Enabled {
		return
	}
	if m.Alert.Budget == 0 && len(m.Alert.Windows) == 0 {
		m.Alert = slo.DefaultAlertConfig()
	}
	if m.MaxEvict == 0 {
		m.MaxEvict = 2
	}
	if m.CooldownPeriods == 0 {
		m.CooldownPeriods = 10
	}
	if m.QuarantinePeriods == 0 {
		m.QuarantinePeriods = 10
	}
	if m.BackoffPeriods == 0 {
		m.BackoffPeriods = 1
	}
}

// validate reports configuration errors.
func (m MigrationConfig) validate() error {
	if !m.Enabled {
		return nil
	}
	if err := m.Alert.Validate(); err != nil {
		return err
	}
	if m.MaxEvict < 1 {
		return fmt.Errorf("fleet: migration max evict %d < 1", m.MaxEvict)
	}
	if m.CooldownPeriods < 1 {
		return fmt.Errorf("fleet: migration cooldown %d < 1", m.CooldownPeriods)
	}
	if m.QuarantinePeriods < 0 {
		return fmt.Errorf("fleet: negative migration quarantine %d", m.QuarantinePeriods)
	}
	if m.BackoffPeriods < 1 {
		return fmt.Errorf("fleet: migration backoff %d < 1", m.BackoffPeriods)
	}
	return nil
}

// migrateLocked is the per-period migration pass, run at the top of the
// step on the previous periods' alert state. For each node whose alert
// is firing and whose cooldown has expired, it evicts up to MaxEvict BE
// jobs — heaviest predicted bandwidth first, ties to the lower core —
// back into the queue with backoff, then quarantines the node against
// placements. Jobs at the placement-attempt bound are never evicted
// (migration must not be a path to dropping work), and eviction stops
// rather than overflow the admission queue.
func (c *Cluster) migrateLocked(p int, rec *ClusterRecord) {
	m := &c.cfg.Migration
	for i, n := range c.nodes {
		if n.lost || n.retired || n.Frozen(p) || n.beCount == 0 {
			continue
		}
		if !c.alerters[i].Firing() || p < c.migNext[i] {
			continue
		}
		var jobIDs []int
		for len(jobIDs) < m.MaxEvict && len(c.queue) < c.cfg.QueueCap {
			beWays := n.beWays()
			bestCore := -1
			bestScore := 0.0
			for core := n.hpCount; core < len(n.jobs); core++ {
				j := n.jobs[core]
				if j == nil || j.Attempts >= c.cfg.MaxPlaceAttempts {
					continue
				}
				s := PredictJobGbps(c.cfg.Machine, j.Profile, beWays, n.beCount)
				if bestCore < 0 || s > bestScore {
					bestCore, bestScore = core, s
				}
			}
			if bestCore < 0 {
				break
			}
			j := n.evict(bestCore)
			j.NotBefore = p + m.BackoffPeriods
			c.queue = append(c.queue, j)
			jobIDs = append(jobIDs, j.ID)
		}
		if len(jobIDs) == 0 {
			continue
		}
		c.quarUntil[i] = p + m.QuarantinePeriods
		c.migNext[i] = p + m.CooldownPeriods
		rec.Evicted += len(jobIDs)
		c.res.Evicted += len(jobIDs)
		c.res.Migrations++
		burns := c.alerters[i].Burns()
		rec.Events = append(rec.Events, FleetEvent{
			Cause:  CauseMigration,
			Node:   n.ID(),
			Jobs:   jobIDs,
			Detail: fmt.Sprintf("burn=%.2f/%.2f be=%d", burns[0], burns[len(burns)-1], n.beCount),
		})
	}
}
