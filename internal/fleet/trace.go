package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceSchema identifies the cluster trace format. The first line of a
// trace is a TraceHeader carrying this tag; every following line is one
// ClusterRecord. Marshalling goes through obs.LineWriter, so field order
// is struct order and the byte stream is deterministic.
const TraceSchema = "dicer-fleet/v1"

// TraceHeader is the first line of a cluster trace: everything needed to
// regenerate the run (the arrival trace is a pure function of Arrivals,
// node chaos of NodeChaos+seed parameters recorded by name).
type TraceHeader struct {
	Schema         string  `json:"schema"`
	Nodes          int     `json:"nodes"`
	CoresPerNode   int     `json:"cores_per_node"`
	Policy         string  `json:"policy"`
	Scheduler      string  `json:"scheduler"`
	SchedSeed      int64   `json:"sched_seed,omitempty"`
	PeriodSec      float64 `json:"period_sec"`
	StepsPerPeriod int     `json:"steps_per_period"`
	HorizonPeriods int     `json:"horizon_periods"`
	SLO            float64 `json:"slo"`
	// LinkGbps is each node's memory-link capacity, for link
	// utilisation diagnostics over the heartbeats' bandwidth readings.
	LinkGbps float64 `json:"link_gbps,omitempty"`
	QueueCap int     `json:"queue_cap"`
	// HPsPerNode is recorded only for multi-HP fleets; legacy single-HP
	// traces omit it and stay byte-identical.
	HPsPerNode int           `json:"hps_per_node,omitempty"`
	HPs        []string      `json:"hps"`
	Arrivals   ArrivalConfig `json:"arrivals"`
	NodeChaos  string        `json:"node_chaos,omitempty"`
	// Autoscale / Migration / Forensics record the control loops' and
	// flight recorder's parameters when enabled; static fleets omit
	// them and stay byte-identical.
	Autoscale *AutoscaleConfig `json:"autoscale,omitempty"`
	Migration *MigrationConfig `json:"migration,omitempty"`
	Forensics *ForensicsConfig `json:"forensics,omitempty"`
}

// Causes of fleet-level control events, the decision provenance of the
// orchestration layer's trace stream.
const (
	// CauseMigration marks BE evictions off a node whose SLO burn-rate
	// alert is firing.
	CauseMigration = "slo-burn-migration"
	// CauseScaleUp marks nodes added by the autoscaler.
	CauseScaleUp = "autoscale-up"
	// CauseScaleDown marks a node drained (detail "drain") or removed
	// after draining empty (detail "retire").
	CauseScaleDown = "autoscale-down"
	// CauseRepack marks the repartition-first action: drains cancelled
	// and node cache plans re-clustered in place of added capacity.
	CauseRepack = "repack"
)

// FleetEvent is one control decision of the orchestration layer,
// recorded in the period it took effect.
type FleetEvent struct {
	// Cause is one of the Cause* constants.
	Cause string `json:"cause"`
	// Node is the acted-on node, or -1 for fleet-level actions.
	Node int `json:"node"`
	// Jobs lists affected job IDs (evictions).
	Jobs []int `json:"jobs,omitempty"`
	// Detail carries cause-specific context (burn rates, node counts).
	Detail string `json:"detail,omitempty"`
}

// ClusterRecord is one monitoring period of the whole cluster: the
// admission/placement bookkeeping of the period, the aggregate health
// numbers, and every node's heartbeat (sorted by node ID; frozen and
// lost nodes get synthesised heartbeats so the stream stays dense).
type ClusterRecord struct {
	Period int `json:"period"`

	Arrivals int `json:"arrivals"`
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	Placed   int `json:"placed"`
	Requeued int `json:"requeued"`
	Dropped  int `json:"dropped"`
	Done     int `json:"done"`

	QueueLen int `json:"queue_len"`
	Running  int `json:"running"`

	Freezes int `json:"freezes,omitempty"`
	Losses  int `json:"losses,omitempty"`

	// Evicted counts BE jobs migrated off burning nodes this period;
	// Quarantined the healthy nodes the migration engine is keeping out
	// of the placement candidate set; NodesLive is the fleet size net of
	// retired nodes (recorded only when the autoscaler runs, so static
	// traces are unchanged). Incidents counts forensic bundles sealed
	// this period (flight recorder armed only).
	Evicted     int `json:"evicted,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	NodesLive   int `json:"nodes_live,omitempty"`
	Incidents   int `json:"incidents,omitempty"`

	// SLOViolations counts live nodes whose HP missed its SLO this
	// period; FleetEFU is Σ norm-IPC over every running process divided
	// by total fleet capacity (lost and frozen capacity earns zero;
	// retired capacity leaves the denominator).
	SLOViolations int     `json:"slo_violations"`
	FleetEFU      float64 `json:"fleet_efu"`

	// Events are the period's control decisions, in decision order
	// (migrations, then autoscaling).
	Events []FleetEvent `json:"events,omitempty"`

	Nodes []Heartbeat `json:"nodes"`
}

// ReadClusterTrace parses a cluster trace written by Cluster.Run.
func ReadClusterTrace(r io.Reader) (TraceHeader, []ClusterRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var hdr TraceHeader
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, err
		}
		return hdr, nil, fmt.Errorf("fleet: empty trace")
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("fleet: bad trace header: %w", err)
	}
	if hdr.Schema != TraceSchema {
		return hdr, nil, fmt.Errorf("fleet: trace schema %q, want %q", hdr.Schema, TraceSchema)
	}
	var recs []ClusterRecord
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec ClusterRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return hdr, recs, fmt.Errorf("fleet: bad record %d: %w", len(recs), err)
		}
		recs = append(recs, rec)
	}
	return hdr, recs, sc.Err()
}
