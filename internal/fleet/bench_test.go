package fleet

import (
	"testing"
)

// BenchmarkFleetStep measures one cluster monitoring period end to end —
// admission, placement, concurrent node stepping, aggregation — on a
// loaded 4-node fleet. The cluster is rebuilt when the horizon runs out
// (setup cost excluded via timer pauses).
func BenchmarkFleetStep(b *testing.B) {
	mk := func() *Cluster {
		c, err := New(Config{
			Nodes:          4,
			HorizonPeriods: 1 << 20,
			Arrivals:       ArrivalConfig{Seed: 1, RatePerPeriod: 2, MeanDurationPeriods: 10},
		})
		if err != nil {
			b.Fatal(err)
		}
		// Warm the fleet to a steady-state population.
		for i := 0; i < 20; i++ {
			if err := c.Step(); err != nil {
				b.Fatal(err)
			}
		}
		return c
	}
	c := mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetPlacement isolates the scheduler pass: admission plus
// headroom placement over a full queue, no node stepping.
func BenchmarkFleetPlacement(b *testing.B) {
	c, err := New(Config{
		Nodes:          8,
		HorizonPeriods: 4,
		Arrivals:       ArrivalConfig{Seed: 2, RatePerPeriod: 8, MeanDurationPeriods: 20},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Step(); err != nil {
		b.Fatal(err)
	}
	job := &Job{Profile: c.nodes[0].cfg.HPs[0]}
	views := make([]NodeView, 0, len(c.nodes))
	for i, n := range c.nodes {
		views = append(views, n.view(c.lastGbps[i]))
	}
	sched := HeadroomScheduler{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Pick(job, views)
	}
}
