package fleet

import (
	"bytes"
	"testing"

	"dicer/internal/chaos"
)

// TestFleetSoakChaos is the race-detector soak: a cluster under the
// node-storm chaos schedule (freezes and losses) with concurrent node
// stepping, long enough for chaos to actually land. CI runs the package
// under -race, so this doubles as the data-race smoke for the worker
// pool. Invariants are re-checked on every record.
func TestFleetSoakChaos(t *testing.T) {
	horizon := 120
	if testing.Short() {
		horizon = 40
	}
	var buf bytes.Buffer
	c, err := New(Config{
		Nodes:          4,
		HorizonPeriods: horizon,
		Scheduler:      "headroom",
		Arrivals:       ArrivalConfig{Seed: 31, RatePerPeriod: 2, MeanDurationPeriods: 8},
		QueueCap:       48,
		NodeChaos:      chaos.GenNodeSchedule("node-storm", 31, 4, horizon, 0.015, 0.004, 4),
		Workers:        4,
		Trace:          &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Freezes == 0 && res.Losses == 0 {
		t.Fatal("soak schedule produced no chaos; raise the rates")
	}
	if got := res.Done + res.RunningEnd + res.QueuedEnd + res.Dropped; got != res.Admitted {
		t.Fatalf("job conservation broke under chaos: %+v", res)
	}
	_, recs, err := ReadClusterTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != horizon {
		t.Fatalf("%d records, want %d", len(recs), horizon)
	}
	lost := make(map[int]bool)
	for _, rec := range recs {
		for _, hb := range rec.Nodes {
			if lost[hb.Node] && !hb.Lost {
				t.Fatalf("period %d: node %d came back from the dead", rec.Period, hb.Node)
			}
			if hb.Lost {
				lost[hb.Node] = true
			}
			if hb.Frozen && hb.Lost {
				t.Fatalf("period %d: node %d both frozen and lost", rec.Period, hb.Node)
			}
		}
		if rec.FleetEFU < 0 {
			t.Fatalf("period %d: negative fleet EFU", rec.Period)
		}
	}
}
