package fleet

import (
	"fmt"
	"math"
	"math/rand"

	"dicer/internal/app"
)

// ArrivalConfig drives the open-loop best-effort job generator: a seeded
// Poisson arrival process over monitoring periods, each arrival drawing a
// profile from the application catalog (by behaviour-class weights) and a
// service time in periods. The generator is a pure function of its
// configuration: the same config always yields the same arrival trace,
// which is what lets the FleetSuite run one trace across every
// (scheduler, policy) cell and lets a cluster run replay bit-identically.
type ArrivalConfig struct {
	// Seed seeds the arrival stream.
	Seed int64 `json:"seed"`
	// RatePerPeriod is the mean number of job arrivals per monitoring
	// period (Poisson). Default 1.
	RatePerPeriod float64 `json:"rate_per_period"`
	// MeanDurationPeriods is the mean job service time in periods
	// (exponential, rounded up). Default 10.
	MeanDurationPeriods float64 `json:"mean_duration_periods"`
	// MaxDurationPeriods caps a single job's service time. Default 40.
	MaxDurationPeriods int `json:"max_duration_periods"`
	// ClassWeights weight the behaviour classes jobs are drawn from, in
	// app.Classes() order: stream, cache, compute, mixed. Zero value
	// means the default mix {0.3, 0.35, 0.25, 0.1}. A zero weight
	// excludes the class.
	ClassWeights [4]float64 `json:"class_weights"`
}

// defaults fills unset fields in place.
func (c *ArrivalConfig) defaults() {
	if c.RatePerPeriod == 0 {
		c.RatePerPeriod = 1
	}
	if c.MeanDurationPeriods == 0 {
		c.MeanDurationPeriods = 10
	}
	if c.MaxDurationPeriods == 0 {
		c.MaxDurationPeriods = 40
	}
	if c.ClassWeights == ([4]float64{}) {
		c.ClassWeights = [4]float64{0.3, 0.35, 0.25, 0.1}
	}
}

// Validate reports configuration errors.
func (c ArrivalConfig) Validate() error {
	c.defaults()
	if c.RatePerPeriod < 0 {
		return fmt.Errorf("fleet: negative arrival rate %g", c.RatePerPeriod)
	}
	if c.MeanDurationPeriods <= 0 {
		return fmt.Errorf("fleet: non-positive mean duration %g", c.MeanDurationPeriods)
	}
	if c.MaxDurationPeriods < 1 {
		return fmt.Errorf("fleet: max duration %d < 1", c.MaxDurationPeriods)
	}
	total := 0.0
	for i, w := range c.ClassWeights {
		if w < 0 {
			return fmt.Errorf("fleet: negative class weight %g for %s", w, app.Classes()[i])
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("fleet: class weights sum to zero")
	}
	return nil
}

// Arrival is one job arrival of the generated trace.
type Arrival struct {
	// Job is a unique, dense job identifier (trace order).
	Job int `json:"job"`
	// Period is the monitoring period the job arrives at.
	Period int `json:"period"`
	// App is the catalog profile the job runs.
	App string `json:"app"`
	// DurationPeriods is the job's service time in stepped periods.
	DurationPeriods int `json:"duration_periods"`
}

// GenArrivals generates the arrival trace for a horizon. Per period the
// arrival count is Poisson(RatePerPeriod); each arrival picks a class by
// weight, a profile uniformly within the class, and an exponential
// service time. Draw order is fixed, so the trace is deterministic in
// the config.
func GenArrivals(cfg ArrivalConfig, horizonPeriods int) ([]Arrival, error) {
	cfg.defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pools := make([][]app.Profile, 0, 4)
	weights := make([]float64, 0, 4)
	totalW := 0.0
	for i, class := range app.Classes() {
		pool := app.ByClass(class)
		w := cfg.ClassWeights[i]
		if w <= 0 || len(pool) == 0 {
			continue
		}
		pools = append(pools, pool)
		weights = append(weights, w)
		totalW += w
	}
	if totalW <= 0 {
		return nil, fmt.Errorf("fleet: no profiles under the configured class weights")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Arrival
	id := 0
	for p := 0; p < horizonPeriods; p++ {
		for n := poisson(rng, cfg.RatePerPeriod); n > 0; n-- {
			// Class by weight, profile uniform within the class.
			x := rng.Float64() * totalW
			ci := 0
			for ci < len(weights)-1 && x >= weights[ci] {
				x -= weights[ci]
				ci++
			}
			prof := pools[ci][rng.Intn(len(pools[ci]))]
			d := int(math.Ceil(rng.ExpFloat64() * cfg.MeanDurationPeriods))
			if d < 1 {
				d = 1
			}
			if d > cfg.MaxDurationPeriods {
				d = cfg.MaxDurationPeriods
			}
			out = append(out, Arrival{Job: id, Period: p, App: prof.Name, DurationPeriods: d})
			id++
		}
	}
	return out, nil
}

// poisson draws a Poisson variate. Knuth's product method compares a
// running uniform product against exp(-mean), which underflows to zero
// near mean ≈ 745 and hangs the loop — reachable at 1000-node arrival
// rates. Means above a safe chunk are drawn as a sum of independent
// Poisson chunks (the sum of independent Poissons is Poisson of the
// summed mean, so the distribution stays exact); small means take the
// single-chunk path with draw order identical to the original, keeping
// every existing arrival trace byte-for-byte.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	const chunk = 30
	k := 0
	for mean > chunk {
		k += poissonKnuth(rng, chunk)
		mean -= chunk
	}
	return k + poissonKnuth(rng, mean)
}

// poissonKnuth is Knuth's product method, exact and cheap for the
// chunk-bounded means it is given (expected draws ≈ mean + 1).
func poissonKnuth(rng *rand.Rand, mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
