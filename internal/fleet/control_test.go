package fleet

import (
	"bytes"
	"testing"

	"dicer/internal/chaos"
)

// controlConfig is a small saturating cluster — stream-heavy arrivals
// hot enough that burn-rate alerts actually fire — with node chaos
// layered on top, used by the migration tests.
func controlConfig(trace *bytes.Buffer) Config {
	return Config{
		Nodes:          3,
		HorizonPeriods: 60,
		Scheduler:      "headroom",
		Arrivals: ArrivalConfig{
			Seed: 42, RatePerPeriod: 4, MeanDurationPeriods: 8,
			ClassWeights: [4]float64{0.5, 0.2, 0.2, 0.1},
		},
		NodeChaos: chaos.GenNodeSchedule("t", 3, 3, 60, 0.02, 0.005, 3),
		Migration: MigrationConfig{Enabled: true},
		Trace:     trace,
	}
}

// TestMigrationConservesJobs checks the eviction path creates and loses
// nothing: with migration evicting BE jobs off burning nodes (under
// chaos re-queueing jobs too), every admitted job still ends in exactly
// one of done, running, queued, or dropped, and the per-period eviction
// counts in the trace sum to the result total.
func TestMigrationConservesJobs(t *testing.T) {
	var buf bytes.Buffer
	res := runFleet(t, controlConfig(&buf))
	if res.Evicted == 0 || res.Migrations == 0 {
		t.Fatalf("control config exercised no migrations: %+v", res)
	}
	if got := res.Done + res.RunningEnd + res.QueuedEnd + res.Dropped; got != res.Admitted {
		t.Fatalf("job conservation under migration: done %d + running %d + queued %d + dropped %d = %d, want admitted %d",
			res.Done, res.RunningEnd, res.QueuedEnd, res.Dropped, got, res.Admitted)
	}
	_, recs, err := ReadClusterTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evicted, events := 0, 0
	for _, rec := range recs {
		evicted += rec.Evicted
		for _, ev := range rec.Events {
			if ev.Cause == CauseMigration {
				events++
				if ev.Node < 0 || len(ev.Jobs) == 0 {
					t.Fatalf("malformed migration event %+v", ev)
				}
			}
		}
	}
	if evicted != res.Evicted {
		t.Fatalf("trace evictions %d != result %d", evicted, res.Evicted)
	}
	if events != res.Migrations {
		t.Fatalf("trace migration events %d != result %d", events, res.Migrations)
	}
}

// TestMigrationHysteresis checks the loop does not ping-pong: two
// migrations off the same node must be separated by at least the
// per-node cooldown, and an evicted job may not be placed back onto the
// evicting node while it is quarantined.
func TestMigrationHysteresis(t *testing.T) {
	var buf bytes.Buffer
	cfg := controlConfig(&buf)
	res := runFleet(t, cfg)
	if res.Migrations < 2 {
		t.Fatalf("want at least two migrations to check spacing, got %d", res.Migrations)
	}
	_, recs, err := ReadClusterTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cool := cfg.Migration.CooldownPeriods
	if cool == 0 {
		cool = 10 // package default
	}
	last := map[int]int{}
	for _, rec := range recs {
		for _, ev := range rec.Events {
			if ev.Cause != CauseMigration {
				continue
			}
			if prev, ok := last[ev.Node]; ok && rec.Period-prev < cool {
				t.Fatalf("node %d migrated at periods %d and %d, inside cooldown %d",
					ev.Node, prev, rec.Period, cool)
			}
			last[ev.Node] = rec.Period
		}
	}
}

// TestAutoscalerMonotone checks the controller does not act without its
// signal: an autoscale-enabled fleet whose queue never breaches
// QueueHigh must end with zero repacks and zero scale-ups.
func TestAutoscalerMonotone(t *testing.T) {
	res := runFleet(t, Config{
		Nodes:          4,
		HorizonPeriods: 60,
		Arrivals:       ArrivalConfig{Seed: 7, RatePerPeriod: 1, MeanDurationPeriods: 5},
		Autoscale:      AutoscaleConfig{Enabled: true, MinNodes: 4},
	})
	if res.Repacks != 0 || res.ScaleUps != 0 || res.NodesAdded != 0 {
		t.Fatalf("autoscaler acted without queue pressure: repacks %d, scale-ups %d (+%d nodes)",
			res.Repacks, res.ScaleUps, res.NodesAdded)
	}
	if res.NodesEnd != 4 {
		t.Fatalf("fleet size drifted without signal: %d nodes at end", res.NodesEnd)
	}
}

// TestAutoscalerRepartitionFirst checks the two-rung ladder: in any run
// that scales up, the first pressure response must have been a repack —
// capacity is only added after repartitioning failed to relieve the
// queue.
func TestAutoscalerRepartitionFirst(t *testing.T) {
	var buf bytes.Buffer
	res := runFleet(t, Config{
		Nodes:          2,
		HorizonPeriods: 80,
		Scheduler:      "headroom",
		QueueCap:       64,
		Arrivals:       ArrivalConfig{Seed: 42, RatePerPeriod: 4, MeanDurationPeriods: 12},
		Autoscale:      AutoscaleConfig{Enabled: true, MaxNodes: 6},
		Trace:          &buf,
	})
	if res.ScaleUps == 0 {
		t.Fatalf("overloaded 2-node fleet never scaled up: %+v", res)
	}
	if res.Repacks == 0 {
		t.Fatal("fleet scaled up without ever trying a repack")
	}
	_, recs, err := ReadClusterTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	firstRepack, firstUp := -1, -1
	for _, rec := range recs {
		for _, ev := range rec.Events {
			switch ev.Cause {
			case CauseRepack:
				if firstRepack < 0 {
					firstRepack = rec.Period
				}
			case CauseScaleUp:
				if firstUp < 0 {
					firstUp = rec.Period
				}
			}
		}
	}
	if firstRepack < 0 || firstUp < 0 || firstUp <= firstRepack {
		t.Fatalf("repartition-first violated: first repack at %d, first scale-up at %d", firstRepack, firstUp)
	}
	if res.NodesEnd > 6 {
		t.Fatalf("fleet grew past MaxNodes: %d", res.NodesEnd)
	}
}

// TestAutoscalerDrainsIdleFleet checks graceful scale-down: an idle
// fleet drains nodes down toward MinNodes, retired nodes leave the EFU
// denominator, and the working fleet never shrinks below the floor.
func TestAutoscalerDrainsIdleFleet(t *testing.T) {
	var buf bytes.Buffer
	res := runFleet(t, Config{
		Nodes:          5,
		HorizonPeriods: 100,
		Arrivals:       ArrivalConfig{Seed: 3, RatePerPeriod: 0.1, MeanDurationPeriods: 3},
		Autoscale:      AutoscaleConfig{Enabled: true, MinNodes: 2},
		Trace:          &buf,
	})
	if res.ScaleDowns == 0 || res.NodesRetired == 0 {
		t.Fatalf("idle 5-node fleet never drained: %+v", res)
	}
	if res.NodesEnd < 2 {
		t.Fatalf("fleet shrank below MinNodes: %d nodes at end", res.NodesEnd)
	}
	_, recs, err := ReadClusterTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.NodesLive != 0 && rec.NodesLive < 2 {
			t.Fatalf("period %d: %d live nodes, below MinNodes 2", rec.Period, rec.NodesLive)
		}
	}
}

// scaleConfig is the parallel-determinism configuration: a large
// multi-HP cluster with chaos and both control loops on — every source
// of cross-node coupling the stepping path has.
func scaleConfig(nodes, periods, workers int, trace *bytes.Buffer) Config {
	return Config{
		Nodes:          nodes,
		HPsPerNode:     2,
		HorizonPeriods: periods,
		Scheduler:      "headroom",
		QueueCap:       nodes,
		Workers:        workers,
		Arrivals: ArrivalConfig{
			Seed: 42, RatePerPeriod: float64(nodes) / 4, MeanDurationPeriods: 8,
			ClassWeights: [4]float64{0.5, 0.2, 0.2, 0.1},
		},
		NodeChaos: chaos.GenNodeSchedule("t", 9, nodes, periods, 0.01, 0.002, 3),
		Migration: MigrationConfig{Enabled: true},
		Autoscale: AutoscaleConfig{Enabled: true},
		Trace:     trace,
	}
}

// checkParallelByteIdentical runs the scale configuration serially and
// with a worker pool and requires byte-identical traces: float merges
// are index-ordered and control decisions serial, so worker count must
// be invisible.
func checkParallelByteIdentical(t *testing.T, nodes, periods int) {
	t.Helper()
	var serial, parallel bytes.Buffer
	rs := runFleet(t, scaleConfig(nodes, periods, 1, &serial))
	rp := runFleet(t, scaleConfig(nodes, periods, 8, &parallel))
	if rs != rp {
		t.Errorf("Workers=1 and Workers=8 results differ:\n%+v\n%+v", rs, rp)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("Workers=1 and Workers=8 traces differ (%d vs %d bytes)", serial.Len(), parallel.Len())
	}
	if rs.Done == 0 || serial.Len() == 0 {
		t.Fatalf("degenerate scale run: %+v", rs)
	}
}

// TestParallelSteppingByteIdentical256 is the CI smoke variant of the
// 1000-node determinism check.
func TestParallelSteppingByteIdentical256(t *testing.T) {
	checkParallelByteIdentical(t, 256, 20)
}

// TestParallelSteppingByteIdentical1000 pins the production-scale
// acceptance criterion: a 1000-node multi-HP cluster with migration,
// autoscaling and chaos steps byte-identically at any worker count.
func TestParallelSteppingByteIdentical1000(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node determinism check skipped in -short")
	}
	checkParallelByteIdentical(t, 1000, 12)
}

// TestStepAllocFree pins the pooled stepping path: once warm, a cluster
// period with migration alerting enabled allocates nothing. Arrivals
// use a vanishingly small (not zero — zero means "default 1") rate so
// the trace is deterministically empty: admission builds *Jobs and so
// inherently allocates, and what this test pins is everything else —
// stepping, aggregation, heartbeat pooling and alerter bookkeeping.
func TestStepAllocFree(t *testing.T) {
	c, err := New(Config{
		Nodes:          4,
		HorizonPeriods: 1 << 20,
		Workers:        1,
		Arrivals:       ArrivalConfig{Seed: 1, RatePerPeriod: 1e-300},
		Migration:      MigrationConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("steady-state Step allocates %.1f times per period, want 0", avg)
	}
}
