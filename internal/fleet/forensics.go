package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dicer/internal/obs"
	"dicer/internal/slo"
)

// Incident forensics: the fleet's black-box flight recorder. Full JSONL
// tracing of a 1000-node cluster is too heavy to leave on, so when
// forensics is armed every node instead keeps a fixed-capacity ring of
// FlightEntry values — the heartbeat plus the node controller's decision
// provenance for the period, pushed serially after the stepping barrier
// at a cost of one struct copy per node per period, allocation-free
// warm. When something goes wrong (a node's SLO-burn alert transitions
// to firing, a guard vetoes an actuation, chaos freezes or loses a
// node), the trigger marks the node and the recorder keeps running for
// TailPeriods more before sealing the ring, together with the fleet
// control events in the same window, into a deterministic byte-stable
// incident bundle. The bundles feed `dicer-trace explain` and the
// `/incidents` endpoint; identical runs produce identical bundles, so a
// live dump and its committed golden are interchangeable evidence.

// IncidentSchema identifies the incident bundle format: the first line
// of a bundle is an IncidentManifest carrying this tag, every following
// line an incidentLine ("flight" entries first, oldest to newest, then
// "event" lines in emission order).
const IncidentSchema = "dicer-incident/v1"

// Incident trigger kinds.
const (
	// TriggerSLOBurn marks a per-node burn-rate alert transitioning to
	// firing.
	TriggerSLOBurn = "slo-burn"
	// TriggerNodeLoss / TriggerNodeFreeze mark node chaos events.
	TriggerNodeLoss   = "node-loss"
	TriggerNodeFreeze = "node-freeze"
	// TriggerGuardVeto marks a period whose decision provenance records
	// an invariant-guard intervention on the node controller.
	TriggerGuardVeto = "guard-veto"
)

// ForensicsConfig arms the fleet flight recorder.
type ForensicsConfig struct {
	// Enabled turns the recorder on. The zero value keeps stepping
	// byte-identical to a fleet without forensics.
	Enabled bool `json:"enabled"`
	// WindowPeriods is the pre-trigger window W each node's ring
	// retains. Default 48.
	WindowPeriods int `json:"window_periods"`
	// TailPeriods is how long the recorder keeps running after a
	// trigger before sealing the bundle, so the bundle shows the
	// aftermath too. Default 8.
	TailPeriods int `json:"tail_periods"`
	// CooldownPeriods is the minimum spacing between two incidents on
	// the same node (alerts flap; bundles should not). Default 30.
	CooldownPeriods int `json:"cooldown_periods"`
	// MaxIncidents bounds retained bundles per run; triggers beyond it
	// are counted and dropped. Default 16.
	MaxIncidents int `json:"max_incidents"`
	// Alert is the per-node burn-rate rule used when the migration
	// engine is not armed. With Migration.Enabled the migration
	// alerters (Migration.Alert) drive incident triggers too, so the
	// two loops agree on what "burning" means. Zero value means
	// slo.DefaultAlertConfig.
	Alert slo.AlertConfig `json:"alert"`
}

// withDefaults fills unset fields in place (only when enabled, so a
// zero config stays zero and existing headers stay byte-identical).
func (f *ForensicsConfig) withDefaults() {
	if !f.Enabled {
		return
	}
	if f.WindowPeriods == 0 {
		f.WindowPeriods = 48
	}
	if f.TailPeriods == 0 {
		f.TailPeriods = 8
	}
	if f.CooldownPeriods == 0 {
		f.CooldownPeriods = 30
	}
	if f.MaxIncidents == 0 {
		f.MaxIncidents = 16
	}
	if f.Alert.Budget == 0 && len(f.Alert.Windows) == 0 {
		f.Alert = slo.DefaultAlertConfig()
	}
}

// validate reports configuration errors.
func (f ForensicsConfig) validate() error {
	if !f.Enabled {
		return nil
	}
	if f.WindowPeriods < 1 {
		return fmt.Errorf("fleet: forensics window %d < 1", f.WindowPeriods)
	}
	if f.TailPeriods < 0 {
		return fmt.Errorf("fleet: negative forensics tail %d", f.TailPeriods)
	}
	if f.CooldownPeriods < 1 {
		return fmt.Errorf("fleet: forensics cooldown %d < 1", f.CooldownPeriods)
	}
	if f.MaxIncidents < 1 {
		return fmt.Errorf("fleet: forensics max incidents %d < 1", f.MaxIncidents)
	}
	return f.Alert.Validate()
}

// FlightEntry is one node-period of black-box evidence: the heartbeat
// the cluster aggregated, the node controller's decision provenance for
// the period (state, final cause tag, decision count, recluster flag),
// and the node's burn rates after the period's alerter step.
type FlightEntry struct {
	Period int `json:"period"`
	Heartbeat
	// State is the node controller's state machine position after the
	// period; Cause the period's final decision cause tag
	// (core.EventKind.Cause — empty on periods without decisions and on
	// policies without a controller); Decisions the number of decision
	// events the controller emitted this period.
	State     string `json:"state,omitempty"`
	Cause     string `json:"cause,omitempty"`
	Decisions int    `json:"decisions,omitempty"`
	// Reclustered marks a period in which a multi-HP node's grouping
	// plan changed.
	Reclustered bool `json:"reclustered,omitempty"`
	// BurnShort / BurnLong are the node alerter's shortest and longest
	// window burn rates; AlertFiring its state. All zero when no
	// alerter is armed for the node (or the node missed its heartbeat).
	BurnShort   float64 `json:"burn_short,omitempty"`
	BurnLong    float64 `json:"burn_long,omitempty"`
	AlertFiring bool    `json:"alert_firing,omitempty"`
}

// TimedEvent is a fleet control event stamped with its period, the unit
// the fleet-wide event ring retains.
type TimedEvent struct {
	Period int `json:"period"`
	FleetEvent
}

// IncidentManifest is the first line of an incident bundle: the
// trigger, the window in scope, and enough of the fleet configuration
// to interpret the evidence without the full cluster trace.
type IncidentManifest struct {
	Schema  string `json:"schema"`
	Seq     int    `json:"seq"`
	Trigger string `json:"trigger"`
	Node    int    `json:"node"`
	// Period is the trigger period; WindowFrom/WindowTo bound the
	// flight entries in the bundle (the trigger sits TailPeriods before
	// WindowTo unless the run ended first).
	Period     int    `json:"period"`
	Detail     string `json:"detail,omitempty"`
	WindowFrom int    `json:"window_from"`
	WindowTo   int    `json:"window_to"`

	Policy     string          `json:"policy"`
	Scheduler  string          `json:"scheduler"`
	Nodes      int             `json:"nodes"`
	HPsPerNode int             `json:"hps_per_node,omitempty"`
	SLO        float64         `json:"slo"`
	LinkGbps   float64         `json:"link_gbps,omitempty"`
	PeriodSec  float64         `json:"period_sec"`
	NodeChaos  string          `json:"node_chaos,omitempty"`
	Alert      slo.AlertConfig `json:"alert"`
}

// Incident is one sealed bundle: the triggering node's flight window
// plus every fleet control event inside it. Incidents are immutable
// once sealed; the cluster hands out shared pointers.
type Incident struct {
	Manifest IncidentManifest `json:"manifest"`
	Flight   []FlightEntry    `json:"flight"`
	Events   []TimedEvent     `json:"events,omitempty"`
}

// incidentLine is one post-manifest line of a serialised bundle.
type incidentLine struct {
	Kind   string       `json:"kind"` // "flight" | "event"
	Flight *FlightEntry `json:"flight,omitempty"`
	Event  *TimedEvent  `json:"event,omitempty"`
}

// Filename returns the bundle's canonical file name, sortable by
// sequence number.
func (inc *Incident) Filename() string {
	m := &inc.Manifest
	return fmt.Sprintf("incident-%03d-p%04d-n%03d-%s.jsonl", m.Seq, m.Period, m.Node, m.Trigger)
}

// Dump serialises the bundle as deterministic JSONL: the manifest
// line, the flight entries oldest-first, then the control events in
// emission order. Identical incidents produce identical bytes.
func (inc *Incident) Dump(w io.Writer) error {
	lw := obs.NewLineWriter(w)
	lw.WriteLine(&inc.Manifest)
	for i := range inc.Flight {
		lw.WriteLine(incidentLine{Kind: "flight", Flight: &inc.Flight[i]})
	}
	for i := range inc.Events {
		lw.WriteLine(incidentLine{Kind: "event", Event: &inc.Events[i]})
	}
	return lw.Flush()
}

// ReadIncident parses a bundle written by Dump.
func ReadIncident(r io.Reader) (*Incident, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("fleet: empty incident bundle")
	}
	inc := &Incident{}
	if err := json.Unmarshal(sc.Bytes(), &inc.Manifest); err != nil {
		return nil, fmt.Errorf("fleet: bad incident manifest: %w", err)
	}
	if inc.Manifest.Schema != IncidentSchema {
		return nil, fmt.Errorf("fleet: incident schema %q, want %q", inc.Manifest.Schema, IncidentSchema)
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var l incidentLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return nil, fmt.Errorf("fleet: bad incident line %d: %w", line, err)
		}
		switch {
		case l.Kind == "flight" && l.Flight != nil:
			inc.Flight = append(inc.Flight, *l.Flight)
		case l.Kind == "event" && l.Event != nil:
			inc.Events = append(inc.Events, *l.Event)
		default:
			return nil, fmt.Errorf("fleet: incident line %d has kind %q", line, l.Kind)
		}
	}
	return inc, sc.Err()
}

// pendingIncident is a trigger whose post-trigger tail is still being
// recorded.
type pendingIncident struct {
	trigger string
	node    int
	period  int // trigger period
	detail  string
	sealAt  int // sealed once this period's entries are recorded
}

// forensics is the cluster's recorder state. All access is under the
// cluster's step lock.
type forensics struct {
	cfg    ForensicsConfig
	rings  []*obs.FlightRing[FlightEntry] // per node, index == node ID
	events *obs.FlightRing[TimedEvent]    // fleet control events, fleet-wide

	pending    []pendingIncident
	incidents  []*Incident
	justSealed []*Incident // sealed this step, for post-unlock callbacks
	incNext    []int       // per-node trigger cooldown bound
	seq        int
	dropped    int

	evScratch []TimedEvent // seal-time snapshot scratch
}

// newForensics builds the recorder for an armed cluster.
func newForensics(cfg ForensicsConfig) *forensics {
	return &forensics{
		cfg: cfg,
		// Control events are rare next to node-periods; a window of
		// recent events several times the flight window deep is enough
		// to cover any bundle's scope.
		events: obs.NewFlightRing[TimedEvent](4 * (cfg.WindowPeriods + cfg.TailPeriods)),
	}
}

// ringCap is each node ring's capacity: the pre-trigger window plus the
// tail, so tail recording never evicts the window it is annotating.
func (f *forensics) ringCap() int { return f.cfg.WindowPeriods + f.cfg.TailPeriods }

// addNode grows the per-node state alongside Cluster.appendNode.
func (f *forensics) addNode() {
	f.rings = append(f.rings, obs.NewFlightRing[FlightEntry](f.ringCap()))
	f.incNext = append(f.incNext, 0)
}

// trigger registers an incident trigger at period p, honouring the
// per-node cooldown and the retention bound.
func (f *forensics) trigger(p, node int, kind, detail string) {
	if node < 0 || node >= len(f.incNext) || p < f.incNext[node] {
		return
	}
	if len(f.pending)+len(f.incidents) >= f.cfg.MaxIncidents {
		f.dropped++
		return
	}
	f.incNext[node] = p + f.cfg.CooldownPeriods
	f.pending = append(f.pending, pendingIncident{
		trigger: kind, node: node, period: p, detail: detail,
		sealAt: p + f.cfg.TailPeriods,
	})
}

// noteEntry records one node-period into the node's ring and checks the
// provenance-driven trigger (guard-veto).
func (f *forensics) noteEntry(e FlightEntry) {
	f.rings[e.Node].Push(e)
	if e.Cause == "guard-veto" {
		f.trigger(e.Period, e.Node, TriggerGuardVeto, "")
	}
}

// noteEvents records the period's fleet control events.
func (f *forensics) noteEvents(p int, events []FleetEvent) {
	for i := range events {
		f.events.Push(TimedEvent{Period: p, FleetEvent: events[i]})
	}
}

// seal closes every pending incident due at period p (or all of them
// when force is set — the end-of-run flush) and returns how many were
// sealed. Sealed bundles are appended to incidents and justSealed.
func (f *forensics) seal(p int, force bool, manifest func(pd *pendingIncident) IncidentManifest) int {
	sealed := 0
	kept := f.pending[:0]
	for i := range f.pending {
		pd := &f.pending[i]
		if !force && p < pd.sealAt {
			kept = append(kept, *pd)
			continue
		}
		inc := &Incident{Manifest: manifest(pd)}
		inc.Manifest.Schema = IncidentSchema
		inc.Manifest.Seq = f.seq
		inc.Manifest.Trigger = pd.trigger
		inc.Manifest.Node = pd.node
		inc.Manifest.Period = pd.period
		inc.Manifest.Detail = pd.detail
		f.seq++
		inc.Flight = f.rings[pd.node].Snapshot(nil)
		from, to := pd.period, p
		if len(inc.Flight) > 0 {
			from = inc.Flight[0].Period
			to = inc.Flight[len(inc.Flight)-1].Period
		}
		inc.Manifest.WindowFrom, inc.Manifest.WindowTo = from, to
		f.evScratch = f.events.Snapshot(f.evScratch[:0])
		for i := range f.evScratch {
			if te := &f.evScratch[i]; te.Period >= from && te.Period <= to {
				inc.Events = append(inc.Events, *te)
			}
		}
		f.incidents = append(f.incidents, inc)
		f.justSealed = append(f.justSealed, inc)
		sealed++
	}
	f.pending = kept
	return sealed
}
