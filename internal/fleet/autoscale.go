package fleet

import "fmt"

// AutoscaleConfig parameterises the repartition-first autoscaler. The
// controller watches two signals from the previous period: admission
// queue depth (pressure) and fleet free-core headroom (idleness). A
// pressure episode climbs a two-rung ladder: the first sustained breach
// triggers a repack — drains are cancelled and every multi-HP node's
// cache plan is re-clustered in place — and only if pressure persists
// through a fresh cooldown does the fleet add nodes. Scaling down is
// graceful: an idle fleet drains its emptiest node (no new placements;
// running jobs finish), and drained-empty nodes retire out of the EFU
// denominator.
type AutoscaleConfig struct {
	// Enabled turns the autoscaler on. The zero value keeps the fleet at
	// fixed size and its traces byte-identical.
	Enabled bool `json:"enabled"`
	// QueueHigh is the queue depth that counts as pressure. Default 8.
	QueueHigh int `json:"queue_high"`
	// SustainPeriods is how many consecutive periods a signal must hold
	// before the controller acts. Default 3.
	SustainPeriods int `json:"sustain_periods"`
	// CooldownPeriods is the minimum spacing between control actions, so
	// each decision's effect is observed before the next. Default 10.
	CooldownPeriods int `json:"cooldown_periods"`
	// ScaleStep is how many nodes a scale-up adds. Default 1.
	ScaleStep int `json:"scale_step"`
	// MaxNodes / MinNodes bound the working fleet size. Defaults:
	// 2 × initial nodes, and the initial node count.
	MaxNodes int `json:"max_nodes"`
	MinNodes int `json:"min_nodes"`
	// IdleFreeFraction is the free-BE-core fraction (over non-draining
	// working nodes) at or above which an empty-queue fleet counts as
	// idle. Default 0.5.
	IdleFreeFraction float64 `json:"idle_free_fraction"`
}

// withDefaults fills unset fields in place (only when enabled, so a
// zero config stays zero and static headers stay byte-identical).
func (a *AutoscaleConfig) withDefaults(initialNodes int) {
	if !a.Enabled {
		return
	}
	if a.QueueHigh == 0 {
		a.QueueHigh = 8
	}
	if a.SustainPeriods == 0 {
		a.SustainPeriods = 3
	}
	if a.CooldownPeriods == 0 {
		a.CooldownPeriods = 10
	}
	if a.ScaleStep == 0 {
		a.ScaleStep = 1
	}
	if a.MaxNodes == 0 {
		a.MaxNodes = 2 * initialNodes
	}
	if a.MinNodes == 0 {
		a.MinNodes = initialNodes
	}
	if a.IdleFreeFraction == 0 {
		a.IdleFreeFraction = 0.5
	}
}

// validate reports configuration errors.
func (a AutoscaleConfig) validate() error {
	if !a.Enabled {
		return nil
	}
	if a.QueueHigh < 1 {
		return fmt.Errorf("fleet: autoscale queue-high %d < 1", a.QueueHigh)
	}
	if a.SustainPeriods < 1 {
		return fmt.Errorf("fleet: autoscale sustain %d < 1", a.SustainPeriods)
	}
	if a.CooldownPeriods < 1 {
		return fmt.Errorf("fleet: autoscale cooldown %d < 1", a.CooldownPeriods)
	}
	if a.ScaleStep < 1 {
		return fmt.Errorf("fleet: autoscale step %d < 1", a.ScaleStep)
	}
	if a.MinNodes < 1 {
		return fmt.Errorf("fleet: autoscale min nodes %d < 1", a.MinNodes)
	}
	if a.MaxNodes < a.MinNodes {
		return fmt.Errorf("fleet: autoscale max nodes %d < min nodes %d", a.MaxNodes, a.MinNodes)
	}
	if a.IdleFreeFraction <= 0 || a.IdleFreeFraction > 1 {
		return fmt.Errorf("fleet: autoscale idle free fraction %g outside (0,1]", a.IdleFreeFraction)
	}
	return nil
}

// autoscaleLocked is the per-period autoscaling pass, run at the top of
// the step on the previous period's queue and headroom. Order: retire
// drained-empty nodes (always, no cooldown — it frees nothing but
// bookkeeping), update the pressure/idle streaks, then take at most one
// cooldown-gated action.
func (c *Cluster) autoscaleLocked(p int, rec *ClusterRecord) error {
	a := &c.cfg.Autoscale

	for _, n := range c.nodes {
		if n.draining && !n.lost && !n.retired && n.beCount == 0 {
			n.retired, n.draining = true, false
			c.retiredCount++
			c.res.NodesRetired++
			rec.Events = append(rec.Events, FleetEvent{Cause: CauseScaleDown, Node: n.ID(), Detail: "retire"})
		}
	}

	// Signals. "Working" nodes are neither lost nor retired; draining
	// nodes still work but are excluded from headroom (their capacity is
	// leaving) and from the placeable count that guards MinNodes.
	qlen := len(c.queue)
	working, placeable, free, beCap := 0, 0, 0, 0
	for _, n := range c.nodes {
		if n.lost || n.retired {
			continue
		}
		working++
		if n.draining {
			continue
		}
		placeable++
		free += n.FreeCores()
		beCap += c.cfg.Machine.Cores - n.hpCount
	}
	if qlen > a.QueueHigh {
		c.pressStreak++
	} else {
		c.pressStreak = 0
		// A pressure episode ended: the next one starts back at the
		// repartition rung.
		c.repackTried = false
	}
	if qlen == 0 && beCap > 0 && float64(free)/float64(beCap) >= a.IdleFreeFraction {
		c.idleStreak++
	} else {
		c.idleStreak = 0
	}

	if p < c.coolUntil {
		return nil
	}
	switch {
	case c.pressStreak >= a.SustainPeriods && !c.repackTried:
		// Rung 1, repartition-first: claw back capacity we already have.
		// Draining nodes return to service, and every working multi-HP
		// node re-clusters its cache plan against its current HP specs.
		undrained, replanned := 0, 0
		for _, n := range c.nodes {
			if n.draining && !n.lost && !n.retired {
				n.draining = false
				undrained++
			}
		}
		for _, n := range c.nodes {
			if n.lost || n.retired || n.Frozen(p) {
				continue
			}
			changed, err := n.Repack()
			if err != nil {
				return err
			}
			if changed {
				replanned++
			}
		}
		c.repackTried = true
		c.coolUntil = p + a.CooldownPeriods
		c.res.Repacks++
		rec.Events = append(rec.Events, FleetEvent{
			Cause:  CauseRepack,
			Node:   -1,
			Detail: fmt.Sprintf("undrained=%d replanned=%d queue=%d", undrained, replanned, qlen),
		})
	case c.pressStreak >= a.SustainPeriods && working < a.MaxNodes:
		// Rung 2: repartitioning did not relieve the pressure — add
		// capacity.
		add := a.ScaleStep
		if working+add > a.MaxNodes {
			add = a.MaxNodes - working
		}
		first := len(c.nodes)
		for k := 0; k < add; k++ {
			n, err := c.buildNode(len(c.nodes))
			if err != nil {
				return err
			}
			c.appendNode(n)
		}
		c.coolUntil = p + a.CooldownPeriods
		c.res.ScaleUps++
		c.res.NodesAdded += add
		rec.Events = append(rec.Events, FleetEvent{
			Cause:  CauseScaleUp,
			Node:   -1,
			Detail: fmt.Sprintf("added=%d first=%d queue=%d", add, first, qlen),
		})
	case c.idleStreak >= a.SustainPeriods && placeable > a.MinNodes:
		// Scale down: drain the placeable node with the fewest BE jobs
		// (least work to let finish), ties to the highest ID (newest
		// first, mirroring the scale-up order).
		best := -1
		for i, n := range c.nodes {
			if n.lost || n.retired || n.draining {
				continue
			}
			if best < 0 || n.beCount < c.nodes[best].beCount ||
				(n.beCount == c.nodes[best].beCount && i > best) {
				best = i
			}
		}
		if best >= 0 {
			c.nodes[best].draining = true
			c.coolUntil = p + a.CooldownPeriods
			c.res.ScaleDowns++
			c.idleStreak = 0
			rec.Events = append(rec.Events, FleetEvent{Cause: CauseScaleDown, Node: c.nodes[best].ID(), Detail: "drain"})
		}
	}
	return nil
}
