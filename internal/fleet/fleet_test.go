package fleet

import (
	"bytes"
	"strings"
	"testing"

	"dicer/internal/chaos"
)

// testConfig is a small, fast cluster with chaos and a random scheduler
// — the least-deterministic-looking configuration we support, which is
// exactly what the determinism test should exercise.
func testConfig(trace *bytes.Buffer) Config {
	return Config{
		Nodes:          3,
		HorizonPeriods: 40,
		Scheduler:      "random",
		SchedSeed:      11,
		Arrivals:       ArrivalConfig{Seed: 5, RatePerPeriod: 1.2, MeanDurationPeriods: 6},
		NodeChaos:      chaos.GenNodeSchedule("t", 3, 3, 40, 0.02, 0.005, 3),
		Trace:          trace,
	}
}

func runFleet(t *testing.T, cfg Config) Result {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterTraceDeterministic pins the acceptance criterion: the same
// seed and configuration yield a byte-identical cluster trace, despite
// concurrent node stepping, chaos and the random scheduler.
func TestClusterTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	ra := runFleet(t, testConfig(&a))
	rb := runFleet(t, testConfig(&b))
	if ra != rb {
		t.Errorf("same config produced different results:\n%+v\n%+v", ra, rb)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same config produced different cluster trace bytes")
	}
	if a.Len() == 0 {
		t.Fatal("empty trace")
	}
}

// TestClusterJobConservation checks no job is created or lost by the
// bookkeeping: every admitted job ends exactly one of done, still
// running, still queued, or dropped after exhausting placement attempts.
func TestClusterJobConservation(t *testing.T) {
	var buf bytes.Buffer
	res := runFleet(t, testConfig(&buf))
	if got := res.Done + res.RunningEnd + res.QueuedEnd + res.Dropped; got != res.Admitted {
		t.Fatalf("job conservation: done %d + running %d + queued %d + dropped %d = %d, want admitted %d",
			res.Done, res.RunningEnd, res.QueuedEnd, res.Dropped, got, res.Admitted)
	}
	if res.Admitted+res.Rejected != res.Arrivals {
		t.Fatalf("admission conservation: admitted %d + rejected %d != arrivals %d",
			res.Admitted, res.Rejected, res.Arrivals)
	}
	if res.Placements < res.Done {
		t.Fatalf("placements %d < done %d", res.Placements, res.Done)
	}
}

// TestClusterTraceRoundTrip checks the emitted trace parses back into
// the same number of records with consistent per-period bookkeeping.
func TestClusterTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig(&buf)
	res := runFleet(t, cfg)

	hdr, recs, err := ReadClusterTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != TraceSchema || hdr.Nodes != cfg.Nodes || hdr.Scheduler != "random" {
		t.Fatalf("bad header %+v", hdr)
	}
	if len(recs) != cfg.HorizonPeriods {
		t.Fatalf("got %d records, want %d", len(recs), cfg.HorizonPeriods)
	}
	sumArr, sumDone := 0, 0
	for i, rec := range recs {
		if rec.Period != i {
			t.Fatalf("record %d has period %d", i, rec.Period)
		}
		if len(rec.Nodes) != cfg.Nodes {
			t.Fatalf("period %d: %d heartbeats, want %d", i, len(rec.Nodes), cfg.Nodes)
		}
		for j, hb := range rec.Nodes {
			if hb.Node != j {
				t.Fatalf("period %d: heartbeats out of order: %+v", i, rec.Nodes)
			}
		}
		if rec.FleetEFU < 0 || rec.FleetEFU > 1.5 {
			t.Fatalf("period %d: implausible fleet EFU %g", i, rec.FleetEFU)
		}
		sumArr += rec.Arrivals
		sumDone += rec.Done
	}
	if sumArr != res.Arrivals || sumDone != res.Done {
		t.Fatalf("trace sums (arrivals %d, done %d) disagree with result (%d, %d)",
			sumArr, sumDone, res.Arrivals, res.Done)
	}
}

// TestClusterAdmissionRejects checks a saturated queue rejects instead
// of growing without bound.
func TestClusterAdmissionRejects(t *testing.T) {
	res := runFleet(t, Config{
		Nodes:          1,
		HorizonPeriods: 30,
		QueueCap:       2,
		Arrivals:       ArrivalConfig{Seed: 9, RatePerPeriod: 4, MeanDurationPeriods: 20},
	})
	if res.Rejected == 0 {
		t.Fatalf("expected rejects at rate 4/period on one node with queue cap 2: %+v", res)
	}
	if res.RejectRate <= 0 || res.RejectRate > 1 {
		t.Fatalf("reject rate %g outside (0,1]", res.RejectRate)
	}
	if res.QueuedEnd > 2 {
		t.Fatalf("queue grew past cap: %d", res.QueuedEnd)
	}
}

// TestClusterNodeLoss checks a lost node re-queues its jobs with bounded
// retries and emits lost heartbeats from then on.
func TestClusterNodeLoss(t *testing.T) {
	var buf bytes.Buffer
	lossAt := 10
	res := runFleet(t, Config{
		Nodes:          2,
		HorizonPeriods: 25,
		Arrivals:       ArrivalConfig{Seed: 3, RatePerPeriod: 2, MeanDurationPeriods: 12},
		NodeChaos: chaos.NodeSchedule{Name: "one-loss", Events: []chaos.NodeEvent{
			{Period: lossAt, Node: 0, Fault: chaos.NodeLoss},
		}},
		Trace: &buf,
	})
	if res.Losses != 1 {
		t.Fatalf("losses = %d, want 1", res.Losses)
	}
	if res.Requeued == 0 {
		t.Fatalf("expected orphans re-queued from the lost node: %+v", res)
	}
	_, recs, err := ReadClusterTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		hb := rec.Nodes[0]
		if rec.Period > lossAt && !hb.Lost {
			t.Fatalf("period %d: node 0 should be lost: %+v", rec.Period, hb)
		}
		if hb.Lost && hb.BECount != 0 {
			t.Fatalf("period %d: lost node still reports %d BEs", rec.Period, hb.BECount)
		}
	}
}

// TestReadClusterTraceRejectsBadSchema guards the schema tag.
func TestReadClusterTraceRejectsBadSchema(t *testing.T) {
	_, _, err := ReadClusterTrace(strings.NewReader(`{"schema":"bogus/v9"}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
	_, _, err = ReadClusterTrace(strings.NewReader(""))
	if err == nil {
		t.Fatal("want error on empty trace")
	}
}

// TestArrivalsDeterministic pins the arrival generator.
func TestArrivalsDeterministic(t *testing.T) {
	cfg := ArrivalConfig{Seed: 21, RatePerPeriod: 2}
	a, err := GenArrivals(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenArrivals(cfg, 100)
	if len(a) == 0 {
		t.Fatal("no arrivals at rate 2 over 100 periods")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i, arr := range a {
		if arr.Job != i {
			t.Fatalf("job IDs not dense: %+v at %d", arr, i)
		}
		if arr.DurationPeriods < 1 || arr.DurationPeriods > 40 {
			t.Fatalf("duration %d outside [1,40]", arr.DurationPeriods)
		}
	}
}
