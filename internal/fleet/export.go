package fleet

import "dicer/internal/metrics"

// Sample converts a cluster record into the metrics package's fleet
// sample shape, for the Prometheus FleetExporter (which cannot depend on
// this package).
func (r *ClusterRecord) Sample() metrics.FleetSample {
	s := metrics.FleetSample{
		Period:        r.Period,
		Arrivals:      r.Arrivals,
		Admitted:      r.Admitted,
		Rejected:      r.Rejected,
		Placed:        r.Placed,
		Requeued:      r.Requeued,
		Dropped:       r.Dropped,
		Done:          r.Done,
		QueueLen:      r.QueueLen,
		Running:       r.Running,
		Freezes:       r.Freezes,
		Losses:        r.Losses,
		Evicted:       r.Evicted,
		NodesLive:     r.NodesLive,
		Quarantined:   r.Quarantined,
		Incidents:     r.Incidents,
		SLOViolations: r.SLOViolations,
		FleetEFU:      r.FleetEFU,
	}
	for i := range r.Events {
		switch r.Events[i].Cause {
		case CauseMigration:
			s.Migrations++
		case CauseRepack:
			s.Repacks++
		case CauseScaleUp:
			s.ScaleUps++
		case CauseScaleDown:
			s.ScaleDowns++
		}
	}
	for _, hb := range r.Nodes {
		s.Nodes = append(s.Nodes, metrics.FleetNode{
			Node:        hb.Node,
			Frozen:      hb.Frozen,
			Lost:        hb.Lost,
			Draining:    hb.Draining,
			Retired:     hb.Retired,
			BECount:     hb.BECount,
			HPNorm:      hb.HPNorm,
			TotalGbps:   hb.TotalGbps,
			Saturated:   hb.Saturated,
			SLOViolated: hb.SLOViolated,
		})
	}
	return s
}
