package fleet

import (
	"fmt"
	"math/bits"

	"dicer/internal/app"
	"dicer/internal/cluster"
	"dicer/internal/core"
	"dicer/internal/machine"
	"dicer/internal/metrics"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

// Job is one admitted best-effort job: a catalog application that
// occupies one core of one node for a bounded number of stepped
// monitoring periods. Jobs move through the fleet as arrival → queue →
// placement → completion, possibly cycling back through the queue when
// their node is lost.
type Job struct {
	ID      int
	Profile app.Profile
	// AloneIPC is the profile's full-LLC alone-run reference, resolved
	// at admission; per-period normalised IPCs (and thus fleet EFU) are
	// computed against it.
	AloneIPC float64
	// ArrivalPeriod is when the job entered the system; PlacedPeriod is
	// when it first landed on a node (-1 while queued).
	ArrivalPeriod int
	PlacedPeriod  int
	// RemainingPeriods counts down the service time over stepped periods
	// (a frozen node does not step, so its jobs pause).
	RemainingPeriods int
	// Core is the node core the job runs on (-1 while queued).
	Core int
	// Attempts counts placements (first placement plus re-placements
	// after node loss); NotBefore gates backoff-delayed retries.
	Attempts  int
	NotBefore int
}

// NodeConfig describes one fleet node: a simulated server running one or
// more HP applications under a node-local consolidation policy.
type NodeConfig struct {
	ID      int
	Machine machine.Machine
	// HPs are the node's high-priority applications, attached to cores
	// 0..len(HPs)-1. One HP runs the legacy single-HP policy path
	// byte-identically; more than one runs the multi-HP DICER controller
	// with an LFOC-style clustered plan.
	HPs []app.Profile
	// HPAloneIPCs are the HPs' full-LLC alone-run IPCs (the SLO and
	// normalisation references), index-matched to HPs.
	HPAloneIPCs []float64
	// CLOSBudget is the CLOS-id budget for multi-HP nodes (HP groups plus
	// the BE partition). Ignored with a single HP, which always uses the
	// legacy two-CLOS split.
	CLOSBudget int
	// Policy is the node-local policy: "UM", "CT" or "DICER". Multi-HP
	// nodes require DICER (the grouped controller).
	Policy string
	// DICER configures the controller when Policy is "DICER".
	DICER core.Config
	// SLO is every HP's target fraction of alone performance.
	SLO            float64
	PeriodSec      float64
	StepsPerPeriod int
}

// Heartbeat is one node's per-period status report, the unit the cluster
// aggregates into its trace records and Prometheus metrics. A frozen
// node misses heartbeats: the cluster synthesises one with Frozen set
// and no readings, so the record stream stays dense and the scheduler's
// health view is explicit in the trace.
type Heartbeat struct {
	Node   int  `json:"node"`
	Frozen bool `json:"frozen,omitempty"`
	Lost   bool `json:"lost,omitempty"`
	// Draining marks a node the autoscaler is emptying (no new
	// placements; running jobs finish); Retired marks one removed after
	// draining empty. Static fleets never set either.
	Draining bool `json:"draining,omitempty"`
	Retired  bool `json:"retired,omitempty"`

	// HPIPC / HPNorm describe the node's worst-normalised HP (the only
	// one, on single-HP nodes). HPGroups is the number of HP CLOS groups
	// the multi-HP controller runs (omitted on legacy single-HP nodes).
	HPIPC     float64 `json:"hp_ipc,omitempty"`
	HPNorm    float64 `json:"hp_norm,omitempty"`
	HPGroups  int     `json:"hp_groups,omitempty"`
	BECount   int     `json:"be_count"`
	HPWays    int     `json:"hp_ways,omitempty"`
	HPBWGbps  float64 `json:"hp_bw_gbps,omitempty"`
	TotalGbps float64 `json:"total_bw_gbps,omitempty"`
	// Saturated reports the link past its queueing knee this period.
	Saturated bool `json:"saturated,omitempty"`
	// SLOViolated reports the HP below SLO × alone this period.
	SLOViolated bool `json:"slo_violated,omitempty"`
	// NormSum is the sum of normalised IPCs of every running process
	// (HP + BE jobs); the cluster divides by fleet capacity for EFU.
	NormSum float64 `json:"norm_sum,omitempty"`
}

// Node is one simulated server of the cluster.
type Node struct {
	cfg    NodeConfig
	runner *sim.Runner
	sys    *resctrl.Emu
	pol    policy.Policy
	meter  *resctrl.Meter

	// hpCount HPs occupy cores 0..hpCount-1; multi is the grouped
	// controller when hpCount > 1 (nil on the legacy single-HP path).
	hpCount int
	multi   *core.MultiController
	beClos  int

	// jobs indexes running jobs by core (nil = free); cores
	// hpCount..Cores-1 hold BE jobs.
	jobs    []*Job
	beCount int

	frozenUntil int // exclusive period bound; frozen while period < this
	lost        bool

	// draining/retired are autoscaler lifecycle states: a draining node
	// accepts no placements and retires once empty; a retired node no
	// longer steps and its capacity leaves the fleet EFU denominator.
	draining bool
	retired  bool

	// viewFP is view's per-group footprint scratch on multi-HP nodes,
	// pooled so the placement pass allocates nothing per period.
	viewFP []float64

	// Flight-recorder tap, written by the controller's chained trace
	// hook during Observe (inside the node's own stepping slot, so no
	// synchronisation) and drained serially by the cluster's flight
	// pass. flightState persists across periods — it is the state
	// machine's position, informative even on periods without decisions
	// — while cause/count/recluster reset every drain.
	flightState  string
	flightCause  string
	flightCount  int
	flightReclus bool
}

// buildNodePolicy constructs the node-local policy instance.
func buildNodePolicy(name string, dcfg core.Config) (policy.Policy, error) {
	if p, ok := policy.ByName(name); ok {
		return p, nil
	}
	if name == "DICER" || name == "dicer" {
		return core.New(dcfg)
	}
	return nil, fmt.Errorf("fleet: unknown node policy %q (have UM, CT, DICER)", name)
}

// NewNode builds a node, attaches its HPs on cores 0..len(HPs)-1 and
// runs the policy's Setup. A single HP takes the legacy two-CLOS path;
// several HPs run the multi-HP DICER controller under the node's CLOS
// budget.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.SLO <= 0 || cfg.SLO > 1 {
		return nil, fmt.Errorf("fleet: node %d SLO %g outside (0,1]", cfg.ID, cfg.SLO)
	}
	k := len(cfg.HPs)
	if k == 0 {
		return nil, fmt.Errorf("fleet: node %d needs at least one HP", cfg.ID)
	}
	if len(cfg.HPAloneIPCs) != k {
		return nil, fmt.Errorf("fleet: node %d has %d HPs but %d alone references", cfg.ID, k, len(cfg.HPAloneIPCs))
	}
	for i, v := range cfg.HPAloneIPCs {
		if v <= 0 {
			return nil, fmt.Errorf("fleet: node %d HP %d needs a positive alone-IPC reference", cfg.ID, i)
		}
	}
	if cfg.Machine.Cores <= k {
		return nil, fmt.Errorf("fleet: node %d has %d cores for %d HPs + BEs", cfg.ID, cfg.Machine.Cores, k)
	}
	if k == 1 {
		return newSingleHPNode(cfg)
	}
	return newMultiHPNode(cfg)
}

// newSingleHPNode is the legacy path: one HP on core 0, the two-CLOS
// HP/BE split, any of the UM/CT/DICER policies.
func newSingleHPNode(cfg NodeConfig) (*Node, error) {
	r, err := sim.New(cfg.Machine, 2)
	if err != nil {
		return nil, err
	}
	if err := r.Attach(0, policy.HPClos, cfg.HPs[0]); err != nil {
		return nil, err
	}
	pol, err := buildNodePolicy(cfg.Policy, cfg.DICER)
	if err != nil {
		return nil, err
	}
	sys := resctrl.NewEmu(r, false)
	if err := pol.Setup(sys); err != nil {
		return nil, err
	}
	return &Node{
		cfg:     cfg,
		runner:  r,
		sys:     sys,
		pol:     pol,
		meter:   resctrl.NewMeter(sys),
		hpCount: 1,
		beClos:  policy.BEClos,
		jobs:    make([]*Job, cfg.Machine.Cores),
	}, nil
}

// newMultiHPNode hosts several HPs under the grouped DICER controller:
// HPs attach to CLOS 0, the clustered plan moves their cores into CLOS
// groups, and BE jobs share the partition at CLOS budget-1.
func newMultiHPNode(cfg NodeConfig) (*Node, error) {
	if cfg.Policy != "DICER" && cfg.Policy != "dicer" {
		return nil, fmt.Errorf("fleet: node %d runs %d HPs, which requires the DICER policy (got %q)", cfg.ID, len(cfg.HPs), cfg.Policy)
	}
	budget := cfg.CLOSBudget
	if budget == 0 {
		budget = 16
	}
	if budget < 2 {
		return nil, fmt.Errorf("fleet: node %d CLOS budget %d < 2", cfg.ID, budget)
	}
	r, err := sim.New(cfg.Machine, budget)
	if err != nil {
		return nil, err
	}
	specs := make([]cluster.AppSpec, len(cfg.HPs))
	for i, hp := range cfg.HPs {
		if err := r.Attach(i, 0, hp); err != nil {
			return nil, err
		}
		ph := r.Proc(i).PhaseRef()
		specs[i] = cluster.AppSpec{
			Name: hp.Name, Core: i, SLO: cfg.SLO,
			Curve: ph.Curve, APKI: ph.APKI,
		}
	}
	mc, err := core.NewMulti(core.MultiConfig{
		Group:      cfg.DICER,
		WayBytes:   cfg.Machine.WaysBytes(1),
		CLOSBudget: budget,
	}, specs)
	if err != nil {
		return nil, err
	}
	sys := resctrl.NewEmu(r, false)
	if err := mc.Setup(sys); err != nil {
		return nil, err
	}
	return &Node{
		cfg:     cfg,
		runner:  r,
		sys:     sys,
		pol:     mc,
		meter:   resctrl.NewMeter(sys),
		hpCount: len(cfg.HPs),
		multi:   mc,
		beClos:  mc.BEClos(),
		jobs:    make([]*Job, cfg.Machine.Cores),
		viewFP:  make([]float64, len(cfg.HPs)),
	}, nil
}

// ID returns the node index.
func (n *Node) ID() int { return n.cfg.ID }

// FreeCores returns the number of cores available for BE jobs.
func (n *Node) FreeCores() int { return n.cfg.Machine.Cores - n.hpCount - n.beCount }

// BECount returns the number of running BE jobs.
func (n *Node) BECount() int { return n.beCount }

// Lost reports whether the node has been lost to chaos.
func (n *Node) Lost() bool { return n.lost }

// Draining reports whether the autoscaler is emptying the node.
func (n *Node) Draining() bool { return n.draining }

// Retired reports whether the autoscaler has removed the node.
func (n *Node) Retired() bool { return n.retired }

// Frozen reports whether the node is frozen at the given period.
func (n *Node) Frozen(period int) bool { return !n.lost && period < n.frozenUntil }

// Freeze suspends the node for the given number of periods starting at
// period: it will not step and will miss heartbeats until it thaws.
func (n *Node) Freeze(period, periods int) {
	if until := period + periods; until > n.frozenUntil {
		n.frozenUntil = until
	}
}

// Lose kills the node permanently and returns its orphaned jobs for
// re-placement.
func (n *Node) Lose() []*Job {
	n.lost = true
	var orphans []*Job
	for c, j := range n.jobs {
		if j == nil {
			continue
		}
		_ = n.runner.Detach(c)
		j.Core = -1
		n.jobs[c] = nil
		orphans = append(orphans, j)
	}
	n.beCount = 0
	return orphans
}

// Place attaches a BE job to the lowest free core. The meter is
// rebaselined so the next period's readings start from the new
// population's counters.
func (n *Node) Place(j *Job, period int) error {
	if n.lost {
		return fmt.Errorf("fleet: placing job %d on lost node %d", j.ID, n.cfg.ID)
	}
	if n.Frozen(period) {
		return fmt.Errorf("fleet: placing job %d on frozen node %d", j.ID, n.cfg.ID)
	}
	for c := n.hpCount; c < len(n.jobs); c++ {
		if n.jobs[c] == nil {
			if err := n.runner.Attach(c, n.beClos, j.Profile); err != nil {
				return err
			}
			n.jobs[c] = j
			n.beCount++
			j.Core = c
			if j.PlacedPeriod < 0 {
				j.PlacedPeriod = period
			}
			n.meter.Rebaseline()
			return nil
		}
	}
	return fmt.Errorf("fleet: node %d has no free core for job %d", n.cfg.ID, j.ID)
}

// StepPeriod advances the node by one monitoring period: step the
// simulator, sample the meter, let the policy observe, then account job
// progress. Completed jobs are detached in place; the count comes back
// with the heartbeat (the cluster only aggregates counts, so the old
// completed-jobs slice was a per-period allocation for nothing). Not
// called for frozen, lost or retired nodes.
func (n *Node) StepPeriod(period int) (Heartbeat, int, error) {
	dt := n.cfg.PeriodSec / float64(n.cfg.StepsPerPeriod)
	for s := 0; s < n.cfg.StepsPerPeriod; s++ {
		n.runner.Step(dt)
	}
	p := n.meter.Sample()
	if err := n.pol.Observe(n.sys, p); err != nil {
		return Heartbeat{Node: n.cfg.ID}, 0, fmt.Errorf("fleet: node %d policy %s: %w", n.cfg.ID, n.pol.Name(), err)
	}

	hb := Heartbeat{Node: n.cfg.ID, BECount: n.beCount}
	// The headline HP fields report the worst-normalised HP (on a
	// single-HP node, the only one — exactly the legacy readings).
	worst := 0
	for i := 0; i < n.hpCount; i++ {
		ipc := p.CoreIPC(i)
		norm := metrics.NormIPC(ipc, n.cfg.HPAloneIPCs[i])
		hb.NormSum += norm
		if i == 0 || norm < hb.HPNorm {
			worst, hb.HPNorm = i, norm
		}
		if !metrics.SLOAchieved(ipc, n.cfg.HPAloneIPCs[i], n.cfg.SLO) {
			hb.SLOViolated = true
		}
	}
	hb.HPIPC = p.CoreIPC(worst)
	if n.multi != nil {
		hb.HPGroups = n.multi.NumGroups()
		for gi := 0; gi < n.multi.NumGroups(); gi++ {
			hb.HPWays += n.multi.GroupWays(gi)
			hb.HPBWGbps += p.GroupBW(gi)
		}
	} else {
		hb.HPWays = bits.OnesCount64(n.sys.CBM(policy.HPClos))
		hb.HPBWGbps = p.GroupBW(policy.HPClos)
	}
	hb.TotalGbps = p.TotalGbps
	link := n.cfg.Machine.Link
	hb.Saturated = p.TotalGbps > link.Knee*link.CapacityGBps

	// Job accounting reads only the sampled period p, so detaching a
	// finished job inside the walk observes the same readings the old
	// collect-then-detach pass did.
	done := 0
	for c := n.hpCount; c < len(n.jobs); c++ {
		j := n.jobs[c]
		if j == nil {
			continue
		}
		hb.NormSum += metrics.NormIPC(p.CoreIPC(c), j.AloneIPC)
		j.RemainingPeriods--
		if j.RemainingPeriods <= 0 {
			_ = n.runner.Detach(c)
			n.jobs[c] = nil
			j.Core = -1
			n.beCount--
			done++
		}
	}
	if done > 0 {
		n.meter.Rebaseline()
	}
	return hb, done, nil
}

// evict detaches the BE job on the given core for re-placement
// elsewhere: the migration engine's primitive. The meter rebaselines so
// the next period's readings start from the reduced population.
func (n *Node) evict(core int) *Job {
	j := n.jobs[core]
	_ = n.runner.Detach(core)
	n.jobs[core] = nil
	j.Core = -1
	n.beCount--
	n.meter.Rebaseline()
	return j
}

// beWays returns the BE partition's current width in ways.
func (n *Node) beWays() int { return bits.OnesCount64(n.sys.CBM(n.beClos)) }

// Repack re-clusters a multi-HP node's cache plan on demand (the
// autoscaler's repartition-first action), reporting whether the plan
// changed. Single-HP nodes have nothing to repack.
func (n *Node) Repack() (bool, error) {
	if n.multi == nil {
		return false, nil
	}
	return n.multi.Replan()
}

// armFlightTap chains the flight recorder's provenance tap onto the
// node controller's decision stream: each event overwrites the tap with
// the latest state and cause (one closure per node, allocated once at
// arm time; the per-event cost is two string-header stores). Policies
// without a controller (UM, CT) record no provenance.
func (n *Node) armFlightTap() {
	if n.multi != nil {
		n.multi.ChainTrace(func(e core.GroupEvent) {
			n.flightState = e.State
			n.flightCause = e.Cause
			n.flightCount++
			if e.Kind == core.EventRecluster {
				n.flightReclus = true
			}
		})
		return
	}
	if ctl := core.ControllerOf(n.pol); ctl != nil {
		ctl.ChainTrace(func(e core.Event) {
			n.flightState = e.State
			n.flightCause = e.Cause
			n.flightCount++
		})
	}
}

// takeFlight drains the provenance tap into a flight entry and resets
// the per-period fields.
func (n *Node) takeFlight(e *FlightEntry) {
	e.State = n.flightState
	e.Cause = n.flightCause
	e.Decisions = n.flightCount
	e.Reclustered = n.flightReclus
	n.flightCause, n.flightCount, n.flightReclus = "", 0, false
}

// view builds the scheduler's snapshot of this node. lastTotalGbps is
// the node's most recent heartbeat bandwidth. The cluster builds each
// candidate's view once per period and folds same-period placements
// into it in place, so the snapshot must only depend on node state and
// the last heartbeat.
func (n *Node) view(lastTotalGbps float64) NodeView {
	m := n.cfg.Machine
	beWays := n.beWays()
	v := NodeView{
		ID:        n.cfg.ID,
		FreeCores: n.FreeCores(),
		BECount:   n.beCount,
		BEWays:    beWays,
		TotalGbps: lastTotalGbps,
		Machine:   m,
	}
	beBytes := m.WaysBytes(beWays)
	for c := n.hpCount; c < len(n.jobs); c++ {
		if j := n.jobs[c]; j != nil {
			fp := j.Profile.MaxFootprint()
			if fp > beBytes {
				fp = beBytes
			}
			v.BEFootprint += fp
		}
	}
	// Multi-HP nodes expose their worst HP group's LLC overcommit: the
	// clustered plan may pool incompatible HPs, and a node whose HP
	// groups are already thrashing is a poor host for more cache
	// pressure. Single-HP nodes report zero — the legacy controller
	// regulates its one HP directly, and the legacy score must not move.
	if n.multi != nil {
		k := n.multi.NumGroups()
		fp := n.viewFP[:k]
		for i := range fp {
			fp[i] = 0
		}
		for i, hp := range n.cfg.HPs {
			fp[n.multi.GroupOf(i)] += hp.MaxFootprint()
		}
		for gi := 0; gi < k; gi++ {
			bytes := m.WaysBytes(n.multi.GroupWays(gi))
			if bytes <= 0 {
				continue
			}
			if over := fp[gi]/bytes - 1; over > v.HPGroupPressure {
				v.HPGroupPressure = over
			}
		}
	}
	return v
}
