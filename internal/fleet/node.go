package fleet

import (
	"fmt"
	"math/bits"

	"dicer/internal/app"
	"dicer/internal/core"
	"dicer/internal/machine"
	"dicer/internal/metrics"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

// Job is one admitted best-effort job: a catalog application that
// occupies one core of one node for a bounded number of stepped
// monitoring periods. Jobs move through the fleet as arrival → queue →
// placement → completion, possibly cycling back through the queue when
// their node is lost.
type Job struct {
	ID      int
	Profile app.Profile
	// AloneIPC is the profile's full-LLC alone-run reference, resolved
	// at admission; per-period normalised IPCs (and thus fleet EFU) are
	// computed against it.
	AloneIPC float64
	// ArrivalPeriod is when the job entered the system; PlacedPeriod is
	// when it first landed on a node (-1 while queued).
	ArrivalPeriod int
	PlacedPeriod  int
	// RemainingPeriods counts down the service time over stepped periods
	// (a frozen node does not step, so its jobs pause).
	RemainingPeriods int
	// Core is the node core the job runs on (-1 while queued).
	Core int
	// Attempts counts placements (first placement plus re-placements
	// after node loss); NotBefore gates backoff-delayed retries.
	Attempts  int
	NotBefore int
}

// NodeConfig describes one fleet node: a simulated server running one HP
// application under a node-local consolidation policy.
type NodeConfig struct {
	ID      int
	Machine machine.Machine
	HP      app.Profile
	// HPAloneIPC is the HP's full-LLC alone-run IPC (the SLO and
	// normalisation reference).
	HPAloneIPC float64
	// Policy is the node-local policy: "UM", "CT" or "DICER".
	Policy string
	// DICER configures the controller when Policy is "DICER".
	DICER core.Config
	// SLO is the HP's target fraction of alone performance.
	SLO            float64
	PeriodSec      float64
	StepsPerPeriod int
}

// Heartbeat is one node's per-period status report, the unit the cluster
// aggregates into its trace records and Prometheus metrics. A frozen
// node misses heartbeats: the cluster synthesises one with Frozen set
// and no readings, so the record stream stays dense and the scheduler's
// health view is explicit in the trace.
type Heartbeat struct {
	Node   int  `json:"node"`
	Frozen bool `json:"frozen,omitempty"`
	Lost   bool `json:"lost,omitempty"`

	HPIPC     float64 `json:"hp_ipc,omitempty"`
	HPNorm    float64 `json:"hp_norm,omitempty"`
	BECount   int     `json:"be_count"`
	HPWays    int     `json:"hp_ways,omitempty"`
	HPBWGbps  float64 `json:"hp_bw_gbps,omitempty"`
	TotalGbps float64 `json:"total_bw_gbps,omitempty"`
	// Saturated reports the link past its queueing knee this period.
	Saturated bool `json:"saturated,omitempty"`
	// SLOViolated reports the HP below SLO × alone this period.
	SLOViolated bool `json:"slo_violated,omitempty"`
	// NormSum is the sum of normalised IPCs of every running process
	// (HP + BE jobs); the cluster divides by fleet capacity for EFU.
	NormSum float64 `json:"norm_sum,omitempty"`
}

// Node is one simulated server of the cluster.
type Node struct {
	cfg    NodeConfig
	runner *sim.Runner
	sys    *resctrl.Emu
	pol    policy.Policy
	meter  *resctrl.Meter

	// jobs indexes running jobs by core (nil = free); cores 1..Cores-1
	// hold BE jobs, core 0 the HP.
	jobs    []*Job
	beCount int

	frozenUntil int // exclusive period bound; frozen while period < this
	lost        bool
}

// buildNodePolicy constructs the node-local policy instance.
func buildNodePolicy(name string, dcfg core.Config) (policy.Policy, error) {
	if p, ok := policy.ByName(name); ok {
		return p, nil
	}
	if name == "DICER" || name == "dicer" {
		return core.New(dcfg)
	}
	return nil, fmt.Errorf("fleet: unknown node policy %q (have UM, CT, DICER)", name)
}

// NewNode builds a node, attaches its HP on core 0 and runs the policy's
// Setup.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.SLO <= 0 || cfg.SLO > 1 {
		return nil, fmt.Errorf("fleet: node %d SLO %g outside (0,1]", cfg.ID, cfg.SLO)
	}
	if cfg.HPAloneIPC <= 0 {
		return nil, fmt.Errorf("fleet: node %d needs a positive HP alone-IPC reference", cfg.ID)
	}
	r, err := sim.New(cfg.Machine, 2)
	if err != nil {
		return nil, err
	}
	if err := r.Attach(0, policy.HPClos, cfg.HP); err != nil {
		return nil, err
	}
	pol, err := buildNodePolicy(cfg.Policy, cfg.DICER)
	if err != nil {
		return nil, err
	}
	sys := resctrl.NewEmu(r, false)
	if err := pol.Setup(sys); err != nil {
		return nil, err
	}
	return &Node{
		cfg:    cfg,
		runner: r,
		sys:    sys,
		pol:    pol,
		meter:  resctrl.NewMeter(sys),
		jobs:   make([]*Job, cfg.Machine.Cores),
	}, nil
}

// ID returns the node index.
func (n *Node) ID() int { return n.cfg.ID }

// FreeCores returns the number of cores available for BE jobs.
func (n *Node) FreeCores() int { return n.cfg.Machine.Cores - 1 - n.beCount }

// BECount returns the number of running BE jobs.
func (n *Node) BECount() int { return n.beCount }

// Lost reports whether the node has been lost to chaos.
func (n *Node) Lost() bool { return n.lost }

// Frozen reports whether the node is frozen at the given period.
func (n *Node) Frozen(period int) bool { return !n.lost && period < n.frozenUntil }

// Freeze suspends the node for the given number of periods starting at
// period: it will not step and will miss heartbeats until it thaws.
func (n *Node) Freeze(period, periods int) {
	if until := period + periods; until > n.frozenUntil {
		n.frozenUntil = until
	}
}

// Lose kills the node permanently and returns its orphaned jobs for
// re-placement.
func (n *Node) Lose() []*Job {
	n.lost = true
	var orphans []*Job
	for c, j := range n.jobs {
		if j == nil {
			continue
		}
		_ = n.runner.Detach(c)
		j.Core = -1
		n.jobs[c] = nil
		orphans = append(orphans, j)
	}
	n.beCount = 0
	return orphans
}

// Place attaches a BE job to the lowest free core. The meter is
// rebaselined so the next period's readings start from the new
// population's counters.
func (n *Node) Place(j *Job, period int) error {
	if n.lost {
		return fmt.Errorf("fleet: placing job %d on lost node %d", j.ID, n.cfg.ID)
	}
	if n.Frozen(period) {
		return fmt.Errorf("fleet: placing job %d on frozen node %d", j.ID, n.cfg.ID)
	}
	for c := 1; c < len(n.jobs); c++ {
		if n.jobs[c] == nil {
			if err := n.runner.Attach(c, policy.BEClos, j.Profile); err != nil {
				return err
			}
			n.jobs[c] = j
			n.beCount++
			j.Core = c
			if j.PlacedPeriod < 0 {
				j.PlacedPeriod = period
			}
			n.meter.Rebaseline()
			return nil
		}
	}
	return fmt.Errorf("fleet: node %d has no free core for job %d", n.cfg.ID, j.ID)
}

// StepPeriod advances the node by one monitoring period: step the
// simulator, sample the meter, let the policy observe, then account job
// progress. Completed jobs are detached and returned. Not called for
// frozen or lost nodes.
func (n *Node) StepPeriod(period int) (Heartbeat, []*Job, error) {
	dt := n.cfg.PeriodSec / float64(n.cfg.StepsPerPeriod)
	for s := 0; s < n.cfg.StepsPerPeriod; s++ {
		n.runner.Step(dt)
	}
	p := n.meter.Sample()
	if err := n.pol.Observe(n.sys, p); err != nil {
		return Heartbeat{Node: n.cfg.ID}, nil, fmt.Errorf("fleet: node %d policy %s: %w", n.cfg.ID, n.pol.Name(), err)
	}

	hb := Heartbeat{Node: n.cfg.ID, BECount: n.beCount}
	hb.HPIPC = p.CoreIPC(0)
	hb.HPNorm = metrics.NormIPC(hb.HPIPC, n.cfg.HPAloneIPC)
	hb.HPWays = bits.OnesCount64(n.sys.CBM(policy.HPClos))
	hb.HPBWGbps = p.GroupBW(policy.HPClos)
	hb.TotalGbps = p.TotalGbps
	link := n.cfg.Machine.Link
	hb.Saturated = p.TotalGbps > link.Knee*link.CapacityGBps
	hb.SLOViolated = !metrics.SLOAchieved(hb.HPIPC, n.cfg.HPAloneIPC, n.cfg.SLO)
	hb.NormSum = hb.HPNorm

	var completed []*Job
	for c := 1; c < len(n.jobs); c++ {
		j := n.jobs[c]
		if j == nil {
			continue
		}
		hb.NormSum += metrics.NormIPC(p.CoreIPC(c), j.AloneIPC)
		j.RemainingPeriods--
		if j.RemainingPeriods <= 0 {
			completed = append(completed, j)
		}
	}
	for _, j := range completed {
		_ = n.runner.Detach(j.Core)
		n.jobs[j.Core] = nil
		j.Core = -1
		n.beCount--
	}
	if len(completed) > 0 {
		n.meter.Rebaseline()
	}
	return hb, completed, nil
}

// view builds the scheduler's snapshot of this node. lastTotalGbps is
// the node's most recent heartbeat bandwidth; pendingGbps accumulates
// the predicted demand of jobs placed earlier in the same period so
// successive placements see each other.
func (n *Node) view(lastTotalGbps, pendingGbps float64) NodeView {
	m := n.cfg.Machine
	beWays := bits.OnesCount64(n.sys.CBM(policy.BEClos))
	v := NodeView{
		ID:          n.cfg.ID,
		FreeCores:   n.FreeCores(),
		BECount:     n.beCount,
		BEWays:      beWays,
		TotalGbps:   lastTotalGbps + pendingGbps,
		Machine:     m,
	}
	beBytes := m.WaysBytes(beWays)
	for c := 1; c < len(n.jobs); c++ {
		if j := n.jobs[c]; j != nil {
			fp := j.Profile.MaxFootprint()
			if fp > beBytes {
				fp = beBytes
			}
			v.BEFootprint += fp
		}
	}
	return v
}
