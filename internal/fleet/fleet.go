// Package fleet consolidates the single-node DICER simulation into a
// multi-node cluster: N simulated servers, each pinned to one
// high-priority application under a node-local partitioning policy,
// absorbing an open-loop stream of best-effort jobs through admission
// control and a pluggable placement scheduler. The cluster steps nodes
// concurrently but aggregates deterministically, so the same
// configuration always produces a byte-identical cluster trace.
package fleet

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"dicer/internal/app"
	"dicer/internal/chaos"
	"dicer/internal/core"
	"dicer/internal/machine"
	"dicer/internal/metrics"
	"dicer/internal/obs"
	"dicer/internal/sim"
)

// Config describes a fleet run.
type Config struct {
	// Nodes is the cluster size. Default 4.
	Nodes int
	// Machine is the per-node platform. Zero value means machine.Default.
	Machine machine.Machine
	// HPs names the high-priority applications, assigned to nodes
	// round-robin. Default: a cache-sensitive mix.
	HPs []string
	// HPsPerNode consolidates several HP applications onto each node
	// (cores 0..HPsPerNode-1) under the multi-HP DICER controller.
	// Default 1: the legacy single-HP node, byte-identical traces.
	HPsPerNode int
	// CLOSBudget is each multi-HP node's CLOS-id budget (HP groups plus
	// the BE partition). Default 16 (real CAT). Ignored at HPsPerNode 1.
	CLOSBudget int
	// Policy is the node-local policy on every node: "UM", "CT" or
	// "DICER" (default).
	Policy string
	// DICER configures the controller when Policy is "DICER". Zero value
	// means core.DefaultConfig.
	DICER core.Config
	// SLO is each HP's target fraction of alone performance. Default 0.9.
	SLO float64

	PeriodSec      float64 // default 1.0
	StepsPerPeriod int     // default 4
	HorizonPeriods int     // default 120
	// AloneHorizonPeriods is the horizon of locally computed alone-run
	// reference IPCs, independent of the cluster horizon. Default 120.
	AloneHorizonPeriods int

	// Arrivals drives the BE job generator.
	Arrivals ArrivalConfig
	// Scheduler picks the placement scheduler by name ("random",
	// "least-loaded", "headroom" — the default); SchedSeed feeds the
	// random scheduler.
	Scheduler string
	SchedSeed int64
	// QueueCap bounds the admission queue; arrivals beyond it are
	// rejected. Default 32.
	QueueCap int
	// MaxPlaceAttempts bounds how many times a job may be placed
	// (initial placement plus re-placements after node loss) before it is
	// dropped. Default 5.
	MaxPlaceAttempts int
	// BackoffPeriods delays a re-queued orphan's next placement attempt
	// by attempts × this many periods. Default 2.
	BackoffPeriods int

	// Workers bounds concurrent node stepping. Default GOMAXPROCS.
	Workers int

	// NodeChaos schedules node freeze/loss events.
	NodeChaos chaos.NodeSchedule

	// Trace, when set, receives the JSONL cluster trace.
	Trace io.Writer

	// AloneIPC, when set, resolves alone-run reference IPCs by profile
	// name instead of simulating them (the experiment suite shares one
	// memoised table across cells).
	AloneIPC func(name string) (float64, error)

	// OnPeriod, when set, observes each period's record (and the queue
	// as of the period's end) after the record is written; serve mode
	// feeds its exporter and endpoint snapshots from here. The callback
	// runs outside the cluster's step lock, so it may call back into the
	// cluster.
	OnPeriod func(rec *ClusterRecord, queue []QueueEntry)
}

// withDefaults returns cfg with unset fields filled.
func (cfg Config) withDefaults() Config {
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	if cfg.Machine.Cores == 0 {
		cfg.Machine = machine.Default()
	}
	if len(cfg.HPs) == 0 {
		cfg.HPs = []string{"omnetpp1", "sphinx1", "mcf1", "Xalan1"}
	}
	if cfg.Policy == "" {
		cfg.Policy = "DICER"
	}
	if cfg.HPsPerNode == 0 {
		cfg.HPsPerNode = 1
	}
	if cfg.CLOSBudget == 0 {
		cfg.CLOSBudget = 16
	}
	if cfg.DICER == (core.Config{}) {
		cfg.DICER = core.DefaultConfig()
	}
	if cfg.SLO == 0 {
		cfg.SLO = 0.9
	}
	if cfg.PeriodSec == 0 {
		cfg.PeriodSec = 1.0
	}
	if cfg.StepsPerPeriod == 0 {
		cfg.StepsPerPeriod = 4
	}
	if cfg.HorizonPeriods == 0 {
		cfg.HorizonPeriods = 120
	}
	if cfg.AloneHorizonPeriods == 0 {
		cfg.AloneHorizonPeriods = 120
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = "headroom"
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 32
	}
	if cfg.MaxPlaceAttempts == 0 {
		cfg.MaxPlaceAttempts = 5
	}
	if cfg.BackoffPeriods == 0 {
		cfg.BackoffPeriods = 2
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return cfg
}

// Result summarises a fleet run.
type Result struct {
	Scheduler string `json:"scheduler"`
	Policy    string `json:"policy"`
	Nodes     int    `json:"nodes"`
	Periods   int    `json:"periods"`

	Arrivals   int `json:"arrivals"`
	Admitted   int `json:"admitted"`
	Rejected   int `json:"rejected"`
	Placements int `json:"placements"`
	Requeued   int `json:"requeued"`
	Dropped    int `json:"dropped"`
	Done       int `json:"done"`
	QueuedEnd  int `json:"queued_at_end"`
	RunningEnd int `json:"running_at_end"`

	Freezes int `json:"freezes"`
	Losses  int `json:"losses"`

	// FleetEFU is the per-period fleet EFU averaged over the horizon.
	FleetEFU float64 `json:"fleet_efu"`
	// SLOViolationPeriods counts (node, period) cells where a live HP
	// missed its SLO.
	SLOViolationPeriods int `json:"slo_violation_periods"`
	// RejectRate is Rejected / Arrivals (0 when no arrivals).
	RejectRate float64 `json:"reject_rate"`
	// MeanQueueWait / P95QueueWait summarise periods from arrival to
	// first placement over jobs that were placed at least once.
	MeanQueueWait float64 `json:"mean_queue_wait_periods"`
	P95QueueWait  float64 `json:"p95_queue_wait_periods"`
}

// Cluster is a running fleet. Build with New, drive with Run (or Step in
// a loop followed by Finish).
type Cluster struct {
	cfg      Config
	nodes    []*Node
	sched    Scheduler
	arrivals []Arrival
	nextArr  int
	queue    []*Job

	alone map[string]float64

	period    int
	lastGbps  []float64 // per node, most recent live heartbeat
	waits     []float64
	efuSum    float64
	res       Result
	lw        *obs.LineWriter
	lastRec   *ClusterRecord
	stepMu    sync.Mutex
	finished  bool
	finishErr error
}

// New validates the configuration, generates the arrival trace, resolves
// alone-run references and builds the nodes (HP attached, policy set
// up). The trace header is written immediately.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("fleet: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Machine.Cores < 2 {
		return nil, fmt.Errorf("fleet: machine needs >=2 cores for HP + BEs")
	}
	if cfg.HPsPerNode < 1 {
		return nil, fmt.Errorf("fleet: HPsPerNode %d < 1", cfg.HPsPerNode)
	}
	if cfg.Machine.Cores <= cfg.HPsPerNode {
		return nil, fmt.Errorf("fleet: machine has %d cores for %d HPs + BEs", cfg.Machine.Cores, cfg.HPsPerNode)
	}
	if err := cfg.NodeChaos.Validate(); err != nil {
		return nil, err
	}
	sched, err := NewScheduler(cfg.Scheduler, cfg.SchedSeed)
	if err != nil {
		return nil, err
	}
	arrivals, err := GenArrivals(cfg.Arrivals, cfg.HorizonPeriods)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		cfg:      cfg,
		sched:    sched,
		arrivals: arrivals,
		alone:    map[string]float64{},
		lastGbps: make([]float64, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		// Node i hosts HPsPerNode consecutive entries of the round-robin
		// HP stream; at HPsPerNode 1 this is exactly the legacy
		// one-name-per-node assignment.
		hps := make([]app.Profile, cfg.HPsPerNode)
		alones := make([]float64, cfg.HPsPerNode)
		for j := range hps {
			hpName := cfg.HPs[(i*cfg.HPsPerNode+j)%len(cfg.HPs)]
			hp, err := app.ByName(hpName)
			if err != nil {
				return nil, err
			}
			hpAlone, err := c.aloneIPC(hpName)
			if err != nil {
				return nil, err
			}
			hps[j], alones[j] = hp, hpAlone
		}
		n, err := NewNode(NodeConfig{
			ID:             i,
			Machine:        cfg.Machine,
			HPs:            hps,
			HPAloneIPCs:    alones,
			CLOSBudget:     cfg.CLOSBudget,
			Policy:         cfg.Policy,
			DICER:          cfg.DICER,
			SLO:            cfg.SLO,
			PeriodSec:      cfg.PeriodSec,
			StepsPerPeriod: cfg.StepsPerPeriod,
		})
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, n)
	}

	c.res = Result{
		Scheduler: cfg.Scheduler,
		Policy:    cfg.Policy,
		Nodes:     cfg.Nodes,
		Arrivals:  len(arrivals),
	}

	if cfg.Trace != nil {
		c.lw = obs.NewLineWriter(cfg.Trace)
		c.lw.WriteLine(c.header())
		if err := c.lw.Err(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// header builds the trace header.
func (c *Cluster) header() TraceHeader {
	arr := c.cfg.Arrivals
	arr.defaults()
	hpsPerNode := 0
	if c.cfg.HPsPerNode > 1 {
		hpsPerNode = c.cfg.HPsPerNode
	}
	return TraceHeader{
		Schema:         TraceSchema,
		Nodes:          c.cfg.Nodes,
		CoresPerNode:   c.cfg.Machine.Cores,
		HPsPerNode:     hpsPerNode,
		Policy:         c.cfg.Policy,
		Scheduler:      c.cfg.Scheduler,
		SchedSeed:      c.cfg.SchedSeed,
		PeriodSec:      c.cfg.PeriodSec,
		StepsPerPeriod: c.cfg.StepsPerPeriod,
		HorizonPeriods: c.cfg.HorizonPeriods,
		SLO:            c.cfg.SLO,
		LinkGbps:       c.cfg.Machine.Link.CapacityGBps,
		QueueCap:       c.cfg.QueueCap,
		HPs:            c.cfg.HPs,
		Arrivals:       arr,
		NodeChaos:      c.cfg.NodeChaos.Name,
	}
}

// aloneIPC resolves a profile's full-LLC alone-run IPC, memoised.
func (c *Cluster) aloneIPC(name string) (float64, error) {
	if v, ok := c.alone[name]; ok {
		return v, nil
	}
	if c.cfg.AloneIPC != nil {
		v, err := c.cfg.AloneIPC(name)
		if err != nil {
			return 0, err
		}
		c.alone[name] = v
		return v, nil
	}
	prof, err := app.ByName(name)
	if err != nil {
		return 0, err
	}
	r, err := sim.New(c.cfg.Machine, 1)
	if err != nil {
		return 0, err
	}
	if err := r.Attach(0, 0, prof); err != nil {
		return 0, err
	}
	dt := c.cfg.PeriodSec / float64(c.cfg.StepsPerPeriod)
	for i := 0; i < c.cfg.AloneHorizonPeriods*c.cfg.StepsPerPeriod; i++ {
		r.Step(dt)
	}
	v := r.Proc(0).IPC()
	c.alone[name] = v
	return v, nil
}

// Period returns the number of completed periods.
func (c *Cluster) Period() int {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	return c.period
}

// Done reports whether the horizon has been reached.
func (c *Cluster) Done() bool {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	return c.period >= c.cfg.HorizonPeriods
}

// LastRecord returns a copy of the most recent period record, if any.
func (c *Cluster) LastRecord() (ClusterRecord, bool) {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	if c.lastRec == nil {
		return ClusterRecord{}, false
	}
	return *c.lastRec, true
}

// QueueEntry is one waiting job, as exposed on /queue.
type QueueEntry struct {
	Job           int    `json:"job"`
	App           string `json:"app"`
	ArrivalPeriod int    `json:"arrival_period"`
	Attempts      int    `json:"attempts,omitempty"`
	NotBefore     int    `json:"not_before,omitempty"`
}

// QueueSnapshot returns the current admission queue in order.
func (c *Cluster) QueueSnapshot() []QueueEntry {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	return c.queueSnapshotLocked()
}

func (c *Cluster) queueSnapshotLocked() []QueueEntry {
	out := make([]QueueEntry, 0, len(c.queue))
	for _, j := range c.queue {
		out = append(out, QueueEntry{
			Job:           j.ID,
			App:           j.Profile.Name,
			ArrivalPeriod: j.ArrivalPeriod,
			Attempts:      j.Attempts,
			NotBefore:     j.NotBefore,
		})
	}
	return out
}

// Step advances the cluster by one monitoring period: node chaos events
// (freezes, losses with orphan re-queueing), arrivals and admission,
// a placement pass, concurrent node stepping, then aggregation and trace
// emission.
func (c *Cluster) Step() error {
	c.stepMu.Lock()
	rec, err := c.stepLocked()
	var q []QueueEntry
	cb := c.cfg.OnPeriod
	if err == nil && cb != nil {
		q = c.queueSnapshotLocked()
	}
	c.stepMu.Unlock()
	if err == nil && cb != nil {
		cb(rec, q)
	}
	return err
}

// stepLocked is Step's body; stepMu is held.
func (c *Cluster) stepLocked() (*ClusterRecord, error) {
	if c.period >= c.cfg.HorizonPeriods {
		return nil, fmt.Errorf("fleet: stepped past horizon %d", c.cfg.HorizonPeriods)
	}
	p := c.period
	rec := &ClusterRecord{Period: p}

	// Node chaos: freezes pause a node (jobs hold their cores and their
	// remaining service time); loss is permanent and orphans the node's
	// jobs back into the queue with backoff, up to the attempt bound.
	for _, ev := range c.cfg.NodeChaos.At(p) {
		if ev.Node >= len(c.nodes) {
			continue
		}
		n := c.nodes[ev.Node]
		if n.Lost() {
			continue
		}
		switch ev.Fault {
		case chaos.NodeFreeze:
			n.Freeze(p, ev.Periods)
			rec.Freezes++
		case chaos.NodeLoss:
			rec.Losses++
			for _, j := range n.Lose() {
				if j.Attempts >= c.cfg.MaxPlaceAttempts {
					rec.Dropped++
					c.res.Dropped++
					continue
				}
				j.NotBefore = p + j.Attempts*c.cfg.BackoffPeriods
				c.queue = append(c.queue, j)
				rec.Requeued++
				c.res.Requeued++
			}
		}
	}
	c.res.Freezes += rec.Freezes
	c.res.Losses += rec.Losses

	// Arrivals and admission: a full queue rejects.
	for c.nextArr < len(c.arrivals) && c.arrivals[c.nextArr].Period == p {
		a := c.arrivals[c.nextArr]
		c.nextArr++
		rec.Arrivals++
		if len(c.queue) >= c.cfg.QueueCap {
			rec.Rejected++
			c.res.Rejected++
			continue
		}
		prof, err := app.ByName(a.App)
		if err != nil {
			return nil, err
		}
		alone, err := c.aloneIPC(a.App)
		if err != nil {
			return nil, err
		}
		c.queue = append(c.queue, &Job{
			ID:               a.Job,
			Profile:          prof,
			AloneIPC:         alone,
			ArrivalPeriod:    a.Period,
			PlacedPeriod:     -1,
			RemainingPeriods: a.DurationPeriods,
			Core:             -1,
		})
		rec.Admitted++
		c.res.Admitted++
	}

	// Placement pass. Candidates are healthy nodes with a free core;
	// pending accumulates the predicted bandwidth of this period's
	// placements so successive picks see each other. The pass is
	// sequential (FIFO over the queue) to keep the random scheduler's
	// stream deterministic.
	pending := make([]float64, len(c.nodes))
	var kept []*Job
	for _, j := range c.queue {
		if j.NotBefore > p {
			kept = append(kept, j)
			continue
		}
		var views []NodeView
		var owner []int
		for i, n := range c.nodes {
			if n.Lost() || n.Frozen(p) || n.FreeCores() <= 0 {
				continue
			}
			views = append(views, n.view(c.lastGbps[i], pending[i]))
			owner = append(owner, i)
		}
		idx, ok := c.sched.Pick(j, views)
		if !ok || idx < 0 || idx >= len(views) {
			kept = append(kept, j)
			continue
		}
		ni := owner[idx]
		n := c.nodes[ni]
		if err := n.Place(j, p); err != nil {
			return nil, err
		}
		j.Attempts++
		pending[ni] += PredictJobGbps(c.cfg.Machine, j.Profile, views[idx].BEWays, views[idx].BECount)
		rec.Placed++
		c.res.Placements++
		if j.Attempts == 1 {
			c.waits = append(c.waits, float64(p-j.ArrivalPeriod))
		}
	}
	c.queue = kept

	// Step live nodes concurrently; results land in an index-addressed
	// slice so aggregation order is deterministic regardless of
	// scheduling. Frozen and lost nodes miss their heartbeat — the
	// cluster synthesises a health-only one.
	type stepOut struct {
		hb        Heartbeat
		completed []*Job
		err       error
		live      bool
	}
	outs := make([]stepOut, len(c.nodes))
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.cfg.Workers)
	for i, n := range c.nodes {
		switch {
		case n.Lost():
			outs[i] = stepOut{hb: Heartbeat{Node: n.ID(), Lost: true}}
		case n.Frozen(p):
			outs[i] = stepOut{hb: Heartbeat{Node: n.ID(), Frozen: true, BECount: n.BECount()}}
		default:
			wg.Add(1)
			go func(i int, n *Node) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				hb, done, err := n.StepPeriod(p)
				outs[i] = stepOut{hb: hb, completed: done, err: err, live: true}
			}(i, n)
		}
	}
	wg.Wait()

	normSum := 0.0
	running := 0
	for i, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		rec.Nodes = append(rec.Nodes, o.hb)
		if o.live {
			c.lastGbps[i] = o.hb.TotalGbps
			normSum += o.hb.NormSum
			if o.hb.SLOViolated {
				rec.SLOViolations++
				c.res.SLOViolationPeriods++
			}
		}
		rec.Done += len(o.completed)
		c.res.Done += len(o.completed)
		if !c.nodes[i].Lost() {
			running += c.nodes[i].BECount()
		}
	}
	sort.Slice(rec.Nodes, func(a, b int) bool { return rec.Nodes[a].Node < rec.Nodes[b].Node })
	rec.QueueLen = len(c.queue)
	rec.Running = running
	rec.FleetEFU = normSum / float64(len(c.nodes)*c.cfg.Machine.Cores)
	c.efuSum += rec.FleetEFU

	if c.lw != nil {
		c.lw.WriteLine(rec)
		if err := c.lw.Err(); err != nil {
			return nil, err
		}
	}
	c.lastRec = rec
	c.period++
	return rec, nil
}

// Finish flushes the trace and returns the run summary. Idempotent.
func (c *Cluster) Finish() (Result, error) {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	if c.finished {
		return c.res, c.finishErr
	}
	c.finished = true
	c.res.Periods = c.period
	c.res.QueuedEnd = len(c.queue)
	for _, n := range c.nodes {
		if !n.Lost() {
			c.res.RunningEnd += n.BECount()
		}
	}
	if c.period > 0 {
		c.res.FleetEFU = c.efuSum / float64(c.period)
	}
	if c.res.Arrivals > 0 {
		c.res.RejectRate = float64(c.res.Rejected) / float64(c.res.Arrivals)
	}
	if len(c.waits) > 0 {
		c.res.MeanQueueWait = metrics.Mean(c.waits)
		c.res.P95QueueWait = metrics.NewCDF(c.waits).Quantile(0.95)
	}
	if c.lw != nil {
		c.finishErr = c.lw.Flush()
	}
	return c.res, c.finishErr
}

// Run steps the cluster to its horizon and returns the summary.
func (c *Cluster) Run() (Result, error) {
	for !c.Done() {
		if err := c.Step(); err != nil {
			return Result{}, err
		}
	}
	return c.Finish()
}
