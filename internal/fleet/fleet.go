// Package fleet consolidates the single-node DICER simulation into a
// multi-node cluster: N simulated servers, each pinned to one or more
// high-priority applications under a node-local partitioning policy,
// absorbing an open-loop stream of best-effort jobs through admission
// control and a pluggable placement scheduler. On top of the static
// cluster sit two control loops: an SLO-burn-driven migration engine
// that evicts BE jobs off burning nodes, and a repartition-first
// autoscaler that repacks existing nodes before adding capacity. The
// cluster steps nodes through the sharded work-stealing executor but
// aggregates deterministically, so the same configuration always
// produces a byte-identical cluster trace at any worker count.
package fleet

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"dicer/internal/app"
	"dicer/internal/chaos"
	"dicer/internal/core"
	"dicer/internal/machine"
	"dicer/internal/metrics"
	"dicer/internal/obs"
	"dicer/internal/par"
	"dicer/internal/sim"
	"dicer/internal/slo"
)

// Config describes a fleet run.
type Config struct {
	// Nodes is the initial cluster size. Default 4.
	Nodes int
	// Machine is the per-node platform. Zero value means machine.Default.
	Machine machine.Machine
	// HPs names the high-priority applications, assigned to nodes
	// round-robin. Default: a cache-sensitive mix.
	HPs []string
	// HPsPerNode consolidates several HP applications onto each node
	// (cores 0..HPsPerNode-1) under the multi-HP DICER controller.
	// Default 1: the legacy single-HP node, byte-identical traces.
	HPsPerNode int
	// CLOSBudget is each multi-HP node's CLOS-id budget (HP groups plus
	// the BE partition). Default 16 (real CAT). Ignored at HPsPerNode 1.
	CLOSBudget int
	// Policy is the node-local policy on every node: "UM", "CT" or
	// "DICER" (default).
	Policy string
	// DICER configures the controller when Policy is "DICER". Zero value
	// means core.DefaultConfig.
	DICER core.Config
	// SLO is each HP's target fraction of alone performance. Default 0.9.
	SLO float64

	PeriodSec      float64 // default 1.0
	StepsPerPeriod int     // default 4
	HorizonPeriods int     // default 120
	// AloneHorizonPeriods is the horizon of locally computed alone-run
	// reference IPCs, independent of the cluster horizon. Default 120.
	AloneHorizonPeriods int

	// Arrivals drives the BE job generator.
	Arrivals ArrivalConfig
	// Scheduler picks the placement scheduler by name ("random",
	// "least-loaded", "headroom" — the default); SchedSeed feeds the
	// random scheduler.
	Scheduler string
	SchedSeed int64
	// QueueCap bounds the admission queue; arrivals beyond it are
	// rejected. Default 32.
	QueueCap int
	// MaxPlaceAttempts bounds how many times a job may be placed
	// (initial placement plus re-placements after node loss) before it is
	// dropped. Default 5.
	MaxPlaceAttempts int
	// BackoffPeriods delays a re-queued orphan's next placement attempt
	// by attempts × this many periods. Default 2.
	BackoffPeriods int

	// Workers bounds concurrent node stepping. Default GOMAXPROCS.
	Workers int

	// Migration enables SLO-burn-driven BE migration: each node's
	// heartbeat stream feeds a multi-window burn-rate alerter, and a
	// firing alert evicts the node's heaviest BE jobs back through the
	// bounded-retry placement path.
	Migration MigrationConfig
	// Autoscale enables the repartition-first autoscaler: sustained
	// admission-queue pressure first repacks existing nodes (cancelling
	// drains, re-clustering multi-HP cache plans) and only then adds
	// nodes; sustained idleness drains and retires them.
	Autoscale AutoscaleConfig
	// Forensics arms the flight recorder: per-node black-box rings of
	// full-resolution entries, snapshotted into deterministic incident
	// bundles when an SLO-burn alert fires, a guard vetoes, or a node
	// is frozen/lost.
	Forensics ForensicsConfig

	// NodeChaos schedules node freeze/loss events.
	NodeChaos chaos.NodeSchedule

	// Trace, when set, receives the JSONL cluster trace.
	Trace io.Writer

	// AloneIPC, when set, resolves alone-run reference IPCs by profile
	// name instead of simulating them (the experiment suite shares one
	// memoised table across cells).
	AloneIPC func(name string) (float64, error)

	// OnPeriod, when set, observes each period's record (and the queue
	// as of the period's end) after the record is written; serve mode
	// feeds its exporter and endpoint snapshots from here. The callback
	// runs outside the cluster's step lock on a private copy of the
	// record (the cluster pools its record storage), so it may call back
	// into the cluster and retain what it is given.
	OnPeriod func(rec *ClusterRecord, queue []QueueEntry)

	// OnIncident, when set, observes each incident bundle as it is
	// sealed (the trigger period plus Forensics.TailPeriods later, or at
	// Finish for triggers the horizon cut short). Like OnPeriod it runs
	// outside the step lock; incidents are immutable once sealed, so the
	// callback may retain the pointer.
	OnIncident func(inc *Incident)
}

// withDefaults returns cfg with unset fields filled.
func (cfg Config) withDefaults() Config {
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	if cfg.Machine.Cores == 0 {
		cfg.Machine = machine.Default()
	}
	if len(cfg.HPs) == 0 {
		cfg.HPs = []string{"omnetpp1", "sphinx1", "mcf1", "Xalan1"}
	}
	if cfg.Policy == "" {
		cfg.Policy = "DICER"
	}
	if cfg.HPsPerNode == 0 {
		cfg.HPsPerNode = 1
	}
	if cfg.CLOSBudget == 0 {
		cfg.CLOSBudget = 16
	}
	if cfg.DICER == (core.Config{}) {
		cfg.DICER = core.DefaultConfig()
	}
	if cfg.SLO == 0 {
		cfg.SLO = 0.9
	}
	if cfg.PeriodSec == 0 {
		cfg.PeriodSec = 1.0
	}
	if cfg.StepsPerPeriod == 0 {
		cfg.StepsPerPeriod = 4
	}
	if cfg.HorizonPeriods == 0 {
		cfg.HorizonPeriods = 120
	}
	if cfg.AloneHorizonPeriods == 0 {
		cfg.AloneHorizonPeriods = 120
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = "headroom"
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 32
	}
	if cfg.MaxPlaceAttempts == 0 {
		cfg.MaxPlaceAttempts = 5
	}
	if cfg.BackoffPeriods == 0 {
		cfg.BackoffPeriods = 2
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	cfg.Migration.withDefaults()
	cfg.Autoscale.withDefaults(cfg.Nodes)
	cfg.Forensics.withDefaults()
	return cfg
}

// Result summarises a fleet run.
type Result struct {
	Scheduler string `json:"scheduler"`
	Policy    string `json:"policy"`
	Nodes     int    `json:"nodes"`
	Periods   int    `json:"periods"`

	Arrivals   int `json:"arrivals"`
	Admitted   int `json:"admitted"`
	Rejected   int `json:"rejected"`
	Placements int `json:"placements"`
	Requeued   int `json:"requeued"`
	Dropped    int `json:"dropped"`
	Done       int `json:"done"`
	QueuedEnd  int `json:"queued_at_end"`
	RunningEnd int `json:"running_at_end"`

	Freezes int `json:"freezes"`
	Losses  int `json:"losses"`

	// Control-loop totals, omitted by static fleets: Migrations counts
	// eviction decisions (Evicted the jobs they moved), Repacks the
	// repartition-first actions, ScaleUps/ScaleDowns the capacity
	// decisions (NodesAdded/NodesRetired the nodes they moved), and
	// NodesEnd the working fleet size at the horizon.
	Evicted      int `json:"evicted,omitempty"`
	Migrations   int `json:"migrations,omitempty"`
	Repacks      int `json:"repacks,omitempty"`
	ScaleUps     int `json:"scale_ups,omitempty"`
	ScaleDowns   int `json:"scale_downs,omitempty"`
	NodesAdded   int `json:"nodes_added,omitempty"`
	NodesRetired int `json:"nodes_retired,omitempty"`
	NodesEnd     int `json:"nodes_at_end,omitempty"`

	// Incidents counts sealed forensic bundles (IncidentsDropped the
	// triggers discarded at the MaxIncidents bound); zero and omitted
	// unless the flight recorder is armed.
	Incidents        int `json:"incidents,omitempty"`
	IncidentsDropped int `json:"incidents_dropped,omitempty"`

	// FleetEFU is the per-period fleet EFU averaged over the horizon.
	FleetEFU float64 `json:"fleet_efu"`
	// SLOViolationPeriods counts (node, period) cells where a live HP
	// missed its SLO.
	SLOViolationPeriods int `json:"slo_violation_periods"`
	// RejectRate is Rejected / Arrivals (0 when no arrivals).
	RejectRate float64 `json:"reject_rate"`
	// MeanQueueWait / P95QueueWait summarise periods from arrival to
	// first placement over jobs that were placed at least once.
	MeanQueueWait float64 `json:"mean_queue_wait_periods"`
	P95QueueWait  float64 `json:"p95_queue_wait_periods"`
}

// stepOut is one node's per-period stepping result, written into an
// index-addressed slot so aggregation order never depends on worker
// scheduling.
type stepOut struct {
	hb   Heartbeat
	live bool
}

// stepAcc accumulates one worker's integer counters across the nodes it
// stepped. Integer sums are commutative, so merging the accumulators in
// worker order is deterministic no matter which worker stole which
// node; floats are NOT merged this way — they reduce in node-index
// order from the heartbeat slots, because float addition does not
// associate. Padded to a cache line against false sharing.
type stepAcc struct {
	done    int
	running int
	_       [48]byte
}

// Cluster is a running fleet. Build with New, drive with Run (or Step in
// a loop followed by Finish).
type Cluster struct {
	cfg      Config
	nodes    []*Node
	sched    Scheduler
	arrivals []Arrival
	nextArr  int
	queue    []*Job

	alone map[string]float64

	period   int
	lastGbps []float64 // per node, most recent live heartbeat
	waits    []float64
	efuSum   float64
	res      Result
	lw       *obs.LineWriter

	// Migration state (alerters is nil unless migration or forensics is
	// armed): per-node burn-rate alerters, placement quarantine bounds,
	// and eviction cooldown bounds.
	alerters  []*slo.Alerter
	quarUntil []int
	migNext   []int

	// fr is the flight recorder (nil unless Forensics.Enabled).
	fr *forensics

	// Autoscaler state: consecutive pressure/idle periods, the decision
	// cooldown bound, whether the repartition-first rung already ran for
	// the current pressure episode, and how many nodes have retired.
	pressStreak  int
	idleStreak   int
	coolUntil    int
	repackTried  bool
	retiredCount int

	// Pooled per-period scratch: the record (heartbeats + events), the
	// stepping slots, the per-worker accumulators, the placement views
	// with their node-index owners, and the survivor queue. Steady-state
	// stepping allocates nothing.
	rec     ClusterRecord
	haveRec bool
	outs    []stepOut
	accs    []stepAcc
	views   []NodeView
	owner   []int
	kept    []*Job
	stepP   int
	stepFn  func(w, i int) error

	stepMu    sync.Mutex
	finished  bool
	finishErr error
}

// New validates the configuration, generates the arrival trace, resolves
// alone-run references and builds the nodes (HP attached, policy set
// up). The trace header is written immediately.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("fleet: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Machine.Cores < 2 {
		return nil, fmt.Errorf("fleet: machine needs >=2 cores for HP + BEs")
	}
	if cfg.HPsPerNode < 1 {
		return nil, fmt.Errorf("fleet: HPsPerNode %d < 1", cfg.HPsPerNode)
	}
	if cfg.Machine.Cores <= cfg.HPsPerNode {
		return nil, fmt.Errorf("fleet: machine has %d cores for %d HPs + BEs", cfg.Machine.Cores, cfg.HPsPerNode)
	}
	if err := cfg.NodeChaos.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Migration.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Autoscale.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Forensics.validate(); err != nil {
		return nil, err
	}
	sched, err := NewScheduler(cfg.Scheduler, cfg.SchedSeed)
	if err != nil {
		return nil, err
	}
	arrivals, err := GenArrivals(cfg.Arrivals, cfg.HorizonPeriods)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		cfg:      cfg,
		sched:    sched,
		arrivals: arrivals,
		alone:    map[string]float64{},
		accs:     make([]stepAcc, cfg.Workers),
	}
	c.stepFn = c.stepNode
	if cfg.Forensics.Enabled {
		c.fr = newForensics(cfg.Forensics)
	}
	for i := 0; i < cfg.Nodes; i++ {
		n, err := c.buildNode(i)
		if err != nil {
			return nil, err
		}
		c.appendNode(n)
	}

	c.res = Result{
		Scheduler: cfg.Scheduler,
		Policy:    cfg.Policy,
		Nodes:     cfg.Nodes,
		Arrivals:  len(arrivals),
	}

	if cfg.Trace != nil {
		c.lw = obs.NewLineWriter(cfg.Trace)
		c.lw.WriteLine(c.header())
		if err := c.lw.Err(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// buildNode constructs node id: it hosts HPsPerNode consecutive entries
// of the round-robin HP stream (at HPsPerNode 1, exactly the legacy
// one-name-per-node assignment). Autoscaled nodes extend the same
// stream, so node identity is a pure function of its index.
func (c *Cluster) buildNode(id int) (*Node, error) {
	cfg := c.cfg
	hps := make([]app.Profile, cfg.HPsPerNode)
	alones := make([]float64, cfg.HPsPerNode)
	for j := range hps {
		hpName := cfg.HPs[(id*cfg.HPsPerNode+j)%len(cfg.HPs)]
		hp, err := app.ByName(hpName)
		if err != nil {
			return nil, err
		}
		hpAlone, err := c.aloneIPC(hpName)
		if err != nil {
			return nil, err
		}
		hps[j], alones[j] = hp, hpAlone
	}
	return NewNode(NodeConfig{
		ID:             id,
		Machine:        cfg.Machine,
		HPs:            hps,
		HPAloneIPCs:    alones,
		CLOSBudget:     cfg.CLOSBudget,
		Policy:         cfg.Policy,
		DICER:          cfg.DICER,
		SLO:            cfg.SLO,
		PeriodSec:      cfg.PeriodSec,
		StepsPerPeriod: cfg.StepsPerPeriod,
	})
}

// appendNode registers a node and grows every per-node array in step;
// node index always equals node ID.
func (c *Cluster) appendNode(n *Node) {
	c.nodes = append(c.nodes, n)
	c.lastGbps = append(c.lastGbps, 0)
	c.quarUntil = append(c.quarUntil, 0)
	c.migNext = append(c.migNext, 0)
	if c.cfg.Migration.Enabled || c.cfg.Forensics.Enabled {
		c.alerters = append(c.alerters, slo.NewAlerter(c.alertConfig()))
	}
	if c.fr != nil {
		c.fr.addNode()
		n.armFlightTap()
	}
}

// alertConfig is the per-node burn-rate rule in effect: the migration
// engine's when it is armed (so migration and forensics agree on what
// "burning" means), the forensics rule otherwise.
func (c *Cluster) alertConfig() slo.AlertConfig {
	if c.cfg.Migration.Enabled {
		return c.cfg.Migration.Alert
	}
	return c.cfg.Forensics.Alert
}

// header builds the trace header.
func (c *Cluster) header() TraceHeader {
	arr := c.cfg.Arrivals
	arr.defaults()
	hpsPerNode := 0
	if c.cfg.HPsPerNode > 1 {
		hpsPerNode = c.cfg.HPsPerNode
	}
	h := TraceHeader{
		Schema:         TraceSchema,
		Nodes:          c.cfg.Nodes,
		CoresPerNode:   c.cfg.Machine.Cores,
		HPsPerNode:     hpsPerNode,
		Policy:         c.cfg.Policy,
		Scheduler:      c.cfg.Scheduler,
		SchedSeed:      c.cfg.SchedSeed,
		PeriodSec:      c.cfg.PeriodSec,
		StepsPerPeriod: c.cfg.StepsPerPeriod,
		HorizonPeriods: c.cfg.HorizonPeriods,
		SLO:            c.cfg.SLO,
		LinkGbps:       c.cfg.Machine.Link.CapacityGBps,
		QueueCap:       c.cfg.QueueCap,
		HPs:            c.cfg.HPs,
		Arrivals:       arr,
		NodeChaos:      c.cfg.NodeChaos.Name,
	}
	if c.cfg.Autoscale.Enabled {
		a := c.cfg.Autoscale
		h.Autoscale = &a
	}
	if c.cfg.Migration.Enabled {
		m := c.cfg.Migration
		h.Migration = &m
	}
	if c.cfg.Forensics.Enabled {
		f := c.cfg.Forensics
		h.Forensics = &f
	}
	return h
}

// incidentManifest fills a bundle's configuration context; the seal pass
// stamps trigger, sequence and window on top.
func (c *Cluster) incidentManifest(pd *pendingIncident) IncidentManifest {
	hpsPerNode := 0
	if c.cfg.HPsPerNode > 1 {
		hpsPerNode = c.cfg.HPsPerNode
	}
	return IncidentManifest{
		Policy:     c.cfg.Policy,
		Scheduler:  c.cfg.Scheduler,
		Nodes:      c.cfg.Nodes,
		HPsPerNode: hpsPerNode,
		SLO:        c.cfg.SLO,
		LinkGbps:   c.cfg.Machine.Link.CapacityGBps,
		PeriodSec:  c.cfg.PeriodSec,
		NodeChaos:  c.cfg.NodeChaos.Name,
		Alert:      c.alertConfig(),
	}
}

// Incidents returns the sealed incident bundles so far (nil when the
// flight recorder is not armed). Bundles are immutable; the slice is a
// copy.
func (c *Cluster) Incidents() []*Incident {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	if c.fr == nil {
		return nil
	}
	return append([]*Incident(nil), c.fr.incidents...)
}

// aloneIPC resolves a profile's full-LLC alone-run IPC, memoised.
func (c *Cluster) aloneIPC(name string) (float64, error) {
	if v, ok := c.alone[name]; ok {
		return v, nil
	}
	if c.cfg.AloneIPC != nil {
		v, err := c.cfg.AloneIPC(name)
		if err != nil {
			return 0, err
		}
		c.alone[name] = v
		return v, nil
	}
	prof, err := app.ByName(name)
	if err != nil {
		return 0, err
	}
	r, err := sim.New(c.cfg.Machine, 1)
	if err != nil {
		return 0, err
	}
	if err := r.Attach(0, 0, prof); err != nil {
		return 0, err
	}
	dt := c.cfg.PeriodSec / float64(c.cfg.StepsPerPeriod)
	for i := 0; i < c.cfg.AloneHorizonPeriods*c.cfg.StepsPerPeriod; i++ {
		r.Step(dt)
	}
	v := r.Proc(0).IPC()
	c.alone[name] = v
	return v, nil
}

// Period returns the number of completed periods.
func (c *Cluster) Period() int {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	return c.period
}

// Done reports whether the horizon has been reached.
func (c *Cluster) Done() bool {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	return c.period >= c.cfg.HorizonPeriods
}

// clone deep-copies a record out of the cluster's pooled storage.
func (r *ClusterRecord) clone() ClusterRecord {
	out := *r
	out.Nodes = append([]Heartbeat(nil), r.Nodes...)
	if len(r.Events) > 0 {
		out.Events = append([]FleetEvent(nil), r.Events...)
	} else {
		out.Events = nil
	}
	return out
}

// LastRecord returns a copy of the most recent period record, if any.
func (c *Cluster) LastRecord() (ClusterRecord, bool) {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	if !c.haveRec {
		return ClusterRecord{}, false
	}
	return c.rec.clone(), true
}

// QueueEntry is one waiting job, as exposed on /queue.
type QueueEntry struct {
	Job           int    `json:"job"`
	App           string `json:"app"`
	ArrivalPeriod int    `json:"arrival_period"`
	Attempts      int    `json:"attempts,omitempty"`
	NotBefore     int    `json:"not_before,omitempty"`
}

// QueueSnapshot returns the current admission queue in order.
func (c *Cluster) QueueSnapshot() []QueueEntry {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	return c.queueSnapshotLocked()
}

func (c *Cluster) queueSnapshotLocked() []QueueEntry {
	out := make([]QueueEntry, 0, len(c.queue))
	for _, j := range c.queue {
		out = append(out, QueueEntry{
			Job:           j.ID,
			App:           j.Profile.Name,
			ArrivalPeriod: j.ArrivalPeriod,
			Attempts:      j.Attempts,
			NotBefore:     j.NotBefore,
		})
	}
	return out
}

// Step advances the cluster by one monitoring period: control decisions
// (migration, autoscaling) from the previous period's signals, node
// chaos events (freezes, losses with orphan re-queueing), arrivals and
// admission, a placement pass, batched node stepping, then aggregation
// and trace emission.
func (c *Cluster) Step() error {
	c.stepMu.Lock()
	rec, err := c.stepLocked()
	var cbRec *ClusterRecord
	var q []QueueEntry
	cb := c.cfg.OnPeriod
	if err == nil && cb != nil {
		// The callback's copy is taken under the lock: the pooled record
		// is overwritten by the next step. (Pointer-typed so the copy is
		// only materialised — and only escapes — when a callback is set.)
		r := rec.clone()
		cbRec = &r
		q = c.queueSnapshotLocked()
	}
	var sealed []*Incident
	onInc := c.cfg.OnIncident
	if err == nil && onInc != nil && c.fr != nil && len(c.fr.justSealed) > 0 {
		sealed = append(sealed, c.fr.justSealed...)
	}
	c.stepMu.Unlock()
	if err == nil && cb != nil {
		cb(cbRec, q)
	}
	for _, inc := range sealed {
		onInc(inc)
	}
	return err
}

// stepNode steps node i on worker w for period c.stepP: the executor
// callback. Each kind of node writes its heartbeat into the node's
// index-addressed slot; integer counters go to the worker's
// accumulator. A method value bound once at construction, so the
// per-period executor call captures nothing.
func (c *Cluster) stepNode(w, i int) error {
	n := c.nodes[i]
	o := &c.outs[i]
	switch {
	case n.retired:
		*o = stepOut{hb: Heartbeat{Node: n.ID(), Retired: true}}
	case n.lost:
		*o = stepOut{hb: Heartbeat{Node: n.ID(), Lost: true}}
	case n.Frozen(c.stepP):
		*o = stepOut{hb: Heartbeat{Node: n.ID(), Frozen: true, Draining: n.draining, BECount: n.beCount}}
		c.accs[w].running += n.beCount
	default:
		hb, done, err := n.StepPeriod(c.stepP)
		if err != nil {
			return err
		}
		hb.Draining = n.draining
		*o = stepOut{hb: hb, live: true}
		c.accs[w].done += done
		c.accs[w].running += n.beCount
	}
	return nil
}

// stepLocked is Step's body; stepMu is held.
func (c *Cluster) stepLocked() (*ClusterRecord, error) {
	if c.period >= c.cfg.HorizonPeriods {
		return nil, fmt.Errorf("fleet: stepped past horizon %d", c.cfg.HorizonPeriods)
	}
	p := c.period
	rec := &c.rec
	*rec = ClusterRecord{Period: p, Nodes: rec.Nodes[:0], Events: rec.Events[:0]}
	if c.fr != nil {
		c.fr.justSealed = c.fr.justSealed[:0]
	}

	// Control pass, on the previous period's signals: migration first
	// (its evictions add queue pressure the autoscaler should see), then
	// the autoscaler.
	if c.cfg.Migration.Enabled {
		c.migrateLocked(p, rec)
	}
	if c.cfg.Autoscale.Enabled {
		if err := c.autoscaleLocked(p, rec); err != nil {
			return nil, err
		}
	}

	// Node chaos: freezes pause a node (jobs hold their cores and their
	// remaining service time); loss is permanent and orphans the node's
	// jobs back into the queue with backoff, up to the attempt bound.
	for _, ev := range c.cfg.NodeChaos.At(p) {
		if ev.Node >= len(c.nodes) {
			continue
		}
		n := c.nodes[ev.Node]
		if n.lost || n.retired {
			continue
		}
		switch ev.Fault {
		case chaos.NodeFreeze:
			n.Freeze(p, ev.Periods)
			rec.Freezes++
			if c.fr != nil {
				c.fr.trigger(p, ev.Node, TriggerNodeFreeze, fmt.Sprintf("periods=%d", ev.Periods))
			}
		case chaos.NodeLoss:
			rec.Losses++
			orphans := n.Lose()
			if c.fr != nil {
				c.fr.trigger(p, ev.Node, TriggerNodeLoss, fmt.Sprintf("orphans=%d", len(orphans)))
			}
			for _, j := range orphans {
				if j.Attempts >= c.cfg.MaxPlaceAttempts {
					rec.Dropped++
					c.res.Dropped++
					continue
				}
				j.NotBefore = p + j.Attempts*c.cfg.BackoffPeriods
				c.queue = append(c.queue, j)
				rec.Requeued++
				c.res.Requeued++
			}
		}
	}
	c.res.Freezes += rec.Freezes
	c.res.Losses += rec.Losses

	// Arrivals and admission: a full queue rejects.
	for c.nextArr < len(c.arrivals) && c.arrivals[c.nextArr].Period == p {
		a := c.arrivals[c.nextArr]
		c.nextArr++
		rec.Arrivals++
		if len(c.queue) >= c.cfg.QueueCap {
			rec.Rejected++
			c.res.Rejected++
			continue
		}
		prof, err := app.ByName(a.App)
		if err != nil {
			return nil, err
		}
		alone, err := c.aloneIPC(a.App)
		if err != nil {
			return nil, err
		}
		c.queue = append(c.queue, &Job{
			ID:               a.Job,
			Profile:          prof,
			AloneIPC:         alone,
			ArrivalPeriod:    a.Period,
			PlacedPeriod:     -1,
			RemainingPeriods: a.DurationPeriods,
			Core:             -1,
		})
		rec.Admitted++
		c.res.Admitted++
	}

	// Quarantined nodes are healthy capacity the migration engine is
	// deliberately not placing onto; count them so backpressure from
	// quarantine is observable in the trace and the exporter.
	if c.cfg.Migration.Enabled {
		for i, n := range c.nodes {
			if !n.lost && !n.retired && p < c.quarUntil[i] {
				rec.Quarantined++
			}
		}
	}

	// Placement pass. Candidate views are built once into pooled slices,
	// then updated in place as placements land — each placement folds
	// the job's predicted bandwidth and capped footprint into its view
	// (with the prediction taken against the pre-placement population,
	// exactly what a fresh rebuild would see) and a filled node leaves
	// the candidate list in order. The pass is sequential (FIFO over the
	// queue) to keep the random scheduler's stream deterministic.
	c.views = c.views[:0]
	c.owner = c.owner[:0]
	for i, n := range c.nodes {
		if n.lost || n.retired || n.draining || n.Frozen(p) || n.FreeCores() <= 0 || p < c.quarUntil[i] {
			continue
		}
		c.views = append(c.views, n.view(c.lastGbps[i]))
		c.owner = append(c.owner, i)
	}
	kept := c.kept[:0]
	for _, j := range c.queue {
		if j.NotBefore > p {
			kept = append(kept, j)
			continue
		}
		idx, ok := c.sched.Pick(j, c.views)
		if !ok || idx < 0 || idx >= len(c.views) {
			kept = append(kept, j)
			continue
		}
		ni := c.owner[idx]
		if err := c.nodes[ni].Place(j, p); err != nil {
			return nil, err
		}
		j.Attempts++
		v := &c.views[idx]
		pred := PredictJobGbps(c.cfg.Machine, j.Profile, v.BEWays, v.BECount)
		beBytes := c.cfg.Machine.WaysBytes(v.BEWays)
		fp := j.Profile.MaxFootprint()
		if fp > beBytes {
			fp = beBytes
		}
		v.BECount++
		v.FreeCores--
		v.BEFootprint += fp
		v.TotalGbps += pred
		rec.Placed++
		c.res.Placements++
		if j.Attempts == 1 {
			c.waits = append(c.waits, float64(p-j.ArrivalPeriod))
		}
		if v.FreeCores <= 0 {
			copy(c.views[idx:], c.views[idx+1:])
			c.views = c.views[:len(c.views)-1]
			copy(c.owner[idx:], c.owner[idx+1:])
			c.owner = c.owner[:len(c.owner)-1]
		}
	}
	c.kept = c.queue[:0] // swap backing arrays; both pools persist
	c.queue = kept

	// Step nodes through the sharded work-stealing executor. Heartbeats
	// land in index-addressed slots; integer counters accumulate
	// per-worker and merge in worker order (commutative), while float
	// aggregates reduce in node-index order below — so the trace is
	// byte-identical at any worker count, and the lowest-index error
	// wins deterministically.
	if cap(c.outs) < len(c.nodes) {
		c.outs = make([]stepOut, len(c.nodes))
	}
	c.outs = c.outs[:len(c.nodes)]
	for w := range c.accs {
		c.accs[w] = stepAcc{}
	}
	c.stepP = p
	if err := par.ExecuteW(len(c.nodes), c.cfg.Workers, c.stepFn); err != nil {
		return nil, err
	}

	normSum := 0.0
	live := 0
	for i := range c.outs {
		o := &c.outs[i]
		rec.Nodes = append(rec.Nodes, o.hb)
		if !o.hb.Lost && !o.hb.Retired {
			live++
		}
		if !o.live {
			continue
		}
		c.lastGbps[i] = o.hb.TotalGbps
		normSum += o.hb.NormSum
		if o.hb.SLOViolated {
			rec.SLOViolations++
			c.res.SLOViolationPeriods++
		}
	}
	// Per-node burn-rate alerters advance serially in ID order, off the
	// heartbeat stream (live nodes only — frozen and lost nodes miss
	// heartbeats, matching the diag monitors). A transition to firing is
	// an incident trigger when the flight recorder is armed.
	if c.alerters != nil {
		for i := range c.outs {
			if !c.outs[i].live {
				continue
			}
			v := 0.0
			if c.outs[i].hb.SLOViolated {
				v = 1
			}
			ev, changed := c.alerters[i].Step(v)
			if changed && ev.Firing && c.fr != nil {
				c.fr.trigger(p, i, TriggerSLOBurn, fmt.Sprintf("burn=%.2f/%.2f", ev.ShortBurn, ev.LongBurn))
			}
		}
	}
	// Flight pass: one entry per non-retired node into its black-box
	// ring — the heartbeat, the controller's decision provenance for the
	// period, the alerter's burn state — then the period's control
	// events, then any due incident seals. All value copies into
	// preallocated rings; steady state allocates nothing.
	if c.fr != nil {
		for i := range c.outs {
			o := &c.outs[i]
			if o.hb.Retired {
				continue
			}
			e := FlightEntry{Period: p, Heartbeat: o.hb}
			c.nodes[i].takeFlight(&e)
			if o.live && c.alerters != nil {
				a := c.alerters[i]
				burns := a.Burns()
				e.BurnShort, e.BurnLong = burns[0], burns[len(burns)-1]
				e.AlertFiring = a.Firing()
			}
			c.fr.noteEntry(e)
		}
		c.fr.noteEvents(p, rec.Events)
		rec.Incidents = c.fr.seal(p, false, c.incidentManifest)
	}
	running := 0
	for w := range c.accs {
		rec.Done += c.accs[w].done
		running += c.accs[w].running
	}
	c.res.Done += rec.Done
	rec.QueueLen = len(c.queue)
	rec.Running = running
	if c.cfg.Autoscale.Enabled {
		rec.NodesLive = live
	}
	// Retired capacity leaves the EFU denominator (scaling down must not
	// read as utilisation loss); lost and frozen capacity still counts
	// as zero-earning, as before.
	rec.FleetEFU = normSum / float64((len(c.nodes)-c.retiredCount)*c.cfg.Machine.Cores)
	c.efuSum += rec.FleetEFU

	if c.lw != nil {
		c.lw.WriteLine(rec)
		if err := c.lw.Err(); err != nil {
			return nil, err
		}
	}
	c.haveRec = true
	c.period++
	return rec, nil
}

// Finish flushes the trace and returns the run summary. Pending
// incident triggers whose tail the horizon cut short are sealed with
// the evidence recorded so far. Idempotent.
func (c *Cluster) Finish() (Result, error) {
	c.stepMu.Lock()
	if c.finished {
		res, err := c.res, c.finishErr
		c.stepMu.Unlock()
		return res, err
	}
	c.finished = true
	var sealed []*Incident
	if c.fr != nil {
		c.fr.justSealed = c.fr.justSealed[:0]
		c.fr.seal(c.period, true, c.incidentManifest)
		c.res.Incidents = len(c.fr.incidents)
		c.res.IncidentsDropped = c.fr.dropped
		if c.cfg.OnIncident != nil {
			sealed = append(sealed, c.fr.justSealed...)
		}
	}
	c.res.Periods = c.period
	c.res.QueuedEnd = len(c.queue)
	for _, n := range c.nodes {
		if !n.lost {
			c.res.RunningEnd += n.BECount()
		}
	}
	if c.cfg.Autoscale.Enabled {
		for _, n := range c.nodes {
			if !n.lost && !n.retired {
				c.res.NodesEnd++
			}
		}
	}
	if c.period > 0 {
		c.res.FleetEFU = c.efuSum / float64(c.period)
	}
	if c.res.Arrivals > 0 {
		c.res.RejectRate = float64(c.res.Rejected) / float64(c.res.Arrivals)
	}
	if len(c.waits) > 0 {
		c.res.MeanQueueWait = metrics.Mean(c.waits)
		c.res.P95QueueWait = metrics.NewCDF(c.waits).Quantile(0.95)
	}
	if c.lw != nil {
		c.finishErr = c.lw.Flush()
	}
	res, err := c.res, c.finishErr
	c.stepMu.Unlock()
	for _, inc := range sealed {
		c.cfg.OnIncident(inc)
	}
	return res, err
}

// Run steps the cluster to its horizon and returns the summary.
func (c *Cluster) Run() (Result, error) {
	for !c.Done() {
		if err := c.Step(); err != nil {
			return Result{}, err
		}
	}
	return c.Finish()
}
