package fleet

import (
	"fmt"
	"math/rand"

	"dicer/internal/app"
	"dicer/internal/machine"
)

// NodeView is the snapshot of one candidate node the scheduler sees:
// capacity, population, the last heartbeat's bandwidth (plus the
// predicted demand of placements already made this period), and the BE
// partition geometry the pressure model needs. The cluster only builds
// views for healthy nodes with a free core, so feasibility beyond that
// is the scheduler's own policy.
type NodeView struct {
	ID        int
	FreeCores int
	BECount   int
	// BEWays is the BE partition width; with it the pressure model knows
	// how many bytes the BEs actually share.
	BEWays int
	// TotalGbps is the node's most recent measured memory bandwidth,
	// inflated by the predicted demand of same-period placements.
	TotalGbps float64
	// BEFootprint sums the running BE jobs' cacheable footprints, each
	// capped at the BE partition size — the LLC pressure already there.
	BEFootprint float64
	// HPGroupPressure is the worst HP CLOS group's LLC overcommit on a
	// multi-HP node (member footprints over group capacity, beyond 1×).
	// Single-HP nodes report zero, keeping the legacy score unchanged.
	HPGroupPressure float64
	Machine         machine.Machine
}

// Scheduler places queued jobs onto candidate nodes. Pick returns the
// chosen node's position in views and whether any node is acceptable;
// returning ok=false queues the job for a later period. Implementations
// must be deterministic given their construction arguments (the random
// scheduler owns a seeded stream).
type Scheduler interface {
	Name() string
	Pick(job *Job, views []NodeView) (idx int, ok bool)
}

// NewScheduler builds a scheduler by name: "random", "least-loaded" or
// "headroom". seed feeds the random scheduler's stream (ignored by the
// deterministic ones).
func NewScheduler(name string, seed int64) (Scheduler, error) {
	switch name {
	case "random":
		return &RandomScheduler{rng: rand.New(rand.NewSource(seed))}, nil
	case "least-loaded":
		return LeastLoadedScheduler{}, nil
	case "headroom":
		return HeadroomScheduler{}, nil
	}
	return nil, fmt.Errorf("fleet: unknown scheduler %q (have random, least-loaded, headroom)", name)
}

// SchedulerNames lists the built-in schedulers.
func SchedulerNames() []string { return []string{"random", "least-loaded", "headroom"} }

// RandomScheduler places uniformly at random among candidates — the
// baseline any informed scheduler must beat.
type RandomScheduler struct {
	rng *rand.Rand
}

// Name implements Scheduler.
func (*RandomScheduler) Name() string { return "random" }

// Pick implements Scheduler.
func (s *RandomScheduler) Pick(_ *Job, views []NodeView) (int, bool) {
	if len(views) == 0 {
		return 0, false
	}
	return s.rng.Intn(len(views)), true
}

// LeastLoadedScheduler places on the node with the fewest running BE
// jobs (ties to the lowest node ID) — load balancing blind to what the
// jobs actually are.
type LeastLoadedScheduler struct{}

// Name implements Scheduler.
func (LeastLoadedScheduler) Name() string { return "least-loaded" }

// Pick implements Scheduler.
func (LeastLoadedScheduler) Pick(_ *Job, views []NodeView) (int, bool) {
	best, ok := 0, false
	for i, v := range views {
		if !ok || v.BECount < views[best].BECount ||
			(v.BECount == views[best].BECount && v.ID < views[best].ID) {
			best, ok = i, true
		}
	}
	return best, ok
}

// HeadroomScheduler is the informed placer: it predicts the job's memory
// bandwidth demand from its miss-ratio curve at the share of the BE
// partition it would get, refuses nodes the prediction would push past
// the link's queueing knee, and scores the rest by remaining bandwidth
// headroom minus an LLC-overcommit penalty (the job's cacheable
// footprint stacked onto what the resident BEs already demand of the BE
// partition). Highest score wins — effectively worst-fit on bandwidth,
// so streamers spread out instead of saturating one link, with
// cache-hungry jobs steered away from crowded BE partitions.
type HeadroomScheduler struct{}

// pressureWeight converts LLC overcommit (fraction of the BE partition
// demanded beyond 1×) into bandwidth-headroom-fraction units.
const pressureWeight = 0.15

// Name implements Scheduler.
func (HeadroomScheduler) Name() string { return "headroom" }

// Pick implements Scheduler.
func (HeadroomScheduler) Pick(job *Job, views []NodeView) (int, bool) {
	best, ok := 0, false
	bestScore := 0.0
	for i, v := range views {
		score, feasible := headroomScore(job, v)
		if !feasible {
			continue
		}
		if !ok || score > bestScore ||
			(score == bestScore && v.ID < views[best].ID) {
			best, bestScore, ok = i, score, true
		}
	}
	return best, ok
}

// headroomScore scores one candidate; feasible is false when the
// predicted placement crosses the saturation knee.
func headroomScore(job *Job, v NodeView) (score float64, feasible bool) {
	link := v.Machine.Link
	kneeGbps := link.Knee * link.CapacityGBps
	predicted := v.TotalGbps + PredictJobGbps(v.Machine, job.Profile, v.BEWays, v.BECount)
	if predicted > kneeGbps {
		return 0, false
	}
	score = (kneeGbps - predicted) / link.CapacityGBps

	beBytes := v.Machine.WaysBytes(v.BEWays)
	if beBytes > 0 {
		fp := job.Profile.MaxFootprint()
		if fp > beBytes {
			fp = beBytes
		}
		if overcommit := (v.BEFootprint+fp)/beBytes - 1; overcommit > 0 {
			score -= pressureWeight * overcommit
		}
	}
	// Thrashing HP groups on multi-HP nodes repel placements the same
	// way: their controllers will claw ways back from BE, so the
	// advertised partition overstates what the job would really get.
	score -= pressureWeight * v.HPGroupPressure
	return score, true
}

// PredictJobGbps predicts the memory bandwidth (Gbps) a job would add to
// a node, from its miss-ratio curve evaluated at an equal share of the
// BE partition among beCount resident jobs plus this one, at unloaded
// memory latency. The worst phase bounds the demand — admission should
// be conservative about streamers.
func PredictJobGbps(m machine.Machine, p app.Profile, beWays, beCount int) float64 {
	share := m.WaysBytes(beWays)
	if beCount+1 > 0 {
		share /= float64(beCount + 1)
	}
	worst := 0.0
	for _, ph := range p.Phases {
		miss := ph.Curve.MissRatio(share)
		perf := app.PhasePerfMiss(m, ph, miss, 1, 1)
		if gbps := perf.BytesPerSec * 8 / 1e9; gbps > worst {
			worst = gbps
		}
	}
	return worst
}
