package fleet

import (
	"bytes"
	"testing"

	"dicer/internal/app"
	"dicer/internal/chaos"
	"dicer/internal/machine"
)

// TestPlacementCapacityProperty runs an overloaded cluster under every
// scheduler and checks the core-capacity invariant on every period
// record: no node ever reports more BEs than it has spare cores, and
// the cluster never runs more jobs than fleet BE capacity.
func TestPlacementCapacityProperty(t *testing.T) {
	for _, sched := range SchedulerNames() {
		var buf bytes.Buffer
		runFleet(t, Config{
			Nodes:          3,
			HorizonPeriods: 40,
			Scheduler:      sched,
			SchedSeed:      17,
			Arrivals:       ArrivalConfig{Seed: 13, RatePerPeriod: 6, MeanDurationPeriods: 15},
			QueueCap:       64,
			Trace:          &buf,
		})
		_, recs, err := ReadClusterTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		m := machine.Default()
		beCap := m.Cores - 1
		for _, rec := range recs {
			total := 0
			for _, hb := range rec.Nodes {
				if hb.BECount > beCap {
					t.Fatalf("%s: period %d node %d runs %d BEs, capacity %d",
						sched, rec.Period, hb.Node, hb.BECount, beCap)
				}
				total += hb.BECount
			}
			if total > 3*beCap {
				t.Fatalf("%s: period %d cluster runs %d BEs, capacity %d", sched, rec.Period, total, 3*beCap)
			}
		}
	}
}

// TestNoPlacementOnFrozenNode freezes a node for a long window under
// heavy load: its BE population must not change while frozen (Place on a
// frozen node is an error that would fail the run).
func TestNoPlacementOnFrozenNode(t *testing.T) {
	var buf bytes.Buffer
	freezeAt, freezeFor := 5, 12
	runFleet(t, Config{
		Nodes:          2,
		HorizonPeriods: 30,
		Arrivals:       ArrivalConfig{Seed: 4, RatePerPeriod: 3, MeanDurationPeriods: 10},
		QueueCap:       64,
		NodeChaos: chaos.NodeSchedule{Name: "one-freeze", Events: []chaos.NodeEvent{
			{Period: freezeAt, Node: 1, Fault: chaos.NodeFreeze, Periods: freezeFor},
		}},
		Trace: &buf,
	})
	_, recs, err := ReadClusterTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frozenCount := -1
	sawFrozen := false
	for _, rec := range recs {
		hb := rec.Nodes[1]
		if rec.Period >= freezeAt && rec.Period < freezeAt+freezeFor {
			if !hb.Frozen {
				t.Fatalf("period %d: node 1 should be frozen: %+v", rec.Period, hb)
			}
			sawFrozen = true
			if frozenCount == -1 {
				frozenCount = hb.BECount
			} else if hb.BECount != frozenCount {
				t.Fatalf("period %d: frozen node's BE count changed %d -> %d",
					rec.Period, frozenCount, hb.BECount)
			}
			if hb.TotalGbps != 0 || hb.HPIPC != 0 {
				t.Fatalf("period %d: frozen node reported readings: %+v", rec.Period, hb)
			}
		} else if hb.Frozen {
			t.Fatalf("period %d: node 1 frozen outside the window", rec.Period)
		}
	}
	if !sawFrozen {
		t.Fatal("freeze window never observed")
	}
}

// TestHeadroomRefusesSaturatedNodes pins the knee feasibility rule: a
// streamer must not be placed on a node whose link is already at the
// knee when an unsaturated candidate exists, and when every candidate is
// past the knee the job queues.
func TestHeadroomRefusesSaturatedNodes(t *testing.T) {
	m := machine.Default()
	knee := m.Link.Knee * m.Link.CapacityGBps
	job := &Job{Profile: app.MustByName("lbm1")} // heavy streamer
	sched := HeadroomScheduler{}

	saturated := NodeView{ID: 0, FreeCores: 5, BEWays: 10, TotalGbps: knee - 0.1, Machine: m}
	idle := NodeView{ID: 1, FreeCores: 5, BEWays: 10, TotalGbps: 0, Machine: m}

	idx, ok := sched.Pick(job, []NodeView{saturated, idle})
	if !ok || idx != 1 {
		t.Fatalf("Pick = (%d, %v), want the idle node (1, true)", idx, ok)
	}

	if _, ok := sched.Pick(job, []NodeView{saturated, saturated}); ok {
		t.Fatal("placed a streamer with every candidate at the knee; want queueing")
	}

	if pred := PredictJobGbps(m, job.Profile, 10, 0); pred <= 0 {
		t.Fatalf("predicted bandwidth for a streamer should be positive, got %g", pred)
	}
}

// TestHeadroomPrefersHeadroom checks the score orders candidates by
// remaining bandwidth headroom (worst-fit) for a compute-bound job too.
func TestHeadroomPrefersHeadroom(t *testing.T) {
	m := machine.Default()
	job := &Job{Profile: app.MustByName("namd1")}
	busy := NodeView{ID: 0, FreeCores: 5, BEWays: 10, TotalGbps: 20, Machine: m}
	idle := NodeView{ID: 1, FreeCores: 5, BEWays: 10, TotalGbps: 2, Machine: m}
	idx, ok := HeadroomScheduler{}.Pick(job, []NodeView{busy, idle})
	if !ok || idx != 1 {
		t.Fatalf("Pick = (%d, %v), want the idle node", idx, ok)
	}
}

// TestLeastLoadedPicksMinimum pins the least-loaded tie-break.
func TestLeastLoadedPicksMinimum(t *testing.T) {
	views := []NodeView{
		{ID: 0, BECount: 3},
		{ID: 1, BECount: 1},
		{ID: 2, BECount: 1},
	}
	idx, ok := LeastLoadedScheduler{}.Pick(nil, views)
	if !ok || idx != 1 {
		t.Fatalf("Pick = (%d, %v), want (1, true)", idx, ok)
	}
	if _, ok := (LeastLoadedScheduler{}).Pick(nil, nil); ok {
		t.Fatal("no candidates should not place")
	}
}

// TestRandomSchedulerSeeded pins the random scheduler's determinism.
func TestRandomSchedulerSeeded(t *testing.T) {
	views := make([]NodeView, 5)
	a, _ := NewScheduler("random", 99)
	b, _ := NewScheduler("random", 99)
	for i := 0; i < 50; i++ {
		ia, _ := a.Pick(nil, views)
		ib, _ := b.Pick(nil, views)
		if ia != ib {
			t.Fatalf("draw %d: %d != %d", i, ia, ib)
		}
	}
	if _, err := NewScheduler("bogus", 0); err == nil {
		t.Fatal("unknown scheduler should error")
	}
}
