package fleet

import (
	"bytes"
	"reflect"
	"testing"

	"dicer/internal/chaos"
)

// forensicsConfig is controlConfig with the flight recorder armed: the
// same saturating, chaos-laden cluster whose burn-rate alerts reliably
// fire, now dumping incident bundles.
func forensicsConfig(trace *bytes.Buffer) Config {
	cfg := controlConfig(trace)
	// A short cooldown and a generous retention bound: the chaos
	// schedule's freezes land near the burn-alert transitions, and the
	// test wants to see both trigger kinds.
	cfg.Forensics = ForensicsConfig{
		Enabled: true, WindowPeriods: 24, TailPeriods: 4,
		CooldownPeriods: 2, MaxIncidents: 32,
	}
	return cfg
}

// TestForensicsCapturesIncidents runs the engineered-violation cluster
// and checks the flight recorder produced well-formed bundles: known
// trigger kinds, window bounds that contain the trigger, flight entries
// dense and ordered within the window for the triggering node, and
// every in-scope control event attached.
func TestForensicsCapturesIncidents(t *testing.T) {
	var buf bytes.Buffer
	cfg := forensicsConfig(&buf)
	var fromCallback []*Incident
	cfg.OnIncident = func(inc *Incident) { fromCallback = append(fromCallback, inc) }
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	incidents := c.Incidents()
	if len(incidents) == 0 {
		t.Fatal("engineered violation run produced no incidents")
	}
	if res.Incidents != len(incidents) {
		t.Fatalf("Result.Incidents %d != len(Incidents()) %d", res.Incidents, len(incidents))
	}
	if len(fromCallback) != len(incidents) {
		t.Fatalf("OnIncident saw %d bundles, cluster retained %d", len(fromCallback), len(incidents))
	}
	sawBurn := false
	for i, inc := range incidents {
		m := inc.Manifest
		if m.Schema != IncidentSchema || m.Seq != i {
			t.Fatalf("incident %d manifest schema/seq: %+v", i, m)
		}
		switch m.Trigger {
		case TriggerSLOBurn:
			sawBurn = true
		case TriggerNodeLoss, TriggerNodeFreeze, TriggerGuardVeto:
		default:
			t.Fatalf("unknown trigger %q", m.Trigger)
		}
		if m.Period < m.WindowFrom || m.Period > m.WindowTo {
			t.Fatalf("incident %d: trigger period %d outside window [%d,%d]", i, m.Period, m.WindowFrom, m.WindowTo)
		}
		if m.Policy != "DICER" || m.Scheduler != "headroom" || m.Nodes != 3 {
			t.Fatalf("incident %d manifest context: %+v", i, m)
		}
		if len(inc.Flight) == 0 {
			t.Fatalf("incident %d has no flight entries", i)
		}
		for j, e := range inc.Flight {
			if e.Node != m.Node {
				t.Fatalf("incident %d flight[%d] from node %d, want %d", i, j, e.Node, m.Node)
			}
			if j > 0 && e.Period != inc.Flight[j-1].Period+1 {
				t.Fatalf("incident %d flight gap at %d: %d after %d", i, j, e.Period, inc.Flight[j-1].Period)
			}
		}
		if first, last := inc.Flight[0].Period, inc.Flight[len(inc.Flight)-1].Period; first != m.WindowFrom || last != m.WindowTo {
			t.Fatalf("incident %d window [%d,%d] vs flight [%d,%d]", i, m.WindowFrom, m.WindowTo, first, last)
		}
		for _, ev := range inc.Events {
			if ev.Period < m.WindowFrom || ev.Period > m.WindowTo {
				t.Fatalf("incident %d event outside window: %+v", i, ev)
			}
		}
	}
	if !sawBurn {
		t.Fatalf("no slo-burn incident among %d bundles", len(incidents))
	}
	// The bundles' evidence carries decision provenance: at least one
	// flight entry should name a controller cause.
	withCause := 0
	for _, inc := range incidents {
		for _, e := range inc.Flight {
			if e.Cause != "" {
				withCause++
			}
		}
	}
	if withCause == 0 {
		t.Fatal("no flight entry carries a controller cause tag")
	}
}

// TestForensicsWithoutMigration checks the recorder arms its own
// burn-rate alerters when the migration engine is off: the same hot
// cluster still produces slo-burn incidents (and, chaos permitting,
// loss/freeze ones), with no migration events in scope.
func TestForensicsWithoutMigration(t *testing.T) {
	var buf bytes.Buffer
	cfg := forensicsConfig(&buf)
	cfg.Migration = MigrationConfig{}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	incidents := c.Incidents()
	sawBurn := false
	for _, inc := range incidents {
		if inc.Manifest.Trigger == TriggerSLOBurn {
			sawBurn = true
		}
		if inc.Manifest.Alert.Budget != cfg.Forensics.Alert.Budget && cfg.Forensics.Alert.Budget != 0 {
			t.Fatalf("manifest alert config %+v not the forensics rule", inc.Manifest.Alert)
		}
	}
	if !sawBurn {
		t.Fatalf("no slo-burn incident without migration (got %d incidents)", len(incidents))
	}
}

// TestIncidentBundleByteDeterminism seals the same engineered run twice
// and requires every bundle to serialise to identical bytes — the
// property that makes a live dump interchangeable with its committed
// golden.
func TestIncidentBundleByteDeterminism(t *testing.T) {
	dump := func() [][]byte {
		var buf bytes.Buffer
		c, err := New(forensicsConfig(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		var out [][]byte
		for _, inc := range c.Incidents() {
			var b bytes.Buffer
			if err := inc.Dump(&b); err != nil {
				t.Fatal(err)
			}
			out = append(out, b.Bytes())
		}
		return out
	}
	a, b := dump(), dump()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("bundle counts differ or zero: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("bundle %d differs between identical runs:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}

// TestIncidentRoundTrip writes a bundle and reads it back unchanged:
// ReadIncident(Dump(inc)) == inc, so offline explain sees exactly
// what the live cluster sealed.
func TestIncidentRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c, err := New(forensicsConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	incidents := c.Incidents()
	if len(incidents) == 0 {
		t.Fatal("no incidents to round-trip")
	}
	for i, inc := range incidents {
		var b bytes.Buffer
		if err := inc.Dump(&b); err != nil {
			t.Fatal(err)
		}
		got, err := ReadIncident(&b)
		if err != nil {
			t.Fatalf("incident %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, inc) {
			t.Fatalf("incident %d round-trip mismatch:\n%+v\nvs\n%+v", i, got, inc)
		}
	}
}

// TestForensicsTriggerHygiene unit-tests the trigger bookkeeping: the
// per-node cooldown suppresses repeat triggers, the retention bound
// counts drops, and a guard-veto provenance tag in a flight entry is
// itself a trigger.
func TestForensicsTriggerHygiene(t *testing.T) {
	cfg := ForensicsConfig{Enabled: true, WindowPeriods: 8, TailPeriods: 2, CooldownPeriods: 10, MaxIncidents: 2}
	cfg.withDefaults()
	f := newForensics(cfg)
	f.addNode()
	f.addNode()

	f.trigger(5, 0, TriggerSLOBurn, "")
	f.trigger(6, 0, TriggerNodeFreeze, "") // cooldown: suppressed
	f.trigger(6, 1, TriggerNodeLoss, "")   // other node: allowed
	if len(f.pending) != 2 {
		t.Fatalf("pending %d, want 2 (cooldown must suppress same-node repeat)", len(f.pending))
	}
	f.trigger(7, 1, TriggerSLOBurn, "") // node 1 cooling down
	if len(f.pending) != 2 {
		t.Fatalf("pending %d after cooled trigger, want 2", len(f.pending))
	}
	// Past both cooldowns the bound bites: MaxIncidents 2 already pending.
	f.trigger(30, 0, TriggerSLOBurn, "")
	if len(f.pending) != 2 || f.dropped != 1 {
		t.Fatalf("pending %d dropped %d, want bound to drop the third", len(f.pending), f.dropped)
	}

	// guard-veto provenance triggers through noteEntry.
	g := newForensics(cfg)
	g.addNode()
	g.noteEntry(FlightEntry{Period: 3, Heartbeat: Heartbeat{Node: 0}, Cause: "guard-veto"})
	if len(g.pending) != 1 || g.pending[0].trigger != TriggerGuardVeto {
		t.Fatalf("guard-veto entry did not trigger: %+v", g.pending)
	}
	// Seal at the tail bound and check the ring snapshot landed.
	g.noteEntry(FlightEntry{Period: 4, Heartbeat: Heartbeat{Node: 0}})
	g.noteEntry(FlightEntry{Period: 5, Heartbeat: Heartbeat{Node: 0}})
	n := g.seal(5, false, func(pd *pendingIncident) IncidentManifest { return IncidentManifest{} })
	if n != 1 || len(g.incidents) != 1 {
		t.Fatalf("sealed %d incidents, want 1", n)
	}
	inc := g.incidents[0]
	if inc.Manifest.Trigger != TriggerGuardVeto || len(inc.Flight) != 3 || inc.Manifest.WindowFrom != 3 || inc.Manifest.WindowTo != 5 {
		t.Fatalf("sealed bundle malformed: %+v", inc.Manifest)
	}
}

// TestParallelSteppingByteIdenticalForensics256 extends the fleet's
// determinism acceptance to an armed recorder: a 256-node chaos-laden
// cluster with migration, autoscaling and forensics on steps to
// byte-identical traces AND byte-identical incident bundles at any
// worker count. CI's forensics-smoke job runs this under -race.
func TestParallelSteppingByteIdenticalForensics256(t *testing.T) {
	run := func(workers int) (Result, []byte, [][]byte) {
		var trace bytes.Buffer
		cfg := scaleConfig(256, 20, workers, &trace)
		cfg.Forensics = ForensicsConfig{Enabled: true, WindowPeriods: 12, TailPeriods: 3, CooldownPeriods: 10}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		var bundles [][]byte
		for _, inc := range c.Incidents() {
			var b bytes.Buffer
			if err := inc.Dump(&b); err != nil {
				t.Fatal(err)
			}
			bundles = append(bundles, b.Bytes())
		}
		return res, trace.Bytes(), bundles
	}
	rs, ts, bs := run(1)
	rp, tp, bp := run(8)
	if rs != rp {
		t.Errorf("Workers=1 and Workers=8 results differ:\n%+v\n%+v", rs, rp)
	}
	if !bytes.Equal(ts, tp) {
		t.Fatalf("traces differ with recorder armed (%d vs %d bytes)", len(ts), len(tp))
	}
	if len(bs) == 0 || len(bs) != len(bp) {
		t.Fatalf("bundle counts differ or zero: %d vs %d", len(bs), len(bp))
	}
	for i := range bs {
		if !bytes.Equal(bs[i], bp[i]) {
			t.Fatalf("bundle %d differs across worker counts", i)
		}
	}
}

// TestStepAllocFreeForensics pins the armed recorder's hot-path cost: a
// warm, healthy cluster (no triggers, no seals) steps at 0 allocs per
// period with per-node rings recording every heartbeat.
func TestStepAllocFreeForensics(t *testing.T) {
	c, err := New(Config{
		Nodes:          4,
		HorizonPeriods: 1 << 20,
		Workers:        1,
		Arrivals:       ArrivalConfig{Seed: 1, RatePerPeriod: 1e-300},
		Migration:      MigrationConfig{Enabled: true},
		Forensics:      ForensicsConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("armed steady-state Step allocates %.1f times per period, want 0", avg)
	}
}

// TestForensicsRetainsTail checks the post-trigger tail: a node-loss
// trigger at period p seals TailPeriods later and the bundle's window
// extends to the seal period, showing the aftermath.
func TestForensicsRetainsTail(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{
		Nodes:          2,
		HorizonPeriods: 30,
		Workers:        1,
		Arrivals:       ArrivalConfig{Seed: 7, RatePerPeriod: 1, MeanDurationPeriods: 6},
		NodeChaos: chaos.NodeSchedule{Name: "one-loss", Events: []chaos.NodeEvent{
			{Period: 10, Node: 1, Fault: chaos.NodeLoss},
		}},
		Forensics: ForensicsConfig{Enabled: true, WindowPeriods: 8, TailPeriods: 5},
		Trace:     &buf,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	incidents := c.Incidents()
	if len(incidents) != 1 {
		t.Fatalf("want exactly the loss incident, got %d", len(incidents))
	}
	m := incidents[0].Manifest
	if m.Trigger != TriggerNodeLoss || m.Node != 1 || m.Period != 10 {
		t.Fatalf("manifest %+v", m)
	}
	if m.WindowTo != 15 {
		t.Fatalf("window ends at %d, want trigger+tail = 15", m.WindowTo)
	}
	// Tail entries exist and carry the lost flag.
	tail := incidents[0].Flight[len(incidents[0].Flight)-1]
	if tail.Period != 15 || !tail.Lost {
		t.Fatalf("tail entry %+v, want lost node at period 15", tail)
	}
}
