// Package diag is the diagnostic layer on top of the observability
// substrate (internal/obs, internal/metrics): streaming percentile
// histograms, an SLO burn-rate alerter, and an offline trace analytics
// engine that runs the very same code over recorded JSONL traces.
//
// The paper's whole argument is an SLO argument — DICER must hold HP
// slowdown under a target while raising effective utilisation — and
// point-in-time gauges cannot answer the operator's questions: is the
// error budget burning, why did the controller shrink, which node is
// the outlier? This package answers them three ways:
//
//   - Histogram: fixed log-bucket streaming percentiles (zero-alloc
//     Observe) for HP slowdown, fleet EFU, link utilisation and
//     decision latency, exported as Prometheus histogram + quantile
//     series.
//   - Alerter: multi-window error-budget burn-rate rules over the
//     slowdown target, with hysteresis, per node and fleet-aggregate.
//   - Monitor / FleetMonitor / Analyze: the same histogram+alerter
//     pipeline fed live (as an obs sink or a fleet period callback) or
//     offline from a recorded trace — so an offline analysis of a trace
//     is bit-equal to what the live endpoints reported during the run.
package diag

import (
	"io"
	"math"

	"dicer/internal/metrics"
)

// Histogram is a streaming histogram over fixed logarithmic buckets:
// bucket i spans (lo·growth^(i-1), lo·growth^i], with one underflow and
// one overflow bucket at the ends. Observe is O(1) and allocation-free
// (the bench-smoke guard TestHistogramAllocFree pins this down), so a
// histogram can sit on the monitoring hot path for the lifetime of a
// deployment. Quantiles interpolate geometrically inside the bucket,
// which keeps them deterministic for deterministic inputs.
//
// A Histogram is not safe for concurrent use; the monitors lock around
// it.
type Histogram struct {
	lo     float64
	logLo  float64
	scale  float64 // buckets per unit of log10
	counts []uint64

	count uint64
	sum   float64
	min   float64
	max   float64
}

// NewHistogram builds a histogram spanning [lo, hi] with perDecade
// buckets per factor-of-ten. lo and hi must be positive with lo < hi.
func NewHistogram(lo, hi float64, perDecade int) *Histogram {
	if !(lo > 0) || !(hi > lo) || perDecade < 1 {
		panic("diag: bad histogram geometry")
	}
	decades := math.Log10(hi / lo)
	n := int(math.Ceil(decades*float64(perDecade))) + 2 // + under/overflow
	return &Histogram{
		lo:     lo,
		logLo:  math.Log10(lo),
		scale:  float64(perDecade),
		counts: make([]uint64, n),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// bucket maps a value to its bucket index.
func (h *Histogram) bucket(v float64) int {
	if !(v > h.lo) { // includes NaN, negatives, underflow
		return 0
	}
	i := 1 + int((math.Log10(v)-h.logLo)*h.scale)
	if i >= len(h.counts) {
		return len(h.counts) - 1
	}
	return i
}

// upper returns the inclusive upper bound of bucket i (the last bucket
// is unbounded).
func (h *Histogram) upper(i int) float64 {
	if i >= len(h.counts)-1 {
		return math.Inf(1)
	}
	return h.lo * math.Pow(10, float64(i)/h.scale)
}

// Observe records one value. Zero allocations.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucket(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Quantile returns the q-quantile (0 <= q <= 1), interpolating
// geometrically within the containing bucket and clamping to the exact
// observed min/max so q=0 and q=1 are exact. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo := h.lo
			if i > 1 {
				lo = h.upper(i - 1)
			}
			up := h.upper(i)
			if math.IsInf(up, 1) || i == 0 {
				// Unbounded (or underflow) bucket: no geometry to
				// interpolate over; clamp to the observed extreme.
				if i == 0 {
					return math.Min(h.lo, h.max)
				}
				return h.max
			}
			frac := (rank - cum) / float64(c)
			v := lo * math.Pow(up/lo, frac)
			return math.Min(math.Max(v, h.min), h.max)
		}
		cum = next
	}
	return h.max
}

// promQuantiles are the quantile gauges every histogram exports.
var promQuantiles = []float64{0.5, 0.9, 0.99}

// WriteProm renders the histogram as a Prometheus histogram series
// (cumulative le buckets, _sum, _count) plus precomputed quantile
// gauges under <name>_quantile, via internal/metrics.
func (h *Histogram) WriteProm(w io.Writer, name, help string) {
	uppers := make([]float64, len(h.counts))
	cum := make([]uint64, len(h.counts))
	var running uint64
	for i, c := range h.counts {
		running += c
		uppers[i] = h.upper(i)
		cum[i] = running
	}
	metrics.WritePromHistogram(w, name, help, uppers, cum, h.sum, h.count)
	vals := make([]float64, len(promQuantiles))
	for i, q := range promQuantiles {
		vals[i] = h.Quantile(q)
	}
	metrics.WritePromQuantiles(w, name+"_quantile", help+" (precomputed quantiles)", promQuantiles, vals)
}

// Summary is a histogram's fixed-quantile digest, the unit the analyze
// report prints and serialises.
type Summary struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Summarise digests the histogram under the given metric name.
func (h *Histogram) Summarise(name string) Summary {
	return Summary{
		Name:  name,
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.5),
		P90:   h.Quantile(0.9),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}
