package diag

import (
	"io"
	"sync"
	"time"

	"dicer/internal/core"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

// TimedPolicy wraps a co-location policy and times every Observe call
// into a latency histogram — the "decision latency" series of the live
// /metrics endpoints (dicer_observe_latency_seconds). Wall-clock is
// inherently nondeterministic, so this histogram is live-only and never
// part of the deterministic analyze Report (the offline proxy is the
// mask-change interval).
//
// Name/Setup delegate to the wrapped policy, and Controller() exposes a
// wrapped DICER controller, so core.ControllerOf — and with it trace
// headers and replay — see through the wrapper.
type TimedPolicy struct {
	policy.Policy

	mu   sync.Mutex // serialises Observe against /metrics scrapes
	hist *Histogram
}

// NewTimedPolicy wraps p. The latency histogram spans 100ns..1s.
func NewTimedPolicy(p policy.Policy) *TimedPolicy {
	return &TimedPolicy{Policy: p, hist: NewHistogram(1e-7, 1, 10)}
}

// Observe implements policy.Policy, timing the inner Observe.
func (t *TimedPolicy) Observe(sys resctrl.System, p resctrl.Period) error {
	start := time.Now()
	err := t.Policy.Observe(sys, p)
	d := time.Since(start).Seconds()
	t.mu.Lock()
	t.hist.Observe(d)
	t.mu.Unlock()
	return err
}

// Controller unwraps to the DICER controller when the inner policy is
// (or wraps) one; nil otherwise.
func (t *TimedPolicy) Controller() *core.Controller { return core.ControllerOf(t.Policy) }

// WriteProm renders the latency histogram.
func (t *TimedPolicy) WriteProm(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hist.WriteProm(w, "dicer_observe_latency_seconds", "Wall-clock latency of the policy's Observe call.")
}

var _ policy.Policy = (*TimedPolicy)(nil)
