package diag

import "dicer/internal/slo"

// The burn-rate alerter implementation lives in the leaf package
// internal/slo so the fleet layer's migration engine can evaluate the
// same rules without importing diag (which imports fleet). These
// aliases preserve the historical diag API — monitors, serve handlers,
// and the offline analyzer all keep using diag.Alerter et al., and the
// two packages share one implementation by construction.

// BurnWindow is one window of a multi-window burn-rate rule.
type BurnWindow = slo.BurnWindow

// AlertConfig parameterises the SLO burn-rate alerter.
type AlertConfig = slo.AlertConfig

// AlertEvent is one alert state transition.
type AlertEvent = slo.AlertEvent

// AlertState is an alerter snapshot, the unit /alerts serves.
type AlertState = slo.AlertState

// Alerter evaluates a multi-window burn-rate rule over a stream of
// per-period violation fractions.
type Alerter = slo.Alerter

// DefaultAlertConfig returns the stock rule: 10% error budget, a
// 5-period fast window at 2× burn plus a 60-period slow window at 1×,
// clearing after 3 consecutive periods below half the fast threshold.
func DefaultAlertConfig() AlertConfig { return slo.DefaultAlertConfig() }

// NewAlerter builds an alerter; invalid configurations panic (configs
// come from code or validated flags, not user data files).
func NewAlerter(cfg AlertConfig) *Alerter { return slo.NewAlerter(cfg) }
