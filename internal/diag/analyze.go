package diag

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dicer/internal/fleet"
	"dicer/internal/obs"
)

// Counters are the substrate-level period tallies of a single-node run.
type Counters struct {
	Saturated   int `json:"saturated,omitempty"`
	GuardVetoes int `json:"guard_vetoes,omitempty"`
	Tolerated   int `json:"tolerated,omitempty"`
}

// AlertReport summarises a run through the burn-rate alerter.
type AlertReport struct {
	Config        AlertConfig  `json:"config"`
	Violations    int          `json:"violations"`
	ViolationRate float64      `json:"violation_rate"`
	FiringPeriods int          `json:"firing_periods"`
	Fires         int          `json:"fires"`
	FinalFiring   bool         `json:"final_firing"`
	Events        []AlertEvent `json:"events"`
	Timeline      []BurnPoint  `json:"timeline,omitempty"`
}

// Report is the analytics engine's output: one run's diagnostic digest,
// identical whether computed live or offline. It renders as text
// (Render) or JSON.
type Report struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload,omitempty"`
	Policy   string `json:"policy,omitempty"`
	Periods  int    `json:"periods"`

	SLO            float64 `json:"slo"`
	SlowdownTarget float64 `json:"slowdown_target,omitempty"`
	AloneIPC       float64 `json:"alone_ipc,omitempty"`
	// RefSource records where the alone-IPC reference came from:
	// "header" (recorded in the trace), "option" (caller override), or
	// "trace-peak" (fallback: the trace's best HP IPC).
	RefSource string `json:"ref_source,omitempty"`

	Metrics []Summary    `json:"metrics"`
	Alert   AlertReport  `json:"alert"`
	Causes  []CauseCount `json:"causes,omitempty"`
	Counter Counters     `json:"counters,omitempty"`
	Nodes   []NodeReport `json:"nodes,omitempty"`
	// Groups is the per-CLOS-group breakdown of a multi-HP
	// (dicer-trace/v2) trace; empty for v1 and fleet traces.
	Groups []GroupSummary `json:"groups,omitempty"`
}

// GroupSummary aggregates one CLOS group's slice of a v2 trace.
type GroupSummary struct {
	Group     int     `json:"group"`
	Periods   int     `json:"periods"`
	IPCMean   float64 `json:"ipc_mean"`
	BWMean    float64 `json:"bw_mean_gbps"`
	WaysMean  float64 `json:"ways_mean"`
	Decisions int     `json:"decisions"`
	// TopCause is the group's most frequent decision cause (ties break
	// lexicographically, so the report stays deterministic).
	TopCause string `json:"top_cause,omitempty"`
}

// AnalyzeOptions tune the offline engine. The zero value analyses with
// the trace header's references and the default alert rules.
type AnalyzeOptions struct {
	// SLO overrides the trace header's SLO target.
	SLO float64
	// AloneIPC overrides the header's alone-run reference (single-node
	// traces only).
	AloneIPC float64
	// Alert overrides the burn-rate rules; zero = DefaultAlertConfig.
	Alert AlertConfig
}

// Analyze streams a recorded JSONL trace — single-node (dicer-trace/v1)
// or fleet (dicer-fleet/v1), sniffed from the header line — through the
// same Monitor/FleetMonitor pipeline the live endpoints use, and
// returns the run's diagnostic report. Determinism is by construction:
// identical records through identical code.
func Analyze(r io.Reader, opts AnalyzeOptions) (*Report, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("diag: read trace: %w", err)
	}
	line := raw
	if i := bytes.IndexByte(raw, '\n'); i >= 0 {
		line = raw[:i]
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return nil, fmt.Errorf("diag: bad trace header: %w", err)
	}
	switch probe.Schema {
	case obs.Schema, obs.SchemaV2:
		return analyzeNode(bytes.NewReader(raw), opts)
	case fleet.TraceSchema:
		return analyzeFleet(bytes.NewReader(raw), opts)
	default:
		return nil, fmt.Errorf("diag: unknown trace schema %q", probe.Schema)
	}
}

// analyzeNode runs a single-node trace through a Monitor.
func analyzeNode(r io.Reader, opts AnalyzeOptions) (*Report, error) {
	hdr, recs, err := obs.ReadTrace(r)
	if err != nil {
		return nil, err
	}
	refSource := "header"
	alone := hdr.HPAloneIPC
	if opts.AloneIPC > 0 {
		alone = opts.AloneIPC
		refSource = "option"
	}
	if alone == 0 {
		// Old traces carry no alone-run reference; the best HP IPC the
		// trace ever saw is the least-bad stand-in.
		for i := range recs {
			if recs[i].HPIPC > alone {
				alone = recs[i].HPIPC
			}
		}
		refSource = "trace-peak"
	}
	m := NewMonitor(MonitorConfig{
		SLO:      opts.SLO,
		AloneIPC: alone,
		Alert:    opts.Alert,
	})
	if err := m.Start(hdr); err != nil {
		return nil, err
	}
	for i := range recs {
		m.Emit(&recs[i])
	}
	rep := m.Report()
	rep.Schema = hdr.Schema
	rep.Policy = hdr.Policy
	rep.Workload = workloadName(hdr.HP, len(hdr.BEs))
	if len(hdr.HPs) > 0 {
		rep.Workload = workloadName(strings.Join(hdr.HPs, ","), len(hdr.BEs))
	}
	rep.RefSource = refSource
	rep.Groups = summariseGroups(recs)
	return rep, nil
}

// summariseGroups folds a v2 trace's per-CLOS-group records into one
// breakdown row per group. Returns nil on v1 traces (no group records).
func summariseGroups(recs []obs.Record) []GroupSummary {
	type acc struct {
		periods   int
		ipc, bw   float64
		ways      float64
		decisions int
		causes    map[string]int
	}
	var accs []*acc
	for i := range recs {
		for j := range recs[i].Groups {
			g := &recs[i].Groups[j]
			for g.Group >= len(accs) {
				accs = append(accs, &acc{causes: map[string]int{}})
			}
			a := accs[g.Group]
			a.periods++
			a.ipc += g.IPC
			a.bw += g.BWGbps
			a.ways += float64(g.Ways)
			a.decisions += len(g.Decisions)
			if g.Cause != "" {
				a.causes[g.Cause]++
			}
		}
	}
	var out []GroupSummary
	for id, a := range accs {
		if a.periods == 0 {
			continue
		}
		n := float64(a.periods)
		gs := GroupSummary{
			Group:     id,
			Periods:   a.periods,
			IPCMean:   a.ipc / n,
			BWMean:    a.bw / n,
			WaysMean:  a.ways / n,
			Decisions: a.decisions,
		}
		best := 0
		for _, cause := range sortedKeys(a.causes) {
			if c := a.causes[cause]; c > best {
				best, gs.TopCause = c, cause
			}
		}
		out = append(out, gs)
	}
	return out
}

// sortedKeys returns a map's keys sorted, for deterministic iteration.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// analyzeFleet runs a cluster trace through a FleetMonitor.
func analyzeFleet(r io.Reader, opts AnalyzeOptions) (*Report, error) {
	hdr, recs, err := fleet.ReadClusterTrace(r)
	if err != nil {
		return nil, err
	}
	m := NewFleetMonitor(FleetMonitorConfig{
		SLO:   opts.SLO,
		Alert: opts.Alert,
	})
	m.StartHeader(hdr)
	for i := range recs {
		m.ObserveRecord(&recs[i])
	}
	rep := m.Report()
	rep.Schema = hdr.Schema
	rep.Policy = hdr.Policy
	rep.Workload = fmt.Sprintf("%d nodes x %d cores, %.3g arrivals/period", hdr.Nodes, hdr.CoresPerNode, hdr.Arrivals.RatePerPeriod)
	rep.RefSource = "heartbeats"
	return rep, nil
}

// workloadName renders "hp + N BEs" the way the report header prints it.
func workloadName(hp string, bes int) string {
	if hp == "" {
		return ""
	}
	if bes == 0 {
		return hp
	}
	return fmt.Sprintf("%s + %d BEs", hp, bes)
}

// JSON renders the report as indented JSON (deterministic bytes).
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Render writes the human-readable diagnostic report: run header,
// percentile table, burn-rate summary and timeline, decision-cause
// histogram, and (fleet) the per-node outlier table. The output is
// deterministic for a given report — the golden-file test pins it.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "trace   %s", r.Schema)
	if r.Policy != "" {
		fmt.Fprintf(w, "  policy=%s", r.Policy)
	}
	fmt.Fprintln(w)
	if r.Workload != "" {
		fmt.Fprintf(w, "workload %s\n", r.Workload)
	}
	fmt.Fprintf(w, "periods %d  slo %.3g", r.Periods, r.SLO)
	if r.SlowdownTarget > 0 {
		fmt.Fprintf(w, " (slowdown target %.3gx)", r.SlowdownTarget)
	}
	if r.AloneIPC > 0 {
		fmt.Fprintf(w, "  alone-ipc %.4g", r.AloneIPC)
	}
	if r.RefSource != "" {
		fmt.Fprintf(w, "  ref %s", r.RefSource)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-30s %8s %9s %9s %9s %9s %9s\n",
		"metric", "count", "mean", "p50", "p90", "p99", "max")
	for _, s := range r.Metrics {
		fmt.Fprintf(w, "%-30s %8d %9.4g %9.4g %9.4g %9.4g %9.4g\n",
			s.Name, s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
	}

	fmt.Fprintln(w)
	a := &r.Alert
	fmt.Fprintf(w, "slo-burn alert: budget %.3g, windows", a.Config.Budget)
	for _, bw := range a.Config.Windows {
		fmt.Fprintf(w, " %dp@%.3gx", bw.Periods, bw.Burn)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "violations %d/%d (rate %.4f)  fires %d  firing-periods %d  final %s\n",
		a.Violations, r.Periods, a.ViolationRate, a.Fires, a.FiringPeriods, firingWord(a.FinalFiring))
	for _, ev := range a.Events {
		fmt.Fprintf(w, "  period %4d  %-6s  short-burn %.3f  long-burn %.3f\n",
			ev.Period, firingWord(ev.Firing), ev.ShortBurn, ev.LongBurn)
	}
	renderTimeline(w, a.Timeline, a.Config)

	if len(r.Causes) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "decision causes:")
		for _, c := range r.Causes {
			fmt.Fprintf(w, "  %-22s %6d\n", c.Cause, c.Periods)
		}
	}
	if r.Counter != (Counters{}) {
		fmt.Fprintf(w, "saturated-periods %d  guard-vetoes %d  tolerated-faults %d\n",
			r.Counter.Saturated, r.Counter.GuardVetoes, r.Counter.Tolerated)
	}

	if len(r.Groups) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "CLOS group breakdown:")
		fmt.Fprintf(w, "%-6s %8s %9s %9s %9s %10s %s\n",
			"group", "periods", "ipc-mean", "bw-mean", "ways-mean", "decisions", "top-cause")
		for _, g := range r.Groups {
			fmt.Fprintf(w, "%-6d %8d %9.4g %9.4g %9.4g %10d %s\n",
				g.Group, g.Periods, g.IPCMean, g.BWMean, g.WaysMean, g.Decisions, g.TopCause)
		}
	}

	if len(r.Nodes) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-5s %8s %6s %8s %9s %9s %9s %6s %7s %s\n",
			"node", "periods", "viol", "rate", "sd-p50", "sd-p99", "sd-max", "fires", "firing", "flags")
		for _, n := range r.Nodes {
			var flags []string
			if n.Outlier {
				flags = append(flags, "OUTLIER")
			}
			if n.Lost {
				flags = append(flags, "lost")
			}
			fmt.Fprintf(w, "%-5d %8d %6d %8.4f %9.4g %9.4g %9.4g %6d %7d %s\n",
				n.Node, n.Periods, n.Violations, n.ViolationRate,
				n.SlowdownP50, n.SlowdownP99, n.SlowdownMax,
				n.Fires, n.FiringPeriods, strings.Join(flags, ","))
		}
	}
}

// RenderString is Render into a string.
func (r *Report) RenderString() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

func firingWord(f bool) string {
	if f {
		return "FIRING"
	}
	return "ok"
}

// renderTimeline draws the short-window burn rate as a sparkline-style
// strip: one character per period ('#' while the alert fires, '*' when
// the short window alone is past threshold, '.' when any budget burns,
// '_' when clean), chunked into rows of 60.
func renderTimeline(w io.Writer, tl []BurnPoint, cfg AlertConfig) {
	if len(tl) == 0 {
		return
	}
	const row = 60
	fmt.Fprintln(w, "burn timeline (#=firing *=short-window hot .=burning _=idle):")
	for start := 0; start < len(tl); start += row {
		end := start + row
		if end > len(tl) {
			end = len(tl)
		}
		var b strings.Builder
		for _, p := range tl[start:end] {
			switch {
			case p.Firing:
				b.WriteByte('#')
			case len(cfg.Windows) > 0 && p.Short >= cfg.Windows[0].Burn:
				b.WriteByte('*')
			case p.Short > 0 || p.Long > 0:
				b.WriteByte('.')
			default:
				b.WriteByte('_')
			}
		}
		fmt.Fprintf(w, "  %4d %s\n", start, b.String())
	}
}
