package diag

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0.5, 50, 100)
	// 1..1000 uniform: quantiles should land near their exact ranks
	// even though most values overflow into the top buckets' geometry.
	rng := rand.New(rand.NewSource(1))
	var vals []float64
	for i := 0; i < 5000; i++ {
		v := 1 + 9*rng.Float64() // uniform [1,10)
		vals = append(vals, v)
		h.Observe(v)
	}
	if h.Count() != 5000 {
		t.Fatalf("count = %d, want 5000", h.Count())
	}
	exact := func(q float64) float64 {
		s := append([]float64(nil), vals...)
		for i := range s { // insertion sort is fine at this size
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s[int(q*float64(len(s)-1))]
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got, want := h.Quantile(q), exact(q)
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("q%.2f = %g, exact %g (rel err %.3f)", q, got, want, rel)
		}
	}
	if got := h.Quantile(0); got != h.Min() {
		t.Errorf("q0 = %g, want min %g", got, h.Min())
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Errorf("q1 = %g, want max %g", got, h.Max())
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(1, 100, 10)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// Underflow and overflow both count and stay within min/max clamps.
	h.Observe(0.001)
	h.Observe(1e6)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.99); q > h.Max() || q < h.Min() {
		t.Errorf("quantile %g outside [min,max]=[%g,%g]", q, h.Min(), h.Max())
	}
	if h.Max() != 1e6 || h.Min() != 0.001 {
		t.Errorf("min/max = %g/%g", h.Min(), h.Max())
	}

	for _, bad := range []func(){
		func() { NewHistogram(0, 1, 10) },
		func() { NewHistogram(2, 1, 10) },
		func() { NewHistogram(1, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry must panic")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramProm(t *testing.T) {
	h := NewHistogram(1, 10, 4)
	for _, v := range []float64{1, 2, 3, 5, 9, 20} {
		h.Observe(v)
	}
	var b strings.Builder
	h.WriteProm(&b, "test_metric", "help text")
	out := b.String()
	for _, want := range []string{
		"# TYPE test_metric histogram",
		`test_metric_bucket{le="+Inf"} 6`,
		"test_metric_sum 40",
		"test_metric_count 6",
		`test_metric_quantile{quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative (monotone non-decreasing).
	prev := uint64(0)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "test_metric_bucket") {
			continue
		}
		var n uint64
		if _, err := fmtSscan(line, &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("non-cumulative bucket: %q after %d", line, prev)
		}
		prev = n
	}
}

// fmtSscan pulls the trailing integer off a prom sample line.
func fmtSscan(line string, n *uint64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*n, err = parseUint(line[i+1:])
	if err != nil {
		return 0, err
	}
	return 1, nil
}

func parseUint(s string) (uint64, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errNotUint
		}
		v = v*10 + uint64(s[i]-'0')
	}
	return v, nil
}

var errNotUint = errorString("not an unsigned integer")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestHistogramAllocFree(t *testing.T) {
	h := newSlowdownHist()
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(1.37)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f per call, want 0", allocs)
	}
}

func TestAlerterStepAllocFree(t *testing.T) {
	a := NewAlerter(DefaultAlertConfig())
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		a.Step(float64(i%2))
	})
	if allocs != 0 {
		t.Fatalf("Step allocates %.1f per call, want 0", allocs)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newSlowdownHist()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1 + float64(i%100)/25)
	}
}

func BenchmarkAlerterStep(b *testing.B) {
	a := NewAlerter(DefaultAlertConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Step(float64(i & 1))
	}
}
