package diag

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dicer/internal/fleet"
	"dicer/internal/slo"
)

// syntheticIncident builds a hand-crafted bundle with a known causal
// story: BE placements at p35-36, a fleet repack at p38 followed by a
// controller shrink at p39, link saturation at p40, a violation run
// from p41 through the p47 trigger, a chaos freeze masking p43-44, and
// the node's own burn-driven eviction at p45.
func syntheticIncident() *fleet.Incident {
	inc := &fleet.Incident{
		Manifest: fleet.IncidentManifest{
			Schema: fleet.IncidentSchema, Seq: 3,
			Trigger: fleet.TriggerSLOBurn, Node: 1, Period: 47,
			Detail: "burn=2.40/1.10", WindowFrom: 30, WindowTo: 51,
			Policy: "dicer", Scheduler: "headroom", Nodes: 3,
			SLO: 0.9, PeriodSec: 1, Alert: slo.DefaultAlertConfig(),
		},
	}
	for p := 30; p <= 51; p++ {
		e := fleet.FlightEntry{
			Period:    p,
			Heartbeat: fleet.Heartbeat{Node: 1, HPIPC: 1.2, HPWays: 12, BECount: 2},
			State:     "optimise",
		}
		if p >= 35 {
			e.BECount = 3
		}
		if p >= 36 {
			e.BECount = 4
		}
		if p >= 39 {
			e.HPWays = 9
			if p == 39 {
				e.Cause, e.Decisions = "shrink-step", 1
			}
		}
		if p >= 40 {
			e.Saturated = true
		}
		if p >= 41 {
			e.SLOViolated = true
		}
		if p == 43 || p == 44 {
			e.Frozen = true
		}
		inc.Flight = append(inc.Flight, e)
	}
	inc.Events = []fleet.TimedEvent{
		{Period: 33, FleetEvent: fleet.FleetEvent{Cause: fleet.CauseMigration, Node: 0, Jobs: []int{5}, Detail: "burn=2.10/1.00"}},
		{Period: 38, FleetEvent: fleet.FleetEvent{Cause: fleet.CauseRepack, Node: -1, Detail: "nodes=3"}},
		{Period: 45, FleetEvent: fleet.FleetEvent{Cause: fleet.CauseMigration, Node: 1, Jobs: []int{7, 9}, Detail: "burn=2.40/1.10"}},
	}
	return inc
}

func TestExplainOnsetAndRanking(t *testing.T) {
	rep := ExplainIncident(syntheticIncident())
	if rep.Schema != ExplainSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if rep.Onset != 41 {
		t.Fatalf("onset %d, want 41", rep.Onset)
	}
	if rep.RunLength != 7 {
		t.Fatalf("run length %d, want 7 (p41..p47)", rep.RunLength)
	}
	if rep.Violations != 11 {
		t.Fatalf("violations %d, want 11 (run + tail)", rep.Violations)
	}
	if rep.Masked != 2 {
		t.Fatalf("masked %d, want 2 (p43-44 frozen)", rep.Masked)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings")
	}
	// The repack 3 periods before onset must outrank everything: the
	// controller shrink it precipitated, the saturation symptom, and
	// every post-onset event.
	top := rep.Findings[0]
	if top.Cause != fleet.CauseRepack || top.Period != 38 || top.Lead != 3 {
		t.Fatalf("top finding %+v, want repack at p38 lead 3", top)
	}
	if rep.Findings[1].Cause != "shrink-step" || rep.Findings[1].Period != 39 {
		t.Fatalf("second finding %+v, want shrink-step at p39", rep.Findings[1])
	}
	// Ranks are 1..n and scores are non-increasing.
	for i, f := range rep.Findings {
		if f.Rank != i+1 {
			t.Fatalf("finding %d has rank %d", i, f.Rank)
		}
		if i > 0 && f.Score > rep.Findings[i-1].Score {
			t.Fatalf("scores not sorted at %d: %v > %v", i, f.Score, rep.Findings[i-1].Score)
		}
	}
	// The node's own eviction (a response) must score below the repack
	// and carry a negative lead.
	for _, f := range rep.Findings {
		if f.Cause == fleet.CauseMigration && f.Period == 45 {
			if f.Lead != -4 || f.Score >= top.Score {
				t.Fatalf("own eviction scored %+v, want aftermath-dampened", f)
			}
		}
	}
	// The freeze evidence names the masked periods.
	found := false
	for _, f := range rep.Findings {
		if f.Cause == "node-freeze" {
			found = true
			if !strings.Contains(f.Evidence, "masked 2 period(s)") {
				t.Fatalf("freeze evidence %q lacks masking note", f.Evidence)
			}
		}
	}
	if !found {
		t.Fatal("no node-freeze finding")
	}
}

func TestExplainNoViolationRun(t *testing.T) {
	inc := syntheticIncident()
	inc.Manifest.Trigger = fleet.TriggerNodeLoss
	for i := range inc.Flight {
		inc.Flight[i].SLOViolated = false
	}
	rep := ExplainIncident(inc)
	if rep.Onset != inc.Manifest.Period || rep.RunLength != 0 {
		t.Fatalf("onset %d run %d, want trigger-period onset with empty run", rep.Onset, rep.RunLength)
	}
	if rep.Violations != 0 || rep.Masked != 0 {
		t.Fatalf("violations %d masked %d on a clean window", rep.Violations, rep.Masked)
	}
}

// TestExplainDeterministic pins the engine's core property: same bundle
// in, same bytes out — through ExplainIncident, through Dump+Explain
// round-trips, and through both renderings.
func TestExplainDeterministic(t *testing.T) {
	inc := syntheticIncident()
	a, b := ExplainIncident(inc), ExplainIncident(inc)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two explains of the same bundle differ")
	}

	var buf bytes.Buffer
	if err := inc.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := Explain(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("explain over the serialised bundle differs from the live one")
	}

	ja, _ := a.JSON()
	jc, _ := c.JSON()
	if !bytes.Equal(ja, jc) {
		t.Fatal("JSON renderings differ")
	}
	if a.RenderString(inc.Flight) != c.RenderString(inc.Flight) {
		t.Fatal("text renderings differ")
	}
}

func TestExplainRenderSections(t *testing.T) {
	inc := syntheticIncident()
	rep := ExplainIncident(inc)
	out := rep.RenderString(inc.Flight)
	for _, want := range []string{
		"incident #3  slo-burn on node 1 at period 47",
		"onset p41 (run 7)",
		"masked 2",
		"flight strip",
		"root-cause candidates",
		"fleet repack re-clustered",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
	// The strip marks the onset and trigger under the right columns.
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "  p30") {
			strip, marks := l, lines[i+1]
			vcol := strings.Index(strip, "V") // first violated period = onset
			if marks[vcol] != 'o' {
				t.Fatalf("onset marker misplaced:\n%s\n%s", strip, marks)
			}
			if !strings.Contains(marks, "^") {
				t.Fatalf("no trigger marker:\n%s\n%s", strip, marks)
			}
		}
	}
}
