package diag

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dicer/internal/fleet"
	"dicer/internal/metrics"
	"dicer/internal/obs"
)

// writeGauge forwards to the shared Prometheus text writer.
func writeGauge(w io.Writer, name, help string, v float64) {
	metrics.WritePromGauge(w, name, help, v)
}

// histories are capped so a monitor attached to a forever-looping serve
// mode stays bounded; offline analyses of normal traces fit well under
// the caps, so live and offline stay bit-equal.
const (
	maxEvents   = 1024
	maxTimeline = 4096
)

// newSlowdownHist spans 0.5x..50x at ~2.3% resolution.
func newSlowdownHist() *Histogram { return NewHistogram(0.5, 50, 100) }

// newUtilHist spans 1%..200% utilisation.
func newUtilHist() *Histogram { return NewHistogram(0.01, 2, 50) }

// newIntervalHist spans 1..1000 periods.
func newIntervalHist() *Histogram { return NewHistogram(0.5, 1000, 20) }

// BurnPoint is one period of the burn-rate timeline.
type BurnPoint struct {
	Period int     `json:"period"`
	Short  float64 `json:"short"`
	Long   float64 `json:"long"`
	Firing bool    `json:"firing"`
}

// CauseCount is one decision-provenance bucket of the cause histogram.
type CauseCount struct {
	Cause   string `json:"cause"`
	Periods int    `json:"periods"`
}

// MonitorConfig parameterises a single-node Monitor. The zero value is
// usable: SLO and the references are adopted from the trace header when
// the monitor is wired as a trace sink.
type MonitorConfig struct {
	// SLO is the HP's target fraction of alone performance; the
	// slowdown target is its reciprocal. 0 = adopt from header (0.9
	// when the header has none).
	SLO float64
	// AloneIPC is the HP's alone-run reference. 0 = adopt from header;
	// without any reference the SLO/slowdown diagnostics are skipped
	// (Analyze falls back to the trace's peak HP IPC instead).
	AloneIPC float64
	// LinkGbps is the memory-link capacity for link utilisation. 0 =
	// adopt from header; without one link diagnostics are skipped.
	LinkGbps float64
	// Alert configures the burn-rate alerter; zero = DefaultAlertConfig.
	Alert AlertConfig
	// OnAlert, when set, observes every alert transition (the /events
	// SSE stream publishes from here). Called with the monitor lock
	// held; keep it fast and do not call back into the monitor.
	OnAlert func(AlertEvent)
}

func (c MonitorConfig) alertConfig() AlertConfig {
	if len(c.Alert.Windows) == 0 {
		return DefaultAlertConfig()
	}
	return c.Alert
}

// Monitor is the single-node diagnostic pipeline: percentile histograms
// (HP slowdown, link utilisation, mask-change interval), the SLO
// burn-rate alerter, and the decision-cause histogram, all fed one
// obs.Record per monitoring period. It implements obs.Sink (and
// HeaderSink, to adopt the trace header's SLO/reference values), so it
// wires into a Scenario next to the Prometheus exporter; the offline
// analytics engine drives the identical code from a recorded trace, so
// live and offline diagnostics agree bit-for-bit.
//
// A Monitor is safe for concurrent Emit and snapshot/WriteProm calls.
type Monitor struct {
	mu  sync.Mutex
	cfg MonitorConfig

	slo      float64
	alone    float64
	linkGbps float64

	slowdown *Histogram
	linkUtil *Histogram
	interval *Histogram
	causes   map[string]int
	alerter  *Alerter

	periods       int
	violations    int
	saturated     int
	guardVetoes   int
	tolerated     int
	firingPeriods int

	lastWays   int
	lastChange int

	events   []AlertEvent
	timeline []BurnPoint
}

// NewMonitor builds a monitor.
func NewMonitor(cfg MonitorConfig) *Monitor {
	return &Monitor{
		cfg:      cfg,
		slo:      cfg.SLO,
		alone:    cfg.AloneIPC,
		linkGbps: cfg.LinkGbps,
		slowdown: newSlowdownHist(),
		linkUtil: newUtilHist(),
		interval: newIntervalHist(),
		causes:   map[string]int{},
		alerter:  NewAlerter(cfg.alertConfig()),
		lastWays: -1,
	}
}

// Start implements obs.HeaderSink: header values fill whatever the
// configuration left unset.
func (m *Monitor) Start(h obs.Header) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.slo == 0 {
		m.slo = h.SLO
	}
	if m.slo == 0 {
		m.slo = 0.9
	}
	if m.alone == 0 {
		m.alone = h.HPAloneIPC
	}
	if m.linkGbps == 0 {
		m.linkGbps = h.LinkGbps
	}
	return nil
}

// Emit implements obs.Sink: fold one monitoring period in.
func (m *Monitor) Emit(r *obs.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.periods
	m.periods++

	violated := false
	if m.alone > 0 && r.HPIPC > 0 {
		sd := m.alone / r.HPIPC
		m.slowdown.Observe(sd)
		if m.slo > 0 {
			violated = r.HPIPC < m.slo*m.alone
		}
	}
	if violated {
		m.violations++
	}
	if m.linkGbps > 0 {
		m.linkUtil.Observe(r.TotalGbps / m.linkGbps)
	}
	if r.Saturated {
		m.saturated++
	}
	if r.Guard != "" {
		m.guardVetoes++
	}
	if r.Tolerated {
		m.tolerated++
	}
	if r.Cause != "" {
		m.causes[r.Cause]++
	}
	if r.HPWays != m.lastWays {
		if m.lastWays >= 0 {
			m.interval.Observe(float64(p - m.lastChange))
		}
		m.lastWays = r.HPWays
		m.lastChange = p
	}

	frac := 0.0
	if violated {
		frac = 1
	}
	m.step(frac)
}

// step drives the alerter and the shared bookkeeping; the lock is held.
func (m *Monitor) step(violFrac float64) {
	ev, changed := m.alerter.Step(violFrac)
	if changed {
		if len(m.events) < maxEvents {
			m.events = append(m.events, ev)
		}
		if m.cfg.OnAlert != nil {
			m.cfg.OnAlert(ev)
		}
	}
	if m.alerter.Firing() {
		m.firingPeriods++
	}
	if len(m.timeline) < maxTimeline {
		burns := m.alerter.Burns()
		m.timeline = append(m.timeline, BurnPoint{
			Period: m.periods - 1,
			Short:  burns[0],
			Long:   burns[len(burns)-1],
			Firing: m.alerter.Firing(),
		})
	}
}

// Firing reports whether the SLO burn-rate alert is currently firing —
// the /healthz degradation signal.
func (m *Monitor) Firing() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alerter.Firing()
}

// Degraded is Firing with the reason attached: since when the alert has
// fired and how hot the burn rates run, so a 503 body says what is
// wrong instead of just that something is.
func (m *Monitor) Degraded() (bool, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.alerter.Firing() {
		return false, ""
	}
	st := m.alerter.State()
	return true, fmt.Sprintf("slo-burn alert firing since period %d (short-burn %.2f, long-burn %.2f)",
		st.Since, st.Burns[0], st.Burns[len(st.Burns)-1])
}

// AlertsSnapshot is the /alerts payload of a single-node monitor.
type AlertsSnapshot struct {
	SLO            float64      `json:"slo"`
	SlowdownTarget float64      `json:"slowdown_target,omitempty"`
	AloneIPC       float64      `json:"alone_ipc,omitempty"`
	Config         AlertConfig  `json:"config"`
	Aggregate      AlertState   `json:"aggregate"`
	Nodes          []NodeAlert  `json:"nodes,omitempty"`
	// Events are the aggregate alerter's transitions; NodeEvents (fleet
	// only) carry every transition with node attribution (-1 =
	// aggregate).
	Events     []AlertEvent      `json:"events"`
	NodeEvents []FleetAlertEvent `json:"node_events,omitempty"`
	Degraded   bool              `json:"degraded"`
}

// NodeAlert is one node's alert state inside a fleet snapshot.
type NodeAlert struct {
	Node  int        `json:"node"`
	Lost  bool       `json:"lost,omitempty"`
	State AlertState `json:"state"`
}

// Snapshot captures the current alert state for serving.
func (m *Monitor) Snapshot() AlertsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := AlertsSnapshot{
		SLO:       m.slo,
		AloneIPC:  m.alone,
		Config:    m.alerter.Config(),
		Aggregate: m.alerter.State(),
		Events:    append([]AlertEvent(nil), m.events...),
		Degraded:  m.alerter.Firing(),
	}
	if m.slo > 0 {
		s.SlowdownTarget = 1 / m.slo
	}
	return s
}

// WriteProm renders the monitor's histograms as Prometheus text; the
// serve modes append it to the exporter's /metrics output.
func (m *Monitor) WriteProm(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.slowdown.WriteProm(w, "dicer_hp_slowdown", "Per-period HP slowdown vs alone run.")
	m.linkUtil.WriteProm(w, "dicer_link_utilisation", "Per-period memory-link utilisation.")
	m.interval.WriteProm(w, "dicer_mask_change_interval_periods", "Periods between HP allocation changes.")
	writeAlertProm(w, "", m.alerter, m.firingPeriods)
}

// Report assembles the monitor's half of an analyze Report: everything
// except the trace-level metadata (schema, workload, policy, ref
// source), which the offline engine fills from the header.
func (m *Monitor) Report() *Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := &Report{
		SLO:      m.slo,
		AloneIPC: m.alone,
		Periods:  m.periods,
		Metrics: []Summary{
			m.slowdown.Summarise("hp_slowdown"),
			m.linkUtil.Summarise("link_utilisation"),
			m.interval.Summarise("mask_change_interval_periods"),
		},
		Alert:  m.alertReport(),
		Causes: sortCauses(m.causes),
	}
	if m.slo > 0 {
		rep.SlowdownTarget = 1 / m.slo
	}
	rep.Counter = Counters{
		Saturated:   m.saturated,
		GuardVetoes: m.guardVetoes,
		Tolerated:   m.tolerated,
	}
	return rep
}

// alertReport summarises the alerter; the lock is held.
func (m *Monitor) alertReport() AlertReport {
	ar := AlertReport{
		Config:        m.alerter.Config(),
		Violations:    m.violations,
		FiringPeriods: m.firingPeriods,
		Fires:         m.alerter.State().Fires,
		FinalFiring:   m.alerter.Firing(),
		Events:        append([]AlertEvent(nil), m.events...),
		Timeline:      append([]BurnPoint(nil), m.timeline...),
	}
	if m.periods > 0 {
		ar.ViolationRate = float64(m.violations) / float64(m.periods)
	}
	return ar
}

// sortCauses flattens a cause histogram deterministically: descending
// count, then lexicographic.
func sortCauses(causes map[string]int) []CauseCount {
	out := make([]CauseCount, 0, len(causes))
	for c, n := range causes {
		out = append(out, CauseCount{Cause: c, Periods: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Periods != out[j].Periods {
			return out[i].Periods > out[j].Periods
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

var (
	_ obs.Sink       = (*Monitor)(nil)
	_ obs.HeaderSink = (*Monitor)(nil)
)

// nodeState is the per-node diagnostic state of a FleetMonitor.
type nodeState struct {
	alerter    *Alerter
	slowdown   *Histogram
	periods    int
	violations int
	lost       bool
	firingP    int
}

// FleetMonitorConfig parameterises a FleetMonitor.
type FleetMonitorConfig struct {
	// SLO is the HPs' target fraction of alone performance (informational;
	// the heartbeats carry the violation verdicts). Default 0.9.
	SLO float64
	// LinkGbps is each node's link capacity; 0 = adopt from the cluster
	// trace header (link diagnostics are skipped without one).
	LinkGbps float64
	// Alert configures every alerter (per node and aggregate); zero =
	// DefaultAlertConfig.
	Alert AlertConfig
	// OnAlert observes alert transitions; node is the node ID, or -1
	// for the fleet aggregate. Called with the monitor lock held.
	OnAlert func(node int, ev AlertEvent)
}

func (c FleetMonitorConfig) alertConfig() AlertConfig {
	if len(c.Alert.Windows) == 0 {
		return DefaultAlertConfig()
	}
	return c.Alert
}

// FleetMonitor is the cluster-level diagnostic pipeline: fleet-wide
// histograms (per-node-period HP slowdown, fleet EFU, link
// utilisation), one burn-rate alerter per node plus a fleet aggregate
// (fed the violating fraction of live nodes), and per-node outlier
// bookkeeping. It consumes fleet.ClusterRecord — the cluster's
// OnPeriod callback live, the recorded trace offline — so both paths
// agree bit-for-bit.
//
// A FleetMonitor is safe for concurrent ObserveRecord and snapshot
// calls.
type FleetMonitor struct {
	mu  sync.Mutex
	cfg FleetMonitorConfig

	slo      float64
	linkGbps float64

	slowdown *Histogram
	efu      *Histogram
	linkUtil *Histogram
	agg      *Alerter

	nodes map[int]*nodeState

	periods       int
	violations    int // node-periods
	lostNodes     int
	firingPeriods int

	// aggEvents holds the fleet-aggregate alerter's transitions (the
	// report's alert timeline); events holds every transition with node
	// attribution (-1 = aggregate) for the /alerts snapshot.
	aggEvents []AlertEvent
	events    []FleetAlertEvent
	timeline  []BurnPoint
}

// FleetAlertEvent is an alert transition attributed to its source: a
// node ID, or -1 for the fleet aggregate.
type FleetAlertEvent struct {
	Node int `json:"node"`
	AlertEvent
}

// NewFleetMonitor builds a fleet monitor.
func NewFleetMonitor(cfg FleetMonitorConfig) *FleetMonitor {
	slo := cfg.SLO
	if slo == 0 {
		slo = 0.9
	}
	return &FleetMonitor{
		cfg:      cfg,
		slo:      slo,
		linkGbps: cfg.LinkGbps,
		slowdown: newSlowdownHist(),
		efu:      NewHistogram(0.005, 1.5, 50),
		linkUtil: newUtilHist(),
		agg:      NewAlerter(cfg.alertConfig()),
		nodes:    map[int]*nodeState{},
	}
}

// StartHeader adopts reference values from a cluster trace header.
func (m *FleetMonitor) StartHeader(h fleet.TraceHeader) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.SLO == 0 && h.SLO > 0 {
		m.slo = h.SLO
	}
	if m.linkGbps == 0 {
		m.linkGbps = h.LinkGbps
	}
}

func (m *FleetMonitor) node(id int) *nodeState {
	n := m.nodes[id]
	if n == nil {
		n = &nodeState{
			alerter:  NewAlerter(m.cfg.alertConfig()),
			slowdown: newSlowdownHist(),
		}
		m.nodes[id] = n
	}
	return n
}

// ObserveRecord folds one cluster monitoring period in.
func (m *FleetMonitor) ObserveRecord(rec *fleet.ClusterRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.periods++
	m.efu.Observe(rec.FleetEFU)

	live := 0
	violating := 0
	lost := 0
	for i := range rec.Nodes {
		hb := &rec.Nodes[i]
		if hb.Retired {
			// Autoscaled-away nodes leave the population entirely: they
			// are neither live (no readings) nor lost (not a failure).
			continue
		}
		n := m.node(hb.Node)
		n.lost = hb.Lost
		if hb.Lost {
			lost++
			continue
		}
		if hb.Frozen {
			continue
		}
		live++
		n.periods++
		if hb.HPNorm > 0 {
			sd := 1 / hb.HPNorm
			m.slowdown.Observe(sd)
			n.slowdown.Observe(sd)
		}
		if m.linkGbps > 0 {
			m.linkUtil.Observe(hb.TotalGbps / m.linkGbps)
		}
		frac := 0.0
		if hb.SLOViolated {
			frac = 1
			violating++
			n.violations++
			m.violations++
		}
		if ev, changed := n.alerter.Step(frac); changed {
			if len(m.events) < maxEvents {
				m.events = append(m.events, FleetAlertEvent{Node: hb.Node, AlertEvent: ev})
			}
			if m.cfg.OnAlert != nil {
				m.cfg.OnAlert(hb.Node, ev)
			}
		}
		if n.alerter.Firing() {
			n.firingP++
		}
	}
	m.lostNodes = lost

	frac := 0.0
	if live > 0 {
		frac = float64(violating) / float64(live)
	}
	if ev, changed := m.agg.Step(frac); changed {
		if len(m.events) < maxEvents {
			m.events = append(m.events, FleetAlertEvent{Node: -1, AlertEvent: ev})
		}
		if len(m.aggEvents) < maxEvents {
			m.aggEvents = append(m.aggEvents, ev)
		}
		if m.cfg.OnAlert != nil {
			m.cfg.OnAlert(-1, ev)
		}
	}
	if m.agg.Firing() {
		m.firingPeriods++
	}
	if len(m.timeline) < maxTimeline {
		burns := m.agg.Burns()
		m.timeline = append(m.timeline, BurnPoint{
			Period: m.periods - 1,
			Short:  burns[0],
			Long:   burns[len(burns)-1],
			Firing: m.agg.Firing(),
		})
	}
}

// Degraded reports the /healthz degradation signal: a firing alert
// (aggregate or any node) or a lost node. The reason names the exact
// source — which nodes are lost, which alerts fire and how hot their
// burn rates run — so a 503 body is actionable without a second query.
func (m *FleetMonitor) Degraded() (bool, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lostNodes > 0 {
		var lost []string
		for _, id := range m.nodeIDs() {
			if m.nodes[id].lost {
				lost = append(lost, strconv.Itoa(id))
			}
		}
		return true, fmt.Sprintf("node(s) lost: %s", strings.Join(lost, ","))
	}
	if m.agg.Firing() {
		st := m.agg.State()
		return true, fmt.Sprintf("fleet slo-burn alert firing since period %d (short-burn %.2f, long-burn %.2f)",
			st.Since, st.Burns[0], st.Burns[len(st.Burns)-1])
	}
	var firing []string
	for _, id := range m.nodeIDs() {
		if m.nodes[id].alerter.Firing() {
			firing = append(firing, strconv.Itoa(id))
		}
	}
	if len(firing) > 0 {
		return true, fmt.Sprintf("slo-burn alert firing on node(s) %s", strings.Join(firing, ","))
	}
	return false, ""
}

// nodeIDs returns the known node IDs sorted; the lock is held.
func (m *FleetMonitor) nodeIDs() []int {
	ids := make([]int, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Snapshot captures the fleet alert state for /alerts.
func (m *FleetMonitor) Snapshot() AlertsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := AlertsSnapshot{
		SLO:        m.slo,
		Config:     m.agg.Config(),
		Aggregate:  m.agg.State(),
		Events:     append([]AlertEvent(nil), m.aggEvents...),
		NodeEvents: append([]FleetAlertEvent(nil), m.events...),
	}
	if m.slo > 0 {
		s.SlowdownTarget = 1 / m.slo
	}
	for _, id := range m.nodeIDs() {
		n := m.nodes[id]
		s.Nodes = append(s.Nodes, NodeAlert{Node: id, Lost: n.lost, State: n.alerter.State()})
		if n.alerter.Firing() {
			s.Degraded = true
		}
	}
	if m.agg.Firing() || m.lostNodes > 0 {
		s.Degraded = true
	}
	return s
}

// WriteProm renders the fleet histograms and alert gauges.
func (m *FleetMonitor) WriteProm(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.slowdown.WriteProm(w, "dicer_fleet_hp_slowdown", "Per-node-period HP slowdown vs alone run.")
	m.efu.WriteProm(w, "dicer_fleet_efu_hist", "Per-period fleet effective utilisation.")
	m.linkUtil.WriteProm(w, "dicer_fleet_link_utilisation", "Per-node-period memory-link utilisation.")
	writeAlertProm(w, "fleet_", m.agg, m.firingPeriods)
}

// NodeReport is one node's row of the fleet analyze report.
type NodeReport struct {
	Node          int     `json:"node"`
	Periods       int     `json:"periods"`
	Violations    int     `json:"violations"`
	ViolationRate float64 `json:"violation_rate"`
	SlowdownP50   float64 `json:"slowdown_p50"`
	SlowdownP99   float64 `json:"slowdown_p99"`
	SlowdownMax   float64 `json:"slowdown_max"`
	Fires         int     `json:"fires"`
	FiringPeriods int     `json:"firing_periods"`
	Lost          bool    `json:"lost,omitempty"`
	// Outlier flags nodes violating at >= 2x the fleet-mean rate (and
	// at least once): where to look first.
	Outlier bool `json:"outlier,omitempty"`
}

// Report assembles the fleet half of an analyze Report (trace-level
// metadata left to the caller).
func (m *FleetMonitor) Report() *Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := &Report{
		SLO:     m.slo,
		Periods: m.periods,
		Metrics: []Summary{
			m.slowdown.Summarise("hp_slowdown"),
			m.efu.Summarise("fleet_efu"),
			m.linkUtil.Summarise("link_utilisation"),
		},
		Alert: AlertReport{
			Config:        m.agg.Config(),
			Violations:    m.violations,
			FiringPeriods: m.firingPeriods,
			Fires:         m.agg.State().Fires,
			FinalFiring:   m.agg.Firing(),
			Events:        append([]AlertEvent(nil), m.aggEvents...),
			Timeline:      append([]BurnPoint(nil), m.timeline...),
		},
	}
	if m.slo > 0 {
		rep.SlowdownTarget = 1 / m.slo
	}
	meanRate := 0.0
	nodePeriods := 0
	for _, n := range m.nodes {
		nodePeriods += n.periods
	}
	if nodePeriods > 0 {
		meanRate = float64(m.violations) / float64(nodePeriods)
		rep.Alert.ViolationRate = meanRate
	}
	for _, id := range m.nodeIDs() {
		n := m.nodes[id]
		nr := NodeReport{
			Node:          id,
			Periods:       n.periods,
			Violations:    n.violations,
			SlowdownP50:   n.slowdown.Quantile(0.5),
			SlowdownP99:   n.slowdown.Quantile(0.99),
			SlowdownMax:   n.slowdown.Max(),
			Fires:         n.alerter.State().Fires,
			FiringPeriods: n.firingP,
			Lost:          n.lost,
		}
		if n.periods > 0 {
			nr.ViolationRate = float64(n.violations) / float64(n.periods)
		}
		nr.Outlier = n.violations > 0 && meanRate > 0 && nr.ViolationRate >= 2*meanRate
		rep.Nodes = append(rep.Nodes, nr)
	}
	return rep
}

// writeAlertProm renders an alerter's gauges under a dicer_<prefix>
// namespace.
func writeAlertProm(w io.Writer, prefix string, a *Alerter, firingPeriods int) {
	st := a.State()
	firing := 0.0
	if st.Firing {
		firing = 1
	}
	writeGauge(w, "dicer_"+prefix+"slo_alert_firing", "1 while the SLO burn-rate alert fires.", firing)
	writeGauge(w, "dicer_"+prefix+"slo_alert_fires_total", "Lifetime SLO alert fire transitions.", float64(st.Fires))
	writeGauge(w, "dicer_"+prefix+"slo_alert_firing_periods_total", "Periods spent with the alert firing.", float64(firingPeriods))
	if len(st.Burns) > 0 {
		writeGauge(w, "dicer_"+prefix+"slo_burn_rate_short", "Short-window error-budget burn rate.", st.Burns[0])
		writeGauge(w, "dicer_"+prefix+"slo_burn_rate_long", "Long-window error-budget burn rate.", st.Burns[len(st.Burns)-1])
	}
}
