package diag

import "testing"

// cfg55 is a small, easily-reasoned rule: 10% budget, 5-period fast
// window at 2x burn, 20-period slow window at 1x, clear after 2 calm
// periods below half the fast threshold.
func cfg55() AlertConfig {
	return AlertConfig{
		Budget: 0.10,
		Windows: []BurnWindow{
			{Periods: 5, Burn: 2},
			{Periods: 20, Burn: 1},
		},
		ClearFraction: 0.5,
		ClearHold:     2,
	}
}

func TestAlerterFires(t *testing.T) {
	a := NewAlerter(cfg55())
	// Sustained violations: short window needs fraction >= 0.2 (2 x 0.1),
	// long window >= 0.1. With violFrac=1 every period, the short window
	// saturates after 1 period (fraction 1.0 -> burn 10), the long after
	// 2 of 20 (fraction 0.1 -> burn 1). So firing at period 1.
	var fired *AlertEvent
	for p := 0; p < 10; p++ {
		if ev, changed := a.Step(1); changed {
			ev := ev
			fired = &ev
			break
		}
	}
	if fired == nil {
		t.Fatal("alert never fired under sustained violations")
	}
	if !fired.Firing {
		t.Fatal("first transition should be a fire")
	}
	if fired.Period != 1 {
		t.Errorf("fired at period %d, want 1 (long window needs 2/20)", fired.Period)
	}
	if fired.ShortBurn < 2 || fired.LongBurn < 1 {
		t.Errorf("burns at fire = %.2f/%.2f, want >= thresholds", fired.ShortBurn, fired.LongBurn)
	}
	if !a.Firing() {
		t.Fatal("alerter must report firing")
	}
	if a.State().Fires != 1 {
		t.Errorf("fires = %d, want 1", a.State().Fires)
	}
}

func TestAlerterBlipDoesNotFire(t *testing.T) {
	a := NewAlerter(cfg55())
	// One violation in 40 periods: short window spikes to burn 2 for a
	// few periods, but the long window stays under 1x — no fire.
	for p := 0; p < 40; p++ {
		frac := 0.0
		if p == 10 {
			frac = 1
		}
		if _, changed := a.Step(frac); changed {
			t.Fatalf("alert transitioned at period %d on a single blip", p)
		}
	}
	if a.Firing() {
		t.Fatal("firing after a blip")
	}
}

func TestAlerterClearsWithHysteresis(t *testing.T) {
	a := NewAlerter(cfg55())
	for p := 0; p < 8; p++ {
		a.Step(1)
	}
	if !a.Firing() {
		t.Fatal("not firing after sustained violations")
	}
	// Clean periods: the 5-period short window drains 1/5 per period
	// from fraction 1.0. Clearing needs burn < 0.5*2 = 1, i.e. fraction
	// < 0.1 — only when the window is fully drained (fraction 0) after 5
	// clean periods, then ClearHold=2 consecutive calm periods.
	cleared := -1
	for p := 8; p < 30; p++ {
		if ev, changed := a.Step(0); changed {
			if ev.Firing {
				t.Fatalf("unexpected re-fire at period %d", p)
			}
			cleared = p
			break
		}
	}
	if cleared < 0 {
		t.Fatal("alert never cleared after calm")
	}
	// Drain completes at period 12 (5 clean pushes); calm streak of 2
	// reaches its hold at period 13.
	if cleared != 13 {
		t.Errorf("cleared at period %d, want 13", cleared)
	}
	if a.Firing() {
		t.Fatal("still firing after clear")
	}

	// Flapping guard: a single violation during the calm streak resets
	// the hold counter.
	b := NewAlerter(cfg55())
	for p := 0; p < 8; p++ {
		b.Step(1)
	}
	seq := []float64{0, 0, 0, 0, 0, 1, 0} // drain, then a blip at the edge
	for _, f := range seq {
		b.Step(f)
	}
	if !b.Firing() {
		t.Fatal("blip during calm streak must keep the alert firing")
	}
}

func TestAlerterFleetFractions(t *testing.T) {
	a := NewAlerter(cfg55())
	// A quarter of the fleet violating forever: short burn 2.5, long
	// burn 2.5 — fires; then violation stops and it clears.
	for p := 0; p < 20; p++ {
		a.Step(0.25)
	}
	if !a.Firing() {
		t.Fatal("25% violating fleet must fire a 10% budget")
	}
	for p := 0; p < 10; p++ {
		a.Step(0)
	}
	if a.Firing() {
		t.Fatal("must clear after the fleet calms")
	}
}

func TestAlerterClamps(t *testing.T) {
	a := NewAlerter(cfg55())
	a.Step(-3)
	if a.State().Violations != 0 {
		t.Error("negative fraction must clamp to 0")
	}
	a.Step(7)
	if got := a.State().Violations; got != 1 {
		t.Errorf("overlarge fraction must clamp to 1, violations = %g", got)
	}
}

func TestAlertConfigValidate(t *testing.T) {
	good := DefaultAlertConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []AlertConfig{
		{Budget: 0, Windows: good.Windows, ClearFraction: 0.5, ClearHold: 1},
		{Budget: 1.5, Windows: good.Windows, ClearFraction: 0.5, ClearHold: 1},
		{Budget: 0.1, ClearFraction: 0.5, ClearHold: 1},
		{Budget: 0.1, Windows: []BurnWindow{{Periods: 0, Burn: 1}}, ClearFraction: 0.5, ClearHold: 1},
		{Budget: 0.1, Windows: []BurnWindow{{Periods: 5, Burn: 0}}, ClearFraction: 0.5, ClearHold: 1},
		{Budget: 0.1, Windows: []BurnWindow{{Periods: 60, Burn: 1}, {Periods: 5, Burn: 2}}, ClearFraction: 0.5, ClearHold: 1},
		{Budget: 0.1, Windows: good.Windows, ClearFraction: 0, ClearHold: 1},
		{Budget: 0.1, Windows: good.Windows, ClearFraction: 0.5, ClearHold: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}
