package diag

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dicer/internal/fleet"
)

// The causal explain engine: given one sealed incident bundle, walk the
// decision provenance backwards from the violation and rank candidate
// root causes. The engine is pure — same bundle in, same report out,
// byte for byte — so a report over a live dump and one over a committed
// golden bundle are interchangeable evidence, and the text rendering
// can be golden-tested.

// ExplainSchema tags the explain report's JSON form.
const ExplainSchema = "dicer-explain/v1"

// Finding categories, coarsest first: which layer of the stack the
// candidate cause lives in.
const (
	// CatControlPlane: a fleet orchestration decision (repack,
	// migration, autoscale) in the incident window.
	CatControlPlane = "control-plane"
	// CatController: the node's own cache controller moved the
	// partition (shrink, sampling, recluster).
	CatController = "controller"
	// CatChaos: an injected node fault (freeze, loss).
	CatChaos = "chaos"
	// CatLoad: best-effort colocation pressure changed (placements).
	CatLoad = "load"
	// CatBandwidth: the memory link crossed its queueing knee.
	CatBandwidth = "bandwidth"
)

// Finding is one ranked candidate root cause.
type Finding struct {
	Rank     int    `json:"rank"`
	Category string `json:"category"`
	// Cause is the decision-provenance tag of the candidate: a fleet
	// event cause (repack, slo-burn-migration, ...), a controller cause
	// (shrink-step, sampling, ...), or a synthetic tag (node-freeze,
	// be-placement, link-saturation).
	Cause  string `json:"cause"`
	Period int    `json:"period"`
	// Lead is how many periods before the violation onset the candidate
	// acted; negative means it happened after the onset (aftermath or
	// masking evidence, scored down accordingly).
	Lead     int     `json:"lead"`
	Score    float64 `json:"score"`
	Evidence string  `json:"evidence"`
}

// ExplainReport is the engine's output: the incident's manifest, the
// violation-run geometry the engine found, and the ranked candidates.
type ExplainReport struct {
	Schema   string                 `json:"schema"`
	Incident fleet.IncidentManifest `json:"incident"`

	// Onset is the first period of the consecutive SLO-violated run the
	// trigger sits in (== the trigger period when the window shows no
	// violation, e.g. a node-loss trigger on a healthy node). RunLength
	// is that run's length up to the trigger; Violations counts every
	// violated period in the window; Masked counts frozen periods
	// inside [Onset, trigger] — periods whose counter reads the fault
	// injection swallowed.
	Onset      int `json:"onset"`
	RunLength  int `json:"run_length"`
	Violations int `json:"violations"`
	Masked     int `json:"masked_periods,omitempty"`

	Findings []Finding `json:"findings"`
}

// ExplainIncident runs the causal engine over one sealed bundle.
func ExplainIncident(inc *fleet.Incident) *ExplainReport {
	rep := &ExplainReport{
		Schema:   ExplainSchema,
		Incident: inc.Manifest,
	}
	fl := inc.Flight
	trig := inc.Manifest.Period

	// Violation-run geometry: find the latest violated entry at or
	// before the trigger, then extend backwards while consecutive
	// periods stay violated. The run's first period is the onset every
	// candidate's lead is measured from.
	rep.Onset = trig
	last := -1
	for i := range fl {
		if !fl[i].SLOViolated {
			continue
		}
		rep.Violations++
		if fl[i].Period <= trig {
			last = i
		}
	}
	if last >= 0 {
		first := last
		for first > 0 && fl[first-1].SLOViolated && fl[first-1].Period == fl[first].Period-1 {
			first--
		}
		rep.Onset = fl[first].Period
		rep.RunLength = last - first + 1
	}
	for i := range fl {
		if fl[i].Period >= rep.Onset && fl[i].Period <= trig && fl[i].Frozen {
			rep.Masked++
		}
	}

	var cands []Finding
	cands = append(cands, eventCandidates(inc, rep.Onset)...)
	cands = append(cands, flightCandidates(inc, rep.Onset, rep.Masked)...)

	// Deterministic ranking: score, then recency, then stable
	// tie-breaks on the strings.
	sort.Slice(cands, func(i, j int) bool {
		a, b := &cands[i], &cands[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Period != b.Period {
			return a.Period > b.Period
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		if a.Cause != b.Cause {
			return a.Cause < b.Cause
		}
		return a.Evidence < b.Evidence
	})
	for i := range cands {
		cands[i].Rank = i + 1
	}
	rep.Findings = cands
	return rep
}

// scoreAt weights a candidate by how long before the onset it acted: a
// cause right at the onset keeps its full weight, earlier ones decay,
// and anything after the onset is aftermath — kept as evidence but
// scored at a flat fraction so true precursors always outrank it.
func scoreAt(weight float64, period, onset int) (float64, int) {
	lead := onset - period
	if lead < 0 {
		return round3(weight * 0.25), lead
	}
	return round3(weight / (1 + 0.12*float64(lead))), lead
}

// round3 pins scores to 3 decimals so reports stay byte-stable across
// formatting changes.
func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }

// eventCandidates turns the fleet control events in the window into
// candidates. Events on the triggering node and events that move cache
// or capacity fleet-wide score high; the node's own burn-driven
// eviction is a response, not a cause, and scores low.
func eventCandidates(inc *fleet.Incident, onset int) []Finding {
	var out []Finding
	node, trig := inc.Manifest.Node, inc.Manifest.Period
	for i := range inc.Events {
		ev := &inc.Events[i]
		if ev.Period > trig {
			continue
		}
		var w float64
		var evidence string
		switch ev.Cause {
		case fleet.CauseRepack:
			w = 1.0
			evidence = "fleet repack re-clustered node cache plans in place of added capacity"
			if ev.Detail != "" {
				evidence += " (" + ev.Detail + ")"
			}
		case fleet.CauseScaleDown:
			if ev.Node == node {
				w = 0.9
				evidence = fmt.Sprintf("autoscaler drained this node (%s)", ev.Detail)
			} else {
				w = 0.45
				evidence = fmt.Sprintf("autoscaler removed capacity: node %d %s; surviving nodes absorb its load", ev.Node, ev.Detail)
			}
		case fleet.CauseMigration:
			if ev.Node == node {
				w = 0.35
				evidence = fmt.Sprintf("this node's burn alert evicted %d BE job(s) (%s) — a response to the violation, not its cause", len(ev.Jobs), ev.Detail)
			} else {
				w = 0.6
				evidence = fmt.Sprintf("node %d evicted %d BE job(s) (%s); evictees re-queued into the fleet raise colocation pressure elsewhere", ev.Node, len(ev.Jobs), ev.Detail)
			}
		case fleet.CauseScaleUp:
			w = 0.2
			evidence = fmt.Sprintf("autoscaler added capacity (node %d)", ev.Node)
		default:
			w = 0.3
			evidence = fmt.Sprintf("control event %q on node %d", ev.Cause, ev.Node)
		}
		score, lead := scoreAt(w, ev.Period, onset)
		out = append(out, Finding{
			Category: CatControlPlane,
			Cause:    ev.Cause,
			Period:   ev.Period,
			Lead:     lead,
			Score:    score,
			Evidence: evidence,
		})
	}
	return out
}

// shrinkWeight maps a controller decision cause to a prior: deliberate
// partition moves (shrink, saturation handling) are likelier culprits
// than exploratory ones.
func shrinkWeight(cause string) float64 {
	switch cause {
	case "shrink-step":
		return 0.9
	case "saturation-detected":
		return 0.85
	case "sampling":
		return 0.75
	case "guard-veto", "chaos-masked":
		return 0.8
	case "rollback":
		return 0.7
	}
	return 0.6
}

// flightCandidates walks consecutive flight entries of the triggering
// node and turns state transitions into candidates: HP-way shrinks
// (coalesced into runs, annotated with their provenance cause),
// recluster periods, BE placement bursts, link-saturation onsets, and
// chaos freeze/loss onsets.
func flightCandidates(inc *fleet.Incident, onset, masked int) []Finding {
	var out []Finding
	fl := inc.Flight
	trig := inc.Manifest.Period
	emit := func(cat, cause string, period int, w float64, evidence string) {
		if period > trig {
			return
		}
		score, lead := scoreAt(w, period, onset)
		out = append(out, Finding{
			Category: cat, Cause: cause, Period: period,
			Lead: lead, Score: score, Evidence: evidence,
		})
	}
	causeOf := func(e *fleet.FlightEntry) string {
		if e.Cause == "" {
			return "unspecified"
		}
		return e.Cause
	}
	for i := 1; i < len(fl); i++ {
		prev, cur := &fl[i-1], &fl[i]
		if cur.Period != prev.Period+1 {
			continue
		}
		// HP-way shrink runs, coalesced while the cause tag holds.
		if cur.HPWays > 0 && prev.HPWays > 0 && cur.HPWays < prev.HPWays {
			cause := causeOf(cur)
			j := i
			for j+1 < len(fl) && fl[j+1].Period == fl[j].Period+1 &&
				fl[j+1].HPWays > 0 && fl[j+1].HPWays < fl[j].HPWays &&
				causeOf(&fl[j+1]) == cause {
				j++
			}
			ev := fmt.Sprintf("controller shrank HP ways %d -> %d (%s)", prev.HPWays, fl[j].HPWays, cause)
			if j > i {
				ev = fmt.Sprintf("controller shrank HP ways %d -> %d over %d periods (%s)", prev.HPWays, fl[j].HPWays, j-i+1, cause)
			}
			emit(CatController, cause, cur.Period, shrinkWeight(cause), ev)
			i = j
			continue
		}
		if cur.Reclustered {
			emit(CatController, "recluster", cur.Period, 0.85,
				fmt.Sprintf("grouping plan re-clustered (%d groups, HP ways %d -> %d)", cur.HPGroups, prev.HPWays, cur.HPWays))
		}
		if d := cur.BECount - prev.BECount; d > 0 {
			j := i
			total := d
			for j+1 < len(fl) && fl[j+1].Period == fl[j].Period+1 && fl[j+1].BECount > fl[j].BECount {
				total += fl[j+1].BECount - fl[j].BECount
				j++
			}
			w := 0.5 + 0.05*float64(min(total, 4))
			emit(CatLoad, "be-placement", cur.Period, w,
				fmt.Sprintf("%d new BE job(s) placed on the node (%d -> %d)", total, prev.BECount, fl[j].BECount))
			i = j
			continue
		}
		if cur.Saturated && !prev.Saturated {
			emit(CatBandwidth, "link-saturation", cur.Period, 0.7,
				fmt.Sprintf("memory link crossed its queueing knee (%.1f Gbps total)", cur.TotalGbps))
		}
		if cur.Frozen && !prev.Frozen {
			w := 0.65
			if inc.Manifest.Trigger == fleet.TriggerNodeFreeze {
				w = 1.0
			}
			ev := "chaos froze the node: counter reads and actuation paused"
			if masked > 0 {
				ev += fmt.Sprintf("; masked %d period(s) of the violation run", masked)
			}
			emit(CatChaos, "node-freeze", cur.Period, w, ev)
		}
		if cur.Lost && !prev.Lost {
			emit(CatChaos, "node-loss", cur.Period, 1.0,
				"chaos lost the node: running jobs orphaned, capacity gone")
		}
	}
	return out
}

// Explain reads one incident bundle and runs the engine over it.
func Explain(r io.Reader) (*ExplainReport, error) {
	inc, err := fleet.ReadIncident(r)
	if err != nil {
		return nil, err
	}
	return ExplainIncident(inc), nil
}

// JSON renders the report as indented JSON (deterministic bytes).
func (r *ExplainReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Render writes the human-readable forensics report: the trigger line,
// the violation-run geometry, a per-period flight strip, and the ranked
// candidates. Deterministic for a given report — golden tests pin it.
func (r *ExplainReport) Render(w io.Writer, fl []fleet.FlightEntry) {
	m := &r.Incident
	fmt.Fprintf(w, "incident #%d  %s on node %d at period %d", m.Seq, m.Trigger, m.Node, m.Period)
	if m.Detail != "" {
		fmt.Fprintf(w, "  (%s)", m.Detail)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "fleet    policy=%s scheduler=%s nodes=%d", m.Policy, m.Scheduler, m.Nodes)
	if m.HPsPerNode > 0 {
		fmt.Fprintf(w, " hps/node=%d", m.HPsPerNode)
	}
	fmt.Fprintf(w, " slo=%.3g", m.SLO)
	if m.NodeChaos != "" {
		fmt.Fprintf(w, " chaos=%s", m.NodeChaos)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "window   p%d..p%d (%d periods)  violated %d", m.WindowFrom, m.WindowTo, m.WindowTo-m.WindowFrom+1, r.Violations)
	if r.RunLength > 0 {
		fmt.Fprintf(w, "  onset p%d (run %d)", r.Onset, r.RunLength)
	} else {
		fmt.Fprintf(w, "  no violation run before the trigger")
	}
	if r.Masked > 0 {
		fmt.Fprintf(w, "  masked %d", r.Masked)
	}
	fmt.Fprintln(w)

	if len(fl) > 0 {
		fmt.Fprintln(w)
		renderFlightStrip(w, fl, r.Onset, m.Period, r.RunLength > 0)
	}

	fmt.Fprintln(w)
	if len(r.Findings) == 0 {
		fmt.Fprintln(w, "no candidate causes found in the window")
		return
	}
	fmt.Fprintln(w, "root-cause candidates (most likely first):")
	for _, f := range r.Findings {
		fmt.Fprintf(w, "%3d. p%-4d [%s] %s  score %.3f  lead %d\n",
			f.Rank, f.Period, f.Category, f.Cause, f.Score, f.Lead)
		fmt.Fprintf(w, "     %s\n", f.Evidence)
	}
}

// RenderString is Render into a string.
func (r *ExplainReport) RenderString(fl []fleet.FlightEntry) string {
	var b strings.Builder
	r.Render(&b, fl)
	return b.String()
}

// renderFlightStrip draws the flight window one character per period
// (L=lost F=frozen V=violated s=saturated .=ok) with a marker line
// flagging the onset (o) and the trigger (^), chunked into rows of 60.
func renderFlightStrip(w io.Writer, fl []fleet.FlightEntry, onset, trigger int, haveOnset bool) {
	const row = 60
	fmt.Fprintln(w, "flight strip (L=lost F=frozen V=violated s=saturated .=ok; o=onset ^=trigger):")
	for start := 0; start < len(fl); start += row {
		end := start + row
		if end > len(fl) {
			end = len(fl)
		}
		var strip, marks strings.Builder
		marked := false
		for _, e := range fl[start:end] {
			switch {
			case e.Lost:
				strip.WriteByte('L')
			case e.Frozen:
				strip.WriteByte('F')
			case e.SLOViolated:
				strip.WriteByte('V')
			case e.Saturated:
				strip.WriteByte('s')
			default:
				strip.WriteByte('.')
			}
			switch {
			case e.Period == trigger:
				marks.WriteByte('^')
				marked = true
			case e.Period == onset && haveOnset:
				marks.WriteByte('o')
				marked = true
			default:
				marks.WriteByte(' ')
			}
		}
		fmt.Fprintf(w, "  p%-4d %s\n", fl[start].Period, strip.String())
		if marked {
			fmt.Fprintf(w, "        %s\n", strings.TrimRight(marks.String(), " "))
		}
	}
}
