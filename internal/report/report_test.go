package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("title", "A", "Long header", "C")
	t.AddRow("x", "y", "z")
	t.AddRowf("n", 1.23456, 42)
	return t
}

func TestTableRendering(t *testing.T) {
	out := sample().String()
	if !strings.HasPrefix(out, "title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "Long header") {
		t.Fatalf("header row: %q", lines[1])
	}
	if !strings.Contains(lines[4], "1.235") {
		t.Fatalf("float formatting: %q", lines[4])
	}
	// Columns aligned: all data rows at least as wide as the header row.
	if len(lines[3]) < len(strings.TrimRight(lines[1], " ")) {
		t.Fatalf("row narrower than header:\n%s", out)
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tbl := NewTable("", "A", "B")
	tbl.AddRow("only")
	tbl.AddRow("a", "b", "dropped")
	if tbl.Rows[0][1] != "" {
		t.Fatal("missing cell should be blank")
	}
	if len(tbl.Rows[1]) != 2 {
		t.Fatal("extra cell should be dropped")
	}
}

func TestCSV(t *testing.T) {
	tbl := NewTable("", "A", "B")
	tbl.AddRow("plain", `needs "quote", comma`)
	csv := tbl.CSV()
	want := "A,B\nplain,\"needs \"\"quote\"\", comma\"\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("sparkline endpoints %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Fatal("flat series sparkline")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(12.345) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(12.345))
	}
	if F3(1.23456) != "1.235" {
		t.Fatalf("F3 = %q", F3(1.23456))
	}
}

func TestJSON(t *testing.T) {
	tbl := NewTable("ti", "A", "B")
	tbl.AddRow("1", "x")
	out, err := tbl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"title": "ti"`, `"A": "1"`, `"B": "x"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}
