// Package report renders experiment results as aligned ASCII tables and
// CSV, the two formats the benchmark harness and the CLI tools emit. The
// tables are deliberately plain text: every figure of the paper becomes a
// table whose rows/series carry the same data the paper plots.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v for strings/ints and %.3f for floats.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.3f", x)
		case float32:
			cells[i] = fmt.Sprintf("%.3f", x)
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(cells...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes around cells that need
// them).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Sparkline renders values as a compact unicode mini-chart, used by the
// CLI to give a visual sense of a series' shape next to its numbers.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// F3 formats a float with three decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }

// JSON renders the table as a JSON array of objects keyed by header —
// convenient for feeding external plotting tools.
func (t *Table) JSON() (string, error) {
	rows := make([]map[string]string, 0, len(t.Rows))
	for _, row := range t.Rows {
		obj := make(map[string]string, len(t.Headers))
		for i, h := range t.Headers {
			obj[h] = row[i]
		}
		rows = append(rows, obj)
	}
	out, err := json.MarshalIndent(map[string]interface{}{
		"title": t.Title,
		"rows":  rows,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
