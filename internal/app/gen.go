package app

import (
	"fmt"

	"dicer/internal/mrc"
)

// Generator produces random — but seeded and therefore reproducible —
// application profiles. The experiment harness uses the fixed 59-entry
// catalog to mirror the paper; the generator exists for robustness
// testing (drive the whole stack with arbitrary workloads) and for users
// who want populations beyond SPEC/PARSEC look-alikes.
type Generator struct {
	// MaxFootprintBytes bounds the total cacheable working set of a
	// generated phase. Defaults to 16 MB.
	MaxFootprintBytes float64
	// MaxPhases bounds the phase count per profile (>= 1). Defaults to 3.
	MaxPhases int
	// MaxAPKI bounds the LLC access rate. Defaults to 35.
	MaxAPKI float64

	state uint64
}

// NewGenerator returns a generator with the given seed.
func NewGenerator(seed uint64) *Generator {
	return &Generator{
		MaxFootprintBytes: 16 * MB,
		MaxPhases:         3,
		MaxAPKI:           35,
		state:             seed ^ 0x9e3779b97f4a7c15,
	}
}

// next is splitmix64.
func (g *Generator) next() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uniform returns a float in [lo, hi).
func (g *Generator) uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*float64(g.next()>>11)/(1<<53)
}

// intn returns an int in [1, n].
func (g *Generator) intn(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 + int(g.next()%uint64(n))
}

// Profile generates one random application profile named name.
func (g *Generator) Profile(name string) Profile {
	nPhases := g.intn(g.MaxPhases)
	phases := make([]Phase, nPhases)
	class := []Class{ClassStream, ClassCache, ClassCompute, ClassMixed}[g.next()%4]
	for i := range phases {
		phases[i] = g.phase(fmt.Sprintf("p%d", i), class)
	}
	return Profile{Name: name, Suite: "generated", Class: class, Phases: phases}
}

// phase generates a phase consistent with the class's qualitative shape.
func (g *Generator) phase(name string, class Class) Phase {
	var stream, apki, cpi float64
	var comps []mrc.Component
	budget := 1.0 // access-fraction budget left for components
	switch class {
	case ClassStream:
		stream = g.uniform(0.4, 0.8)
		apki = g.uniform(0.4, 1.0) * g.MaxAPKI
		cpi = g.uniform(0.5, 0.8)
	case ClassCache:
		stream = g.uniform(0.05, 0.3)
		apki = g.uniform(0.2, 0.6) * g.MaxAPKI
		cpi = g.uniform(0.7, 1.0)
	case ClassCompute:
		stream = g.uniform(0.0, 0.1)
		apki = g.uniform(0.02, 0.2) * g.MaxAPKI
		cpi = g.uniform(0.5, 0.9)
	default: // ClassMixed
		stream = g.uniform(0.1, 0.4)
		apki = g.uniform(0.1, 0.6) * g.MaxAPKI
		cpi = g.uniform(0.6, 0.9)
	}
	budget -= stream
	sizeBudget := g.MaxFootprintBytes
	for n := g.intn(2); n > 0 && budget > 0.05 && sizeBudget > MB/16; n-- {
		frac := g.uniform(0.1, 0.6) * budget
		size := g.uniform(0.02, 1.0) * sizeBudget
		comps = append(comps, mrc.Component{Bytes: size, Frac: frac})
		budget -= frac
		sizeBudget -= size
	}
	return Phase{
		Name:         name,
		Instructions: g.uniform(10, 80) * G,
		BaseCPI:      cpi,
		APKI:         apki,
		Curve:        mrc.MustCurve(stream, comps...),
	}
}

// Population generates n distinct profiles named prefix0..prefix<n-1>.
func (g *Generator) Population(prefix string, n int) []Profile {
	out := make([]Profile, n)
	for i := range out {
		out[i] = g.Profile(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}
