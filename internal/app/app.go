// Package app models applications as the co-location simulator sees them:
// a sequence of phases, each with an instruction budget, a base CPI (all
// stall sources except LLC misses), an LLC access rate (APKI — accesses per
// kilo-instruction), and an analytic miss-ratio curve over cache capacity.
//
// The model is deliberately the minimal one that reproduces the phenomena
// the DICER paper builds on:
//
//   - IPC as a function of allocated LLC capacity (via the miss curve),
//   - memory-bandwidth demand as a function of IPC and miss ratio,
//   - sensitivity of IPC to memory-latency inflation (bandwidth saturation),
//   - phase changes that shift cache requirements mid-run.
//
// Performance model, per phase:
//
//	CPI(c, f) = BaseCPI + (APKI/1000) * missRatio(c) * MemLat * f
//
// where c is available cache bytes and f the memory-latency inflation
// factor from internal/membw. Bandwidth demand follows from the miss rate:
//
//	bytes/s = IPS * (APKI/1000) * missRatio(c) * LineBytes * WBFactor
//
// WBFactor accounts for write-back traffic accompanying fills.
package app

import (
	"fmt"

	"dicer/internal/machine"
	"dicer/internal/mrc"
)

// WBFactor inflates fill traffic to account for dirty write-backs. 1.5 is a
// typical read:write mix for SPEC-like workloads.
const WBFactor = 1.5

// Phase is one execution phase of an application.
type Phase struct {
	Name         string
	Instructions float64 // instruction budget of the phase
	BaseCPI      float64 // CPI from everything except LLC misses
	APKI         float64 // LLC accesses per kilo-instruction
	Curve        mrc.Curve
}

// Validate reports configuration errors.
func (p Phase) Validate() error {
	if p.Instructions <= 0 {
		return fmt.Errorf("app: phase %q has non-positive instruction budget", p.Name)
	}
	if p.BaseCPI <= 0 {
		return fmt.Errorf("app: phase %q has non-positive base CPI", p.Name)
	}
	if p.APKI < 0 {
		return fmt.Errorf("app: phase %q has negative APKI", p.Name)
	}
	return nil
}

// Profile is a complete application description.
type Profile struct {
	Name   string
	Suite  string // "spec2006" or "parsec3"
	Class  Class  // qualitative behaviour class (documentation + sampling)
	Phases []Phase
}

// Class is a coarse behavioural label used for workload sampling and
// reporting; it does not influence simulation.
type Class string

// Behaviour classes assigned to catalog entries.
const (
	ClassStream  Class = "stream"  // bandwidth-bound, low cache sensitivity
	ClassCache   Class = "cache"   // IPC strongly dependent on LLC share
	ClassCompute Class = "compute" // core-bound, light LLC traffic
	ClassMixed   Class = "mixed"   // phase-dependent behaviour
)

// Validate reports configuration errors.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("app: empty profile name")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("app: profile %q has no phases", p.Name)
	}
	for _, ph := range p.Phases {
		if err := ph.Validate(); err != nil {
			return fmt.Errorf("profile %q: %w", p.Name, err)
		}
	}
	return nil
}

// TotalInstructions returns the instruction budget of one complete run.
func (p Profile) TotalInstructions() float64 {
	var t float64
	for _, ph := range p.Phases {
		t += ph.Instructions
	}
	return t
}

// MaxFootprint returns the largest cacheable footprint over all phases.
func (p Profile) MaxFootprint() float64 {
	var m float64
	for _, ph := range p.Phases {
		if f := ph.Curve.Footprint(); f > m {
			m = f
		}
	}
	return m
}

// Perf is the instantaneous operating point of a process.
type Perf struct {
	IPC         float64 // instructions per cycle
	MissRatio   float64 // LLC miss ratio at the offered capacity
	MPKI        float64 // LLC misses per kilo-instruction
	BytesPerSec float64 // memory traffic demand
	OccupancyB  float64 // bytes the process keeps resident at this capacity
}

// PhasePerf evaluates the performance model for a phase on machine m with
// cacheBytes of LLC available, memory-latency inflation factor, and a
// base-CPI co-location factor (machine.CoLocFactor; 1 when running alone).
func PhasePerf(m machine.Machine, ph Phase, cacheBytes, inflation, baseFactor float64) Perf {
	p := PhasePerfMiss(m, ph, ph.Curve.MissRatio(cacheBytes), inflation, baseFactor)
	p.OccupancyB = ph.Curve.OccupancyDemand(cacheBytes)
	return p
}

// PhasePerfMiss evaluates the performance model with a precomputed miss
// ratio, skipping both curve walks (OccupancyB is left zero). The miss
// ratio of a phase depends only on the offered capacity, so hot paths that
// re-evaluate the model at many inflation factors (the bandwidth fixed
// point in internal/sim) compute it once and call this for every factor.
// The arithmetic is identical to PhasePerf's, term for term.
func PhasePerfMiss(m machine.Machine, ph Phase, miss, inflation, baseFactor float64) Perf {
	return PhasePerfMissRef(&m, &ph, miss, inflation, baseFactor)
}

// PhasePerfMissRef is PhasePerfMiss with the machine and phase taken by
// pointer. Machine and Phase together are ~160 bytes; per-step hot loops
// (the simulator advances every process every Step, and the bandwidth
// fixed point re-evaluates demand dozens of times per solve) call this to
// avoid copying them on every evaluation. The arguments are read, never
// written; the arithmetic is PhasePerfMiss's, term for term.
func PhasePerfMissRef(m *machine.Machine, ph *Phase, miss, inflation, baseFactor float64) Perf {
	mpki := ph.APKI * miss
	cpi := ph.BaseCPI*baseFactor + mpki/1000*m.MemLatCycles*inflation
	ipc := 1 / cpi
	ips := ipc * m.CyclesPerSecond()
	bytes := ips * mpki / 1000 * float64(m.LineBytes) * WBFactor
	return Perf{
		IPC:         ipc,
		MissRatio:   miss,
		MPKI:        mpki,
		BytesPerSec: bytes,
	}
}

// Proc is a running instance of a Profile. The simulator restarts the
// application when it completes, matching the paper's methodology ("when an
// application finishes, it is restarted until all of them have executed at
// least once").
type Proc struct {
	Profile Profile

	phase      int
	phaseInstr float64 // instructions retired within the current phase

	// Cumulative counters (survive restarts).
	Instructions float64
	Cycles       float64
	MemBytes     float64
	Completions  int
}

// NewProc creates a runnable instance of p. It panics if p is invalid;
// catalog profiles are validated by tests.
func NewProc(p Profile) *Proc {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Proc{Profile: p}
}

// Phase returns the currently executing phase.
func (pr *Proc) Phase() Phase { return pr.Profile.Phases[pr.phase] }

// PhaseRef returns a pointer to the currently executing phase. Hot paths
// use it instead of Phase to avoid copying the ~100-byte Phase struct;
// callers must treat the target as read-only and must not retain it past
// the next Advance (which may cross a phase boundary).
func (pr *Proc) PhaseRef() *Phase { return &pr.Profile.Phases[pr.phase] }

// PhaseIndex returns the index of the current phase.
func (pr *Proc) PhaseIndex() int { return pr.phase }

// PhaseProgress returns the fraction of the current phase's instruction
// budget already retired, in [0,1). Phase-hint consumers (the multi-HP
// re-clustering policy) use it to expose the *next* phase's cache
// behaviour shortly before the boundary, Com-CAS style.
func (pr *Proc) PhaseProgress() float64 {
	return pr.phaseInstr / pr.Profile.Phases[pr.phase].Instructions
}

// Perf evaluates the instantaneous performance of the current phase.
func (pr *Proc) Perf(m machine.Machine, cacheBytes, inflation, baseFactor float64) Perf {
	return PhasePerf(m, pr.Phase(), cacheBytes, inflation, baseFactor)
}

// Advance runs the process for dt seconds at a fixed operating point
// (cacheBytes, inflation), crossing phase boundaries and restarting as
// needed. It returns the instructions retired during the interval.
func (pr *Proc) Advance(m machine.Machine, cacheBytes, inflation, baseFactor, dt float64) float64 {
	return pr.advance(&m, cacheBytes, -1, inflation, baseFactor, dt)
}

// AdvanceMiss is Advance with a precomputed miss ratio for the process's
// current phase at cacheBytes (callers that already solved the cache
// sharing hold it). Later phases entered during the interval evaluate
// their own curves as usual.
func (pr *Proc) AdvanceMiss(m machine.Machine, cacheBytes, miss, inflation, baseFactor, dt float64) float64 {
	return pr.advance(&m, cacheBytes, miss, inflation, baseFactor, dt)
}

// AdvanceMissRef is AdvanceMiss with the machine taken by pointer, for
// per-step callers (the simulator advances every process every Step and
// the struct copy would dominate). The machine is read, never written.
func (pr *Proc) AdvanceMissRef(m *machine.Machine, cacheBytes, miss, inflation, baseFactor, dt float64) float64 {
	return pr.advance(m, cacheBytes, miss, inflation, baseFactor, dt)
}

func (pr *Proc) advance(m *machine.Machine, cacheBytes, miss, inflation, baseFactor, dt float64) float64 {
	cps := m.CyclesPerSecond()
	cyclesLeft := dt * cps
	var retired float64
	for cyclesLeft > 1e-9 {
		ph := &pr.Profile.Phases[pr.phase]
		if miss < 0 {
			miss = ph.Curve.MissRatio(cacheBytes)
		}
		perf := PhasePerfMissRef(m, ph, miss, inflation, baseFactor)
		phaseRemaining := ph.Instructions - pr.phaseInstr
		// Cycles needed to finish the phase at the current CPI.
		cpi := 1 / perf.IPC
		needed := phaseRemaining * cpi
		step := cyclesLeft
		finishes := needed <= cyclesLeft
		if finishes {
			step = needed
		}
		instr := step / cpi
		pr.phaseInstr += instr
		pr.Instructions += instr
		pr.Cycles += step
		pr.MemBytes += perf.BytesPerSec * (step / cps)
		retired += instr
		cyclesLeft -= step
		if finishes {
			pr.phase++
			pr.phaseInstr = 0
			if pr.phase >= len(pr.Profile.Phases) {
				pr.phase = 0
				pr.Completions++
			}
			miss = -1 // next phase evaluates its own curve
		}
	}
	return retired
}

// Reset rewinds the process to the start of its profile and zeroes all
// counters.
func (pr *Proc) Reset() {
	pr.phase = 0
	pr.phaseInstr = 0
	pr.Instructions = 0
	pr.Cycles = 0
	pr.MemBytes = 0
	pr.Completions = 0
}

// IPC returns the cumulative IPC since the last Reset.
func (pr *Proc) IPC() float64 {
	if pr.Cycles == 0 {
		return 0
	}
	return pr.Instructions / pr.Cycles
}
