// Catalog of the 59 applications used throughout the evaluation, mirroring
// the paper's mix: 25 SPEC CPU 2006 programs (8 of them with multiple
// inputs) and 9 serial PARSEC 3.0 programs. Since the benchmark binaries
// are not available in this environment, each entry is a synthetic profile
// whose parameters (base CPI, LLC access rate, working-set mixture,
// streaming fraction) encode the qualitative behaviour reported for the
// benchmark in the characterisation literature:
//
//   - memory-bound streamers (milc, lbm, libquantum, bwaves, leslie3d,
//     GemsFDTD, zeusmp, streamcluster): high APKI, large always-miss
//     fraction, small hot sets — they saturate the link, not the cache;
//   - cache-sensitive programs (omnetpp, Xalan, soplex, sphinx, astar,
//     canneal, mcf, gcc, …): multi-level working sets of 1–18 MB whose
//     coverage determines IPC;
//   - compute-bound programs (namd, povray, gromacs, swaptions, …): light
//     LLC traffic, nearly flat miss curves.
//
// Multi-input SPEC programs (gcc ×9, bzip2 ×6, gobmk ×5, astar ×3,
// h264ref ×3, hmmer ×3, perlbench ×2, soplex ×2) are generated as
// deterministic perturbations of the base profile, scaling working sets,
// access rates and instruction budgets the way different reference inputs
// do on real hardware. Names carry the input index (gcc_base1 … gcc_base9,
// bzip21 … bzip26), matching the workload labels in the paper's Figure 5.
package app

import (
	"fmt"
	"sort"
	"sync"

	"dicer/internal/mrc"
)

// MB is one mebibyte, as a float for working-set arithmetic.
const MB = float64(1 << 20)

// G is 10^9 instructions, the unit of phase budgets below.
const G = 1e9

// base describes one benchmark program before input perturbation.
type base struct {
	name   string
	suite  string
	class  Class
	inputs int // number of input variants to generate (>=1)
	phases []basePhase
}

type basePhase struct {
	name   string
	instrG float64 // instruction budget in 10^9
	cpi    float64
	apki   float64
	stream float64
	comps  []mrc.Component // sizes in bytes
}

// catalog returns the full 59-profile catalog, sorted by name.
func catalog() []Profile {
	bases := []base{
		// ---- SPEC CPU 2006: memory-bound streamers -------------------
		{"milc", "spec2006", ClassStream, 1, []basePhase{
			{"sweep", 50, 0.60, 22, 0.60, comps(2.2*MB, 0.30)},
		}},
		{"lbm", "spec2006", ClassStream, 1, []basePhase{
			{"stream", 55, 0.55, 28, 0.70, comps(1.5*MB, 0.22)},
		}},
		{"libquantum", "spec2006", ClassStream, 1, []basePhase{
			{"gates", 60, 0.50, 30, 0.80, comps(0.5*MB, 0.15)},
		}},
		{"bwaves", "spec2006", ClassStream, 1, []basePhase{
			{"solver", 60, 0.60, 20, 0.55, comps(3*MB, 0.30, 12*MB, 0.08)},
		}},
		{"leslie3d", "spec2006", ClassStream, 1, []basePhase{
			{"stencil", 55, 0.65, 18, 0.50, comps(4*MB, 0.35)},
		}},
		{"GemsFDTD", "spec2006", ClassStream, 1, []basePhase{
			{"fdtd", 50, 0.60, 21, 0.55, comps(5*MB, 0.30)},
		}},
		{"zeusmp", "spec2006", ClassStream, 1, []basePhase{
			{"mhd", 55, 0.70, 14, 0.45, comps(4*MB, 0.35)},
		}},
		// mcf: memory-bound AND deeply cache-sensitive (huge graph).
		{"mcf", "spec2006", ClassCache, 1, []basePhase{
			{"simplex", 30, 0.80, 35, 0.25, comps(3*MB, 0.35, 14*MB, 0.24)},
			{"pricing", 15, 0.85, 40, 0.35, comps(2*MB, 0.30, 14*MB, 0.20)},
		}},
		// ---- SPEC CPU 2006: cache-sensitive --------------------------
		{"omnetpp", "spec2006", ClassCache, 1, []basePhase{
			{"events", 50, 0.90, 16, 0.10, comps(1*MB, 0.45, 8*MB, 0.22)},
		}},
		{"Xalan", "spec2006", ClassCache, 1, []basePhase{
			{"parse", 30, 0.85, 14, 0.10, comps(0.8*MB, 0.50, 6*MB, 0.18)},
			{"transform", 25, 0.90, 17, 0.22, comps(1.2*MB, 0.40, 9*MB, 0.18)},
		}},
		{"soplex", "spec2006", ClassCache, 2, []basePhase{
			{"factor", 50, 0.80, 18, 0.20, comps(2*MB, 0.40, 10*MB, 0.18)},
		}},
		{"sphinx", "spec2006", ClassCache, 1, []basePhase{
			{"decode", 40, 0.75, 13, 0.12, comps(2*MB, 0.45, 9*MB, 0.18)},
			{"rescore", 15, 0.70, 18, 0.30, comps(3*MB, 0.40, 9*MB, 0.14)},
		}},
		{"astar", "spec2006", ClassCache, 3, []basePhase{
			{"search", 35, 0.90, 10, 0.08, comps(1.2*MB, 0.50, 3.5*MB, 0.18)},
			{"rejoin", 15, 0.95, 13, 0.18, comps(1.8*MB, 0.45, 3.5*MB, 0.16)},
		}},
		{"gcc", "spec2006", ClassCache, 9, []basePhase{
			{"frontend", 30, 0.85, 11, 0.18, comps(1*MB, 0.42, 2.5*MB, 0.16)},
			{"optimise", 15, 0.90, 14, 0.28, comps(1.5*MB, 0.35, 3*MB, 0.15)},
		}},
		{"bzip2", "spec2006", ClassCache, 6, []basePhase{
			{"compress", 28, 0.80, 8, 0.15, comps(0.8*MB, 0.45, 2*MB, 0.13)},
			{"huffman", 17, 0.75, 10, 0.22, comps(1.1*MB, 0.40, 2*MB, 0.12)},
		}},
		{"perlbench", "spec2006", ClassCache, 2, []basePhase{
			{"interp", 45, 0.90, 7, 0.08, comps(0.9*MB, 0.50, 2*MB, 0.13)},
		}},
		{"hmmer", "spec2006", ClassCompute, 3, []basePhase{
			{"viterbi", 45, 0.70, 5, 0.05, comps(0.5*MB, 0.60)},
		}},
		{"h264ref", "spec2006", ClassCompute, 3, []basePhase{
			{"encode", 45, 0.70, 6, 0.10, comps(0.7*MB, 0.50)},
		}},
		{"sjeng", "spec2006", ClassCompute, 1, []basePhase{
			{"search", 50, 0.85, 6, 0.08, comps(1.5*MB, 0.45)},
		}},
		{"gobmk", "spec2006", ClassCompute, 5, []basePhase{
			{"play", 45, 0.90, 5, 0.06, comps(0.8*MB, 0.45)},
		}},
		// ---- SPEC CPU 2006: compute-bound ----------------------------
		{"namd", "spec2006", ClassCompute, 1, []basePhase{
			{"md", 70, 0.55, 2.5, 0.05, comps(0.5*MB, 0.50)},
		}},
		{"povray", "spec2006", ClassCompute, 1, []basePhase{
			{"render", 60, 0.75, 2, 0.04, comps(0.3*MB, 0.50)},
		}},
		{"gromacs", "spec2006", ClassCompute, 1, []basePhase{
			{"md", 65, 0.60, 3, 0.06, comps(0.6*MB, 0.50)},
		}},
		{"calculix", "spec2006", ClassCompute, 1, []basePhase{
			{"fem", 65, 0.55, 3.5, 0.08, comps(0.8*MB, 0.50)},
		}},
		{"tonto", "spec2006", ClassCompute, 1, []basePhase{
			{"scf", 55, 0.70, 4, 0.06, comps(0.7*MB, 0.45)},
		}},
		// ---- PARSEC 3.0 (serial) --------------------------------------
		{"streamcluster", "parsec3", ClassStream, 1, []basePhase{
			{"cluster", 50, 0.60, 24, 0.55, comps(6*MB, 0.30)},
		}},
		{"canneal", "parsec3", ClassCache, 1, []basePhase{
			{"anneal", 50, 0.85, 15, 0.15, comps(2.5*MB, 0.35, 16*MB, 0.25)},
		}},
		{"ferret", "parsec3", ClassCache, 1, []basePhase{
			{"query", 45, 0.80, 9, 0.10, comps(1.5*MB, 0.50, 2.5*MB, 0.16)},
		}},
		{"dedup", "parsec3", ClassMixed, 1, []basePhase{
			{"chunk", 25, 0.70, 12, 0.30, comps(1*MB, 0.35, 5*MB, 0.25)},
			{"compress", 20, 0.75, 9, 0.18, comps(0.8*MB, 0.45, 3*MB, 0.20)},
		}},
		{"facesim", "parsec3", ClassMixed, 1, []basePhase{
			{"dynamics", 55, 0.75, 10, 0.25, comps(3*MB, 0.40)},
		}},
		{"fluidanimate", "parsec3", ClassMixed, 1, []basePhase{
			{"advance", 30, 0.70, 9, 0.20, comps(2*MB, 0.45)},
			{"rebuild", 20, 0.65, 13, 0.35, comps(3*MB, 0.35)},
		}},
		{"bodytrack", "parsec3", ClassCompute, 1, []basePhase{
			{"track", 45, 0.75, 7, 0.12, comps(1*MB, 0.50)},
		}},
		{"blackscholes", "parsec3", ClassCompute, 1, []basePhase{
			{"price", 60, 0.60, 1.5, 0.05, comps(0.3*MB, 0.50)},
		}},
		{"swaptions", "parsec3", ClassCompute, 1, []basePhase{
			{"simulate", 60, 0.65, 1.2, 0.03, comps(0.2*MB, 0.50)},
		}},
	}

	var out []Profile
	for _, b := range bases {
		for i := 1; i <= b.inputs; i++ {
			out = append(out, b.instantiate(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// comps builds a working-set mixture from (bytes, frac) pairs.
func comps(pairs ...float64) []mrc.Component {
	if len(pairs)%2 != 0 {
		panic("app: comps needs (bytes, frac) pairs")
	}
	out := make([]mrc.Component, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, mrc.Component{Bytes: pairs[i], Frac: pairs[i+1]})
	}
	return out
}

// Input-variant multipliers. Real reference inputs change working-set size
// far more than they change instruction mix, so size moves most.
var (
	sizeMul  = []float64{1.00, 0.55, 1.45, 0.75, 1.90, 0.90, 1.20, 0.65, 1.65}
	apkiMul  = []float64{1.00, 0.88, 1.12, 0.95, 1.22, 0.92, 1.06, 0.85, 1.18}
	instrMul = []float64{1.00, 0.85, 1.10, 0.92, 1.18, 0.88, 1.05, 0.95, 1.12}
)

// instantiate builds the profile for input variant idx (1-based). The gcc
// name carries the paper's "gcc_base<N>" label; everything else is
// "<name><N>".
func (b base) instantiate(idx int) Profile {
	name := fmt.Sprintf("%s%d", b.name, idx)
	if b.name == "gcc" {
		name = fmt.Sprintf("gcc_base%d", idx)
	}
	k := (idx - 1) % len(sizeMul)
	phases := make([]Phase, len(b.phases))
	for i, bp := range b.phases {
		cs := make([]mrc.Component, len(bp.comps))
		for j, c := range bp.comps {
			cs[j] = mrc.Component{Bytes: c.Bytes * sizeMul[k], Frac: c.Frac}
		}
		phases[i] = Phase{
			Name:         bp.name,
			Instructions: bp.instrG * G * instrMul[k],
			BaseCPI:      bp.cpi,
			APKI:         bp.apki * apkiMul[k],
			Curve:        mrc.MustCurve(bp.stream, cs...),
		}
	}
	return Profile{Name: name, Suite: b.suite, Class: b.class, Phases: phases}
}

var (
	catalogOnce  sync.Once
	catalogCache []Profile
)

// Catalog returns the full 59-application catalog, sorted by name. The
// returned slice is shared; callers must not modify it. It is safe for
// concurrent use (experiments fan runs out over goroutines).
func Catalog() []Profile {
	catalogOnce.Do(func() { catalogCache = catalog() })
	return catalogCache
}

// ByName returns the catalog profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("app: unknown profile %q", name)
}

// MustByName is ByName that panics on error, for examples and tests.
func MustByName(name string) Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// ByClass returns the catalog profiles of one behaviour class, sorted by
// name (the catalog order). The fleet arrival generator draws from these
// per-class pools so a workload mix can be specified as class weights.
func ByClass(class Class) []Profile {
	var out []Profile
	for _, p := range Catalog() {
		if p.Class == class {
			out = append(out, p)
		}
	}
	return out
}

// Classes returns the behaviour classes in their canonical order.
func Classes() []Class {
	return []Class{ClassStream, ClassCache, ClassCompute, ClassMixed}
}

// Names returns all catalog profile names, sorted.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, p := range cat {
		out[i] = p.Name
	}
	return out
}
