package app

import (
	"testing"
	"testing/quick"
)

func TestGeneratorProfilesValid(t *testing.T) {
	g := NewGenerator(1)
	for i := 0; i < 100; i++ {
		p := g.Profile("x")
		if err := p.Validate(); err != nil {
			t.Fatalf("generated profile %d invalid: %v", i, err)
		}
		if p.MaxFootprint() > g.MaxFootprintBytes {
			t.Fatalf("footprint %g exceeds bound", p.MaxFootprint())
		}
		for _, ph := range p.Phases {
			if ph.APKI > g.MaxAPKI {
				t.Fatalf("APKI %g exceeds bound", ph.APKI)
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(42).Population("w", 10)
	b := NewGenerator(42).Population("w", 10)
	for i := range a {
		if len(a[i].Phases) != len(b[i].Phases) {
			t.Fatalf("profile %d phase counts differ", i)
		}
		for j := range a[i].Phases {
			if a[i].Phases[j].APKI != b[i].Phases[j].APKI {
				t.Fatalf("profile %d phase %d differs", i, j)
			}
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := NewGenerator(1).Profile("x")
	b := NewGenerator(2).Profile("x")
	if a.Phases[0].APKI == b.Phases[0].APKI && a.Phases[0].BaseCPI == b.Phases[0].BaseCPI {
		t.Fatal("different seeds produced identical profiles")
	}
}

func TestGeneratorPopulationNames(t *testing.T) {
	pop := NewGenerator(7).Population("gen", 5)
	if len(pop) != 5 {
		t.Fatalf("population size %d", len(pop))
	}
	if pop[0].Name != "gen0" || pop[4].Name != "gen4" {
		t.Fatalf("names %q..%q", pop[0].Name, pop[4].Name)
	}
}

// Property: generated profiles respect class shapes (streamers stream,
// compute apps are quiet).
func TestPropertyGeneratorClassShapes(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewGenerator(seed)
		for i := 0; i < 10; i++ {
			p := g.Profile("x")
			for _, ph := range p.Phases {
				switch p.Class {
				case ClassStream:
					if ph.Curve.StreamFraction() < 0.4 {
						return false
					}
				case ClassCompute:
					if ph.APKI > 0.2*g.MaxAPKI {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
