package app

import (
	"math"
	"testing"
	"testing/quick"

	"dicer/internal/machine"
	"dicer/internal/mrc"
)

func testPhase() Phase {
	return Phase{
		Name:         "p",
		Instructions: 1e9,
		BaseCPI:      0.8,
		APKI:         10,
		Curve:        mrc.MustCurve(0.2, mrc.Component{Bytes: 2 * MB, Frac: 0.4}),
	}
}

func testProfile() Profile {
	return Profile{Name: "test", Suite: "spec2006", Class: ClassCache,
		Phases: []Phase{testPhase()}}
}

func TestPhaseValidate(t *testing.T) {
	good := testPhase()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Instructions = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero instructions")
	}
	bad = good
	bad.BaseCPI = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero base CPI")
	}
	bad = good
	bad.APKI = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for negative APKI")
	}
}

func TestProfileValidate(t *testing.T) {
	if err := testProfile().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Profile{Name: "", Phases: []Phase{testPhase()}}).Validate(); err == nil {
		t.Fatal("expected error for empty name")
	}
	if err := (Profile{Name: "x"}).Validate(); err == nil {
		t.Fatal("expected error for no phases")
	}
}

func TestTotalInstructionsAndFootprint(t *testing.T) {
	p := testProfile()
	p.Phases = append(p.Phases, Phase{
		Name: "q", Instructions: 2e9, BaseCPI: 1, APKI: 5,
		Curve: mrc.MustCurve(0, mrc.Component{Bytes: 8 * MB, Frac: 0.3}),
	})
	if got := p.TotalInstructions(); got != 3e9 {
		t.Fatalf("total instructions = %g, want 3e9", got)
	}
	if got := p.MaxFootprint(); got != 8*MB {
		t.Fatalf("max footprint = %g, want 8MB", got)
	}
}

func TestPhasePerfModel(t *testing.T) {
	m := machine.Default()
	ph := testPhase()
	perf := PhasePerf(m, ph, 2*MB, 1, 1)
	// Fully covered hot set: miss = stream only.
	if math.Abs(perf.MissRatio-0.2) > 1e-12 {
		t.Fatalf("miss ratio = %g, want 0.2", perf.MissRatio)
	}
	wantCPI := 0.8 + 10*0.2/1000*180
	if math.Abs(1/perf.IPC-wantCPI) > 1e-9 {
		t.Fatalf("CPI = %g, want %g", 1/perf.IPC, wantCPI)
	}
	// Bandwidth: IPS * MPKI/1000 * line * WB.
	ips := perf.IPC * m.CyclesPerSecond()
	wantBytes := ips * 2.0 / 1000 * 64 * WBFactor
	if math.Abs(perf.BytesPerSec-wantBytes) > 1 {
		t.Fatalf("bytes/s = %g, want %g", perf.BytesPerSec, wantBytes)
	}
}

func TestPerfMonotonicity(t *testing.T) {
	m := machine.Default()
	ph := testPhase()
	// More cache never hurts IPC.
	prev := 0.0
	for c := 0.0; c <= 4*MB; c += MB / 4 {
		ipc := PhasePerf(m, ph, c, 1, 1).IPC
		if ipc < prev-1e-12 {
			t.Fatalf("IPC fell with more cache at %g", c)
		}
		prev = ipc
	}
	// More inflation never helps IPC.
	if PhasePerf(m, ph, MB, 2, 1).IPC >= PhasePerf(m, ph, MB, 1, 1).IPC {
		t.Fatal("IPC did not fall with latency inflation")
	}
	// Co-location base factor slows the core part.
	if PhasePerf(m, ph, MB, 1, 1.05).IPC >= PhasePerf(m, ph, MB, 1, 1).IPC {
		t.Fatal("IPC did not fall with co-location factor")
	}
}

func TestProcAdvanceConservation(t *testing.T) {
	m := machine.Default()
	pr := NewProc(testProfile())
	retired := pr.Advance(m, 2*MB, 1, 1, 1.0)
	// One second at CPI 1.16 = 2.2e9/1.16 instructions.
	perf := PhasePerf(m, testPhase(), 2*MB, 1, 1)
	want := perf.IPC * m.CyclesPerSecond()
	if math.Abs(retired-want) > want*1e-9 {
		t.Fatalf("retired %g, want %g", retired, want)
	}
	if math.Abs(pr.Cycles-m.CyclesPerSecond()) > 1 {
		t.Fatalf("cycles %g, want one second worth", pr.Cycles)
	}
	if math.Abs(pr.IPC()-perf.IPC) > 1e-9 {
		t.Fatalf("cumulative IPC %g, want %g", pr.IPC(), perf.IPC)
	}
}

func TestProcPhaseTransitionAndRestart(t *testing.T) {
	m := machine.Default()
	p := Profile{Name: "two", Phases: []Phase{
		{Name: "a", Instructions: 1e8, BaseCPI: 1, APKI: 0, Curve: mrc.Curve{}},
		{Name: "b", Instructions: 1e8, BaseCPI: 1, APKI: 0, Curve: mrc.Curve{}},
	}}
	pr := NewProc(p)
	// 1e8 instructions at CPI 1 = 1e8 cycles = 1/22 s. Advance well past
	// one full run.
	pr.Advance(m, 0, 1, 1, 0.15) // 3.3e8 cycles -> 3.3 phases
	if pr.Completions != 1 {
		t.Fatalf("completions = %d, want 1", pr.Completions)
	}
	if pr.PhaseIndex() != 1 {
		t.Fatalf("phase = %d, want 1 (second phase of second run)", pr.PhaseIndex())
	}
	if math.Abs(pr.Instructions-3.3e8) > 1e6 {
		t.Fatalf("instructions = %g, want ~3.3e8", pr.Instructions)
	}
}

func TestProcReset(t *testing.T) {
	pr := NewProc(testProfile())
	pr.Advance(machine.Default(), MB, 1, 1, 0.5)
	pr.Reset()
	if pr.Instructions != 0 || pr.Cycles != 0 || pr.Completions != 0 || pr.PhaseIndex() != 0 {
		t.Fatalf("reset left state: %+v", pr)
	}
}

func TestNewProcPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid profile")
		}
	}()
	NewProc(Profile{Name: "bad"})
}

// Property: Advance over two half-intervals equals one full interval.
func TestPropertyAdvanceAdditive(t *testing.T) {
	m := machine.Default()
	f := func(cacheRaw, inflRaw uint8) bool {
		cache := float64(cacheRaw%40) * MB / 8
		infl := 1 + float64(inflRaw%50)/10
		a := NewProc(testProfile())
		b := NewProc(testProfile())
		a.Advance(m, cache, infl, 1, 1.0)
		b.Advance(m, cache, infl, 1, 0.5)
		b.Advance(m, cache, infl, 1, 0.5)
		return math.Abs(a.Instructions-b.Instructions) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Catalog tests

func TestCatalogHas59Applications(t *testing.T) {
	if got := len(Catalog()); got != 59 {
		t.Fatalf("catalog size = %d, want 59 (paper §4.1)", got)
	}
}

func TestCatalogComposition(t *testing.T) {
	var spec, parsec int
	for _, p := range Catalog() {
		switch p.Suite {
		case "spec2006":
			spec++
		case "parsec3":
			parsec++
		default:
			t.Fatalf("unknown suite %q", p.Suite)
		}
	}
	if spec != 50 || parsec != 9 {
		t.Fatalf("composition spec=%d parsec=%d, want 50/9", spec, parsec)
	}
}

func TestCatalogProfilesValidate(t *testing.T) {
	for _, p := range Catalog() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestCatalogNamesUniqueAndSorted(t *testing.T) {
	names := Names()
	seen := map[string]bool{}
	for i, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
		if i > 0 && names[i-1] >= n {
			t.Fatalf("names not sorted at %q", n)
		}
	}
}

func TestCatalogMultiInputApps(t *testing.T) {
	// The paper: 8 SPEC programs with multiple inputs.
	prefix := map[string]int{}
	for _, p := range Catalog() {
		if p.Suite != "spec2006" {
			continue
		}
		// The variant index is always the single final digit ("bzip26" is
		// bzip2's input 6).
		base := p.Name
		if last := base[len(base)-1]; last >= '0' && last <= '9' {
			base = base[:len(base)-1]
		}
		prefix[base]++
	}
	multi := 0
	for _, n := range prefix {
		if n > 1 {
			multi++
		}
	}
	if multi != 8 {
		t.Fatalf("multi-input SPEC programs = %d, want 8", multi)
	}
	if prefix["gcc_base"] != 9 {
		t.Fatalf("gcc inputs = %d, want 9", prefix["gcc_base"])
	}
	if prefix["bzip2"] != 6 {
		t.Fatalf("bzip2 inputs = %d, want 6", prefix["bzip2"])
	}
}

func TestCatalogFig5Names(t *testing.T) {
	// Workload labels from the paper's Figure 5 must exist.
	for _, name := range []string{
		"milc1", "gcc_base9", "GemsFDTD1", "lbm1", "leslie3d1", "mcf1",
		"omnetpp1", "Xalan1", "streamcluster1", "libquantum1", "bzip24",
		"soplex2", "astar2", "gobmk4", "hmmer2", "h264ref3", "perlbench2",
		"namd1", "calculix1", "blackscholes1", "swaptions1", "dedup1",
		"fluidanimate1", "bodytrack1", "canneal1", "povray1", "tonto1",
		"zeusmp1", "sjeng1", "bwaves1", "sphinx1", "gromacs1", "ferret1",
		"facesim1",
	} {
		if _, err := ByName(name); err != nil {
			t.Errorf("missing catalog entry %q", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nosuchapp"); err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustByName("nosuchapp")
}

func TestCatalogVariantsDiffer(t *testing.T) {
	a := MustByName("gcc_base1")
	b := MustByName("gcc_base2")
	if a.Phases[0].Curve.Footprint() == b.Phases[0].Curve.Footprint() {
		t.Fatal("input variants should have different working sets")
	}
	if a.Phases[0].APKI == b.Phases[0].APKI {
		t.Fatal("input variants should have different access rates")
	}
}

func TestCatalogClassBehaviour(t *testing.T) {
	m := machine.Default()
	full := float64(m.LLCBytes)
	oneWay := m.WayBytes()
	for _, p := range Catalog() {
		ph := p.Phases[0]
		fullPerf := PhasePerf(m, ph, full, 1, 1)
		smallPerf := PhasePerf(m, ph, oneWay, 1, 1)
		switch p.Class {
		case ClassCompute:
			// Compute apps barely notice cache loss.
			if smallPerf.IPC < 0.7*fullPerf.IPC {
				t.Errorf("%s: compute app lost %.0f%% IPC from cache squeeze",
					p.Name, 100*(1-smallPerf.IPC/fullPerf.IPC))
			}
		case ClassStream:
			// Streamers are bandwidth-hungry even with the full LLC.
			if fullPerf.BytesPerSec < 4e8 {
				t.Errorf("%s: streamer only demands %.1e B/s", p.Name, fullPerf.BytesPerSec)
			}
		case ClassCache:
			// Cache-sensitive apps lose noticeably when squeezed.
			if smallPerf.IPC > 0.95*fullPerf.IPC {
				t.Errorf("%s: cache-sensitive app unaffected by squeeze", p.Name)
			}
		}
	}
}

func TestCatalogSharedAndDeterministic(t *testing.T) {
	a := Catalog()
	b := Catalog()
	if &a[0] != &b[0] {
		t.Fatal("catalog should be memoised")
	}
}

func BenchmarkPhasePerf(b *testing.B) {
	m := machine.Default()
	ph := MustByName("omnetpp1").Phases[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PhasePerf(m, ph, float64(i%20)*MB, 1.2, 1.05)
	}
}
