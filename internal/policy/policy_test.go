package policy

import (
	"fmt"
	"testing"
	"testing/quick"

	"dicer/internal/app"
	"dicer/internal/cache"
	"dicer/internal/machine"
	"dicer/internal/mrc"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

func testSystem(t *testing.T) resctrl.System {
	t.Helper()
	r, err := sim.New(machine.Default(), 2)
	if err != nil {
		t.Fatal(err)
	}
	prof := app.Profile{Name: "x", Suite: "t", Class: app.ClassMixed,
		Phases: []app.Phase{{Name: "p", Instructions: 1e12, BaseCPI: 1, APKI: 5,
			Curve: mrc.MustCurve(0.1, mrc.Component{Bytes: app.MB, Frac: 0.4})}}}
	if err := r.Attach(0, HPClos, prof); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(1, BEClos, prof); err != nil {
		t.Fatal(err)
	}
	return resctrl.NewEmu(r, false)
}

func TestMaskHelpers(t *testing.T) {
	if got := HPMask(20, 19); got != 0xffffe {
		t.Fatalf("HPMask(20,19) = %#x, want 0xffffe", got)
	}
	if got := BEMask(20, 19); got != 0x00001 {
		t.Fatalf("BEMask(20,19) = %#x, want 0x00001", got)
	}
	if got := HPMask(20, 5); got != 0xf8000 {
		t.Fatalf("HPMask(20,5) = %#x, want 0xf8000", got)
	}
	if got := BEMask(20, 5); got != 0x07fff {
		t.Fatalf("BEMask(20,5) = %#x, want 0x07fff", got)
	}
}

// Property: HP and BE masks are always disjoint, contiguous, and together
// cover the whole cache.
func TestPropertyMasksPartition(t *testing.T) {
	f := func(hpRaw, waysRaw uint8) bool {
		ways := int(waysRaw%63) + 2
		hp := int(hpRaw)%(ways-1) + 1
		h := HPMask(ways, hp)
		b := BEMask(ways, hp)
		if h&b != 0 {
			return false
		}
		full := cache.ContiguousMask(0, ways)
		if h|b != full {
			return false
		}
		return cache.CheckMask(h, ways) == nil && cache.CheckMask(b, ways) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitWays(t *testing.T) {
	sys := testSystem(t)
	if err := SplitWays(sys, 12); err != nil {
		t.Fatal(err)
	}
	if got := sys.CBM(HPClos); got != HPMask(20, 12) {
		t.Fatalf("HP mask %#x", got)
	}
	if got := sys.CBM(BEClos); got != BEMask(20, 12) {
		t.Fatalf("BE mask %#x", got)
	}
	if err := SplitWays(sys, 0); err == nil {
		t.Fatal("expected error for 0 HP ways")
	}
	if err := SplitWays(sys, 20); err == nil {
		t.Fatal("expected error leaving no BE way")
	}
}

func TestUnmanagedSetup(t *testing.T) {
	sys := testSystem(t)
	um := Unmanaged{}
	if um.Name() != "UM" {
		t.Fatalf("name %q", um.Name())
	}
	if err := um.Setup(sys); err != nil {
		t.Fatal(err)
	}
	full := cache.ContiguousMask(0, 20)
	if sys.CBM(HPClos) != full || sys.CBM(BEClos) != full {
		t.Fatal("UM should leave all masks full")
	}
	if err := um.Observe(sys, resctrl.Period{}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheTakeoverSetup(t *testing.T) {
	sys := testSystem(t)
	ct := CacheTakeover{}
	if ct.Name() != "CT" {
		t.Fatalf("name %q", ct.Name())
	}
	if err := ct.Setup(sys); err != nil {
		t.Fatal(err)
	}
	if got := sys.CBM(HPClos); got != 0xffffe {
		t.Fatalf("CT HP mask %#x, want 0xffffe (19 high ways)", got)
	}
	if got := sys.CBM(BEClos); got != 0x00001 {
		t.Fatalf("CT BE mask %#x, want the single lowest way", got)
	}
}

func TestStaticSetup(t *testing.T) {
	sys := testSystem(t)
	s := Static{HPWays: 7}
	if s.Name() != "Static(7)" {
		t.Fatalf("name %q", s.Name())
	}
	if err := s.Setup(sys); err != nil {
		t.Fatal(err)
	}
	if got := sys.CBM(HPClos); got != HPMask(20, 7) {
		t.Fatalf("static HP mask %#x", got)
	}
	if err := (Static{HPWays: 25}).Setup(sys); err == nil {
		t.Fatal("expected error for oversized static partition")
	}
}

// failingSystem errors on SetCBM for a chosen CLOS, to exercise policy
// error propagation.
type failingSystem struct {
	resctrl.System
	failClos int
}

func (f *failingSystem) SetCBM(clos int, mask uint64) error {
	if clos == f.failClos {
		return fmt.Errorf("injected failure for clos %d", clos)
	}
	return f.System.SetCBM(clos, mask)
}

func TestSplitWaysPropagatesErrors(t *testing.T) {
	for _, failClos := range []int{HPClos, BEClos} {
		sys := &failingSystem{System: testSystem(t), failClos: failClos}
		if err := SplitWays(sys, 10); err == nil {
			t.Errorf("failing clos %d: expected error", failClos)
		}
	}
}

func TestUnmanagedSetupPropagatesErrors(t *testing.T) {
	sys := &failingSystem{System: testSystem(t), failClos: BEClos}
	if err := (Unmanaged{}).Setup(sys); err == nil {
		t.Fatal("expected error")
	}
}

func TestCacheTakeoverSetupPropagatesErrors(t *testing.T) {
	sys := &failingSystem{System: testSystem(t), failClos: HPClos}
	if err := (CacheTakeover{}).Setup(sys); err == nil {
		t.Fatal("expected error")
	}
}
