// Package policy defines the co-location policy interface shared by the
// baselines of the DICER paper (§2.2) and the DICER controller itself
// (internal/core), plus the two baselines:
//
//   - Unmanaged (UM): no control at all — every group keeps the full
//     capacity bit-mask, so HP and BEs contend freely for the LLC and the
//     memory link.
//   - Cache-Takeover (CT): the conservative static policy — HP receives
//     all but one LLC way exclusively and every BE is confined to the one
//     remaining way.
//
// Static(k) generalises CT to an arbitrary exclusive HP way count and is
// used for the paper's Figure 3 static-partition sweep.
//
// Convention used across the repository: CLOS 0 is the high-priority
// application, CLOS 1 holds all best-effort applications. Policies set
// masks so that HP occupies the high-order ways and BEs the low-order
// ways; DICER moves the boundary between them.
package policy

import (
	"fmt"

	"dicer/internal/cache"
	"dicer/internal/resctrl"
)

// CLOS assignment convention.
const (
	HPClos = 0 // the high-priority application
	BEClos = 1 // all best-effort applications
)

// Policy is a co-location policy: it installs an initial LLC allocation
// and reacts (or not) to monitoring-period readings.
type Policy interface {
	// Name identifies the policy in reports ("UM", "CT", "DICER", ...).
	Name() string
	// Setup installs the initial allocation on sys.
	Setup(sys resctrl.System) error
	// Observe is invoked at the end of every monitoring period with the
	// period's readings and may change the allocation for the next period.
	Observe(sys resctrl.System, p resctrl.Period) error
}

// HPMask returns the CBM giving the HP the hpWays high-order ways of a
// totalWays-way cache.
func HPMask(totalWays, hpWays int) uint64 {
	return cache.ContiguousMask(totalWays-hpWays, hpWays)
}

// BEMask returns the CBM giving the BEs the low-order ways left over when
// the HP owns hpWays ways.
func BEMask(totalWays, hpWays int) uint64 {
	return cache.ContiguousMask(0, totalWays-hpWays)
}

// SplitWays installs the disjoint HP/BE partition with hpWays ways for the
// HP. hpWays must leave at least one way for the BEs and use at least one
// way itself.
func SplitWays(sys resctrl.System, hpWays int) error {
	total := sys.NumWays()
	if hpWays < 1 || hpWays > total-1 {
		return fmt.Errorf("policy: hp ways %d outside [1,%d]", hpWays, total-1)
	}
	if err := sys.SetCBM(HPClos, HPMask(total, hpWays)); err != nil {
		return err
	}
	return sys.SetCBM(BEClos, BEMask(total, hpWays))
}

// Unmanaged is the UM baseline: full masks, no reaction.
type Unmanaged struct{}

// Name implements Policy.
func (Unmanaged) Name() string { return "UM" }

// Setup implements Policy.
func (Unmanaged) Setup(sys resctrl.System) error {
	full := cache.ContiguousMask(0, sys.NumWays())
	for clos := 0; clos < sys.NumClos(); clos++ {
		if err := sys.SetCBM(clos, full); err != nil {
			return err
		}
	}
	return nil
}

// Observe implements Policy.
func (Unmanaged) Observe(resctrl.System, resctrl.Period) error { return nil }

// CacheTakeover is the CT baseline: HP gets all but one way, statically.
type CacheTakeover struct{}

// Name implements Policy.
func (CacheTakeover) Name() string { return "CT" }

// Setup implements Policy.
func (CacheTakeover) Setup(sys resctrl.System) error {
	return SplitWays(sys, sys.NumWays()-1)
}

// Observe implements Policy.
func (CacheTakeover) Observe(resctrl.System, resctrl.Period) error { return nil }

// Static is a fixed exclusive partition with HPWays ways for the HP.
type Static struct {
	HPWays int
}

// Name implements Policy.
func (s Static) Name() string { return fmt.Sprintf("Static(%d)", s.HPWays) }

// Setup implements Policy.
func (s Static) Setup(sys resctrl.System) error { return SplitWays(sys, s.HPWays) }

// Observe implements Policy.
func (Static) Observe(resctrl.System, resctrl.Period) error { return nil }

// ByName returns the stateless baseline policy with the given name ("UM"
// or "CT"), for callers that configure policies by string (the fleet
// layer, CLIs). Stateful policies (DICER, the §6 extensions) need
// per-run construction and are not served here; ok is false for them and
// for unknown names.
func ByName(name string) (Policy, bool) {
	switch name {
	case "UM", "um":
		return Unmanaged{}, true
	case "CT", "ct":
		return CacheTakeover{}, true
	}
	return nil, false
}

// Compile-time interface checks.
var (
	_ Policy = Unmanaged{}
	_ Policy = CacheTakeover{}
	_ Policy = Static{}
)
