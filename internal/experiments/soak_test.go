package experiments

import (
	"strings"
	"testing"

	"dicer/internal/chaos"
)

func soakSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSoakMatrix is the acceptance soak: the full DICER loop over every
// fault schedule × >=3 seeds × the workload mix, invariants checked every
// period, HP degradation bounded against the fault-free run.
func TestSoakMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("soak matrix is long; skipped with -short")
	}
	s := soakSuite(t)
	cfg := SoakConfig{}
	res, err := s.Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.defaults()
	if len(cfg.Schedules) < 5 {
		t.Fatalf("soak must cover >=5 schedules, got %d", len(cfg.Schedules))
	}
	if len(cfg.Seeds) < 3 {
		t.Fatalf("soak must cover >=3 seeds, got %d", len(cfg.Seeds))
	}
	wantRuns := len(cfg.Workloads) * len(cfg.Schedules) * len(cfg.Seeds)
	if len(res.Runs) != wantRuns {
		t.Fatalf("matrix incomplete: %d runs, want %d", len(res.Runs), wantRuns)
	}

	faultsBySchedule := map[string]int{}
	for _, run := range res.Runs {
		if run.InvariantChecks != cfg.HorizonPeriods+1 {
			t.Errorf("%s/%s/%d: %d invariant checks, want %d",
				run.Workload, run.Schedule, run.Seed,
				run.InvariantChecks, cfg.HorizonPeriods+1)
		}
		if run.Degradation > cfg.MaxHPDegradation {
			t.Errorf("%s/%s/%d: degradation %.1f%% exceeds bound",
				run.Workload, run.Schedule, run.Seed, run.Degradation*100)
		}
		st := run.Stats
		faultsBySchedule[run.Schedule] += st.Dropouts + st.FrozenReads +
			st.JitteredReads + st.WritesRejected + st.WritesDelayed
	}
	// Each schedule must actually inject its faults somewhere in the
	// matrix — a soak that never faults proves nothing.
	for name, faults := range faultsBySchedule {
		if faults == 0 {
			t.Errorf("schedule %q injected no faults across the matrix", name)
		}
	}
	t.Logf("max HP degradation across matrix: %.1f%%", res.MaxDegradation*100)
}

// TestSoakReplayDeterministic pins the replay guarantee at the harness
// level: a fixed (workload, schedule, seed) cell reproduces the same
// trajectory fingerprint and fault stats run-to-run, and a different seed
// diverges.
func TestSoakReplayDeterministic(t *testing.T) {
	s := soakSuite(t)
	w := Workload{HP: "omnetpp1", BE: "gcc_base1", BECount: 9}
	sched, err := chaos.ScheduleByName("storm")
	if err != nil {
		t.Fatal(err)
	}

	a, err := s.soakRun(w, sched, 7, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.soakRun(w, sched, 7, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint || a.Stats != b.Stats {
		t.Fatalf("replay diverged:\n%+v\n%+v", a, b)
	}
	c, err := s.soakRun(w, sched, 8, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("different seed produced an identical trajectory")
	}
}

// TestSoakFaultFreeMatchesPlainRun sanity-checks the harness itself: with
// no faults, the soak loop is the ordinary experiment loop.
func TestSoakFaultFreeMatchesPlainRun(t *testing.T) {
	s := soakSuite(t)
	w := Workload{HP: "omnetpp1", BE: "gcc_base1", BECount: 9}
	run, err := s.soakRun(w, chaos.Config{Name: "none"}, 0, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(w, DICER, 40)
	if err != nil {
		t.Fatal(err)
	}
	if run.HPIPC != res.HPIPC {
		t.Fatalf("fault-free soak IPC %v != plain run IPC %v", run.HPIPC, res.HPIPC)
	}
	st := run.Stats
	if st.Dropouts+st.FrozenReads+st.JitteredReads+st.WritesRejected+st.WritesDelayed != 0 {
		t.Fatalf("fault-free soak injected faults: %v", st)
	}
}

func TestSoakTable(t *testing.T) {
	res := &SoakResult{
		MaxHPDegradation: 0.35,
		Runs: []SoakRun{{
			Workload: Workload{HP: "omnetpp1", BE: "gcc_base1", BECount: 9},
			Schedule: "jitter", Seed: 1,
			HPIPC: 0.91, FaultFreeHPIPC: 0.95, Degradation: 0.042,
			Stats: chaos.Stats{Reads: 60, JitteredReads: 58},
		}},
	}
	out := res.Table().String()
	for _, want := range []string{"Chaos soak", "omnetpp1", "jitter", "4.2%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
