package experiments

import (
	"errors"
	"fmt"
	"hash/fnv"

	"dicer/internal/app"
	"dicer/internal/chaos"
	"dicer/internal/core"
	"dicer/internal/invariant"
	"dicer/internal/obs"
	"dicer/internal/policy"
	"dicer/internal/report"
	"dicer/internal/resctrl"
)

// SoakConfig drives the chaos soak harness: the full DICER control loop
// runs over a matrix of (workload × fault schedule × seed), with the
// invariant checker validating every monitoring period and HP performance
// compared against the fault-free run of the same workload.
type SoakConfig struct {
	// Workloads to soak; empty means DefaultSoakWorkloads().
	Workloads []Workload
	// Schedules are the fault schedules; empty means chaos.Schedules().
	Schedules []chaos.Config
	// Seeds for each schedule; empty means {1, 2, 3}.
	Seeds []int64
	// HorizonPeriods per run; 0 means 60.
	HorizonPeriods int
	// MaxHPDegradation bounds the HP IPC loss relative to the fault-free
	// run: chaos HP IPC must stay >= (1-MaxHPDegradation) × fault-free.
	// 0 means 0.35.
	MaxHPDegradation float64
	// Trace, when non-nil, is called once per soak cell (including the
	// fault-free baselines, schedule "none", seed 0) to obtain that
	// cell's trace sink; nil return disables tracing for the cell. Soak
	// records carry the chaos fault deltas and any invariant-guard
	// verdicts alongside the controller's decisions.
	Trace func(w Workload, schedule string, seed int64) obs.Sink
}

func (c *SoakConfig) defaults() {
	if len(c.Workloads) == 0 {
		c.Workloads = DefaultSoakWorkloads()
	}
	if len(c.Schedules) == 0 {
		c.Schedules = chaos.Schedules()
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
	if c.HorizonPeriods == 0 {
		c.HorizonPeriods = 60
	}
	if c.MaxHPDegradation == 0 {
		c.MaxHPDegradation = 0.35
	}
}

// DefaultSoakWorkloads returns the soak matrix's workloads: one
// cache-sensitive CT-Favoured pair, the paper's canonical CT-Thwarted
// pair (milc+gcc, §2.3.2), and a bandwidth-hostile pair that keeps the
// controller in its saturation/sampling states.
func DefaultSoakWorkloads() []Workload {
	return []Workload{
		{HP: "omnetpp1", BE: "gcc_base1", BECount: 9},
		{HP: "milc1", BE: "gcc_base1", BECount: 9},
		{HP: "mcf1", BE: "lbm1", BECount: 5},
	}
}

// SoakRun is the outcome of one (workload, schedule, seed) cell.
type SoakRun struct {
	Workload Workload
	Schedule string
	Seed     int64

	HPIPC          float64 // HP cumulative IPC under chaos
	FaultFreeHPIPC float64 // same workload, no faults
	Degradation    float64 // max(0, 1 - HPIPC/FaultFreeHPIPC)

	Stats           chaos.Stats // faults actually injected
	ToleratedFaults int         // Observe errors tolerated (injected writes)
	InvariantChecks int         // per-period checks performed
	FinalHPWays     int
	Fingerprint     uint64 // FNV-1a over the per-period trajectory
}

// SoakResult aggregates a soak matrix.
type SoakResult struct {
	Runs             []SoakRun
	MaxDegradation   float64
	MaxHPDegradation float64 // the configured bound
}

// Table renders the soak matrix for reports.
func (r *SoakResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Chaos soak: HP IPC under fault schedules (bound: degradation <= %.0f%%)",
			r.MaxHPDegradation*100),
		"Workload", "Schedule", "Seed", "HP IPC", "Fault-free", "Degradation", "Faults")
	for _, run := range r.Runs {
		t.AddRowf(run.Workload.String(), run.Schedule, fmt.Sprintf("%d", run.Seed),
			run.HPIPC, run.FaultFreeHPIPC,
			fmt.Sprintf("%.1f%%", run.Degradation*100), run.Stats.String())
	}
	return t
}

// Soak runs the full matrix across the suite executor. Every cell runs
// regardless of failures elsewhere in the matrix; the returned error is
// the lowest-indexed failing cell in (workload, schedule, seed) order
// and names the cell so the failure replays exactly — the same cell the
// old fail-fast serial loop would have reported, for any worker count.
func (s *Suite) Soak(cfg SoakConfig) (*SoakResult, error) {
	cfg.defaults()
	res := &SoakResult{MaxHPDegradation: cfg.MaxHPDegradation}
	sinkFor := func(w Workload, schedule string, seed int64) obs.Sink {
		if cfg.Trace == nil {
			return nil
		}
		return cfg.Trace(w, schedule, seed)
	}

	// Fault-free baselines, one per workload, in parallel.
	baselines := make([]SoakRun, len(cfg.Workloads))
	if err := s.execute(len(cfg.Workloads), func(i int) error {
		w := cfg.Workloads[i]
		b, err := s.soakRun(w, chaos.Config{Name: "none"}, 0, cfg.HorizonPeriods,
			sinkFor(w, "none", 0))
		if err != nil {
			return fmt.Errorf("soak %s fault-free: %w", w, err)
		}
		baselines[i] = b
		return nil
	}); err != nil {
		return nil, err
	}

	// The chaos matrix, one cell per (workload, schedule, seed), written
	// into index-addressed slots so Runs keeps configuration order.
	type soakCell struct {
		w     Workload
		sched chaos.Config
		seed  int64
		base  float64
	}
	cells := make([]soakCell, 0, len(cfg.Workloads)*len(cfg.Schedules)*len(cfg.Seeds))
	for i, w := range cfg.Workloads {
		for _, sched := range cfg.Schedules {
			for _, seed := range cfg.Seeds {
				cells = append(cells, soakCell{w: w, sched: sched, seed: seed, base: baselines[i].HPIPC})
			}
		}
	}
	runs := make([]SoakRun, len(cells))
	if err := s.execute(len(cells), func(i int) error {
		c := cells[i]
		run, err := s.soakRun(c.w, c.sched, c.seed, cfg.HorizonPeriods,
			sinkFor(c.w, c.sched.Name, c.seed))
		if err != nil {
			return fmt.Errorf("soak %s schedule %q seed %d: %w",
				c.w, c.sched.Name, c.seed, err)
		}
		run.FaultFreeHPIPC = c.base
		if c.base > 0 {
			run.Degradation = 1 - run.HPIPC/c.base
			if run.Degradation < 0 {
				run.Degradation = 0
			}
		}
		runs[i] = run
		return nil
	}); err != nil {
		return nil, err
	}

	// Degradation bound, checked in configuration order: the first
	// breach reported is deterministic for any worker count.
	for i, run := range runs {
		if run.Degradation > cfg.MaxHPDegradation {
			c := cells[i]
			return res, fmt.Errorf(
				"soak %s schedule %q seed %d: HP degradation %.1f%% exceeds bound %.1f%% (chaos IPC %.3f vs fault-free %.3f)",
				c.w, c.sched.Name, c.seed, run.Degradation*100, cfg.MaxHPDegradation*100,
				run.HPIPC, run.FaultFreeHPIPC)
		}
		if run.Degradation > res.MaxDegradation {
			res.MaxDegradation = run.Degradation
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// soakRun executes one cell: the DICER controller on the suite's machine
// under one fault schedule, invariants checked after every period. A
// non-nil trace sink receives one record per period.
func (s *Suite) soakRun(w Workload, sched chaos.Config, seed int64, horizon int, trace obs.Sink) (SoakRun, error) {
	hpProf, err := app.ByName(w.HP)
	if err != nil {
		return SoakRun{}, err
	}
	beProf, err := app.ByName(w.BE)
	if err != nil {
		return SoakRun{}, err
	}
	c, err := s.getCtx(2)
	if err != nil {
		return SoakRun{}, err
	}
	defer s.putCtx(c)
	r := c.r
	if err := r.Attach(0, policy.HPClos, hpProf); err != nil {
		return SoakRun{}, err
	}
	for i := 1; i <= w.BECount; i++ {
		if err := r.Attach(i, policy.BEClos, beProf); err != nil {
			return SoakRun{}, err
		}
	}

	sys := chaos.New(c.emu, sched, seed)
	ctl, err := core.New(s.cfg.DICER)
	if err != nil {
		return SoakRun{}, err
	}
	run := SoakRun{Workload: w, Schedule: sched.Name, Seed: seed}
	var rec *obs.Recorder
	if trace != nil {
		rec = obs.NewRecorder(trace)
		rec.AttachController(ctl)
		rec.AttachChaos(sys)
		ctlCfg := ctl.Config()
		h := obs.Header{
			Schema:         obs.Schema,
			Policy:         ctl.Name(),
			HP:             w.HP,
			NumWays:        s.cfg.Machine.LLCWays,
			PeriodSec:      s.cfg.PeriodSec,
			HorizonPeriods: horizon,
			Controller:     &ctlCfg,
		}
		for i := 0; i < w.BECount; i++ {
			h.BEs = append(h.BEs, w.BE)
		}
		if sched.Active() {
			h.Chaos = sched.Name
			h.ChaosSeed = seed
		}
		if err := rec.Start(h); err != nil {
			return run, err
		}
	}
	if err := ctl.Setup(sys); err != nil {
		// Setup writes the initial split, so it is exposed to injected
		// schemata rejections like any other actuation.
		if !errors.Is(err, chaos.ErrInjected) {
			return run, err
		}
		run.ToleratedFaults++
	}
	checker := invariant.NewChecker(ctl.Config())
	meter := resctrl.NewMeter(sys)

	h := fnv.New64a()
	dt := s.cfg.PeriodSec / float64(s.cfg.StepsPerPeriod)
	for period := 0; period < horizon; period++ {
		for step := 0; step < s.cfg.StepsPerPeriod; step++ {
			r.Step(dt)
		}
		p := meter.Sample()
		obsErr := ctl.Observe(sys, p)
		checkErr := checker.Check(sys, ctl, sys.ActuationClean())
		if rec != nil {
			rec.EndPeriod(period, p, sys, errors.Join(obsErr, checkErr))
		}
		if obsErr != nil {
			if !errors.Is(obsErr, chaos.ErrInjected) {
				return run, obsErr
			}
			// An injected schemata-write rejection: a production
			// controller logs it and retries next period; the soak
			// loop does the same.
			run.ToleratedFaults++
		}
		if checkErr != nil {
			return run, checkErr
		}
		fmt.Fprintf(h, "%d:%d:%s:%x:%x|", period, ctl.HPWays(), ctl.State(),
			sys.CBM(policy.HPClos), sys.CBM(policy.BEClos))
	}

	// Drain in-flight actuation and run a final full-consistency check:
	// once every write has landed, installed masks must equal intent. A
	// fresh checker skips the period-monotonicity invariant, which does
	// not apply to a re-check of an already-validated period.
	sys.Drain()
	if err := invariant.NewChecker(ctl.Config()).Check(sys, ctl, sys.ActuationClean()); err != nil {
		return run, fmt.Errorf("post-drain: %w", err)
	}

	run.HPIPC = r.Proc(0).IPC()
	run.Stats = sys.Stats()
	run.InvariantChecks = checker.Checks() + 1
	run.FinalHPWays = ctl.HPWays()
	run.Fingerprint = h.Sum64()
	return run, nil
}
