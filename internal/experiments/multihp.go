package experiments

import (
	"fmt"
	"math/rand"

	"dicer/internal/app"
	"dicer/internal/cluster"
	"dicer/internal/core"
	"dicer/internal/metrics"
	"dicer/internal/report"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

// This file is the multi-HP consolidation harness (ROADMAP item 2): M
// high-priority applications share one box under a CLOS-id budget, the
// multi-HP DICER controller partitions the LLC per CLOS group, and the
// grid compares the LFOC-style clustered plan against the naive
// baselines (one CLOS per app — infeasible beyond the budget — and one
// shared group). The fairness metric is the worst per-app slowdown; SLO
// conformance and Eq. 1 EFU ride along.

// MultiHPSpec describes one multi-HP consolidation run.
type MultiHPSpec struct {
	// M is the number of HP applications; BECount the best-effort apps
	// filling further cores.
	M       int `json:"m"`
	BECount int `json:"be_count"`
	// CLOSBudget is the CLOS-id budget the plan must respect (HP groups
	// + 1 BE partition).
	CLOSBudget int `json:"clos_budget"`
	// Grouping is the plan policy (core.GroupingClustered / PerApp /
	// Single; empty means clustered).
	Grouping string `json:"grouping,omitempty"`
	// SLO is every app's target fraction of alone performance (default
	// 0.9).
	SLO float64 `json:"slo,omitempty"`
	// HorizonPeriods per run; 0 means the suite's sweep horizon.
	HorizonPeriods int `json:"horizon_periods,omitempty"`
	// ReclusterEvery re-plans the grouping every N periods (0 = fixed);
	// UsePhaseHints exposes upcoming-phase curves to those re-plans.
	ReclusterEvery int  `json:"recluster_every,omitempty"`
	UsePhaseHints  bool `json:"use_phase_hints,omitempty"`
	// Seed draws the workload: which catalog applications fill the M HP
	// slots and the BE cores. The same seed always draws the same
	// workload.
	Seed int64 `json:"seed,omitempty"`
}

// MultiHPOutcome summarises one multi-HP run.
type MultiHPOutcome struct {
	Policy    string
	NumGroups int
	// MaxSlowdown is the worst per-app slowdown (fairness), Conformance
	// the fraction of HP apps meeting their SLO, EFU Eq. 1 over every
	// application.
	MaxSlowdown float64
	Conformance float64
	EFU         float64
	Reclusters  int
}

// multiHPWorkload draws the spec's workload deterministically from the
// catalog: a seeded permutation fills the M HP slots, the next entries
// fill the BE cores.
func multiHPWorkload(spec MultiHPSpec) (hps, bes []string) {
	names := app.Names()
	rng := rand.New(rand.NewSource(spec.Seed))
	perm := rng.Perm(len(names))
	hps = make([]string, spec.M)
	for i := range hps {
		hps[i] = names[perm[i%len(perm)]]
	}
	bes = make([]string, spec.BECount)
	for i := range bes {
		bes[i] = names[perm[(spec.M+i)%len(perm)]]
	}
	return hps, bes
}

// RunMultiHP executes one multi-HP consolidation run. The machine is the
// suite's platform with the core count raised to host M+BECount
// applications; alone references resolve through the suite's memo (a
// solo run does not depend on the core count).
func (s *Suite) RunMultiHP(spec MultiHPSpec) (MultiHPOutcome, error) {
	if spec.M < 1 {
		return MultiHPOutcome{}, fmt.Errorf("experiments: multi-HP spec needs M >= 1")
	}
	if spec.CLOSBudget < 2 {
		return MultiHPOutcome{}, fmt.Errorf("experiments: multi-HP spec needs a CLOS budget >= 2")
	}
	slo := spec.SLO
	if slo == 0 {
		slo = 0.9
	}
	horizon := spec.HorizonPeriods
	if horizon == 0 {
		horizon = s.cfg.SweepHorizonPeriods
	}
	// The platform grows with the consolidation: more cores AND a
	// proportionally wider memory link (a bigger socket, constant
	// per-core bandwidth), so the LLC stays the contended resource the
	// plan is judged on.
	m := s.cfg.Machine
	if need := spec.M + spec.BECount; m.Cores < need {
		m.Link.CapacityGBps *= float64(need) / float64(m.Cores)
		m.Cores = need
	}

	hpNames, beNames := multiHPWorkload(spec)
	r, err := sim.New(m, spec.CLOSBudget)
	if err != nil {
		return MultiHPOutcome{}, err
	}
	beClos := spec.CLOSBudget - 1
	procs := make([]*app.Proc, spec.M)
	specs := make([]cluster.AppSpec, spec.M)
	for i, name := range hpNames {
		prof, err := app.ByName(name)
		if err != nil {
			return MultiHPOutcome{}, err
		}
		if err := r.Attach(i, 0, prof); err != nil {
			return MultiHPOutcome{}, err
		}
		procs[i] = r.Proc(i)
	}
	for i, name := range beNames {
		prof, err := app.ByName(name)
		if err != nil {
			return MultiHPOutcome{}, err
		}
		if err := r.Attach(spec.M+i, beClos, prof); err != nil {
			return MultiHPOutcome{}, err
		}
	}

	refresh := func() {
		for i, pr := range procs {
			ph := pr.PhaseRef()
			specs[i] = cluster.AppSpec{
				Name: hpNames[i], Core: i, SLO: slo,
				Curve: ph.Curve, APKI: ph.APKI,
			}
			if spec.UsePhaseHints && len(pr.Profile.Phases) > 1 && pr.PhaseProgress() >= 0.75 {
				next := (pr.PhaseIndex() + 1) % len(pr.Profile.Phases)
				specs[i].Hint = &pr.Profile.Phases[next].Curve
			}
		}
	}
	refresh()

	mcfg := core.MultiConfig{
		Group:          s.cfg.DICER,
		WayBytes:       m.WaysBytes(1),
		CLOSBudget:     spec.CLOSBudget,
		Grouping:       spec.Grouping,
		ReclusterEvery: spec.ReclusterEvery,
		UsePhaseHints:  spec.UsePhaseHints,
	}
	mc, err := core.NewMulti(mcfg, specs)
	if err != nil {
		return MultiHPOutcome{}, err
	}
	reclusters := 0
	mc.ChainTrace(func(e core.GroupEvent) {
		if e.Kind == core.EventRecluster && e.Group == 0 {
			reclusters++
		}
	})

	sys := resctrl.NewEmu(r, false)
	if err := mc.Setup(sys); err != nil {
		return MultiHPOutcome{}, err
	}
	meter := resctrl.NewMeter(sys)
	dt := s.cfg.PeriodSec / float64(s.cfg.StepsPerPeriod)
	for period := 0; period < horizon; period++ {
		for step := 0; step < s.cfg.StepsPerPeriod; step++ {
			r.Step(dt)
		}
		p := meter.Sample()
		refresh()
		if err := mc.UpdateSpecs(specs); err != nil {
			return MultiHPOutcome{}, err
		}
		if err := mc.Observe(sys, p); err != nil {
			return MultiHPOutcome{}, err
		}
	}

	out := MultiHPOutcome{
		Policy:     mc.Name(),
		NumGroups:  mc.NumGroups(),
		Reclusters: reclusters,
	}
	norms := make([]float64, 0, spec.M+spec.BECount)
	met := 0
	for i := range hpNames {
		ref, err := s.AloneIPC(hpNames[i])
		if err != nil {
			return MultiHPOutcome{}, err
		}
		ipc := procs[i].IPC()
		if sd := metrics.Slowdown(ref, ipc); sd > out.MaxSlowdown {
			out.MaxSlowdown = sd
		}
		if metrics.SLOAchieved(ipc, ref, slo) {
			met++
		}
		norms = append(norms, metrics.NormIPC(ipc, ref))
	}
	out.Conformance = float64(met) / float64(spec.M)
	for i := range beNames {
		ref, err := s.AloneIPC(beNames[i])
		if err != nil {
			return MultiHPOutcome{}, err
		}
		norms = append(norms, metrics.NormIPC(r.Proc(spec.M+i).IPC(), ref))
	}
	out.EFU = metrics.EFU(norms)
	return out, nil
}

// MultiHPCell is one grid cell: a labelled spec and its outcome, or the
// infeasibility error (per-app grouping beyond the budget refuses).
type MultiHPCell struct {
	Label   string
	Spec    MultiHPSpec
	Outcome MultiHPOutcome
	Err     string
}

// MultiHPGridResult is the clustered-vs-baselines comparison grid.
type MultiHPGridResult struct {
	M, BECount int
	Budget     int // the real hardware CLOS budget
	Cells      []MultiHPCell
}

// MultiHPGrid runs the consolidation grid for M HP apps under the real
// hardware budget: the clustered plan at the full, halved and quartered
// budget, the single shared group, per-app under the real budget
// (recorded as infeasible when M exceeds it), and per-app on fantasy
// hardware with M+1 CLOS ids as the isolation reference. Cells run
// through the suite's executor; results are identical for any worker
// count.
func (s *Suite) MultiHPGrid(m, beCount, budget int) (MultiHPGridResult, error) {
	base := MultiHPSpec{M: m, BECount: beCount, CLOSBudget: budget, Seed: 1}
	with := func(label, grouping string, clos int) MultiHPCell {
		spec := base
		spec.Grouping = grouping
		spec.CLOSBudget = clos
		return MultiHPCell{Label: label, Spec: spec}
	}
	res := MultiHPGridResult{
		M: m, BECount: beCount, Budget: budget,
		Cells: []MultiHPCell{
			with("clustered", core.GroupingClustered, budget),
			with(fmt.Sprintf("clustered/%d", budget/2), core.GroupingClustered, budget/2),
			with(fmt.Sprintf("clustered/%d", budget/4), core.GroupingClustered, budget/4),
			with("single", core.GroupingSingle, budget),
			with("per-app", core.GroupingPerApp, budget),
			with("per-app-spill", core.GroupingSpill, budget),
			with(fmt.Sprintf("per-app/%d-clos", m+1), core.GroupingPerApp, m+1),
		},
	}
	err := Execute(len(res.Cells), s.workers(), func(i int) error {
		cell := &res.Cells[i]
		out, err := s.RunMultiHP(cell.Spec)
		if err != nil {
			cell.Err = err.Error()
			return nil // infeasible cells are part of the result
		}
		cell.Outcome = out
		return nil
	})
	return res, err
}

// Table renders the grid.
func (r MultiHPGridResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Multi-HP consolidation: %d HP apps + %d BEs, %d-CLOS hardware (worst per-app slowdown / SLO conformance / EFU)",
			r.M, r.BECount, r.Budget),
		"Plan", "CLOS budget", "Groups", "Max slowdown", "SLO conf", "EFU")
	for _, c := range r.Cells {
		if c.Err != "" {
			t.AddRow(c.Label, fmt.Sprintf("%d", c.Spec.CLOSBudget), "-", "infeasible", "-", "-")
			continue
		}
		t.AddRow(c.Label,
			fmt.Sprintf("%d", c.Spec.CLOSBudget),
			fmt.Sprintf("%d", c.Outcome.NumGroups),
			report.F3(c.Outcome.MaxSlowdown),
			report.Pct(c.Outcome.Conformance*100),
			report.F3(c.Outcome.EFU))
	}
	return t
}
