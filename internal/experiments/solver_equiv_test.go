package experiments

import (
	"math"
	"testing"

	"dicer/internal/chaos"
)

// equivSuites builds two identical suites, one on the optimized cached
// solver and one on the retained reference solver.
func equivSuites(t *testing.T) (opt, ref *Suite) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.HorizonPeriods = 30
	cfg.SweepHorizonPeriods = 20
	build := func(reference bool) *Suite {
		c := cfg
		c.ReferenceSolver = reference
		s, err := NewSuite(c)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return build(false), build(true)
}

// equivWorkloads is the scenario matrix: a cache-sensitive CT-Favoured
// pair, the paper's canonical CT-Thwarted pair (phase-heavy HP), and a
// bandwidth-hostile pair that saturates the link and exercises the
// saturation/sampling controller states.
func equivWorkloads() []Workload {
	return []Workload{
		{HP: "omnetpp1", BE: "gcc_base1", BECount: 9},
		{HP: "milc1", BE: "gcc_base1", BECount: 9},
		{HP: "mcf1", BE: "lbm1", BECount: 5},
	}
}

// TestSolverEquivalenceRuns holds the optimized solver to the reference
// across the scenario matrix under all three policies: every Result must
// agree within 1e-9 (the solves are bit-identical; the tolerance is the
// acceptance criterion's, not an expectation of drift).
func TestSolverEquivalenceRuns(t *testing.T) {
	opt, ref := equivSuites(t)
	for _, w := range equivWorkloads() {
		for _, pol := range []PolicyName{UM, CT, DICER} {
			ro, err := opt.Run(w, pol, opt.cfg.HorizonPeriods)
			if err != nil {
				t.Fatalf("%s/%s optimized: %v", w, pol, err)
			}
			rr, err := ref.Run(w, pol, ref.cfg.HorizonPeriods)
			if err != nil {
				t.Fatalf("%s/%s reference: %v", w, pol, err)
			}
			for _, c := range []struct {
				name     string
				opt, ref float64
			}{
				{"HPIPC", ro.HPIPC, rr.HPIPC},
				{"BEIPC", ro.BEIPC, rr.BEIPC},
				{"HPAlone", ro.HPAlone, rr.HPAlone},
				{"BEAlone", ro.BEAlone, rr.BEAlone},
			} {
				if math.Abs(c.opt-c.ref) > 1e-9 {
					t.Errorf("%s/%s: %s diverged: optimized %v reference %v",
						w, pol, c.name, c.opt, c.ref)
				}
			}
		}
	}
}

// TestSolverEquivalenceChaos compares full DICER decision trajectories —
// the PR 1 FNV-1a fingerprint over (period, hpWays, state, CBMs) — between
// the two solvers for every chaos schedule × seed cell, plus the
// fault-free baseline. A fingerprint mismatch means the optimized solver
// steered the controller differently somewhere in the run.
func TestSolverEquivalenceChaos(t *testing.T) {
	opt, ref := equivSuites(t)
	horizon := 20
	cells := []struct {
		sched chaos.Config
		seed  int64
	}{{chaos.Config{Name: "none"}, 0}}
	for _, sched := range chaos.Schedules() {
		for _, seed := range []int64{1, 2} {
			cells = append(cells, struct {
				sched chaos.Config
				seed  int64
			}{sched, seed})
		}
	}
	for _, w := range equivWorkloads() {
		for _, cell := range cells {
			ro, err := opt.soakRun(w, cell.sched, cell.seed, horizon, nil)
			if err != nil {
				t.Fatalf("%s %s seed %d optimized: %v", w, cell.sched.Name, cell.seed, err)
			}
			rr, err := ref.soakRun(w, cell.sched, cell.seed, horizon, nil)
			if err != nil {
				t.Fatalf("%s %s seed %d reference: %v", w, cell.sched.Name, cell.seed, err)
			}
			if ro.Fingerprint != rr.Fingerprint {
				t.Errorf("%s schedule %q seed %d: decision fingerprint diverged: %x vs %x",
					w, cell.sched.Name, cell.seed, ro.Fingerprint, rr.Fingerprint)
			}
			if math.Abs(ro.HPIPC-rr.HPIPC) > 1e-9 {
				t.Errorf("%s schedule %q seed %d: HP IPC diverged: %v vs %v",
					w, cell.sched.Name, cell.seed, ro.HPIPC, rr.HPIPC)
			}
			if ro.FinalHPWays != rr.FinalHPWays {
				t.Errorf("%s schedule %q seed %d: final HP ways diverged: %d vs %d",
					w, cell.sched.Name, cell.seed, ro.FinalHPWays, rr.FinalHPWays)
			}
		}
	}
}
