package experiments

import (
	"strings"
	"testing"
)

func TestSensitivitySweepAlpha(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	s := suite(t)
	r, err := s.SensitivityAlpha(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 5 {
		t.Fatalf("alpha sweep has %d points, want 5", len(r.Points))
	}
	for _, p := range r.Points {
		if p.GeoMeanEFU <= 0 || p.GeoMeanEFU > 1 {
			t.Fatalf("EFU %g out of range at a=%g", p.GeoMeanEFU, p.Value)
		}
		if p.SLO90Pct < 0 || p.SLO90Pct > 100 {
			t.Fatalf("SLO%% %g out of range at a=%g", p.SLO90Pct, p.Value)
		}
		if p.MeanHPNorm <= 0 || p.MeanHPNorm > 1.05 {
			t.Fatalf("HP norm %g implausible at a=%g", p.MeanHPNorm, p.Value)
		}
	}
	// A huge stability band (15%) lets DICER shrink the HP much more
	// aggressively than a tight one (1%), so BEs gain: EFU should not
	// decrease from the tightest to the loosest setting.
	if r.Points[len(r.Points)-1].GeoMeanEFU < r.Points[0].GeoMeanEFU-0.02 {
		t.Errorf("looser stability band lowered EFU: %g -> %g",
			r.Points[0].GeoMeanEFU, r.Points[len(r.Points)-1].GeoMeanEFU)
	}
	if !strings.Contains(r.Table().String(), "Sensitivity") {
		t.Error("table rendering")
	}
}

func TestSensitivityBWThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	s := suite(t)
	r, err := s.SensitivityBWThreshold(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 7 {
		t.Fatalf("threshold sweep has %d points", len(r.Points))
	}
	// All settings must remain functional (non-degenerate outcomes).
	for _, p := range r.Points {
		if p.MeanHPNorm < 0.5 {
			t.Errorf("threshold %g collapsed HP norm to %g", p.Value, p.MeanHPNorm)
		}
	}
}

func TestAblationsOverSample(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	s := suite(t)
	r, err := s.Ablations(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) != 4 || len(r.Points) != 4 {
		t.Fatalf("ablation sizes %d/%d", len(r.Variants), len(r.Points))
	}
	full := r.Points[0]
	noSat := r.Points[1]
	// Removing saturation handling must not *help* HP conformance; allow a
	// small tolerance for sample noise.
	if noSat.SLO90Pct > full.SLO90Pct+5 {
		t.Errorf("ablating saturation handling improved SLO conformance: %.1f -> %.1f",
			full.SLO90Pct, noSat.SLO90Pct)
	}
	if !strings.Contains(r.Table().String(), "Ablation") {
		t.Error("table rendering")
	}
}

func TestExtensionsComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	s := suite(t)
	r, err := s.Extensions(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) == 0 || len(r.Workloads) > 3 {
		t.Fatalf("extension workloads %d", len(r.Workloads))
	}
	if len(r.HPNorm) != 3 {
		t.Fatalf("variants %d", len(r.HPNorm))
	}
	// On stream x stream pairs, both extensions should protect the HP at
	// least as well as plain DICER on average.
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	plain := mean(r.HPNorm[0])
	mba := mean(r.HPNorm[1])
	bemgr := mean(r.HPNorm[2])
	if mba < plain-0.02 {
		t.Errorf("MBA extension hurt the HP: %.3f vs %.3f", mba, plain)
	}
	if bemgr < plain-0.02 {
		t.Errorf("BE manager hurt the HP: %.3f vs %.3f", bemgr, plain)
	}
	if !strings.Contains(r.Table().String(), "Extensions") {
		t.Error("table rendering")
	}
}
