package experiments

import (
	"strings"
	"testing"

	"dicer/internal/fleet"
)

// fleetTestConfig is the comparison load: enough streamers that careless
// placement saturates individual links, light enough that the headroom
// scheduler rarely has to queue.
func fleetTestConfig() FleetConfig {
	return FleetConfig{
		Nodes:          4,
		HorizonPeriods: 80,
		Arrivals: fleet.ArrivalConfig{
			Seed: 42, RatePerPeriod: 2, MeanDurationPeriods: 10,
			ClassWeights: [4]float64{0.5, 0.25, 0.15, 0.1},
		},
		QueueCap: 40,
	}
}

// TestFleetSuite runs the scheduler × policy grid once and checks the
// relationships the fleet layer exists to demonstrate.
func TestFleetSuite(t *testing.T) {
	s, err := NewSuite(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cells, err := s.FleetSuite(fleetTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(fleet.SchedulerNames())*3 {
		t.Fatalf("got %d cells, want %d", len(cells), len(fleet.SchedulerNames())*3)
	}

	byCell := map[string]fleet.Result{}
	for _, c := range cells {
		byCell[c.Scheduler+"/"+string(c.Policy)] = c.Result
	}

	// Every cell consumed the same arrival trace.
	want := cells[0].Result.Arrivals
	if want == 0 {
		t.Fatal("no arrivals generated")
	}
	for key, r := range byCell {
		if r.Arrivals != want {
			t.Errorf("%s saw %d arrivals, others %d: trace not shared", key, r.Arrivals, want)
		}
	}

	// Acceptance: the headroom scheduler beats random on fleet EFU at
	// equal-or-fewer HP SLO-violation periods under the DICER policy.
	hr, rnd := byCell["headroom/DICER"], byCell["random/DICER"]
	if hr.FleetEFU <= rnd.FleetEFU {
		t.Errorf("headroom fleet EFU %.4f not above random %.4f", hr.FleetEFU, rnd.FleetEFU)
	}
	if hr.SLOViolationPeriods > rnd.SLOViolationPeriods {
		t.Errorf("headroom SLO violations %d exceed random %d", hr.SLOViolationPeriods, rnd.SLOViolationPeriods)
	}

	// The single-node policy ordering survives consolidation: UM runs
	// hottest but violates the HP SLO far more than the partitioned
	// policies; DICER recovers EFU over CT without UM's violation rate.
	for _, sched := range fleet.SchedulerNames() {
		um := byCell[sched+"/UM"]
		ct := byCell[sched+"/CT"]
		di := byCell[sched+"/DICER"]
		if um.SLOViolationPeriods <= 2*ct.SLOViolationPeriods {
			t.Errorf("%s: UM violations %d not well above CT's %d", sched, um.SLOViolationPeriods, ct.SLOViolationPeriods)
		}
		if di.FleetEFU <= ct.FleetEFU {
			t.Errorf("%s: DICER fleet EFU %.4f not above CT %.4f", sched, di.FleetEFU, ct.FleetEFU)
		}
		if di.SLOViolationPeriods >= um.SLOViolationPeriods {
			t.Errorf("%s: DICER violations %d not below UM %d", sched, di.SLOViolationPeriods, um.SLOViolationPeriods)
		}
	}

	// The report table renders every cell.
	table := FleetTable(cells).String()
	for _, sched := range fleet.SchedulerNames() {
		if !strings.Contains(table, sched) {
			t.Errorf("table missing scheduler %s:\n%s", sched, table)
		}
	}
}

// TestFleetSuiteDeterministic pins cell-level reproducibility across
// suites (fresh memo caches, parallel execution).
func TestFleetSuiteDeterministic(t *testing.T) {
	cfg := fleetTestConfig()
	cfg.HorizonPeriods = 30
	cfg.Schedulers = []string{"headroom", "random"}
	cfg.Policies = []PolicyName{DICER}

	run := func() []FleetCell {
		s, err := NewSuite(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cells, err := s.FleetSuite(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs across runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
