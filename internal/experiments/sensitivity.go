package experiments

import (
	"fmt"

	"dicer/internal/core"
	"dicer/internal/ext"
	"dicer/internal/metrics"
	"dicer/internal/policy"
	"dicer/internal/report"
	"dicer/internal/resctrl"

	"dicer/internal/app"
)

// The paper (§4.1) states that all DICER parameter values were "selected
// after performing a sensitivity analysis which for the sake of space is
// not included". This file reconstructs that analysis: each driver sweeps
// one parameter of the controller across a plausible range over a subset
// of the representative sample and reports the two quantities the paper
// optimises — HP SLO conformance and effective utilisation.

// SensitivityPoint is one parameter setting's aggregate outcome.
type SensitivityPoint struct {
	Value      float64
	SLO90Pct   float64 // % of workloads with HP norm IPC >= 0.90
	GeoMeanEFU float64
	MeanHPNorm float64
}

// SensitivityResult is a full one-parameter sweep.
type SensitivityResult struct {
	Parameter string
	Points    []SensitivityPoint
}

// Table renders the sweep.
func (r SensitivityResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Sensitivity: DICER outcome vs %s", r.Parameter),
		r.Parameter, "SLO90 %", "geomean EFU", "mean HP norm")
	for _, p := range r.Points {
		t.AddRowf(p.Value, fmt.Sprintf("%.1f", p.SLO90Pct), p.GeoMeanEFU, p.MeanHPNorm)
	}
	return t
}

// sensitivitySampleSize bounds the per-point workload count so a sweep
// stays affordable (the paper's analysis is qualitative: pick the plateau).
const sensitivitySampleSize = 24

// sensitivitySample returns an evenly spaced slice of the representative
// sample.
func (s *Suite) sensitivitySample(beCount int) ([]SampledWorkload, error) {
	sample, err := s.Sample(beCount)
	if err != nil {
		return nil, err
	}
	if len(sample) <= sensitivitySampleSize {
		return sample, nil
	}
	out := make([]SampledWorkload, 0, sensitivitySampleSize)
	for i := 0; i < sensitivitySampleSize; i++ {
		out = append(out, sample[i*(len(sample)-1)/(sensitivitySampleSize-1)])
	}
	return out, nil
}

// runDICERVariant executes the sample under a custom controller config and
// aggregates the outcome. Results are NOT cached in the suite (the config
// is not part of the memoisation key), so each call simulates afresh.
func (s *Suite) runDICERVariant(sample []SampledWorkload, cfg core.Config) (SensitivityPoint, error) {
	type res struct {
		norm float64
		efu  float64
		err  error
	}
	results := make([]res, len(sample))
	sem := make(chan struct{}, s.workers())
	done := make(chan struct{})
	for i, sw := range sample {
		go func(i int, w Workload) {
			sem <- struct{}{}
			defer func() { <-sem; done <- struct{}{} }()
			ctl, err := core.New(cfg)
			if err != nil {
				results[i].err = err
				return
			}
			r, err := s.run(w, ctl, DICER, s.cfg.HorizonPeriods)
			if err != nil {
				results[i].err = err
				return
			}
			results[i].norm = r.HPNorm()
			results[i].efu = r.EFU()
		}(i, sw.Workload)
	}
	for range sample {
		<-done
	}
	var pt SensitivityPoint
	var efus, norms []float64
	met := 0
	for _, r := range results {
		if r.err != nil {
			return SensitivityPoint{}, r.err
		}
		efus = append(efus, r.efu)
		norms = append(norms, r.norm)
		if r.norm >= 0.90 {
			met++
		}
	}
	pt.SLO90Pct = 100 * float64(met) / float64(len(results))
	pt.GeoMeanEFU = metrics.GeoMean(efus)
	pt.MeanHPNorm = metrics.Mean(norms)
	return pt, nil
}

// sweep runs the variant for every value, applying set(value) to the base
// config.
func (s *Suite) sweep(beCount int, name string, values []float64,
	set func(*core.Config, float64)) (SensitivityResult, error) {
	sample, err := s.sensitivitySample(beCount)
	if err != nil {
		return SensitivityResult{}, err
	}
	out := SensitivityResult{Parameter: name}
	for _, v := range values {
		cfg := s.cfg.DICER
		set(&cfg, v)
		pt, err := s.runDICERVariant(sample, cfg)
		if err != nil {
			return SensitivityResult{}, err
		}
		pt.Value = v
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// SensitivityBWThreshold sweeps the saturation threshold (Table 1: 50).
func (s *Suite) SensitivityBWThreshold(beCount int) (SensitivityResult, error) {
	return s.sweep(beCount, "MemBW_threshold (Gbps)",
		[]float64{35, 40, 45, 50, 55, 60, 65},
		func(c *core.Config, v float64) { c.BWThresholdGbps = v })
}

// SensitivityAlpha sweeps the IPC stability band (Table 1: 5%).
func (s *Suite) SensitivityAlpha(beCount int) (SensitivityResult, error) {
	return s.sweep(beCount, "stability a (%)",
		[]float64{1, 2, 5, 10, 15},
		func(c *core.Config, v float64) { c.StabilityAlpha = v / 100 })
}

// SensitivityPhaseThreshold sweeps Eq. 2's spike factor (Table 1: 30%).
func (s *Suite) SensitivityPhaseThreshold(beCount int) (SensitivityResult, error) {
	return s.sweep(beCount, "phase_threshold (%)",
		[]float64{10, 20, 30, 50, 80},
		func(c *core.Config, v float64) { c.PhaseThreshold = v / 100 })
}

// SensitivitySampleStep sweeps the sampling stride.
func (s *Suite) SensitivitySampleStep(beCount int) (SensitivityResult, error) {
	return s.sweep(beCount, "sample step (ways)",
		[]float64{1, 2, 3, 4, 6},
		func(c *core.Config, v float64) { c.SampleStep = int(v) })
}

// ---------------------------------------------------------------------------
// Ablations across the sample (not just one pair): what each mechanism of
// the controller buys, measured on the representative workloads.

// AblationVariant names a controller variant for the comparison.
type AblationVariant struct {
	Name string
	Cfg  core.Config
}

// AblationResult aggregates every variant over the sample.
type AblationResult struct {
	BECount  int
	Variants []AblationVariant
	Points   []SensitivityPoint // parallel to Variants
}

// Table renders the ablation comparison.
func (r AblationResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Ablation: DICER variants over the sample (%d BEs)", r.BECount),
		"Variant", "SLO90 %", "geomean EFU", "mean HP norm")
	for i, v := range r.Variants {
		p := r.Points[i]
		t.AddRowf(v.Name, fmt.Sprintf("%.1f", p.SLO90Pct), p.GeoMeanEFU, p.MeanHPNorm)
	}
	return t
}

// Ablations compares the full controller against its ablated variants over
// the (sub)sample.
func (s *Suite) Ablations(beCount int) (AblationResult, error) {
	sample, err := s.sensitivitySample(beCount)
	if err != nil {
		return AblationResult{}, err
	}
	full := s.cfg.DICER
	noSat := full
	noSat.DisableSaturationHandling = true
	noPhase := full
	noPhase.DisablePhaseDetection = true
	noBoth := noSat
	noBoth.DisablePhaseDetection = true
	out := AblationResult{
		BECount: beCount,
		Variants: []AblationVariant{
			{"full DICER", full},
			{"no saturation handling (≈DCP-QoS)", noSat},
			{"no phase detection", noPhase},
			{"neither", noBoth},
		},
	}
	for _, v := range out.Variants {
		pt, err := s.runDICERVariant(sample, v.Cfg)
		if err != nil {
			return AblationResult{}, err
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Extension comparison: plain DICER vs DICER+MBA vs DICER+BE manager over
// bandwidth-heavy workloads, quantifying the §6 roadmap.

// ExtensionResult compares controller stacks on a bandwidth-heavy subset.
type ExtensionResult struct {
	Workloads []Workload
	Names     []string
	HPNorm    [][]float64 // [variant][workload]
	EFU       [][]float64
}

// Table renders the comparison (means across the subset).
func (r ExtensionResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Extensions on %d bandwidth-heavy workloads (means)", len(r.Workloads)),
		"Variant", "mean HP norm", "geomean EFU")
	for i, n := range r.Names {
		t.AddRowf(n, metrics.Mean(r.HPNorm[i]), metrics.GeoMean(r.EFU[i]))
	}
	return t
}

// Extensions runs the §6 extension stacks on the most bandwidth-heavy
// sampled workloads (stream-class HPs paired with stream-class BEs).
func (s *Suite) Extensions(beCount, maxWorkloads int) (ExtensionResult, error) {
	classOf := map[string]app.Class{}
	for _, p := range app.Catalog() {
		classOf[p.Name] = p.Class
	}
	var heavy []Workload
	for _, w := range Pairs(beCount) {
		if classOf[w.HP] == app.ClassStream && classOf[w.BE] == app.ClassStream {
			heavy = append(heavy, w)
		}
		if len(heavy) >= maxWorkloads {
			break
		}
	}
	out := ExtensionResult{
		Workloads: heavy,
		Names:     []string{"DICER", "DICER+MBA", "DICER+BEMGR"},
	}
	out.HPNorm = make([][]float64, len(out.Names))
	out.EFU = make([][]float64, len(out.Names))
	for vi := range out.Names {
		for _, w := range heavy {
			norm, efu, err := s.runExtensionVariant(w, vi)
			if err != nil {
				return ExtensionResult{}, err
			}
			out.HPNorm[vi] = append(out.HPNorm[vi], norm)
			out.EFU[vi] = append(out.EFU[vi], efu)
		}
	}
	return out, nil
}

// runExtensionVariant runs one workload under variant index vi (0 plain,
// 1 MBA, 2 BE manager). It mirrors Suite.run but needs MBA-capable
// emulation, so it builds the platform itself.
func (s *Suite) runExtensionVariant(w Workload, vi int) (hpNorm, efu float64, err error) {
	hpProf, err := app.ByName(w.HP)
	if err != nil {
		return 0, 0, err
	}
	beProf, err := app.ByName(w.BE)
	if err != nil {
		return 0, 0, err
	}
	c, err := s.getCtx(2)
	if err != nil {
		return 0, 0, err
	}
	defer s.putCtx(c)
	r := c.r
	if err := r.Attach(0, policy.HPClos, hpProf); err != nil {
		return 0, 0, err
	}
	for i := 1; i <= w.BECount; i++ {
		if err := r.Attach(i, policy.BEClos, beProf); err != nil {
			return 0, 0, err
		}
	}
	// The pooled emulation is built without MBA; variants need it.
	emu := resctrl.NewEmu(r, true)

	var pol policy.Policy
	switch vi {
	case 0:
		pol, err = core.New(s.cfg.DICER)
	case 1:
		pol, err = ext.NewDicerMBA(s.cfg.DICER, ext.DefaultMBAConfig(s.cfg.DICER.BWThresholdGbps))
	case 2:
		var inner *core.Controller
		if inner, err = core.New(s.cfg.DICER); err == nil {
			pol, err = ext.NewBEManager(inner, ext.DefaultBEManagerConfig(s.cfg.DICER.BWThresholdGbps))
		}
	default:
		err = fmt.Errorf("experiments: unknown extension variant %d", vi)
	}
	if err != nil {
		return 0, 0, err
	}

	if err := pol.Setup(emu); err != nil {
		return 0, 0, err
	}
	meter := resctrl.NewMeter(emu)
	dt := s.cfg.PeriodSec / float64(s.cfg.StepsPerPeriod)
	for p := 0; p < s.cfg.HorizonPeriods; p++ {
		for st := 0; st < s.cfg.StepsPerPeriod; st++ {
			r.Step(dt)
		}
		if err := pol.Observe(emu, meter.Sample()); err != nil {
			return 0, 0, err
		}
	}
	hpAlone, err := s.AloneIPC(w.HP)
	if err != nil {
		return 0, 0, err
	}
	beAlone, err := s.AloneIPC(w.BE)
	if err != nil {
		return 0, 0, err
	}
	hpNorm = metrics.NormIPC(r.Proc(0).IPC(), hpAlone)
	norms := []float64{hpNorm}
	for i := 1; i <= w.BECount; i++ {
		norms = append(norms, metrics.NormIPC(r.Proc(i).IPC(), beAlone))
	}
	return hpNorm, metrics.EFU(norms), nil
}
