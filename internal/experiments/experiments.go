// Package experiments reproduces the DICER paper's evaluation: it builds
// multiprogrammed workloads from the 59-application catalog, runs them
// under the UM / CT / DICER policies on the simulated platform, and
// regenerates every table and figure of the paper (drivers in figures.go,
// workload classification and sampling in sample.go).
//
// All runs are deterministic. A Suite memoises run results so the figure
// drivers (and the benchmarks in the repository root) can share the
// expensive 59×59 sweeps within a process.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dicer/internal/app"
	"dicer/internal/core"
	"dicer/internal/machine"
	"dicer/internal/metrics"
	"dicer/internal/obs"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

// Config controls how scenarios are simulated.
type Config struct {
	Machine machine.Machine
	// PeriodSec is the monitoring period T (Table 1: 1 s).
	PeriodSec float64
	// StepsPerPeriod subdivides each period into simulator steps; the
	// operating point is re-solved at each step.
	StepsPerPeriod int
	// HorizonPeriods is the simulated duration of co-located runs, long
	// enough for applications to complete and restart (the paper restarts
	// every application until all have run at least once).
	HorizonPeriods int
	// SweepHorizonPeriods is the (shorter) horizon used for the full
	// 59×59 baseline sweep of Figure 1.
	SweepHorizonPeriods int
	// Workers bounds parallelism for every execution path the suite
	// owns (RunMany, figure sweeps, FleetSuite, Soak, and hypothesis
	// replication via internal/hypo); 0 means GOMAXPROCS. Results are
	// identical for any value — the executor writes into
	// index-addressed slots, so ordering is deterministic by
	// construction.
	Workers int
	// ReferenceSolver routes every simulation through the retained
	// pre-optimisation solver (sim.Runner.UseReferenceSolver). Solver
	// equivalence tests run the same suite both ways; production leaves
	// it false.
	ReferenceSolver bool
	// DICER returns the controller configuration (Table 1 defaults).
	DICER core.Config
	// Trace, when non-nil, is called once per uncached co-located run to
	// obtain that run's trace sink (nil return disables tracing for that
	// run). Runs served from the memo cache do not re-execute and so do
	// not re-emit traces. The callback must be safe for concurrent use
	// (RunMany executes runs in parallel); each returned sink is used by
	// exactly one runner.
	Trace func(w Workload, pol PolicyName) obs.Sink
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Machine:             machine.Default(),
		PeriodSec:           1.0,
		StepsPerPeriod:      4,
		HorizonPeriods:      120,
		SweepHorizonPeriods: 80,
		Workers:             0,
		DICER:               core.DefaultConfig(),
	}
}

// PolicyName identifies a co-location policy in run keys and reports.
type PolicyName string

// The three policies the paper evaluates.
const (
	UM    PolicyName = "UM"
	CT    PolicyName = "CT"
	DICER PolicyName = "DICER"
)

// newPolicy builds a fresh policy instance (DICER is stateful, so every
// run needs its own controller).
func (c Config) newPolicy(name PolicyName) (policy.Policy, error) {
	switch name {
	case UM:
		return policy.Unmanaged{}, nil
	case CT:
		return policy.CacheTakeover{}, nil
	case DICER:
		return core.New(c.DICER)
	}
	return nil, fmt.Errorf("experiments: unknown policy %q", name)
}

// Workload names one multiprogrammed workload: one HP application
// co-located with BECount instances of one BE application.
type Workload struct {
	HP      string
	BE      string
	BECount int
}

func (w Workload) String() string {
	return fmt.Sprintf("%s+%dx%s", w.HP, w.BECount, w.BE)
}

// Result is the outcome of one co-located run.
type Result struct {
	Workload Workload
	Policy   PolicyName

	HPIPC   float64 // cumulative HP IPC over the horizon
	BEIPC   float64 // mean cumulative IPC across BE instances
	HPAlone float64 // HP IPC running alone with the full LLC
	BEAlone float64 // BE IPC running alone with the full LLC
}

// HPNorm returns HP IPC normalised to its alone run.
func (r Result) HPNorm() float64 { return metrics.NormIPC(r.HPIPC, r.HPAlone) }

// BENorm returns mean BE IPC normalised to the BE alone run.
func (r Result) BENorm() float64 { return metrics.NormIPC(r.BEIPC, r.BEAlone) }

// HPSlowdown returns the HP's co-location slowdown.
func (r Result) HPSlowdown() float64 { return metrics.Slowdown(r.HPAlone, r.HPIPC) }

// EFU returns Eq. 1's effective utilisation for the run.
func (r Result) EFU() float64 {
	norm := make([]float64, 0, 1+r.Workload.BECount)
	norm = append(norm, r.HPNorm())
	for i := 0; i < r.Workload.BECount; i++ {
		norm = append(norm, r.BENorm())
	}
	return metrics.EFU(norm)
}

// SLOAchieved reports whether the HP met the given SLO fraction.
func (r Result) SLOAchieved(slo float64) bool {
	return metrics.SLOAchieved(r.HPIPC, r.HPAlone, slo)
}

// SUCI returns Eq. 4 for the run.
func (r Result) SUCI(slo, lambda float64) float64 {
	return metrics.SUCI(r.SLOAchieved(slo), r.EFU(), lambda)
}

// memoShards spreads the Suite memo maps over independently locked
// shards so RunMany workers don't serialise on one mutex. 16 comfortably
// exceeds any realistic worker count while keeping the footprint trivial.
const memoShards = 16

// aloneEntry is a singleflight cell: the first caller computes under the
// mutex and publishes through done; every concurrent duplicate blocks on
// the mutex and shares the result, and every later caller takes the
// lock-free fast path. A sync.Once would do the same, but once.Do(f)
// heap-allocates the closure f on every call — including warm hits —
// and the memo lookup is pinned at zero allocations.
type aloneEntry struct {
	done atomic.Bool
	mu   sync.Mutex
	ipc  float64
	err  error
}

// runEntry is the singleflight cell for co-located runs.
type runEntry struct {
	done atomic.Bool
	mu   sync.Mutex
	res  Result
	err  error
}

type memoShard[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*V
}

// entry returns the cell for key, creating it if absent. Only the map
// access is under the shard lock; the compute runs under the cell's own
// lock, so distinct keys never contend. Warm lookups allocate nothing:
// the key is a value type and the cell is boxed once, on first miss.
func (s *memoShard[K, V]) entry(key K) *V {
	s.mu.Lock()
	v, ok := s.m[key]
	if !ok {
		if s.m == nil {
			s.m = map[K]*V{}
		}
		v = new(V)
		s.m[key] = v
	}
	s.mu.Unlock()
	return v
}

// Suite memoises alone runs and co-located runs for one configuration.
// It is safe for concurrent use: the memo maps are sharded by key hash,
// each entry is computed exactly once (singleflight), and simulation
// state is pooled and reset between runs.
type Suite struct {
	cfg Config

	aloneSh [memoShards]memoShard[aloneKey, aloneEntry]
	runSh   [memoShards]memoShard[runKey, runEntry]

	ctxs sync.Pool // *runCtx, reset before reuse

	classMu sync.Mutex
	class   map[int]*Classification // BECount -> classification
}

type aloneKey struct {
	name string
	ways int
}

type runKey struct {
	w       Workload
	policy  PolicyName
	horizon int
}

// fnv1a accumulates FNV-1a over a string, for shard selection.
func fnv1a(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

const fnvOffset = 14695981039346656037

func (k aloneKey) shard() int {
	h := fnv1a(fnvOffset, k.name)
	h ^= uint64(k.ways)
	h *= 1099511628211
	return int(h % memoShards)
}

func (k runKey) shard() int {
	h := fnv1a(fnvOffset, k.w.HP)
	h = fnv1a(h, k.w.BE)
	h = fnv1a(h, string(k.policy))
	h ^= uint64(k.w.BECount)<<32 | uint64(uint32(k.horizon))
	h *= 1099511628211
	return int(h % memoShards)
}

// NewSuite creates a Suite for cfg.
func NewSuite(cfg Config) (*Suite, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if cfg.PeriodSec <= 0 || cfg.StepsPerPeriod <= 0 || cfg.HorizonPeriods <= 0 ||
		cfg.SweepHorizonPeriods <= 0 {
		return nil, fmt.Errorf("experiments: non-positive timing configuration %+v", cfg)
	}
	if err := cfg.DICER.Validate(); err != nil {
		return nil, err
	}
	return &Suite{
		cfg:   cfg,
		class: map[int]*Classification{},
	}, nil
}

// runCtx is the pooled per-run simulation state: a Runner, the resctrl
// emulation wrapping it, and a Meter over the emulation. Pooling the
// three together (rather than the Runner alone) carries every grown
// scratch buffer — snapshot slices, counter readings, period backing —
// from run to run, so steady-state runs allocate nothing for sampling.
// A worker holds at most one runCtx at a time; the pool's steady-state
// population equals the executor's worker count.
type runCtx struct {
	r     *sim.Runner
	emu   *resctrl.Emu
	meter *resctrl.Meter
}

// getCtx returns a pooled runCtx whose Runner is reset to closCount CLOS
// (or a fresh one when the pool is empty). The Meter's baseline is stale
// at return; callers that sample rebaseline after attaching processes.
// Return the ctx with putCtx when the run's counters have been read.
func (s *Suite) getCtx(closCount int) (*runCtx, error) {
	if v := s.ctxs.Get(); v != nil {
		c := v.(*runCtx)
		if err := c.r.Reset(closCount); err != nil {
			return nil, err
		}
		c.r.UseReferenceSolver(s.cfg.ReferenceSolver)
		return c, nil
	}
	r, err := sim.New(s.cfg.Machine, closCount)
	if err != nil {
		return nil, err
	}
	r.UseReferenceSolver(s.cfg.ReferenceSolver)
	emu := resctrl.NewEmu(r, false)
	return &runCtx{r: r, emu: emu, meter: resctrl.NewMeter(emu)}, nil
}

func (s *Suite) putCtx(c *runCtx) {
	if c != nil {
		s.ctxs.Put(c)
	}
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// workers returns the effective worker count.
func (s *Suite) workers() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// AloneIPC returns (memoised) the IPC of the application running alone on
// the machine with the full LLC.
func (s *Suite) AloneIPC(name string) (float64, error) {
	return s.AloneIPCWays(name, s.cfg.Machine.LLCWays)
}

// AloneIPCWays returns the IPC of the application running alone but
// restricted to the given number of (exclusive) LLC ways — the measurement
// behind the paper's Figure 2.
func (s *Suite) AloneIPCWays(name string, ways int) (float64, error) {
	key := aloneKey{name, ways}
	e := s.aloneSh[key.shard()].entry(key)
	if !e.done.Load() {
		e.mu.Lock()
		if !e.done.Load() {
			e.ipc, e.err = s.aloneUncached(name, ways)
			e.done.Store(true)
		}
		e.mu.Unlock()
	}
	return e.ipc, e.err
}

func (s *Suite) aloneUncached(name string, ways int) (float64, error) {
	prof, err := app.ByName(name)
	if err != nil {
		return 0, err
	}
	m := s.cfg.Machine
	c, err := s.getCtx(1)
	if err != nil {
		return 0, err
	}
	defer s.putCtx(c)
	r := c.r
	if err := r.Attach(0, 0, prof); err != nil {
		return 0, err
	}
	if ways < m.LLCWays {
		// Confine the app to the low `ways` ways; the rest of the LLC is
		// unreachable (no other CLOS exists).
		if err := r.SetMask(0, policy.BEMask(m.LLCWays, m.LLCWays-ways)); err != nil {
			return 0, err
		}
	}
	dt := s.cfg.PeriodSec / float64(s.cfg.StepsPerPeriod)
	steps := s.cfg.HorizonPeriods * s.cfg.StepsPerPeriod
	for i := 0; i < steps; i++ {
		r.Step(dt)
	}
	return r.Proc(0).IPC(), nil
}

// Run executes (memoised) one co-located workload under one policy for the
// given horizon in periods.
func (s *Suite) Run(w Workload, pol PolicyName, horizon int) (Result, error) {
	key := runKey{w, pol, horizon}
	e := s.runSh[key.shard()].entry(key)
	if !e.done.Load() {
		e.mu.Lock()
		if !e.done.Load() {
			e.res, e.err = s.runUncached(w, pol, horizon)
			e.done.Store(true)
		}
		e.mu.Unlock()
	}
	return e.res, e.err
}

// StaticRun executes one workload under an arbitrary static partition with
// hpWays exclusive ways for the HP (the Figure 3 sweep). Not memoised.
func (s *Suite) StaticRun(w Workload, hpWays, horizon int) (Result, error) {
	return s.run(w, policy.Static{HPWays: hpWays}, PolicyName(policy.Static{HPWays: hpWays}.Name()), horizon)
}

func (s *Suite) runUncached(w Workload, pol PolicyName, horizon int) (Result, error) {
	p, err := s.cfg.newPolicy(pol)
	if err != nil {
		return Result{}, err
	}
	return s.run(w, p, pol, horizon)
}

// run simulates one co-located scenario: HP on core 0 / CLOS 0, BE
// instances on cores 1..BECount / CLOS 1, the policy observing once per
// monitoring period.
func (s *Suite) run(w Workload, p policy.Policy, polName PolicyName, horizon int) (Result, error) {
	m := s.cfg.Machine
	if w.BECount < 1 || w.BECount > m.Cores-1 {
		return Result{}, fmt.Errorf("experiments: BE count %d outside [1,%d]", w.BECount, m.Cores-1)
	}
	hpProf, err := app.ByName(w.HP)
	if err != nil {
		return Result{}, err
	}
	beProf, err := app.ByName(w.BE)
	if err != nil {
		return Result{}, err
	}

	c, err := s.getCtx(2)
	if err != nil {
		return Result{}, err
	}
	defer s.putCtx(c)
	r := c.r
	if err := r.Attach(0, policy.HPClos, hpProf); err != nil {
		return Result{}, err
	}
	for i := 1; i <= w.BECount; i++ {
		if err := r.Attach(i, policy.BEClos, beProf); err != nil {
			return Result{}, err
		}
	}

	emu := c.emu
	var rec *obs.Recorder
	if s.cfg.Trace != nil {
		if sink := s.cfg.Trace(w, polName); sink != nil {
			rec = obs.NewRecorder(sink)
			ctl := core.ControllerOf(p)
			rec.AttachController(ctl)
			h := obs.Header{
				Schema:         obs.Schema,
				Policy:         p.Name(),
				HP:             w.HP,
				BEs:            []string{w.BE},
				NumWays:        m.LLCWays,
				PeriodSec:      s.cfg.PeriodSec,
				HorizonPeriods: horizon,
			}
			if ctl != nil {
				cfg := ctl.Config()
				h.Controller = &cfg
			}
			if err := rec.Start(h); err != nil {
				return Result{}, err
			}
		}
	}
	if err := p.Setup(emu); err != nil {
		return Result{}, err
	}
	// Rebaseline at exactly the point a fresh NewMeter would read its
	// baseline: after attach and policy setup, before the first step.
	meter := c.meter
	meter.Rebaseline()
	dt := s.cfg.PeriodSec / float64(s.cfg.StepsPerPeriod)
	for period := 0; period < horizon; period++ {
		for step := 0; step < s.cfg.StepsPerPeriod; step++ {
			r.Step(dt)
		}
		pp := meter.Sample()
		obsErr := p.Observe(emu, pp)
		if rec != nil {
			rec.EndPeriod(period, pp, emu, obsErr)
		}
		if obsErr != nil {
			return Result{}, obsErr
		}
	}

	res := Result{Workload: w, Policy: polName}
	res.HPIPC = r.Proc(0).IPC()
	var beSum float64
	for i := 1; i <= w.BECount; i++ {
		beSum += r.Proc(i).IPC()
	}
	res.BEIPC = beSum / float64(w.BECount)

	if res.HPAlone, err = s.AloneIPC(w.HP); err != nil {
		return Result{}, err
	}
	if res.BEAlone, err = s.AloneIPC(w.BE); err != nil {
		return Result{}, err
	}
	return res, nil
}

// RunMany executes all (workload, policy) jobs in parallel, memoising
// through the suite cache, and returns results in job order.
type Job struct {
	W       Workload
	Policy  PolicyName
	Horizon int
}

// RunMany runs jobs across the sharded executor: job i's result lands in
// slot i of a preallocated arena, so output order matches job order for
// any worker count.
func (s *Suite) RunMany(jobs []Job) ([]Result, error) {
	results := make([]Result, len(jobs))
	err := s.execute(len(jobs), func(i int) error {
		var err error
		results[i], err = s.Run(jobs[i].W, jobs[i].Policy, jobs[i].Horizon)
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
