// Package experiments reproduces the DICER paper's evaluation: it builds
// multiprogrammed workloads from the 59-application catalog, runs them
// under the UM / CT / DICER policies on the simulated platform, and
// regenerates every table and figure of the paper (drivers in figures.go,
// workload classification and sampling in sample.go).
//
// All runs are deterministic. A Suite memoises run results so the figure
// drivers (and the benchmarks in the repository root) can share the
// expensive 59×59 sweeps within a process.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"dicer/internal/app"
	"dicer/internal/core"
	"dicer/internal/machine"
	"dicer/internal/metrics"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

// Config controls how scenarios are simulated.
type Config struct {
	Machine machine.Machine
	// PeriodSec is the monitoring period T (Table 1: 1 s).
	PeriodSec float64
	// StepsPerPeriod subdivides each period into simulator steps; the
	// operating point is re-solved at each step.
	StepsPerPeriod int
	// HorizonPeriods is the simulated duration of co-located runs, long
	// enough for applications to complete and restart (the paper restarts
	// every application until all have run at least once).
	HorizonPeriods int
	// SweepHorizonPeriods is the (shorter) horizon used for the full
	// 59×59 baseline sweep of Figure 1.
	SweepHorizonPeriods int
	// Workers bounds run parallelism; 0 means GOMAXPROCS.
	Workers int
	// DICER returns the controller configuration (Table 1 defaults).
	DICER core.Config
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Machine:             machine.Default(),
		PeriodSec:           1.0,
		StepsPerPeriod:      4,
		HorizonPeriods:      120,
		SweepHorizonPeriods: 80,
		Workers:             0,
		DICER:               core.DefaultConfig(),
	}
}

// PolicyName identifies a co-location policy in run keys and reports.
type PolicyName string

// The three policies the paper evaluates.
const (
	UM    PolicyName = "UM"
	CT    PolicyName = "CT"
	DICER PolicyName = "DICER"
)

// newPolicy builds a fresh policy instance (DICER is stateful, so every
// run needs its own controller).
func (c Config) newPolicy(name PolicyName) (policy.Policy, error) {
	switch name {
	case UM:
		return policy.Unmanaged{}, nil
	case CT:
		return policy.CacheTakeover{}, nil
	case DICER:
		return core.New(c.DICER)
	}
	return nil, fmt.Errorf("experiments: unknown policy %q", name)
}

// Workload names one multiprogrammed workload: one HP application
// co-located with BECount instances of one BE application.
type Workload struct {
	HP      string
	BE      string
	BECount int
}

func (w Workload) String() string {
	return fmt.Sprintf("%s+%dx%s", w.HP, w.BECount, w.BE)
}

// Result is the outcome of one co-located run.
type Result struct {
	Workload Workload
	Policy   PolicyName

	HPIPC   float64 // cumulative HP IPC over the horizon
	BEIPC   float64 // mean cumulative IPC across BE instances
	HPAlone float64 // HP IPC running alone with the full LLC
	BEAlone float64 // BE IPC running alone with the full LLC
}

// HPNorm returns HP IPC normalised to its alone run.
func (r Result) HPNorm() float64 { return metrics.NormIPC(r.HPIPC, r.HPAlone) }

// BENorm returns mean BE IPC normalised to the BE alone run.
func (r Result) BENorm() float64 { return metrics.NormIPC(r.BEIPC, r.BEAlone) }

// HPSlowdown returns the HP's co-location slowdown.
func (r Result) HPSlowdown() float64 { return metrics.Slowdown(r.HPAlone, r.HPIPC) }

// EFU returns Eq. 1's effective utilisation for the run.
func (r Result) EFU() float64 {
	norm := make([]float64, 0, 1+r.Workload.BECount)
	norm = append(norm, r.HPNorm())
	for i := 0; i < r.Workload.BECount; i++ {
		norm = append(norm, r.BENorm())
	}
	return metrics.EFU(norm)
}

// SLOAchieved reports whether the HP met the given SLO fraction.
func (r Result) SLOAchieved(slo float64) bool {
	return metrics.SLOAchieved(r.HPIPC, r.HPAlone, slo)
}

// SUCI returns Eq. 4 for the run.
func (r Result) SUCI(slo, lambda float64) float64 {
	return metrics.SUCI(r.SLOAchieved(slo), r.EFU(), lambda)
}

// Suite memoises alone runs and co-located runs for one configuration.
// It is safe for concurrent use.
type Suite struct {
	cfg Config

	mu      sync.Mutex
	alone   map[string]float64   // app -> alone IPC (full LLC)
	aloneW  map[aloneKey]float64 // (app, ways) -> alone IPC
	runs    map[runKey]Result    // memoised co-located runs
	classMu sync.Mutex
	class   map[int]*Classification // BECount -> classification
}

type aloneKey struct {
	name string
	ways int
}

type runKey struct {
	w       Workload
	policy  PolicyName
	horizon int
}

// NewSuite creates a Suite for cfg.
func NewSuite(cfg Config) (*Suite, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if cfg.PeriodSec <= 0 || cfg.StepsPerPeriod <= 0 || cfg.HorizonPeriods <= 0 ||
		cfg.SweepHorizonPeriods <= 0 {
		return nil, fmt.Errorf("experiments: non-positive timing configuration %+v", cfg)
	}
	if err := cfg.DICER.Validate(); err != nil {
		return nil, err
	}
	return &Suite{
		cfg:    cfg,
		alone:  map[string]float64{},
		aloneW: map[aloneKey]float64{},
		runs:   map[runKey]Result{},
		class:  map[int]*Classification{},
	}, nil
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// workers returns the effective worker count.
func (s *Suite) workers() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// AloneIPC returns (memoised) the IPC of the application running alone on
// the machine with the full LLC.
func (s *Suite) AloneIPC(name string) (float64, error) {
	return s.AloneIPCWays(name, s.cfg.Machine.LLCWays)
}

// AloneIPCWays returns the IPC of the application running alone but
// restricted to the given number of (exclusive) LLC ways — the measurement
// behind the paper's Figure 2.
func (s *Suite) AloneIPCWays(name string, ways int) (float64, error) {
	key := aloneKey{name, ways}
	s.mu.Lock()
	if v, ok := s.aloneW[key]; ok {
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()

	prof, err := app.ByName(name)
	if err != nil {
		return 0, err
	}
	m := s.cfg.Machine
	r, err := sim.New(m, 1)
	if err != nil {
		return 0, err
	}
	if err := r.Attach(0, 0, prof); err != nil {
		return 0, err
	}
	if ways < m.LLCWays {
		// Confine the app to the low `ways` ways; the rest of the LLC is
		// unreachable (no other CLOS exists).
		if err := r.SetMask(0, policy.BEMask(m.LLCWays, m.LLCWays-ways)); err != nil {
			return 0, err
		}
	}
	dt := s.cfg.PeriodSec / float64(s.cfg.StepsPerPeriod)
	steps := s.cfg.HorizonPeriods * s.cfg.StepsPerPeriod
	for i := 0; i < steps; i++ {
		r.Step(dt)
	}
	ipc := r.Proc(0).IPC()

	s.mu.Lock()
	s.aloneW[key] = ipc
	if ways == m.LLCWays {
		s.alone[name] = ipc
	}
	s.mu.Unlock()
	return ipc, nil
}

// Run executes (memoised) one co-located workload under one policy for the
// given horizon in periods.
func (s *Suite) Run(w Workload, pol PolicyName, horizon int) (Result, error) {
	key := runKey{w, pol, horizon}
	s.mu.Lock()
	if r, ok := s.runs[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	res, err := s.runUncached(w, pol, horizon)
	if err != nil {
		return Result{}, err
	}
	s.mu.Lock()
	s.runs[key] = res
	s.mu.Unlock()
	return res, nil
}

// StaticRun executes one workload under an arbitrary static partition with
// hpWays exclusive ways for the HP (the Figure 3 sweep). Not memoised.
func (s *Suite) StaticRun(w Workload, hpWays, horizon int) (Result, error) {
	return s.run(w, policy.Static{HPWays: hpWays}, PolicyName(policy.Static{HPWays: hpWays}.Name()), horizon)
}

func (s *Suite) runUncached(w Workload, pol PolicyName, horizon int) (Result, error) {
	p, err := s.cfg.newPolicy(pol)
	if err != nil {
		return Result{}, err
	}
	return s.run(w, p, pol, horizon)
}

// run simulates one co-located scenario: HP on core 0 / CLOS 0, BE
// instances on cores 1..BECount / CLOS 1, the policy observing once per
// monitoring period.
func (s *Suite) run(w Workload, p policy.Policy, polName PolicyName, horizon int) (Result, error) {
	m := s.cfg.Machine
	if w.BECount < 1 || w.BECount > m.Cores-1 {
		return Result{}, fmt.Errorf("experiments: BE count %d outside [1,%d]", w.BECount, m.Cores-1)
	}
	hpProf, err := app.ByName(w.HP)
	if err != nil {
		return Result{}, err
	}
	beProf, err := app.ByName(w.BE)
	if err != nil {
		return Result{}, err
	}

	r, err := sim.New(m, 2)
	if err != nil {
		return Result{}, err
	}
	if err := r.Attach(0, policy.HPClos, hpProf); err != nil {
		return Result{}, err
	}
	for i := 1; i <= w.BECount; i++ {
		if err := r.Attach(i, policy.BEClos, beProf); err != nil {
			return Result{}, err
		}
	}

	emu := resctrl.NewEmu(r, false)
	if err := p.Setup(emu); err != nil {
		return Result{}, err
	}
	meter := resctrl.NewMeter(emu)
	dt := s.cfg.PeriodSec / float64(s.cfg.StepsPerPeriod)
	for period := 0; period < horizon; period++ {
		for step := 0; step < s.cfg.StepsPerPeriod; step++ {
			r.Step(dt)
		}
		if err := p.Observe(emu, meter.Sample()); err != nil {
			return Result{}, err
		}
	}

	res := Result{Workload: w, Policy: polName}
	res.HPIPC = r.Proc(0).IPC()
	var beSum float64
	for i := 1; i <= w.BECount; i++ {
		beSum += r.Proc(i).IPC()
	}
	res.BEIPC = beSum / float64(w.BECount)

	if res.HPAlone, err = s.AloneIPC(w.HP); err != nil {
		return Result{}, err
	}
	if res.BEAlone, err = s.AloneIPC(w.BE); err != nil {
		return Result{}, err
	}
	return res, nil
}

// RunMany executes all (workload, policy) jobs in parallel, memoising
// through the suite cache, and returns results in job order.
type Job struct {
	W       Workload
	Policy  PolicyName
	Horizon int
}

// RunMany runs jobs across the suite worker pool.
func (s *Suite) RunMany(jobs []Job) ([]Result, error) {
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.workers())
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = s.Run(j.W, j.Policy, j.Horizon)
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
