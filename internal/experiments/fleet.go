package experiments

import (
	"fmt"

	"dicer/internal/chaos"
	"dicer/internal/fleet"
	"dicer/internal/report"
)

// FleetConfig parameterises the fleet comparison: one seeded arrival
// trace replayed across every (scheduler, node policy) cell, so the
// cells differ only in how the cluster places jobs and how each node
// partitions its LLC.
type FleetConfig struct {
	// Nodes is the cluster size. Default 4.
	Nodes int
	// HorizonPeriods is the simulated duration. Default the suite's
	// SweepHorizonPeriods.
	HorizonPeriods int
	// Arrivals drives the shared BE arrival trace. Zero Seed is valid
	// (it is a fixed stream like any other).
	Arrivals fleet.ArrivalConfig
	// Schedulers to compare. Default all of fleet.SchedulerNames().
	Schedulers []string
	// Policies are the node-local policies to compare. Default UM, CT,
	// DICER.
	Policies []PolicyName
	// SLO is each HP's target fraction of alone performance. Default 0.9.
	SLO float64
	// QueueCap bounds the admission queue. Default 32.
	QueueCap int
	// NodeChaos optionally schedules node freeze/loss events (the same
	// schedule in every cell).
	NodeChaos chaos.NodeSchedule
}

// fleetDefaults fills unset fields from the suite configuration.
func (s *Suite) fleetDefaults(fc FleetConfig) FleetConfig {
	if fc.Nodes == 0 {
		fc.Nodes = 4
	}
	if fc.HorizonPeriods == 0 {
		fc.HorizonPeriods = s.cfg.SweepHorizonPeriods
	}
	if len(fc.Schedulers) == 0 {
		fc.Schedulers = fleet.SchedulerNames()
	}
	if len(fc.Policies) == 0 {
		fc.Policies = []PolicyName{UM, CT, DICER}
	}
	if fc.SLO == 0 {
		fc.SLO = 0.9
	}
	if fc.QueueCap == 0 {
		fc.QueueCap = 32
	}
	return fc
}

// FleetCell is one (scheduler, policy) outcome of the comparison.
type FleetCell struct {
	Scheduler string
	Policy    PolicyName
	Result    fleet.Result
}

// FleetSuite runs the fleet comparison: every scheduler crossed with
// every node policy over the same arrival trace and chaos schedule.
// Cells run in parallel across the suite worker pool; alone-run
// references go through the suite memo so every cell normalises against
// the same table. Results are returned in (scheduler, policy)
// configuration order.
func (s *Suite) FleetSuite(fc FleetConfig) ([]FleetCell, error) {
	fc = s.fleetDefaults(fc)
	cells := make([]FleetCell, 0, len(fc.Schedulers)*len(fc.Policies))
	for _, sched := range fc.Schedulers {
		for _, pol := range fc.Policies {
			cells = append(cells, FleetCell{Scheduler: sched, Policy: pol})
		}
	}

	if err := s.execute(len(cells), func(i int) error {
		cell := &cells[i]
		c, err := fleet.New(fleet.Config{
			Nodes:          fc.Nodes,
			Machine:        s.cfg.Machine,
			Policy:         string(cell.Policy),
			DICER:          s.cfg.DICER,
			SLO:            fc.SLO,
			PeriodSec:      s.cfg.PeriodSec,
			StepsPerPeriod: s.cfg.StepsPerPeriod,
			HorizonPeriods: fc.HorizonPeriods,
			Arrivals:       fc.Arrivals,
			Scheduler:      cell.Scheduler,
			QueueCap:       fc.QueueCap,
			NodeChaos:      fc.NodeChaos,
			AloneIPC:       s.AloneIPC,
		})
		if err != nil {
			return err
		}
		cell.Result, err = c.Run()
		return err
	}); err != nil {
		return nil, err
	}
	return cells, nil
}

// FleetTable renders the comparison as the fleet analogue of the paper's
// policy tables: one row per (scheduler, policy) cell.
func FleetTable(cells []FleetCell) *report.Table {
	t := report.NewTable("Fleet consolidation: scheduler x node policy",
		"Scheduler", "Policy", "FleetEFU", "SLO viol periods", "Reject rate",
		"p95 wait", "Done", "Dropped")
	for _, c := range cells {
		r := c.Result
		t.AddRow(c.Scheduler, string(c.Policy), report.F3(r.FleetEFU),
			fmt.Sprintf("%d", r.SLOViolationPeriods), report.Pct(100*r.RejectRate),
			fmt.Sprintf("%.1f", r.P95QueueWait), fmt.Sprintf("%d", r.Done),
			fmt.Sprintf("%d", r.Dropped))
	}
	return t
}
