package experiments

import (
	"fmt"

	"dicer/internal/chaos"
	"dicer/internal/fleet"
	"dicer/internal/report"
)

// FleetConfig parameterises the fleet comparison: one seeded arrival
// trace replayed across every (scheduler, node policy) cell, so the
// cells differ only in how the cluster places jobs and how each node
// partitions its LLC.
type FleetConfig struct {
	// Nodes is the cluster size. Default 4.
	Nodes int
	// HorizonPeriods is the simulated duration. Default the suite's
	// SweepHorizonPeriods.
	HorizonPeriods int
	// Arrivals drives the shared BE arrival trace. Zero Seed is valid
	// (it is a fixed stream like any other).
	Arrivals fleet.ArrivalConfig
	// Schedulers to compare. Default all of fleet.SchedulerNames().
	Schedulers []string
	// Policies are the node-local policies to compare. Default UM, CT,
	// DICER.
	Policies []PolicyName
	// SLO is each HP's target fraction of alone performance. Default 0.9.
	SLO float64
	// QueueCap bounds the admission queue. Default 32.
	QueueCap int
	// NodeChaos optionally schedules node freeze/loss events (the same
	// schedule in every cell).
	NodeChaos chaos.NodeSchedule
	// Migration and Autoscale pass the fleet control loops through to
	// every cell. Zero values keep the classic static fleet.
	Migration fleet.MigrationConfig
	Autoscale fleet.AutoscaleConfig
}

// fleetDefaults fills unset fields from the suite configuration.
func (s *Suite) fleetDefaults(fc FleetConfig) FleetConfig {
	if fc.Nodes == 0 {
		fc.Nodes = 4
	}
	if fc.HorizonPeriods == 0 {
		fc.HorizonPeriods = s.cfg.SweepHorizonPeriods
	}
	if len(fc.Schedulers) == 0 {
		fc.Schedulers = fleet.SchedulerNames()
	}
	if len(fc.Policies) == 0 {
		fc.Policies = []PolicyName{UM, CT, DICER}
	}
	if fc.SLO == 0 {
		fc.SLO = 0.9
	}
	if fc.QueueCap == 0 {
		fc.QueueCap = 32
	}
	return fc
}

// FleetCell is one (scheduler, policy) outcome of the comparison.
type FleetCell struct {
	Scheduler string
	Policy    PolicyName
	Result    fleet.Result
}

// FleetSuite runs the fleet comparison: every scheduler crossed with
// every node policy over the same arrival trace and chaos schedule.
// Cells run in parallel across the suite worker pool; alone-run
// references go through the suite memo so every cell normalises against
// the same table. Results are returned in (scheduler, policy)
// configuration order.
func (s *Suite) FleetSuite(fc FleetConfig) ([]FleetCell, error) {
	fc = s.fleetDefaults(fc)
	cells := make([]FleetCell, 0, len(fc.Schedulers)*len(fc.Policies))
	for _, sched := range fc.Schedulers {
		for _, pol := range fc.Policies {
			cells = append(cells, FleetCell{Scheduler: sched, Policy: pol})
		}
	}

	if err := s.execute(len(cells), func(i int) error {
		cell := &cells[i]
		c, err := fleet.New(fleet.Config{
			Nodes:          fc.Nodes,
			Machine:        s.cfg.Machine,
			Policy:         string(cell.Policy),
			DICER:          s.cfg.DICER,
			SLO:            fc.SLO,
			PeriodSec:      s.cfg.PeriodSec,
			StepsPerPeriod: s.cfg.StepsPerPeriod,
			HorizonPeriods: fc.HorizonPeriods,
			Arrivals:       fc.Arrivals,
			Scheduler:      cell.Scheduler,
			QueueCap:       fc.QueueCap,
			NodeChaos:      fc.NodeChaos,
			Migration:      fc.Migration,
			Autoscale:      fc.Autoscale,
			AloneIPC:       s.AloneIPC,
		})
		if err != nil {
			return err
		}
		cell.Result, err = c.Run()
		return err
	}); err != nil {
		return nil, err
	}
	return cells, nil
}

// FleetControlConfig parameterises the migration-vs-static control
// grid: one scheduler and node policy held fixed while the fleet
// control loops (SLO-burn BE migration, repartition-first autoscaling)
// are toggled across node chaos schedules. Every cell replays the same
// arrival trace; within a chaos column the cells also share the chaos
// schedule, so rows differ only in which control loops run.
type FleetControlConfig struct {
	// Nodes is the cluster size. Default 4.
	Nodes int
	// HorizonPeriods is the simulated duration. Default the suite's
	// SweepHorizonPeriods.
	HorizonPeriods int
	// Arrivals drives the shared BE arrival trace.
	Arrivals fleet.ArrivalConfig
	// Scheduler and Policy are held fixed across the grid. Defaults:
	// "headroom", DICER.
	Scheduler string
	Policy    PolicyName
	// SLO is each HP's target fraction of alone performance. Default 0.9.
	SLO float64
	// QueueCap bounds the admission queue. Default 32.
	QueueCap int
	// Modes are the control-loop rows. Default static, migrate,
	// autoscale, both.
	Modes []string
	// ChaosNames are the canned node chaos schedules (columns), by
	// chaos.NodeScheduleByName. Default none, node-freeze, node-storm.
	ChaosNames []string
	// ChaosSeed seeds the chaos schedules.
	ChaosSeed int64
	// Migration and Autoscale override the control-loop parameters used
	// when a mode enables them (Enabled is forced per mode).
	Migration fleet.MigrationConfig
	Autoscale fleet.AutoscaleConfig
}

// Control-grid mode names.
const (
	ControlStatic    = "static"
	ControlMigrate   = "migrate"
	ControlAutoscale = "autoscale"
	ControlBoth      = "both"
)

// FleetControlCell is one (mode, chaos) outcome of the control grid.
type FleetControlCell struct {
	Mode   string
	Chaos  string
	Result fleet.Result
}

// FleetControlGrid runs the migration-vs-static comparison: each
// control mode crossed with each node chaos schedule, one fleet per
// cell, all replaying the same arrival trace. Cells run in parallel
// across the suite worker pool. Results are returned in (mode, chaos)
// configuration order.
func (s *Suite) FleetControlGrid(fc FleetControlConfig) ([]FleetControlCell, error) {
	if fc.Nodes == 0 {
		fc.Nodes = 4
	}
	if fc.HorizonPeriods == 0 {
		fc.HorizonPeriods = s.cfg.SweepHorizonPeriods
	}
	if fc.Scheduler == "" {
		fc.Scheduler = "headroom"
	}
	if fc.Policy == "" {
		fc.Policy = DICER
	}
	if fc.SLO == 0 {
		fc.SLO = 0.9
	}
	if fc.QueueCap == 0 {
		fc.QueueCap = 32
	}
	if len(fc.Modes) == 0 {
		fc.Modes = []string{ControlStatic, ControlMigrate, ControlAutoscale, ControlBoth}
	}
	if len(fc.ChaosNames) == 0 {
		fc.ChaosNames = []string{"none", "node-freeze", "node-storm"}
	}

	// Chaos schedules are generated once per column and shared down it;
	// the generator sizes the schedule for the static fleet (autoscaled
	// nodes beyond the initial count simply see no chaos events, which
	// matches a disruption pattern fixed before the fleet grew).
	schedules := make([]chaos.NodeSchedule, len(fc.ChaosNames))
	for i, name := range fc.ChaosNames {
		sched, err := chaos.NodeScheduleByName(name, fc.ChaosSeed, fc.Nodes, fc.HorizonPeriods)
		if err != nil {
			return nil, err
		}
		schedules[i] = sched
	}

	cells := make([]FleetControlCell, 0, len(fc.Modes)*len(fc.ChaosNames))
	for _, mode := range fc.Modes {
		switch mode {
		case ControlStatic, ControlMigrate, ControlAutoscale, ControlBoth:
		default:
			return nil, fmt.Errorf("experiments: unknown control mode %q (have %s, %s, %s, %s)",
				mode, ControlStatic, ControlMigrate, ControlAutoscale, ControlBoth)
		}
		for _, name := range fc.ChaosNames {
			cells = append(cells, FleetControlCell{Mode: mode, Chaos: name})
		}
	}

	if err := s.execute(len(cells), func(i int) error {
		cell := &cells[i]
		mig, asc := fc.Migration, fc.Autoscale
		mig.Enabled = cell.Mode == ControlMigrate || cell.Mode == ControlBoth
		asc.Enabled = cell.Mode == ControlAutoscale || cell.Mode == ControlBoth
		c, err := fleet.New(fleet.Config{
			Nodes:          fc.Nodes,
			Machine:        s.cfg.Machine,
			Policy:         string(fc.Policy),
			DICER:          s.cfg.DICER,
			SLO:            fc.SLO,
			PeriodSec:      s.cfg.PeriodSec,
			StepsPerPeriod: s.cfg.StepsPerPeriod,
			HorizonPeriods: fc.HorizonPeriods,
			Arrivals:       fc.Arrivals,
			Scheduler:      fc.Scheduler,
			QueueCap:       fc.QueueCap,
			NodeChaos:      schedules[i%len(fc.ChaosNames)],
			Migration:      mig,
			Autoscale:      asc,
			AloneIPC:       s.AloneIPC,
		})
		if err != nil {
			return err
		}
		cell.Result, err = c.Run()
		return err
	}); err != nil {
		return nil, err
	}
	return cells, nil
}

// FleetControlTable renders the control grid: one row per (mode, chaos)
// cell with the control-loop action counts alongside the SLO and
// throughput outcomes.
func FleetControlTable(cells []FleetControlCell) *report.Table {
	t := report.NewTable("Fleet control: migration/autoscale x node chaos",
		"Mode", "Chaos", "FleetEFU", "SLO viol periods", "Evicted",
		"Repacks", "Scale +/-", "Nodes end", "Done", "Dropped")
	for _, c := range cells {
		r := c.Result
		nodesEnd := "-"
		if r.NodesEnd > 0 {
			nodesEnd = fmt.Sprintf("%d", r.NodesEnd)
		}
		t.AddRow(c.Mode, c.Chaos, report.F3(r.FleetEFU),
			fmt.Sprintf("%d", r.SLOViolationPeriods),
			fmt.Sprintf("%d", r.Evicted), fmt.Sprintf("%d", r.Repacks),
			fmt.Sprintf("%d/%d", r.ScaleUps, r.ScaleDowns), nodesEnd,
			fmt.Sprintf("%d", r.Done), fmt.Sprintf("%d", r.Dropped))
	}
	return t
}

// FleetTable renders the comparison as the fleet analogue of the paper's
// policy tables: one row per (scheduler, policy) cell.
func FleetTable(cells []FleetCell) *report.Table {
	t := report.NewTable("Fleet consolidation: scheduler x node policy",
		"Scheduler", "Policy", "FleetEFU", "SLO viol periods", "Reject rate",
		"p95 wait", "Done", "Dropped")
	for _, c := range cells {
		r := c.Result
		t.AddRow(c.Scheduler, string(c.Policy), report.F3(r.FleetEFU),
			fmt.Sprintf("%d", r.SLOViolationPeriods), report.Pct(100*r.RejectRate),
			fmt.Sprintf("%.1f", r.P95QueueWait), fmt.Sprintf("%d", r.Done),
			fmt.Sprintf("%d", r.Dropped))
	}
	return t
}
