package experiments

import (
	"reflect"
	"testing"

	"dicer/internal/chaos"
)

// Parallel-vs-serial equivalence: the sharded executor must produce
// byte-identical output to Workers=1 for every worker count. Results are
// written into index-addressed slots and every simulation is seeded, so
// nothing downstream of the executor may depend on scheduling. Each test
// renders through the report tables (the user-visible byte stream) and,
// for the chaos soak, compares the per-period decision fingerprints.
// CI runs this file under -race, which also exercises the executor's
// claim/steal synchronisation.

// eqConfig is a reduced horizon configuration: the equivalence property
// is about ordering and synchronisation, not simulated duration.
func eqConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.HorizonPeriods = 30
	cfg.SweepHorizonPeriods = 20
	cfg.Workers = workers
	return cfg
}

func eqSuite(t *testing.T, workers int) *Suite {
	t.Helper()
	s, err := NewSuite(eqConfig(workers))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// eqMatrix is a small scenario matrix spanning the behaviour classes
// (cache-sensitive, streaming, compute) at two BE counts.
func eqMatrix() []Job {
	var jobs []Job
	for _, w := range []Workload{
		{HP: "omnetpp1", BE: "gcc_base1", BECount: 9},
		{HP: "milc1", BE: "gcc_base1", BECount: 9},
		{HP: "mcf1", BE: "lbm1", BECount: 5},
		{HP: "namd1", BE: "povray1", BECount: 2},
	} {
		for _, p := range Policies {
			jobs = append(jobs, Job{W: w, Policy: p, Horizon: 30})
		}
	}
	return jobs
}

func TestParallelSerialEquivalenceRunMany(t *testing.T) {
	serial := eqSuite(t, 1)
	jobs := eqMatrix()
	want, err := serial.RunMany(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par := eqSuite(t, workers)
		got, err := par.RunMany(jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from serial run", workers)
		}
	}
}

func TestParallelSerialEquivalenceFigure3Table(t *testing.T) {
	want, err := eqSuite(t, 1).Figure3("milc1", "gcc_base1", 9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eqSuite(t, 8).Figure3("milc1", "gcc_base1", 9)
	if err != nil {
		t.Fatal(err)
	}
	ws, gs := want.Table().String(), got.Table().String()
	if ws != gs {
		t.Fatalf("rendered Figure 3 differs:\nserial:\n%s\nparallel:\n%s", ws, gs)
	}
}

func TestParallelSerialEquivalenceFigure2Table(t *testing.T) {
	want, err := eqSuite(t, 1).Figure2()
	if err != nil {
		t.Fatal(err)
	}
	got, err := eqSuite(t, 8).Figure2()
	if err != nil {
		t.Fatal(err)
	}
	ws, gs := want.Table().String(), got.Table().String()
	if ws != gs {
		t.Fatalf("rendered Figure 2 differs:\nserial:\n%s\nparallel:\n%s", ws, gs)
	}
}

func TestParallelSerialEquivalenceSoak(t *testing.T) {
	cfg := SoakConfig{
		Workloads:      []Workload{{HP: "milc1", BE: "gcc_base1", BECount: 9}},
		Schedules:      []chaos.Config{chaos.Schedules()[5]}, // storm: every fault class at once
		Seeds:          []int64{1, 2},
		HorizonPeriods: 20,
	}
	want, err := eqSuite(t, 1).Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eqSuite(t, 8).Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != len(want.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(got.Runs), len(want.Runs))
	}
	for i := range want.Runs {
		w, g := want.Runs[i], got.Runs[i]
		if g.Fingerprint != w.Fingerprint {
			t.Errorf("cell %d (%s %s seed %d): decision fingerprint %x != serial %x",
				i, w.Workload, w.Schedule, w.Seed, g.Fingerprint, w.Fingerprint)
		}
	}
	ws, gs := want.Table().String(), got.Table().String()
	if ws != gs {
		t.Fatalf("rendered soak table differs:\nserial:\n%s\nparallel:\n%s", ws, gs)
	}
}

func TestParallelSerialEquivalenceFleetTable(t *testing.T) {
	fc := FleetConfig{HorizonPeriods: 20}
	want, err := eqSuite(t, 1).FleetSuite(fc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eqSuite(t, 8).FleetSuite(fc)
	if err != nil {
		t.Fatal(err)
	}
	ws, gs := FleetTable(want).String(), FleetTable(got).String()
	if ws != gs {
		t.Fatalf("rendered fleet table differs:\nserial:\n%s\nparallel:\n%s", ws, gs)
	}
}
