package experiments

import "dicer/internal/par"

// Execute runs fn(i) for every i in [0, n) across workers goroutines.
// The implementation — a sharded work-stealing pool with index-addressed
// result slots, run-everything and lowest-index-error semantics — lives
// in the leaf package internal/par so the fleet layer (which this
// package imports) can batch node stepping through the same executor.
// This re-export keeps the package's historical entry point: every
// fan-out here (RunMany, the figure sweeps, FleetSuite, Soak) and the
// per-seed replication in internal/hypo route through it, so
// parallelism is bounded in exactly one place (Config.Workers).
func Execute(n, workers int, fn func(i int) error) error {
	return par.Execute(n, workers, fn)
}

// execute is Execute bound to the suite's worker setting.
func (s *Suite) execute(n int, fn func(i int) error) error {
	return par.Execute(n, s.workers(), fn)
}
