package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dicer/internal/metrics"
	"dicer/internal/obs"
)

// TestRunManyWithLiveTracing exercises the observability wiring the way
// the serve mode does, but across a parallel fleet: every uncached run
// gets its own trace ring (per-runner isolation), all runs share one
// Prometheus exporter, and a scraper goroutine renders the exposition
// concurrently with the runs. Run under -race this pins the concurrency
// contract of Config.Trace, Ring, and Exporter.
func TestRunManyWithLiveTracing(t *testing.T) {
	const horizon = 15
	exp := metrics.NewExporter()
	var mu sync.Mutex
	rings := map[string]*obs.Ring{}

	cfg := DefaultConfig()
	cfg.Trace = func(w Workload, pol PolicyName) obs.Sink {
		ring := obs.NewRing(horizon)
		mu.Lock()
		rings[fmt.Sprintf("%s/%s", w, pol)] = ring
		mu.Unlock()
		return obs.MultiSink{ring, exp}
	}
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if _, err := exp.WriteTo(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	workloads := []Workload{
		{HP: "omnetpp1", BE: "gcc_base1", BECount: 9},
		{HP: "milc1", BE: "gcc_base1", BECount: 9},
		{HP: "mcf1", BE: "lbm1", BECount: 5},
	}
	var jobs []Job
	for _, w := range workloads {
		for _, pol := range []PolicyName{UM, DICER} {
			jobs = append(jobs, Job{W: w, Policy: pol, Horizon: horizon})
		}
	}
	if _, err := s.RunMany(jobs); err != nil {
		t.Fatal(err)
	}
	close(stop)
	scrapes.Wait()

	if len(rings) != len(jobs) {
		t.Fatalf("%d trace sinks created, want one per uncached run (%d)", len(rings), len(jobs))
	}
	for key, ring := range rings {
		if ring.Total() != horizon {
			t.Errorf("%s: ring saw %d records, want %d", key, ring.Total(), horizon)
		}
		for _, r := range ring.Snapshot() {
			if r.Err != "" || r.Guard != "" {
				t.Errorf("%s period %d: unexpected annotation %+v", key, r.Period, r)
			}
		}
	}
	if got, want := exp.Records(), horizon*len(jobs); got != want {
		t.Fatalf("exporter aggregated %d records, want %d", got, want)
	}

	// Memoised replays do not re-execute and so must not re-emit traces:
	// running the same jobs again creates no new sinks and no records.
	if _, err := s.RunMany(jobs); err != nil {
		t.Fatal(err)
	}
	if len(rings) != len(jobs) {
		t.Fatalf("cached re-run created new trace sinks (%d total)", len(rings))
	}
	if got := exp.Records(); got != horizon*len(jobs) {
		t.Fatalf("cached re-run re-emitted records: %d", got)
	}
}
