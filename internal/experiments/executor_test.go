package experiments

import "testing"

// The executor's unit tests (coverage, stealing, error ordering, edge
// cases) live with the implementation in internal/par. What stays here
// are the guards that tie the executor to this package's hot path.
//
// Zero-alloc guards: the 59×59 sweep performs ~7k memoised runs and
// ~2.3M steps; a single allocation on the warm lookup or the
// result-slot write multiplies into measurable GC load, so both are
// pinned at zero.

func TestMemoLookupWarmZeroAlloc(t *testing.T) {
	s := suite(t)
	w := Workload{HP: "namd1", BE: "povray1", BECount: 1}
	if _, err := s.Run(w, UM, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AloneIPC("namd1"); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := s.Run(w, UM, 5); err != nil {
			t.Error(err)
		}
	}); got != 0 {
		t.Errorf("warm Run lookup allocates %v/op, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := s.AloneIPCWays("namd1", s.Config().Machine.LLCWays); err != nil {
			t.Error(err)
		}
	}); got != 0 {
		t.Errorf("warm AloneIPCWays lookup allocates %v/op, want 0", got)
	}
}

func TestResultSlotWriteZeroAlloc(t *testing.T) {
	s := suite(t)
	jobs := []Job{
		{W: Workload{HP: "namd1", BE: "povray1", BECount: 1}, Policy: UM, Horizon: 5},
		{W: Workload{HP: "povray1", BE: "namd1", BECount: 1}, Policy: UM, Horizon: 5},
	}
	if _, err := s.RunMany(jobs); err != nil {
		t.Fatal(err)
	}
	// Warm executor pass with a caller-owned arena: claiming indices and
	// writing result slots must not allocate (the arena, the jobs, and
	// the job closure are the only per-call state, all hoisted here).
	results := make([]Result, len(jobs))
	runJob := func(i int) error {
		var err error
		results[i], err = s.Run(jobs[i].W, jobs[i].Policy, jobs[i].Horizon)
		return err
	}
	if got := testing.AllocsPerRun(200, func() {
		if err := Execute(len(jobs), 1, runJob); err != nil {
			t.Error(err)
		}
	}); got != 0 {
		t.Errorf("warm result-slot writes allocate %v/op, want 0", got)
	}
}
