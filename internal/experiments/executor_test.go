package experiments

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestExecuteCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 5, 16, 257} {
			counts := make([]atomic.Int32, n)
			if err := Execute(n, workers, func(i int) error {
				counts[i].Add(1)
				return nil
			}); err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("n=%d workers=%d: index %d ran %d times", n, workers, i, got)
				}
			}
		}
	}
}

func TestExecuteStealsSkewedShards(t *testing.T) {
	// All the work lives in the first shard's index range; with more
	// workers than busy indices, stealing must still cover everything.
	var ran atomic.Int32
	var mu sync.Mutex
	seen := map[int]bool{}
	if err := Execute(64, 8, func(i int) error {
		ran.Add(1)
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 64 || len(seen) != 64 {
		t.Fatalf("covered %d indices (%d calls), want 64", len(seen), ran.Load())
	}
}

func TestExecuteReportsLowestIndexError(t *testing.T) {
	fail := map[int]bool{3: true, 11: true, 40: true}
	for _, workers := range []int{1, 4, 16} {
		err := Execute(48, workers, func(i int) error {
			if fail[i] {
				return fmt.Errorf("index %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 3 failed" {
			t.Fatalf("workers=%d: got %v, want the lowest-index error", workers, err)
		}
	}
}

func TestExecuteRunsEverythingDespiteErrors(t *testing.T) {
	var ran atomic.Int32
	err := Execute(32, 4, func(i int) error {
		ran.Add(1)
		if i%2 == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if ran.Load() != 32 {
		t.Fatalf("ran %d of 32 indices; every index must run even when others fail", ran.Load())
	}
}

func TestExecuteZeroAndNegativeN(t *testing.T) {
	if err := Execute(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	if err := Execute(-3, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Zero-alloc guards for the engine's hot path. The 59×59 sweep performs
// ~7k memoised runs and ~2.3M steps; a single allocation on the warm
// lookup or the result-slot write multiplies into measurable GC load, so
// both are pinned at zero.

func TestMemoLookupWarmZeroAlloc(t *testing.T) {
	s := suite(t)
	w := Workload{HP: "namd1", BE: "povray1", BECount: 1}
	if _, err := s.Run(w, UM, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AloneIPC("namd1"); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := s.Run(w, UM, 5); err != nil {
			t.Error(err)
		}
	}); got != 0 {
		t.Errorf("warm Run lookup allocates %v/op, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := s.AloneIPCWays("namd1", s.Config().Machine.LLCWays); err != nil {
			t.Error(err)
		}
	}); got != 0 {
		t.Errorf("warm AloneIPCWays lookup allocates %v/op, want 0", got)
	}
}

func TestResultSlotWriteZeroAlloc(t *testing.T) {
	s := suite(t)
	jobs := []Job{
		{W: Workload{HP: "namd1", BE: "povray1", BECount: 1}, Policy: UM, Horizon: 5},
		{W: Workload{HP: "povray1", BE: "namd1", BECount: 1}, Policy: UM, Horizon: 5},
	}
	if _, err := s.RunMany(jobs); err != nil {
		t.Fatal(err)
	}
	// Warm executor pass with a caller-owned arena: claiming indices and
	// writing result slots must not allocate (the arena, the jobs, and
	// the job closure are the only per-call state, all hoisted here).
	results := make([]Result, len(jobs))
	runJob := func(i int) error {
		var err error
		results[i], err = s.Run(jobs[i].W, jobs[i].Policy, jobs[i].Horizon)
		return err
	}
	if got := testing.AllocsPerRun(200, func() {
		if err := Execute(len(jobs), 1, runJob); err != nil {
			t.Error(err)
		}
	}); got != 0 {
		t.Errorf("warm result-slot writes allocate %v/op, want 0", got)
	}
}
