package experiments

import (
	"strings"
	"testing"
)

func TestFigure1TableRendering(t *testing.T) {
	r := Figure1Result{
		BECount: 9, N: 4,
		Ticks: []float64{1.0, 2.0},
		UMCDF: []float64{10, 90},
		CTCDF: []float64{20, 100},
	}
	out := r.Table().String()
	for _, want := range []string{"Figure 1", "4 workloads", "9 BEs", "1.0", "2.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2TableRendering(t *testing.T) {
	r := Figure2Result{
		Ways:    2,
		Targets: Fig2Targets,
		CDF:     [][]float64{{50, 100}, {40, 100}, {30, 100}},
	}
	out := r.Table().String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "99%") {
		t.Errorf("rendering:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 5 { // title+hdr+rule+2 rows
		t.Errorf("row count:\n%s", out)
	}
}

func TestFigure3TableRendering(t *testing.T) {
	r := Figure3Result{
		HP: "milc1", BE: "gcc_base1", BECount: 9,
		HPWays: []int{1, 2}, Slowdown: []float64{1.3, 1.05},
		UM: 1.05, BestWays: 2, BestValue: 1.05,
	}
	out := r.Table().String()
	for _, want := range []string{"milc1", "gcc_base1", "best = 2 ways", "UM = 1.050"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4TableRendering(t *testing.T) {
	r := Figure4Result{BECount: 9, Points: []Fig4Point{
		{Workload: Workload{HP: "a", BE: "b", BECount: 9}, Class: CTFavoured,
			Policy: UM, Slowdown: 1.2, EFU: 0.8},
		{Workload: Workload{HP: "a", BE: "b", BECount: 9}, Class: CTFavoured,
			Policy: CT, Slowdown: 1.1, EFU: 0.5},
	}}
	out := r.Table().String()
	if !strings.Contains(out, "a+9xb") || !strings.Contains(out, "CT-F") {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestFigure6TableRendering(t *testing.T) {
	r := Figure6Result{
		CoreCounts: []int{2, 10},
		EFU: map[PolicyName][]float64{
			UM: {0.99, 0.81}, CT: {0.88, 0.55}, DICER: {0.97, 0.76},
		},
	}
	out := r.Table().String()
	for _, want := range []string{"Figure 6", "UM", "CT", "DICER", "0.810"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFigure7And8TablesRendering(t *testing.T) {
	f7 := Figure7Result{
		CoreCounts: []int{10},
		SLOs:       []float64{0.80},
		Achieved: map[float64]map[PolicyName][]float64{
			0.80: {UM: {67.5}, CT: {92.5}, DICER: {92.5}},
		},
	}
	tables := f7.Tables()
	if len(tables) != 1 || !strings.Contains(tables[0].String(), "SLO = 80%") {
		t.Errorf("figure 7 rendering: %v", tables)
	}

	f8 := Figure8Result{
		CoreCounts: []int{10},
		SLOs:       []float64{0.90},
		Lambdas:    []float64{1},
		SUCI: map[float64]map[float64]map[PolicyName][]float64{
			1: {0.90: {UM: {0.02}, CT: {0.05}, DICER: {0.14}}},
		},
	}
	t8 := f8.Tables()
	if len(t8) != 1 || !strings.Contains(t8[0].String(), "lambda = 1") {
		t.Errorf("figure 8 rendering: %v", t8)
	}
}

func TestHeadlineTableRendering(t *testing.T) {
	h := HeadlineResult{BECount: 9, PctSLO80: 92.5, PctSLO90: 80.8,
		GeoMeanEFU: 0.756, MeanEFU: 0.77}
	out := h.Table().String()
	for _, want := range []string{"92.5%", "80.8%", "0.756", "> 90%", "~ 74%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestMachineSummary(t *testing.T) {
	out := MachineSummary(DefaultConfig().Machine)
	for _, want := range []string{"10 cores", "25 MB", "20-way", "68.3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}
