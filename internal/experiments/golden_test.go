package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dicer/internal/chaos"
	"dicer/internal/machine"
)

// Golden-file tests for the report renderers in render.go: each renderer
// is fed a small fixed fixture and its output compared byte-for-byte
// against testdata/*.golden. Regenerate after an intentional format
// change with:
//
//	go test ./internal/experiments -run TestGolden -update

var update = flag.Bool("update", false, "rewrite golden files with current renderer output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: output drifted from golden file (re-run with -update if intended)\n--- got ---\n%s--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	s, err := NewSuite(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1", s.Table1().String())
}

func TestGoldenFigure1(t *testing.T) {
	r := Figure1Result{
		BECount: 9, N: 3,
		Ticks: []float64{1.0, 1.5, 2.0},
		UMCDF: []float64{0, 33.3, 100},
		CTCDF: []float64{33.3, 100, 100},
	}
	checkGolden(t, "figure1", r.Table().String())
}

func TestGoldenFigure2(t *testing.T) {
	r := Figure2Result{
		Ways:    4,
		Targets: []float64{0.90, 0.95, 0.99},
		CDF: [][]float64{
			{25, 50, 75, 100},
			{10, 40, 70, 100},
			{0, 20, 60, 100},
		},
	}
	checkGolden(t, "figure2", r.Table().String())
}

func TestGoldenFigure3(t *testing.T) {
	r := Figure3Result{
		HP: "milc1", BE: "gcc_base1", BECount: 9,
		HPWays:   []int{1, 2, 3},
		Slowdown: []float64{1.42, 1.19, 1.11},
		UM:       1.31, BestWays: 3, BestValue: 1.11,
	}
	checkGolden(t, "figure3", r.Table().String())
}

func TestGoldenFigure4(t *testing.T) {
	w := Workload{HP: "omnetpp1", BE: "gcc_base1", BECount: 9}
	r := Figure4Result{
		BECount: 9,
		Points: []Fig4Point{
			{Workload: w, Class: CTFavoured, Policy: UM, Slowdown: 1.35, EFU: 0.71},
			{Workload: w, Class: CTFavoured, Policy: CT, Slowdown: 1.08, EFU: 0.42},
		},
	}
	checkGolden(t, "figure4", r.Table().String())
}

func TestGoldenFigure5(t *testing.T) {
	w := Workload{HP: "omnetpp1", BE: "gcc_base1", BECount: 9}
	r := Figure5Result{
		BECount: 9,
		Rows: []Fig5Row{{
			Workload: w, Class: CTFavoured,
			HPNorm: map[PolicyName]float64{UM: 0.74, CT: 0.93, DICER: 0.91},
			BENorm: map[PolicyName]float64{UM: 0.81, CT: 0.33, DICER: 0.65},
		}},
	}
	checkGolden(t, "figure5", r.Table().String())
}

func TestGoldenFigure6(t *testing.T) {
	r := Figure6Result{
		CoreCounts: []int{4, 7, 10},
		EFU: map[PolicyName][]float64{
			UM:    {0.81, 0.66, 0.52},
			CT:    {0.55, 0.48, 0.41},
			DICER: {0.83, 0.72, 0.61},
		},
	}
	checkGolden(t, "figure6", r.Table().String())
}

func TestGoldenFigure7(t *testing.T) {
	r := Figure7Result{
		CoreCounts: []int{4, 10},
		SLOs:       []float64{0.80, 0.90},
		Achieved: map[float64]map[PolicyName][]float64{
			0.80: {UM: {70, 40}, CT: {85, 75}, DICER: {98, 92}},
			0.90: {UM: {55, 25}, CT: {72, 60}, DICER: {90, 74}},
		},
	}
	var out string
	for _, tbl := range r.Tables() {
		out += tbl.String() + "\n"
	}
	checkGolden(t, "figure7", out)
}

func TestGoldenFigure8(t *testing.T) {
	r := Figure8Result{
		CoreCounts: []int{4, 10},
		SLOs:       []float64{0.90},
		Lambdas:    []float64{1},
		SUCI: map[float64]map[float64]map[PolicyName][]float64{
			1: {0.90: {UM: {0.41, 0.12}, CT: {0.38, 0.27}, DICER: {0.66, 0.48}}},
		},
	}
	var out string
	for _, tbl := range r.Tables() {
		out += tbl.String() + "\n"
	}
	checkGolden(t, "figure8", out)
}

func TestGoldenHeadline(t *testing.T) {
	r := HeadlineResult{
		BECount:  9,
		PctSLO80: 93.2, PctSLO90: 74.6,
		GeoMeanEFU: 0.58, MeanEFU: 0.61,
	}
	checkGolden(t, "headline", r.Table().String())
}

func TestGoldenMachineSummary(t *testing.T) {
	checkGolden(t, "machine_summary", MachineSummary(machine.Default())+"\n")
}

func TestGoldenSoakTable(t *testing.T) {
	r := &SoakResult{
		MaxHPDegradation: 0.35,
		Runs: []SoakRun{{
			Workload: Workload{HP: "omnetpp1", BE: "gcc_base1", BECount: 9},
			Schedule: "storm", Seed: 7,
			HPIPC: 0.642, FaultFreeHPIPC: 0.661, Degradation: 0.0287,
			Stats: chaos.Stats{
				Reads: 61, Dropouts: 3, FrozenReads: 8, JitteredReads: 49,
				Writes: 105, WritesRejected: 12, WritesDelayed: 15,
			},
		}},
	}
	checkGolden(t, "soak", r.Table().String())
}
