package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func fastConfig() Config {
	cfg := DefaultConfig()
	// Shorter horizons keep the integration tests quick; the shapes the
	// assertions check are stable well before the full horizons.
	cfg.HorizonPeriods = 60
	cfg.SweepHorizonPeriods = 40
	return cfg
}

var (
	sharedOnce  sync.Once
	sharedSuite *Suite
)

// suite returns a process-wide Suite so the expensive sweeps are computed
// once across all tests in this package.
func suite(t *testing.T) *Suite {
	t.Helper()
	sharedOnce.Do(func() {
		s, err := NewSuite(fastConfig())
		if err != nil {
			t.Fatal(err)
		}
		sharedSuite = s
	})
	return sharedSuite
}

func TestNewSuiteValidation(t *testing.T) {
	bad := fastConfig()
	bad.HorizonPeriods = 0
	if _, err := NewSuite(bad); err == nil {
		t.Fatal("expected error for zero horizon")
	}
	bad = fastConfig()
	bad.Machine.Cores = 0
	if _, err := NewSuite(bad); err == nil {
		t.Fatal("expected error for invalid machine")
	}
	bad = fastConfig()
	bad.DICER.SampleStep = 0
	if _, err := NewSuite(bad); err == nil {
		t.Fatal("expected error for invalid controller config")
	}
}

func TestPairsCount(t *testing.T) {
	pairs := Pairs(9)
	if len(pairs) != 3481 {
		t.Fatalf("pairs = %d, want 59*59 = 3481 (paper §4.1)", len(pairs))
	}
	seen := map[Workload]bool{}
	for _, w := range pairs {
		if w.BECount != 9 {
			t.Fatalf("pair %v has wrong BE count", w)
		}
		if seen[w] {
			t.Fatalf("duplicate pair %v", w)
		}
		seen[w] = true
	}
}

func TestWorkloadString(t *testing.T) {
	w := Workload{HP: "milc1", BE: "gcc_base1", BECount: 9}
	if got := w.String(); got != "milc1+9xgcc_base1" {
		t.Fatalf("workload string %q", got)
	}
}

func TestSpaced(t *testing.T) {
	ws := make([]Workload, 10)
	for i := range ws {
		ws[i] = Workload{HP: string(rune('a' + i))}
	}
	got := spaced(ws, 3)
	if len(got) != 3 {
		t.Fatalf("spaced returned %d", len(got))
	}
	if got[0] != ws[0] || got[2] != ws[9] {
		t.Fatalf("spaced endpoints wrong: %v", got)
	}
	if got := spaced(ws, 20); len(got) != 10 {
		t.Fatal("spaced should return all when n >= len")
	}
	if got := spaced(ws, 0); got != nil {
		t.Fatal("spaced(0) should be nil")
	}
	// Near-full selection must not contain duplicates.
	got = spaced(ws, 9)
	seen := map[Workload]bool{}
	for _, w := range got {
		if seen[w] {
			t.Fatalf("duplicate in spaced: %v", w)
		}
		seen[w] = true
	}
	if len(got) != 9 {
		t.Fatalf("spaced(9) returned %d", len(got))
	}
}

func TestWithBECount(t *testing.T) {
	in := []SampledWorkload{{Workload: Workload{HP: "a", BE: "b", BECount: 9}, Class: CTFavoured}}
	out := WithBECount(in, 3)
	if out[0].Workload.BECount != 3 || in[0].Workload.BECount != 9 {
		t.Fatal("WithBECount must copy, not mutate")
	}
	if out[0].Class != CTFavoured {
		t.Fatal("class lost")
	}
}

func TestResultMetrics(t *testing.T) {
	r := Result{
		Workload: Workload{HP: "h", BE: "b", BECount: 2},
		HPIPC:    0.9, HPAlone: 1.0,
		BEIPC: 0.25, BEAlone: 0.5,
	}
	if math.Abs(r.HPNorm()-0.9) > 1e-12 {
		t.Fatal("HPNorm")
	}
	if math.Abs(r.BENorm()-0.5) > 1e-12 {
		t.Fatal("BENorm")
	}
	if math.Abs(r.HPSlowdown()-1/0.9) > 1e-12 {
		t.Fatal("HPSlowdown")
	}
	// EFU over [0.9, 0.5, 0.5] = 3 / (1/0.9 + 2/0.5).
	want := 3 / (1/0.9 + 2/0.5)
	if math.Abs(r.EFU()-want) > 1e-12 {
		t.Fatalf("EFU = %g, want %g", r.EFU(), want)
	}
	if !r.SLOAchieved(0.9) || r.SLOAchieved(0.95) {
		t.Fatal("SLO evaluation")
	}
	if r.SUCI(0.95, 1) != 0 {
		t.Fatal("missed SLO must zero SUCI")
	}
	if math.Abs(r.SUCI(0.9, 1)-want) > 1e-12 {
		t.Fatal("SUCI at lambda 1 should equal EFU")
	}
}

func TestAloneIPCMemoisedAndMonotone(t *testing.T) {
	s := suite(t)
	a, err := s.AloneIPC("omnetpp1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.AloneIPC("omnetpp1")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("memoised alone IPC differs")
	}
	prev := 0.0
	for _, w := range []int{1, 4, 8, 12, 20} {
		ipc, err := s.AloneIPCWays("omnetpp1", w)
		if err != nil {
			t.Fatal(err)
		}
		if ipc < prev-1e-9 {
			t.Fatalf("alone IPC fell with more ways at %d: %g < %g", w, ipc, prev)
		}
		prev = ipc
	}
	if _, err := s.AloneIPC("nosuchapp"); err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestRunValidatesWorkload(t *testing.T) {
	s := suite(t)
	if _, err := s.Run(Workload{HP: "milc1", BE: "gcc_base1", BECount: 0}, UM, 5); err == nil {
		t.Fatal("expected error for zero BEs")
	}
	if _, err := s.Run(Workload{HP: "milc1", BE: "gcc_base1", BECount: 10}, UM, 5); err == nil {
		t.Fatal("expected error for too many BEs")
	}
	if _, err := s.Run(Workload{HP: "nope", BE: "gcc_base1", BECount: 9}, UM, 5); err == nil {
		t.Fatal("expected error for unknown HP")
	}
	if _, err := s.Run(Workload{HP: "milc1", BE: "nope", BECount: 9}, UM, 5); err == nil {
		t.Fatal("expected error for unknown BE")
	}
	if _, err := s.Run(Workload{HP: "milc1", BE: "gcc_base1", BECount: 9}, PolicyName("bogus"), 5); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestRunMemoised(t *testing.T) {
	s := suite(t)
	w := Workload{HP: "namd1", BE: "povray1", BECount: 2}
	a, err := s.Run(w, UM, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(w, UM, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("memoised runs differ")
	}
}

func TestStaticNineteenMatchesCT(t *testing.T) {
	s := suite(t)
	w := Workload{HP: "omnetpp1", BE: "gcc_base1", BECount: 9}
	ct, err := s.Run(w, CT, 20)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.StaticRun(w, 19, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ct.HPIPC-st.HPIPC) > 1e-12 {
		t.Fatalf("CT and Static(19) disagree: %g vs %g", ct.HPIPC, st.HPIPC)
	}
}

func TestRunManyPreservesOrder(t *testing.T) {
	s := suite(t)
	jobs := []Job{
		{W: Workload{HP: "namd1", BE: "povray1", BECount: 1}, Policy: UM, Horizon: 5},
		{W: Workload{HP: "povray1", BE: "namd1", BECount: 1}, Policy: CT, Horizon: 5},
	}
	res, err := s.RunMany(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Workload.HP != "namd1" || res[1].Workload.HP != "povray1" {
		t.Fatal("RunMany order not preserved")
	}
	if res[0].Policy != UM || res[1].Policy != CT {
		t.Fatal("RunMany policies mixed up")
	}
}

func TestTable1Rendering(t *testing.T) {
	s := suite(t)
	out := s.Table1().String()
	for _, want := range []string{"25 MB, 20-way", "68.3 Gbps", "T = 1 sec",
		"MemBW_threshold = 50", "phase_threshold = 30%", "a = 5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

// ---------------------------------------------------------------------------
// Shape-target integration tests (DESIGN.md "what reproduced means").
// These run the real figure drivers on reduced horizons.

func TestShapeFigure3MilcGcc(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	s := suite(t)
	f3, err := s.Figure3("milc1", "gcc_base1", 9)
	if err != nil {
		t.Fatal(err)
	}
	// Shape target 3: best at few ways, CT noticeably worse, UM near best.
	if f3.BestWays > 8 {
		t.Errorf("best static partition at %d ways, want <= 8", f3.BestWays)
	}
	ctSlow := f3.Slowdown[len(f3.Slowdown)-1] // 19 ways = CT
	if ctSlow < f3.BestValue*1.1 {
		t.Errorf("CT slowdown %.3f not noticeably worse than best %.3f", ctSlow, f3.BestValue)
	}
	if f3.UM > f3.BestValue*1.1 {
		t.Errorf("UM slowdown %.3f should be near best %.3f", f3.UM, f3.BestValue)
	}
	// The sweep must be a U-shape: 1 way worse than the best too.
	if f3.Slowdown[0] <= f3.BestValue {
		t.Errorf("1-way slowdown %.3f should exceed best %.3f", f3.Slowdown[0], f3.BestValue)
	}
}

func TestShapeFigure2(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	s := suite(t)
	f2, err := s.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	// Rows are CDFs: non-decreasing, ending at 100.
	for ti, row := range f2.CDF {
		prev := 0.0
		for w, v := range row {
			if v < prev-1e-9 {
				t.Fatalf("target %d: CDF fell at way %d", ti, w+1)
			}
			prev = v
		}
		if row[f2.Ways-1] != 100 {
			t.Fatalf("target %d: CDF does not reach 100%%", ti)
		}
	}
	// Looser targets need fewer ways: CDF(90%) >= CDF(99%) pointwise.
	for w := 0; w < f2.Ways; w++ {
		if f2.CDF[0][w] < f2.CDF[2][w]-1e-9 {
			t.Fatalf("way %d: 90%% target CDF below 99%% target", w+1)
		}
	}
	// Shape target 2: most applications need much less than the full LLC
	// (paper: 50% reach 99% performance with <= 6 ways).
	if f2.CDF[2][5] < 50 {
		t.Errorf("only %.0f%% of apps reach 99%% perf with 6 ways, want >= 50%%", f2.CDF[2][5])
	}
}

func TestShapeClassificationAndSample(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep (full 59x59)")
	}
	s := suite(t)
	c, err := s.Classify(9)
	if err != nil {
		t.Fatal(err)
	}
	ctf, ctt := c.Counts()
	if ctf+ctt != 3481 {
		t.Fatalf("classified %d workloads, want 3481", ctf+ctt)
	}
	// Paper: ~60% CT-T. Accept a generous band around it.
	frac := float64(ctt) / 3481
	if frac < 0.40 || frac > 0.75 {
		t.Errorf("CT-T fraction %.2f outside [0.40, 0.75] (paper ~0.60)", frac)
	}

	sample, err := s.Sample(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != SampleTotal {
		t.Fatalf("sample size %d, want %d", len(sample), SampleTotal)
	}
	var nf, nt int
	seen := map[Workload]bool{}
	for _, sw := range sample {
		if seen[sw.Workload] {
			t.Fatalf("duplicate %v in sample", sw.Workload)
		}
		seen[sw.Workload] = true
		if sw.Class == CTFavoured {
			nf++
		} else {
			nt++
		}
		if c.Class[sw.Workload] != sw.Class {
			t.Fatalf("sample class mismatch for %v", sw.Workload)
		}
	}
	if nf != SampleCTF || nt != SampleCTT {
		t.Fatalf("sample split %d/%d, want %d/%d", nf, nt, SampleCTF, SampleCTT)
	}
	// Deterministic.
	again, err := s.Sample(9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sample {
		if sample[i] != again[i] {
			t.Fatal("sample not deterministic")
		}
	}
}

func TestShapeFigure1(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep (full 59x59)")
	}
	s := suite(t)
	f1, err := s.Figure1(9)
	if err != nil {
		t.Fatal(err)
	}
	if f1.N != 3481 {
		t.Fatalf("N = %d", f1.N)
	}
	// Shape target 1: CT's CDF lies left of (above) UM's through the tail.
	for i, tick := range f1.Ticks {
		if tick >= 1.1 && tick <= 2.0 && f1.CTCDF[i] < f1.UMCDF[i] {
			t.Errorf("at %.1fx CT CDF %.1f below UM %.1f", tick, f1.CTCDF[i], f1.UMCDF[i])
		}
	}
	// Few workloads are unaffected under UM (paper < 5%).
	if f1.UMCDF[0] > 10 {
		t.Errorf("%.1f%% of workloads unaffected under UM, want < 10%%", f1.UMCDF[0])
	}
	// Nearly everything is under 3x (paper: slowdowns rarely exceed 2x).
	if f1.UMCDF[7] < 95 {
		t.Errorf("UM CDF at 3.0x = %.1f, want >= 95", f1.UMCDF[7])
	}
	// Rendering sanity.
	if !strings.Contains(f1.Table().String(), "Figure 1") {
		t.Error("Figure 1 table missing title")
	}
}

func TestShapeGridFigures678(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep (grid)")
	}
	s := suite(t)
	g, err := s.GridFor(9)
	if err != nil {
		t.Fatal(err)
	}
	last := len(g.CoreCounts) - 1

	f6 := g.Figure6()
	// Shape target 6: EFU ordering UM > DICER > CT at full occupancy, gap
	// widening with cores.
	if !(f6.EFU[UM][last] > f6.EFU[DICER][last] && f6.EFU[DICER][last] > f6.EFU[CT][last]) {
		t.Errorf("EFU ordering violated at 10 cores: UM %.3f DICER %.3f CT %.3f",
			f6.EFU[UM][last], f6.EFU[DICER][last], f6.EFU[CT][last])
	}
	gapSmall := f6.EFU[UM][0] - f6.EFU[CT][0]
	gapBig := f6.EFU[UM][last] - f6.EFU[CT][last]
	if gapBig <= gapSmall {
		t.Errorf("UM-CT EFU gap did not widen: %.3f -> %.3f", gapSmall, gapBig)
	}

	f7 := g.Figure7()
	// Shape target 7: DICER beats UM everywhere at 90%; DICER is at least
	// competitive with CT at high occupancy (within a few points) and
	// clearly better at the 95% SLO.
	if f7.Achieved[0.90][DICER][last] <= f7.Achieved[0.90][UM][last] {
		t.Errorf("SLO90 at 10 cores: DICER %.1f <= UM %.1f",
			f7.Achieved[0.90][DICER][last], f7.Achieved[0.90][UM][last])
	}
	if f7.Achieved[0.90][DICER][last] < f7.Achieved[0.90][CT][last]-10 {
		t.Errorf("SLO90 at 10 cores: DICER %.1f far below CT %.1f",
			f7.Achieved[0.90][DICER][last], f7.Achieved[0.90][CT][last])
	}
	if f7.Achieved[0.95][DICER][last] < f7.Achieved[0.95][CT][last]-5 {
		t.Errorf("SLO95 at 10 cores: DICER %.1f below CT %.1f",
			f7.Achieved[0.95][DICER][last], f7.Achieved[0.95][CT][last])
	}

	f8 := g.Figure8()
	// Shape target 8: DICER has the best SUCI at the 90% SLO for every
	// lambda at full occupancy.
	for _, lambda := range f8.Lambdas {
		d := f8.SUCI[lambda][0.90][DICER][last]
		if d < f8.SUCI[lambda][0.90][UM][last] {
			t.Errorf("lambda %g: DICER SUCI %.3f below UM", lambda, d)
		}
		if d < f8.SUCI[lambda][0.90][CT][last]*0.9 {
			t.Errorf("lambda %g: DICER SUCI %.3f well below CT %.3f",
				lambda, d, f8.SUCI[lambda][0.90][CT][last])
		}
	}

	// Headline claims (paper: >90% at SLO80, ~74% at SLO90, EFU ~0.6).
	h := g.Headline(s.Config().Machine.Cores)
	if h.PctSLO80 < 75 {
		t.Errorf("headline SLO80 = %.1f%%, want >= 75%%", h.PctSLO80)
	}
	if h.PctSLO90 < 60 {
		t.Errorf("headline SLO90 = %.1f%%, want >= 60%%", h.PctSLO90)
	}
	if h.GeoMeanEFU < 0.5 || h.GeoMeanEFU > 0.95 {
		t.Errorf("headline EFU = %.3f outside [0.5, 0.95]", h.GeoMeanEFU)
	}

	// Figure 5 piggybacks on the same sample.
	f5, err := s.Figure5(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Rows) != SampleTotal {
		t.Fatalf("figure 5 rows = %d", len(f5.Rows))
	}
	// CT-F rows come first.
	for i := 1; i < len(f5.Rows); i++ {
		if f5.Rows[i-1].Class == CTThwarted && f5.Rows[i].Class == CTFavoured {
			t.Fatal("figure 5 rows not CT-F first")
		}
	}
	// Shape target 5: DICER's BE IPC beats CT's on average.
	var dSum, cSum float64
	for _, row := range f5.Rows {
		dSum += row.BENorm[DICER]
		cSum += row.BENorm[CT]
	}
	if dSum <= cSum {
		t.Errorf("mean DICER BE norm %.3f <= CT %.3f", dSum/120, cSum/120)
	}

	// Figure 4 sanity: EFU in (0,1], CT points lower-EFU than UM points on
	// average.
	f4, err := s.Figure4(9)
	if err != nil {
		t.Fatal(err)
	}
	var umEFU, ctEFU float64
	for _, p := range f4.Points {
		if p.EFU <= 0 || p.EFU > 1 {
			t.Fatalf("EFU %g out of range for %v", p.EFU, p.Workload)
		}
		if p.Policy == UM {
			umEFU += p.EFU
		} else {
			ctEFU += p.EFU
		}
	}
	if umEFU <= ctEFU {
		t.Errorf("UM mean EFU %.3f <= CT %.3f", umEFU/120, ctEFU/120)
	}

	// Rendering of all grid tables.
	if !strings.Contains(f6.Table().String(), "Figure 6") {
		t.Error("figure 6 table")
	}
	if got := len(f7.Tables()); got != 4 {
		t.Errorf("figure 7 tables = %d, want 4", got)
	}
	if got := len(f8.Tables()); got != 12 {
		t.Errorf("figure 8 tables = %d, want 12 (3 lambdas x 4 SLOs)", got)
	}
	if !strings.Contains(h.Table().String(), "Headline") {
		t.Error("headline table")
	}
}

func TestPaperFig5WorkloadsResolve(t *testing.T) {
	paper := PaperFig5Workloads(9)
	if len(paper) < 80 {
		t.Fatalf("only %d paper pairs transcribed", len(paper))
	}
	names := map[string]bool{}
	for _, n := range catalogNames() {
		names[n] = true
	}
	seen := map[Workload]bool{}
	for _, sw := range paper {
		if !names[sw.Workload.HP] {
			t.Errorf("paper pair HP %q not in catalog", sw.Workload.HP)
		}
		if !names[sw.Workload.BE] {
			t.Errorf("paper pair BE %q not in catalog", sw.Workload.BE)
		}
		if seen[sw.Workload] {
			t.Errorf("duplicate paper pair %v", sw.Workload)
		}
		seen[sw.Workload] = true
	}
}

func TestFigure5PaperAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	s := suite(t)
	r, err := s.Figure5Paper(9)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != len(PaperFig5Workloads(9)) {
		t.Fatalf("evaluated %d of %d pairs", r.N, len(PaperFig5Workloads(9)))
	}
	// Per-pair CT-F/CT-T agreement with the paper's panels is weak by
	// construction: the synthetic profiles reproduce class-level shapes,
	// not the per-benchmark microarchitectural details that decide
	// near-tie pairs (most disagreements are pairs the paper saw as small
	// CT wins and this model sees as exact ties). Record it, expect it
	// above a floor, and gate on the claim Figure 5 actually makes:
	// DICER's HP performance is best or close to best on BOTH panels.
	if got := r.AgreementPct(); got < 20 {
		t.Errorf("class agreement with the paper's panels %.0f%%, want >= 20%%", got)
	}
	mean := func(class WorkloadClass, pol PolicyName) float64 {
		var sum float64
		var n int
		for _, row := range r.Rows {
			if row.Class == class {
				sum += row.HPNorm[pol]
				n++
			}
		}
		return sum / float64(n)
	}
	for _, class := range []WorkloadClass{CTFavoured, CTThwarted} {
		d := mean(class, DICER)
		best := mean(class, UM)
		if ct := mean(class, CT); ct > best {
			best = ct
		}
		if d < best-0.10 {
			t.Errorf("%s panel: DICER mean HP norm %.3f far below best baseline %.3f",
				class, d, best)
		}
	}
	if !strings.Contains(r.Table().String(), "class agreement") {
		t.Error("table title")
	}
}

func TestSpacedSingleElement(t *testing.T) {
	ws := make([]Workload, 5)
	for i := range ws {
		ws[i] = Workload{HP: string(rune('a' + i))}
	}
	got := spaced(ws, 1)
	if len(got) != 1 || got[0] != ws[2] {
		t.Fatalf("spaced(5,1) = %v, want the middle element", got)
	}
}
