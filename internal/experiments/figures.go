package experiments

import (
	"sort"

	"dicer/internal/app"
	"dicer/internal/metrics"
)

// catalogNames returns the 59 catalog application names in sorted order.
func catalogNames() []string { return app.Names() }

// ---------------------------------------------------------------------------
// Figure 1 — cumulative distribution of HP slowdown under UM and CT with
// 9 co-located BEs, over all 3481 catalog pairs.

// Fig1Ticks are the slowdown thresholds on the paper's x-axis.
var Fig1Ticks = []float64{1.0, 1.1, 1.2, 1.3, 1.5, 1.7, 2.0, 3.0, 4.0, 5.0}

// Figure1Result holds the slowdown CDFs.
type Figure1Result struct {
	BECount int
	N       int       // number of workloads
	Ticks   []float64 // slowdown thresholds
	UMCDF   []float64 // % of workloads with slowdown <= tick, UM
	CTCDF   []float64 // % of workloads with slowdown <= tick, CT
	// Raw samples for further analysis.
	UMSlowdowns, CTSlowdowns []float64
}

// Figure1 reproduces the paper's Figure 1.
func (s *Suite) Figure1(beCount int) (Figure1Result, error) {
	c, err := s.Classify(beCount)
	if err != nil {
		return Figure1Result{}, err
	}
	res := Figure1Result{BECount: beCount, Ticks: Fig1Ticks}
	for _, w := range Pairs(beCount) {
		res.UMSlowdowns = append(res.UMSlowdowns, c.UM[w].HPSlowdown())
		res.CTSlowdowns = append(res.CTSlowdowns, c.CT[w].HPSlowdown())
	}
	res.N = len(res.UMSlowdowns)
	um := metrics.NewCDF(res.UMSlowdowns)
	ct := metrics.NewCDF(res.CTSlowdowns)
	for _, t := range Fig1Ticks {
		// Use a hair above the tick so "slowdown == 1.0" counts at 1.0.
		res.UMCDF = append(res.UMCDF, 100*um.At(t+1e-9))
		res.CTCDF = append(res.CTCDF, 100*ct.At(t+1e-9))
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 2 — cumulative distribution of the minimum LLC ways an
// application needs, running alone, to reach 90/95/99 % of its full-LLC
// performance.

// Fig2Targets are the performance fractions of the paper's Figure 2.
var Fig2Targets = []float64{0.90, 0.95, 0.99}

// Figure2Result holds, per target, the % of applications that reach the
// target with <= w ways (index w-1), plus the per-app minima.
type Figure2Result struct {
	Ways    int
	Targets []float64
	CDF     [][]float64      // [target][way] -> % of applications
	MinWays map[string][]int // app -> min ways per target
}

// Figure2 reproduces the paper's Figure 2.
func (s *Suite) Figure2() (Figure2Result, error) {
	ways := s.cfg.Machine.LLCWays
	names := catalogNames()
	res := Figure2Result{
		Ways:    ways,
		Targets: Fig2Targets,
		MinWays: make(map[string][]int, len(names)),
	}

	// Per-app alone IPC at every way count. One executor job per
	// (app, ways) point; job (i, w) writes slot i*ways + (w-1).
	type sweep struct {
		name string
		ipc  []float64
	}
	sweeps := make([]sweep, len(names))
	arena := make([]float64, len(names)*ways)
	for i, name := range names {
		sweeps[i] = sweep{name: name, ipc: arena[i*ways : (i+1)*ways]}
	}
	if err := s.execute(len(names)*ways, func(j int) error {
		i, w := j/ways, j%ways+1
		v, err := s.AloneIPCWays(names[i], w)
		if err != nil {
			return err
		}
		sweeps[i].ipc[w-1] = v
		return nil
	}); err != nil {
		return Figure2Result{}, err
	}

	for _, sw := range sweeps {
		full := sw.ipc[ways-1]
		mins := make([]int, len(Fig2Targets))
		for ti, target := range Fig2Targets {
			mins[ti] = ways
			for w := 1; w <= ways; w++ {
				if sw.ipc[w-1] >= target*full {
					mins[ti] = w
					break
				}
			}
		}
		res.MinWays[sw.name] = mins
	}

	res.CDF = make([][]float64, len(Fig2Targets))
	for ti := range Fig2Targets {
		row := make([]float64, ways)
		for w := 1; w <= ways; w++ {
			n := 0
			for _, mins := range res.MinWays {
				if mins[ti] <= w {
					n++
				}
			}
			row[w-1] = 100 * float64(n) / float64(len(res.MinWays))
		}
		res.CDF[ti] = row
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 3 — HP slowdown across all static LLC partitions for the paper's
// case study: milc (HP) with 9 gcc BEs.

// Figure3Result holds the static-partition sweep.
type Figure3Result struct {
	HP, BE    string
	BECount   int
	HPWays    []int     // x-axis: ways assigned to HP
	Slowdown  []float64 // HP slowdown at each static partition
	UM        float64   // UM slowdown for reference
	BestWays  int
	BestValue float64
}

// Figure3 reproduces the paper's Figure 3 for the given pair (the paper
// uses milc and gcc; callers pass catalog names, e.g. "milc1",
// "gcc_base1").
func (s *Suite) Figure3(hp, be string, beCount int) (Figure3Result, error) {
	w := Workload{HP: hp, BE: be, BECount: beCount}
	res := Figure3Result{HP: hp, BE: be, BECount: beCount, BestValue: -1}

	ways := s.cfg.Machine.LLCWays
	type point struct {
		hpWays   int
		slowdown float64
	}
	points := make([]point, ways-1)
	if err := s.execute(ways-1, func(i int) error {
		hw := i + 1
		r, err := s.StaticRun(w, hw, s.cfg.HorizonPeriods)
		if err != nil {
			return err
		}
		points[i] = point{hpWays: hw, slowdown: r.HPSlowdown()}
		return nil
	}); err != nil {
		return Figure3Result{}, err
	}

	for _, p := range points {
		res.HPWays = append(res.HPWays, p.hpWays)
		res.Slowdown = append(res.Slowdown, p.slowdown)
		if res.BestValue < 0 || p.slowdown < res.BestValue {
			res.BestValue = p.slowdown
			res.BestWays = p.hpWays
		}
	}
	um, err := s.Run(w, UM, s.cfg.HorizonPeriods)
	if err != nil {
		return Figure3Result{}, err
	}
	res.UM = um.HPSlowdown()
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 4 — scatter of effective utilisation vs HP slowdown over the
// 120-workload sample under UM and CT.

// Fig4Point is one workload under one policy.
type Fig4Point struct {
	Workload Workload
	Class    WorkloadClass
	Policy   PolicyName
	Slowdown float64
	EFU      float64
}

// Figure4Result holds the scatter points.
type Figure4Result struct {
	BECount int
	Points  []Fig4Point
}

// Figure4 reproduces the paper's Figure 4.
func (s *Suite) Figure4(beCount int) (Figure4Result, error) {
	sample, err := s.Sample(beCount)
	if err != nil {
		return Figure4Result{}, err
	}
	var jobs []Job
	for _, sw := range sample {
		jobs = append(jobs,
			Job{W: sw.Workload, Policy: UM, Horizon: s.cfg.HorizonPeriods},
			Job{W: sw.Workload, Policy: CT, Horizon: s.cfg.HorizonPeriods})
	}
	results, err := s.RunMany(jobs)
	if err != nil {
		return Figure4Result{}, err
	}
	res := Figure4Result{BECount: beCount}
	for i, r := range results {
		res.Points = append(res.Points, Fig4Point{
			Workload: r.Workload,
			Class:    sample[i/2].Class,
			Policy:   r.Policy,
			Slowdown: r.HPSlowdown(),
			EFU:      r.EFU(),
		})
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 5 — per-workload normalised HP IPC and BE IPC for UM, CT and
// DICER, split by workload class.

// Fig5Row is one workload's normalised performance under all policies.
type Fig5Row struct {
	Workload Workload
	Class    WorkloadClass
	HPNorm   map[PolicyName]float64
	BENorm   map[PolicyName]float64
}

// Figure5Result holds the per-workload rows, CT-F first (as in the paper's
// panel layout).
type Figure5Result struct {
	BECount int
	Rows    []Fig5Row
}

// Policies lists the co-location policies of the paper's evaluation.
var Policies = []PolicyName{UM, CT, DICER}

// Figure5 reproduces the paper's Figure 5.
func (s *Suite) Figure5(beCount int) (Figure5Result, error) {
	sample, err := s.Sample(beCount)
	if err != nil {
		return Figure5Result{}, err
	}
	var jobs []Job
	for _, sw := range sample {
		for _, p := range Policies {
			jobs = append(jobs, Job{W: sw.Workload, Policy: p, Horizon: s.cfg.HorizonPeriods})
		}
	}
	results, err := s.RunMany(jobs)
	if err != nil {
		return Figure5Result{}, err
	}
	res := Figure5Result{BECount: beCount}
	for i, sw := range sample {
		row := Fig5Row{
			Workload: sw.Workload,
			Class:    sw.Class,
			HPNorm:   map[PolicyName]float64{},
			BENorm:   map[PolicyName]float64{},
		}
		for j, p := range Policies {
			r := results[i*len(Policies)+j]
			row.HPNorm[p] = r.HPNorm()
			row.BENorm[p] = r.BENorm()
		}
		res.Rows = append(res.Rows, row)
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		if res.Rows[i].Class != res.Rows[j].Class {
			return res.Rows[i].Class == CTFavoured
		}
		return res.Rows[i].Workload.String() < res.Rows[j].Workload.String()
	})
	return res, nil
}

// ---------------------------------------------------------------------------
// Figures 6–8 share a grid: the 120-workload sample re-run at every core
// count from 2 to Cores (1 HP + 1..Cores-1 BEs) under all three policies.

// Grid holds every sampled run indexed [policy][cores][workload].
type Grid struct {
	CoreCounts []int
	Sample     []SampledWorkload // at the classification BE count
	Runs       map[PolicyName]map[int][]Result
}

// GridFor runs (memoised via the suite cache) the full policy × cores ×
// sample grid.
func (s *Suite) GridFor(classifyBEs int) (*Grid, error) {
	sample, err := s.Sample(classifyBEs)
	if err != nil {
		return nil, err
	}
	g := &Grid{Sample: sample, Runs: map[PolicyName]map[int][]Result{}}
	for c := 2; c <= s.cfg.Machine.Cores; c++ {
		g.CoreCounts = append(g.CoreCounts, c)
	}
	var jobs []Job
	for _, p := range Policies {
		for _, cores := range g.CoreCounts {
			for _, sw := range WithBECount(sample, cores-1) {
				jobs = append(jobs, Job{W: sw.Workload, Policy: p, Horizon: s.cfg.HorizonPeriods})
			}
		}
	}
	results, err := s.RunMany(jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, p := range Policies {
		g.Runs[p] = map[int][]Result{}
		for _, cores := range g.CoreCounts {
			g.Runs[p][cores] = results[i : i+len(sample)]
			i += len(sample)
		}
	}
	return g, nil
}

// Figure6Result is the geometric-mean EFU per policy and core count.
type Figure6Result struct {
	CoreCounts []int
	EFU        map[PolicyName][]float64 // indexed like CoreCounts
}

// Figure6 reproduces the paper's Figure 6 from the shared grid.
func (g *Grid) Figure6() Figure6Result {
	res := Figure6Result{CoreCounts: g.CoreCounts, EFU: map[PolicyName][]float64{}}
	for _, p := range Policies {
		for _, cores := range g.CoreCounts {
			var efus []float64
			for _, r := range g.Runs[p][cores] {
				efus = append(efus, r.EFU())
			}
			res.EFU[p] = append(res.EFU[p], metrics.GeoMean(efus))
		}
	}
	return res
}

// Fig78SLOs are the SLO levels of Figures 7 and 8.
var Fig78SLOs = []float64{0.80, 0.85, 0.90, 0.95}

// Figure7Result is the % of workloads achieving each SLO, per policy and
// core count.
type Figure7Result struct {
	CoreCounts []int
	SLOs       []float64
	// Achieved[slo][policy][coreIdx] is a percentage.
	Achieved map[float64]map[PolicyName][]float64
}

// Figure7 reproduces the paper's Figure 7 from the shared grid.
func (g *Grid) Figure7() Figure7Result {
	res := Figure7Result{
		CoreCounts: g.CoreCounts,
		SLOs:       Fig78SLOs,
		Achieved:   map[float64]map[PolicyName][]float64{},
	}
	for _, slo := range Fig78SLOs {
		res.Achieved[slo] = map[PolicyName][]float64{}
		for _, p := range Policies {
			for _, cores := range g.CoreCounts {
				n := 0
				runs := g.Runs[p][cores]
				for _, r := range runs {
					if r.SLOAchieved(slo) {
						n++
					}
				}
				pct := 100 * float64(n) / float64(len(runs))
				res.Achieved[slo][p] = append(res.Achieved[slo][p], pct)
			}
		}
	}
	return res
}

// Fig8Lambdas are the SUCI weights of Figure 8 (panel a uses 1, panel b
// uses 0.5 and 2).
var Fig8Lambdas = []float64{0.5, 1, 2}

// Figure8Result is the geometric-mean SUCI per lambda, SLO, policy and
// core count.
type Figure8Result struct {
	CoreCounts []int
	SLOs       []float64
	Lambdas    []float64
	// SUCI[lambda][slo][policy][coreIdx].
	SUCI map[float64]map[float64]map[PolicyName][]float64
}

// Figure8 reproduces the paper's Figure 8 from the shared grid.
func (g *Grid) Figure8() Figure8Result {
	res := Figure8Result{
		CoreCounts: g.CoreCounts,
		SLOs:       Fig78SLOs,
		Lambdas:    Fig8Lambdas,
		SUCI:       map[float64]map[float64]map[PolicyName][]float64{},
	}
	for _, lambda := range Fig8Lambdas {
		res.SUCI[lambda] = map[float64]map[PolicyName][]float64{}
		for _, slo := range Fig78SLOs {
			res.SUCI[lambda][slo] = map[PolicyName][]float64{}
			for _, p := range Policies {
				for _, cores := range g.CoreCounts {
					var vals []float64
					for _, r := range g.Runs[p][cores] {
						vals = append(vals, r.SUCI(slo, lambda))
					}
					res.SUCI[lambda][slo][p] = append(res.SUCI[lambda][slo][p], metrics.GeoMean(vals))
				}
			}
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// Headline claims (§1, §4.2): SLO conformance and mean EFU for DICER at
// full server occupancy.

// HeadlineResult summarises the paper's headline numbers.
type HeadlineResult struct {
	BECount    int
	PctSLO80   float64 // paper: > 90 % of workloads
	PctSLO90   float64 // paper: ~74 % of workloads
	GeoMeanEFU float64 // paper: ~0.6 effective utilisation
	MeanEFU    float64
}

// Headline computes the headline claims from the shared grid at the given
// core count (10 in the paper: 1 HP + 9 BEs).
func (g *Grid) Headline(cores int) HeadlineResult {
	res := HeadlineResult{BECount: cores - 1}
	runs := g.Runs[DICER][cores]
	var n80, n90 int
	var efus []float64
	for _, r := range runs {
		if r.SLOAchieved(0.80) {
			n80++
		}
		if r.SLOAchieved(0.90) {
			n90++
		}
		efus = append(efus, r.EFU())
	}
	res.PctSLO80 = 100 * float64(n80) / float64(len(runs))
	res.PctSLO90 = 100 * float64(n90) / float64(len(runs))
	res.GeoMeanEFU = metrics.GeoMean(efus)
	res.MeanEFU = metrics.Mean(efus)
	return res
}
