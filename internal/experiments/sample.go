package experiments

import (
	"fmt"
	"sort"
)

// WorkloadClass labels a multiprogrammed workload by CT's effect on the HP
// (paper §2.3.3).
type WorkloadClass string

// The two workload classes.
const (
	CTFavoured WorkloadClass = "CT-F" // CT improves HP performance over UM
	CTThwarted WorkloadClass = "CT-T" // CT offers no improvement or degrades HP
)

// classifyMargin is the relative HP-IPC advantage CT must show over UM to
// count as an improvement; it absorbs model noise around exact ties.
const classifyMargin = 1.01

// Classification holds the full 59×59 baseline sweep at one BE count: the
// UM and CT result for every pair and the derived class.
type Classification struct {
	BECount int
	UM, CT  map[Workload]Result
	Class   map[Workload]WorkloadClass
}

// Pairs returns every (HP, BE) workload over the catalog at the given BE
// count — the paper's 59×59 = 3481 multiprogrammed workloads.
func Pairs(beCount int) []Workload {
	names := catalogNames()
	out := make([]Workload, 0, len(names)*len(names))
	for _, hp := range names {
		for _, be := range names {
			out = append(out, Workload{HP: hp, BE: be, BECount: beCount})
		}
	}
	return out
}

// Classify runs (memoised) the full baseline sweep — every catalog pair
// under UM and CT — and labels each workload CT-F or CT-T.
func (s *Suite) Classify(beCount int) (*Classification, error) {
	s.classMu.Lock()
	if c, ok := s.class[beCount]; ok {
		s.classMu.Unlock()
		return c, nil
	}
	s.classMu.Unlock()

	pairs := Pairs(beCount)
	jobs := make([]Job, 0, 2*len(pairs))
	for _, w := range pairs {
		jobs = append(jobs,
			Job{W: w, Policy: UM, Horizon: s.cfg.SweepHorizonPeriods},
			Job{W: w, Policy: CT, Horizon: s.cfg.SweepHorizonPeriods})
	}
	results, err := s.RunMany(jobs)
	if err != nil {
		return nil, err
	}

	c := &Classification{
		BECount: beCount,
		UM:      make(map[Workload]Result, len(pairs)),
		CT:      make(map[Workload]Result, len(pairs)),
		Class:   make(map[Workload]WorkloadClass, len(pairs)),
	}
	for _, r := range results {
		switch r.Policy {
		case UM:
			c.UM[r.Workload] = r
		case CT:
			c.CT[r.Workload] = r
		}
	}
	for _, w := range pairs {
		if c.CT[w].HPIPC > c.UM[w].HPIPC*classifyMargin {
			c.Class[w] = CTFavoured
		} else {
			c.Class[w] = CTThwarted
		}
	}

	s.classMu.Lock()
	s.class[beCount] = c
	s.classMu.Unlock()
	return c, nil
}

// Counts returns the number of CT-F and CT-T workloads.
func (c *Classification) Counts() (ctf, ctt int) {
	for _, cl := range c.Class {
		if cl == CTFavoured {
			ctf++
		} else {
			ctt++
		}
	}
	return ctf, ctt
}

// Sample sizes used throughout the paper's evaluation (§4.1): 120
// representative workloads, 50 CT-Favoured and 70 CT-Thwarted.
const (
	SampleCTF   = 50
	SampleCTT   = 70
	SampleTotal = SampleCTF + SampleCTT
)

// SampledWorkload pairs a workload with its class for reporting.
type SampledWorkload struct {
	Workload Workload
	Class    WorkloadClass
}

// Sample returns the deterministic 120-workload representative sample: 50
// CT-F and 70 CT-T pairs, selected by evenly spacing each class's
// pairs after ordering them by the severity of the HP's UM slowdown (so
// the sample spans the full contention spectrum, from unaffected to
// heavily thwarted, exactly what "representative" needs to mean for
// Figures 4–8). If a class has fewer members than its quota, the deficit
// is filled from the other class.
func (s *Suite) Sample(beCount int) ([]SampledWorkload, error) {
	c, err := s.Classify(beCount)
	if err != nil {
		return nil, err
	}
	var ctf, ctt []Workload
	for _, w := range Pairs(beCount) { // stable catalog order
		if c.Class[w] == CTFavoured {
			ctf = append(ctf, w)
		} else {
			ctt = append(ctt, w)
		}
	}
	bySeverity := func(ws []Workload) {
		sort.SliceStable(ws, func(i, j int) bool {
			si := c.UM[ws[i]].HPSlowdown()
			sj := c.UM[ws[j]].HPSlowdown()
			if si != sj {
				return si < sj
			}
			return ws[i].String() < ws[j].String()
		})
	}
	bySeverity(ctf)
	bySeverity(ctt)

	nf, nt := SampleCTF, SampleCTT
	if len(ctf) < nf {
		nt += nf - len(ctf)
		nf = len(ctf)
	}
	if len(ctt) < nt {
		nf += nt - len(ctt)
		nt = len(ctt)
		if nf > len(ctf) {
			nf = len(ctf)
		}
	}
	if nf+nt == 0 {
		return nil, fmt.Errorf("experiments: empty classification")
	}

	out := make([]SampledWorkload, 0, nf+nt)
	for _, w := range spaced(ctf, nf) {
		out = append(out, SampledWorkload{Workload: w, Class: CTFavoured})
	}
	for _, w := range spaced(ctt, nt) {
		out = append(out, SampledWorkload{Workload: w, Class: CTThwarted})
	}
	return out, nil
}

// spaced picks n evenly spaced elements from ws (all of ws if n >= len).
func spaced(ws []Workload, n int) []Workload {
	if n >= len(ws) {
		return ws
	}
	if n <= 0 {
		return nil
	}
	out := make([]Workload, 0, n)
	if n == 1 {
		return ws[len(ws)/2 : len(ws)/2+1]
	}
	for i := 0; i < n; i++ {
		idx := i * (len(ws) - 1) / (n - 1)
		out = append(out, ws[idx])
	}
	// Spacing can repeat indices when n is close to len(ws); dedup while
	// preserving order, then top up from unused elements.
	seen := make(map[Workload]bool, n)
	dedup := out[:0]
	for _, w := range out {
		if !seen[w] {
			seen[w] = true
			dedup = append(dedup, w)
		}
	}
	for _, w := range ws {
		if len(dedup) >= n {
			break
		}
		if !seen[w] {
			seen[w] = true
			dedup = append(dedup, w)
		}
	}
	return dedup
}

// WithBECount returns a copy of the sampled workloads re-targeted at a
// different BE count (Figures 6–8 sweep the number of employed cores while
// keeping the application pairs fixed).
func WithBECount(sample []SampledWorkload, beCount int) []SampledWorkload {
	out := make([]SampledWorkload, len(sample))
	for i, sw := range sample {
		sw.Workload.BECount = beCount
		out[i] = sw
	}
	return out
}
