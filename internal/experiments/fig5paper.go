package experiments

import (
	"fmt"

	"dicer/internal/report"
)

// The paper's Figure 5 names its 120 sampled workloads on the x-axis.
// This file carries the pairs that are legible in the published figure
// (a few labels are typeset too small to read reliably and are omitted),
// normalised to this catalog's naming: "HP BE". Running exactly these
// pairs — rather than this repo's own representative sample — gives the
// closest like-for-like comparison with the published panels.

// paperFig5CTF are CT-Favoured-panel workloads from the figure (HP, BE).
var paperFig5CTF = [][2]string{
	{"GemsFDTD1", "gcc_base5"}, {"milc1", "gobmk2"}, {"milc1", "gcc_base9"},
	{"streamcluster1", "gcc_base4"}, {"milc1", "gobmk1"}, {"bzip24", "namd1"},
	{"soplex2", "astar1"}, {"GemsFDTD1", "gcc_base2"}, {"GemsFDTD1", "gcc_base7"},
	{"bzip21", "sjeng1"}, {"milc1", "gcc_base3"}, {"GemsFDTD1", "gcc_base3"},
	{"milc1", "bzip23"}, {"milc1", "gcc_base1"}, {"milc1", "hmmer2"},
	{"milc1", "namd1"}, {"milc1", "perlbench2"}, {"perlbench2", "bwaves1"},
	{"milc1", "h264ref3"}, {"calculix1", "gobmk2"}, {"namd1", "calculix1"},
	{"hmmer1", "bodytrack1"}, {"bodytrack1", "h264ref3"}, {"blackscholes1", "tonto1"},
	{"astar2", "gobmk4"}, {"perlbench2", "gobmk2"}, {"libquantum1", "dedup1"},
	{"GemsFDTD1", "gobmk1"}, {"bzip21", "povray1"}, {"gcc_base8", "namd1"},
	{"dedup1", "calculix1"}, {"leslie3d1", "gobmk4"}, {"gcc_base7", "gcc_base4"},
	{"lbm1", "gcc_base4"}, {"swaptions1", "gromacs1"}, {"h264ref2", "bzip25"},
	{"gcc_base5", "hmmer2"}, {"lbm1", "gcc_base5"}, {"povray1", "hmmer2"},
	{"h264ref1", "gobmk3"}, {"gcc_base4", "dedup1"}, {"bzip22", "gromacs1"},
	{"gobmk4", "fluidanimate1"}, {"milc1", "gcc_base8"}, {"gcc_base2", "gobmk1"},
	{"bwaves1", "gcc_base8"}, {"GemsFDTD1", "gcc_base8"}, {"GemsFDTD1", "gcc_base4"},
	{"GemsFDTD1", "gcc_base6"}, {"soplex2", "gcc_base3"},
}

// paperFig5CTT are CT-Thwarted-panel workloads from the figure.
var paperFig5CTT = [][2]string{
	{"lbm1", "lbm1"}, {"leslie3d1", "leslie3d1"}, {"astar1", "mcf1"},
	{"libquantum1", "h264ref1"}, {"astar1", "soplex1"}, {"astar2", "leslie3d1"},
	{"bodytrack1", "libquantum1"}, {"bzip23", "mcf1"}, {"bzip23", "milc1"},
	{"mcf1", "bwaves1"}, {"mcf1", "libquantum1"}, {"mcf1", "streamcluster1"},
	{"omnetpp1", "GemsFDTD1"}, {"soplex1", "milc1"}, {"astar1", "leslie3d1"},
	{"astar1", "libquantum1"}, {"gcc_base1", "lbm1"}, {"omnetpp1", "lbm1"},
	{"omnetpp1", "leslie3d1"}, {"perlbench1", "lbm1"}, {"povray1", "libquantum1"},
	{"sjeng1", "bwaves1"}, {"soplex1", "omnetpp1"}, {"Xalan1", "Xalan1"},
	{"Xalan1", "zeusmp1"}, {"astar1", "gcc_base7"}, {"omnetpp1", "streamcluster1"},
	{"gobmk1", "leslie3d1"}, {"h264ref3", "soplex2"}, {"sphinx1", "bwaves1"},
	{"tonto1", "libquantum1"}, {"Xalan1", "streamcluster1"}, {"GemsFDTD1", "mcf1"},
	{"GemsFDTD1", "milc1"}, {"streamcluster1", "povray1"}, {"zeusmp1", "gcc_base3"},
	{"gcc_base7", "leslie3d1"}, {"bzip26", "streamcluster1"}, {"canneal1", "GemsFDTD1"},
}

// PaperFig5Workloads returns the workloads legible in the published
// Figure 5, labelled with the class the paper's panel placement implies.
func PaperFig5Workloads(beCount int) []SampledWorkload {
	out := make([]SampledWorkload, 0, len(paperFig5CTF)+len(paperFig5CTT))
	for _, p := range paperFig5CTF {
		out = append(out, SampledWorkload{
			Workload: Workload{HP: p[0], BE: p[1], BECount: beCount},
			Class:    CTFavoured,
		})
	}
	for _, p := range paperFig5CTT {
		out = append(out, SampledWorkload{
			Workload: Workload{HP: p[0], BE: p[1], BECount: beCount},
			Class:    CTThwarted,
		})
	}
	return out
}

// Figure5PaperResult holds the run of the paper's own named pairs plus
// the classification-agreement score between this model and the paper's
// panel placement.
type Figure5PaperResult struct {
	Figure5Result
	// Agree counts workloads whose measured class matches the panel the
	// paper placed them in; N is the total evaluated.
	Agree, N int
}

// AgreementPct returns the class-agreement percentage.
func (r Figure5PaperResult) AgreementPct() float64 {
	if r.N == 0 {
		return 0
	}
	return 100 * float64(r.Agree) / float64(r.N)
}

// Figure5Paper runs the paper's named Figure 5 workloads under all three
// policies and scores how often this model classifies each pair into the
// same CT-F/CT-T panel the paper did.
func (s *Suite) Figure5Paper(beCount int) (Figure5PaperResult, error) {
	paper := PaperFig5Workloads(beCount)
	var jobs []Job
	for _, sw := range paper {
		for _, p := range Policies {
			jobs = append(jobs, Job{W: sw.Workload, Policy: p, Horizon: s.cfg.HorizonPeriods})
		}
	}
	results, err := s.RunMany(jobs)
	if err != nil {
		return Figure5PaperResult{}, err
	}
	res := Figure5PaperResult{Figure5Result: Figure5Result{BECount: beCount}}
	for i, sw := range paper {
		row := Fig5Row{
			Workload: sw.Workload,
			Class:    sw.Class, // the paper's panel
			HPNorm:   map[PolicyName]float64{},
			BENorm:   map[PolicyName]float64{},
		}
		var um, ct Result
		for j, p := range Policies {
			r := results[i*len(Policies)+j]
			row.HPNorm[p] = r.HPNorm()
			row.BENorm[p] = r.BENorm()
			switch p {
			case UM:
				um = r
			case CT:
				ct = r
			}
		}
		measured := CTThwarted
		if ct.HPIPC > um.HPIPC*classifyMargin {
			measured = CTFavoured
		}
		res.N++
		if measured == sw.Class {
			res.Agree++
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the paper-pair run with the agreement headline.
func (r Figure5PaperResult) Table() *report.Table {
	t := r.Figure5Result.Table()
	t.Title = fmt.Sprintf(
		"Figure 5 (paper's named pairs): %d workloads, class agreement with the paper's panels %.0f%%",
		r.N, r.AgreementPct())
	return t
}
