package experiments

import (
	"reflect"
	"strings"
	"testing"

	"dicer/internal/core"
)

// The multi-HP grid is pinned three ways: a golden file over the
// rendered table (the user-visible byte stream), a Workers=1-vs-parallel
// equivalence check, and structural properties every cell must satisfy
// regardless of the drawn workload.

func TestGoldenMultiHP(t *testing.T) {
	s, err := NewSuite(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	grid, err := s.MultiHPGrid(20, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "multihp", grid.Table().String())
}

func TestMultiHPParallelSerialEquivalence(t *testing.T) {
	serial := eqSuite(t, 1)
	want, err := serial.MultiHPGrid(12, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7} {
		par := eqSuite(t, workers)
		got, err := par.MultiHPGrid(12, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d grid differs from serial:\n%s\nvs\n%s",
				workers, got.Table(), want.Table())
		}
	}
}

func TestMultiHPGridProperties(t *testing.T) {
	s := eqSuite(t, 0)
	m, budget := 20, 16
	grid, err := s.MultiHPGrid(m, 2, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != 7 {
		t.Fatalf("expected 7 cells, got %d", len(grid.Cells))
	}
	byLabel := map[string]MultiHPCell{}
	for _, c := range grid.Cells {
		byLabel[c.Label] = c
	}

	// Clustered under the real 16-CLOS budget must run M=20 apps within
	// at most 15 HP groups and keep everyone within SLO-relevant bounds.
	cl := byLabel["clustered"]
	if cl.Err != "" {
		t.Fatalf("clustered cell failed: %s", cl.Err)
	}
	if cl.Outcome.NumGroups < 1 || cl.Outcome.NumGroups > budget-1 {
		t.Fatalf("clustered groups %d outside [1,%d]", cl.Outcome.NumGroups, budget-1)
	}
	if cl.Outcome.MaxSlowdown < 1 {
		t.Fatalf("max slowdown %g < 1", cl.Outcome.MaxSlowdown)
	}
	if cl.Outcome.Conformance < 0 || cl.Outcome.Conformance > 1 {
		t.Fatalf("conformance %g outside [0,1]", cl.Outcome.Conformance)
	}

	// Single always collapses to one group.
	if sg := byLabel["single"]; sg.Err != "" || sg.Outcome.NumGroups != 1 {
		t.Fatalf("single cell: err=%q groups=%d", sg.Err, sg.Outcome.NumGroups)
	}

	// Per-app under the real budget is infeasible at M=20 (needs 21 CLOS
	// ids) — and so is the fantasy cell with M+1 ids, because the cache
	// itself runs out: 20 apps x 1 CAT-minimum way exceed the HP way
	// budget. Per-app isolation past the budget is not merely an id
	// shortage, which is exactly why the spill baseline exists.
	if pa := byLabel["per-app"]; pa.Err == "" {
		t.Fatalf("per-app at M=%d under %d CLOS should be infeasible", m, budget)
	}
	if fantasy := byLabel["per-app/21-clos"]; fantasy.Err == "" {
		t.Fatalf("fantasy per-app at M=%d should still be ways-infeasible", m)
	}

	// The spill baseline always fits: per-app CLOS ids until they run
	// out, the overflow pooled in the last HP group.
	sp := byLabel["per-app-spill"]
	if sp.Err != "" {
		t.Fatalf("per-app-spill cell failed: %s", sp.Err)
	}
	if sp.Outcome.NumGroups != budget-1 {
		t.Fatalf("spill groups = %d, want %d", sp.Outcome.NumGroups, budget-1)
	}

	table := grid.Table().String()
	if !strings.Contains(table, "infeasible") {
		t.Fatalf("table does not surface the infeasible cell:\n%s", table)
	}
}

// The workload draw is a pure function of the seed.
func TestMultiHPWorkloadDeterministic(t *testing.T) {
	a1, b1 := multiHPWorkload(MultiHPSpec{M: 20, BECount: 2, Seed: 7})
	a2, b2 := multiHPWorkload(MultiHPSpec{M: 20, BECount: 2, Seed: 7})
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(b1, b2) {
		t.Fatal("same seed drew different workloads")
	}
	a3, _ := multiHPWorkload(MultiHPSpec{M: 20, BECount: 2, Seed: 8})
	if reflect.DeepEqual(a1, a3) {
		t.Fatal("different seeds drew identical HP sets")
	}
}

func TestRunMultiHPValidation(t *testing.T) {
	s := eqSuite(t, 1)
	if _, err := s.RunMultiHP(MultiHPSpec{M: 0, CLOSBudget: 4}); err == nil {
		t.Fatal("M=0 accepted")
	}
	if _, err := s.RunMultiHP(MultiHPSpec{M: 2, CLOSBudget: 1}); err == nil {
		t.Fatal("CLOS budget 1 accepted")
	}
	// Per-app beyond the budget surfaces the planner's refusal.
	if _, err := s.RunMultiHP(MultiHPSpec{
		M: 8, CLOSBudget: 4, Grouping: core.GroupingPerApp,
	}); err == nil {
		t.Fatal("per-app with 8 apps under 4 CLOS accepted")
	}
}
