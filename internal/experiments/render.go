package experiments

import (
	"fmt"

	"dicer/internal/machine"
	"dicer/internal/report"
)

// Table1 renders the platform and DICER configuration, mirroring the
// paper's Table 1.
func (s *Suite) Table1() *report.Table {
	m := s.cfg.Machine
	d := s.cfg.DICER
	t := report.NewTable("Table 1: system configuration", "Parameter", "Value")
	t.AddRow("Processor", fmt.Sprintf("%d cores, %.1f GHz, SMT disabled", m.Cores, m.FreqGHz))
	t.AddRow("LLC", fmt.Sprintf("%d MB, %d-way set associative", m.LLCBytes>>20, m.LLCWays))
	t.AddRow("Memory bandwidth", fmt.Sprintf("%.1f Gbps", m.Link.CapacityGBps))
	t.AddRow("Monitoring period", fmt.Sprintf("T = %g sec", d.PeriodSec))
	t.AddRow("BW saturation threshold", fmt.Sprintf("MemBW_threshold = %g Gbps", d.BWThresholdGbps))
	t.AddRow("Phase detection threshold", fmt.Sprintf("phase_threshold = %.0f%%", d.PhaseThreshold*100))
	t.AddRow("IPC stability percentage", fmt.Sprintf("a = %.0f%%", d.StabilityAlpha*100))
	return t
}

// Table renders Figure 1 as a table of CDF values.
func (r Figure1Result) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 1: CDF of HP slowdown, %d workloads, %d BEs (%% of workloads with slowdown <= x)",
			r.N, r.BECount),
		"Slowdown", "UM", "CT")
	for i, tick := range r.Ticks {
		t.AddRowf(fmt.Sprintf("%.1f", tick), r.UMCDF[i], r.CTCDF[i])
	}
	return t
}

// Table renders Figure 2 as a table of CDF values by way count.
func (r Figure2Result) Table() *report.Table {
	t := report.NewTable(
		"Figure 2: CDF of minimum LLC ways needed alone for a fraction of full-LLC performance (% of applications)",
		"Ways", "90%", "95%", "99%")
	for w := 1; w <= r.Ways; w++ {
		t.AddRowf(w, r.CDF[0][w-1], r.CDF[1][w-1], r.CDF[2][w-1])
	}
	return t
}

// Table renders Figure 3 as the static partition sweep.
func (r Figure3Result) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 3: HP slowdown vs static LLC ways, %s (HP) + %dx %s (BEs); UM = %.3f, best = %d ways",
			r.HP, r.BECount, r.BE, r.UM, r.BestWays),
		"HP ways", "Slowdown")
	for i, w := range r.HPWays {
		t.AddRowf(w, r.Slowdown[i])
	}
	return t
}

// Table renders Figure 4 as scatter points.
func (r Figure4Result) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 4: effective utilisation vs HP slowdown, %d-workload sample, %d BEs",
			len(r.Points)/2, r.BECount),
		"Workload", "Class", "Policy", "Slowdown", "EFU")
	for _, p := range r.Points {
		t.AddRowf(p.Workload.String(), string(p.Class), string(p.Policy), p.Slowdown, p.EFU)
	}
	return t
}

// Table renders Figure 5 as per-workload normalised IPCs.
func (r Figure5Result) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 5: normalised HP and BE IPC per workload, %d BEs (CT-F first)", r.BECount),
		"Workload", "Class",
		"HP:UM", "HP:CT", "HP:DICER",
		"BE:UM", "BE:CT", "BE:DICER")
	for _, row := range r.Rows {
		t.AddRowf(row.Workload.String(), string(row.Class),
			row.HPNorm[UM], row.HPNorm[CT], row.HPNorm[DICER],
			row.BENorm[UM], row.BENorm[CT], row.BENorm[DICER])
	}
	return t
}

// Table renders Figure 6 as geomean EFU by core count.
func (r Figure6Result) Table() *report.Table {
	t := report.NewTable(
		"Figure 6: geometric mean effective utilisation vs employed cores",
		append([]string{"Policy"}, coresHeaders(r.CoreCounts)...)...)
	for _, p := range Policies {
		cells := []interface{}{string(p)}
		for _, v := range r.EFU[p] {
			cells = append(cells, v)
		}
		t.AddRowf(cells...)
	}
	return t
}

// Tables renders Figure 7, one table per SLO level.
func (r Figure7Result) Tables() []*report.Table {
	var out []*report.Table
	for _, slo := range r.SLOs {
		t := report.NewTable(
			fmt.Sprintf("Figure 7: %% of workloads achieving SLO = %.0f%% vs employed cores", slo*100),
			append([]string{"Policy"}, coresHeaders(r.CoreCounts)...)...)
		for _, p := range Policies {
			cells := []interface{}{string(p)}
			for _, v := range r.Achieved[slo][p] {
				cells = append(cells, fmt.Sprintf("%.1f", v))
			}
			t.AddRowf(cells...)
		}
		out = append(out, t)
	}
	return out
}

// Tables renders Figure 8, one table per (lambda, SLO).
func (r Figure8Result) Tables() []*report.Table {
	var out []*report.Table
	for _, lambda := range r.Lambdas {
		for _, slo := range r.SLOs {
			t := report.NewTable(
				fmt.Sprintf("Figure 8: geomean SUCI vs employed cores (lambda = %g, SLO = %.0f%%)",
					lambda, slo*100),
				append([]string{"Policy"}, coresHeaders(r.CoreCounts)...)...)
			for _, p := range Policies {
				cells := []interface{}{string(p)}
				for _, v := range r.SUCI[lambda][slo][p] {
					cells = append(cells, v)
				}
				t.AddRowf(cells...)
			}
			out = append(out, t)
		}
	}
	return out
}

// Table renders the headline claims.
func (r HeadlineResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Headline claims (DICER, 1 HP + %d BEs)", r.BECount),
		"Metric", "Measured", "Paper")
	t.AddRow("workloads achieving SLO 80%", report.Pct(r.PctSLO80), "> 90%")
	t.AddRow("workloads achieving SLO 90%", report.Pct(r.PctSLO90), "~ 74%")
	t.AddRow("geomean effective utilisation", report.F3(r.GeoMeanEFU), "~ 0.60 (mean)")
	t.AddRow("mean effective utilisation", report.F3(r.MeanEFU), "~ 0.60")
	return t
}

func coresHeaders(cores []int) []string {
	out := make([]string, len(cores))
	for i, c := range cores {
		out[i] = fmt.Sprintf("%d", c)
	}
	return out
}

// MachineSummary formats a one-line machine description for CLI banners.
func MachineSummary(m machine.Machine) string {
	return fmt.Sprintf("%d cores @ %.1f GHz, %d MB %d-way LLC, %.1f Gbps link",
		m.Cores, m.FreqGHz, m.LLCBytes>>20, m.LLCWays, m.Link.CapacityGBps)
}
