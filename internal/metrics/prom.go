package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"dicer/internal/obs"
)

// Exporter aggregates trace records into Prometheus-text-format metrics:
// the live side of the observability layer. It implements obs.Sink, so it
// sits next to a ring or JSONL writer on a running scenario and is
// scraped concurrently via WriteTo (the /metrics endpoint of
// dicer-sim -serve).
//
// Exported series (all prefixed dicer_):
//
//	dicer_records_total              counter  records observed
//	dicer_runs_total                 counter  completed runs (serve loops call AddRun)
//	dicer_decisions_total{kind}      counter  controller decision events by kind
//	dicer_saturated_periods_total    counter  periods with the link saturated
//	dicer_tolerated_faults_total     counter  periods whose actuation fault was tolerated
//	dicer_guard_violations_total     counter  periods that tripped the invariant guard
//	dicer_chaos_faults_total{type}   counter  injected faults by class
//	dicer_period                     gauge    last period index
//	dicer_hp_ways                    gauge    last intended HP partition size
//	dicer_hp_ipc                     gauge    last HP mean IPC
//	dicer_be_mean_ipc                gauge    last BE mean IPC
//	dicer_hp_bw_gbps                 gauge    last HP bandwidth
//	dicer_total_bw_gbps              gauge    last total bandwidth
//	dicer_hp_occupancy_bytes         gauge    last HP LLC occupancy
//	dicer_saturated                  gauge    1 when the last period was saturated
//
// An Exporter is safe for concurrent Emit and WriteTo.
type Exporter struct {
	mu sync.Mutex

	records   int
	runs      int
	decisions map[string]int
	saturated int
	tolerated int
	guard     int
	faults    map[string]int

	last    obs.Record
	haveRec bool
}

// NewExporter creates an empty exporter.
func NewExporter() *Exporter {
	return &Exporter{
		decisions: map[string]int{},
		faults:    map[string]int{},
	}
}

// Emit implements obs.Sink.
func (e *Exporter) Emit(r *obs.Record) {
	e.mu.Lock()
	e.records++
	for _, d := range r.Decisions {
		e.decisions[d]++
	}
	if r.Saturated {
		e.saturated++
	}
	if r.Tolerated {
		e.tolerated++
	}
	if r.Guard != "" {
		e.guard++
	}
	e.faults["dropout"] += r.Faults.Dropouts
	e.faults["frozen"] += r.Faults.FrozenReads
	e.faults["jittered"] += r.Faults.JitteredReads
	e.faults["write_rejected"] += r.Faults.WritesRejected
	e.faults["write_delayed"] += r.Faults.WritesDelayed
	e.last = *r
	e.last.Decisions = nil // the slice aliases the recorder's scratch
	e.haveRec = true
	e.mu.Unlock()
}

// AddRun counts one completed run (the serve loop calls it per lap).
func (e *Exporter) AddRun() {
	e.mu.Lock()
	e.runs++
	e.mu.Unlock()
}

// Records returns the number of records observed.
func (e *Exporter) Records() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.records
}

// WriteTo renders the metrics in Prometheus text exposition format.
// Output ordering is deterministic (label values sorted).
func (e *Exporter) WriteTo(w io.Writer) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cw := &countWriter{w: w}

	writeMetric(cw, "dicer_records_total", "counter",
		"Monitoring-period trace records observed.", float64(e.records))
	writeMetric(cw, "dicer_runs_total", "counter",
		"Completed scenario runs.", float64(e.runs))
	writeLabelled(cw, "dicer_decisions_total", "counter",
		"Controller decision events by kind.", "kind", e.decisions)
	writeMetric(cw, "dicer_saturated_periods_total", "counter",
		"Periods with the memory link saturated.", float64(e.saturated))
	writeMetric(cw, "dicer_tolerated_faults_total", "counter",
		"Periods whose injected actuation fault was tolerated.", float64(e.tolerated))
	writeMetric(cw, "dicer_guard_violations_total", "counter",
		"Periods that tripped the runtime invariant guard.", float64(e.guard))
	writeLabelled(cw, "dicer_chaos_faults_total", "counter",
		"Injected chaos faults by class.", "type", e.faults)

	if e.haveRec {
		r := e.last
		writeMetric(cw, "dicer_period", "gauge", "Last monitoring period index.", float64(r.Period))
		writeMetric(cw, "dicer_hp_ways", "gauge", "Intended HP partition size (ways).", float64(r.HPWays))
		writeMetric(cw, "dicer_hp_ipc", "gauge", "HP mean IPC over the last period.", r.HPIPC)
		writeMetric(cw, "dicer_be_mean_ipc", "gauge", "BE mean IPC over the last period.", r.BEMeanIPC)
		writeMetric(cw, "dicer_hp_bw_gbps", "gauge", "HP memory bandwidth over the last period.", r.HPBWGbps)
		writeMetric(cw, "dicer_total_bw_gbps", "gauge", "Total memory bandwidth over the last period.", r.TotalGbps)
		writeMetric(cw, "dicer_hp_occupancy_bytes", "gauge", "HP LLC occupancy at last period end.", r.HPOccBytes)
		sat := 0.0
		if r.Saturated {
			sat = 1
		}
		writeMetric(cw, "dicer_saturated", "gauge", "1 when the last period was saturated.", sat)
	}
	return cw.n, cw.err
}

// countWriter tracks bytes written and the first error, so the metric
// writers stay unconditional.
type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func writeHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func writeMetric(w io.Writer, name, typ, help string, v float64) {
	writeHeader(w, name, typ, help)
	fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
}

func writeLabelled(w io.Writer, name, typ, help, label string, vals map[string]int) {
	writeHeader(w, name, typ, help)
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, vals[k])
	}
}

// formatValue renders a float the way Prometheus clients do: integers
// without an exponent, everything else in Go's shortest exact form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
