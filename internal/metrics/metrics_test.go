package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSlowdown(t *testing.T) {
	if !almost(Slowdown(1.0, 0.5), 2.0) {
		t.Fatal("halved IPC should be 2x slowdown")
	}
	if !almost(Slowdown(1.0, 1.0), 1.0) {
		t.Fatal("unchanged IPC should be 1x")
	}
	if !math.IsInf(Slowdown(1, 0), 1) {
		t.Fatal("zero IPC should be infinite slowdown")
	}
	if !math.IsInf(Slowdown(0, 1), 1) {
		t.Fatal("zero alone IPC is degenerate")
	}
}

func TestNormIPC(t *testing.T) {
	if !almost(NormIPC(0.9, 1.0), 0.9) {
		t.Fatal("norm IPC arithmetic")
	}
	if NormIPC(1, 0) != 0 {
		t.Fatal("zero alone IPC should normalise to 0")
	}
}

func TestEFUPaperIdentities(t *testing.T) {
	// No performance loss anywhere: EFU = 1 (paper: "a value of 1 means
	// no performance loss").
	if !almost(EFU([]float64{1, 1, 1, 1}), 1) {
		t.Fatal("perfect co-location should give EFU 1")
	}
	// Harmonic mean: 10 apps at half speed -> 0.5.
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = 0.5
	}
	if !almost(EFU(xs), 0.5) {
		t.Fatal("uniform half speed should give EFU 0.5")
	}
	// Eq. 1 with mixed values: 2 / (1/1 + 1/0.5) = 2/3.
	if !almost(EFU([]float64{1, 0.5}), 2.0/3) {
		t.Fatal("EFU mixed-value identity")
	}
	if EFU(nil) != 0 {
		t.Fatal("empty EFU should be 0")
	}
	if EFU([]float64{0.5, 0}) != 0 {
		t.Fatal("a stalled app should zero the EFU")
	}
}

// Property: EFU lies in (0, 1] for inputs in (0, 1], is symmetric, and is
// dominated by the worst normalised IPC.
func TestPropertyEFU(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 10 {
			raw = raw[:10]
		}
		xs := make([]float64, len(raw))
		lo := 1.0
		for i, r := range raw {
			xs[i] = float64(r%100+1) / 100
			if xs[i] < lo {
				lo = xs[i]
			}
		}
		e := EFU(xs)
		if e <= 0 || e > 1+1e-12 {
			return false
		}
		// Harmonic mean is at most the arithmetic mean and at least min.
		return e >= lo-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSLOAchieved(t *testing.T) {
	if !SLOAchieved(0.9, 1.0, 0.9) {
		t.Fatal("exactly at the SLO should pass (>= in Eq. 5)")
	}
	if SLOAchieved(0.89, 1.0, 0.9) {
		t.Fatal("below the SLO should fail")
	}
	if SLOAchieved(1, 0, 0.9) {
		t.Fatal("degenerate alone IPC should fail")
	}
}

func TestSUCI(t *testing.T) {
	if SUCI(false, 0.9, 1) != 0 {
		t.Fatal("missed SLO must zero SUCI (Eq. 4)")
	}
	if !almost(SUCI(true, 0.8, 1), 0.8) {
		t.Fatal("lambda=1 SUCI should equal EFU")
	}
	if !almost(SUCI(true, 0.64, 0.5), 0.8) {
		t.Fatal("lambda=0.5 SUCI should be sqrt(EFU)")
	}
	if !almost(SUCI(true, 0.8, 2), 0.64) {
		t.Fatal("lambda=2 SUCI should be EFU^2")
	}
	if SUCI(true, -0.5, 1) != 0 {
		t.Fatal("negative EFU clamps to 0")
	}
}

// Property: SUCI in [0,1]; higher lambda penalises low EFU more.
func TestPropertySUCI(t *testing.T) {
	f := func(efuRaw uint8, l1Raw, l2Raw uint8) bool {
		efu := float64(efuRaw%101) / 100
		l1 := float64(l1Raw%40)/10 + 0.1
		l2 := l1 + float64(l2Raw%20)/10 + 0.1
		s1 := SUCI(true, efu, l1)
		s2 := SUCI(true, efu, l2)
		if s1 < 0 || s1 > 1 || s2 < 0 || s2 > 1 {
			return false
		}
		return s2 <= s1+1e-12 // larger lambda never raises SUCI (EFU<=1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{4, 1}), 2) {
		t.Fatal("geomean(4,1) should be 2")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
	// Zeros are clamped, not annihilating.
	if GeoMean([]float64{0, 1}) <= 0 {
		t.Fatal("zero entry should clamp, not zero the mean")
	}
}

func TestHarmonicMean(t *testing.T) {
	if !almost(HarmonicMean([]float64{1, 0.5}), 2.0/3) {
		t.Fatal("harmonic mean identity")
	}
	if HarmonicMean(nil) != 0 || HarmonicMean([]float64{1, 0}) != 0 {
		t.Fatal("degenerate harmonic means should be 0")
	}
}

func TestMeanAndFraction(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	got := Fraction([]float64{1, 2, 3, 4}, func(x float64) bool { return x > 2 })
	if !almost(got, 0.5) {
		t.Fatal("fraction")
	}
	if Fraction(nil, func(float64) bool { return true }) != 0 {
		t.Fatal("empty fraction")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almost(got, tc.want) {
			t.Fatalf("CDF(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
	if c.Len() != 4 {
		t.Fatal("len")
	}
	if got := NewCDF(nil).At(1); got != 0 {
		t.Fatal("empty CDF should be 0 everywhere")
	}
}

func TestQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if got := c.Quantile(0.5); got != 20 {
		t.Fatalf("median = %g, want 20", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Fatalf("q0 = %g", got)
	}
	if got := c.Quantile(1); got != 40 {
		t.Fatalf("q1 = %g", got)
	}
	if !math.IsNaN(NewCDF(nil).Quantile(0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

// Property: CDF is monotone and bounded, quantile inverts it.
func TestPropertyCDF(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		c := NewCDF(xs)
		prev := 0.0
		for x := -1.0; x <= 256; x += 16 {
			v := c.At(x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		// Quantile consistency: at least q of the mass is <= Quantile(q).
		for _, q := range []float64{0.1, 0.5, 0.9} {
			if c.At(c.Quantile(q)) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate01(t *testing.T) {
	if err := Validate01("x", 0.5); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-0.1, 1.1, math.NaN()} {
		if err := Validate01("x", v); err == nil {
			t.Fatalf("expected error for %g", v)
		}
	}
}

func BenchmarkEFU(b *testing.B) {
	xs := []float64{0.9, 0.5, 0.6, 0.7, 0.8, 0.4, 0.9, 0.5, 0.6, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EFU(xs)
	}
}
