package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// FleetNode is one node's contribution to a fleet sample (a heartbeat
// reduced to what the exporter publishes).
type FleetNode struct {
	Node        int
	Frozen      bool
	Lost        bool
	Draining    bool
	Retired     bool
	BECount     int
	HPNorm      float64
	TotalGbps   float64
	Saturated   bool
	SLOViolated bool
}

// FleetSample is one cluster monitoring period as seen by the fleet
// exporter. The fleet package converts its trace records into this
// shape (metrics cannot import fleet — fleet already imports metrics).
type FleetSample struct {
	Period   int
	Arrivals int
	Admitted int
	Rejected int
	Placed   int
	Requeued int
	Dropped  int
	Done     int

	QueueLen int
	Running  int
	Freezes  int
	Losses   int

	// Evicted counts BE jobs migrated off burning nodes this period;
	// NodesLive is the working fleet size under the autoscaler (zero for
	// static fleets).
	Evicted   int
	NodesLive int

	// Control-loop decision counts for the period, derived from the
	// cluster record's events: burn-rate migrations, repartition-first
	// repacks, autoscale ups/downs. Quarantined is the number of nodes
	// the migration engine is holding out of placement; Incidents the
	// forensic bundles the flight recorder sealed this period.
	Migrations  int
	Repacks     int
	ScaleUps    int
	ScaleDowns  int
	Quarantined int
	Incidents   int

	SLOViolations int
	FleetEFU      float64

	Nodes []FleetNode
}

// FleetExporter aggregates cluster periods into Prometheus-text-format
// metrics — the fleet analogue of Exporter, scraped on dicer-fleet
// -serve's /metrics endpoint.
//
// Exported series (all prefixed dicer_fleet_):
//
//	dicer_fleet_periods_total               counter  cluster periods observed
//	dicer_fleet_arrivals_total              counter  BE job arrivals
//	dicer_fleet_admitted_total              counter  arrivals admitted to the queue
//	dicer_fleet_rejected_total              counter  arrivals rejected (queue full)
//	dicer_fleet_placements_total            counter  job placements (incl. re-placements)
//	dicer_fleet_requeued_total              counter  orphans re-queued after node loss
//	dicer_fleet_dropped_total               counter  jobs dropped after exhausting retries
//	dicer_fleet_done_total                  counter  jobs completed
//	dicer_fleet_node_freezes_total          counter  node freeze events
//	dicer_fleet_node_losses_total           counter  node loss events
//	dicer_fleet_evictions_total             counter  BE jobs migrated off burning nodes
//	dicer_fleet_migrations_total            counter  SLO-burn migration decisions
//	dicer_fleet_repacks_total               counter  repartition-first repacks
//	dicer_fleet_scale_ups_total             counter  autoscaler scale-ups
//	dicer_fleet_scale_downs_total           counter  autoscaler drains/retires
//	dicer_fleet_incidents_total             counter  forensic bundles sealed
//	dicer_fleet_slo_violations_total        counter  (node, period) HP SLO misses
//	dicer_fleet_quarantined                 gauge    nodes held out of placement
//	dicer_fleet_period                      gauge    last period index
//	dicer_fleet_queue_len                   gauge    jobs waiting
//	dicer_fleet_running                     gauge    jobs running
//	dicer_fleet_efu                         gauge    last period's fleet EFU
//	dicer_fleet_node_state{node}            gauge    0 live, 1 frozen, 2 lost
//	dicer_fleet_node_be_count{node}         gauge    BE jobs on the node
//	dicer_fleet_node_hp_norm{node}          gauge    HP normalised IPC
//	dicer_fleet_node_total_bw_gbps{node}    gauge    node memory bandwidth
//
// A FleetExporter is safe for concurrent Observe and WriteTo.
type FleetExporter struct {
	mu sync.Mutex

	periods    int
	arrivals   int
	admitted   int
	rejected   int
	placements int
	requeued   int
	dropped    int
	done       int
	freezes    int
	losses     int
	evicted    int
	sloViol    int
	migrations int
	repacks    int
	scaleUps   int
	scaleDowns int
	incidents  int

	last    FleetSample
	haveRec bool
}

// NewFleetExporter creates an empty fleet exporter.
func NewFleetExporter() *FleetExporter { return &FleetExporter{} }

// Observe folds one cluster period into the exporter.
func (e *FleetExporter) Observe(s FleetSample) {
	e.mu.Lock()
	e.periods++
	e.arrivals += s.Arrivals
	e.admitted += s.Admitted
	e.rejected += s.Rejected
	e.placements += s.Placed
	e.requeued += s.Requeued
	e.dropped += s.Dropped
	e.done += s.Done
	e.freezes += s.Freezes
	e.losses += s.Losses
	e.evicted += s.Evicted
	e.sloViol += s.SLOViolations
	e.migrations += s.Migrations
	e.repacks += s.Repacks
	e.scaleUps += s.ScaleUps
	e.scaleDowns += s.ScaleDowns
	e.incidents += s.Incidents
	e.last = s
	e.last.Nodes = append([]FleetNode(nil), s.Nodes...)
	e.haveRec = true
	e.mu.Unlock()
}

// Periods returns the number of cluster periods observed.
func (e *FleetExporter) Periods() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.periods
}

// WriteTo renders the metrics in Prometheus text exposition format with
// deterministic ordering.
func (e *FleetExporter) WriteTo(w io.Writer) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cw := &countWriter{w: w}

	writeMetric(cw, "dicer_fleet_periods_total", "counter",
		"Cluster monitoring periods observed.", float64(e.periods))
	writeMetric(cw, "dicer_fleet_arrivals_total", "counter",
		"Best-effort job arrivals.", float64(e.arrivals))
	writeMetric(cw, "dicer_fleet_admitted_total", "counter",
		"Arrivals admitted to the queue.", float64(e.admitted))
	writeMetric(cw, "dicer_fleet_rejected_total", "counter",
		"Arrivals rejected by admission control.", float64(e.rejected))
	writeMetric(cw, "dicer_fleet_placements_total", "counter",
		"Job placements, including re-placements after node loss.", float64(e.placements))
	writeMetric(cw, "dicer_fleet_requeued_total", "counter",
		"Orphaned jobs re-queued after node loss.", float64(e.requeued))
	writeMetric(cw, "dicer_fleet_dropped_total", "counter",
		"Jobs dropped after exhausting placement attempts.", float64(e.dropped))
	writeMetric(cw, "dicer_fleet_done_total", "counter",
		"Jobs completed.", float64(e.done))
	writeMetric(cw, "dicer_fleet_node_freezes_total", "counter",
		"Node freeze events.", float64(e.freezes))
	writeMetric(cw, "dicer_fleet_node_losses_total", "counter",
		"Node loss events.", float64(e.losses))
	writeMetric(cw, "dicer_fleet_evictions_total", "counter",
		"BE jobs migrated off burning nodes.", float64(e.evicted))
	writeMetric(cw, "dicer_fleet_migrations_total", "counter",
		"SLO-burn migration decisions (one per burning node acted on).", float64(e.migrations))
	writeMetric(cw, "dicer_fleet_repacks_total", "counter",
		"Repartition-first repacks (cache plans re-clustered fleet-wide).", float64(e.repacks))
	writeMetric(cw, "dicer_fleet_scale_ups_total", "counter",
		"Autoscaler scale-up decisions.", float64(e.scaleUps))
	writeMetric(cw, "dicer_fleet_scale_downs_total", "counter",
		"Autoscaler drain/retire decisions.", float64(e.scaleDowns))
	writeMetric(cw, "dicer_fleet_incidents_total", "counter",
		"Forensic incident bundles sealed by the flight recorder.", float64(e.incidents))
	writeMetric(cw, "dicer_fleet_slo_violations_total", "counter",
		"Per-node, per-period HP SLO misses.", float64(e.sloViol))

	if e.haveRec {
		s := e.last
		writeMetric(cw, "dicer_fleet_period", "gauge", "Last cluster period index.", float64(s.Period))
		writeMetric(cw, "dicer_fleet_queue_len", "gauge", "Jobs waiting for placement.", float64(s.QueueLen))
		writeMetric(cw, "dicer_fleet_running", "gauge", "Jobs running across the fleet.", float64(s.Running))
		writeMetric(cw, "dicer_fleet_efu", "gauge", "Last period's fleet EFU.", s.FleetEFU)
		if s.NodesLive > 0 {
			writeMetric(cw, "dicer_fleet_nodes_live", "gauge", "Working (non-retired, non-lost) nodes.", float64(s.NodesLive))
		}
		if s.Quarantined > 0 {
			writeMetric(cw, "dicer_fleet_quarantined", "gauge", "Nodes quarantined out of the placement candidate set.", float64(s.Quarantined))
		}

		nodes := append([]FleetNode(nil), s.Nodes...)
		sort.Slice(nodes, func(a, b int) bool { return nodes[a].Node < nodes[b].Node })
		writeFleetNodeGauge(cw, "dicer_fleet_node_state", "Node health: 0 live, 1 frozen, 2 lost, 3 retired.",
			nodes, func(n FleetNode) float64 {
				switch {
				case n.Retired:
					return 3
				case n.Lost:
					return 2
				case n.Frozen:
					return 1
				}
				return 0
			})
		writeFleetNodeGauge(cw, "dicer_fleet_node_be_count", "BE jobs running on the node.",
			nodes, func(n FleetNode) float64 { return float64(n.BECount) })
		writeFleetNodeGauge(cw, "dicer_fleet_node_hp_norm", "Node HP normalised IPC.",
			nodes, func(n FleetNode) float64 { return n.HPNorm })
		writeFleetNodeGauge(cw, "dicer_fleet_node_total_bw_gbps", "Node memory bandwidth.",
			nodes, func(n FleetNode) float64 { return n.TotalGbps })
	}
	return cw.n, cw.err
}

// writeFleetNodeGauge renders one per-node gauge family.
func writeFleetNodeGauge(w io.Writer, name, help string, nodes []FleetNode, val func(FleetNode) float64) {
	writeHeader(w, name, "gauge", help)
	for _, n := range nodes {
		fmt.Fprintf(w, "%s{node=\"%d\"} %s\n", name, n.Node, formatValue(val(n)))
	}
}
