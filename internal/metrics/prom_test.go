package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"dicer/internal/chaos"
	"dicer/internal/obs"
)

func exporterText(t *testing.T, e *Exporter) string {
	t.Helper()
	var buf bytes.Buffer
	n, err := e.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.String()
}

func wantLine(t *testing.T, text, line string) {
	t.Helper()
	if !strings.Contains(text, line+"\n") {
		t.Errorf("missing line %q in exposition:\n%s", line, text)
	}
}

func TestExporterAggregates(t *testing.T) {
	e := NewExporter()
	e.Emit(&obs.Record{
		Period: 0, HPIPC: 1.25, BEMeanIPC: 0.5, HPBWGbps: 4.5, TotalGbps: 55,
		Saturated: true, Decisions: []string{"saturated", "sample"},
		HPWays: 18, HPOccBytes: 2.5e6,
		Faults: chaos.Stats{Dropouts: 2, WritesRejected: 1},
	})
	e.Emit(&obs.Record{
		Period: 1, HPIPC: 1.3, TotalGbps: 20,
		Decisions: []string{"sample"},
		HPWays:    17, Tolerated: true, Guard: "MaskLegal: x",
		Faults: chaos.Stats{JitteredReads: 3},
	})
	e.AddRun()

	text := exporterText(t, e)
	wantLine(t, text, "dicer_records_total 2")
	wantLine(t, text, "dicer_runs_total 1")
	wantLine(t, text, `dicer_decisions_total{kind="sample"} 2`)
	wantLine(t, text, `dicer_decisions_total{kind="saturated"} 1`)
	wantLine(t, text, "dicer_saturated_periods_total 1")
	wantLine(t, text, "dicer_tolerated_faults_total 1")
	wantLine(t, text, "dicer_guard_violations_total 1")
	wantLine(t, text, `dicer_chaos_faults_total{type="dropout"} 2`)
	wantLine(t, text, `dicer_chaos_faults_total{type="jittered"} 3`)
	wantLine(t, text, `dicer_chaos_faults_total{type="write_rejected"} 1`)
	// Gauges reflect the last record.
	wantLine(t, text, "dicer_period 1")
	wantLine(t, text, "dicer_hp_ways 17")
	wantLine(t, text, "dicer_hp_ipc 1.3")
	wantLine(t, text, "dicer_total_bw_gbps 20")
	wantLine(t, text, "dicer_saturated 0")
	if e.Records() != 2 {
		t.Fatalf("Records() = %d, want 2", e.Records())
	}

	// Exposition must be deterministic: label keys sorted, two renders
	// byte-identical.
	if again := exporterText(t, e); again != text {
		t.Fatal("two WriteTo calls produced different expositions")
	}
	if strings.Index(text, `kind="sample"`) > strings.Index(text, `kind="saturated"`) {
		t.Fatal("decision label values not sorted")
	}
}

func TestExporterEmptyStillValid(t *testing.T) {
	text := exporterText(t, NewExporter())
	wantLine(t, text, "dicer_records_total 0")
	if strings.Contains(text, "dicer_period") {
		t.Fatal("gauges rendered before any record arrived")
	}
	// Every exposition line is either a comment or name[{labels}] value.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestExporterDoesNotAliasDecisions(t *testing.T) {
	e := NewExporter()
	dec := []string{"shrink"}
	e.Emit(&obs.Record{Period: 0, Decisions: dec})
	dec[0] = "CLOBBERED" // recorder scratch reuse
	text := exporterText(t, e)
	wantLine(t, text, `dicer_decisions_total{kind="shrink"} 1`)
	if strings.Contains(text, "CLOBBERED") {
		t.Fatal("exporter retained the caller's decision slice")
	}
}

// TestExporterConcurrent scrapes while emitting; run under -race this
// pins the lock discipline the /metrics endpoint depends on.
func TestExporterConcurrent(t *testing.T) {
	e := NewExporter()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e.Emit(&obs.Record{Period: i, Decisions: []string{"hold"}})
				e.AddRun()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if _, err := e.WriteTo(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if e.Records() != 800 {
		t.Fatalf("Records() = %d, want 800", e.Records())
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{17, "17"},
		{-3, "-3"},
		{1.25, "1.25"},
		{2.5e6, "2500000"},
		{0.30000000000000004, "0.30000000000000004"},
	}
	for _, tc := range cases {
		if got := formatValue(tc.in); got != tc.want {
			t.Errorf("formatValue(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
