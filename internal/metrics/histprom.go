package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePromHistogram renders one Prometheus histogram: cumulative
// le-labelled buckets (uppers[i] is bucket i's inclusive upper bound,
// cum[i] the cumulative count up to it), the running sum and the total
// count. The final +Inf bucket is emitted from the last cumulative
// entry, per the exposition format's requirement. The diagnostic layer
// (internal/diag) feeds its streaming histograms through here so every
// CLI exports them the same way.
func WritePromHistogram(w io.Writer, name, help string, uppers []float64, cum []uint64, sum float64, count uint64) {
	writeHeader(w, name, "histogram", help)
	for i := range uppers {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatLe(uppers[i]), cum[i])
	}
	fmt.Fprintf(w, "%s_sum %s\n", name, formatValue(sum))
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}

// WritePromGauge renders a single gauge sample.
func WritePromGauge(w io.Writer, name, help string, v float64) {
	writeMetric(w, name, "gauge", help, v)
}

// WritePromQuantiles renders precomputed quantile gauges under one
// metric name with a quantile label, sorted by the caller.
func WritePromQuantiles(w io.Writer, name, help string, qs, vals []float64) {
	writeHeader(w, name, "gauge", help)
	for i := range qs {
		fmt.Fprintf(w, "%s{quantile=%q} %s\n", name, strconv.FormatFloat(qs[i], 'g', -1, 64), formatValue(vals[i]))
	}
}

// formatLe renders a bucket bound the way Prometheus clients do, with
// +Inf spelled out.
func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
