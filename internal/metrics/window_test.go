package metrics

import (
	"testing"
	"testing/quick"
)

func TestWindowFillAndEvict(t *testing.T) {
	w := NewWindow(3)
	if w.Len() != 0 || w.Cap() != 3 {
		t.Fatal("fresh window state")
	}
	w.Push(1)
	w.Push(2)
	if w.Len() != 2 || !almost(w.Mean(), 1.5) {
		t.Fatalf("partial window: len %d mean %g", w.Len(), w.Mean())
	}
	w.Push(3)
	w.Push(10) // evicts 1
	if w.Len() != 3 {
		t.Fatalf("full window len %d", w.Len())
	}
	if !almost(w.Mean(), 5) {
		t.Fatalf("rolling mean %g, want (2+3+10)/3", w.Mean())
	}
	if w.Min() != 2 {
		t.Fatalf("min %g", w.Min())
	}
}

func TestWindowFractionAtLeast(t *testing.T) {
	w := NewWindow(4)
	for _, v := range []float64{0.5, 0.9, 1.0, 0.8} {
		w.Push(v)
	}
	if got := w.FractionAtLeast(0.9); !almost(got, 0.5) {
		t.Fatalf("fraction >= 0.9: %g", got)
	}
}

func TestWindowDegenerateSize(t *testing.T) {
	w := NewWindow(0) // clamps to 1
	w.Push(7)
	w.Push(9)
	if w.Len() != 1 || w.Mean() != 9 {
		t.Fatalf("size-1 window: len %d mean %g", w.Len(), w.Mean())
	}
	if NewWindow(2).Min() != 0 {
		t.Fatal("empty window min should be 0")
	}
}

// Property: rolling mean equals the mean of the last min(n, pushes) values.
func TestPropertyWindowMean(t *testing.T) {
	f := func(raw []uint8, sizeRaw uint8) bool {
		n := int(sizeRaw%10) + 1
		w := NewWindow(n)
		var all []float64
		for _, r := range raw {
			v := float64(r)
			w.Push(v)
			all = append(all, v)
		}
		if len(all) == 0 {
			return w.Len() == 0
		}
		start := 0
		if len(all) > n {
			start = len(all) - n
		}
		return almost(w.Mean(), Mean(all[start:]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSLOMonitor(t *testing.T) {
	m := NewSLOMonitor(1.0, 0.9, 4, 0.75)
	// Two conformant periods: window not yet full, no alarm.
	m.Observe(0.95)
	m.Observe(0.92)
	if m.Alarming() {
		t.Fatal("alarm before the window filled")
	}
	if !almost(m.Conformance(), 1) {
		t.Fatalf("conformance %g", m.Conformance())
	}
	// Two violations: conformance 0.5 < 0.75 and the window is full.
	m.Observe(0.5)
	m.Observe(0.6)
	if !almost(m.Conformance(), 0.5) {
		t.Fatalf("conformance %g", m.Conformance())
	}
	if !m.Alarming() {
		t.Fatal("expected alarm")
	}
	// Recovery: conformant periods push the violations out.
	for i := 0; i < 4; i++ {
		m.Observe(1.0)
	}
	if m.Alarming() {
		t.Fatal("alarm should clear after recovery")
	}
	// Exactly at the SLO counts as met (Eq. 5 is >=).
	m2 := NewSLOMonitor(1.0, 0.9, 1, 0.5)
	m2.Observe(0.9)
	if !almost(m2.Conformance(), 1) {
		t.Fatal("boundary IPC should meet the SLO")
	}
}

func TestSLOMonitorEmpty(t *testing.T) {
	m := NewSLOMonitor(1, 0.9, 3, 0.9)
	if m.Conformance() != 0 || m.Alarming() {
		t.Fatal("empty monitor state")
	}
}
