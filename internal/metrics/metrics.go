// Package metrics implements the evaluation arithmetic of the DICER paper:
// slowdown, normalised IPC, Effective Utilisation (EFU, Eq. 1), SLO
// conformance (Eq. 5), the SLO-Effective-Utilisation Combined Index (SUCI,
// Eq. 4), plus the aggregate helpers (geometric/harmonic means, CDFs) used
// to render the figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Slowdown returns how much slower an application runs co-located than
// alone: IPC_alone / IPC. A value of 1 means unaffected; 2 means twice as
// slow. Both IPCs must be positive.
func Slowdown(ipcAlone, ipc float64) float64 {
	if ipc <= 0 || ipcAlone <= 0 {
		return math.Inf(1)
	}
	return ipcAlone / ipc
}

// NormIPC returns IPC / IPC_alone, the paper's QoS measure (its Figure 5
// y-axis). 1 means no degradation.
func NormIPC(ipc, ipcAlone float64) float64 {
	if ipcAlone <= 0 {
		return 0
	}
	return ipc / ipcAlone
}

// EFU computes the Effective Utilisation of Eq. 1: the harmonic mean of
// the normalised IPCs of all co-located applications,
//
//	EFU = n / Σ_i (IPC_alone,i / IPC_i)
//
// normIPCs holds IPC_i/IPC_alone,i for every application (HP first by
// convention, though the metric is symmetric). The result is in (0, 1]
// when every application has positive normalised IPC.
func EFU(normIPCs []float64) float64 {
	if len(normIPCs) == 0 {
		return 0
	}
	var denom float64
	for _, v := range normIPCs {
		if v <= 0 {
			return 0
		}
		denom += 1 / v
	}
	return float64(len(normIPCs)) / denom
}

// SLOAchieved evaluates Eq. 5's c_SLO: whether the HP's co-located IPC
// reaches the slo fraction (e.g. 0.9) of its alone IPC.
func SLOAchieved(hpIPC, hpIPCAlone, slo float64) bool {
	if hpIPCAlone <= 0 {
		return false
	}
	return hpIPC/hpIPCAlone >= slo
}

// SUCI computes Eq. 4: c_SLO * EFU^lambda. It is 0 when the SLO is missed
// (an SLA violation disqualifies any utilisation gains) and otherwise
// weighs utilisation by lambda: lambda > 1 favours utilisation, lambda < 1
// favours SLO conformance.
func SUCI(achieved bool, efu, lambda float64) float64 {
	if !achieved {
		return 0
	}
	if efu < 0 {
		efu = 0
	}
	return math.Pow(efu, lambda)
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// clamped to eps (the paper plots geometric means of SUCI values that can
// be exactly 0; clamping matches the usual practice of plotting those runs
// at the floor rather than annihilating the mean).
const geoMeanEps = 1e-4

// GeoMean returns the geometric mean of xs with zero values clamped to a
// small floor; it returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x < geoMeanEps {
			x = geoMeanEps
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// HarmonicMean returns the harmonic mean of xs; it returns 0 if xs is
// empty or contains a non-positive value.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var denom float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		denom += 1 / x
	}
	return float64(len(xs)) / denom
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Fraction returns the fraction of xs for which pred holds.
func Fraction(xs []float64, pred func(float64) bool) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if pred(x) {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from a sample (copied and sorted).
func NewCDF(sample []float64) CDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// At returns P(X <= x) in [0, 1].
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]) by nearest-rank.
func (c CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Len returns the sample size.
func (c CDF) Len() int { return len(c.sorted) }

// Validate01 returns an error when v is outside [0, 1]; metrics that are
// fractions by construction assert with it in tests.
func Validate01(name string, v float64) error {
	if v < 0 || v > 1 || math.IsNaN(v) {
		return fmt.Errorf("metrics: %s = %g outside [0,1]", name, v)
	}
	return nil
}
