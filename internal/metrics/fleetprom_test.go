package metrics

import (
	"strings"
	"testing"
)

func TestFleetExporter(t *testing.T) {
	e := NewFleetExporter()
	e.Observe(FleetSample{
		Period: 0, Arrivals: 3, Admitted: 2, Rejected: 1, Placed: 2, Done: 0,
		QueueLen: 0, Running: 2, SLOViolations: 1, FleetEFU: 0.4,
		Nodes: []FleetNode{
			{Node: 1, BECount: 1, HPNorm: 0.9, TotalGbps: 12.5},
			{Node: 0, BECount: 1, HPNorm: 0.8, TotalGbps: 30, SLOViolated: true},
		},
	})
	e.Observe(FleetSample{
		Period: 1, Arrivals: 1, Admitted: 1, Done: 2, FleetEFU: 0.3, Losses: 1,
		Nodes: []FleetNode{
			{Node: 0, Lost: true},
			{Node: 1, Frozen: true, BECount: 1},
		},
	})
	if e.Periods() != 2 {
		t.Fatalf("periods = %d, want 2", e.Periods())
	}

	var sb strings.Builder
	if _, err := e.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"dicer_fleet_periods_total 2",
		"dicer_fleet_arrivals_total 4",
		"dicer_fleet_admitted_total 3",
		"dicer_fleet_rejected_total 1",
		"dicer_fleet_done_total 2",
		"dicer_fleet_node_losses_total 1",
		"dicer_fleet_slo_violations_total 1",
		"dicer_fleet_efu 0.3",
		`dicer_fleet_node_state{node="0"} 2`,
		`dicer_fleet_node_state{node="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}

	// Node gauges must be sorted by node ID regardless of sample order.
	if i0, i1 := strings.Index(out, `node_be_count{node="0"}`), strings.Index(out, `node_be_count{node="1"}`); i0 < 0 || i1 < 0 || i0 > i1 {
		t.Errorf("node gauges missing or unsorted (%d, %d)", i0, i1)
	}

	// Two renders must be byte-identical (deterministic exposition).
	var sb2 strings.Builder
	if _, err := e.WriteTo(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("repeated WriteTo produced different bytes")
	}
}
