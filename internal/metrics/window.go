package metrics

// Window is a fixed-size ring of float64 observations with O(1) append and
// O(n) aggregate queries — the bookkeeping an operator dashboard needs to
// track per-period SLO conformance or rolling IPC without keeping a full
// history. The zero value is unusable; construct with NewWindow.
type Window struct {
	buf  []float64
	next int
	full bool
}

// NewWindow creates a window holding the most recent n observations.
func NewWindow(n int) *Window {
	if n <= 0 {
		n = 1
	}
	return &Window{buf: make([]float64, n)}
}

// Push appends an observation, evicting the oldest when full.
func (w *Window) Push(v float64) {
	w.buf[w.next] = v
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
}

// Len returns the number of stored observations.
func (w *Window) Len() int {
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Cap returns the window size.
func (w *Window) Cap() int { return len(w.buf) }

// values iterates stored observations (order irrelevant to aggregates).
func (w *Window) values() []float64 {
	if w.full {
		return w.buf
	}
	return w.buf[:w.next]
}

// Mean returns the arithmetic mean of the stored observations.
func (w *Window) Mean() float64 { return Mean(w.values()) }

// Min returns the smallest stored observation (0 when empty).
func (w *Window) Min() float64 {
	vs := w.values()
	if len(vs) == 0 {
		return 0
	}
	min := vs[0]
	for _, v := range vs {
		if v < min {
			min = v
		}
	}
	return min
}

// FractionAtLeast returns the fraction of stored observations >= x.
func (w *Window) FractionAtLeast(x float64) float64 {
	return Fraction(w.values(), func(v float64) bool { return v >= x })
}

// SLOMonitor tracks per-period HP conformance over a rolling window: feed
// it the HP's per-period IPC and it reports the fraction of recent periods
// that met the SLO, plus a violation alarm with hysteresis (the paper's
// SLA view is per-run; operators watch per-period).
type SLOMonitor struct {
	// IPCAlone is the reference IPC; SLO the target fraction of it.
	IPCAlone float64
	SLO      float64
	// AlarmBelow is the conformance fraction under which Alarming trips
	// (e.g. 0.9 = alarm when more than 10% of recent periods violated).
	AlarmBelow float64

	win *Window
}

// NewSLOMonitor builds a monitor over the last n periods.
func NewSLOMonitor(ipcAlone, slo float64, n int, alarmBelow float64) *SLOMonitor {
	return &SLOMonitor{
		IPCAlone:   ipcAlone,
		SLO:        slo,
		AlarmBelow: alarmBelow,
		win:        NewWindow(n),
	}
}

// Observe records one period's HP IPC.
func (m *SLOMonitor) Observe(hpIPC float64) {
	norm := NormIPC(hpIPC, m.IPCAlone)
	met := 0.0
	if norm >= m.SLO {
		met = 1
	}
	m.win.Push(met)
}

// Conformance returns the fraction of recorded periods that met the SLO.
func (m *SLOMonitor) Conformance() float64 {
	if m.win.Len() == 0 {
		return 0
	}
	return m.win.Mean()
}

// Alarming reports whether rolling conformance has fallen below the alarm
// threshold (only once the window has filled, so startup transients do not
// page anyone).
func (m *SLOMonitor) Alarming() bool {
	return m.win.Len() == m.win.Cap() && m.Conformance() < m.AlarmBelow
}
