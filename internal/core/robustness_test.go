package core

import (
	"testing"

	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

// Failure-injection tests: the controller must stay safe (legal masks, no
// panics, bounded allocations) when the monitoring substrate misbehaves —
// dropped counters, zero readings, degenerate platforms. A production
// controller reads real MSRs; all of these happen in practice.

// emptyPeriod simulates a complete counter dropout: no cores, no groups.
func emptyPeriod() resctrl.Period { return resctrl.Period{Seconds: 1} }

func TestCounterDropoutDoesNotCrash(t *testing.T) {
	ctl, sys := newCtl(t)
	for i := 0; i < 10; i++ {
		if err := ctl.Observe(sys, emptyPeriod()); err != nil {
			t.Fatalf("dropout period %d: %v", i, err)
		}
		if ctl.HPWays() < 1 || ctl.HPWays() > 19 {
			t.Fatalf("dropout period %d: HP ways %d out of bounds", i, ctl.HPWays())
		}
	}
}

func TestZeroIPCReadings(t *testing.T) {
	// A crashed or fully stalled HP reports IPC 0 for many periods; the
	// controller should settle somewhere legal rather than oscillate out
	// of bounds.
	ctl, sys := newCtl(t)
	for i := 0; i < 30; i++ {
		if err := ctl.Observe(sys, obs(0, 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if ctl.HPWays() < 1 {
		t.Fatalf("HP ways %d", ctl.HPWays())
	}
	hp, be := sys.masks[policy.HPClos], sys.masks[policy.BEClos]
	if hp == 0 || be == 0 || hp&be != 0 {
		t.Fatalf("illegal masks %x/%x after zero readings", hp, be)
	}
}

func TestZeroBandwidthWithPhaseHistory(t *testing.T) {
	// Zero bandwidth in the history must not blow up the geometric mean
	// (0*0*0 -> cbrt(0) = 0; any positive reading then looks like an
	// infinite spike, which is fine — but it must not panic or divide by
	// zero).
	ctl, sys := newCtl(t)
	ctl.Observe(sys, obs(1.0, 0, 10))
	ctl.Observe(sys, obs(1.0, 0, 10))
	ctl.Observe(sys, obs(1.0, 0, 10))
	if err := ctl.Observe(sys, obs(1.0, 5, 15)); err != nil {
		t.Fatal(err)
	}
	// 5 > (1.3)*geomean(0,0,0)=0: phase change fires; the reset must be
	// legal.
	if ctl.HPWays() < 1 || ctl.HPWays() > 19 {
		t.Fatalf("HP ways %d", ctl.HPWays())
	}
}

func TestTwoWayCache(t *testing.T) {
	// The smallest platform DICER can manage: 2 ways, one each.
	ctl := MustNew(DefaultConfig())
	sys := newFake(2)
	if err := ctl.Setup(sys); err != nil {
		t.Fatal(err)
	}
	if ctl.HPWays() != 1 {
		t.Fatalf("2-way setup gives HP %d ways", ctl.HPWays())
	}
	// Stable IPC cannot shrink below the minimum; saturation sampling has
	// nothing to explore; nothing may error.
	seq := []resctrl.Period{obs(1, 5, 20), obs(1, 5, 20), obs(1, 5, 60), obs(0.5, 5, 60)}
	for i, p := range seq {
		if err := ctl.Observe(sys, p); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if ctl.HPWays() != 1 {
			t.Fatalf("step %d: HP ways %d on a 2-way cache", i, ctl.HPWays())
		}
	}
}

func TestSixtyFourWayCache(t *testing.T) {
	ctl := MustNew(DefaultConfig())
	sys := newFake(64)
	if err := ctl.Setup(sys); err != nil {
		t.Fatal(err)
	}
	if ctl.HPWays() != 63 {
		t.Fatalf("64-way setup gives HP %d ways", ctl.HPWays())
	}
	// Run a full sampling pass; every mask must remain legal at width 64.
	ctl.Observe(sys, obs(0.5, 5, 60))
	for ctl.State() == "sampling" {
		if err := ctl.Observe(sys, obs(0.5, 5, 60)); err != nil {
			t.Fatal(err)
		}
		if sys.masks[policy.HPClos]&sys.masks[policy.BEClos] != 0 {
			t.Fatal("mask overlap on 64-way platform")
		}
	}
}

func TestNegativeBandwidthReading(t *testing.T) {
	// A wrapped MBM counter can produce a negative delta upstream; the
	// controller must treat it as benign (not saturated, no phase spike).
	ctl, sys := newCtl(t)
	ctl.Observe(sys, obs(1.0, 10, 20))
	if err := ctl.Observe(sys, obs(1.0, -5, -5)); err != nil {
		t.Fatal(err)
	}
	if ctl.State() == "sampling" {
		t.Fatal("negative bandwidth must not look like saturation")
	}
}

func TestObserveBeforeSetup(t *testing.T) {
	// Observe on a never-setup controller: degenerate but must not panic.
	ctl := MustNew(DefaultConfig())
	sys := newFake(20)
	sys.masks[policy.HPClos] = 0xfffff
	sys.masks[policy.BEClos] = 0xfffff
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panicked: %v", r)
		}
	}()
	_ = ctl.Observe(sys, obs(1, 5, 20))
}

func TestSamplingWithStepLargerThanCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleStep = 50
	ctl := MustNew(cfg)
	sys := newFake(20)
	if err := ctl.Setup(sys); err != nil {
		t.Fatal(err)
	}
	// Saturation with a step larger than the whole cache: the sampling
	// pass degenerates to "keep the current allocation" without errors.
	if err := ctl.Observe(sys, obs(0.5, 5, 60)); err != nil {
		t.Fatal(err)
	}
	if ctl.HPWays() < 1 || ctl.HPWays() > 19 {
		t.Fatalf("HP ways %d", ctl.HPWays())
	}
}
