package core

import (
	"errors"
	"testing"

	"dicer/internal/cache"
	"dicer/internal/resctrl"
)

// quietSystem is an allocation-free fakeSystem: array-backed masks and no
// write log, so AllocsPerRun measures only the controller itself.
type quietSystem struct {
	ways  int
	masks [4]uint64
}

func (q *quietSystem) NumWays() int { return q.ways }
func (q *quietSystem) NumClos() int { return len(q.masks) }
func (q *quietSystem) SetCBM(clos int, mask uint64) error {
	if err := cache.CheckMask(mask, q.ways); err != nil {
		return err
	}
	q.masks[clos] = mask
	return nil
}
func (q *quietSystem) CBM(clos int) uint64          { return q.masks[clos] }
func (q *quietSystem) SetMBACap(int, float64) error { return errors.New("no MBA") }
func (q *quietSystem) LinkCapacityGbps() float64    { return 68.3 }
func (q *quietSystem) Counters() resctrl.Counters   { return resctrl.Counters{} }

var _ resctrl.System = (*quietSystem)(nil)

// TestObserveAllocFree pins the controller's per-period allocation
// behaviour: on both the steady hold path and the reset/validate write
// path, Observe must not allocate. The bandwidth-history ring buffer
// exists precisely for this property; a regression here means a slice or
// closure crept back into the hot path.
func TestObserveAllocFree(t *testing.T) {
	ctl := MustNew(DefaultConfig())
	sys := &quietSystem{ways: 20}
	if err := ctl.Setup(sys); err != nil {
		t.Fatal(err)
	}
	steady := obs(1.0, 5, 20)
	// Warm up: stable IPC shrinks the allocation to MinHPWays, after
	// which every steady observation takes the hold path (no writes).
	for i := 0; i < 30; i++ {
		if err := ctl.Observe(sys, steady); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(200, func() {
		if err := ctl.Observe(sys, steady); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("steady hold path: %v allocs/period, want 0", got)
	}

	// Oscillating IPC alternates reset (schemata write, validate state)
	// and rollback/hold decisions — the write path must be allocation-free
	// too.
	flip := false
	if got := testing.AllocsPerRun(200, func() {
		flip = !flip
		p := obs(0.6, 5, 20)
		if flip {
			p = obs(1.4, 5, 20)
		}
		if err := ctl.Observe(sys, p); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("reset/validate path: %v allocs/period, want 0", got)
	}
}
