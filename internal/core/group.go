package core

import "math"

// groupState is the DICER state machine for ONE CLOS group of HP
// applications: Listings 1–3 scoped to a [minWays, maxWays] window of
// the LLC instead of the global HP/BE split. The legacy single-HP
// Controller runs exactly one groupState over [MinHPWays,
// NumWays-MinBEWays]; MultiController runs one per cluster group, each
// bounded by its cluster-plan ways budget. The struct is plain data —
// actuation and event emission go through the groupHost interface so a
// group never allocates or touches resctrl directly (the hot-path alloc
// guards cover both hosts).
type groupState struct {
	cfg *Config
	idx int // group index within the owning controller (0 for legacy)

	st         state
	ctFavoured bool
	cur        int // ways currently enforced for this group

	// Partition window: cur moves in [minWays, maxWays]. For the legacy
	// controller maxWays = NumWays - MinBEWays (CT's allocation); for a
	// cluster group it is the group's ways budget.
	minWays int
	maxWays int

	// Best-known allocation for CT-T workloads (Listing 1's
	// optimal_allocation and IPC_opt).
	optimal int
	ipcOpt  float64

	// IPC of the previous monitoring period (Eq. 3's IPC_{t-1}).
	prevIPC  float64
	havePrev bool

	// Group bandwidth history for phase detection (Eq. 2). A fixed ring
	// buffer keeps observe allocation-free on the hot path.
	bwHist [3]float64
	bwLen  int // valid entries in bwHist (0..3)
	bwPos  int // next write position

	// Sampling bookkeeping.
	sample  int
	best    int
	bestIPC float64

	// Reset bookkeeping (Listing 3).
	rollback        int
	resetTriggerIPC float64
}

// groupHost actuates and traces on behalf of a groupState. applyGroup
// installs g.cur (SplitWays for the legacy controller; a full stacked
// relayout for the multi controller); emitGroup publishes one decision.
type groupHost interface {
	emitGroup(g *groupState, kind EventKind, ipc, totalBW float64)
	applyGroup(g *groupState) error
}

// init resets the group to CT's starting point: all of its window, CT-
// Favoured assumed (Listing 1's initialisation).
func (g *groupState) init(cfg *Config, idx, minWays, maxWays int) {
	g.cfg = cfg
	g.idx = idx
	g.st = stOptimise
	g.ctFavoured = true
	g.minWays = minWays
	g.maxWays = maxWays
	g.cur = maxWays
	g.optimal = g.cur
	g.ipcOpt = 0
	g.prevIPC = 0
	g.havePrev = false
	g.clearBW()
	g.sample = 0
	g.best = 0
	g.bestIPC = 0
	g.rollback = 0
	g.resetTriggerIPC = 0
}

// observe is one monitoring period for this group: Listing 1's
// dicer_driver loop body with the group's own IPC and bandwidth reading.
func (g *groupState) observe(h groupHost, ipc, bw, totalBW float64, saturated bool) error {
	switch g.st {
	case stSampling:
		return g.observeSampling(h, ipc, totalBW)
	case stValidate:
		return g.observeValidate(h, ipc, totalBW, saturated)
	default:
		return g.observeOptimise(h, ipc, bw, totalBW, saturated)
	}
}

// observeOptimise is Listing 2 plus Listing 1's saturation check.
func (g *groupState) observeOptimise(h groupHost, ipc, bw, totalBW float64, saturated bool) error {
	if saturated {
		h.emitGroup(g, EventSaturated, ipc, totalBW)
		return g.startSampling(h, ipc, totalBW)
	}

	phase := g.phaseChange(bw) && !g.cfg.DisablePhaseDetection
	g.pushBW(bw)
	if phase {
		h.emitGroup(g, EventPhaseChange, ipc, totalBW)
		return g.reset(h, ipc, totalBW)
	}

	if !g.havePrev {
		g.prevIPC = ipc
		g.havePrev = true
		h.emitGroup(g, EventHold, ipc, totalBW)
		return nil
	}

	lo := (1 - g.cfg.StabilityAlpha) * g.prevIPC
	hi := (1 + g.cfg.StabilityAlpha) * g.prevIPC
	switch {
	case ipc >= lo && ipc <= hi:
		// Stable (Eq. 3): the allocation exceeds the group's needs; shift
		// one way to the BEs to raise utilisation.
		g.prevIPC = ipc
		if g.cur > g.minWays {
			g.cur--
			h.emitGroup(g, EventShrink, ipc, totalBW)
			return h.applyGroup(g)
		}
		h.emitGroup(g, EventHold, ipc, totalBW)
		return nil
	case ipc > hi:
		// Better: a faster phase with the same cache needs; hold.
		g.prevIPC = ipc
		h.emitGroup(g, EventHold, ipc, totalBW)
		return nil
	default:
		// Worse: either the shrinking went too far or a slower phase
		// began; Listing 2 resets in both cases.
		h.emitGroup(g, EventReset, ipc, totalBW)
		return g.reset(h, ipc, totalBW)
	}
}

// phaseChange evaluates Eq. 2 against the previous three periods.
func (g *groupState) phaseChange(bw float64) bool {
	if g.bwLen < 3 {
		return false
	}
	gm := math.Cbrt(g.bwHist[0] * g.bwHist[1] * g.bwHist[2])
	return bw > (1+g.cfg.PhaseThreshold)*gm
}

func (g *groupState) pushBW(bw float64) {
	g.bwHist[g.bwPos] = bw
	g.bwPos = (g.bwPos + 1) % len(g.bwHist)
	if g.bwLen < len(g.bwHist) {
		g.bwLen++
	}
}

// clearBW empties the bandwidth history (after allocation changes, old
// readings would fake a phase change).
func (g *groupState) clearBW() {
	g.bwLen = 0
	g.bwPos = 0
}

// startSampling begins Listing 1's allocation_sampling. The current
// period's reading becomes the first sample (it measured cur ways).
func (g *groupState) startSampling(h groupHost, ipc, totalBW float64) error {
	g.ctFavoured = false
	g.st = stSampling
	g.best = g.cur
	g.bestIPC = ipc
	g.sample = g.cur
	return g.applyNextSample(h, ipc, totalBW)
}

// observeSampling records the sample measured over the elapsed period
// and applies the next one, or enforces the optimum when done.
func (g *groupState) observeSampling(h groupHost, ipc, totalBW float64) error {
	if ipc > g.bestIPC {
		g.bestIPC = ipc
		g.best = g.sample
	}
	return g.applyNextSample(h, ipc, totalBW)
}

// applyNextSample steps the sampled allocation down, or finishes sampling.
func (g *groupState) applyNextSample(h groupHost, ipc, totalBW float64) error {
	next := g.sample - g.cfg.SampleStep
	if next >= g.minWays {
		g.sample = next
		g.cur = next
		h.emitGroup(g, EventSample, ipc, totalBW)
		return h.applyGroup(g)
	}
	// Sampling complete: enforce optimal_allocation and restart the
	// optimisation from there (Listing 1: allocation_sampling).
	g.optimal = g.best
	g.ipcOpt = g.bestIPC
	g.cur = g.optimal
	g.st = stOptimise
	g.prevIPC = g.ipcOpt
	g.havePrev = true
	g.clearBW()
	h.emitGroup(g, EventSampleDone, ipc, totalBW)
	return h.applyGroup(g)
}

// reset applies Listing 3's allocation_reset: re-enforce the best-known
// allocation and validate it over the next period.
func (g *groupState) reset(h groupHost, ipc, totalBW float64) error {
	g.rollback = g.cur
	g.resetTriggerIPC = ipc
	if g.ctFavoured {
		g.cur = g.maxWays
	} else {
		g.cur = g.optimal
	}
	g.st = stValidate
	return h.applyGroup(g)
}

// observeValidate is the monitoring period embedded in Listing 3.
func (g *groupState) observeValidate(h groupHost, ipc, totalBW float64, saturated bool) error {
	if saturated {
		h.emitGroup(g, EventSaturated, ipc, totalBW)
		return g.startSampling(h, ipc, totalBW)
	}
	if g.ctFavoured {
		if ipc > g.resetTriggerIPC {
			// The reset helped: the degradation was allocation-induced.
			g.resumeOptimise(ipc)
			h.emitGroup(g, EventValidated, ipc, totalBW)
			return nil
		}
		// The degradation was a slower phase, not the allocation: revert.
		g.cur = g.rollback
		g.resumeOptimise(ipc)
		h.emitGroup(g, EventRollback, ipc, totalBW)
		return h.applyGroup(g)
	}
	// CT-Thwarted: the reverted allocation must reproduce IPC_opt.
	if ipc >= (1-g.cfg.NearOptTolerance)*g.ipcOpt {
		g.resumeOptimise(ipc)
		h.emitGroup(g, EventValidated, ipc, totalBW)
		return nil
	}
	// The optimum has moved: sample again.
	h.emitGroup(g, EventReset, ipc, totalBW)
	return g.startSampling(h, ipc, totalBW)
}

// resumeOptimise returns to the optimisation state with a fresh IPC
// baseline and cleared bandwidth history (the allocation just changed,
// so old bandwidth readings would fake a phase change).
func (g *groupState) resumeOptimise(ipc float64) {
	g.st = stOptimise
	g.prevIPC = ipc
	g.havePrev = true
	g.clearBW()
}
