package core

import (
	"fmt"
	"math/bits"
	"testing"

	"dicer/internal/cache"
	"dicer/internal/cluster"
	"dicer/internal/mrc"
	"dicer/internal/resctrl"
)

// testCurve is a moderately cache-sensitive miss curve for spec plumbing.
func testCurve(mb float64) mrc.Curve {
	return mrc.MustCurve(0.05, mrc.Component{Bytes: mb * (1 << 20), Frac: 0.6})
}

// singleSpec is the M=1 spec set used by the equivalence suite.
func singleSpec() []cluster.AppSpec {
	return []cluster.AppSpec{{Name: "hp", Core: 0, SLO: 0.9, Curve: testCurve(8)}}
}

// multiFake is a scripted resctrl.System with CLOS moving, for multi-HP
// unit tests.
type multiFake struct {
	ways  int
	clos  int
	masks map[int]uint64
	cores map[int]int
	log   []string
}

func newMultiFake(ways, clos int) *multiFake {
	return &multiFake{ways: ways, clos: clos, masks: map[int]uint64{}, cores: map[int]int{}}
}

func (f *multiFake) NumWays() int { return f.ways }
func (f *multiFake) NumClos() int { return f.clos }
func (f *multiFake) SetCBM(clos int, mask uint64) error {
	if err := cache.CheckMask(mask, f.ways); err != nil {
		return err
	}
	f.masks[clos] = mask
	f.log = append(f.log, fmt.Sprintf("%d=%x", clos, mask))
	return nil
}
func (f *multiFake) CBM(clos int) uint64          { return f.masks[clos] }
func (f *multiFake) SetMBACap(int, float64) error { return fmt.Errorf("no MBA") }
func (f *multiFake) LinkCapacityGbps() float64    { return 68.3 }
func (f *multiFake) Counters() resctrl.Counters   { return resctrl.Counters{} }
func (f *multiFake) MoveCore(core, clos int) error {
	f.cores[core] = clos
	return nil
}

var (
	_ resctrl.System    = (*multiFake)(nil)
	_ resctrl.CoreMover = (*multiFake)(nil)
)

// m1Script is a period script exercising every controller regime: warm-up
// and shrinking, IPC degradation with reset/validate/rollback, a phase-
// change bandwidth spike, saturation sampling, and recovery.
func m1Script() []resctrl.Period {
	var script []resctrl.Period
	add := func(n int, ipc, bw, total float64) {
		for i := 0; i < n; i++ {
			script = append(script, obs(ipc, bw, total))
		}
	}
	add(25, 1.0, 5, 20)  // steady: shrink to the floor, then hold
	add(1, 0.6, 5, 20)   // degraded: perf reset
	add(1, 1.2, 5, 20)   // reset helped: validated
	add(5, 1.2, 5, 20)   // steady again
	add(1, 0.5, 5, 20)   // degraded: reset
	add(1, 0.4, 5, 20)   // reset did not help: rollback
	add(6, 0.9, 6, 22)   // steady
	add(1, 0.9, 12, 30)  // bandwidth spike: phase change reset
	add(1, 1.1, 12, 30)  // validated
	add(4, 1.1, 12, 30)  // steady
	add(1, 1.0, 20, 60)  // saturated: sampling begins
	add(12, 1.0, 20, 60) // sampling sweep (IPC flat)
	add(10, 1.0, 8, 30)  // post-sampling optimise
	add(1, 0.2, 8, 30)   // degraded under CT-T: reset to optimal
	add(1, 0.2, 8, 30)   // not near-opt: re-sample
	add(12, 0.9, 8, 30)  // second sweep and settle
	return script
}

// TestMultiM1Equivalence pins the tentpole refactor: a MultiController
// with one group reproduces the legacy single-HP controller decision for
// decision — same event kinds, same way counts, same periods, same
// installed masks — across every regime of the state machine.
func TestMultiM1Equivalence(t *testing.T) {
	legacy := MustNew(DefaultConfig())
	legacySys := newFake(20)
	var legacyEvents []Event
	legacy.Trace = func(e Event) { legacyEvents = append(legacyEvents, e) }

	multi := MustNewMulti(MultiConfig{
		Group:      DefaultConfig(),
		WayBytes:   1.25 * (1 << 20),
		CLOSBudget: 2,
		Grouping:   GroupingSingle,
	}, singleSpec())
	multiSys := newMultiFake(20, 2)
	var multiEvents []GroupEvent
	multi.Trace = func(e GroupEvent) { multiEvents = append(multiEvents, e) }

	if err := legacy.Setup(legacySys); err != nil {
		t.Fatal(err)
	}
	if err := multi.Setup(multiSys); err != nil {
		t.Fatal(err)
	}

	script := m1Script()
	for i, p := range script {
		if err := legacy.Observe(legacySys, p); err != nil {
			t.Fatalf("period %d: legacy: %v", i, err)
		}
		if err := multi.Observe(multiSys, p); err != nil {
			t.Fatalf("period %d: multi: %v", i, err)
		}
		if legacySys.masks[0] != multiSys.masks[0] || legacySys.masks[1] != multiSys.masks[1] {
			t.Fatalf("period %d: masks diverged: legacy hp=%x be=%x, multi g0=%x be=%x",
				i, legacySys.masks[0], legacySys.masks[1], multiSys.masks[0], multiSys.masks[1])
		}
		if legacy.HPWays() != multi.GroupWays(0) {
			t.Fatalf("period %d: ways diverged: legacy %d, multi %d", i, legacy.HPWays(), multi.GroupWays(0))
		}
		if legacy.State() != multi.GroupState(0) {
			t.Fatalf("period %d: state diverged: legacy %s, multi %s", i, legacy.State(), multi.GroupState(0))
		}
	}

	if len(legacyEvents) != len(multiEvents) {
		t.Fatalf("decision count diverged: legacy %d, multi %d", len(legacyEvents), len(multiEvents))
	}
	for i := range legacyEvents {
		le, me := legacyEvents[i], multiEvents[i].Event
		if multiEvents[i].Group != 0 {
			t.Fatalf("event %d: group %d, want 0", i, multiEvents[i].Group)
		}
		if le != me {
			t.Fatalf("event %d diverged:\nlegacy %+v\nmulti  %+v", i, le, me)
		}
	}
}

// TestMultiStackedMasks pins the multi-group mask layout: contiguous,
// disjoint, stacked from the top, BE keeping at least its floor.
func TestMultiStackedMasks(t *testing.T) {
	specs := []cluster.AppSpec{
		{Name: "a", Core: 0, SLO: 0.9, Curve: testCurve(16)},
		{Name: "b", Core: 1, SLO: 0.9, Curve: testCurve(14)},
		{Name: "c", Core: 2, SLO: 0.9, Curve: testCurve(1)},
		{Name: "d", Core: 3, SLO: 0.9, Curve: mrc.MustCurve(0.6)},
	}
	mc := MustNewMulti(MultiConfig{
		Group:      DefaultConfig(),
		WayBytes:   1.25 * (1 << 20),
		CLOSBudget: 4,
		MinBEWays:  2,
	}, specs)
	sys := newMultiFake(20, 4)
	if err := mc.Setup(sys); err != nil {
		t.Fatal(err)
	}
	k := mc.NumGroups()
	if k < 1 || k > 3 {
		t.Fatalf("group count %d outside [1,3]", k)
	}
	var seen uint64
	top := 20
	for gi := 0; gi < k; gi++ {
		mask := sys.masks[gi]
		if err := cache.CheckMask(mask, 20); err != nil {
			t.Fatalf("group %d mask %x: %v", gi, mask, err)
		}
		w := bits.OnesCount64(mask)
		if w != mc.GroupWays(gi) {
			t.Fatalf("group %d mask width %d != ways %d", gi, w, mc.GroupWays(gi))
		}
		wantHigh := top - 1
		if bits.Len64(mask)-1 != wantHigh {
			t.Fatalf("group %d not stacked: high bit %d, want %d", gi, bits.Len64(mask)-1, wantHigh)
		}
		if seen&mask != 0 {
			t.Fatalf("group %d mask %x overlaps earlier groups %x", gi, mask, seen)
		}
		seen |= mask
		top -= w
	}
	be := sys.masks[mc.BEClos()]
	if bits.OnesCount64(be) < 2 {
		t.Fatalf("BE mask %x narrower than MinBEWays", be)
	}
	if seen&be != 0 {
		t.Fatalf("BE mask %x overlaps groups %x", be, seen)
	}
	// Every HP core landed in a valid group CLOS.
	for core := 0; core < 4; core++ {
		if clos, ok := sys.cores[core]; !ok || clos < 0 || clos >= k {
			t.Fatalf("core %d in clos %d (moved=%v), want [0,%d)", core, clos, ok, k)
		}
	}
}

// multiPeriod builds a reading for a 2-group, 4-HP topology with BEs in
// the last CLOS.
func multiPeriod(ipc0, ipc1, bw0, bw1, beBW float64) resctrl.Period {
	return resctrl.Period{
		Seconds: 1,
		Cores: []resctrl.PeriodCore{
			{Core: 0, Clos: 0, IPC: ipc0},
			{Core: 1, Clos: 0, IPC: ipc0},
			{Core: 2, Clos: 1, IPC: ipc1},
			{Core: 3, Clos: 1, IPC: ipc1},
			{Core: 4, Clos: 3, IPC: 0.5},
		},
		Groups: []resctrl.PeriodGroup{
			{Clos: 0, BandwidthGbps: bw0},
			{Clos: 1, BandwidthGbps: bw1},
			{Clos: 3, BandwidthGbps: beBW},
		},
		TotalGbps: bw0 + bw1 + beBW,
	}
}

// quietMultiSystem is an allocation-free substrate for the multi alloc
// guard and benchmark.
type quietMultiSystem struct {
	ways  int
	masks [16]uint64
	cores [16]int
}

func (q *quietMultiSystem) NumWays() int { return q.ways }
func (q *quietMultiSystem) NumClos() int { return len(q.masks) }
func (q *quietMultiSystem) SetCBM(clos int, mask uint64) error {
	if err := cache.CheckMask(mask, q.ways); err != nil {
		return err
	}
	q.masks[clos] = mask
	return nil
}
func (q *quietMultiSystem) CBM(clos int) uint64          { return q.masks[clos] }
func (q *quietMultiSystem) SetMBACap(int, float64) error { return fmt.Errorf("no MBA") }
func (q *quietMultiSystem) LinkCapacityGbps() float64    { return 68.3 }
func (q *quietMultiSystem) Counters() resctrl.Counters   { return resctrl.Counters{} }
func (q *quietMultiSystem) MoveCore(core, clos int) error {
	q.cores[core] = clos
	return nil
}

func quietMulti(t testing.TB) (*MultiController, *quietMultiSystem) {
	specs := []cluster.AppSpec{
		{Name: "a", Core: 0, SLO: 0.9, Curve: testCurve(16)},
		{Name: "b", Core: 1, SLO: 0.9, Curve: testCurve(14)},
		{Name: "c", Core: 2, SLO: 0.9, Curve: testCurve(1)},
		{Name: "d", Core: 3, SLO: 0.9, Curve: mrc.MustCurve(0.6)},
	}
	mc := MustNewMulti(MultiConfig{
		Group:      DefaultConfig(),
		WayBytes:   1.25 * (1 << 20),
		CLOSBudget: 4,
	}, specs)
	sys := &quietMultiSystem{ways: 20}
	if err := mc.Setup(sys); err != nil {
		t.Fatal(err)
	}
	return mc, sys
}

// TestMultiObserveAllocFree pins the multi-HP hot path: with the
// grouping static, Observe must not allocate on either the steady hold
// path or the shrink/relayout path.
func TestMultiObserveAllocFree(t *testing.T) {
	mc, sys := quietMulti(t)
	steady := multiPeriod(1.0, 0.8, 5, 4, 6)
	for i := 0; i < 40; i++ {
		if err := mc.Observe(sys, steady); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(200, func() {
		if err := mc.Observe(sys, steady); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("steady multi observe: %v allocs/period, want 0", got)
	}

	// Alternating IPC keeps groups resetting and re-laying masks out.
	flip := false
	if got := testing.AllocsPerRun(200, func() {
		flip = !flip
		p := steady
		if flip {
			p = multiPeriod(0.5, 1.2, 5, 4, 6)
		}
		if err := mc.Observe(sys, p); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("active multi observe: %v allocs/period, want 0", got)
	}
}

// BenchmarkMultiHPStep measures one multi-HP controller period at steady
// state (bench-smoke gates this stays allocation-free).
func BenchmarkMultiHPStep(b *testing.B) {
	mc, sys := quietMulti(b)
	steady := multiPeriod(1.0, 0.8, 5, 4, 6)
	for i := 0; i < 40; i++ {
		if err := mc.Observe(sys, steady); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mc.Observe(sys, steady); err != nil {
			b.Fatal(err)
		}
	}
}
