package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dicer/internal/policy"
)

// Property tests: seeded pseudorandom observation streams drive the
// controller through every state, and invariants that must hold on every
// single period are asserted after each Observe. These complement the
// pointwise robustness tests with coverage of input shapes nobody
// hand-picked, and they document the properties the observability
// layer's replay depends on (determinism in particular).

// randomStream returns a seeded generator of plausible-but-adversarial
// observations: IPC in (0, 2), HP bandwidth in (0, 15), total bandwidth
// in (0, 68) so streams cross the 50 Gbps saturation threshold often.
func randomStream(seed int64) func() (hpIPC, hpBW, totalBW float64) {
	rng := rand.New(rand.NewSource(seed))
	return func() (float64, float64, float64) {
		return 0.05 + 1.95*rng.Float64(), 15 * rng.Float64(), 68 * rng.Float64()
	}
}

// TestPropertyHPWaysAlwaysBounded: whatever the counters claim, the
// enforced HP allocation stays inside [MinHPWays, Ways-MinBEWays], the
// state machine stays in a known state, and — on a synchronous substrate
// — the installed masks always equal the controller's intent.
func TestPropertyHPWaysAlwaysBounded(t *testing.T) {
	const ways = 20
	for seed := int64(0); seed < 25; seed++ {
		ctl := MustNew(DefaultConfig())
		sys := &quietSystem{ways: ways}
		if err := ctl.Setup(sys); err != nil {
			t.Fatal(err)
		}
		cfg := ctl.Config()
		next := randomStream(seed)
		for i := 0; i < 400; i++ {
			ipc, bw, tot := next()
			if err := ctl.Observe(sys, obs(ipc, bw, tot)); err != nil {
				t.Fatalf("seed %d period %d: %v", seed, i, err)
			}
			hp := ctl.HPWays()
			if hp < cfg.MinHPWays || hp > ways-cfg.MinBEWays {
				t.Fatalf("seed %d period %d: HP ways %d outside [%d,%d]",
					seed, i, hp, cfg.MinHPWays, ways-cfg.MinBEWays)
			}
			switch ctl.State() {
			case "optimise", "sampling", "validate":
			default:
				t.Fatalf("seed %d period %d: unknown state %q", seed, i, ctl.State())
			}
			wantHP, wantBE := policy.HPMask(ways, hp), policy.BEMask(ways, hp)
			if sys.CBM(policy.HPClos) != wantHP || sys.CBM(policy.BEClos) != wantBE {
				t.Fatalf("seed %d period %d: installed masks %#x/%#x diverge from intent %#x/%#x",
					seed, i, sys.CBM(policy.HPClos), sys.CBM(policy.BEClos), wantHP, wantBE)
			}
		}
	}
}

// TestPropertyGrowthNeedsACause: the HP allocation never grows in a
// period whose only decisions were shrink/hold (or none at all). Growth
// is always attributable to a recorded reset, sampling, rollback, or
// validation event — which is what makes the decision trace a complete
// audit of allocation changes.
func TestPropertyGrowthNeedsACause(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		ctl := MustNew(DefaultConfig())
		sys := &quietSystem{ways: 20}
		var kinds []EventKind
		ctl.Trace = func(e Event) { kinds = append(kinds, e.Kind) }
		if err := ctl.Setup(sys); err != nil {
			t.Fatal(err)
		}
		next := randomStream(seed)
		prev := ctl.HPWays()
		for i := 0; i < 400; i++ {
			kinds = kinds[:0]
			ipc, bw, tot := next()
			if err := ctl.Observe(sys, obs(ipc, bw, tot)); err != nil {
				t.Fatal(err)
			}
			hp := ctl.HPWays()
			if hp > prev {
				benign := true
				for _, k := range kinds {
					if k != EventShrink && k != EventHold {
						benign = false
					}
				}
				if len(kinds) == 0 || benign {
					t.Fatalf("seed %d period %d: HP ways grew %d -> %d with decisions %v",
						seed, i, prev, hp, kinds)
				}
			}
			prev = hp
		}
	}
}

// TestPropertyStableUnsaturatedNeverGrows: under a constant IPC and an
// unsaturated link, the allocation is monotone non-increasing — DICER
// only ever hands ways to the BEs — and settles at MinHPWays, after
// which it never changes (the steady hold path).
func TestPropertyStableUnsaturatedNeverGrows(t *testing.T) {
	for _, ipc := range []float64{0.3, 0.8, 1.0, 1.7} {
		ctl := MustNew(DefaultConfig())
		sys := &quietSystem{ways: 20}
		if err := ctl.Setup(sys); err != nil {
			t.Fatal(err)
		}
		steady := obs(ipc, 5, 20)
		prev := ctl.HPWays()
		for i := 0; i < 120; i++ {
			if err := ctl.Observe(sys, steady); err != nil {
				t.Fatal(err)
			}
			hp := ctl.HPWays()
			if hp > prev {
				t.Fatalf("ipc %v period %d: allocation grew %d -> %d under stable unsaturated IPC",
					ipc, i, prev, hp)
			}
			if i > 60 && hp != ctl.Config().MinHPWays {
				t.Fatalf("ipc %v period %d: settled at %d ways, want MinHPWays %d",
					ipc, i, hp, ctl.Config().MinHPWays)
			}
			if ctl.State() == "sampling" {
				t.Fatalf("ipc %v period %d: sampling without saturation", ipc, i)
			}
			prev = hp
		}
	}
}

// TestPropertySamplingNeedsSaturation: streams that never cross the
// bandwidth threshold never put the controller in the sampling state,
// and it keeps believing the workload is CT-Favoured.
func TestPropertySamplingNeedsSaturation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ctl := MustNew(DefaultConfig())
		sys := &quietSystem{ways: 20}
		if err := ctl.Setup(sys); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			p := obs(0.05+1.95*rng.Float64(), 10*rng.Float64(), 45*rng.Float64())
			if err := ctl.Observe(sys, p); err != nil {
				t.Fatal(err)
			}
			if ctl.State() == "sampling" {
				t.Fatalf("seed %d period %d: entered sampling below the threshold", seed, i)
			}
		}
		if !ctl.CTFavoured() {
			t.Fatalf("seed %d: dropped the CT-F assumption without ever saturating", seed)
		}
	}
}

// TestPropertyDecisionsDeterministic: the controller is a pure function
// of its observation stream — two controllers fed identical streams make
// identical decisions, states, and allocations. This is the property the
// trace replay (internal/obs) turns into a regression check for every
// recorded run.
func TestPropertyDecisionsDeterministic(t *testing.T) {
	fingerprint := func(seed int64) string {
		ctl := MustNew(DefaultConfig())
		sys := &quietSystem{ways: 20}
		var out []byte
		ctl.Trace = func(e Event) {
			out = append(out, fmt.Sprintf("%d:%s:%s:%d|", e.Period, e.State, e.Kind, e.HPWays)...)
		}
		if err := ctl.Setup(sys); err != nil {
			t.Fatal(err)
		}
		next := randomStream(seed)
		for i := 0; i < 300; i++ {
			ipc, bw, tot := next()
			if err := ctl.Observe(sys, obs(ipc, bw, tot)); err != nil {
				t.Fatal(err)
			}
		}
		return string(out)
	}
	for seed := int64(0); seed < 5; seed++ {
		a, b := fingerprint(seed), fingerprint(seed)
		if a != b {
			t.Fatalf("seed %d: identical streams produced different decision traces", seed)
		}
		if a == "" {
			t.Fatalf("seed %d: no decisions at all", seed)
		}
	}
	if fingerprint(1) == fingerprint(2) {
		t.Fatal("different streams produced identical decision traces; fingerprint too weak")
	}
}
