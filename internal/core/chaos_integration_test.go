// Integration of the controller with the fault-injection and invariant
// layers. This lives in package core_test because internal/invariant
// imports internal/core; the external test package breaks the cycle.
package core_test

import (
	"errors"
	"fmt"
	"testing"

	"dicer/internal/app"
	"dicer/internal/chaos"
	"dicer/internal/core"
	"dicer/internal/invariant"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
	"dicer/internal/sim"

	"dicer/internal/machine"
)

// chaosRun drives a guarded controller through one chaos schedule and
// returns a decision fingerprint plus the fault stats.
func chaosRun(t *testing.T, sched chaos.Config, seed int64, periods int) (string, chaos.Stats) {
	t.Helper()
	r, err := sim.New(machine.Default(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(0, policy.HPClos, app.MustByName("omnetpp1")); err != nil {
		t.Fatal(err)
	}
	for c := 1; c <= 9; c++ {
		if err := r.Attach(c, policy.BEClos, app.MustByName("gcc_base1")); err != nil {
			t.Fatal(err)
		}
	}
	sys := chaos.New(resctrl.NewEmu(r, false), sched, seed)
	ctl := core.MustNew(core.DefaultConfig())
	g := invariant.NewGuard(ctl, ctl.Config())
	if err := g.Setup(sys); err != nil && !errors.Is(err, chaos.ErrInjected) {
		t.Fatal(err)
	}
	meter := resctrl.NewMeter(sys)
	fp := ""
	for i := 0; i < periods; i++ {
		r.Step(1)
		err := g.Observe(sys, meter.Sample())
		var ie *invariant.Error
		switch {
		case errors.As(err, &ie):
			// Guard joins the inner error with the check result, so a
			// violation is visible even alongside an injected fault.
			t.Fatalf("period %d: invariant violated under %q/seed %d: %v",
				i, sched.Name, seed, err)
		case err == nil, errors.Is(err, chaos.ErrInjected):
			// Actuation fault: retried implicitly next period.
		default:
			t.Fatal(err)
		}
		fp += fmt.Sprintf("%d:%s:%d|", ctl.HPWays(), ctl.State(), ctl.Period())
	}
	return fp, sys.Stats()
}

// TestControllerSurvivesAllSchedules runs the guarded controller under
// every fault schedule: no invariant may break, and the controller must
// keep making one decision per period.
func TestControllerSurvivesAllSchedules(t *testing.T) {
	for _, sched := range chaos.Schedules() {
		sched := sched
		t.Run(sched.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				fp, stats := chaosRun(t, sched, seed, 80)
				if fp == "" {
					t.Fatal("no decisions recorded")
				}
				total := stats.Dropouts + stats.FrozenReads + stats.JitteredReads +
					stats.WritesRejected + stats.WritesDelayed
				if total == 0 {
					t.Errorf("seed %d: schedule injected no faults (%v)", seed, stats)
				}
			}
		})
	}
}

// TestControllerChaosReplay pins determinism at the controller level:
// identical (schedule, seed) yields an identical decision trace.
func TestControllerChaosReplay(t *testing.T) {
	sched, err := chaos.ScheduleByName("storm")
	if err != nil {
		t.Fatal(err)
	}
	fp1, s1 := chaosRun(t, sched, 42, 60)
	fp2, s2 := chaosRun(t, sched, 42, 60)
	if fp1 != fp2 || s1 != s2 {
		t.Fatalf("controller decisions diverged on replay:\n%s\n%s", fp1, fp2)
	}
	fp3, _ := chaosRun(t, sched, 43, 60)
	if fp3 == fp1 {
		t.Error("different seed produced an identical decision trace")
	}
}
