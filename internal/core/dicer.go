// Package core implements DICER, the dynamic cache-partitioning controller
// of the paper (§3, Listings 1–3). DICER co-locates one high-priority (HP)
// application with best-effort (BE) applications and, once per monitoring
// period, adapts the way-based LLC partition between them:
//
//   - It starts exactly like Cache-Takeover: HP owns all but one way
//     (CT_Favoured is assumed true).
//   - If total memory bandwidth exceeds a threshold, the link is
//     saturated: the workload is CT-Thwarted, and DICER *samples*
//     decreasing HP allocations to find the one with the highest HP IPC
//     (optimal_allocation / IPC_opt), then enforces it.
//   - Otherwise it *optimises*: a bandwidth spike against the geometric
//     mean of the previous three periods signals a phase change (Eq. 2)
//     and triggers a reset; stable IPC (Eq. 3) lets DICER shrink HP by one
//     way in favour of the BEs; improved IPC holds; degraded IPC resets.
//   - A *reset* re-applies the best-known allocation (CT's for CT-Favoured
//     workloads, optimal_allocation for CT-Thwarted ones) and validates it
//     over one monitoring period, rolling back or re-sampling as Listing 3
//     prescribes.
//
// The controller is written against the resctrl.System interface and holds
// no simulator state: it sees only per-period IPC and bandwidth readings,
// the same observables a production deployment reads from RDT counters.
package core

import (
	"fmt"

	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

// Config holds DICER's tunables. Defaults (DefaultConfig) are the paper's
// Table 1 values.
type Config struct {
	// PeriodSec is the monitoring-period length T. The controller itself
	// is driven externally once per period; this value is used only for
	// reporting.
	PeriodSec float64
	// BWThresholdGbps is MemBW_threshold: total memory bandwidth above
	// which the link counts as saturated (Table 1: 50 Gbps).
	BWThresholdGbps float64
	// PhaseThreshold is Eq. 2's spike factor over the geometric mean of
	// the previous three periods' HP bandwidth (Table 1: 30 %).
	PhaseThreshold float64
	// StabilityAlpha is Eq. 3's a: IPC within ±a of the previous period
	// counts as stable (Table 1: 5 %).
	StabilityAlpha float64
	// NearOptTolerance decides "performance_near_opt" in the CT-T reset
	// validation: IPC within this fraction below IPC_opt passes.
	NearOptTolerance float64
	// SampleStep is the way decrement between successive sampling
	// allocations (Listing 1's decreasing partition sizes).
	SampleStep int
	// MinHPWays / MinBEWays bound the moving partition. CAT requires at
	// least one way per mask.
	MinHPWays int
	MinBEWays int

	// DisablePhaseDetection turns off Eq. 2 (ablation: how much does the
	// phase detector contribute?). Phase-driven IPC drops then reach the
	// reset path only through the performance check.
	DisablePhaseDetection bool
	// DisableSaturationHandling turns off the bandwidth-saturation check
	// and allocation sampling, reducing DICER to a pure IPC-driven
	// partition optimiser — approximately the DCP-QoS scheme the paper
	// cites as lacking saturation support (ablation).
	DisableSaturationHandling bool
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		PeriodSec:        1.0,
		BWThresholdGbps:  50,
		PhaseThreshold:   0.30,
		StabilityAlpha:   0.05,
		NearOptTolerance: 0.05,
		SampleStep:       2,
		MinHPWays:        1,
		MinBEWays:        1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PeriodSec <= 0 {
		return fmt.Errorf("dicer: non-positive period %g", c.PeriodSec)
	}
	if c.BWThresholdGbps <= 0 {
		return fmt.Errorf("dicer: non-positive bandwidth threshold %g", c.BWThresholdGbps)
	}
	if c.PhaseThreshold <= 0 {
		return fmt.Errorf("dicer: non-positive phase threshold %g", c.PhaseThreshold)
	}
	if c.StabilityAlpha <= 0 || c.StabilityAlpha >= 1 {
		return fmt.Errorf("dicer: stability alpha %g outside (0,1)", c.StabilityAlpha)
	}
	if c.NearOptTolerance <= 0 || c.NearOptTolerance >= 1 {
		return fmt.Errorf("dicer: near-opt tolerance %g outside (0,1)", c.NearOptTolerance)
	}
	if c.SampleStep < 1 {
		return fmt.Errorf("dicer: sample step %d < 1", c.SampleStep)
	}
	if c.MinHPWays < 1 || c.MinBEWays < 1 {
		return fmt.Errorf("dicer: minimum ways must be >= 1 (hp %d, be %d)", c.MinHPWays, c.MinBEWays)
	}
	return nil
}

// state is the controller's per-period mode.
type state int

const (
	stOptimise state = iota // Listing 2: allocation_optimisation
	stSampling              // Listing 1: allocation_sampling in progress
	stValidate              // Listing 3: one-period reset validation
)

func (s state) String() string {
	switch s {
	case stOptimise:
		return "optimise"
	case stSampling:
		return "sampling"
	case stValidate:
		return "validate"
	}
	return "unknown"
}

// EventKind labels a controller decision for tracing.
type EventKind string

// Controller decisions, in the vocabulary of the paper's listings.
const (
	EventShrink      EventKind = "shrink"       // stable IPC: HP loses one way
	EventHold        EventKind = "hold"         // improved IPC: keep allocation
	EventReset       EventKind = "reset"        // degraded IPC or phase change
	EventPhaseChange EventKind = "phase-change" // Eq. 2 fired
	EventSample      EventKind = "sample"       // sampling step applied
	EventSampleDone  EventKind = "sample-done"  // optimal allocation enforced
	EventRollback    EventKind = "rollback"     // CT-F validation failed
	EventValidated   EventKind = "validated"    // reset validation passed
	EventSaturated   EventKind = "saturated"    // bandwidth threshold crossed
)

// Cause maps a decision to the provenance taxonomy: the compact
// operator-facing answer to "why did the mask change this period".
// Decisions that adjust the partition name their mechanism
// (saturation-detected, sampling, shrink-step, phase-reset,
// perf-reset); decisions that keep or confirm it name the evidence
// (steady, validated, rollback). The observability recorder annotates
// every trace record with the period's final cause — overridden by
// guard-veto when the invariant guard intervened and chaos-masked when
// an injected fault swallowed the actuation — so every mask change in
// a trace is explainable without re-deriving the state machine.
func (k EventKind) Cause() string {
	switch k {
	case EventSaturated:
		return "saturation-detected"
	case EventSample, EventSampleDone:
		return "sampling"
	case EventShrink:
		return "shrink-step"
	case EventHold:
		return "steady"
	case EventPhaseChange:
		return "phase-reset"
	case EventReset:
		return "perf-reset"
	case EventRollback:
		return "rollback"
	case EventValidated:
		return "validated"
	}
	return string(k)
}

// Event records one controller decision; examples and tests subscribe via
// Config-free Trace to watch DICER think.
type Event struct {
	Period  int
	State   string
	Kind    EventKind
	Cause   string // provenance tag, Kind.Cause()
	HPWays  int
	HPIPC   float64
	TotalBW float64
}

// Controller is the single-HP DICER state machine. It implements
// policy.Policy by running exactly one groupState (group.go) over the
// whole HP/BE split — the same state machine MultiController runs once
// per cluster group.
type Controller struct {
	cfg Config

	// Trace, when non-nil, receives one Event per decision.
	Trace func(Event)

	period int
	g      groupState

	// sys is the system being actuated, valid for the duration of a
	// Setup/Observe call (the groupHost callbacks need it).
	sys resctrl.System
}

// New creates a DICER controller with the given configuration.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// MustNew is New with a panic on bad configuration, for tests/examples.
func MustNew(cfg Config) *Controller {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements policy.Policy.
func (c *Controller) Name() string { return "DICER" }

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// HPWays returns the HP way count currently enforced.
func (c *Controller) HPWays() int { return c.g.cur }

// Period returns the number of monitoring periods observed since Setup.
// It increments by exactly one per Observe call — the invariant checker
// (internal/invariant) relies on this to verify monotone bookkeeping.
func (c *Controller) Period() int { return c.period }

// CTFavoured reports whether the controller still assumes the workload is
// CT-Favoured (no bandwidth saturation observed so far).
func (c *Controller) CTFavoured() bool { return c.g.ctFavoured }

// State returns the controller state name, for reporting.
func (c *Controller) State() string { return c.g.st.String() }

// Setup implements policy.Policy: DICER begins exactly like CT, assuming a
// CT-Favoured workload (Listing 1's initialisation).
func (c *Controller) Setup(sys resctrl.System) error {
	total := sys.NumWays()
	if total < c.cfg.MinHPWays+c.cfg.MinBEWays {
		return fmt.Errorf("dicer: %d ways cannot satisfy minimums %d+%d",
			total, c.cfg.MinHPWays, c.cfg.MinBEWays)
	}
	c.period = 0
	c.g.init(&c.cfg, 0, c.cfg.MinHPWays, total-c.cfg.MinBEWays)
	c.sys = sys
	return c.applyGroup(&c.g)
}

// Observe implements policy.Policy: one invocation per monitoring period,
// with the period's counter readings. This is Listing 1's dicer_driver
// loop body.
func (c *Controller) Observe(sys resctrl.System, p resctrl.Period) error {
	c.period++
	c.sys = sys
	hpIPC := p.ClosMeanIPC(policy.HPClos)
	hpBW := p.GroupBW(policy.HPClos)
	saturated := p.TotalGbps > c.cfg.BWThresholdGbps && !c.cfg.DisableSaturationHandling
	return c.g.observe(c, hpIPC, hpBW, p.TotalGbps, saturated)
}

// ChainTrace subscribes fn to the controller's decision stream without
// displacing an existing subscriber: both run, existing first. The
// observability recorder uses this so audit traces compose with the
// CLI's -trace printer and test hooks.
func (c *Controller) ChainTrace(fn func(Event)) {
	if fn == nil {
		return
	}
	if prev := c.Trace; prev != nil {
		c.Trace = func(e Event) {
			prev(e)
			fn(e)
		}
		return
	}
	c.Trace = fn
}

// ControllerOf extracts the DICER controller from a policy that is one or
// wraps one (the ext policies and the invariant guard expose
// Controller()). It returns nil for policies without a controller.
func ControllerOf(p policy.Policy) *Controller {
	switch v := p.(type) {
	case *Controller:
		return v
	case interface{ Controller() *Controller }:
		return v.Controller()
	}
	return nil
}

// emitGroup implements groupHost: legacy events carry the controller's
// global period and the group's current allocation as HPWays.
func (c *Controller) emitGroup(g *groupState, kind EventKind, ipc, totalBW float64) {
	if c.Trace == nil {
		return
	}
	c.Trace(Event{
		Period:  c.period,
		State:   g.st.String(),
		Kind:    kind,
		Cause:   kind.Cause(),
		HPWays:  g.cur,
		HPIPC:   ipc,
		TotalBW: totalBW,
	})
}

// applyGroup implements groupHost: the single group IS the HP partition,
// so installing it is the classic two-CLOS split.
func (c *Controller) applyGroup(g *groupState) error {
	return policy.SplitWays(c.sys, g.cur)
}

var _ policy.Policy = (*Controller)(nil)
