// Package core implements DICER, the dynamic cache-partitioning controller
// of the paper (§3, Listings 1–3). DICER co-locates one high-priority (HP)
// application with best-effort (BE) applications and, once per monitoring
// period, adapts the way-based LLC partition between them:
//
//   - It starts exactly like Cache-Takeover: HP owns all but one way
//     (CT_Favoured is assumed true).
//   - If total memory bandwidth exceeds a threshold, the link is
//     saturated: the workload is CT-Thwarted, and DICER *samples*
//     decreasing HP allocations to find the one with the highest HP IPC
//     (optimal_allocation / IPC_opt), then enforces it.
//   - Otherwise it *optimises*: a bandwidth spike against the geometric
//     mean of the previous three periods signals a phase change (Eq. 2)
//     and triggers a reset; stable IPC (Eq. 3) lets DICER shrink HP by one
//     way in favour of the BEs; improved IPC holds; degraded IPC resets.
//   - A *reset* re-applies the best-known allocation (CT's for CT-Favoured
//     workloads, optimal_allocation for CT-Thwarted ones) and validates it
//     over one monitoring period, rolling back or re-sampling as Listing 3
//     prescribes.
//
// The controller is written against the resctrl.System interface and holds
// no simulator state: it sees only per-period IPC and bandwidth readings,
// the same observables a production deployment reads from RDT counters.
package core

import (
	"fmt"
	"math"

	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

// Config holds DICER's tunables. Defaults (DefaultConfig) are the paper's
// Table 1 values.
type Config struct {
	// PeriodSec is the monitoring-period length T. The controller itself
	// is driven externally once per period; this value is used only for
	// reporting.
	PeriodSec float64
	// BWThresholdGbps is MemBW_threshold: total memory bandwidth above
	// which the link counts as saturated (Table 1: 50 Gbps).
	BWThresholdGbps float64
	// PhaseThreshold is Eq. 2's spike factor over the geometric mean of
	// the previous three periods' HP bandwidth (Table 1: 30 %).
	PhaseThreshold float64
	// StabilityAlpha is Eq. 3's a: IPC within ±a of the previous period
	// counts as stable (Table 1: 5 %).
	StabilityAlpha float64
	// NearOptTolerance decides "performance_near_opt" in the CT-T reset
	// validation: IPC within this fraction below IPC_opt passes.
	NearOptTolerance float64
	// SampleStep is the way decrement between successive sampling
	// allocations (Listing 1's decreasing partition sizes).
	SampleStep int
	// MinHPWays / MinBEWays bound the moving partition. CAT requires at
	// least one way per mask.
	MinHPWays int
	MinBEWays int

	// DisablePhaseDetection turns off Eq. 2 (ablation: how much does the
	// phase detector contribute?). Phase-driven IPC drops then reach the
	// reset path only through the performance check.
	DisablePhaseDetection bool
	// DisableSaturationHandling turns off the bandwidth-saturation check
	// and allocation sampling, reducing DICER to a pure IPC-driven
	// partition optimiser — approximately the DCP-QoS scheme the paper
	// cites as lacking saturation support (ablation).
	DisableSaturationHandling bool
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		PeriodSec:        1.0,
		BWThresholdGbps:  50,
		PhaseThreshold:   0.30,
		StabilityAlpha:   0.05,
		NearOptTolerance: 0.05,
		SampleStep:       2,
		MinHPWays:        1,
		MinBEWays:        1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PeriodSec <= 0 {
		return fmt.Errorf("dicer: non-positive period %g", c.PeriodSec)
	}
	if c.BWThresholdGbps <= 0 {
		return fmt.Errorf("dicer: non-positive bandwidth threshold %g", c.BWThresholdGbps)
	}
	if c.PhaseThreshold <= 0 {
		return fmt.Errorf("dicer: non-positive phase threshold %g", c.PhaseThreshold)
	}
	if c.StabilityAlpha <= 0 || c.StabilityAlpha >= 1 {
		return fmt.Errorf("dicer: stability alpha %g outside (0,1)", c.StabilityAlpha)
	}
	if c.NearOptTolerance <= 0 || c.NearOptTolerance >= 1 {
		return fmt.Errorf("dicer: near-opt tolerance %g outside (0,1)", c.NearOptTolerance)
	}
	if c.SampleStep < 1 {
		return fmt.Errorf("dicer: sample step %d < 1", c.SampleStep)
	}
	if c.MinHPWays < 1 || c.MinBEWays < 1 {
		return fmt.Errorf("dicer: minimum ways must be >= 1 (hp %d, be %d)", c.MinHPWays, c.MinBEWays)
	}
	return nil
}

// state is the controller's per-period mode.
type state int

const (
	stOptimise state = iota // Listing 2: allocation_optimisation
	stSampling              // Listing 1: allocation_sampling in progress
	stValidate              // Listing 3: one-period reset validation
)

func (s state) String() string {
	switch s {
	case stOptimise:
		return "optimise"
	case stSampling:
		return "sampling"
	case stValidate:
		return "validate"
	}
	return "unknown"
}

// EventKind labels a controller decision for tracing.
type EventKind string

// Controller decisions, in the vocabulary of the paper's listings.
const (
	EventShrink      EventKind = "shrink"       // stable IPC: HP loses one way
	EventHold        EventKind = "hold"         // improved IPC: keep allocation
	EventReset       EventKind = "reset"        // degraded IPC or phase change
	EventPhaseChange EventKind = "phase-change" // Eq. 2 fired
	EventSample      EventKind = "sample"       // sampling step applied
	EventSampleDone  EventKind = "sample-done"  // optimal allocation enforced
	EventRollback    EventKind = "rollback"     // CT-F validation failed
	EventValidated   EventKind = "validated"    // reset validation passed
	EventSaturated   EventKind = "saturated"    // bandwidth threshold crossed
)

// Cause maps a decision to the provenance taxonomy: the compact
// operator-facing answer to "why did the mask change this period".
// Decisions that adjust the partition name their mechanism
// (saturation-detected, sampling, shrink-step, phase-reset,
// perf-reset); decisions that keep or confirm it name the evidence
// (steady, validated, rollback). The observability recorder annotates
// every trace record with the period's final cause — overridden by
// guard-veto when the invariant guard intervened and chaos-masked when
// an injected fault swallowed the actuation — so every mask change in
// a trace is explainable without re-deriving the state machine.
func (k EventKind) Cause() string {
	switch k {
	case EventSaturated:
		return "saturation-detected"
	case EventSample, EventSampleDone:
		return "sampling"
	case EventShrink:
		return "shrink-step"
	case EventHold:
		return "steady"
	case EventPhaseChange:
		return "phase-reset"
	case EventReset:
		return "perf-reset"
	case EventRollback:
		return "rollback"
	case EventValidated:
		return "validated"
	}
	return string(k)
}

// Event records one controller decision; examples and tests subscribe via
// Config-free Trace to watch DICER think.
type Event struct {
	Period  int
	State   string
	Kind    EventKind
	Cause   string // provenance tag, Kind.Cause()
	HPWays  int
	HPIPC   float64
	TotalBW float64
}

// Controller is the DICER state machine. It implements policy.Policy.
type Controller struct {
	cfg Config

	// Trace, when non-nil, receives one Event per decision.
	Trace func(Event)

	period     int
	st         state
	ctFavoured bool
	curHP      int // HP ways currently enforced

	// Best-known allocation for CT-T workloads (Listing 1's
	// optimal_allocation and IPC_opt).
	optimalHP int
	ipcOpt    float64

	// IPC of the previous monitoring period (Eq. 3's IPC_{t-1}).
	prevIPC  float64
	havePrev bool

	// HP bandwidth history for phase detection (Eq. 2). A fixed ring
	// buffer keeps Observe allocation-free on the hot path (the alloc
	// guard in alloc_test.go pins this down).
	bwHist [3]float64
	bwLen  int // valid entries in bwHist (0..3)
	bwPos  int // next write position

	// Sampling bookkeeping.
	sampleHP int
	bestHP   int
	bestIPC  float64

	// Reset bookkeeping (Listing 3).
	rollbackHP      int
	resetTriggerIPC float64
}

// New creates a DICER controller with the given configuration.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// MustNew is New with a panic on bad configuration, for tests/examples.
func MustNew(cfg Config) *Controller {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements policy.Policy.
func (c *Controller) Name() string { return "DICER" }

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// HPWays returns the HP way count currently enforced.
func (c *Controller) HPWays() int { return c.curHP }

// Period returns the number of monitoring periods observed since Setup.
// It increments by exactly one per Observe call — the invariant checker
// (internal/invariant) relies on this to verify monotone bookkeeping.
func (c *Controller) Period() int { return c.period }

// CTFavoured reports whether the controller still assumes the workload is
// CT-Favoured (no bandwidth saturation observed so far).
func (c *Controller) CTFavoured() bool { return c.ctFavoured }

// State returns the controller state name, for reporting.
func (c *Controller) State() string { return c.st.String() }

// Setup implements policy.Policy: DICER begins exactly like CT, assuming a
// CT-Favoured workload (Listing 1's initialisation).
func (c *Controller) Setup(sys resctrl.System) error {
	total := sys.NumWays()
	if total < c.cfg.MinHPWays+c.cfg.MinBEWays {
		return fmt.Errorf("dicer: %d ways cannot satisfy minimums %d+%d",
			total, c.cfg.MinHPWays, c.cfg.MinBEWays)
	}
	c.period = 0
	c.st = stOptimise
	c.ctFavoured = true
	c.curHP = total - c.cfg.MinBEWays
	c.optimalHP = c.curHP
	c.ipcOpt = 0
	c.prevIPC = 0
	c.havePrev = false
	c.clearBW()
	return policy.SplitWays(sys, c.curHP)
}

// Observe implements policy.Policy: one invocation per monitoring period,
// with the period's counter readings. This is Listing 1's dicer_driver
// loop body.
func (c *Controller) Observe(sys resctrl.System, p resctrl.Period) error {
	c.period++
	hpIPC := p.ClosMeanIPC(policy.HPClos)
	hpBW := p.GroupBW(policy.HPClos)
	saturated := p.TotalGbps > c.cfg.BWThresholdGbps && !c.cfg.DisableSaturationHandling

	switch c.st {
	case stSampling:
		return c.observeSampling(sys, hpIPC, p.TotalGbps)
	case stValidate:
		return c.observeValidate(sys, hpIPC, p.TotalGbps, saturated)
	default:
		return c.observeOptimise(sys, hpIPC, hpBW, p.TotalGbps, saturated)
	}
}

// observeOptimise is Listing 2 plus Listing 1's saturation check.
func (c *Controller) observeOptimise(sys resctrl.System, hpIPC, hpBW, totalBW float64, saturated bool) error {
	if saturated {
		c.emit(EventSaturated, hpIPC, totalBW)
		return c.startSampling(sys, hpIPC, totalBW)
	}

	phase := c.phaseChange(hpBW) && !c.cfg.DisablePhaseDetection
	c.pushBW(hpBW)
	if phase {
		c.emit(EventPhaseChange, hpIPC, totalBW)
		return c.reset(sys, hpIPC, totalBW)
	}

	if !c.havePrev {
		c.prevIPC = hpIPC
		c.havePrev = true
		c.emit(EventHold, hpIPC, totalBW)
		return nil
	}

	lo := (1 - c.cfg.StabilityAlpha) * c.prevIPC
	hi := (1 + c.cfg.StabilityAlpha) * c.prevIPC
	switch {
	case hpIPC >= lo && hpIPC <= hi:
		// Stable (Eq. 3): the allocation exceeds HP's needs; shift one way
		// to the BEs to raise utilisation.
		c.prevIPC = hpIPC
		if c.curHP > c.cfg.MinHPWays {
			c.curHP--
			c.emit(EventShrink, hpIPC, totalBW)
			return policy.SplitWays(sys, c.curHP)
		}
		c.emit(EventHold, hpIPC, totalBW)
		return nil
	case hpIPC > hi:
		// Better: a faster phase with the same cache needs; hold.
		c.prevIPC = hpIPC
		c.emit(EventHold, hpIPC, totalBW)
		return nil
	default:
		// Worse: either the shrinking went too far or a slower phase
		// began; Listing 2 resets in both cases.
		c.emit(EventReset, hpIPC, totalBW)
		return c.reset(sys, hpIPC, totalBW)
	}
}

// phaseChange evaluates Eq. 2 against the previous three periods.
func (c *Controller) phaseChange(hpBW float64) bool {
	if c.bwLen < 3 {
		return false
	}
	g := math.Cbrt(c.bwHist[0] * c.bwHist[1] * c.bwHist[2])
	return hpBW > (1+c.cfg.PhaseThreshold)*g
}

func (c *Controller) pushBW(bw float64) {
	c.bwHist[c.bwPos] = bw
	c.bwPos = (c.bwPos + 1) % len(c.bwHist)
	if c.bwLen < len(c.bwHist) {
		c.bwLen++
	}
}

// clearBW empties the bandwidth history (after allocation changes, old
// readings would fake a phase change).
func (c *Controller) clearBW() {
	c.bwLen = 0
	c.bwPos = 0
}

// startSampling begins Listing 1's allocation_sampling. The current
// period's reading becomes the first sample (it measured curHP ways).
func (c *Controller) startSampling(sys resctrl.System, hpIPC, totalBW float64) error {
	c.ctFavoured = false
	c.st = stSampling
	c.bestHP = c.curHP
	c.bestIPC = hpIPC
	c.sampleHP = c.curHP
	return c.applyNextSample(sys, hpIPC, totalBW)
}

// observeSampling records the sample measured over the elapsed period and
// applies the next one, or enforces the optimum when done.
func (c *Controller) observeSampling(sys resctrl.System, hpIPC, totalBW float64) error {
	if hpIPC > c.bestIPC {
		c.bestIPC = hpIPC
		c.bestHP = c.sampleHP
	}
	return c.applyNextSample(sys, hpIPC, totalBW)
}

// applyNextSample steps the sampled allocation down, or finishes sampling.
func (c *Controller) applyNextSample(sys resctrl.System, hpIPC, totalBW float64) error {
	next := c.sampleHP - c.cfg.SampleStep
	if next >= c.cfg.MinHPWays {
		c.sampleHP = next
		c.curHP = next
		c.emit(EventSample, hpIPC, totalBW)
		return policy.SplitWays(sys, next)
	}
	// Sampling complete: enforce optimal_allocation and restart the
	// optimisation from there (Listing 1: allocation_sampling).
	c.optimalHP = c.bestHP
	c.ipcOpt = c.bestIPC
	c.curHP = c.optimalHP
	c.st = stOptimise
	c.prevIPC = c.ipcOpt
	c.havePrev = true
	c.clearBW()
	c.emit(EventSampleDone, hpIPC, totalBW)
	return policy.SplitWays(sys, c.curHP)
}

// reset applies Listing 3's allocation_reset: re-enforce the best-known
// allocation and validate it over the next period.
func (c *Controller) reset(sys resctrl.System, hpIPC, totalBW float64) error {
	c.rollbackHP = c.curHP
	c.resetTriggerIPC = hpIPC
	if c.ctFavoured {
		c.curHP = sys.NumWays() - c.cfg.MinBEWays
	} else {
		c.curHP = c.optimalHP
	}
	c.st = stValidate
	return policy.SplitWays(sys, c.curHP)
}

// observeValidate is the monitoring period embedded in Listing 3.
func (c *Controller) observeValidate(sys resctrl.System, hpIPC, totalBW float64, saturated bool) error {
	if saturated {
		c.emit(EventSaturated, hpIPC, totalBW)
		return c.startSampling(sys, hpIPC, totalBW)
	}
	if c.ctFavoured {
		if hpIPC > c.resetTriggerIPC {
			// The reset helped: the degradation was allocation-induced.
			c.resumeOptimise(hpIPC)
			c.emit(EventValidated, hpIPC, totalBW)
			return nil
		}
		// The degradation was a slower phase, not the allocation: revert.
		c.curHP = c.rollbackHP
		c.resumeOptimise(hpIPC)
		c.emit(EventRollback, hpIPC, totalBW)
		return policy.SplitWays(sys, c.curHP)
	}
	// CT-Thwarted: the reverted allocation must reproduce IPC_opt.
	if hpIPC >= (1-c.cfg.NearOptTolerance)*c.ipcOpt {
		c.resumeOptimise(hpIPC)
		c.emit(EventValidated, hpIPC, totalBW)
		return nil
	}
	// The optimum has moved: sample again.
	c.emit(EventReset, hpIPC, totalBW)
	return c.startSampling(sys, hpIPC, totalBW)
}

// resumeOptimise returns to the optimisation state with a fresh IPC
// baseline and cleared bandwidth history (the allocation just changed, so
// old bandwidth readings would fake a phase change).
func (c *Controller) resumeOptimise(hpIPC float64) {
	c.st = stOptimise
	c.prevIPC = hpIPC
	c.havePrev = true
	c.clearBW()
}

// ChainTrace subscribes fn to the controller's decision stream without
// displacing an existing subscriber: both run, existing first. The
// observability recorder uses this so audit traces compose with the
// CLI's -trace printer and test hooks.
func (c *Controller) ChainTrace(fn func(Event)) {
	if fn == nil {
		return
	}
	if prev := c.Trace; prev != nil {
		c.Trace = func(e Event) {
			prev(e)
			fn(e)
		}
		return
	}
	c.Trace = fn
}

// ControllerOf extracts the DICER controller from a policy that is one or
// wraps one (the ext policies and the invariant guard expose
// Controller()). It returns nil for policies without a controller.
func ControllerOf(p policy.Policy) *Controller {
	switch v := p.(type) {
	case *Controller:
		return v
	case interface{ Controller() *Controller }:
		return v.Controller()
	}
	return nil
}

func (c *Controller) emit(kind EventKind, hpIPC, totalBW float64) {
	if c.Trace == nil {
		return
	}
	c.Trace(Event{
		Period:  c.period,
		State:   c.st.String(),
		Kind:    kind,
		Cause:   kind.Cause(),
		HPWays:  c.curHP,
		HPIPC:   hpIPC,
		TotalBW: totalBW,
	})
}

var _ policy.Policy = (*Controller)(nil)
