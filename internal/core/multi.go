package core

import (
	"fmt"

	"dicer/internal/cache"
	"dicer/internal/cluster"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

// Grouping selects how MultiController maps HP apps to CLOS groups.
const (
	GroupingClustered = "clustered"     // LFOC-style sensitivity clustering
	GroupingPerApp    = "per-app"       // one CLOS per HP app (naive baseline)
	GroupingSpill     = "per-app-spill" // per-app until the ids run out, overflow shares the last group
	GroupingSingle    = "single"        // all HP apps share one CLOS
)

// MultiConfig configures the multi-HP controller.
type MultiConfig struct {
	// Group carries the per-group DICER tunables (thresholds, stability
	// band, sample step). MinHPWays/MinBEWays inside it are ignored;
	// MinGroupWays/MinBEWays below replace them.
	Group Config

	// WayBytes is the LLC capacity of one way, needed to evaluate miss
	// curves during clustering (resctrl.System exposes only way counts).
	WayBytes float64

	// CLOSBudget is the number of CLOS ids the hardware exposes; the
	// plan uses at most CLOSBudget-1 HP groups plus the BE group, which
	// is pinned to CLOS id CLOSBudget-1. Real CAT: ~16.
	CLOSBudget int

	// Grouping is one of GroupingClustered (default when empty),
	// GroupingPerApp, GroupingSpill, GroupingSingle.
	Grouping string

	MinGroupWays int     // CAT floor per HP group (default 1)
	MinBEWays    int     // ways reserved for BE (default 1)
	KneeEps      float64 // cluster demand-knee cutoff (0 = cluster default)

	// ReclusterEvery re-evaluates the grouping every N periods (0 =
	// grouping fixed at Setup). Re-clustering needs a resctrl.CoreMover
	// substrate; groups whose membership changes restart their state
	// machine from CT's starting point.
	ReclusterEvery int

	// UsePhaseHints honours AppSpec.Hint curves during re-clustering
	// (Com-CAS-style: regroup ahead of the phase change). When false,
	// hints are ignored and re-clustering is reactive only.
	UsePhaseHints bool
}

// withDefaults fills zero values.
func (c MultiConfig) withDefaults() MultiConfig {
	if c.Grouping == "" {
		c.Grouping = GroupingClustered
	}
	if c.MinGroupWays == 0 {
		c.MinGroupWays = 1
	}
	if c.MinBEWays == 0 {
		c.MinBEWays = 1
	}
	return c
}

// Validate reports configuration errors.
func (c MultiConfig) Validate() error {
	if err := c.Group.Validate(); err != nil {
		return err
	}
	if c.WayBytes <= 0 {
		return fmt.Errorf("dicer: multi config needs positive WayBytes, got %g", c.WayBytes)
	}
	if c.CLOSBudget < 2 {
		return fmt.Errorf("dicer: CLOS budget %d < 2", c.CLOSBudget)
	}
	switch c.Grouping {
	case GroupingClustered, GroupingPerApp, GroupingSpill, GroupingSingle:
	default:
		return fmt.Errorf("dicer: unknown grouping %q", c.Grouping)
	}
	if c.MinGroupWays < 1 || c.MinBEWays < 1 {
		return fmt.Errorf("dicer: minimum ways must be >= 1 (group %d, be %d)", c.MinGroupWays, c.MinBEWays)
	}
	if c.ReclusterEvery < 0 {
		return fmt.Errorf("dicer: negative recluster interval %d", c.ReclusterEvery)
	}
	return nil
}

// GroupEvent is one multi-HP controller decision: the legacy Event plus
// the CLOS group it concerns. HPWays/HPIPC carry the group's allocation
// and mean member IPC.
type GroupEvent struct {
	Group int
	Event
}

// EventRecluster is emitted once per group when a re-cluster installs a
// new grouping (the group's state machine restarts).
const EventRecluster EventKind = "recluster"

// MultiController runs one DICER state machine per CLOS group of HP
// applications, under an LFOC-style clustering plan. It implements
// policy.Policy: group i is CLOS i, the BE partition is pinned to CLOS
// CLOSBudget-1, and masks are stacked from the top of the LLC —
// contiguous, disjoint, and at one group exactly the legacy
// HPMask/BEMask split.
type MultiController struct {
	cfg MultiConfig

	// Trace, when non-nil, receives one GroupEvent per decision.
	Trace func(GroupEvent)

	specs []cluster.AppSpec // caller-owned view, refreshed via UpdateSpecs
	plan  cluster.Plan
	ccfg  cluster.Config

	groups     []groupState
	totalWays  int
	beClos     int
	period     int
	sys        resctrl.System
	masksDirty bool

	// scratch for re-clustering (allocated once, reused).
	scratchSpecs []cluster.AppSpec
}

// NewMulti creates a multi-HP controller over the given app specs. The
// spec slice is copied; refresh per-phase curves with UpdateSpecs.
func NewMulti(cfg MultiConfig, specs []cluster.AppSpec) (*MultiController, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("dicer: multi controller needs at least one HP app")
	}
	mc := &MultiController{cfg: cfg}
	mc.specs = make([]cluster.AppSpec, len(specs))
	copy(mc.specs, specs)
	mc.scratchSpecs = make([]cluster.AppSpec, len(specs))
	return mc, nil
}

// MustNewMulti is NewMulti with a panic on bad configuration.
func MustNewMulti(cfg MultiConfig, specs []cluster.AppSpec) *MultiController {
	mc, err := NewMulti(cfg, specs)
	if err != nil {
		panic(err)
	}
	return mc
}

// Name implements policy.Policy.
func (mc *MultiController) Name() string { return "DICER-" + mc.cfg.Grouping }

// Config returns the controller configuration.
func (mc *MultiController) Config() MultiConfig { return mc.cfg }

// Period returns the number of monitoring periods observed since Setup.
func (mc *MultiController) Period() int { return mc.period }

// Plan returns the grouping currently enforced.
func (mc *MultiController) Plan() cluster.Plan { return mc.plan }

// NumGroups returns the number of HP CLOS groups currently enforced.
func (mc *MultiController) NumGroups() int { return len(mc.groups) }

// BEClos returns the CLOS id of the best-effort partition.
func (mc *MultiController) BEClos() int { return mc.beClos }

// GroupWays returns group gi's currently enforced allocation.
func (mc *MultiController) GroupWays(gi int) int { return mc.groups[gi].cur }

// GroupState returns group gi's state name, for reporting.
func (mc *MultiController) GroupState(gi int) string { return mc.groups[gi].st.String() }

// GroupOf returns the CLOS group of HP app i under the current plan.
func (mc *MultiController) GroupOf(app int) int { return mc.plan.GroupOf(app) }

// UpdateSpecs refreshes the per-app planning view (current-phase curves
// and optional upcoming-phase hints). Call it before Observe on periods
// where phases may have moved; it copies in place and does not replan —
// the re-cluster schedule decides when plans change. The slice length
// must match the construction-time app count.
func (mc *MultiController) UpdateSpecs(specs []cluster.AppSpec) error {
	if len(specs) != len(mc.specs) {
		return fmt.Errorf("dicer: spec count changed %d -> %d", len(mc.specs), len(specs))
	}
	copy(mc.specs, specs)
	return nil
}

// Setup implements policy.Policy: plan the grouping, move every HP core
// into its group's CLOS, and install the stacked masks with BE at its
// floor (CT's starting point in every group).
func (mc *MultiController) Setup(sys resctrl.System) error {
	total := sys.NumWays()
	if sys.NumClos() < mc.cfg.CLOSBudget {
		return fmt.Errorf("dicer: system has %d CLOS, config budgets %d", sys.NumClos(), mc.cfg.CLOSBudget)
	}
	mc.ccfg = cluster.Config{
		TotalWays:    total,
		WayBytes:     mc.cfg.WayBytes,
		CLOSBudget:   mc.cfg.CLOSBudget,
		MinGroupWays: mc.cfg.MinGroupWays,
		MinBEWays:    mc.cfg.MinBEWays,
		KneeEps:      mc.cfg.KneeEps,
	}
	plan, err := mc.planNow(false)
	if err != nil {
		return err
	}
	mc.totalWays = total
	mc.beClos = mc.cfg.CLOSBudget - 1
	mc.period = 0
	mc.sys = sys
	return mc.installPlan(plan)
}

// planNow computes the plan for the current specs. hints controls
// whether AppSpec.Hint curves participate (they never do when the
// config disables phase hints).
func (mc *MultiController) planNow(hints bool) (cluster.Plan, error) {
	specs := mc.specs
	if !hints || !mc.cfg.UsePhaseHints {
		specs = mc.scratchSpecs
		copy(specs, mc.specs)
		for i := range specs {
			specs[i].Hint = nil
		}
	}
	switch mc.cfg.Grouping {
	case GroupingPerApp:
		return cluster.PerApp(mc.ccfg, specs)
	case GroupingSpill:
		return cluster.PerAppSpill(mc.ccfg, specs)
	case GroupingSingle:
		return cluster.Single(mc.ccfg, specs)
	default:
		return cluster.Assign(mc.ccfg, specs)
	}
}

// installPlan moves cores into their plan groups, restarts every group's
// state machine at its budget, and installs the stacked masks. Plans
// with more than the available HP CLOS ids are rejected by planning, so
// group i maps directly to CLOS i.
func (mc *MultiController) installPlan(plan cluster.Plan) error {
	k := len(plan.Groups)
	if k > mc.beClos {
		return fmt.Errorf("dicer: plan has %d groups, budget allows %d", k, mc.beClos)
	}
	if mover, ok := mc.sys.(resctrl.CoreMover); ok {
		for gi, g := range plan.Groups {
			for _, appIdx := range g.Apps {
				if err := mover.MoveCore(mc.specs[appIdx].Core, gi); err != nil {
					return err
				}
			}
		}
	} else if k != 1 {
		// Without a core mover the caller must have attached every HP
		// app to CLOS 0 already; only the degenerate one-group plan can
		// be honoured.
		return fmt.Errorf("dicer: system cannot move cores between CLOS groups")
	}
	mc.plan = plan
	if cap(mc.groups) < k {
		mc.groups = make([]groupState, k)
	}
	mc.groups = mc.groups[:k]
	for gi := range mc.groups {
		mc.groups[gi].init(&mc.cfg.Group, gi, mc.cfg.MinGroupWays, plan.Groups[gi].Ways)
	}
	// Idle CLOS ids between the last group and the BE partition get a
	// harmless low-way mask (they hold no cores).
	for clos := k; clos < mc.beClos; clos++ {
		if err := mc.sys.SetCBM(clos, cache.ContiguousMask(0, 1)); err != nil {
			return err
		}
	}
	return mc.installMasks()
}

// installMasks lays the groups' current allocations out from the top of
// the LLC and gives the BE partition the low-order remainder. Group
// budgets sum to at most TotalWays-MinBEWays, so BE keeps its floor.
func (mc *MultiController) installMasks() error {
	top := mc.totalWays
	for gi := range mc.groups {
		w := mc.groups[gi].cur
		if err := mc.sys.SetCBM(gi, cache.ContiguousMask(top-w, w)); err != nil {
			return err
		}
		top -= w
	}
	return mc.sys.SetCBM(mc.beClos, cache.ContiguousMask(0, top))
}

// Observe implements policy.Policy: one invocation per monitoring
// period. Every group runs its own Listing 1–3 step against its CLOS's
// mean IPC and bandwidth; mask changes from all groups are installed in
// one stacked relayout; the re-cluster schedule then gets a chance to
// regroup (reactively, or ahead of hinted phase changes).
func (mc *MultiController) Observe(sys resctrl.System, p resctrl.Period) error {
	mc.period++
	mc.sys = sys
	saturated := p.TotalGbps > mc.cfg.Group.BWThresholdGbps && !mc.cfg.Group.DisableSaturationHandling

	mc.masksDirty = false
	var firstErr error
	for gi := range mc.groups {
		g := &mc.groups[gi]
		ipc := p.ClosMeanIPC(gi)
		bw := p.GroupBW(gi)
		if err := g.observe(mc, ipc, bw, p.TotalGbps, saturated); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if mc.masksDirty {
		if err := mc.installMasks(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if mc.cfg.ReclusterEvery > 0 && mc.period%mc.cfg.ReclusterEvery == 0 {
		return mc.maybeRecluster(p)
	}
	return nil
}

// maybeRecluster replans against the freshest specs and installs the new
// grouping when membership changed. Group state restarts on change —
// the partition landscape under a new grouping invalidates old optima.
func (mc *MultiController) maybeRecluster(p resctrl.Period) error {
	plan, err := mc.planNow(true)
	if err != nil {
		return err
	}
	if samePlan(mc.plan, plan) {
		return nil
	}
	if err := mc.installPlan(plan); err != nil {
		return err
	}
	if mc.Trace != nil {
		for gi := range mc.groups {
			mc.emitGroup(&mc.groups[gi], EventRecluster, p.ClosMeanIPC(gi), p.TotalGbps)
		}
	}
	return nil
}

// Replan recomputes the clustering against the freshest specs and
// installs it when membership or budgets changed, reporting whether a
// new plan went in. This is the fleet autoscaler's repartition-first
// hook: unlike the periodic re-cluster schedule it runs on demand,
// outside Observe, so an external controller can force a repack of the
// node's cache groups before resorting to added capacity. Group state
// restarts on change, exactly as a scheduled re-cluster would.
func (mc *MultiController) Replan() (bool, error) {
	plan, err := mc.planNow(true)
	if err != nil {
		return false, err
	}
	if samePlan(mc.plan, plan) {
		return false, nil
	}
	if err := mc.installPlan(plan); err != nil {
		return false, err
	}
	return true, nil
}

// samePlan reports whether two plans group the same apps together with
// the same budgets (group order is deterministic, so index-wise
// comparison suffices).
func samePlan(a, b cluster.Plan) bool {
	if len(a.Groups) != len(b.Groups) {
		return false
	}
	for gi := range a.Groups {
		if a.Groups[gi].Ways != b.Groups[gi].Ways || len(a.Groups[gi].Apps) != len(b.Groups[gi].Apps) {
			return false
		}
		for i, app := range a.Groups[gi].Apps {
			if b.Groups[gi].Apps[i] != app {
				return false
			}
		}
	}
	return true
}

// emitGroup implements groupHost.
func (mc *MultiController) emitGroup(g *groupState, kind EventKind, ipc, totalBW float64) {
	if mc.Trace == nil {
		return
	}
	mc.Trace(GroupEvent{
		Group: g.idx,
		Event: Event{
			Period:  mc.period,
			State:   g.st.String(),
			Kind:    kind,
			Cause:   kind.Cause(),
			HPWays:  g.cur,
			HPIPC:   ipc,
			TotalBW: totalBW,
		},
	})
}

// applyGroup implements groupHost: group mask changes are batched into
// one stacked relayout per Observe.
func (mc *MultiController) applyGroup(g *groupState) error {
	mc.masksDirty = true
	return nil
}

// ChainTrace subscribes fn to the decision stream without displacing an
// existing subscriber: both run, existing first.
func (mc *MultiController) ChainTrace(fn func(GroupEvent)) {
	if fn == nil {
		return
	}
	if prev := mc.Trace; prev != nil {
		mc.Trace = func(e GroupEvent) {
			prev(e)
			fn(e)
		}
		return
	}
	mc.Trace = fn
}

var _ policy.Policy = (*MultiController)(nil)
