package core

import (
	"fmt"
	"math/bits"
	"testing"
	"testing/quick"

	"dicer/internal/cache"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

// fakeSystem is a scripted resctrl.System for controller unit tests: it
// records every mask write and nothing else.
type fakeSystem struct {
	ways  int
	masks map[int]uint64
	log   []string
}

func newFake(ways int) *fakeSystem {
	return &fakeSystem{ways: ways, masks: map[int]uint64{}}
}

func (f *fakeSystem) NumWays() int { return f.ways }
func (f *fakeSystem) NumClos() int { return 2 }
func (f *fakeSystem) SetCBM(clos int, mask uint64) error {
	if err := cache.CheckMask(mask, f.ways); err != nil {
		return err
	}
	f.masks[clos] = mask
	f.log = append(f.log, fmt.Sprintf("%d=%x", clos, mask))
	return nil
}
func (f *fakeSystem) CBM(clos int) uint64          { return f.masks[clos] }
func (f *fakeSystem) SetMBACap(int, float64) error { return fmt.Errorf("no MBA") }
func (f *fakeSystem) LinkCapacityGbps() float64    { return 68.3 }
func (f *fakeSystem) Counters() resctrl.Counters   { return resctrl.Counters{} }

func (f *fakeSystem) hpWays() int { return bits.OnesCount64(f.masks[policy.HPClos]) }
func (f *fakeSystem) beWays() int { return bits.OnesCount64(f.masks[policy.BEClos]) }

// obs builds a monitoring-period reading with the given HP IPC, HP
// bandwidth and total bandwidth.
func obs(hpIPC, hpBW, totalBW float64) resctrl.Period {
	return resctrl.Period{
		Seconds: 1,
		Cores: []resctrl.PeriodCore{
			{Core: 0, Clos: policy.HPClos, IPC: hpIPC},
			{Core: 1, Clos: policy.BEClos, IPC: 0.5},
		},
		Groups: []resctrl.PeriodGroup{
			{Clos: policy.HPClos, BandwidthGbps: hpBW},
			{Clos: policy.BEClos, BandwidthGbps: totalBW - hpBW},
		},
		TotalGbps: totalBW,
	}
}

func newCtl(t *testing.T, mutate ...func(*Config)) (*Controller, *fakeSystem) {
	t.Helper()
	cfg := DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys := newFake(20)
	if err := ctl.Setup(sys); err != nil {
		t.Fatal(err)
	}
	return ctl, sys
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.PeriodSec = 0 },
		func(c *Config) { c.BWThresholdGbps = 0 },
		func(c *Config) { c.PhaseThreshold = 0 },
		func(c *Config) { c.StabilityAlpha = 0 },
		func(c *Config) { c.StabilityAlpha = 1 },
		func(c *Config) { c.NearOptTolerance = 0 },
		func(c *Config) { c.SampleStep = 0 },
		func(c *Config) { c.MinHPWays = 0 },
		func(c *Config) { c.MinBEWays = 0 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestSetupStartsLikeCT(t *testing.T) {
	ctl, sys := newCtl(t)
	if got := sys.hpWays(); got != 19 {
		t.Fatalf("initial HP ways = %d, want 19 (CT allocation)", got)
	}
	if got := sys.beWays(); got != 1 {
		t.Fatalf("initial BE ways = %d, want 1", got)
	}
	if !ctl.CTFavoured() {
		t.Fatal("controller must start assuming CT-Favoured")
	}
	if ctl.State() != "optimise" {
		t.Fatalf("initial state %q", ctl.State())
	}
}

func TestSetupRejectsTinyCache(t *testing.T) {
	ctl := MustNew(DefaultConfig())
	if err := ctl.Setup(newFake(1)); err == nil {
		t.Fatal("expected error: 1 way cannot host HP and BE minimums")
	}
}

func TestStableIPCShrinksHP(t *testing.T) {
	ctl, sys := newCtl(t)
	// First observation establishes the baseline; the next stable ones
	// each hand one way to the BEs.
	for i := 0; i < 4; i++ {
		if err := ctl.Observe(sys, obs(1.0, 5, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ctl.HPWays(); got != 16 {
		t.Fatalf("after 3 stable periods HP ways = %d, want 16", got)
	}
	if got := sys.beWays(); got != 4 {
		t.Fatalf("BE ways = %d, want 4", got)
	}
}

func TestImprovedIPCHolds(t *testing.T) {
	ctl, sys := newCtl(t)
	if err := ctl.Observe(sys, obs(1.0, 5, 20)); err != nil { // baseline
		t.Fatal(err)
	}
	before := ctl.HPWays()
	if err := ctl.Observe(sys, obs(1.2, 5, 20)); err != nil { // +20%: better
		t.Fatal(err)
	}
	if got := ctl.HPWays(); got != before {
		t.Fatalf("improved IPC changed allocation: %d -> %d", before, got)
	}
}

func TestDegradedIPCResetsAndValidates(t *testing.T) {
	ctl, sys := newCtl(t)
	ctl.Observe(sys, obs(1.0, 5, 20))                         // baseline at 19 ways
	ctl.Observe(sys, obs(1.0, 5, 20))                         // stable -> 18
	ctl.Observe(sys, obs(1.0, 5, 20))                         // stable -> 17
	if err := ctl.Observe(sys, obs(0.7, 5, 20)); err != nil { // -30%: reset
		t.Fatal(err)
	}
	if ctl.State() != "validate" {
		t.Fatalf("state %q, want validate", ctl.State())
	}
	// CT-F reset re-applies the CT allocation.
	if got := ctl.HPWays(); got != 19 {
		t.Fatalf("reset HP ways = %d, want 19", got)
	}
	// Validation: performance improved vs the trigger -> keep and resume.
	if err := ctl.Observe(sys, obs(1.0, 5, 20)); err != nil {
		t.Fatal(err)
	}
	if ctl.State() != "optimise" {
		t.Fatalf("state %q after successful validation", ctl.State())
	}
	if got := ctl.HPWays(); got != 19 {
		t.Fatalf("validated allocation = %d, want 19", got)
	}
}

func TestResetRollbackWhenNoImprovement(t *testing.T) {
	ctl, sys := newCtl(t)
	ctl.Observe(sys, obs(1.0, 5, 20)) // baseline
	ctl.Observe(sys, obs(1.0, 5, 20)) // stable -> 18
	ctl.Observe(sys, obs(0.7, 5, 20)) // reset to 19, trigger IPC 0.7
	// Validation shows no improvement (a slower phase, not the
	// allocation): roll back to the pre-reset 18 ways.
	if err := ctl.Observe(sys, obs(0.65, 5, 20)); err != nil {
		t.Fatal(err)
	}
	if got := ctl.HPWays(); got != 18 {
		t.Fatalf("rollback HP ways = %d, want 18", got)
	}
	if ctl.State() != "optimise" {
		t.Fatalf("state %q after rollback", ctl.State())
	}
}

func TestSaturationTriggersSampling(t *testing.T) {
	ctl, sys := newCtl(t)
	if err := ctl.Observe(sys, obs(0.8, 5, 60)); err != nil { // > 50 Gbps
		t.Fatal(err)
	}
	if ctl.State() != "sampling" {
		t.Fatalf("state %q, want sampling", ctl.State())
	}
	if ctl.CTFavoured() {
		t.Fatal("saturation must reclassify the workload as CT-Thwarted")
	}
	// Sampling stepped down from 19 by SampleStep.
	if got := ctl.HPWays(); got != 19-DefaultConfig().SampleStep {
		t.Fatalf("first sample at %d ways", got)
	}
}

func TestSamplingPicksArgmax(t *testing.T) {
	ctl, sys := newCtl(t, func(c *Config) { c.SampleStep = 4 })
	// Saturate: sampling starts at 19 (recorded with IPC .5), then visits
	// 15, 11, 7, 3. Feed IPCs that peak at 11 ways.
	ipcAt := map[int]float64{19: 0.50, 15: 0.60, 11: 0.90, 7: 0.70, 3: 0.40}
	if err := ctl.Observe(sys, obs(ipcAt[19], 5, 60)); err != nil {
		t.Fatal(err)
	}
	for ctl.State() == "sampling" {
		cur := ctl.HPWays()
		if err := ctl.Observe(sys, obs(ipcAt[cur], 5, 60)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ctl.HPWays(); got != 11 {
		t.Fatalf("sampling settled on %d ways, want argmax 11", got)
	}
}

func TestPhaseChangeDetection(t *testing.T) {
	ctl, sys := newCtl(t)
	// Three periods of steady HP bandwidth build the history.
	ctl.Observe(sys, obs(1.0, 10, 20))
	ctl.Observe(sys, obs(1.0, 10, 20))
	ctl.Observe(sys, obs(1.0, 10, 20))
	waysBefore := ctl.HPWays()
	// A 40% bandwidth spike (> 30% threshold) with stable IPC must
	// trigger the phase reset, not a shrink.
	if err := ctl.Observe(sys, obs(1.0, 14, 24)); err != nil {
		t.Fatal(err)
	}
	if ctl.State() != "validate" {
		t.Fatalf("state %q, want validate (phase reset)", ctl.State())
	}
	if got := ctl.HPWays(); got != 19 {
		t.Fatalf("phase reset applied %d ways, want CT's 19 (was %d)", got, waysBefore)
	}
}

func TestNoPhaseChangeBelowThreshold(t *testing.T) {
	ctl, sys := newCtl(t)
	ctl.Observe(sys, obs(1.0, 10, 20))
	ctl.Observe(sys, obs(1.0, 10, 20))
	ctl.Observe(sys, obs(1.0, 10, 20))
	// +20% < 30% threshold: stable IPC shrinks as usual.
	before := ctl.HPWays()
	if err := ctl.Observe(sys, obs(1.0, 12, 22)); err != nil {
		t.Fatal(err)
	}
	if got := ctl.HPWays(); got != before-1 {
		t.Fatalf("sub-threshold spike: ways %d, want shrink to %d", got, before-1)
	}
}

func TestCTTResetRevertsToOptimal(t *testing.T) {
	ctl, sys := newCtl(t, func(c *Config) { c.SampleStep = 6 })
	// Sampling: 19 (0.5) -> 13 (0.9) -> 7 (0.6) -> 1 (0.3); optimal 13.
	ipcAt := map[int]float64{19: 0.5, 13: 0.9, 7: 0.6, 1: 0.3}
	ctl.Observe(sys, obs(ipcAt[19], 5, 60))
	for ctl.State() == "sampling" {
		ctl.Observe(sys, obs(ipcAt[ctl.HPWays()], 5, 60))
	}
	if ctl.HPWays() != 13 {
		t.Fatalf("optimal = %d, want 13", ctl.HPWays())
	}
	// Stable IPC shrinks below optimal, then degradation resets to the
	// stored optimal allocation (not CT's 19).
	ctl.Observe(sys, obs(0.9, 5, 20)) // stable -> 12
	ctl.Observe(sys, obs(0.6, 5, 20)) // worse -> reset
	if ctl.State() != "validate" {
		t.Fatalf("state %q, want validate", ctl.State())
	}
	if got := ctl.HPWays(); got != 13 {
		t.Fatalf("CT-T reset applied %d ways, want optimal 13", got)
	}
	// Validation near IPC_opt resumes optimisation.
	if err := ctl.Observe(sys, obs(0.88, 5, 20)); err != nil {
		t.Fatal(err)
	}
	if ctl.State() != "optimise" {
		t.Fatalf("state %q after near-opt validation", ctl.State())
	}
}

func TestCTTResetResamplesWhenFarFromOpt(t *testing.T) {
	ctl, sys := newCtl(t, func(c *Config) { c.SampleStep = 6 })
	ipcAt := map[int]float64{19: 0.5, 13: 0.9, 7: 0.6, 1: 0.3}
	ctl.Observe(sys, obs(ipcAt[19], 5, 60))
	for ctl.State() == "sampling" {
		ctl.Observe(sys, obs(ipcAt[ctl.HPWays()], 5, 60))
	}
	ctl.Observe(sys, obs(0.9, 5, 20)) // stable -> 12
	ctl.Observe(sys, obs(0.6, 5, 20)) // reset -> validate at 13
	// Validation IPC far below IPC_opt (0.9): the optimum moved, so the
	// controller must sample again.
	if err := ctl.Observe(sys, obs(0.5, 5, 20)); err != nil {
		t.Fatal(err)
	}
	if ctl.State() != "sampling" {
		t.Fatalf("state %q, want sampling", ctl.State())
	}
}

func TestValidateInterruptedBySaturation(t *testing.T) {
	ctl, sys := newCtl(t)
	ctl.Observe(sys, obs(1.0, 5, 20))
	ctl.Observe(sys, obs(1.0, 5, 20)) // shrink
	ctl.Observe(sys, obs(0.7, 5, 20)) // reset -> validate
	// Saturation during validation goes straight to sampling.
	if err := ctl.Observe(sys, obs(0.7, 5, 60)); err != nil {
		t.Fatal(err)
	}
	if ctl.State() != "sampling" {
		t.Fatalf("state %q, want sampling", ctl.State())
	}
}

func TestShrinkStopsAtMinimum(t *testing.T) {
	ctl, sys := newCtl(t, func(c *Config) { c.MinHPWays = 3 })
	ctl.Observe(sys, obs(1.0, 5, 20)) // baseline
	for i := 0; i < 40; i++ {
		ctl.Observe(sys, obs(1.0, 5, 20))
	}
	if got := ctl.HPWays(); got != 3 {
		t.Fatalf("shrink floor = %d, want MinHPWays 3", got)
	}
}

func TestMasksAlwaysLegal(t *testing.T) {
	// Whatever the controller does, every installed mask pair must be
	// contiguous, disjoint, and cover the cache.
	ctl, sys := newCtl(t)
	seq := []resctrl.Period{
		obs(1.0, 5, 20), obs(1.0, 5, 20), obs(0.7, 5, 60), obs(0.6, 5, 60),
		obs(0.9, 5, 20), obs(0.9, 5, 20), obs(0.5, 20, 20), obs(0.9, 5, 60),
	}
	for i, p := range seq {
		if err := ctl.Observe(sys, p); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		hp, be := sys.masks[policy.HPClos], sys.masks[policy.BEClos]
		if hp&be != 0 {
			t.Fatalf("step %d: overlapping masks %x/%x", i, hp, be)
		}
		if hp|be != 0xfffff {
			t.Fatalf("step %d: masks %x|%x do not cover the cache", i, hp, be)
		}
	}
}

func TestAblationDisableSaturation(t *testing.T) {
	ctl, sys := newCtl(t, func(c *Config) { c.DisableSaturationHandling = true })
	if err := ctl.Observe(sys, obs(1.0, 5, 60)); err != nil {
		t.Fatal(err)
	}
	if ctl.State() == "sampling" {
		t.Fatal("saturation handling disabled but sampling started")
	}
	if !ctl.CTFavoured() {
		t.Fatal("classification must not change with saturation disabled")
	}
}

func TestAblationDisablePhaseDetection(t *testing.T) {
	ctl, sys := newCtl(t, func(c *Config) { c.DisablePhaseDetection = true })
	ctl.Observe(sys, obs(1.0, 10, 20))
	ctl.Observe(sys, obs(1.0, 10, 20))
	ctl.Observe(sys, obs(1.0, 10, 20))
	before := ctl.HPWays()
	// The spike would trigger a phase reset; disabled, stable IPC shrinks.
	if err := ctl.Observe(sys, obs(1.0, 20, 30)); err != nil {
		t.Fatal(err)
	}
	if got := ctl.HPWays(); got != before-1 {
		t.Fatalf("ways = %d, want shrink to %d", got, before-1)
	}
}

func TestTraceEventsEmitted(t *testing.T) {
	ctl, sys := newCtl(t)
	var kinds []EventKind
	ctl.Trace = func(e Event) { kinds = append(kinds, e.Kind) }
	ctl.Observe(sys, obs(1.0, 5, 20))
	ctl.Observe(sys, obs(1.0, 5, 20))
	ctl.Observe(sys, obs(0.5, 5, 20))
	want := []EventKind{EventHold, EventShrink, EventReset}
	if len(kinds) != len(want) {
		t.Fatalf("events %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %q, want %q", i, kinds[i], want[i])
		}
	}
}

func TestSetupResetsState(t *testing.T) {
	ctl, sys := newCtl(t)
	ctl.Observe(sys, obs(0.8, 5, 60)) // -> sampling, CT-T
	if err := ctl.Setup(sys); err != nil {
		t.Fatal(err)
	}
	if !ctl.CTFavoured() || ctl.State() != "optimise" || ctl.HPWays() != 19 {
		t.Fatal("Setup did not reset controller state")
	}
}

func TestNameAndConfig(t *testing.T) {
	ctl, _ := newCtl(t)
	if ctl.Name() != "DICER" {
		t.Fatalf("name %q", ctl.Name())
	}
	if ctl.Config().BWThresholdGbps != 50 {
		t.Fatal("config not preserved")
	}
}

// Property: for any sequence of observations, the HP allocation stays
// within [MinHPWays, ways-MinBEWays] and masks stay legal.
func TestPropertyControllerBounds(t *testing.T) {
	f := func(ipcs []uint8, bws []uint8) bool {
		ctl := MustNew(DefaultConfig())
		sys := newFake(20)
		if err := ctl.Setup(sys); err != nil {
			return false
		}
		n := len(ipcs)
		if len(bws) < n {
			n = len(bws)
		}
		if n > 40 {
			n = 40
		}
		for i := 0; i < n; i++ {
			ipc := 0.1 + float64(ipcs[i]%20)/10
			bw := float64(bws[i] % 80)
			hpBW := bw / 4
			if err := ctl.Observe(sys, obs(ipc, hpBW, bw)); err != nil {
				return false
			}
			if ctl.HPWays() < 1 || ctl.HPWays() > 19 {
				return false
			}
			hp, be := sys.masks[policy.HPClos], sys.masks[policy.BEClos]
			if hp == 0 || be == 0 || hp&be != 0 {
				return false
			}
			if cache.CheckMask(hp, 20) != nil || cache.CheckMask(be, 20) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

var _ resctrl.System = (*fakeSystem)(nil)

func BenchmarkObserveOptimise(b *testing.B) {
	ctl := MustNew(DefaultConfig())
	sys := newFake(20)
	if err := ctl.Setup(sys); err != nil {
		b.Fatal(err)
	}
	p := obs(1.0, 5, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctl.Observe(sys, p); err != nil {
			b.Fatal(err)
		}
	}
}
