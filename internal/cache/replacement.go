package cache

import "fmt"

// Replacement selects the victim-choice policy used on fills. The DICER
// model assumes LRU; the alternative policies exist to check how sensitive
// the miss-ratio shapes are to that assumption (real LLCs run PLRU/NRU
// approximations, and the shapes must survive the approximation for the
// model to transfer).
type Replacement int

// Supported replacement policies.
const (
	// LRU evicts the least-recently-used line among the allowed ways.
	LRU Replacement = iota
	// NRU keeps one reference bit per line: hits set it, and the victim
	// is the first allowed way with a clear bit (clearing all allowed
	// bits when none is clear) — the classic not-recently-used
	// approximation most real LLCs implement variants of.
	NRU
	// Random evicts a uniformly random allowed way (seeded,
	// deterministic).
	Random
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case NRU:
		return "NRU"
	case Random:
		return "Random"
	}
	return fmt.Sprintf("Replacement(%d)", int(r))
}

// ParseReplacement parses a policy name (case-sensitive short forms).
func ParseReplacement(s string) (Replacement, error) {
	switch s {
	case "lru", "LRU":
		return LRU, nil
	case "nru", "NRU":
		return NRU, nil
	case "random", "Random", "rand":
		return Random, nil
	}
	return 0, fmt.Errorf("cache: unknown replacement policy %q", s)
}

// SetReplacement switches the victim-selection policy. Contents and
// statistics are unaffected; recency state carries over naturally (LRU
// timestamps double as NRU reference recency via the epoch check).
func (c *Cache) SetReplacement(r Replacement) error {
	switch r {
	case LRU, NRU, Random:
		c.repl = r
		return nil
	}
	return fmt.Errorf("cache: unknown replacement policy %v", r)
}

// Replacement returns the active policy.
func (c *Cache) Replacement() Replacement { return c.repl }

// victimWay picks the way to fill within base..base+ways-1 under mask.
// Invalid ways always win first (the caller checks them before calling
// this only for the all-valid case).
func (c *Cache) victimWay(base int, mask uint64) int {
	switch c.repl {
	case NRU:
		// Reference bit = "used since the set's last NRU epoch". We track
		// epochs per set in nruEpoch; a line is "referenced" if its used
		// stamp is newer than the epoch.
		set := base / c.cfg.Ways
		for {
			for w := 0; w < c.cfg.Ways; w++ {
				if mask&(1<<uint(w)) == 0 {
					continue
				}
				if c.used[base+w] <= c.nruEpoch[set] {
					return base + w
				}
			}
			// All allowed ways referenced: start a new epoch.
			c.nruEpoch[set] = c.clock
		}
	case Random:
		// Count allowed ways, then index with the seeded generator.
		n := 0
		for w := 0; w < c.cfg.Ways; w++ {
			if mask&(1<<uint(w)) != 0 {
				n++
			}
		}
		k := int(c.rngNext() % uint64(n))
		for w := 0; w < c.cfg.Ways; w++ {
			if mask&(1<<uint(w)) != 0 {
				if k == 0 {
					return base + w
				}
				k--
			}
		}
		panic("cache: random victim selection ran out of ways")
	default: // LRU
		victim := -1
		var oldest uint64 = ^uint64(0)
		for w := 0; w < c.cfg.Ways; w++ {
			if mask&(1<<uint(w)) == 0 {
				continue
			}
			i := base + w
			if c.used[i] < oldest {
				oldest = c.used[i]
				victim = i
			}
		}
		return victim
	}
}

// rngNext is a splitmix64 step for Random replacement.
func (c *Cache) rngNext() uint64 {
	c.rngState += 0x9e3779b97f4a7c15
	z := c.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SeedRandom sets the seed used by Random replacement (default 1).
func (c *Cache) SeedRandom(seed uint64) { c.rngState = seed }
