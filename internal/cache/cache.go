// Package cache implements a set-associative, way-partitioned last-level
// cache simulator with the allocation semantics of Intel Cache Allocation
// Technology (CAT):
//
//   - Each access is tagged with a class of service (CLOS).
//   - Each CLOS has a capacity bit-mask (CBM) selecting the ways it may
//     *fill*. Lookups hit in any way — CAT restricts allocation, not
//     visibility.
//   - On a miss, the victim is the least-recently-used line among the ways
//     permitted by the accessing CLOS's mask.
//   - Changing a mask does not flush anything: lines outside the new mask
//     stay resident until naturally evicted, exactly as on real hardware
//     (DICER paper §3.3: "the contents of the LLC are not affected; they
//     remain intact until they are evicted by future LLC misses").
//
// Per-CLOS occupancy is tracked the way Cache Monitoring Technology (CMT)
// does: a line is charged to the CLOS that filled it, and the charge moves
// only when the line is refilled by another CLOS.
//
// The simulator exists as a substrate: it validates the analytic miss-ratio
// curves in internal/mrc against real LRU behaviour and backs the
// trace-driven examples. The system-level co-location simulator
// (internal/sim) uses the analytic model for speed.
package cache

import (
	"fmt"
	"math/bits"
)

// MaxWays is the largest associativity the simulator supports. 64 matches
// the width of a CBM word and comfortably exceeds real LLC associativity
// (the paper's Xeon E5-2630 v4 has a 20-way LLC).
const MaxWays = 64

// Config describes cache geometry.
type Config struct {
	SizeBytes int // total capacity in bytes
	Ways      int // associativity
	LineBytes int // line size in bytes
	Clos      int // number of classes of service (>=1)
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d is not a positive power of two", c.LineBytes)
	}
	if c.Ways <= 0 || c.Ways > MaxWays {
		return fmt.Errorf("cache: ways %d out of range [1,%d]", c.Ways, MaxWays)
	}
	if c.Clos <= 0 {
		return fmt.Errorf("cache: need at least one CLOS, got %d", c.Clos)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache: size %d is not a positive multiple of ways*line (%d)",
			c.SizeBytes, c.Ways*c.LineBytes)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// FullMask returns the CBM selecting all ways.
func (c Config) FullMask() uint64 {
	if c.Ways == MaxWays {
		return ^uint64(0)
	}
	return (uint64(1) << uint(c.Ways)) - 1
}

// Stats accumulates per-CLOS access statistics.
type Stats struct {
	Accesses uint64
	Misses   uint64
	// Evictions counts lines this CLOS evicted (from any owner).
	Evictions uint64
	// EvictedBy counts lines owned by this CLOS that were evicted by a
	// different CLOS; with disjoint masks this must stay zero — the
	// partition-isolation property the DICER design relies on.
	EvictedBy uint64
}

// MissRatio returns Misses/Accesses (0 when there were no accesses).
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a way-partitioned set-associative cache. It is not safe for
// concurrent use; callers that share one across goroutines must serialise
// access (the simulator drives it from a single goroutine).
type Cache struct {
	cfg      Config
	setShift uint
	sets     uint64

	// Structure-of-arrays per line state, indexed [set*ways + way].
	tags  []uint64
	valid []bool
	owner []int32 // CLOS that filled the line
	used  []uint64

	masks []uint64 // per-CLOS CBM
	stats []Stats

	clock     uint64
	occupancy []int64 // lines owned per CLOS

	repl     Replacement
	nruEpoch []uint64 // per-set epoch stamp for NRU reference bits
	rngState uint64   // seeded generator for Random replacement
}

// New builds a cache from cfg. All CLOS masks start as the full mask
// (hardware reset state).
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	n := sets * cfg.Ways
	c := &Cache{
		cfg:       cfg,
		setShift:  uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		sets:      uint64(sets),
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		owner:     make([]int32, n),
		used:      make([]uint64, n),
		masks:     make([]uint64, cfg.Clos),
		stats:     make([]Stats, cfg.Clos),
		occupancy: make([]int64, cfg.Clos),
		nruEpoch:  make([]uint64, sets),
		rngState:  1,
	}
	full := cfg.FullMask()
	for i := range c.masks {
		c.masks[i] = full
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// SetMask installs a capacity bit-mask for clos. The mask must be non-zero,
// contiguous (a CAT hardware requirement) and confined to the implemented
// ways. It returns the previous mask.
func (c *Cache) SetMask(clos int, mask uint64) (uint64, error) {
	if clos < 0 || clos >= len(c.masks) {
		return 0, fmt.Errorf("cache: clos %d out of range [0,%d)", clos, len(c.masks))
	}
	if err := CheckMask(mask, c.cfg.Ways); err != nil {
		return 0, err
	}
	prev := c.masks[clos]
	c.masks[clos] = mask
	return prev, nil
}

// Mask returns the current CBM of clos.
func (c *Cache) Mask(clos int) uint64 { return c.masks[clos] }

// CheckMask validates a CBM: non-zero, contiguous set bits, within ways.
func CheckMask(mask uint64, ways int) error {
	if mask == 0 {
		return fmt.Errorf("cache: empty mask")
	}
	if ways < MaxWays && mask>>uint(ways) != 0 {
		return fmt.Errorf("cache: mask %#x exceeds %d ways", mask, ways)
	}
	// A contiguous run of ones, shifted down by its trailing zeros, is of
	// the form 2^k - 1.
	m := mask >> uint(bits.TrailingZeros64(mask))
	if m&(m+1) != 0 {
		return fmt.Errorf("cache: mask %#x is not contiguous", mask)
	}
	return nil
}

// Access simulates one access by clos to byte address addr and reports
// whether it hit.
func (c *Cache) Access(clos int, addr uint64) bool {
	if clos < 0 || clos >= len(c.masks) {
		panic(fmt.Sprintf("cache: clos %d out of range", clos))
	}
	c.clock++
	st := &c.stats[clos]
	st.Accesses++

	tag := addr >> c.setShift
	set := int(tag % c.sets)
	base := set * c.cfg.Ways

	// Lookup: hits are visible in every way regardless of masks.
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.used[i] = c.clock
			return true
		}
	}

	// Miss: pick a victim among the ways this CLOS may fill. Invalid ways
	// win outright; otherwise the active replacement policy chooses.
	st.Misses++
	mask := c.masks[clos]
	victim := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if mask&(1<<uint(w)) != 0 && !c.valid[base+w] {
			victim = base + w
			break
		}
	}
	if victim < 0 {
		victim = c.victimWay(base, mask)
	}
	if victim < 0 {
		// CheckMask guarantees at least one way; unreachable.
		panic("cache: no victim way available")
	}
	if c.valid[victim] {
		prev := int(c.owner[victim])
		c.occupancy[prev]--
		st.Evictions++
		if prev != clos {
			c.stats[prev].EvictedBy++
		}
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.owner[victim] = int32(clos)
	c.used[victim] = c.clock
	c.occupancy[clos]++
	return false
}

// Run plays an address slice through the cache for clos and returns the
// number of misses.
func (c *Cache) Run(clos int, addrs []uint64) (misses uint64) {
	for _, a := range addrs {
		if !c.Access(clos, a) {
			misses++
		}
	}
	return misses
}

// Stats returns a copy of the statistics for clos.
func (c *Cache) Stats(clos int) Stats { return c.stats[clos] }

// ResetStats zeroes all per-CLOS statistics without touching cache contents.
func (c *Cache) ResetStats() {
	for i := range c.stats {
		c.stats[i] = Stats{}
	}
}

// OccupancyLines returns the number of resident lines charged to clos.
func (c *Cache) OccupancyLines(clos int) int64 { return c.occupancy[clos] }

// OccupancyBytes returns the resident bytes charged to clos, the quantity
// CMT reports.
func (c *Cache) OccupancyBytes(clos int) int64 {
	return c.occupancy[clos] * int64(c.cfg.LineBytes)
}

// TotalOccupancyLines returns the number of valid lines in the cache.
func (c *Cache) TotalOccupancyLines() int64 {
	var t int64
	for _, o := range c.occupancy {
		t += o
	}
	return t
}

// Flush invalidates every line and zeroes occupancy; statistics are kept.
// Real CAT has no flush, but tests and MRC sweeps need a cold cache.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
	for i := range c.occupancy {
		c.occupancy[i] = 0
	}
}

// ContiguousMask builds a CBM of width ways starting at the given low way,
// e.g. ContiguousMask(1, 19) selects ways 1..19.
func ContiguousMask(low, width int) uint64 {
	if width <= 0 {
		return 0
	}
	if width >= MaxWays {
		return ^uint64(0) << uint(low)
	}
	return ((uint64(1) << uint(width)) - 1) << uint(low)
}
