package cache

import (
	"testing"
	"testing/quick"

	"dicer/internal/trace"
)

// small returns a small test geometry: 4 sets x 4 ways x 64 B = 1 KiB.
func small(clos int) Config {
	return Config{SizeBytes: 4 * 4 * 64, Ways: 4, LineBytes: 64, Clos: clos}
}

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", small(1), true},
		{"non-pow2 line", Config{SizeBytes: 1024, Ways: 4, LineBytes: 48, Clos: 1}, false},
		{"zero ways", Config{SizeBytes: 1024, Ways: 0, LineBytes: 64, Clos: 1}, false},
		{"too many ways", Config{SizeBytes: 65 * 64, Ways: 65, LineBytes: 64, Clos: 1}, false},
		{"zero clos", Config{SizeBytes: 1024, Ways: 4, LineBytes: 64, Clos: 0}, false},
		{"size not multiple", Config{SizeBytes: 1000, Ways: 4, LineBytes: 64, Clos: 1}, false},
		{"non-pow2 sets ok (real LLC slicing)", Config{SizeBytes: 3 * 4 * 64, Ways: 4, LineBytes: 64, Clos: 1}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSetsComputation(t *testing.T) {
	cfg := Config{SizeBytes: 25 << 20, Ways: 20, LineBytes: 64, Clos: 2}
	if got := cfg.Sets(); got != 20480 {
		t.Fatalf("paper geometry sets = %d, want 20480", got)
	}
}

func TestFullMask(t *testing.T) {
	if got := small(1).FullMask(); got != 0xf {
		t.Fatalf("full mask = %#x, want 0xf", got)
	}
	cfg := Config{SizeBytes: 64 * 64 * 64, Ways: 64, LineBytes: 64, Clos: 1}
	if got := cfg.FullMask(); got != ^uint64(0) {
		t.Fatalf("64-way full mask = %#x", got)
	}
}

func TestCheckMask(t *testing.T) {
	cases := []struct {
		mask uint64
		ways int
		ok   bool
	}{
		{0x1, 4, true},
		{0xf, 4, true},
		{0x6, 4, true},   // contiguous in the middle
		{0x5, 4, false},  // non-contiguous
		{0x0, 4, false},  // empty
		{0x10, 4, false}, // beyond implemented ways
		{0xffffe, 20, true},
		{0xfffff, 20, true},
	}
	for _, tc := range cases {
		err := CheckMask(tc.mask, tc.ways)
		if tc.ok && err != nil {
			t.Errorf("mask %#x/%d ways: unexpected error %v", tc.mask, tc.ways, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("mask %#x/%d ways: expected error", tc.mask, tc.ways)
		}
	}
}

func TestContiguousMask(t *testing.T) {
	if got := ContiguousMask(1, 19); got != 0xffffe {
		t.Fatalf("ContiguousMask(1,19) = %#x, want 0xffffe", got)
	}
	if got := ContiguousMask(0, 1); got != 1 {
		t.Fatalf("ContiguousMask(0,1) = %#x, want 1", got)
	}
	if got := ContiguousMask(3, 0); got != 0 {
		t.Fatalf("ContiguousMask(3,0) = %#x, want 0", got)
	}
}

func TestHitAfterFill(t *testing.T) {
	c := mustNew(t, small(1))
	if c.Access(0, 0) {
		t.Fatal("first access should miss")
	}
	if !c.Access(0, 0) {
		t.Fatal("second access should hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustNew(t, small(1))
	sets := 4
	// Fill all 4 ways of set 0 with lines A,B,C,D; then touch A so B is LRU.
	addr := func(i int) uint64 { return uint64(i * sets * 64) } // same set 0
	for i := 0; i < 4; i++ {
		c.Access(0, addr(i))
	}
	c.Access(0, addr(0)) // refresh A
	c.Access(0, addr(4)) // insert E: should evict B (LRU)
	if !c.Access(0, addr(0)) {
		t.Fatal("A should still be resident")
	}
	if c.Access(0, addr(1)) {
		t.Fatal("B should have been evicted as LRU")
	}
}

func TestWayPartitionLimitsVictims(t *testing.T) {
	c := mustNew(t, small(2))
	// CLOS 0 may only fill way 0; CLOS 1 gets ways 1-3.
	if _, err := c.SetMask(0, 0x1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetMask(1, 0xe); err != nil {
		t.Fatal(err)
	}
	// CLOS 0 streams lines through set 0: always evicts its own way.
	for i := 0; i < 8; i++ {
		c.Access(0, uint64(i*4*64))
	}
	if got := c.OccupancyLines(0); got != 1 {
		t.Fatalf("single-way CLOS occupies %d lines, want 1", got)
	}
}

func TestPartitionIsolation(t *testing.T) {
	c := mustNew(t, small(2))
	if _, err := c.SetMask(0, 0x3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetMask(1, 0xc); err != nil {
		t.Fatal(err)
	}
	// Both CLOSes hammer the same sets with disjoint address streams.
	for i := 0; i < 1000; i++ {
		c.Access(0, uint64(i%8)*4*64)
		c.Access(1, uint64(1<<30)+uint64(i)*64)
	}
	if ev := c.Stats(0).EvictedBy; ev != 0 {
		t.Fatalf("CLOS 0 lost %d lines to CLOS 1 despite disjoint masks", ev)
	}
	if ev := c.Stats(1).EvictedBy; ev != 0 {
		t.Fatalf("CLOS 1 lost %d lines to CLOS 0 despite disjoint masks", ev)
	}
}

func TestCrossClosHitsVisible(t *testing.T) {
	// CAT restricts allocation, not lookup: CLOS 1 hits on a line CLOS 0
	// filled.
	c := mustNew(t, small(2))
	c.Access(0, 0)
	if !c.Access(1, 0) {
		t.Fatal("CLOS 1 should hit on CLOS 0's line")
	}
}

func TestMaskChangePreservesContents(t *testing.T) {
	c := mustNew(t, small(1))
	c.Access(0, 0)                               // fill way under full mask
	if _, err := c.SetMask(0, 0x8); err != nil { // shrink to way 3 only
		t.Fatal(err)
	}
	if !c.Access(0, 0) {
		t.Fatal("resident line must survive a mask change (paper §3.3)")
	}
}

func TestOccupancyAccounting(t *testing.T) {
	c := mustNew(t, small(2))
	if _, err := c.SetMask(0, 0x3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Access(0, uint64(i)*64)
	}
	// 4 sets x 2 permitted ways = at most 8 lines.
	if got := c.OccupancyLines(0); got != 8 {
		t.Fatalf("occupancy %d lines, want 8 (4 sets x 2 ways)", got)
	}
	if got := c.OccupancyBytes(0); got != 8*64 {
		t.Fatalf("occupancy %d bytes, want %d", got, 8*64)
	}
}

func TestOccupancyTransfersOnRefill(t *testing.T) {
	c := mustNew(t, small(2))
	// Overlapping masks: both CLOSes can fill everything.
	c.Access(0, 0)
	if got := c.OccupancyLines(0); got != 1 {
		t.Fatalf("clos0 occupancy %d, want 1", got)
	}
	// CLOS 1 streams enough lines through set 0 to evict CLOS 0's line.
	for i := 1; i <= 4; i++ {
		c.Access(1, uint64(i*4*64))
	}
	if got := c.OccupancyLines(0); got != 0 {
		t.Fatalf("clos0 occupancy %d after eviction, want 0", got)
	}
	if got := c.OccupancyLines(1); got != 4 {
		t.Fatalf("clos1 occupancy %d, want 4", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := mustNew(t, small(1))
	c.Access(0, 0)
	c.Access(0, 0)
	c.Access(0, 64)
	st := c.Stats(0)
	if st.Accesses != 3 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 3 accesses / 2 misses", st)
	}
	if got := st.MissRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("miss ratio %.3f, want 2/3", got)
	}
	c.ResetStats()
	if c.Stats(0).Accesses != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
	if !c.Access(0, 0) {
		t.Fatal("ResetStats must not flush contents")
	}
}

func TestFlush(t *testing.T) {
	c := mustNew(t, small(1))
	c.Access(0, 0)
	c.Flush()
	if c.TotalOccupancyLines() != 0 {
		t.Fatal("flush left lines resident")
	}
	if c.Access(0, 0) {
		t.Fatal("access after flush should miss")
	}
}

func TestSetMaskErrors(t *testing.T) {
	c := mustNew(t, small(1))
	if _, err := c.SetMask(5, 1); err == nil {
		t.Fatal("expected error for out-of-range clos")
	}
	if _, err := c.SetMask(0, 0); err == nil {
		t.Fatal("expected error for empty mask")
	}
	if _, err := c.SetMask(0, 0x5); err == nil {
		t.Fatal("expected error for non-contiguous mask")
	}
	prev, err := c.SetMask(0, 0x3)
	if err != nil {
		t.Fatal(err)
	}
	if prev != 0xf {
		t.Fatalf("previous mask = %#x, want 0xf", prev)
	}
}

func TestRunCountsMisses(t *testing.T) {
	c := mustNew(t, small(1))
	addrs := []uint64{0, 64, 0, 64, 128}
	if got := c.Run(0, addrs); got != 3 {
		t.Fatalf("Run misses = %d, want 3", got)
	}
}

// Property: a loop whose working set fits in the allowed ways has zero
// steady-state misses; one that exceeds the full cache capacity in a
// single set-conflicting pattern always misses.
func TestPropertyLoopFitsMeansHits(t *testing.T) {
	f := func(waysRaw uint8) bool {
		ways := int(waysRaw%4) + 1
		cfg := small(1)
		c, err := New(cfg)
		if err != nil {
			return false
		}
		if _, err := c.SetMask(0, ContiguousMask(0, ways)); err != nil {
			return false
		}
		// Working set: exactly `ways` lines per set over all 4 sets.
		lines := 4 * ways
		gen, err := trace.NewLoop(0, uint64(lines*64))
		if err != nil {
			return false
		}
		// Warm up one pass, then measure a pass: all hits expected.
		for i := 0; i < lines; i++ {
			c.Access(0, gen.Next())
		}
		c.ResetStats()
		for i := 0; i < lines; i++ {
			c.Access(0, gen.Next())
		}
		return c.Stats(0).Misses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: with disjoint masks, EvictedBy stays zero for arbitrary
// interleaved access patterns (partition isolation).
func TestPropertyPartitionIsolation(t *testing.T) {
	f := func(seed uint64, split uint8) bool {
		s := int(split%3) + 1 // clos0 gets ways [0,s), clos1 gets [s,4)
		c, err := New(small(2))
		if err != nil {
			return false
		}
		if _, err := c.SetMask(0, ContiguousMask(0, s)); err != nil {
			return false
		}
		if _, err := c.SetMask(1, ContiguousMask(s, 4-s)); err != nil {
			return false
		}
		z0, err := trace.NewZipf(0, 1<<16, 0.5, seed)
		if err != nil {
			return false
		}
		z1, err := trace.NewZipf(1<<30, 1<<16, 1.2, seed+1)
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			c.Access(0, z0.Next())
			c.Access(1, z1.Next())
		}
		return c.Stats(0).EvictedBy == 0 && c.Stats(1).EvictedBy == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: total occupancy never exceeds capacity, and per-CLOS occupancy
// never exceeds its reachable ways (when masks are disjoint).
func TestPropertyOccupancyBounds(t *testing.T) {
	f := func(seed uint64) bool {
		c, err := New(small(2))
		if err != nil {
			return false
		}
		if _, err := c.SetMask(0, 0x3); err != nil {
			return false
		}
		if _, err := c.SetMask(1, 0xc); err != nil {
			return false
		}
		z, err := trace.NewZipf(0, 1<<18, 0.9, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 3000; i++ {
			c.Access(int(z.Next()>>6)%2, z.Next())
			if c.TotalOccupancyLines() > 16 {
				return false
			}
			if c.OccupancyLines(0) > 8 || c.OccupancyLines(1) > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperGeometry(t *testing.T) {
	// The paper's 25 MB 20-way LLC with 2 CLOS builds and works.
	cfg := Config{SizeBytes: 25 << 20, Ways: 20, LineBytes: 64, Clos: 2}
	c := mustNew(t, cfg)
	if _, err := c.SetMask(0, ContiguousMask(1, 19)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetMask(1, ContiguousMask(0, 1)); err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewLoop(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if misses := c.Run(0, trace.Collect(gen, 100000)); misses == 0 {
		t.Fatal("cold cache cannot have zero misses")
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c, _ := New(Config{SizeBytes: 25 << 20, Ways: 20, LineBytes: 64, Clos: 2})
	c.Access(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0, 0)
	}
}

func BenchmarkAccessStream(b *testing.B) {
	c, _ := New(Config{SizeBytes: 25 << 20, Ways: 20, LineBytes: 64, Clos: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0, uint64(i)*64)
	}
}
