package cache

import (
	"testing"
	"testing/quick"

	"dicer/internal/trace"
)

func TestParseReplacement(t *testing.T) {
	cases := map[string]Replacement{
		"lru": LRU, "LRU": LRU,
		"nru": NRU, "NRU": NRU,
		"random": Random, "rand": Random,
	}
	for s, want := range cases {
		got, err := ParseReplacement(s)
		if err != nil || got != want {
			t.Errorf("ParseReplacement(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseReplacement("mru"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestReplacementString(t *testing.T) {
	if LRU.String() != "LRU" || NRU.String() != "NRU" || Random.String() != "Random" {
		t.Fatal("String names")
	}
	if Replacement(9).String() == "" {
		t.Fatal("unknown policy should still format")
	}
}

func TestSetReplacementValidation(t *testing.T) {
	c := mustNew(t, small(1))
	if err := c.SetReplacement(NRU); err != nil {
		t.Fatal(err)
	}
	if c.Replacement() != NRU {
		t.Fatal("readback")
	}
	if err := c.SetReplacement(Replacement(42)); err == nil {
		t.Fatal("expected error")
	}
}

func TestNRURetainsHotLine(t *testing.T) {
	c := mustNew(t, small(1))
	if err := c.SetReplacement(NRU); err != nil {
		t.Fatal(err)
	}
	hot := uint64(0)
	// Interleave a hot line with a stream through the same set: the hot
	// line's reference bit keeps it resident most of the time.
	hits := 0
	for i := 1; i <= 400; i++ {
		c.Access(0, uint64(i*4*64)) // streaming through set 0
		if c.Access(0, hot) {
			hits++
		}
	}
	if hits < 200 {
		t.Fatalf("NRU kept the hot line for only %d/400 touches", hits)
	}
}

func TestRandomDeterministicWithSeed(t *testing.T) {
	run := func(seed uint64) uint64 {
		c := mustNew(t, small(1))
		if err := c.SetReplacement(Random); err != nil {
			t.Fatal(err)
		}
		c.SeedRandom(seed)
		z, err := trace.NewZipf(0, 1<<16, 0.8, 9)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(0, trace.Collect(z, 5000))
		return c.Stats(0).Misses
	}
	if run(7) != run(7) {
		t.Fatal("random replacement not reproducible with equal seeds")
	}
}

func TestStreamMissesUnderAllPolicies(t *testing.T) {
	for _, r := range []Replacement{LRU, NRU, Random} {
		c := mustNew(t, small(1))
		if err := c.SetReplacement(r); err != nil {
			t.Fatal(err)
		}
		misses := c.Run(0, trace.Collect(trace.NewStream(0), 2000))
		if misses != 2000 {
			t.Fatalf("%v: stream had %d/2000 misses", r, misses)
		}
	}
}

func TestRandomSmoothsTheLoopCliff(t *testing.T) {
	// A loop slightly larger than the cache thrashes completely under LRU
	// (0% hits) but gets a hit fraction under random replacement — the
	// classic LRU-vs-random crossover. This is why the analytic model's
	// convex (not cliff) curves are a reasonable middle ground.
	loopBytes := uint64(small(1).SizeBytes * 5 / 4)
	missUnder := func(r Replacement) float64 {
		c := mustNew(t, small(1))
		if err := c.SetReplacement(r); err != nil {
			t.Fatal(err)
		}
		gen, err := trace.NewLoop(0, loopBytes)
		if err != nil {
			t.Fatal(err)
		}
		// Warm up one pass, then measure several.
		lines := int(loopBytes / 64)
		for i := 0; i < lines; i++ {
			c.Access(0, gen.Next())
		}
		c.ResetStats()
		for i := 0; i < 4*lines; i++ {
			c.Access(0, gen.Next())
		}
		return c.Stats(0).MissRatio()
	}
	lru := missUnder(LRU)
	rnd := missUnder(Random)
	if lru < 0.99 {
		t.Fatalf("LRU on an oversized loop should thrash: miss %.3f", lru)
	}
	if rnd > 0.9*lru {
		t.Fatalf("random replacement should beat LRU on an oversized loop: %.3f vs %.3f", rnd, lru)
	}
}

// Property: partition isolation holds under every replacement policy.
func TestPropertyIsolationAllPolicies(t *testing.T) {
	f := func(seed uint64, policyRaw uint8) bool {
		r := Replacement(policyRaw % 3)
		c, err := New(small(2))
		if err != nil {
			return false
		}
		if err := c.SetReplacement(r); err != nil {
			return false
		}
		if _, err := c.SetMask(0, 0x3); err != nil {
			return false
		}
		if _, err := c.SetMask(1, 0xc); err != nil {
			return false
		}
		z0, err := trace.NewZipf(0, 1<<15, 0.7, seed)
		if err != nil {
			return false
		}
		z1, err := trace.NewZipf(1<<30, 1<<15, 1.1, seed+1)
		if err != nil {
			return false
		}
		for i := 0; i < 1500; i++ {
			c.Access(0, z0.Next())
			c.Access(1, z1.Next())
		}
		return c.Stats(0).EvictedBy == 0 && c.Stats(1).EvictedBy == 0 &&
			c.OccupancyLines(0) <= 8 && c.OccupancyLines(1) <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: all three policies agree (within tolerance) on zipf miss
// ratios — the shapes the analytic model encodes are replacement-robust.
func TestPropertyPoliciesAgreeOnZipf(t *testing.T) {
	f := func(seed uint64) bool {
		miss := func(r Replacement) float64 {
			c, err := New(small(1))
			if err != nil {
				return -1
			}
			if err := c.SetReplacement(r); err != nil {
				return -1
			}
			z, err := trace.NewZipf(0, 1<<15, 1.0, seed)
			if err != nil {
				return -1
			}
			addrs := trace.Collect(z, 6000)
			c.Run(0, addrs[:2000]) // warm up
			c.ResetStats()
			c.Run(0, addrs[2000:])
			return c.Stats(0).MissRatio()
		}
		lru, nru, rnd := miss(LRU), miss(NRU), miss(Random)
		if lru < 0 || nru < 0 || rnd < 0 {
			return false
		}
		near := func(a, b float64) bool { d := a - b; return d < 0.12 && d > -0.12 }
		return near(lru, nru) && near(lru, rnd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
