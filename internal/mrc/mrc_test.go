package mrc

import (
	"math"
	"testing"
	"testing/quick"

	"dicer/internal/cache"
	"dicer/internal/trace"
)

const mb = float64(1 << 20)

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve(-0.1); err == nil {
		t.Fatal("expected error for negative stream fraction")
	}
	if _, err := NewCurve(1.1); err == nil {
		t.Fatal("expected error for stream fraction > 1")
	}
	if _, err := NewCurve(0.5, Component{Bytes: -1, Frac: 0.1}); err == nil {
		t.Fatal("expected error for negative component size")
	}
	if _, err := NewCurve(0.5, Component{Bytes: mb, Frac: -0.1}); err == nil {
		t.Fatal("expected error for negative component fraction")
	}
	if _, err := NewCurve(0.7, Component{Bytes: mb, Frac: 0.5}); err == nil {
		t.Fatal("expected error for fractions summing above 1")
	}
	if _, err := NewCurve(0.5, Component{Bytes: mb, Frac: 0.3}); err != nil {
		t.Fatalf("valid curve rejected: %v", err)
	}
}

func TestZeroCurveNeverMisses(t *testing.T) {
	var c Curve
	if got := c.MissRatio(0); got != 0 {
		t.Fatalf("zero curve miss ratio = %g, want 0", got)
	}
}

func TestMissRatioEndpoints(t *testing.T) {
	c := MustCurve(0.2, Component{Bytes: 2 * mb, Frac: 0.5})
	// No cache: stream + entire component miss.
	if got := c.MissRatio(0); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("miss at 0 = %g, want 0.7", got)
	}
	// Full coverage: only the stream misses.
	if got := c.MissRatio(2 * mb); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("miss at footprint = %g, want 0.2", got)
	}
	// Beyond footprint: unchanged.
	if got := c.MissRatio(10 * mb); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("miss beyond footprint = %g, want 0.2", got)
	}
	// Negative capacity clamps to zero.
	if got := c.MissRatio(-5); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("miss at negative capacity = %g, want 0.7", got)
	}
}

func TestConvexKnee(t *testing.T) {
	// Just below full coverage, the convex model must miss noticeably more
	// than the linear model would — the knee DICER's reset relies on.
	c := MustCurve(0, Component{Bytes: 8 * mb, Frac: 1})
	cov := 0.875
	got := c.MissRatio(cov * 8 * mb)
	linear := 1 - cov
	if got <= linear {
		t.Fatalf("miss at %.0f%% coverage = %.4f, want > linear %.4f", cov*100, got, linear)
	}
}

func TestHotterComponentClaimsCacheFirst(t *testing.T) {
	// Hot: 1 MB with 50% of accesses; cold: 8 MB with 10%.
	c := MustCurve(0, Component{Bytes: mb, Frac: 0.5}, Component{Bytes: 8 * mb, Frac: 0.1})
	// With exactly 1 MB, the hot set is fully resident: only cold misses.
	got := c.MissRatio(mb)
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("miss with hot set resident = %g, want 0.1", got)
	}
}

func TestFootprintAndStreamFraction(t *testing.T) {
	c := MustCurve(0.25, Component{Bytes: mb, Frac: 0.3}, Component{Bytes: 3 * mb, Frac: 0.2})
	if got := c.Footprint(); got != 4*mb {
		t.Fatalf("footprint = %g, want %g", got, 4*mb)
	}
	if got := c.StreamFraction(); got != 0.25 {
		t.Fatalf("stream fraction = %g, want 0.25", got)
	}
}

func TestComponentsSortedHottestFirst(t *testing.T) {
	c := MustCurve(0,
		Component{Bytes: 8 * mb, Frac: 0.1},
		Component{Bytes: mb, Frac: 0.5})
	comps := c.Components()
	if len(comps) != 2 || comps[0].Bytes != mb {
		t.Fatalf("components not sorted hottest-first: %+v", comps)
	}
}

func TestOccupancyDemand(t *testing.T) {
	c := MustCurve(0, Component{Bytes: 2 * mb, Frac: 0.5})
	if got := c.OccupancyDemand(mb); got != mb {
		t.Fatalf("occupancy at 1MB = %g, want 1MB", got)
	}
	// Bounded app: demand caps at footprint.
	if got := c.OccupancyDemand(10 * mb); got != 2*mb {
		t.Fatalf("occupancy at 10MB = %g, want footprint 2MB", got)
	}
	// Streaming app: churn claims everything offered.
	s := MustCurve(0.5, Component{Bytes: 2 * mb, Frac: 0.3})
	if got := s.OccupancyDemand(10 * mb); got != 10*mb {
		t.Fatalf("streaming occupancy at 10MB = %g, want 10MB", got)
	}
}

func TestWaysToBytes(t *testing.T) {
	if got := WaysToBytes(2, 25<<20, 20); got != 2.5*mb {
		t.Fatalf("2 ways of 25MB/20 = %g, want 2.5MB", got)
	}
}

// Property: MissRatio is non-increasing in capacity and stays within
// [stream, stream+Σfrac] for arbitrary mixtures.
func TestPropertyMissRatioMonotone(t *testing.T) {
	f := func(s1, s2, f1raw, f2raw, streamRaw uint8) bool {
		stream := float64(streamRaw%40) / 100
		fr1 := float64(f1raw%30) / 100
		fr2 := float64(f2raw%30) / 100
		c, err := NewCurve(stream,
			Component{Bytes: float64(s1%64+1) * mb / 4, Frac: fr1},
			Component{Bytes: float64(s2%64+1) * mb / 4, Frac: fr2})
		if err != nil {
			return false
		}
		prev := math.Inf(1)
		for cap := 0.0; cap <= 20*mb; cap += mb / 2 {
			m := c.MissRatio(cap)
			if m > prev+1e-12 {
				return false // not monotone
			}
			if m < stream-1e-12 || m > stream+fr1+fr2+1e-12 {
				return false // out of bounds
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: OccupancyDemand never exceeds the offered capacity and is
// non-decreasing in it.
func TestPropertyOccupancyDemand(t *testing.T) {
	f := func(sizeRaw, fracRaw, streamRaw uint8) bool {
		stream := float64(streamRaw%50) / 100
		c, err := NewCurve(stream,
			Component{Bytes: float64(sizeRaw%32+1) * mb / 2, Frac: float64(fracRaw%50) / 100})
		if err != nil {
			return false
		}
		prev := 0.0
		for cap := 0.0; cap <= 30*mb; cap += mb {
			o := c.OccupancyDemand(cap)
			if o > cap+1e-9 || o < prev-1e-9 {
				return false
			}
			prev = o
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// cacheCfg is a small geometry for empirical-curve validation: 64 sets x 8
// ways x 64 B = 32 KiB.
var cacheCfg = cache.Config{SizeBytes: 64 * 8 * 64, Ways: 8, LineBytes: 64, Clos: 1}

func TestEmpiricalLoopCliff(t *testing.T) {
	// A loop over half the cache: once the allocation covers the working
	// set, misses vanish; below that, LRU thrashes and misses everything.
	ws := uint64(cacheCfg.SizeBytes / 2)
	gen, err := trace.NewLoop(0, ws)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := Empirical(cacheCfg, gen, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if got := curve[7]; got != 0 {
		t.Fatalf("full-cache loop miss ratio = %g, want 0", got)
	}
	if got := curve[3]; got != 0 { // 4 ways = exactly the working set
		t.Fatalf("exact-fit loop miss ratio = %g, want 0", got)
	}
	if got := curve[2]; got < 0.9 { // 3 ways: LRU loop thrashing
		t.Fatalf("under-fit loop miss ratio = %g, want ~1 (LRU thrash)", got)
	}
}

func TestEmpiricalStreamAlwaysMisses(t *testing.T) {
	curve, err := Empirical(cacheCfg, trace.NewStream(0), 20000)
	if err != nil {
		t.Fatal(err)
	}
	for w, m := range curve {
		if m < 0.999 {
			t.Fatalf("stream at %d ways missed only %.3f of accesses", w+1, m)
		}
	}
}

func TestEmpiricalMonotoneForZipf(t *testing.T) {
	gen, err := trace.NewZipf(0, uint64(cacheCfg.SizeBytes*2), 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := Empirical(cacheCfg, gen, 40000)
	if err != nil {
		t.Fatal(err)
	}
	for w := 1; w < len(curve); w++ {
		// Allow small non-monotonic jitter from finite sampling.
		if curve[w] > curve[w-1]+0.03 {
			t.Fatalf("empirical zipf curve rose at %d ways: %.3f -> %.3f",
				w+1, curve[w-1], curve[w])
		}
	}
	if curve[0] <= curve[len(curve)-1] {
		t.Fatal("zipf curve should fall with more ways")
	}
}

func TestEmpiricalMatchesAnalyticShape(t *testing.T) {
	// Mixture: a hot loop that fits in 2 ways plus a stream. The analytic
	// model should agree with the measured curve on both plateaus.
	hot := uint64(2 * cacheCfg.SizeBytes / 8)
	loop, err := trace.NewLoop(0, hot)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := trace.NewMix(1,
		trace.Component{Gen: loop, Weight: 0.7},
		trace.Component{Gen: trace.NewStream(1 << 40), Weight: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	measured, err := Empirical(cacheCfg, mix, 60000)
	if err != nil {
		t.Fatal(err)
	}
	analytic := MustCurve(0.3, Component{Bytes: float64(hot), Frac: 0.7})
	// At full allocation both should be ~0.3 (stream only).
	wayBytes := float64(cacheCfg.SizeBytes) / 8
	if got, want := measured[7], analytic.MissRatio(8*wayBytes); math.Abs(got-want) > 0.08 {
		t.Fatalf("full-cache: measured %.3f vs analytic %.3f", got, want)
	}
	// At 1 way (hot set does not fit) both should be high.
	if measured[0] < 0.8 {
		t.Fatalf("1-way measured miss %.3f, want >= 0.8", measured[0])
	}
	if a := analytic.MissRatio(wayBytes); a < 0.4 {
		t.Fatalf("1-way analytic miss %.3f, want >= 0.4", a)
	}
}

func TestEmpiricalErrors(t *testing.T) {
	gen := trace.NewStream(0)
	if _, err := Empirical(cacheCfg, gen, 0); err == nil {
		t.Fatal("expected error for zero accesses")
	}
	bad := cacheCfg
	bad.LineBytes = 33
	if _, err := Empirical(bad, gen, 100); err == nil {
		t.Fatal("expected error for invalid geometry")
	}
}

func BenchmarkMissRatio(b *testing.B) {
	c := MustCurve(0.2,
		Component{Bytes: mb, Frac: 0.4},
		Component{Bytes: 6 * mb, Frac: 0.2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MissRatio(float64(i%20) * mb)
	}
}
