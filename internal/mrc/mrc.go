// Package mrc builds and evaluates miss-ratio curves (MRCs): the fraction
// of LLC accesses that miss as a function of the cache capacity available
// to the application.
//
// Two constructions are provided:
//
//   - Analytic curves (Curve) built from a working-set mixture — a list of
//     (size, access-fraction) components plus a streaming fraction that
//     never hits. Under LRU, a component is fully resident once the
//     capacity reaches its stack position, which yields the classic
//     piecewise-linear concave miss curve. These drive the fast
//     system-level simulator in internal/sim.
//
//   - Empirical curves (Empirical) measured by replaying a synthetic trace
//     through the internal/cache simulator at every way count. Tests use
//     these to validate that the analytic shapes match true LRU behaviour.
//
// The DICER paper's key phenomena are functions of MRC shape: cache-
// sensitive applications have steep curves (many ways help), streaming
// applications have flat high curves (no amount of cache helps, bandwidth
// is consumed instead), and compute-bound applications have flat low ones.
package mrc

import (
	"fmt"
	"sort"

	"dicer/internal/cache"
	"dicer/internal/trace"
)

// Component is one working-set of an application: Bytes of data receiving
// Frac of all LLC accesses. Components are kept hottest-first; hotter
// components occupy cache before colder ones under LRU.
type Component struct {
	Bytes float64 // footprint of this working set
	Frac  float64 // fraction of accesses directed at it
}

// Curve is an analytic miss-ratio curve built from a working-set mixture.
// The zero value is a curve that never misses.
type Curve struct {
	comps  []Component // sorted by descending access density (Frac/Bytes)
	stream float64     // fraction of accesses that can never hit
}

// NewCurve builds a Curve. streamFrac plus the component fractions must not
// exceed 1 (any remainder is treated as always-hitting register/L1 locality
// that the LLC never sees missing). Components with non-positive size or
// fraction are rejected.
func NewCurve(streamFrac float64, comps ...Component) (Curve, error) {
	if streamFrac < 0 || streamFrac > 1 {
		return Curve{}, fmt.Errorf("mrc: stream fraction %g outside [0,1]", streamFrac)
	}
	total := streamFrac
	cs := make([]Component, len(comps))
	copy(cs, comps)
	for i, c := range cs {
		if c.Bytes <= 0 {
			return Curve{}, fmt.Errorf("mrc: component %d has non-positive size %g", i, c.Bytes)
		}
		if c.Frac < 0 {
			return Curve{}, fmt.Errorf("mrc: component %d has negative fraction %g", i, c.Frac)
		}
		total += c.Frac
	}
	if total > 1+1e-9 {
		return Curve{}, fmt.Errorf("mrc: fractions sum to %g > 1", total)
	}
	// Hottest first: highest access density claims cache first under LRU.
	sort.Slice(cs, func(i, j int) bool {
		return cs[i].Frac/cs[i].Bytes > cs[j].Frac/cs[j].Bytes
	})
	return Curve{comps: cs, stream: streamFrac}, nil
}

// MustCurve is NewCurve that panics on error; for use in static catalogs.
func MustCurve(streamFrac float64, comps ...Component) Curve {
	c, err := NewCurve(streamFrac, comps...)
	if err != nil {
		panic(err)
	}
	return c
}

// CoverageExponent shapes how a partially resident component hits: the
// hit fraction is coverage^CoverageExponent. 1 would be the linear
// fractional-LRU model; real LRU miss curves are convex near the
// working-set knee (a loop that almost fits still thrashes), and an
// exponent of 2 reproduces that knee. The knee is what stops DICER's
// stability-driven shrinking at the right allocation: removing the first
// way below the working set costs visibly more than the stability band.
const CoverageExponent = 2

// MissRatio returns the fraction of LLC accesses that miss when the
// application has capacity bytes of cache available. The curve is
// non-increasing in capacity and bounded by [stream, stream+Σfrac].
func (c Curve) MissRatio(capacityBytes float64) float64 {
	miss := c.stream
	remaining := capacityBytes
	if remaining < 0 {
		remaining = 0
	}
	for _, comp := range c.comps {
		if remaining <= 0 {
			miss += comp.Frac
			continue
		}
		covered := remaining / comp.Bytes
		if covered >= 1 {
			remaining -= comp.Bytes
			continue // fully resident: no misses from this component
		}
		hit := covered
		for i := 1; i < CoverageExponent; i++ {
			hit *= covered
		}
		miss += comp.Frac * (1 - hit)
		remaining = 0
	}
	return miss
}

// Footprint returns the total bytes of all cacheable components — the
// capacity beyond which extra cache cannot reduce misses.
func (c Curve) Footprint() float64 {
	var t float64
	for _, comp := range c.comps {
		t += comp.Bytes
	}
	return t
}

// StreamFraction returns the fraction of accesses that always miss.
func (c Curve) StreamFraction() float64 { return c.stream }

// Components returns a copy of the working-set mixture, hottest first.
func (c Curve) Components() []Component {
	out := make([]Component, len(c.comps))
	copy(out, c.comps)
	return out
}

// OccupancyDemand returns the bytes the application would keep resident if
// offered capacityBytes: the prefix of its working sets that fits. This is
// what a CMT counter converges to for an isolated partition.
func (c Curve) OccupancyDemand(capacityBytes float64) float64 {
	remaining := capacityBytes
	var occ float64
	for _, comp := range c.comps {
		if remaining <= 0 {
			break
		}
		take := comp.Bytes
		if take > remaining {
			take = remaining
		}
		occ += take
		remaining -= take
	}
	// Streaming traffic churns through whatever is left of the partition.
	if c.stream > 0 {
		occ += remaining
	}
	return occ
}

// Empirical measures a miss-ratio curve by replaying a trace through the
// set-associative simulator at each way allocation from 1 to cfg.Ways.
// The trace is replayed twice per point — a warm-up pass to fill the cache
// and a measured pass — so compulsory misses do not distort the curve for
// looping workloads. Entry [w-1] of the result is the miss ratio with w ways.
func Empirical(cfg cache.Config, gen trace.Generator, accesses int) ([]float64, error) {
	if accesses <= 0 {
		return nil, fmt.Errorf("mrc: non-positive access count %d", accesses)
	}
	if cfg.Clos < 1 {
		cfg.Clos = 1
	}
	out := make([]float64, cfg.Ways)
	for w := 1; w <= cfg.Ways; w++ {
		c, err := cache.New(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := c.SetMask(0, cache.ContiguousMask(0, w)); err != nil {
			return nil, err
		}
		gen.Reset()
		for i := 0; i < accesses; i++ { // warm-up pass
			c.Access(0, gen.Next())
		}
		c.ResetStats()
		gen.Reset()
		for i := 0; i < accesses; i++ { // measured pass
			c.Access(0, gen.Next())
		}
		out[w-1] = c.Stats(0).MissRatio()
	}
	return out, nil
}

// WaysToBytes converts a way count to bytes for a cache of totalBytes and
// ways associativity.
func WaysToBytes(ways int, totalBytes, totalWays int) float64 {
	return float64(ways) * float64(totalBytes) / float64(totalWays)
}
