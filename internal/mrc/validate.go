package mrc

import (
	"fmt"
	"math"

	"dicer/internal/cache"
	"dicer/internal/trace"
)

// This file validates the analytic miss-ratio model against ground truth:
// the same working-set mixture is realised both as an analytic Curve and
// as a concrete address stream replayed through the trace-driven LRU
// simulator, and the two curves are compared point-by-point across every
// way allocation. The system-level simulator (internal/sim) leans entirely
// on the analytic curves, so this comparison is what justifies it.

// ValidationCase describes one synthetic mixture to validate.
type ValidationCase struct {
	Name string
	// HotBytes/HotFrac: a looping working set (cliff-like under LRU).
	HotBytes uint64
	HotFrac  float64
	// WarmBytes/WarmFrac: a Zipf-accessed working set (smooth curve).
	WarmBytes uint64
	WarmFrac  float64
	WarmSkew  float64
	// StreamFrac: never-reused traffic.
	StreamFrac float64
}

// Validate builds both realisations of the case and returns the measured
// and analytic miss ratios per way count, plus their mean absolute error.
func (v ValidationCase) Validate(cfg cache.Config, accesses int, seed uint64) (measured, analytic []float64, mae float64, err error) {
	if v.HotFrac+v.WarmFrac+v.StreamFrac > 1+1e-9 {
		return nil, nil, 0, fmt.Errorf("mrc: case %q fractions exceed 1", v.Name)
	}
	var comps []trace.Component
	if v.HotFrac > 0 {
		hot, err := trace.NewLoop(0, v.HotBytes)
		if err != nil {
			return nil, nil, 0, err
		}
		comps = append(comps, trace.Component{Gen: hot, Weight: v.HotFrac})
	}
	if v.WarmFrac > 0 {
		warm, err := trace.NewZipf(1<<32, v.WarmBytes, v.WarmSkew, seed)
		if err != nil {
			return nil, nil, 0, err
		}
		comps = append(comps, trace.Component{Gen: warm, Weight: v.WarmFrac})
	}
	if v.StreamFrac > 0 {
		comps = append(comps, trace.Component{Gen: trace.NewStream(1 << 40), Weight: v.StreamFrac})
	}
	// The analytic model treats any residual fraction as accesses that
	// always hit (register/L1 locality). Realise it in the trace as a
	// single-line loop — one line re-touched constantly never leaves LRU —
	// so the two realisations direct identical fractions at each set.
	if rest := 1 - v.HotFrac - v.WarmFrac - v.StreamFrac; rest > 1e-9 {
		pinned, err := trace.NewLoop(1<<48, trace.LineBytes)
		if err != nil {
			return nil, nil, 0, err
		}
		comps = append(comps, trace.Component{Gen: pinned, Weight: rest})
	}
	mix, err := trace.NewMix(seed+1, comps...)
	if err != nil {
		return nil, nil, 0, err
	}
	measured, err = Empirical(cfg, mix, accesses)
	if err != nil {
		return nil, nil, 0, err
	}

	var analyticComps []Component
	if v.HotFrac > 0 {
		analyticComps = append(analyticComps, Component{Bytes: float64(v.HotBytes), Frac: v.HotFrac})
	}
	if v.WarmFrac > 0 {
		analyticComps = append(analyticComps, Component{Bytes: float64(v.WarmBytes), Frac: v.WarmFrac})
	}
	curve, err := NewCurve(v.StreamFrac, analyticComps...)
	if err != nil {
		return nil, nil, 0, err
	}
	analytic = make([]float64, cfg.Ways)
	wayBytes := float64(cfg.SizeBytes) / float64(cfg.Ways)
	for w := 1; w <= cfg.Ways; w++ {
		analytic[w-1] = curve.MissRatio(float64(w) * wayBytes)
	}

	var sum float64
	for i := range measured {
		sum += math.Abs(measured[i] - analytic[i])
	}
	mae = sum / float64(len(measured))
	return measured, analytic, mae, nil
}

// DefaultValidationCases returns mixtures spanning the catalog's behaviour
// classes, scaled to a 32 KiB validation cache (the shapes, not the
// absolute sizes, are what transfers to the 25 MB LLC).
func DefaultValidationCases(cfg cache.Config) []ValidationCase {
	size := uint64(cfg.SizeBytes)
	return []ValidationCase{
		{Name: "compute-like", HotBytes: size / 8, HotFrac: 0.5, StreamFrac: 0.05},
		{Name: "cache-like", HotBytes: size / 8, HotFrac: 0.4,
			WarmBytes: size / 2, WarmFrac: 0.3, WarmSkew: 0.6, StreamFrac: 0.1},
		{Name: "stream-like", HotBytes: size / 16, HotFrac: 0.2, StreamFrac: 0.7},
		// Note: the analytic model is optimistic when a working set fills
		// the *entire* cache while streaming traffic churns alongside it
		// (LRU can then never keep the set fully resident). The catalog
		// keeps footprints below ~3/4 of the LLC, which is the regime
		// validated here.
		{Name: "big-warm", WarmBytes: 3 * size / 4, WarmFrac: 0.6, WarmSkew: 0.9, StreamFrac: 0.2},
	}
}
