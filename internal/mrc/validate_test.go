package mrc

import (
	"testing"

	"dicer/internal/cache"
)

func TestValidationCasesAgree(t *testing.T) {
	cfg := cache.Config{SizeBytes: 64 * 8 * 64, Ways: 8, LineBytes: 64, Clos: 1}
	for _, vc := range DefaultValidationCases(cfg) {
		measured, analytic, mae, err := vc.Validate(cfg, 60000, 42)
		if err != nil {
			t.Fatalf("%s: %v", vc.Name, err)
		}
		if len(measured) != cfg.Ways || len(analytic) != cfg.Ways {
			t.Fatalf("%s: curve lengths %d/%d", vc.Name, len(measured), len(analytic))
		}
		// The analytic model must track true LRU within a coarse band —
		// it feeds a performance model, not a cache verifier.
		if mae > 0.18 {
			t.Errorf("%s: analytic/empirical MAE %.3f > 0.18\nmeasured %v\nanalytic %v",
				vc.Name, mae, measured, analytic)
		}
		// Both curves must agree on the full-allocation endpoint within
		// a looser band (compulsory warm-up effects land here).
		if d := measured[cfg.Ways-1] - analytic[cfg.Ways-1]; d > 0.15 || d < -0.15 {
			t.Errorf("%s: full-cache endpoints diverge: measured %.3f analytic %.3f",
				vc.Name, measured[cfg.Ways-1], analytic[cfg.Ways-1])
		}
	}
}

func TestValidationRejectsOverfullMixture(t *testing.T) {
	cfg := cache.Config{SizeBytes: 64 * 8 * 64, Ways: 8, LineBytes: 64, Clos: 1}
	vc := ValidationCase{Name: "bad", HotBytes: 4096, HotFrac: 0.8, StreamFrac: 0.5}
	if _, _, _, err := vc.Validate(cfg, 1000, 1); err == nil {
		t.Fatal("expected error for fractions > 1")
	}
}

func TestValidationDeterministic(t *testing.T) {
	cfg := cache.Config{SizeBytes: 64 * 8 * 64, Ways: 8, LineBytes: 64, Clos: 1}
	vc := DefaultValidationCases(cfg)[1]
	m1, _, mae1, err := vc.Validate(cfg, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, mae2, err := vc.Validate(cfg, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if mae1 != mae2 {
		t.Fatal("validation not deterministic")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("measured curves differ across runs")
		}
	}
}
