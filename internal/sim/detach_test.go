package sim

import (
	"testing"

	"dicer/internal/app"
	"dicer/internal/machine"
)

// TestDetachFreesCore pins the fleet layer's contract: after Detach the
// core is reattachable, the remaining processes keep their identities and
// cumulative counters, and the simulation keeps stepping.
func TestDetachFreesCore(t *testing.T) {
	m := machine.Default()
	r, err := New(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	hp := app.MustByName("omnetpp1")
	be := app.MustByName("gcc_base1")
	if err := r.Attach(0, 0, hp); err != nil {
		t.Fatal(err)
	}
	for core := 1; core <= 3; core++ {
		if err := r.Attach(core, 1, be); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		r.Step(0.25)
	}
	hpInstr := r.Proc(0).Instructions
	core3Instr := r.Proc(3).Instructions
	if hpInstr <= 0 || core3Instr <= 0 {
		t.Fatalf("expected progress before detach, got hp=%g core3=%g", hpInstr, core3Instr)
	}

	if err := r.Detach(2); err != nil {
		t.Fatal(err)
	}
	if r.Proc(2) != nil {
		t.Fatal("core 2 still occupied after Detach")
	}
	if r.Proc(0).Instructions != hpInstr || r.Proc(3).Instructions != core3Instr {
		t.Fatal("detach disturbed surviving processes' counters")
	}

	// The freed core accepts a new process and everything advances.
	if err := r.Attach(2, 1, app.MustByName("milc1")); err != nil {
		t.Fatalf("re-attach after detach: %v", err)
	}
	for i := 0; i < 8; i++ {
		r.Step(0.25)
	}
	if r.Proc(2).Instructions <= 0 {
		t.Fatal("re-attached process made no progress")
	}
	if r.Proc(0).Instructions <= hpInstr {
		t.Fatal("HP made no progress after detach/attach")
	}
}

func TestDetachErrors(t *testing.T) {
	r, err := New(machine.Default(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Detach(0); err == nil {
		t.Fatal("Detach on empty core should error")
	}
	if err := r.Detach(-1); err == nil {
		t.Fatal("Detach on negative core should error")
	}
	if err := r.Detach(99); err == nil {
		t.Fatal("Detach on out-of-range core should error")
	}
}

// TestDetachMatchesFreshRunner holds the determinism contract the fleet
// trace relies on: a runner that went through attach/detach churn on one
// core behaves identically to a fresh runner with the same final
// population, modulo the survivors' already-accumulated counters.
func TestDetachMatchesFreshRunner(t *testing.T) {
	m := machine.Default()
	build := func(churn bool) *Runner {
		r, err := New(m, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Attach(0, 0, app.MustByName("omnetpp1")); err != nil {
			t.Fatal(err)
		}
		if churn {
			if err := r.Attach(1, 1, app.MustByName("lbm1")); err != nil {
				t.Fatal(err)
			}
			if err := r.Detach(1); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Attach(1, 1, app.MustByName("gcc_base1")); err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := build(false), build(true)
	for i := 0; i < 40; i++ {
		a.Step(0.25)
		b.Step(0.25)
	}
	for core := 0; core <= 1; core++ {
		if a.Proc(core).Instructions != b.Proc(core).Instructions ||
			a.Proc(core).Cycles != b.Proc(core).Cycles {
			t.Fatalf("core %d diverged after attach/detach churn", core)
		}
	}
}
